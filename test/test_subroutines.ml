(* Tests for the Section 5 subroutines: bounded-broadcast and
   directed-decay (Lemmas 5.1 and 5.2 made executable). *)

module R = Core.Radio
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector

let params = Core.Params.default
let honest = { Core.Params.default with bb_cap = 8 }

let run_network dual body =
  let det = Detector.perfect (Dual.g dual) in
  let cfg = R.config ~seed:1 ~detector:(Detector.static det) dual in
  R.run cfg body

(* --- bounded-broadcast --- *)

let test_bb_solo_delivers () =
  (* a single caller on a star reaches every neighbour *)
  let dual = Dual.classic (Gen.star 9) in
  let res =
    run_network dual (fun ctx ->
        let me = R.me ctx in
        let got = ref false in
        let msg = if me = 0 then Some (Core.Msg.Stop_order { src = 0 }) else None in
        Core.Subroutines.bounded_broadcast params ctx ~delta:0 msg ~on_recv:(fun _ ->
            got := true);
        !got)
  in
  for v = 1 to 8 do
    Alcotest.(check bool) (Printf.sprintf "leaf %d heard" v) true
      (res.R.returns.(v) = Some true)
  done

let test_bb_length_formula () =
  let dual = Dual.classic (Gen.path 2) in
  let res =
    run_network dual (fun ctx ->
        Core.Subroutines.bounded_broadcast params ctx ~delta:2 None ~on_recv:ignore)
  in
  Alcotest.check Alcotest.int "length = ell_BB(2)"
    (Core.Subroutines.bb_rounds params ~n:2 ~delta:2)
    res.R.rounds

let test_bb_cap_applies () =
  Alcotest.check Alcotest.int "delta capped"
    (Core.Subroutines.bb_rounds params ~n:64 ~delta:params.bb_cap)
    (Core.Subroutines.bb_rounds params ~n:64 ~delta:50)

let test_bb_concurrent_clique () =
  (* k callers in a clique with honest ell_BB(k): everyone hears everyone *)
  let k = 4 in
  let dual = Dual.classic (Gen.clique (k + 1)) in
  let res =
    run_network dual (fun ctx ->
        let me = R.me ctx in
        let heard : (int, unit) Hashtbl.t = Hashtbl.create 4 in
        let msg = if me > 0 then Some (Core.Msg.Stop_order { src = me }) else None in
        Core.Subroutines.bounded_broadcast honest ctx ~delta:k msg ~on_recv:(fun m ->
            Hashtbl.replace heard (Core.Msg.src m) ());
        Hashtbl.length heard)
  in
  Alcotest.check Alcotest.int "listener heard all senders" k
    (match res.R.returns.(0) with Some h -> h | None -> -1)

(* --- directed-decay --- *)

let test_dd_star_delivery () =
  List.iter
    (fun m ->
      let dual = Dual.classic (Gen.star (m + 1)) in
      let res =
        run_network dual (fun ctx ->
            let me = R.me ctx in
            let noms = if me = 0 then [] else [ (0, me) ] in
            Core.Subroutines.directed_decay params ctx ~is_mis:(me = 0) ~noms)
      in
      let received = match res.R.returns.(0) with Some l -> l | None -> [] in
      Alcotest.(check bool) (Printf.sprintf "centre heard (m=%d)" m) true (received <> []);
      (* received payloads are genuine nominations *)
      List.iter
        (fun (src, w) ->
          Alcotest.(check bool) "src is a leaf" true (src >= 1 && src <= m);
          Alcotest.check Alcotest.int "nominee as sent" src w)
        received)
    [ 1; 5; 33 ]

let test_dd_length_formula () =
  let dual = Dual.classic (Gen.path 2) in
  let res =
    run_network dual (fun ctx ->
        Core.Subroutines.directed_decay params ctx ~is_mis:false ~noms:[])
  in
  Alcotest.check Alcotest.int "length formula"
    (Core.Subroutines.directed_decay_rounds params ~n:2)
    res.R.rounds

let test_dd_two_destinations () =
  (* path c1 - v - c2: the middle process nominates to both MIS ends *)
  let dual = Dual.classic (Gen.path 3) in
  let res =
    run_network dual (fun ctx ->
        let me = R.me ctx in
        let noms = if me = 1 then [ (0, 42 mod 3); (2, 1) ] else [] in
        Core.Subroutines.directed_decay params ctx ~is_mis:(me <> 1) ~noms)
  in
  let got v = match res.R.returns.(v) with Some l -> l | None -> [] in
  Alcotest.(check bool) "c1 heard" true (List.exists (fun (s, _) -> s = 1) (got 0));
  Alcotest.(check bool) "c2 heard" true (List.exists (fun (s, _) -> s = 1) (got 2));
  (* each destination only sees nominations addressed to it *)
  Alcotest.(check bool) "c1 sees only its nomination" true
    (List.for_all (fun (_, w) -> w = 0) (got 0));
  Alcotest.(check bool) "c2 sees only its nomination" true
    (List.for_all (fun (_, w) -> w = 1) (got 2))

let test_dd_covered_returns_nothing () =
  let dual = Dual.classic (Gen.star 4) in
  let res =
    run_network dual (fun ctx ->
        let me = R.me ctx in
        let noms = if me = 0 then [] else [ (0, me) ] in
        Core.Subroutines.directed_decay params ctx ~is_mis:(me = 0) ~noms)
  in
  for v = 1 to 3 do
    Alcotest.(check bool) "covered gets no deliveries" true (res.R.returns.(v) = Some [])
  done

let test_dd_mixed_fast_path () =
  (* The mixed listener/broadcaster fast path: once a covered process's
     nomination table empties (all destinations issued stop orders), the
     remaining phases are parked in one batched idle.  The optimised
     schedule must be observation-for-observation identical to the
     unoptimised one: same deliveries, same stats, same round count. *)
  let runs early_idle =
    let dual = Dual.classic (Gen.star 9) in
    run_network dual (fun ctx ->
        let me = R.me ctx in
        let noms = if me = 0 then [] else [ (0, me) ] in
        if me = 0 then Core.Subroutines.directed_decay params ctx ~is_mis:true ~noms
        else
          Core.Subroutines.directed_decay_live ~early_idle params ctx ~is_mis:false ~noms)
  in
  let fast = runs true and slow = runs false in
  Alcotest.(check bool) "same returns" true (fast.R.returns = slow.R.returns);
  Alcotest.check Alcotest.int "same rounds" slow.R.rounds fast.R.rounds;
  Alcotest.check Alcotest.int "same deliveries" slow.R.stats.deliveries fast.R.stats.deliveries;
  Alcotest.check Alcotest.int "same collisions" slow.R.stats.collisions fast.R.stats.collisions;
  Alcotest.check Alcotest.int "same sends" slow.R.stats.sends fast.R.stats.sends;
  Alcotest.check Alcotest.int "full schedule length"
    (Core.Subroutines.directed_decay_rounds params ~n:9)
    fast.R.rounds

let test_dd_respects_small_b () =
  (* nomination combining must respect the message bound *)
  let dual = Dual.classic (Gen.star 5) in
  let det = Detector.perfect (Dual.g dual) in
  let b = Core.Msg.tag_bits + (3 * Rn_util.Ilog.log2_up 5) + 1 in
  let cfg = R.config ~seed:1 ~b_bits:b ~detector:(Detector.static det) dual in
  let res =
    R.run cfg (fun ctx ->
        let me = R.me ctx in
        (* two nominations per leaf: with b this small, only one fits per
           message; the engine would raise if combining overflowed *)
        let noms = if me = 0 then [] else [ (0, me); (0, (me + 1) mod 5) ] in
        Core.Subroutines.directed_decay params ctx ~is_mis:(me = 0) ~noms)
  in
  Alcotest.(check bool) "ran within bound" false res.R.timed_out;
  Alcotest.(check bool) "still delivered" true (res.R.returns.(0) <> Some [])

let () =
  Alcotest.run "subroutines"
    [
      ( "bounded-broadcast",
        [
          Alcotest.test_case "solo delivers to all" `Quick test_bb_solo_delivers;
          Alcotest.test_case "length formula" `Quick test_bb_length_formula;
          Alcotest.test_case "exponent cap" `Quick test_bb_cap_applies;
          Alcotest.test_case "concurrent clique" `Quick test_bb_concurrent_clique;
        ] );
      ( "directed-decay",
        [
          Alcotest.test_case "star delivery" `Quick test_dd_star_delivery;
          Alcotest.test_case "length formula" `Quick test_dd_length_formula;
          Alcotest.test_case "two destinations" `Quick test_dd_two_destinations;
          Alcotest.test_case "mixed-set fast path" `Quick test_dd_mixed_fast_path;
          Alcotest.test_case "covered return nothing" `Quick test_dd_covered_returns_nothing;
          Alcotest.test_case "respects small b" `Quick test_dd_respects_small_b;
        ] );
    ]
