(* Differential tests for the word-parallel delivery kernel.

   [Engine.run] picks between two evaluations of the round delivery rule:
   the scalar per-edge touch loop and the dense once/twice bitset kernel.
   The choice must be pure evaluation strategy — for any config and body,
   [kernel:`On], [kernel:`Off] and [run_reference] must agree exactly on
   whole results.  The qcheck scenarios here skew dense (random duals up
   to n=40 with high edge probability, cliques, all-gray adversaries) so
   the forced-[`On] runs exercise the kernel on every broadcasting round
   rather than falling into the sparse regime the equivalence suite in
   test_engine_equiv.ml already covers with [`Auto].

   Also here: unit and property tests for the kernel's two primitive
   layers — the Bitset once/twice accumulator (0, 1, 2, ≥3 senders) and
   the hash-grid world generator (grid-built duals must equal the naive
   O(n²) oracle bit for bit, including RNG stream consumption). *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Point = Rn_geom.Point
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

(* --- once/twice accumulator ------------------------------------------- *)

let bs cap l = Bitset.of_list cap l

let check_acc2 name ~cap rows ~exp_once ~exp_twice =
  let once = Bitset.create cap and twice = Bitset.create cap in
  List.iter (fun row -> Bitset.acc2_or_into ~once ~twice (bs cap row)) rows;
  Alcotest.(check (list int)) (name ^ ": once") exp_once (Bitset.to_list once);
  Alcotest.(check (list int)) (name ^ ": twice") exp_twice (Bitset.to_list twice)

let test_acc2_units () =
  check_acc2 "no senders" ~cap:130 [] ~exp_once:[] ~exp_twice:[];
  check_acc2 "one sender" ~cap:130 [ [ 0; 63; 129 ] ] ~exp_once:[ 0; 63; 129 ] ~exp_twice:[];
  check_acc2 "two disjoint" ~cap:130
    [ [ 0; 64 ]; [ 1; 65 ] ]
    ~exp_once:[ 0; 1; 64; 65 ] ~exp_twice:[];
  check_acc2 "two overlapping" ~cap:130
    [ [ 0; 63; 64 ]; [ 63; 64; 129 ] ]
    ~exp_once:[ 0; 63; 64; 129 ] ~exp_twice:[ 63; 64 ];
  (* saturation: a third and fourth sender must not clear the twice bit *)
  check_acc2 "three senders saturate" ~cap:130
    [ [ 5 ]; [ 5 ]; [ 5 ] ]
    ~exp_once:[ 5 ] ~exp_twice:[ 5 ];
  check_acc2 "four senders saturate" ~cap:130
    [ [ 5; 70 ]; [ 5 ]; [ 5; 70 ]; [ 5; 70 ] ]
    ~exp_once:[ 5; 70 ] ~exp_twice:[ 5; 70 ]

let test_acc2_add_matches_or () =
  (* element-wise feeding must equal set-wise feeding *)
  let cap = 100 in
  let rows = [ [ 1; 63; 64 ]; [ 2; 63 ]; [ 1; 99 ] ] in
  let o1 = Bitset.create cap and t1 = Bitset.create cap in
  List.iter (fun r -> Bitset.acc2_or_into ~once:o1 ~twice:t1 (bs cap r)) rows;
  let o2 = Bitset.create cap and t2 = Bitset.create cap in
  List.iter (List.iter (fun i -> Bitset.acc2_add ~once:o2 ~twice:t2 i)) rows;
  Alcotest.(check bool) "once equal" true (Bitset.equal o1 o2);
  Alcotest.(check bool) "twice equal" true (Bitset.equal t1 t2)

let prop_acc2_counts =
  QCheck.Test.make ~name:"acc2 = naive multiset counting" ~count:200
    QCheck.(pair (int_range 1 5) (small_list (small_list (int_range 0 149))))
    (fun (_, rows) ->
      let cap = 150 in
      let once = Bitset.create cap and twice = Bitset.create cap in
      let counts = Array.make cap 0 in
      List.iter
        (fun row ->
          let row = List.sort_uniq compare row in
          List.iter (fun i -> counts.(i) <- counts.(i) + 1) row;
          Bitset.acc2_or_into ~once ~twice (bs cap row))
        rows;
      let ok = ref true in
      for i = 0 to cap - 1 do
        if Bitset.mem once i <> (counts.(i) >= 1) then ok := false;
        if Bitset.mem twice i <> (counts.(i) >= 2) then ok := false
      done;
      !ok)

(* --- kernel ≡ scalar ≡ reference -------------------------------------- *)

let adversaries =
  [|
    ("silent", Adversary.silent);
    ("all_gray", Adversary.all_gray);
    ("bernoulli 0.5", Adversary.bernoulli 0.5);
    ("bernoulli 0.9", Adversary.bernoulli 0.9);
    ("harassing 0.7", Adversary.harassing 0.7);
    ("spiteful", Adversary.spiteful);
    ("jamming", Adversary.jamming);
  |]

(* Random dual graph, dense by default so forced-kernel rounds have real
   collision structure.  [gray_w = 0] yields a classic dual (G = G'). *)
let build_dual ~n ~rel_w ~gray_w gseed =
  let rng = Rng.create gseed in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let r = Rng.int rng 10 in
      if r < rel_w then es := (u, v) :: !es
      else if r < rel_w + gray_w then grays := (u, v) :: !grays
    done
  done;
  Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays ()

type scenario = {
  dual : Dual.t;
  shape : string;
  adv_name : string;
  adv : Adversary.t;
  wake : int array option;
  stop : Rn_sim.Engine.stop_condition;
  seed : int;
}

let scenario_of case_seed =
  let rng = Rng.create (0x5CE7 + case_seed) in
  let n = 2 + Rng.int rng 39 in
  let shape, dual =
    match Rng.int rng 4 with
    | 0 -> ("dense", build_dual ~n ~rel_w:6 ~gray_w:3 (Rng.bits rng))
    | 1 -> ("classic", build_dual ~n ~rel_w:7 ~gray_w:0 (Rng.bits rng))
    | 2 -> ("all-gray", build_dual ~n ~rel_w:1 ~gray_w:8 (Rng.bits rng))
    | _ -> ("clique", Dual.classic (Gen.clique n))
  in
  let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
  let wake =
    if Rng.bool rng 0.5 then None else Some (Array.init n (fun _ -> 1 + Rng.int rng 8))
  in
  let stop =
    if Rng.bool rng 0.5 then Rn_sim.Engine.All_done
    else Rn_sim.Engine.At_round (5 + Rng.int rng 60)
  in
  { dual; shape; adv_name; adv; wake; stop; seed = Rng.int rng 10_000 }

let pp_scenario s =
  Printf.sprintf "n=%d shape=%s adv=%s seed=%d" (Dual.n s.dual) s.shape s.adv_name s.seed

let config_of ~kernel s =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  E.config ~adversary:s.adv ~seed:s.seed ?wake:s.wake ~stop:s.stop ~max_rounds:5_000
    ~kernel ~detector:det s.dual

(* Scripted body mixing broadcasts, listens, idles and decisions, logging
   every receive — any delivery divergence shows up in [returns]. *)
let body ctx =
  let rng = E.rng ctx in
  let me = E.me ctx in
  let log = ref [] in
  let decided = ref false in
  for _ = 1 to 14 do
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
      (* broadcast-heavy: dense rounds are the kernel's territory *)
      (match E.sync ctx (Some me) with
      | E.Recv m -> log := m :: !log
      | E.Own -> log := -1 :: !log
      | E.Silence -> ())
    | 3 -> (
      match E.sync ctx None with
      | E.Recv m -> log := m :: !log
      | E.Own | E.Silence -> ())
    | 4 -> E.idle ctx (1 + Rng.int rng 4)
    | _ ->
      if (not !decided) && Rng.int rng 4 = 0 then begin
        decided := true;
        E.output ctx (Rng.int rng 2)
      end;
      ignore (E.sync ctx None)
  done;
  (!log, E.round ctx)

let prop_kernel_equiv =
  QCheck.Test.make ~name:"kernel `On = `Off = run_reference" ~count:200
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of case in
      let on = E.run (config_of ~kernel:`On s) body in
      let off = E.run (config_of ~kernel:`Off s) body in
      let auto = E.run (config_of ~kernel:`Auto s) body in
      let oracle = E.run_reference (config_of ~kernel:`Auto s) body in
      if on <> off then QCheck.Test.fail_reportf "`On <> `Off: %s" (pp_scenario s);
      if on <> auto then QCheck.Test.fail_reportf "`On <> `Auto: %s" (pp_scenario s);
      if on <> oracle then QCheck.Test.fail_reportf "`On <> reference: %s" (pp_scenario s);
      true)

let prop_kernel_mis =
  QCheck.Test.make ~name:"kernel `On = `Off (MIS body)" ~count:15 QCheck.(small_nat)
    (fun case ->
      let s = { (scenario_of case) with wake = None } in
      let params = Core.Params.default in
      let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
      let stop = Core.Radio.At_round (Core.Mis.schedule_rounds params ~n:(Dual.n s.dual)) in
      let run kernel =
        let cfg =
          Core.Radio.config ~adversary:s.adv ~seed:s.seed ~stop ~max_rounds:100_000
            ~kernel ~detector:det s.dual
        in
        Core.Radio.run cfg (fun ctx -> Core.Mis.body params ctx)
      in
      if run `On <> run `Off then QCheck.Test.fail_reportf "MIS mismatch: %s" (pp_scenario s);
      true)

(* Moderate-scale pin: a circulant graph at n=512 has every node at
   degree 64 — kernel rounds throughout — with enough words per row to
   catch top-word masking and word-indexing slips. *)
let test_kernel_n512 () =
  let n = 512 in
  let es = ref [] in
  for u = 0 to n - 1 do
    for k = 1 to 32 do
      let v = (u + k) mod n in
      es := (min u v, max u v) :: !es
    done
  done;
  let dual = Dual.classic (Graph.of_edges n !es) in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let run kernel =
    let cfg =
      E.config ~adversary:(Adversary.bernoulli 0.5) ~seed:11
        ~stop:(Rn_sim.Engine.At_round 30) ~kernel ~detector:det dual
    in
    E.run cfg (fun ctx ->
        let heard = ref 0 in
        for _ = 1 to 30 do
          (* ~2 expected senders per 64-neighbourhood: deliveries and
             collisions both occur in quantity *)
          match E.sync_p ctx 0.03 (E.me ctx) with
          | E.Recv _ -> incr heard
          | E.Own | E.Silence -> ()
        done;
        !heard)
  in
  let on = run `On and off = run `Off in
  Alcotest.(check bool) "identical results at n=512" true (on = off);
  Alcotest.(check bool) "deliveries happened" true (on.E.stats.deliveries > 0);
  Alcotest.(check bool) "collisions happened" true (on.E.stats.collisions > 0)

(* --- grid world generation ≡ naive oracle ------------------------------ *)

let dual_eq a b =
  Graph.n (Dual.g a) = Graph.n (Dual.g b)
  && Graph.edges (Dual.g a) = Graph.edges (Dual.g b)
  && Graph.edges (Dual.g' a) = Graph.edges (Dual.g' b)
  && Dual.gray_edges a = Dual.gray_edges b
  && Dual.d a = Dual.d b

let prop_grid_gen_equiv =
  QCheck.Test.make ~name:"grid of_positions = naive oracle (same RNG stream)" ~count:150
    QCheck.(triple (int_range 1 60) (int_range 0 1000) (int_range 0 2))
    (fun (n, pseed, dix) ->
      let d = [| 1.0; 2.0; 3.5 |].(dix) in
      let prng = Rng.create pseed in
      (* spread tight enough that reliable and gray pairs both occur *)
      let side = 1.0 +. sqrt (float_of_int n) in
      let pos = Array.init n (fun _ -> Point.random prng ~w:side ~h:side) in
      let grid = Gen.of_positions ~rng:(Rng.create 42) ~d ~gray_p:0.5 pos in
      let naive = Gen.of_positions_naive ~rng:(Rng.create 42) ~d ~gray_p:0.5 pos in
      if not (dual_eq grid naive) then
        QCheck.Test.fail_reportf "grid <> naive at n=%d pseed=%d d=%.1f" n pseed d;
      (* both must leave the RNG in the same state: draw-count equality *)
      let r1 = Rng.create 42 and r2 = Rng.create 42 in
      ignore (Gen.of_positions ~rng:r1 ~d ~gray_p:0.5 pos);
      ignore (Gen.of_positions_naive ~rng:r2 ~d ~gray_p:0.5 pos);
      if Rng.bits r1 <> Rng.bits r2 then
        QCheck.Test.fail_reportf "RNG stream diverged at n=%d pseed=%d d=%.1f" n pseed d;
      true)

let prop_grid_gen_negative_coords =
  (* the clusters generator places points at negative coordinates; the
     grid must bucket them correctly *)
  QCheck.Test.make ~name:"grid of_positions = naive (negative coords)" ~count:60
    QCheck.(int_range 0 500)
    (fun pseed ->
      let prng = Rng.create pseed in
      let n = 40 in
      let pos =
        Array.init n (fun _ ->
            Point.make ((Rng.float prng -. 0.5) *. 8.0) ((Rng.float prng -. 0.5) *. 8.0))
      in
      let grid = Gen.of_positions ~rng:(Rng.create 7) ~d:2.0 ~gray_p:0.3 pos in
      let naive = Gen.of_positions_naive ~rng:(Rng.create 7) ~d:2.0 ~gray_p:0.3 pos in
      dual_eq grid naive)

let () =
  Alcotest.run "kernel"
    [
      ( "acc2",
        [
          Alcotest.test_case "unit cases (0/1/2/3+ senders)" `Quick test_acc2_units;
          Alcotest.test_case "acc2_add = acc2_or_into" `Quick test_acc2_add_matches_or;
          qtest prop_acc2_counts;
        ] );
      ( "delivery",
        [
          qtest prop_kernel_equiv;
          qtest prop_kernel_mis;
          Alcotest.test_case "circulant n=512 pin" `Quick test_kernel_n512;
        ] );
      ( "world-gen",
        [ qtest prop_grid_gen_equiv; qtest prop_grid_gen_negative_coords ] );
    ]
