(* Tests for the domain pool and the harness's parallel-sweep guarantee:
   order preservation, exception propagation, jobs:1 = List.map, and the
   qcheck property that a parallel experiment cell sweep equals the
   sequential one table-for-table. *)

module Pool = Rn_util.Pool
module Rng = Rn_util.Rng
module Harness = Rn_harness.Harness

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map (fun x -> (x * x) + 1) xs)
        (Pool.map ~jobs (fun x -> (x * x) + 1) xs))
    [ 1; 2; 3; 4; 8; 200 ]

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~jobs:4 (fun x -> x + 1) [ 6 ])

let test_jobs1_is_list_map () =
  (* jobs:1 must evaluate sequentially in the calling domain, in input
     order — observable through side effects. *)
  let seen = ref [] in
  let out = Pool.map ~jobs:1 (fun x -> seen := x :: !seen; x) [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "results" [ 1; 2; 3; 4 ] out;
  Alcotest.(check (list int)) "evaluation order" [ 4; 3; 2; 1 ] !seen

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore (Pool.map ~jobs (fun x -> if x = 37 then raise (Boom x) else x) (List.init 64 Fun.id));
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int)) (Printf.sprintf "jobs=%d" jobs) (Some 37) raised)
    [ 1; 2; 4 ]

let test_exception_pool_reusable_after_map () =
  (* a failed transient map must not leave domains stuck *)
  (try ignore (Pool.map ~jobs:3 (fun _ -> failwith "die") [ 1; 2; 3; 4; 5 ]) with _ -> ());
  Alcotest.(check (list int)) "next map fine" [ 2; 4; 6 ]
    (Pool.map ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_persistent_pool () =
  let p = Pool.create ~jobs:3 in
  Alcotest.(check int) "size" 3 (Pool.size p);
  Alcotest.(check (list int)) "batch 1" [ 1; 4; 9 ] (Pool.run p (fun x -> x * x) [ 1; 2; 3 ]);
  Alcotest.(check (list string))
    "batch 2" [ "0"; "1"; "2" ]
    (Pool.run p string_of_int [ 0; 1; 2 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run p Fun.id [ 1 ]))

(* A miniature experiment cell: deterministic in (seed, n), heavy enough
   to overlap across workers. *)
let cell (seed, n) =
  let rng = Rng.create (seed + (100 * n)) in
  let acc = ref 0 in
  for _ = 1 to 1000 do
    acc := !acc + Rng.int rng n
  done;
  !acc

let qcheck_parallel_equals_sequential =
  QCheck.Test.make ~name:"Pool.map jobs>1 = List.map on rng cells" ~count:30
    QCheck.(pair (int_range 2 8) (small_list (pair small_int (int_range 1 64))))
    (fun (jobs, cells) -> Pool.map ~jobs cell cells = List.map cell cells)

(* The tentpole guarantee, end to end: a real harness experiment renders
   the identical table no matter the jobs setting. *)
let test_experiment_tables_identical () =
  let render id scale jobs =
    Harness.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Harness.set_jobs 1)
      (fun () ->
        match Rn_harness.All.find id with
        | Some f -> Harness.render (f scale)
        | None -> Alcotest.fail ("missing " ^ id))
  in
  List.iter
    (fun id ->
      let seq = render id Harness.Quick 1 in
      let par = render id Harness.Quick 3 in
      Alcotest.(check string) (id ^ " table identical across jobs") seq par)
    [ "E4a"; "E8b" ]

let qcheck_sweep_equals_sequential =
  QCheck.Test.make ~name:"Harness.sweep parallel = sequential (grid x reps)" ~count:20
    QCheck.(pair (int_range 2 6) (small_list (int_range 1 32)))
    (fun (jobs, keys) ->
      let f k rep = cell (rep, k + 1) in
      Harness.sweep ~jobs keys ~reps:3 f = Harness.sweep ~jobs:1 keys ~reps:3 f)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs:1 is List.map" `Quick test_jobs1_is_list_map;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "reusable after failure" `Quick test_exception_pool_reusable_after_map;
          Alcotest.test_case "persistent pool" `Quick test_persistent_pool;
          QCheck_alcotest.to_alcotest qcheck_parallel_equals_sequential;
          QCheck_alcotest.to_alcotest qcheck_sweep_equals_sequential;
        ] );
      ( "harness-determinism",
        [ Alcotest.test_case "experiment tables identical" `Slow test_experiment_tables_identical ] );
    ]
