(* Tests for the observability layer: the Rn_util.Metrics registry
   (domain-safety under Pool, scoped capture, merge algebra, histogram
   percentiles, sexp codec), the Rn_sim.Events ring-buffer sink and its
   three export formats, the engine's traced-equals-untraced invariant,
   and the harness's per-experiment metrics aggregation through the
   store (cold sweep = warm replay). *)

module Metrics = Rn_util.Metrics
module Timing = Rn_util.Timing
module Pool = Rn_util.Pool
module Events = Rn_sim.Events
module Store = Rn_util.Store
module Harness = Rn_harness.Harness
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module R = Core.Radio

let qtest = QCheck_alcotest.to_alcotest

(* --- registry basics --- *)

let test_registry_ops () =
  let c = Metrics.counter "test.reg.c" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter" 42 (Metrics.value c);
  let g = Metrics.gauge "test.reg.g" in
  Alcotest.(check bool) "gauge starts unset" true (Metrics.gauge_value g = None);
  Metrics.set g 7;
  Alcotest.(check (option int)) "gauge" (Some 7) (Metrics.gauge_value g);
  let c' = Metrics.counter "test.reg.c" in
  Metrics.incr c';
  Alcotest.(check int) "registration idempotent (same cell)" 43 (Metrics.value c);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: test.reg.c already registered as a counter") (fun () ->
      ignore (Metrics.gauge "test.reg.c"))

let test_enabled_flag () =
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled ());
  Metrics.set_enabled true;
  Alcotest.(check bool) "enable" true (Metrics.enabled ());
  Metrics.set_enabled false

(* --- domain safety: concurrent recording through Pool --- *)

let test_pool_totals () =
  let c = Metrics.counter "test.pool.total" in
  Metrics.reset_counter c;
  ignore (Pool.map ~jobs:4 (fun i -> Metrics.add c i) (List.init 100 (fun i -> i + 1)));
  Alcotest.(check int) "no lost updates at jobs=4" 5050 (Metrics.value c)

(* Each scoped cell sees exactly its own records, independent of what
   runs concurrently on other domains — the property per-cell store
   payloads depend on. *)
let test_scoped_isolation () =
  let c = Metrics.counter "test.pool.scoped" in
  Metrics.reset_counter c;
  let out =
    Pool.map ~jobs:4
      (fun i ->
        let (), snap = Metrics.scoped (fun () -> Metrics.add c i) in
        List.assoc_opt "test.pool.scoped" snap.Metrics.counters)
      (List.init 32 (fun i -> i + 1))
  in
  List.iteri
    (fun i v -> Alcotest.(check (option int)) "scope saw only its cell" (Some (i + 1)) v)
    out;
  Alcotest.(check int) "global still totals" (32 * 33 / 2) (Metrics.value c)

(* --- merge algebra --- *)

let dedup_by_name l = List.sort_uniq (fun (a, _) (b, _) -> compare a b) l

let snap_gen =
  QCheck.Gen.(
    let name = oneofl [ "m.a"; "m.b"; "m.c"; "m.d"; "m.e" ] in
    let counters = list_size (int_range 0 5) (pair name (int_range 1 100)) in
    let gauges = list_size (int_range 0 3) (pair name (int_range 0 50)) in
    let hists = list_size (int_range 0 3) (pair name (list_size (int_range 1 8) small_nat)) in
    map3
      (fun cs gs hs ->
        {
          (Metrics.of_counters cs) with
          Metrics.gauges = dedup_by_name gs;
          hists = List.map (fun (n, vs) -> (n, Metrics.hist_of_values vs)) (dedup_by_name hs);
        })
      counters gauges hists)

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300
    (QCheck.make QCheck.Gen.(pair snap_gen snap_gen))
    (fun (a, b) -> Metrics.merge a b = Metrics.merge b a)

let qcheck_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:300
    (QCheck.make QCheck.Gen.(triple snap_gen snap_gen snap_gen))
    (fun (a, b, c) ->
      Metrics.merge a (Metrics.merge b c) = Metrics.merge (Metrics.merge a b) c)

let qcheck_hist_concat =
  QCheck.Test.make ~name:"hist_of_values (a @ b) = merge_hist" ~count:300
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      Metrics.hist_of_values (a @ b)
      = Metrics.merge_hist (Metrics.hist_of_values a) (Metrics.hist_of_values b))

let test_diff () =
  let before = Metrics.of_counters [ ("d.x", 3); ("d.y", 10) ] in
  let after = Metrics.of_counters [ ("d.x", 8); ("d.y", 10); ("d.z", 2) ] in
  let d = Metrics.diff after before in
  Alcotest.(check (list (pair string int)))
    "counter increments" [ ("d.x", 5); ("d.z", 2) ] d.Metrics.counters

(* --- histogram geometry and percentiles --- *)

let test_bucket_geometry () =
  List.iter
    (fun v ->
      let b = Metrics.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "%d within its bucket" v)
        true
        (v >= Metrics.bucket_lower b && v <= Metrics.bucket_upper b))
    [ 0; 1; 2; 3; 4; 7; 8; 255; 256; 1023; 1024; max_int ]

let test_percentiles () =
  let h = Metrics.hist_of_values (List.init 1000 (fun i -> i + 1)) in
  Alcotest.(check int) "count" 1000 h.Metrics.count;
  Alcotest.(check int) "sum" 500500 h.Metrics.sum;
  Alcotest.(check int) "min" 1 h.Metrics.vmin;
  Alcotest.(check int) "max" 1000 h.Metrics.vmax;
  let p50 = Metrics.percentile h 0.5 in
  Alcotest.(check bool) "p50 within a 2x bucket of 500" true (p50 >= 256 && p50 <= 511);
  let p95 = Metrics.percentile h 0.95 in
  Alcotest.(check bool) "p95 within a 2x bucket of 950" true (p95 >= 512 && p95 <= 1023);
  Alcotest.(check int) "p100 exact" 1000 (Metrics.percentile h 1.0);
  Alcotest.(check (float 1e-9)) "mean exact" 500.5 (Metrics.hist_mean h)

(* --- snapshot sexp codec --- *)

let test_snapshot_sexp_roundtrip () =
  Metrics.reset ();
  let c = Metrics.counter "test.sexp.c" and g = Metrics.gauge "test.sexp.g" in
  let h = Metrics.histogram "test.sexp.h" in
  Metrics.add c 17;
  Metrics.set g 5;
  List.iter (Metrics.observe h) [ 1; 2; 3; 100; 10000 ];
  let s = Metrics.snapshot () in
  Alcotest.(check bool) "round-trips" true (Metrics.snapshot_of_sexp (Metrics.sexp_of_snapshot s) = s);
  (* and through a printed string, as the store/CLI would *)
  let printed = Rn_util.Sexp.to_string (Metrics.sexp_of_snapshot s) in
  Alcotest.(check bool)
    "round-trips via text" true
    (Metrics.snapshot_of_sexp (Rn_util.Sexp.parse_string printed) = s);
  Metrics.reset ();
  Alcotest.(check bool) "reset clears" true (Metrics.is_empty (Metrics.snapshot ()))

(* --- exposition: JSON and Prometheus text formats --- *)

let test_exposition_exact () =
  let h = Metrics.hist_of_values [ 1; 1; 3 ] in
  Alcotest.(check (list (pair int int))) "bucket geometry" [ (1, 2); (3, 1) ] h.Metrics.buckets;
  let s =
    { Metrics.counters = [ ("eng.runs", 3) ]; gauges = [ ("g.x", 4) ]; hists = [ ("lat.us", h) ] }
  in
  Alcotest.(check string)
    "json"
    {|{"counters":{"eng.runs":3},"gauges":{"g.x":4},"hists":{"lat.us":{"count":3,"sum":5,"min":1,"max":3,"buckets":[[1,2],[3,1]]}}}|}
    (Metrics.to_json s);
  Alcotest.(check string)
    "prometheus"
    "# TYPE rn_eng_runs counter\nrn_eng_runs 3\n# TYPE rn_g_x gauge\nrn_g_x 4\n\
     # TYPE rn_lat_us histogram\nrn_lat_us_bucket{le=\"1\"} 2\nrn_lat_us_bucket{le=\"3\"} 3\n\
     rn_lat_us_bucket{le=\"+Inf\"} 3\nrn_lat_us_sum 5\nrn_lat_us_count 3\n"
    (Metrics.to_prometheus s);
  Alcotest.(check string)
    "empty json" {|{"counters":{},"gauges":{},"hists":{}}|}
    (Metrics.to_json Metrics.empty);
  Alcotest.(check string) "empty prometheus" "" (Metrics.to_prometheus Metrics.empty);
  (* names with quotes/backslashes stay valid JSON; prom names mangle *)
  let odd = { Metrics.empty with Metrics.counters = [ ({|a"b\c|}, 1) ] } in
  Alcotest.(check string)
    "json escaping" {|{"counters":{"a\"b\\c":1},"gauges":{},"hists":{}}|}
    (Metrics.to_json odd);
  Alcotest.(check string)
    "prom mangling" "# TYPE rn_a_b_c counter\nrn_a_b_c 1\n" (Metrics.to_prometheus odd)

(* The daemon folds worker snapshots into its exposition in hashtable
   order; both text formats must therefore be independent of merge
   order. *)
let qcheck_exposition_merge_order =
  QCheck.Test.make ~name:"exposition independent of merge order" ~count:200
    (QCheck.make QCheck.Gen.(pair snap_gen snap_gen))
    (fun (a, b) ->
      Metrics.to_json (Metrics.merge a b) = Metrics.to_json (Metrics.merge b a)
      && Metrics.to_prometheus (Metrics.merge a b) = Metrics.to_prometheus (Metrics.merge b a))

(* --- events: ring buffer semantics --- *)

let ev r p k = { Events.round = r; proc = p; kind = k }

let test_ring_eviction () =
  let s = Events.create ~capacity:4 () in
  for i = 1 to 6 do
    Events.emit s (ev i i Events.Wake)
  done;
  Alcotest.(check int) "emitted" 6 (Events.emitted s);
  Alcotest.(check int) "evicted" 2 (Events.evicted s);
  Alcotest.(check int) "length" 4 (Events.length s);
  Alcotest.(check (list int))
    "newest kept, oldest first" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Events.round) (Events.events s))

let test_sink_filters () =
  let s = Events.create ~rounds:(2, 3) ~procs:[ 1 ] () in
  Events.emit s (ev 1 1 Events.Wake) (* round out of range *);
  Events.emit s (ev 2 2 Events.Wake) (* proc filtered *);
  Events.emit s (ev 2 1 Events.Wake) (* kept *);
  Events.emit s (ev 3 (-1) (Events.Skip { rounds = 1 })) (* round-scoped: kept *);
  Alcotest.(check int) "kept" 2 (Events.length s);
  Alcotest.(check int) "filtered" 2 (Events.filtered s);
  let s2 = Events.create ~sample:3 () in
  List.iter (fun r -> Events.emit s2 (ev r 0 Events.Wake)) [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check (list int))
    "sampled rounds" [ 3; 6 ]
    (List.map (fun e -> e.Events.round) (Events.events s2))

(* --- events: export round-trips --- *)

let kind_gen =
  QCheck.Gen.(
    oneof
      [
        return Events.Wake;
        map (fun b -> Events.Broadcast { bits = b }) (int_range 0 500);
        map (fun s -> Events.Deliver { src = s }) (int_range 0 63);
        map (fun s -> Events.Collide { senders = s }) (int_range 2 20);
        map2 (fun a t -> Events.Gray { active = a; total = t }) (int_range 0 50) (int_range 0 50);
        map (fun v -> Events.Decide { value = v }) (int_range 0 1);
        map (fun r -> Events.Skip { rounds = r }) (int_range 1 1000);
      ])

let events_gen =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (map3
         (fun r p k -> { Events.round = r; proc = p; kind = k })
         (int_range 1 5000) (int_range (-1) 63) kind_gen))

let qcheck_export_roundtrips =
  QCheck.Test.make ~name:"JSONL/Chrome/sexp exports round-trip (+ auto-detect)" ~count:200
    (QCheck.make events_gen) (fun evs ->
      Events.of_jsonl (Events.to_jsonl evs) = evs
      && Events.of_chrome (Events.to_chrome evs) = evs
      && Events.of_sexp (Events.to_sexp evs) = evs
      && Events.of_string (Events.to_jsonl evs) = evs
      && Events.of_string (Events.to_chrome evs) = evs
      && Events.of_string (Events.to_sexp evs) = evs)

(* --- engine: traced runs are byte-identical to untraced --- *)

let qcheck_traced_untraced =
  QCheck.Test.make ~name:"traced run = untraced run (MIS)" ~count:15 QCheck.(small_nat)
    (fun seed ->
      let n = 24 + 8 * (seed mod 3) in
      let dual = Harness.geometric ~seed ~n ~degree:8 () in
      let detector = Detector.static (Detector.perfect (Dual.g dual)) in
      let adversary = Rn_sim.Adversary.bernoulli 0.5 in
      let plain = Core.Mis.run ~seed ~adversary ~detector dual in
      let sink = Events.create () in
      let traced = Core.Mis.run ~seed ~adversary ~sink ~detector dual in
      if Events.length sink = 0 then QCheck.Test.fail_report "sink stayed empty";
      if plain <> traced then
        QCheck.Test.fail_reportf "results differ under tracing (seed %d, n %d)" seed n;
      true)

(* Engine metrics recorded only when the registry is enabled, and they
   match the run's own stats. *)
let test_engine_metrics_recorded () =
  let dual = Harness.geometric ~seed:3 ~n:32 ~degree:8 () in
  let detector = Detector.static (Detector.perfect (Dual.g dual)) in
  Metrics.reset ();
  let _ = Core.Mis.run ~seed:3 ~detector dual in
  Alcotest.(check bool)
    "disabled registry records nothing" true
    (Metrics.is_empty (Metrics.snapshot ()));
  Metrics.set_enabled true;
  let r = Core.Mis.run ~seed:3 ~detector dual in
  Metrics.set_enabled false;
  let s = Metrics.snapshot () in
  let c name = List.assoc_opt name s.Metrics.counters in
  Alcotest.(check (option int)) "runs" (Some 1) (c "engine.runs");
  Alcotest.(check (option int)) "rounds" (Some r.R.rounds) (c "engine.rounds");
  Alcotest.(check (option int)) "sends" (Some r.R.stats.Rn_sim.Engine.sends) (c "engine.sends");
  Alcotest.(check (option int))
    "collisions"
    (Some r.R.stats.Rn_sim.Engine.collisions)
    (c "engine.collisions");
  Metrics.reset ()

(* --- harness: per-experiment metrics, cold sweep = warm replay --- *)

let tmpdir () =
  let d = Filename.temp_file "rn_metrics_test" "" in
  Sys.remove d;
  d

let test_experiment_metrics_cold_warm () =
  let dir = tmpdir () in
  let s = Store.open_ ~fsync:false dir in
  Harness.set_store s;
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Harness.clear_store ();
      Harness.reset_store_counters ();
      Harness.reset_experiment_metrics ();
      Store.close s)
    (fun () ->
      let cell seed =
        let dual = Harness.geometric ~seed ~n:24 ~degree:8 () in
        let detector = Detector.static (Detector.perfect (Dual.g dual)) in
        (Core.Mis.run ~seed ~detector dual).R.rounds
      in
      let sweep () =
        Harness.reset_experiment_metrics ();
        Harness.begin_experiment ~id:"TSTMET" ~scale:Harness.Quick ~version:1;
        let out = Harness.run_cells ~jobs:2 cell [ 1; 2; 3 ] in
        (out, Harness.experiment_metrics ())
      in
      let cold_out, cold = sweep () in
      let warm_out, warm = sweep () in
      let hits, _, _ = Harness.store_counters () in
      Alcotest.(check bool) "warm pass replayed" true (hits >= 3);
      Alcotest.(check (list int)) "results equal" cold_out warm_out;
      Alcotest.(check bool) "metrics survive the cache" true (cold = warm);
      match cold with
      | [ (id, snap) ] ->
        Alcotest.(check string) "experiment id" "TSTMET" id;
        Alcotest.(check (option int))
          "three engine runs aggregated" (Some 3)
          (List.assoc_opt "engine.runs" snap.Metrics.counters)
      | _ -> Alcotest.fail "expected exactly one experiment aggregate")

(* --- timing profiler folds into the metrics format --- *)

let test_timing_metrics_snapshot () =
  Timing.reset ();
  Timing.record Timing.Wake 0.001;
  Timing.record Timing.Deliver 0.002;
  Timing.add_rounds 5;
  Timing.add_silent_skipped 2;
  let s = Timing.metrics_snapshot () in
  let c name = List.assoc_opt name s.Metrics.counters in
  Alcotest.(check (option int)) "wake entries" (Some 1) (c "timing.wake.entries");
  Alcotest.(check (option int)) "deliver entries" (Some 1) (c "timing.deliver.entries");
  Alcotest.(check (option int)) "rounds" (Some 5) (c "timing.rounds");
  Alcotest.(check (option int)) "silent" (Some 2) (c "timing.silent_skipped");
  (match c "timing.wake.ns" with
  | Some ns -> Alcotest.(check bool) "wake ns positive" true (ns > 0)
  | None -> Alcotest.fail "timing.wake.ns missing");
  (* merges with an engine-style snapshot through the one pipeline *)
  let merged = Metrics.merge s (Metrics.of_counters [ ("engine.runs", 2) ]) in
  Alcotest.(check (option int))
    "merges with registry snapshots" (Some 2)
    (List.assoc_opt "engine.runs" merged.Metrics.counters);
  Timing.reset ()

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "ops" `Quick test_registry_ops;
          Alcotest.test_case "enabled flag" `Quick test_enabled_flag;
          Alcotest.test_case "pool totals" `Quick test_pool_totals;
          Alcotest.test_case "scoped isolation" `Quick test_scoped_isolation;
        ] );
      ( "algebra",
        [
          qtest qcheck_merge_commutative;
          qtest qcheck_merge_associative;
          qtest qcheck_hist_concat;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "sexp round-trip" `Quick test_snapshot_sexp_roundtrip;
          Alcotest.test_case "exposition exact" `Quick test_exposition_exact;
          qtest qcheck_exposition_merge_order;
        ] );
      ( "events",
        [
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "sink filters" `Quick test_sink_filters;
          qtest qcheck_export_roundtrips;
        ] );
      ( "engine",
        [
          qtest qcheck_traced_untraced;
          Alcotest.test_case "metrics recorded" `Quick test_engine_metrics_recorded;
        ] );
      ( "harness",
        [
          Alcotest.test_case "cold = warm experiment metrics" `Quick
            test_experiment_metrics_cold_warm;
          Alcotest.test_case "timing folds into metrics" `Quick test_timing_metrics_snapshot;
        ] );
    ]
