(* Tests for the crash-safe result store and the harness checkpointing
   layer built on it: record codec round-trips, journal truncation at
   every byte offset, cached-vs-fresh sweep equality at jobs 1 and 4,
   the retry/timeout failure paths, and gc/verify behaviour. *)

module Store = Rn_util.Store
module Harness = Rn_harness.Harness
module All = Rn_harness.All

let qtest = QCheck_alcotest.to_alcotest

(* --- scratch directories --- *)

let tmpdir () =
  let d = Filename.temp_file "rn_store_test" "" in
  Sys.remove d;
  d

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Every store/harness test resets the global store configuration on the
   way out, so suites stay independent. *)
let with_store ?retry ?timeout f =
  let dir = tmpdir () in
  let s = Store.open_ ~fsync:false dir in
  Harness.set_store ?retry ?timeout s;
  Fun.protect
    ~finally:(fun () ->
      Harness.clear_store ();
      Harness.reset_store_counters ();
      Store.close s)
    (fun () -> f dir s)

(* --- record codec --- *)

let key ?(exp = "EX") ?(scale = "quick") ?(ver = 1) ?(env = "eng") coord =
  { Store.exp; scale; coord; code_version = ver; env }

let qcheck_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      let word = string_size ~gen:printable (int_range 1 12) in
      tup5 word word (int_range 0 99) word (string_size (int_range 0 64)))
  in
  QCheck.Test.make ~name:"record codec round-trips (incl. binary payloads)" ~count:200
    (QCheck.make gen) (fun (exp, scale, ver, coord, payload) ->
      let k = { Store.exp; scale; coord; code_version = ver; env = "eng3" } in
      let status = if String.length payload mod 2 = 0 then Store.Done else Store.Failed in
      let r = { Store.key = k; status; payload } in
      match Store.decode_record (Store.encode_record r) with
      | Some r' ->
        r'.Store.payload = payload && r'.Store.status = status
        && Store.key_id r'.Store.key = Store.key_id k
      | None -> false)

let test_codec_rejects_corruption () =
  let r = { Store.key = key "b0.c0"; status = Store.Done; payload = "hello\nworld()" } in
  let line = Store.encode_record r in
  Alcotest.(check bool) "intact decodes" true (Store.decode_record line <> None);
  (* Flip one character at every position: a flipped record either fails
     to decode or — when the flip only mangles framing whitespace into a
     junk atom the codec ignores — decodes to the exact same data.  No
     flip may ever silently yield *different* data. *)
  let lied = ref 0 in
  String.iteri
    (fun i c ->
      if c <> '\n' then begin
        let b = Bytes.of_string line in
        Bytes.set b i (if c = 'z' then 'y' else 'z');
        match Store.decode_record (Bytes.to_string b) with
        | None -> ()
        | Some r' ->
          if
            r'.Store.payload <> r.Store.payload
            || r'.Store.status <> r.Store.status
            || Store.key_id r'.Store.key <> Store.key_id r.Store.key
          then incr lied
      end)
    line;
  Alcotest.(check int) "no flip yields different data" 0 !lied

(* --- journal crash-safety: truncate at every byte offset --- *)

let test_truncation_every_offset () =
  let dir = tmpdir () in
  let s = Store.open_ ~fsync:false dir in
  let payloads = List.init 6 (fun i -> Printf.sprintf "payload-%d-\x00\xff" i) in
  List.iteri
    (fun i p -> Store.put s (key (Printf.sprintf "b0.c%d" i)) Store.Done p)
    payloads;
  Store.close s;
  let path = Store.journal_path dir in
  let full = read_file path in
  let n = String.length full in
  (* record end offsets, from the line structure of the journal *)
  let ends = ref [] in
  String.iteri (fun i c -> if c = '\n' then ends := (i + 1) :: !ends) full;
  let ends = List.rev !ends in
  let header_end = List.hd ends in
  let record_ends = List.tl ends in
  Alcotest.(check int) "six records" 6 (List.length record_ends);
  for cut = 0 to n do
    write_file path (String.sub full 0 cut);
    let scan = Store.scan_file path in
    let expected =
      if cut < header_end then 0
      else List.length (List.filter (fun e -> e <= cut) record_ends)
    in
    Alcotest.(check int) (Printf.sprintf "records after cut at %d" cut) expected
      (List.length scan.Store.good);
    (* every surviving record is bit-for-bit intact *)
    List.iteri
      (fun i r ->
        Alcotest.(check string)
          (Printf.sprintf "payload %d intact (cut %d)" i cut)
          (List.nth payloads i) r.Store.payload)
      scan.Store.good;
    (* reopening repairs the tail and keeps exactly the intact prefix *)
    let s = Store.open_ ~fsync:false dir in
    Alcotest.(check int) "reopen count" expected (Store.count s);
    Store.close s
  done

(* --- cached-vs-fresh sweeps on a real experiment --- *)

let run_e5 () =
  match All.find "E5" with Some f -> f Harness.Quick | None -> assert false

let test_cached_sweep jobs () =
  Harness.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Harness.set_jobs 1)
    (fun () ->
      Harness.clear_store ();
      let fresh = Harness.render (run_e5 ()) in
      with_store (fun _dir _s ->
          Harness.reset_store_counters ();
          let cold = Harness.render (run_e5 ()) in
          let _, cold_misses, _ = Harness.store_counters () in
          Harness.reset_store_counters ();
          let warm = Harness.render (run_e5 ()) in
          let warm_hits, warm_misses, _ = Harness.store_counters () in
          Alcotest.(check string) "cold = fresh" fresh cold;
          Alcotest.(check string) "warm = fresh" fresh warm;
          Alcotest.(check bool) "cold run computed cells" true (cold_misses > 0);
          Alcotest.(check int) "warm run replays everything" cold_misses warm_hits;
          Alcotest.(check int) "warm run computes nothing" 0 warm_misses))

let test_kill_and_resume () =
  Harness.set_jobs 1;
  Harness.clear_store ();
  let fresh = Harness.render (run_e5 ()) in
  with_store (fun dir s ->
      let cold = Harness.render (run_e5 ()) in
      Alcotest.(check string) "cold = fresh" fresh cold;
      (* simulate a SIGKILL mid-sweep: chop the journal mid-record *)
      Harness.clear_store ();
      Store.close s;
      let path = Store.journal_path dir in
      let full = read_file path in
      write_file path (String.sub full 0 (String.length full * 3 / 5));
      let s2 = Store.open_ ~fsync:false dir in
      Alcotest.(check bool) "tail was dropped" true (Store.recovered_bytes s2 > 0);
      Harness.set_store s2;
      Fun.protect
        ~finally:(fun () -> Store.close s2)
        (fun () ->
          Harness.reset_store_counters ();
          let resumed = Harness.render (run_e5 ()) in
          let hits, misses, _ = Harness.store_counters () in
          Alcotest.(check string) "resumed = fresh" fresh resumed;
          Alcotest.(check bool) "some cells replayed" true (hits > 0);
          Alcotest.(check bool) "some cells recomputed" true (misses > 0)))

(* --- retry, failure, and timeout paths --- *)

let test_retry_recovers () =
  with_store ~retry:1 (fun _dir _s ->
      Harness.begin_experiment ~id:"TSTRETRY" ~scale:Harness.Quick ~version:1;
      let attempts = Atomic.make 0 in
      let out =
        Harness.run_cells ~jobs:1
          (fun i ->
            if i = 2 && Atomic.fetch_and_add attempts 1 = 0 then failwith "flaky";
            i * 10)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "values" [ 0; 10; 20; 30 ] out;
      let _, misses, failures = Harness.store_counters () in
      Alcotest.(check int) "all cells stored" 4 misses;
      Alcotest.(check int) "no failures recorded" 0 failures)

let test_failure_is_resumable () =
  with_store (fun _dir s ->
      Harness.begin_experiment ~id:"TSTFAIL" ~scale:Harness.Quick ~version:1;
      (match
         Harness.run_cells ~jobs:1 (fun i -> if i = 1 then failwith "boom" else i) [ 0; 1; 2 ]
       with
      | _ -> Alcotest.fail "expected Cell_failed"
      | exception Harness.Cell_failed { exp; failed; total } ->
        Alcotest.(check string) "exp" "TSTFAIL" exp;
        Alcotest.(check int) "failed" 1 failed;
        Alcotest.(check int) "total" 3 total);
      (* the failed cell is recorded but not replayable *)
      let k = { Store.exp = "TSTFAIL"; scale = "quick"; coord = "b0.c1";
                code_version = 1; env = Harness.cell_env } in
      Alcotest.(check bool) "failure recorded" true (Store.find_failed s k <> None);
      Alcotest.(check bool) "failure is a cache miss" true (Store.find s k = None);
      (* a later run retries only the failed cell *)
      Harness.reset_store_counters ();
      Harness.begin_experiment ~id:"TSTFAIL" ~scale:Harness.Quick ~version:1;
      let out = Harness.run_cells ~jobs:1 (fun i -> i) [ 0; 1; 2 ] in
      Alcotest.(check (list int)) "resumed values" [ 0; 1; 2 ] out;
      let hits, misses, _ = Harness.store_counters () in
      Alcotest.(check int) "two cells replayed" 2 hits;
      Alcotest.(check int) "one cell recomputed" 1 misses)

let test_timeout_records_failure () =
  with_store ~timeout:0.0 (fun _dir _s ->
      Harness.begin_experiment ~id:"TSTTIME" ~scale:Harness.Quick ~version:1;
      match Harness.run_cells ~jobs:1 (fun i -> i) [ 0; 1 ] with
      | _ -> Alcotest.fail "expected Cell_failed"
      | exception Harness.Cell_failed { failed; total; _ } ->
        Alcotest.(check int) "every cell over budget" total failed);
  (* without the budget, the same cells compute and cache normally *)
  with_store (fun _dir _s ->
      Harness.begin_experiment ~id:"TSTTIME" ~scale:Harness.Quick ~version:1;
      let out = Harness.run_cells ~jobs:1 (fun i -> i) [ 0; 1 ] in
      Alcotest.(check (list int)) "values" [ 0; 1 ] out)

(* --- gc and verify --- *)

let test_gc_prunes_stale () =
  let dir = tmpdir () in
  let s = Store.open_ ~fsync:false dir in
  Store.put s (key ~ver:1 "b0.c0") Store.Done "old";
  Store.put s (key ~ver:1 "b0.c1") Store.Done "old";
  Store.put s (key ~ver:2 "b0.c0") Store.Done "new";
  Store.put s (key ~ver:2 ~exp:"EY" "b0.c0") Store.Failed "err";
  let dropped = Store.gc s ~keep:(fun r -> r.Store.key.Store.code_version = 2) in
  Alcotest.(check int) "dropped" 2 dropped;
  Alcotest.(check int) "kept" 2 (Store.count s);
  Alcotest.(check bool) "stale gone" true (Store.find s (key ~ver:1 "b0.c0") = None);
  Alcotest.(check (option string)) "live kept" (Some "new") (Store.find s (key ~ver:2 "b0.c0"));
  (* the rewritten journal is intact and survives a reopen *)
  Store.close s;
  let scan = Store.scan_file (Store.journal_path dir) in
  Alcotest.(check (list string)) "no problems" [] scan.Store.problems;
  Alcotest.(check int) "reload" 2 (List.length scan.Store.good)

let test_verify_detects_corruption () =
  let dir = tmpdir () in
  let s = Store.open_ ~fsync:false dir in
  for i = 0 to 4 do
    Store.put s (key (Printf.sprintf "b0.c%d" i)) Store.Done (string_of_int i)
  done;
  Store.close s;
  let path = Store.journal_path dir in
  let scan = Store.scan_file path in
  Alcotest.(check (list string)) "clean journal verifies" [] scan.Store.problems;
  (* corrupt one byte in the middle: the scan must stop there *)
  let full = read_file path in
  let b = Bytes.of_string full in
  let mid = String.length full / 2 in
  Bytes.set b mid (if Bytes.get b mid = 'a' then 'b' else 'a');
  write_file path (Bytes.to_string b);
  let scan = Store.scan_file path in
  Alcotest.(check bool) "corruption reported" true (scan.Store.problems <> []);
  Alcotest.(check bool) "prefix survives" true
    (List.length scan.Store.good < 5 && scan.Store.good_bytes < String.length full)

let test_last_run_sidecar () =
  let dir = tmpdir () in
  Store.write_last_run ~dir ~hits:12 ~misses:3 ~failures:1;
  Alcotest.(check bool) "round-trips" true (Store.read_last_run ~dir = Some (12, 3, 1));
  Store.write_last_run ~dir ~hits:0 ~misses:0 ~failures:0;
  Alcotest.(check bool) "overwrites" true (Store.read_last_run ~dir = Some (0, 0, 0))

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          qtest qcheck_codec_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_codec_rejects_corruption;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "truncation at every byte offset" `Quick
            test_truncation_every_offset;
          Alcotest.test_case "kill mid-sweep and resume" `Slow test_kill_and_resume;
        ] );
      ( "cached-sweeps",
        [
          Alcotest.test_case "cached = fresh (jobs 1)" `Slow (test_cached_sweep 1);
          Alcotest.test_case "cached = fresh (jobs 4)" `Slow (test_cached_sweep 4);
        ] );
      ( "failure-paths",
        [
          Alcotest.test_case "retry recovers a flaky cell" `Quick test_retry_recovers;
          Alcotest.test_case "failed cells are resumable" `Quick test_failure_is_resumable;
          Alcotest.test_case "timeout records failure" `Quick test_timeout_records_failure;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "gc prunes stale versions" `Quick test_gc_prunes_stale;
          Alcotest.test_case "verify detects corruption" `Quick test_verify_detects_corruption;
          Alcotest.test_case "last-run sidecar" `Quick test_last_run_sidecar;
        ] );
    ]
