(* Tests for the sweep service: protocol codec round-trips (including
   truncated and garbage frames, which must decode to [Error _] rather
   than raise), scheduler state-machine transitions (claims, dead-worker
   requeue, cancel, failure propagation), multi-handle store sharing
   (the substrate workers coordinate through), and an in-process
   end-to-end daemon+worker sweep checked byte-for-byte against a direct
   run. *)

module P = Rn_serve.Protocol
module S = Rn_serve.Scheduler
module Client = Rn_serve.Client
module Store = Rn_util.Store
module Harness = Rn_harness.Harness
module All = Rn_harness.All

let qtest = QCheck_alcotest.to_alcotest

let tmpdir () =
  let d = Filename.temp_file "rn_serve_test" "" in
  Sys.remove d;
  d

(* --- protocol codec --- *)

let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
let free_gen = QCheck.Gen.(string_size (int_range 0 40))  (* any bytes *)

let spec_gen =
  QCheck.Gen.(
    let* exps = list_size (int_range 1 4) word_gen in
    let* full = bool in
    let* jobs = int_range 1 8 in
    let* retry = int_range 0 3 in
    return { P.exps; scale = (if full then P.Full else P.Quick); jobs; retry })

let scale_gen = QCheck.Gen.(map (fun b -> if b then P.Full else P.Quick) bool)

let request_gen =
  QCheck.Gen.(
    let id = int_range 1 999 in
    oneof
      [
        map (fun s -> P.Submit s) spec_gen;
        return (P.Status None);
        map (fun j -> P.Status (Some j)) id;
        map (fun (j, p) -> P.Wait { job = j; progress = p }) (tup2 id bool);
        map (fun j -> P.Results j) id;
        map (fun j -> P.Cancel j) id;
        return P.Metrics;
        return P.Metrics_reg;
        return P.Health;
        map
          (fun (exp, scale, coord) -> P.Trace { exp; scale; coord })
          (tup3 word_gen scale_gen word_gen);
        return P.Shutdown;
        map (fun pid -> P.Hello { pid }) id;
        map (fun worker -> P.Next { worker }) id;
        map
          (fun (worker, job, key) -> P.Claim { worker; job; key })
          (tup3 id id word_gen);
        map
          (fun ((worker, job, key), (ok, err, us)) ->
            P.Cell_done { worker; job; key; ok; err; us })
          (tup2 (tup3 id id word_gen) (tup3 bool free_gen (int_range 0 1_000_000)));
        map
          (fun (worker, job, key) -> P.Cell_hit { worker; job; key })
          (tup3 id id word_gen);
        map
          (fun ((worker, job, exp), (output, hits, misses, failed)) ->
            P.Exp_done { worker; job; exp; output; hits; misses; failed })
          (tup2 (tup3 id id word_gen) (tup4 free_gen id id bool));
        map (fun (worker, job) -> P.Job_done { worker; job }) (tup2 id id);
        map (fun worker -> P.Heartbeat { worker }) id;
        map (fun (worker, snap) -> P.Metrics_push { worker; snap }) (tup2 id free_gen);
        map
          (fun (worker, tid, data, err) -> P.Trace_done { worker; tid; data; err })
          (tup4 id id free_gen free_gen);
      ])

let summary_gen =
  QCheck.Gen.(
    let* job = int_range 1 999 in
    let* spec = spec_gen in
    let* state = oneofl [ P.Queued; P.Running; P.Done; P.Failed; P.Cancelled ] in
    let* a = int_range 0 99 and* b = int_range 0 99 and* c = int_range 0 99 in
    let* d = int_range 0 99 and* e = int_range 0 99 and* f = int_range 0 99 in
    return
      {
        P.job;
        state;
        spec;
        exps_done = a;
        cells_done = b;
        cells_failed = c;
        claims = d;
        hits = e;
        misses = f;
      })

let phase_gen =
  QCheck.Gen.oneofl [ P.P_claimed; P.P_done; P.P_hit; P.P_failed; P.P_requeued ]

let progress_gen =
  QCheck.Gen.(
    map
      (fun ((pseq, pjob, pworker), (pkey, phase, pus)) ->
        { P.pseq; pjob; pworker; pkey; phase; pus })
      (tup2 (tup3 (int_range 1 99999) (int_range 1 999) (int_range 1 999))
         (tup3 word_gen phase_gen (int_range 0 1_000_000))))

let worker_health_gen =
  QCheck.Gen.(
    map
      (fun ((hwid, hpid, halive), (hage_ms, hcells, hjob)) ->
        { P.hwid; hpid; halive; hage_ms; hcells; hjob })
      (tup2
         (tup3 (int_range 1 99) (int_range 1 99999) bool)
         (tup3 (int_range 0 999999) (int_range 0 9999) (option (int_range 1 99)))))

let health_gen =
  QCheck.Gen.(
    let nat = int_range 0 99999 in
    map
      (fun ((a, b, c, d), (e, f, g, h), (i, j, k, l), (m, ws, slow)) ->
        {
          P.uptime_ms = a;
          jobs_open = b;
          jobs_total = c;
          waiters = d;
          inflight = e;
          requeued = f;
          claim_waits = g;
          done_cells = h;
          hit_cells = i;
          failed_cells = j;
          mean_cell_us = k;
          journal_bytes = l;
          journal_grown = m;
          hworkers = ws;
          slow_claims = slow;
        })
      (tup4 (tup4 nat nat nat nat) (tup4 nat nat nat nat) (tup4 nat nat nat nat)
         (tup3 nat
            (list_size (int_range 0 3) worker_health_gen)
            (list_size (int_range 0 3) (tup3 word_gen (int_range 1 99) nat)))))

let response_gen =
  QCheck.Gen.(
    let id = int_range 1 999 in
    oneof
      [
        return P.Ok_unit;
        map (fun j -> P.Job_id j) id;
        map (fun s -> P.Metrics_reg_r s) free_gen;
        map (fun h -> P.Health_r h) health_gen;
        map (fun p -> P.Progress_r p) progress_gen;
        map (fun s -> P.Trace_r s) free_gen;
        map
          (fun ((tid, exp, scale), (coord, store)) ->
            P.Trace_task { tid; exp; scale; coord; store })
          (tup2 (tup3 id word_gen scale_gen) (tup2 word_gen free_gen));
        map
          (fun (jobs, pids) ->
            let workers =
              List.mapi
                (fun i pid ->
                  { P.wid = i + 1; pid; alive = pid mod 2 = 0; wjob = (if pid mod 3 = 0 then Some pid else None) })
                pids
            in
            P.Status_r { jobs; workers })
          (tup2 (list_size (int_range 0 3) summary_gen) (list_size (int_range 0 3) id));
        map (fun s -> P.Results_r s) free_gen;
        map
          (fun kvs -> P.Metrics_r kvs)
          (list_size (int_range 0 5) (tup2 word_gen (int_range 0 9999)));
        map (fun w -> P.Worker_id w) id;
        map
          (fun (job, store, spec) -> P.Assign { job; store; spec })
          (tup3 id free_gen spec_gen);
        return P.Wait_r;
        return P.Quit_r;
        return (P.Claim_r P.Mine);
        return (P.Claim_r P.Theirs);
        map (fun m -> P.Claim_r (P.Key_failed m)) free_gen;
        return (P.Claim_r P.Job_cancelled);
        map (fun m -> P.Err m) free_gen;
      ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request codec round-trips" ~count:500 (QCheck.make request_gen)
    (fun r -> P.decode_request (P.encode_request r) = Ok r)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response codec round-trips" ~count:500 (QCheck.make response_gen)
    (fun r -> P.decode_response (P.encode_response r) = Ok r)

(* Garbage never raises: any byte string decodes to Ok or a clean Error. *)
let qcheck_garbage_total =
  QCheck.Test.make ~name:"garbage frames decode totally" ~count:500
    (QCheck.make QCheck.Gen.(string_size (int_range 0 60)))
    (fun s ->
      (match P.decode_request s with Ok _ | Error _ -> true)
      && match P.decode_response s with Ok _ | Error _ -> true)

(* Truncating a valid frame at any byte never raises either. *)
let qcheck_truncation_total =
  QCheck.Test.make ~name:"truncated frames decode totally" ~count:200
    (QCheck.make QCheck.Gen.(tup2 request_gen (int_range 0 1000)))
    (fun (r, cut) ->
      let line = P.encode_request r in
      let cut = cut mod max 1 (String.length line) in
      let prefix = String.sub line 0 cut in
      match P.decode_request prefix with Ok _ | Error _ -> true)

let test_specific_garbage () =
  let bad =
    [ ""; "\n"; "("; ")"; "(submit"; "(ok (results zz))"; "(claim (worker x))"; "((()))" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "garbage %S -> Error" s)
        true
        (Result.is_error (P.decode_request s)))
    bad;
  Alcotest.(check bool)
    "err frame with bad hex -> Error" true
    (Result.is_error (P.decode_response "(err notxhex)\n"))

let test_hex_roundtrip () =
  let cases = [ ""; "hello"; "a\nb(c)d;e f\tg"; String.init 256 Char.chr ] in
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "hex round-trip" (Some s) (P.of_hex (P.to_hex s)))
    cases;
  Alcotest.(check (option string)) "bad prefix" None (P.of_hex "ff");
  Alcotest.(check (option string)) "odd length" None (P.of_hex "xfff");
  Alcotest.(check (option string)) "bad digit" None (P.of_hex "xzz")

(* --- scheduler --- *)

let spec ?(exps = [ "E5" ]) () = { P.exps; scale = P.Quick; jobs = 1; retry = 0 }

let setup ?exps () =
  let s = S.create () in
  let j = S.submit s (spec ?exps ()) ~now:0.0 in
  let w1 = S.add_worker s ~pid:100 ~now:0.0 in
  let w2 = S.add_worker s ~pid:200 ~now:0.0 in
  (s, j, w1, w2)

let check_claim msg expected got =
  let name = function
    | P.Mine -> "mine"
    | P.Theirs -> "theirs"
    | P.Key_failed m -> "keyfailed:" ^ m
    | P.Job_cancelled -> "cancelled"
  in
  Alcotest.(check string) msg (name expected) (name got)

let test_sched_assign_and_claim () =
  let s, j, w1, w2 = setup () in
  (match S.next_assignment s ~worker:w1 ~now:1.0 with
  | `Assign (j', sp) ->
    Alcotest.(check int) "assigned the submitted job" j j';
    Alcotest.(check (list string)) "spec exps" [ "E5" ] sp.P.exps
  | _ -> Alcotest.fail "expected an assignment");
  (match S.next_assignment s ~worker:w2 ~now:1.0 with
  | `Assign (j', _) -> Alcotest.(check int) "fanned onto the same job" j j'
  | _ -> Alcotest.fail "expected an assignment");
  check_claim "first asker owns" P.Mine (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:2.0);
  check_claim "owner re-asks, still owns" P.Mine (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:2.1);
  check_claim "peer is told theirs" P.Theirs (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:2.2);
  S.cell_done s ~worker:w1 ~job:j ~key:"k1" ~ok:true ~err:"" ~us:100 ~now:3.0;
  (* after completion the claim is gone; a re-ask claims fresh (the
     asker will find the record in the store first in real life) *)
  check_claim "post-completion re-claim" P.Mine (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:3.1)

let test_sched_requeue_on_dead_worker () =
  let s, j, w1, w2 = setup () in
  ignore (S.next_assignment s ~worker:w1 ~now:1.0);
  ignore (S.next_assignment s ~worker:w2 ~now:1.0);
  check_claim "w1 owns k1" P.Mine (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:2.0);
  check_claim "w2 waits" P.Theirs (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:2.1);
  S.worker_dead s ~worker:w1;
  check_claim "orphaned cell requeues to w2" P.Mine (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:3.0);
  Alcotest.(check bool) "requeue counted" true (List.mem_assoc "cells.requeued" (S.counters s));
  (* a dead worker asking again is told to quit *)
  (match S.next_assignment s ~worker:w1 ~now:4.0 with
  | `Quit -> ()
  | _ -> Alcotest.fail "dead worker should be told to quit")

let test_sched_heartbeat_reap () =
  let s, j, w1, w2 = setup () in
  ignore (S.next_assignment s ~worker:w1 ~now:1.0);
  check_claim "w1 owns" P.Mine (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:1.0);
  S.touch s w2 ~now:50.0;
  let reaped = S.reap s ~now:50.0 ~timeout:30.0 in
  Alcotest.(check (list int)) "silent w1 reaped" [ w1 ] reaped;
  check_claim "reaped worker's cell requeues" P.Mine (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:50.1);
  Alcotest.(check (list int)) "reap is idempotent" [] (S.reap s ~now:51.0 ~timeout:30.0)

let test_sched_failed_key () =
  let s, j, w1, w2 = setup () in
  ignore (S.next_assignment s ~worker:w1 ~now:1.0);
  check_claim "w1 owns" P.Mine (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:1.0);
  S.cell_done s ~worker:w1 ~job:j ~key:"k1" ~ok:false ~err:"boom" ~us:0 ~now:2.0;
  check_claim "peers learn the failure" (P.Key_failed "boom")
    (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:2.1);
  (* a failed exp makes the job Failed and results an error *)
  S.exp_done s ~job:j ~exp:"E5" ~output:"" ~hits:0 ~misses:1 ~failed:true;
  S.job_done s ~worker:w1 ~job:j ~now:3.0;
  Alcotest.(check bool) "job finished" true (S.finished s j);
  Alcotest.(check bool) "results is an error" true (Result.is_error (S.results s j))

let test_sched_cancel () =
  let s, j, w1, _ = setup () in
  ignore (S.next_assignment s ~worker:w1 ~now:1.0);
  Alcotest.(check bool) "cancel known job" true (S.cancel s ~job:j);
  Alcotest.(check bool) "cancel unknown job" false (S.cancel s ~job:999);
  check_claim "claims after cancel" P.Job_cancelled (S.claim s ~worker:w1 ~job:j ~key:"k" ~now:2.0);
  Alcotest.(check bool) "cancelled job is finished" true (S.finished s j);
  Alcotest.(check bool) "results is an error" true (Result.is_error (S.results s j));
  (* no open jobs left: workers idle *)
  match S.next_assignment s ~worker:w1 ~now:3.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "expected wait"

let test_sched_results_order_and_done () =
  let s = S.create () in
  let j = S.submit s (spec ~exps:[ "E5"; "E8a" ] ()) ~now:0.0 in
  let w = S.add_worker s ~pid:1 ~now:0.0 in
  ignore (S.next_assignment s ~worker:w ~now:0.1);
  Alcotest.(check bool) "results before done is an error" true (Result.is_error (S.results s j));
  (* deliver out of request order; results must respect request order *)
  S.exp_done s ~job:j ~exp:"E8a" ~output:"TABLE-B" ~hits:1 ~misses:2 ~failed:false;
  S.exp_done s ~job:j ~exp:"E5" ~output:"TABLE-A" ~hits:3 ~misses:4 ~failed:false;
  (* duplicate report from a second finisher is ignored *)
  S.exp_done s ~job:j ~exp:"E5" ~output:"TABLE-A" ~hits:9 ~misses:9 ~failed:false;
  S.job_done s ~worker:w ~job:j ~now:1.0;
  Alcotest.(check bool) "job done" true (S.finished s j);
  (match S.results s j with
  | Ok out -> Alcotest.(check string) "request order" "TABLE-ATABLE-B" out
  | Error m -> Alcotest.fail m);
  let jobs, _ = S.status s (Some j) in
  match jobs with
  | [ sm ] ->
    Alcotest.(check int) "hits summed once per exp" 4 sm.P.hits;
    Alcotest.(check int) "misses summed once per exp" 6 sm.P.misses
  | _ -> Alcotest.fail "expected one summary"

let test_sched_incomplete_job_done () =
  let s = S.create () in
  let j = S.submit s (spec ~exps:[ "E5"; "E8a" ] ()) ~now:0.0 in
  let w = S.add_worker s ~pid:1 ~now:0.0 in
  ignore (S.next_assignment s ~worker:w ~now:0.1);
  S.exp_done s ~job:j ~exp:"E5" ~output:"T" ~hits:0 ~misses:0 ~failed:false;
  (* a worker claiming "job done" with outputs missing must not finish it *)
  S.job_done s ~worker:w ~job:j ~now:1.0;
  Alcotest.(check bool) "job still open" false (S.finished s j)

(* Progress events: the per-job log is ordered (pseq strictly from 1),
   records each lifecycle transition, supports resume-from, and
   deduplicates terminal events per key so the done/hit/failed counts
   sum exactly to the number of distinct cells. *)
let test_sched_progress_stream () =
  let s, j, w1, w2 = setup () in
  ignore (S.next_assignment s ~worker:w1 ~now:1.0);
  ignore (S.next_assignment s ~worker:w2 ~now:1.0);
  ignore (S.claim s ~worker:w1 ~job:j ~key:"k1" ~now:2.0);
  ignore (S.claim s ~worker:w2 ~job:j ~key:"k2" ~now:2.1);
  S.cell_done s ~worker:w2 ~job:j ~key:"k2" ~ok:true ~err:"" ~us:500 ~now:2.5;
  S.worker_dead s ~worker:w1;  (* k1 orphaned -> requeued *)
  ignore (S.claim s ~worker:w2 ~job:j ~key:"k1" ~now:3.0);
  S.cell_hit s ~worker:w2 ~job:j ~key:"k3" ~now:3.1;
  S.cell_done s ~worker:w2 ~job:j ~key:"k1" ~ok:false ~err:"boom" ~us:0 ~now:3.2;
  let evs = S.progress_events s j ~from:0 in
  List.iteri
    (fun i p -> Alcotest.(check int) "pseq strictly increasing from 1" (i + 1) p.P.pseq)
    evs;
  Alcotest.(check (list string))
    "phases in transition order"
    [ "claimed"; "claimed"; "done"; "requeued"; "claimed"; "hit"; "failed" ]
    (List.map (fun p -> P.phase_name p.P.phase) evs);
  (* a resumed watcher sees only what it has not consumed *)
  Alcotest.(check int) "resume from 5" 2 (List.length (S.progress_events s j ~from:5));
  Alcotest.(check int) "progress_count" 7 (S.progress_count s j);
  (* replays from the other workers of the fan-out emit nothing *)
  S.cell_done s ~worker:w2 ~job:j ~key:"k2" ~ok:true ~err:"" ~us:9 ~now:4.0;
  S.cell_hit s ~worker:w2 ~job:j ~now:4.1 ~key:"k3";
  Alcotest.(check int) "terminal events deduplicated" 7 (S.progress_count s j);
  Alcotest.(check int) "cells.done counted once" 1 (S.counter_value s "cells.done");
  Alcotest.(check int) "cells.hit counted once" 1 (S.counter_value s "cells.hit");
  Alcotest.(check int) "cells.failed counted once" 1 (S.counter_value s "cells.failed");
  Alcotest.(check int) "cells.requeued counted" 1 (S.counter_value s "cells.requeued");
  (* timings: only the ok cell feeds the mean and the slowest ranking *)
  Alcotest.(check int) "mean cell us" 500 (S.mean_cell_us s);
  Alcotest.(check (list (pair string int))) "slowest ranking" [ ("k2", 500) ] (S.slowest s j)

(* On-demand trace tasks: offered to idle workers ahead of job
   assignment, released when the owner dies, first delivery wins. *)
let test_sched_trace_tasks () =
  let s = S.create () in
  let w1 = S.add_worker s ~pid:1 ~now:0.0 in
  let w2 = S.add_worker s ~pid:2 ~now:0.0 in
  Alcotest.(check bool) "no work yet" false (S.has_work s);
  let tid = S.add_trace s ~exp:"E5" ~scale:P.Quick ~coord:"n=64" in
  Alcotest.(check bool) "pending trace is work" true (S.has_work s);
  (match S.next_assignment s ~worker:w1 ~now:1.0 with
  | `Trace (tid', exp, scale, coord) ->
    Alcotest.(check int) "task id" tid tid';
    Alcotest.(check string) "exp" "E5" exp;
    Alcotest.(check bool) "scale" true (scale = P.Quick);
    Alcotest.(check string) "coord" "n=64" coord
  | _ -> Alcotest.fail "expected the trace task");
  (match S.next_assignment s ~worker:w2 ~now:1.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "a dispatched trace is not re-offered");
  (* owner dies before delivering: the task is released and re-offered *)
  S.worker_dead s ~worker:w1;
  (match S.next_assignment s ~worker:w2 ~now:2.0 with
  | `Trace (tid', _, _, _) -> Alcotest.(check int) "re-offered task" tid tid'
  | _ -> Alcotest.fail "expected the released trace task");
  S.trace_done s ~worker:w2 ~tid ~data:"{}" ~err:"" ~now:3.0;
  (match S.trace_result s ~tid with
  | Some (Ok "{}") -> ()
  | _ -> Alcotest.fail "expected the delivered trace");
  (* duplicate delivery (released-then-both-computed race) is ignored *)
  S.trace_done s ~worker:w2 ~tid ~data:"other" ~err:"" ~now:3.1;
  (match S.trace_result s ~tid with
  | Some (Ok "{}") -> ()
  | _ -> Alcotest.fail "first delivery wins");
  S.remove_trace s ~tid;
  Alcotest.(check bool) "no pending traces left" false (S.has_work s)

(* --- store: multiple handles on one journal (the worker substrate) --- *)

let key ?(exp = "EX") ?(scale = "quick") ?(ver = 1) ?(env = "eng") coord =
  { Store.exp; scale; coord; code_version = ver; env }

let test_store_refresh_sees_peer_appends () =
  let dir = tmpdir () in
  let a = Store.open_ ~fsync:false dir in
  let b = Store.open_ ~fsync:false dir in
  Store.put a (key "b0.c0") Store.Done "payload-a";
  Alcotest.(check (option string)) "b does not see it yet" None (Store.find b (key "b0.c0"));
  Alcotest.(check int) "refresh picks up one record" 1 (Store.refresh b);
  Alcotest.(check (option string))
    "b sees a's append" (Some "payload-a")
    (Store.find b (key "b0.c0"));
  Alcotest.(check int) "refresh is then a no-op" 0 (Store.refresh b);
  (* interleaved appends from both handles all land *)
  Store.put b (key "b0.c1") Store.Done "payload-b";
  Store.put a (key "b0.c2") Store.Done "payload-a2";
  ignore (Store.refresh a);
  ignore (Store.refresh b);
  Alcotest.(check int) "a indexes all three" 3 (Store.count a);
  Alcotest.(check int) "b indexes all three" 3 (Store.count b);
  let scan = Store.scan_file (Store.journal_path dir) in
  Alcotest.(check (list string)) "journal intact" [] scan.Store.problems;
  Store.close a;
  Store.close b

let test_store_survives_peer_gc () =
  let dir = tmpdir () in
  let a = Store.open_ ~fsync:false dir in
  let b = Store.open_ ~fsync:false dir in
  Store.put a (key "b0.c0") Store.Done "keep";
  Store.put a (key "b0.c1") Store.Failed "boom";
  ignore (Store.refresh b);
  (* a rewrites the journal (rename): b's fd now points at a dead inode *)
  let dropped = Store.gc a ~keep:(fun r -> r.Store.status = Store.Done) in
  Alcotest.(check int) "gc dropped the failure" 1 dropped;
  (* b's next append must detect the rotation and land in the new file *)
  Store.put b (key "b0.c2") Store.Done "post-gc";
  ignore (Store.refresh a);
  Alcotest.(check (option string))
    "a sees b's post-gc append" (Some "post-gc")
    (Store.find a (key "b0.c2"));
  ignore (Store.refresh b);
  Alcotest.(check (option string))
    "b rescans the rewritten journal" (Some "keep")
    (Store.find b (key "b0.c0"));
  Alcotest.(check (option string)) "gc'd record is gone" None (Store.find_failed b (key "b0.c1"));
  let scan = Store.scan_file (Store.journal_path dir) in
  Alcotest.(check (list string)) "journal intact" [] scan.Store.problems;
  Alcotest.(check int) "two live records" 2 (List.length scan.Store.good);
  Store.close a;
  Store.close b

(* --- end-to-end: in-process daemon + worker over a real socket --- *)

let test_e2e_daemon_sweep () =
  (* Expected bytes: the direct, store-less path — what `rn_cli
     experiment E5` prints. *)
  let expected =
    match All.find "E5" with
    | Some f -> Harness.render (f Harness.Quick)
    | None -> Alcotest.fail "E5 not registered"
  in
  let dir = tmpdir () in
  let sock = dir ^ ".sock" in
  let daemon =
    Domain.spawn (fun () ->
        Rn_serve.Daemon.run ~workers:0 ~spawn:false ~socket:sock ~store_dir:dir ())
  in
  let rec await_socket n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "daemon never bound its socket"
    else begin
      Unix.sleepf 0.02;
      await_socket (n - 1)
    end
  in
  await_socket 250;
  let worker =
    Domain.spawn (fun () -> Rn_serve.Worker.run ~idle_sleep:0.01 ~socket:sock ())
  in
  let io = Client.connect sock in
  let coord, daemon_trace =
    Fun.protect
      ~finally:(fun () -> Client.close io)
      (fun () ->
      let submit () =
        match
          Client.rpc io (P.Submit { P.exps = [ "E5" ]; scale = P.Quick; jobs = 1; retry = 0 })
        with
        | P.Job_id j -> j
        | _ -> Alcotest.fail "expected a job id"
      in
      let results j =
        match Client.rpc io (P.Results j) with
        | P.Results_r out -> out
        | P.Err m -> Alcotest.fail m
        | _ -> Alcotest.fail "expected results"
      in
      (* cold job, watched through the progress stream *)
      let j1 = submit () in
      let cold = ref [] in
      (match Client.wait_progress io j1 ~on_progress:(fun p -> cold := p :: !cold) with
      | P.Ok_unit -> ()
      | _ -> Alcotest.fail "expected progress wait to succeed");
      let cold = List.rev !cold in
      Alcotest.(check bool) "cold progress stream non-empty" true (cold <> []);
      List.iteri
        (fun i p -> Alcotest.(check int) "stream pseq monotone" (i + 1) p.P.pseq)
        cold;
      Alcotest.(check string) "daemon sweep == direct run" expected (results j1);
      (* terminal per-cell states sum exactly to the cells in the store *)
      let record_count = List.length (Store.scan_file (Store.journal_path dir)).Store.good in
      let count phase l = List.length (List.filter (fun p -> p.P.phase = phase) l) in
      let terminal l = count P.P_done l + count P.P_hit l + count P.P_failed l in
      Alcotest.(check bool) "store has records" true (record_count > 0);
      Alcotest.(check int) "cold terminal events = store cells" record_count (terminal cold);
      Alcotest.(check int) "cold cells all computed" record_count (count P.P_done cold);
      (* warm re-submit: identical bytes, zero misses, all-hit provenance *)
      let j2 = submit () in
      let warm = ref [] in
      (match Client.wait_progress io j2 ~on_progress:(fun p -> warm := p :: !warm) with
      | P.Ok_unit -> ()
      | _ -> Alcotest.fail "expected progress wait to succeed");
      let warm = List.rev !warm in
      Alcotest.(check string) "warm re-submit identical" expected (results j2);
      Alcotest.(check int) "warm terminal events = store cells" record_count (terminal warm);
      Alcotest.(check int) "warm cells all store hits" record_count (count P.P_hit warm);
      (match Client.rpc io (P.Status (Some j2)) with
      | P.Status_r { jobs = [ sm ]; _ } ->
        Alcotest.(check int) "warm misses" 0 sm.P.misses;
        Alcotest.(check bool) "warm hits > 0" true (sm.P.hits > 0)
      | _ -> Alcotest.fail "expected one job summary");
      (* a plain wait on a finished job still returns immediately *)
      (match Client.rpc io (P.Wait { job = j2; progress = false }) with
      | P.Ok_unit -> ()
      | _ -> Alcotest.fail "expected plain wait on finished job");
      (* health reflects the sweep's terminal counters *)
      (match Client.rpc io P.Health with
      | P.Health_r h ->
        Alcotest.(check int) "health done cells" record_count h.P.done_cells;
        Alcotest.(check int) "health hit cells" record_count h.P.hit_cells;
        Alcotest.(check bool) "health journal bytes" true (h.P.journal_bytes > 0)
      | _ -> Alcotest.fail "expected health");
      (* merged metrics exposition parses back into a snapshot that
         carries the scheduler counters and the worker's pushed registry *)
      (match Client.rpc io P.Metrics_reg with
      | P.Metrics_reg_r s ->
        let snap = Rn_util.Metrics.snapshot_of_sexp (Rn_util.Sexp.parse_string s) in
        Alcotest.(check (option int))
          "exposition carries cells.done" (Some record_count)
          (List.assoc_opt "cells.done" snap.Rn_util.Metrics.counters)
      | _ -> Alcotest.fail "expected metrics exposition");
      (* on-demand trace of a finished cell, via a worker re-run *)
      let coord =
        match (Store.scan_file (Store.journal_path dir)).Store.good with
        | r :: _ -> r.Store.key.Store.coord
        | [] -> Alcotest.fail "store is empty"
      in
      let data =
        match Client.rpc io (P.Trace { exp = "E5"; scale = P.Quick; coord }) with
        | P.Trace_r data -> data
        | P.Err m -> Alcotest.fail ("trace failed: " ^ m)
        | _ -> Alcotest.fail "expected a trace reply"
      in
      let evs = Rn_sim.Events.of_string data in
      Alcotest.(check bool) "trace round-trips through Events.of_string" true (evs <> []);
      (* unknown experiment is rejected at submit and at trace *)
      (match
         Client.rpc io (P.Submit { P.exps = [ "NOPE" ]; scale = P.Quick; jobs = 1; retry = 0 })
       with
      | P.Err _ -> ()
      | _ -> Alcotest.fail "expected submit of unknown experiment to fail");
      (match Client.rpc io (P.Trace { exp = "NOPE"; scale = P.Quick; coord }) with
      | P.Err _ -> ()
      | _ -> Alcotest.fail "expected trace of unknown experiment to fail");
      (match Client.rpc io P.Shutdown with
      | P.Ok_unit -> ()
      | _ -> Alcotest.fail "expected shutdown ok");
      (coord, data))
  in
  Domain.join worker;
  Domain.join daemon;
  (* determinism: a direct traced re-run of the same cell against the
     same store yields byte-identical Chrome JSON (what `rn_cli trace
     cell` prints; scripts/serve_smoke.sh re-checks this end to end) *)
  let direct =
    let store = Store.open_ dir in
    Fun.protect
      ~finally:(fun () ->
        Harness.clear_trace_target ();
        Harness.clear_store ();
        Store.close store)
      (fun () ->
        Harness.set_store store;
        Harness.set_jobs 1;
        Harness.set_trace_target ~exp:"E5" ~coord ();
        (match All.find "E5" with
        | Some f -> ignore (f Harness.Quick)
        | None -> Alcotest.fail "E5 not registered");
        match Harness.take_trace_events () with
        | Some evs -> Rn_sim.Events.to_chrome evs
        | None -> Alcotest.fail "direct trace produced no events")
  in
  Alcotest.(check string) "daemon trace == direct traced run" direct daemon_trace

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          qtest qcheck_request_roundtrip;
          qtest qcheck_response_roundtrip;
          qtest qcheck_garbage_total;
          qtest qcheck_truncation_total;
          Alcotest.test_case "specific garbage frames" `Quick test_specific_garbage;
          Alcotest.test_case "hex framing" `Quick test_hex_roundtrip;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "assign and claim" `Quick test_sched_assign_and_claim;
          Alcotest.test_case "requeue on dead worker" `Quick test_sched_requeue_on_dead_worker;
          Alcotest.test_case "heartbeat reap" `Quick test_sched_heartbeat_reap;
          Alcotest.test_case "failed key propagates" `Quick test_sched_failed_key;
          Alcotest.test_case "cancel" `Quick test_sched_cancel;
          Alcotest.test_case "results order and dedup" `Quick test_sched_results_order_and_done;
          Alcotest.test_case "incomplete job stays open" `Quick test_sched_incomplete_job_done;
          Alcotest.test_case "progress stream order and dedup" `Quick test_sched_progress_stream;
          Alcotest.test_case "trace task lifecycle" `Quick test_sched_trace_tasks;
        ] );
      ( "store-multiproc",
        [
          Alcotest.test_case "refresh sees peer appends" `Quick test_store_refresh_sees_peer_appends;
          Alcotest.test_case "appends survive peer gc" `Quick test_store_survives_peer_gc;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "daemon sweep == direct run" `Quick test_e2e_daemon_sweep ] );
    ]
