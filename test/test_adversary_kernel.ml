(* Differential tests for the word-parallel adversary kernel.

   Deterministic policies (all_gray, spiteful, jamming) carry a mask-
   algebra kernel that must reproduce the scalar [choose]'s activation
   bitset bit for bit, at any shard count, with the same scratch reused
   across rounds.  This suite certifies it at two levels:

   - directly at the [Adversary] API: random duals x random broadcaster
     sets, [choose] vs [choose_kernel] at shards 1/2/4, many consecutive
     rounds against one scratch (so stale scratch state shows up);
   - end to end through the engine: whole-run equality across
     [adv_kernel] `On/`Off/`Auto x shards 1/2/4 against [run_reference],
     for every policy (randomised ones included — their scalar path was
     reworked too and must not have moved a single RNG draw), and traced
     vs untraced runs (a sink forces the scalar path but must not change
     the bytes). *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary
module Events = Rn_sim.Events

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

(* Random dual graph: enough gray structure that activation sets are
   non-trivial, enough reliable structure that jamming finds victims. *)
let build_dual ~n ~rel_w ~gray_w gseed =
  let rng = Rng.create gseed in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let r = Rng.int rng 10 in
      if r < rel_w then es := (u, v) :: !es
      else if r < rel_w + gray_w then grays := (u, v) :: !grays
    done
  done;
  Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays ()

let kernel_policies =
  [| ("all_gray", Adversary.all_gray); ("spiteful", Adversary.spiteful); ("jamming", Adversary.jamming) |]

(* --- choose_kernel = choose, directly ---------------------------------- *)

let random_broadcasters rng n =
  let p = [| 0.05; 0.3; 0.8 |].(Rng.int rng 3) in
  let l = ref [] in
  for v = n - 1 downto 0 do
    if Rng.bool rng p then l := v :: !l
  done;
  Array.of_list !l

let prop_choose_equiv =
  QCheck.Test.make ~name:"choose_kernel = choose (shards 1/2/4, scratch reuse)" ~count:120
    QCheck.(small_nat)
    (fun case ->
      let rng = Rng.create (0xADF0 + case) in
      let n = 2 + Rng.int rng 60 in
      let rel_w = 1 + Rng.int rng 4 and gray_w = 1 + Rng.int rng 5 in
      let dual = build_dual ~n ~rel_w ~gray_w (Rng.bits rng) in
      let ng = max 1 (Dual.gray_count dual) in
      let scratches =
        List.map (fun s -> (s, Adversary.make_scratch ~shards:s dual)) [ 1; 2; 4 ]
      in
      let adv_root = Rng.derive (Rng.create (Rng.bits rng)) 0x5EED in
      for round = 1 to 12 do
        let broadcasters = random_broadcasters rng n in
        Array.iter
          (fun (pname, adv) ->
            let scalar = Bitset.create ng in
            Adversary.choose adv ~round ~broadcasters dual (Rng.derive adv_root round)
              scalar;
            List.iter
              (fun (s, scratch) ->
                let masked = Bitset.create ng in
                Adversary.choose_kernel adv ~round ~broadcasters dual
                  (Rng.derive adv_root round) scratch masked;
                if not (Bitset.equal scalar masked) then
                  QCheck.Test.fail_reportf
                    "%s: kernel <> scalar at n=%d round=%d shards=%d (#bcast=%d)" pname n
                    round s (Array.length broadcasters))
              scratches)
          kernel_policies
      done;
      true)

let test_kernel_flags () =
  Alcotest.(check bool) "all_gray has kernel" true (Adversary.has_kernel Adversary.all_gray);
  Alcotest.(check bool) "spiteful has kernel" true (Adversary.has_kernel Adversary.spiteful);
  Alcotest.(check bool) "jamming has kernel" true (Adversary.has_kernel Adversary.jamming);
  Alcotest.(check bool) "bernoulli stays scalar" false
    (Adversary.has_kernel (Adversary.bernoulli 0.5));
  Alcotest.(check bool) "harassing stays scalar" false
    (Adversary.has_kernel (Adversary.harassing 0.5));
  Alcotest.(check bool) "silent stays scalar" false (Adversary.has_kernel Adversary.silent);
  let dual = build_dual ~n:40 ~rel_w:2 ~gray_w:4 7 in
  Alcotest.(check bool) "kernel_wins false without kernel" false
    (Adversary.kernel_wins (Adversary.bernoulli 0.5)
       ~broadcasters:(Array.init 40 Fun.id) dual);
  Alcotest.check_raises "choose_kernel raises without kernel"
    (Invalid_argument "Adversary.choose_kernel: policy has no kernel") (fun () ->
      Adversary.choose_kernel Adversary.silent ~round:1 ~broadcasters:[||] dual
        (Rng.create 0)
        (Adversary.make_scratch dual)
        (Bitset.create 1))

(* Word-boundary pin: a circulant dual at n=600 whose per-node gray
   ranges span several 63-bit words, all nodes broadcasting — the
   fill_range fast path does the bulk of the work. *)
let test_circulant_pin () =
  let n = 600 in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for k = 1 to 4 do
      let v = (u + k) mod n in
      es := (min u v, max u v) :: !es
    done;
    for k = 5 to 24 do
      let v = (u + k) mod n in
      grays := (min u v, max u v) :: !grays
    done
  done;
  let dual = Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays () in
  let ng = Dual.gray_count dual in
  let scratch = Adversary.make_scratch ~shards:3 dual in
  let everyone = Array.init n Fun.id in
  let rng = Rng.create 3 in
  Array.iter
    (fun (pname, adv) ->
      Array.iter
        (fun broadcasters ->
          let scalar = Bitset.create ng and masked = Bitset.create ng in
          Adversary.choose adv ~round:1 ~broadcasters dual rng scalar;
          Adversary.choose_kernel adv ~round:1 ~broadcasters dual rng scratch masked;
          Alcotest.(check bool)
            (Printf.sprintf "%s circulant n=600 #bcast=%d" pname (Array.length broadcasters))
            true (Bitset.equal scalar masked))
        [| everyone; [| 0; 1; 299; 599 |]; [| 42 |] |])
    kernel_policies

(* --- engine end-to-end: adv_kernel x shards = reference ---------------- *)

let adversaries =
  [|
    ("all_gray", Adversary.all_gray);
    ("spiteful", Adversary.spiteful);
    ("jamming", Adversary.jamming);
    ("bernoulli 0.5", Adversary.bernoulli 0.5);
    ("harassing 0.7", Adversary.harassing 0.7);
    ("silent", Adversary.silent);
  |]

type scenario = {
  dual : Dual.t;
  adv_name : string;
  adv : Adversary.t;
  wake : int array option;
  stop : Rn_sim.Engine.stop_condition;
  seed : int;
}

let scenario_of case_seed =
  let rng = Rng.create (0xADBE + case_seed) in
  let n = 2 + Rng.int rng 39 in
  let rel_w = 1 + Rng.int rng 4 and gray_w = Rng.int rng 6 in
  let dual = build_dual ~n ~rel_w ~gray_w (Rng.bits rng) in
  let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
  let wake =
    if Rng.bool rng 0.5 then None else Some (Array.init n (fun _ -> 1 + Rng.int rng 8))
  in
  let stop =
    if Rng.bool rng 0.5 then Rn_sim.Engine.All_done
    else Rn_sim.Engine.At_round (5 + Rng.int rng 60)
  in
  { dual; adv_name; adv; wake; stop; seed = Rng.int rng 10_000 }

let pp_scenario s =
  Printf.sprintf "n=%d adv=%s seed=%d" (Dual.n s.dual) s.adv_name s.seed

let config_of ?sink ~adv_kernel ~shards s =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  E.config ~adversary:s.adv ~seed:s.seed ?wake:s.wake ~stop:s.stop ~max_rounds:5_000
    ~adv_kernel ~shards ?sink ~detector:det s.dual

(* Broadcast-heavy scripted body logging every receive, as in
   test_kernel.ml — any activation-set divergence perturbs deliveries. *)
let body ctx =
  let rng = E.rng ctx in
  let me = E.me ctx in
  let log = ref [] in
  for _ = 1 to 14 do
    match Rng.int rng 5 with
    | 0 | 1 | 2 -> (
      match E.sync ctx (Some me) with
      | E.Recv m -> log := m :: !log
      | E.Own -> log := -1 :: !log
      | E.Silence -> ())
    | 3 -> (
      match E.sync ctx None with
      | E.Recv m -> log := m :: !log
      | E.Own | E.Silence -> ())
    | _ -> E.idle ctx (1 + Rng.int rng 4)
  done;
  (!log, E.round ctx)

let prop_engine_equiv =
  QCheck.Test.make ~name:"adv_kernel `On/`Off/`Auto x shards 1/2/4 = reference"
    ~count:100
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of case in
      let oracle = E.run_reference (config_of ~adv_kernel:`Auto ~shards:1 s) body in
      List.iter
        (fun adv_kernel ->
          List.iter
            (fun shards ->
              let r = E.run (config_of ~adv_kernel ~shards s) body in
              if r <> oracle then
                QCheck.Test.fail_reportf "adv_kernel=%s shards=%d <> reference: %s"
                  (match adv_kernel with `On -> "on" | `Off -> "off" | `Auto -> "auto")
                  shards (pp_scenario s))
            [ 1; 2; 4 ])
        [ `On; `Off; `Auto ];
      true)

let prop_traced_equiv =
  QCheck.Test.make ~name:"traced run = untraced (adv_kernel `On)" ~count:40
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of case in
      let plain = E.run (config_of ~adv_kernel:`On ~shards:2 s) body in
      let sink = Events.create ~capacity:(1 lsl 12) () in
      let traced = E.run (config_of ~sink ~adv_kernel:`On ~shards:2 s) body in
      if plain <> traced then
        QCheck.Test.fail_reportf "traced <> untraced: %s" (pp_scenario s);
      true)

let () =
  Alcotest.run "adversary-kernel"
    [
      ( "choose",
        [
          qtest prop_choose_equiv;
          Alcotest.test_case "kernel availability flags" `Quick test_kernel_flags;
          Alcotest.test_case "circulant n=600 pin" `Quick test_circulant_pin;
        ] );
      ("engine", [ qtest prop_engine_equiv; qtest prop_traced_equiv ]);
    ]
