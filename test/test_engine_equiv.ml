(* Differential tests for the engine hot-path rework: [Engine.run] (live
   worklist, wake buckets, idle parking, silent-round fast-forward, cached
   detectors, per-round adversary derivation) must agree *exactly* — same
   [outputs], [returns], [rounds], [decided_round], [stats], [timed_out] —
   with [Engine.run_reference], the straightforward full-scan loop, across
   random graphs, seeds, wake schedules, adversaries, stop conditions and
   bodies (scripted send/listen/idle mixes, MIS, TDMA/CCDS, flooding).

   Since results are records of arrays/options/ints, whole-result
   structural equality is the comparison. *)

module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary
module Rng = Rn_util.Rng
module R = Core.Radio

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

let adversaries =
  [|
    ("silent", Adversary.silent);
    ("all_gray", Adversary.all_gray);
    ("bernoulli 0.5", Adversary.bernoulli 0.5);
    ("bernoulli 0.9", Adversary.bernoulli 0.9);
    ("harassing 0.7", Adversary.harassing 0.7);
    ("spiteful", Adversary.spiteful);
    ("jamming", Adversary.jamming);
  |]

(* Random dual graph: each pair becomes reliable, gray, or absent. *)
let build_dual n gseed =
  let rng = Rng.create gseed in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let r = Rng.int rng 10 in
      if r < 4 then es := (u, v) :: !es else if r < 7 then grays := (u, v) :: !grays
    done
  done;
  Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays ()

type scenario = {
  dual : Dual.t;
  adv_name : string;
  adv : Adversary.t;
  wake : int array option;
  stop : Rn_sim.Engine.stop_condition;
  seed : int;
  max_rounds : int;
}

let scenario_of ~max_wake ~max_rounds case_seed =
  let rng = Rng.create (0xE0_1AB + case_seed) in
  let n = 2 + Rng.int rng 8 in
  let dual = build_dual n (Rng.bits rng) in
  let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
  let wake =
    if Rng.bool rng 0.4 then None
    else Some (Array.init n (fun _ -> 1 + Rng.int rng max_wake))
  in
  let stop =
    if Rng.bool rng 0.5 then Rn_sim.Engine.All_done
    else Rn_sim.Engine.At_round (5 + Rng.int rng 80)
  in
  { dual; adv_name; adv; wake; stop; seed = Rng.int rng 10_000; max_rounds }

let pp_scenario s =
  Printf.sprintf "n=%d adv=%s wake=%s stop=%s seed=%d"
    (Dual.n s.dual) s.adv_name
    (match s.wake with
    | None -> "sync"
    | Some w -> String.concat "," (List.map string_of_int (Array.to_list w)))
    (match s.stop with
    | Rn_sim.Engine.All_done -> "all_done"
    | Rn_sim.Engine.All_decided -> "all_decided"
    | Rn_sim.Engine.At_round r -> Printf.sprintf "at_round %d" r)
    s.seed

let config_of s =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  E.config ~adversary:s.adv ~seed:s.seed ?wake:s.wake ~stop:s.stop
    ~max_rounds:s.max_rounds ~detector:det s.dual

(* A scripted body drawing its actions from the process RNG: broadcast,
   listen, batched idle, decide.  With [unroll_idle] the idle stretch is
   replaced by the equivalent sequence of silent syncs, which must not
   change anything observable. *)
let random_body ?(unroll_idle = false) ~steps ~max_idle ctx =
  let rng = E.rng ctx in
  let me = E.me ctx in
  let log = ref [] in
  let decided = ref false in
  let note = function
    | E.Recv m -> log := m :: !log
    | E.Own -> log := -1 :: !log
    | E.Silence -> ()
  in
  for _ = 1 to steps do
    match Rng.int rng 6 with
    | 0 | 1 -> note (E.sync ctx (Some me))
    | 2 | 3 -> note (E.sync ctx None)
    | 4 ->
      let k = 1 + Rng.int rng max_idle in
      if unroll_idle then
        for _ = 1 to k do
          ignore (E.sync ctx None)
        done
      else E.idle ctx k
    | _ ->
      if (not !decided) && Rng.int rng 3 = 0 then begin
        decided := true;
        E.output ctx (Rng.int rng 2)
      end;
      note (E.sync ctx None)
  done;
  (!log, E.round ctx)

let prop_random_bodies =
  QCheck.Test.make ~name:"run = run_reference (random send/listen/idle bodies)" ~count:150
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of ~max_wake:12 ~max_rounds:120 case in
      let cfg = config_of s in
      let body = random_body ~steps:12 ~max_idle:6 in
      let fast = E.run cfg body in
      let oracle = E.run_reference cfg body in
      let unrolled = E.run cfg (random_body ~unroll_idle:true ~steps:12 ~max_idle:6) in
      if fast <> oracle then QCheck.Test.fail_reportf "run <> run_reference: %s" (pp_scenario s);
      if fast <> unrolled then
        QCheck.Test.fail_reportf "idle <> unrolled silent syncs: %s" (pp_scenario s);
      true)

(* Sparse wakes and long idles: the engine fast-forwards whole stretches of
   silent rounds in one jump; the reference grinds through each round (and
   consults the adversary in all of them).  Results must still match. *)
let prop_fast_forward =
  QCheck.Test.make ~name:"silent-round fast-forward never changes results" ~count:60
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of ~max_wake:400 ~max_rounds:3_000 case in
      let s = if s.stop = Rn_sim.Engine.All_done then s else { s with stop = Rn_sim.Engine.All_done } in
      let cfg = config_of s in
      let body ctx =
        let rng = E.rng ctx in
        let heard = ref 0 in
        for _ = 1 to 3 do
          E.idle ctx (20 + Rng.int rng 200);
          (match E.sync ctx (Some (E.me ctx)) with E.Recv _ -> incr heard | _ -> ());
          match E.sync ctx None with E.Recv _ -> incr heard | _ -> ()
        done;
        !heard
      in
      let fast = E.run cfg body in
      let oracle = E.run_reference cfg body in
      if fast <> oracle then QCheck.Test.fail_reportf "fast-forward mismatch: %s" (pp_scenario s);
      if fast.E.stats.silent_rounds <> oracle.E.stats.silent_rounds then
        QCheck.Test.fail_reportf "silent_rounds mismatch: %s" (pp_scenario s);
      true)

(* Flooding: one informed source, everyone forwards what they heard with
   probability 1/2.  Exercises Recv payload paths under every adversary. *)
let prop_flood =
  QCheck.Test.make ~name:"run = run_reference (flood body)" ~count:80 QCheck.(small_nat)
    (fun case ->
      let s = scenario_of ~max_wake:6 ~max_rounds:500 case in
      let s = { s with stop = Rn_sim.Engine.At_round 40 } in
      let cfg = config_of s in
      let body ctx =
        let token = ref (if E.me ctx = 0 then Some 0 else None) in
        let hops = ref [] in
        for _ = 1 to 40 do
          let send =
            match !token with
            | Some t when Rng.bool (E.rng ctx) 0.5 -> Some (t + 1)
            | _ -> None
          in
          match E.sync ctx send with
          | E.Recv t ->
            hops := t :: !hops;
            if !token = None then begin
              token := Some t;
              E.output ctx 1
            end
          | E.Own | E.Silence -> ()
        done;
        !hops
      in
      let fast = E.run cfg body in
      let oracle = E.run_reference cfg body in
      if fast <> oracle then QCheck.Test.fail_reportf "flood mismatch: %s" (pp_scenario s);
      true)

(* The real algorithm bodies, through the shared Radio instantiation. *)
let radio_config s ~stop =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  R.config ~adversary:s.adv ~seed:s.seed ~stop ~max_rounds:s.max_rounds ~detector:det s.dual

let prop_mis =
  QCheck.Test.make ~name:"run = run_reference (MIS body)" ~count:25 QCheck.(small_nat)
    (fun case ->
      let s = scenario_of ~max_wake:1 ~max_rounds:100_000 case in
      let s = { s with wake = None } in
      let params = Core.Params.default in
      let n = Dual.n s.dual in
      let stop = R.At_round (Core.Mis.schedule_rounds params ~n) in
      let cfg = radio_config s ~stop in
      let body ctx = Core.Mis.body params ctx in
      let fast = R.run cfg body in
      let oracle = R.run_reference cfg body in
      if fast <> oracle then QCheck.Test.fail_reportf "MIS mismatch: %s" (pp_scenario s);
      true)

let prop_tdma =
  QCheck.Test.make ~name:"run = run_reference (TDMA/CCDS body)" ~count:20 QCheck.(small_nat)
    (fun case ->
      let s = scenario_of ~max_wake:1 ~max_rounds:100_000 case in
      let s = { s with wake = None } in
      let params = Core.Params.default in
      let cfg = radio_config s ~stop:R.All_done in
      let body ctx = Core.Tdma_ccds.body params ctx in
      let fast = R.run cfg body in
      let oracle = R.run_reference cfg body in
      if fast <> oracle then QCheck.Test.fail_reportf "TDMA mismatch: %s" (pp_scenario s);
      true)

(* Unit checks pinning down the fast-forward bookkeeping. *)

let path2 = Dual.classic (Gen.path 2)

let test_far_wake_jump () =
  let det = Detector.static (Detector.perfect (Dual.g path2)) in
  let cfg = E.config ~wake:[| 1; 300 |] ~detector:det path2 in
  let body ctx = ignore (E.sync ctx (Some (E.me ctx))) in
  let fast = E.run cfg body in
  let oracle = E.run_reference cfg body in
  Alcotest.(check bool) "identical results" true (fast = oracle);
  Alcotest.(check int) "runs to the late wake" 300 fast.E.rounds;
  (* rounds 2..299 have no broadcaster: fast-forwarded, still counted *)
  Alcotest.(check int) "silent rounds counted" 298 fast.E.stats.silent_rounds

let test_idle_past_stop () =
  (* A fiber idling beyond At_round: the run ends mid-stretch. *)
  let det = Detector.static (Detector.perfect (Dual.g path2)) in
  let cfg = E.config ~stop:(Rn_sim.Engine.At_round 10) ~detector:det path2 in
  let body ctx =
    ignore (E.sync ctx (Some (E.me ctx)));
    E.idle ctx 1_000;
    E.round ctx
  in
  let fast = E.run cfg body in
  let oracle = E.run_reference cfg body in
  Alcotest.(check bool) "identical results" true (fast = oracle);
  Alcotest.(check int) "stopped at 10" 10 fast.E.rounds;
  Alcotest.(check bool) "no return yet" true (fast.E.returns = [| None; None |])

let test_observer_disables_jump () =
  (* With an observer every round must be materialised and observed. *)
  let seen = ref [] in
  let det = Detector.static (Detector.perfect (Dual.g path2)) in
  let cfg =
    E.config ~wake:[| 1; 5 |]
      ~observer:(fun v -> seen := (v.E.view_round, Array.length v.E.view_broadcasters) :: !seen)
      ~detector:det path2
  in
  let body ctx = ignore (E.sync ctx (Some (E.me ctx))) in
  ignore (E.run cfg body);
  Alcotest.(check (list (pair int int)))
    "observer saw every round" [ (1, 1); (2, 0); (3, 0); (4, 0); (5, 1) ] (List.rev !seen)

(* One moderate-scale pin: the qcheck scenarios stay at n <= 9, which
   exercises the worklist/heap/bucket logic but not at the array sizes
   the experiments use.  A geometric n=128 MIS run catches size-dependent
   bookkeeping slips (heap ordering, wake-pointer drift, scratch reuse). *)
let test_mis_n128 () =
  let dual =
    Gen.geometric ~rng:(Rng.create 7)
      (Gen.default_spec ~n:128 ~side:(Gen.side_for_degree ~n:128 ~target_degree:12) ())
  in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let params = Core.Params.default in
  let stop = R.At_round (Core.Mis.schedule_rounds params ~n:(Dual.n dual)) in
  let cfg =
    R.config ~adversary:(Adversary.bernoulli 0.5) ~seed:41 ~stop ~detector:det dual
  in
  let fast = R.run cfg (fun ctx -> Core.Mis.body params ctx) in
  let oracle = R.run_reference cfg (fun ctx -> Core.Mis.body params ctx) in
  Alcotest.(check bool) "identical results at n=128" true (fast = oracle)

let () =
  Alcotest.run "engine_equiv"
    [
      ( "differential",
        [
          qtest prop_random_bodies;
          qtest prop_fast_forward;
          qtest prop_flood;
          qtest prop_mis;
          qtest prop_tdma;
          Alcotest.test_case "run = run_reference (MIS, n=128)" `Quick test_mis_n128;
        ] );
      ( "fast-forward",
        [
          Alcotest.test_case "far wake jump" `Quick test_far_wake_jump;
          Alcotest.test_case "idle past stop" `Quick test_idle_past_stop;
          Alcotest.test_case "observer disables jump" `Quick test_observer_disables_jump;
        ] );
    ]
