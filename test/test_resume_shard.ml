(* Differential tests for the sharded fiber resume loop.

   [Engine.run] with [resume_shards > 1] partitions each round's
   active-and-due fibers into pid-contiguous slices, steps every slice on
   a pool domain (collecting joins, idle parkings and finish/decide
   counts into private per-shard buffers), and merges the buffers in
   ascending shard order.  Like delivery sharding this is pure evaluation
   strategy: for any config and body, any resume shard count must produce
   results identical to the scalar resume loop and to [run_reference] —
   the per-process RNG streams are independently derived and a fiber's
   step reads only its own receive slot, so the slices are independent
   and the shard-order merge reproduces the sequential step order.

   Scenarios reuse test_shard.ml's generator (dense duals, all adversary
   policies, random wake/stop, random bodies), plus the real MIS and
   TDMA-CCDS schedules, a traced≡untraced forcing check (a sink must
   force the scalar path without changing results), and a fixed n=512
   circulant pin. *)

module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary
module Events = Rn_sim.Events

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)
module R = Core.Radio

let adversaries =
  [|
    ("silent", Adversary.silent);
    ("all_gray", Adversary.all_gray);
    ("bernoulli 0.5", Adversary.bernoulli 0.5);
    ("bernoulli 0.9", Adversary.bernoulli 0.9);
    ("harassing 0.7", Adversary.harassing 0.7);
    ("spiteful", Adversary.spiteful);
    ("jamming", Adversary.jamming);
  |]

let build_dual ~n ~rel_w ~gray_w gseed =
  let rng = Rng.create gseed in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let r = Rng.int rng 10 in
      if r < rel_w then es := (u, v) :: !es
      else if r < rel_w + gray_w then grays := (u, v) :: !grays
    done
  done;
  Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays ()

type scenario = {
  dual : Dual.t;
  shape : string;
  adv_name : string;
  adv : Adversary.t;
  wake : int array option;
  stop : Rn_sim.Engine.stop_condition;
  seed : int;
  resume_shards : int;
}

let scenario_of case_seed =
  let rng = Rng.create (0x2E5ED + case_seed) in
  let n = 2 + Rng.int rng 39 in
  let shape, dual =
    match Rng.int rng 4 with
    | 0 -> ("dense", build_dual ~n ~rel_w:6 ~gray_w:3 (Rng.bits rng))
    | 1 -> ("classic", build_dual ~n ~rel_w:7 ~gray_w:0 (Rng.bits rng))
    | 2 -> ("all-gray", build_dual ~n ~rel_w:1 ~gray_w:8 (Rng.bits rng))
    | _ -> ("clique", Dual.classic (Gen.clique n))
  in
  let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
  let wake =
    if Rng.bool rng 0.5 then None else Some (Array.init n (fun _ -> 1 + Rng.int rng 8))
  in
  let stop =
    if Rng.bool rng 0.5 then Rn_sim.Engine.All_done
    else Rn_sim.Engine.At_round (5 + Rng.int rng 60)
  in
  {
    dual;
    shape;
    adv_name;
    adv;
    wake;
    stop;
    seed = Rng.int rng 10_000;
    (* more shards than live fibers is legal (empty slices) and must
       still be exact, so 4 shards at n as small as 2 is on purpose *)
    resume_shards = (match Rng.int rng 3 with 0 -> 1 | 1 -> 2 | _ -> 4);
  }

let pp_scenario s =
  Printf.sprintf "n=%d shape=%s adv=%s seed=%d resume_shards=%d" (Dual.n s.dual) s.shape
    s.adv_name s.seed s.resume_shards

(* [resume_kernel:`On] forces sharding below the auto threshold — these
   networks are far smaller than the cost model would ever shard. *)
let config_of ?sink ?(resume_kernel = `On) ~resume_shards s =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  E.config ~adversary:s.adv ~seed:s.seed ?wake:s.wake ~stop:s.stop ~max_rounds:5_000
    ?sink ~resume_shards ~resume_kernel ~detector:det s.dual

let body ctx =
  let rng = E.rng ctx in
  let me = E.me ctx in
  let log = ref [] in
  let decided = ref false in
  for _ = 1 to 14 do
    match Rng.int rng 6 with
    | 0 | 1 | 2 -> (
      match E.sync ctx (Some me) with
      | E.Recv m -> log := m :: !log
      | E.Own -> log := -1 :: !log
      | E.Silence -> ())
    | 3 -> (
      match E.sync ctx None with
      | E.Recv m -> log := m :: !log
      | E.Own | E.Silence -> ())
    | 4 -> E.idle ctx (1 + Rng.int rng 4)
    | _ ->
      if (not !decided) && Rng.int rng 4 = 0 then begin
        decided := true;
        E.output ctx (Rng.int rng 2)
      end;
      ignore (E.sync ctx None)
  done;
  (!log, E.round ctx)

let prop_resume_equiv =
  QCheck.Test.make ~name:"resume shards k = scalar = reference" ~count:120
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of case in
      let sharded = E.run (config_of ~resume_shards:s.resume_shards s) body in
      let single = E.run (config_of ~resume_shards:1 s) body in
      let scalar = E.run (config_of ~resume_kernel:`Off ~resume_shards:s.resume_shards s) body in
      let oracle = E.run_reference (config_of ~resume_shards:1 s) body in
      if sharded <> single then
        QCheck.Test.fail_reportf "resume shards k <> shards 1: %s" (pp_scenario s);
      if sharded <> scalar then
        QCheck.Test.fail_reportf "resume shards k <> `Off: %s" (pp_scenario s);
      if sharded <> oracle then
        QCheck.Test.fail_reportf "resume shards k <> reference: %s" (pp_scenario s);
      true)

let prop_resume_traced_forcing =
  (* an attached sink forces the scalar resume path (events must be
     emitted in step order); forcing must not change any result *)
  QCheck.Test.make ~name:"traced (forced scalar) = untraced sharded" ~count:40
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of (2000 + case) in
      let sink = Events.create () in
      let traced = E.run (config_of ~sink ~resume_shards:4 s) body in
      let untraced = E.run (config_of ~resume_shards:4 s) body in
      if traced <> untraced then
        QCheck.Test.fail_reportf "traced <> untraced: %s" (pp_scenario s);
      if Events.emitted sink = 0 then
        QCheck.Test.fail_reportf "sink saw no events: %s" (pp_scenario s);
      true)

(* --- real schedules: MIS and TDMA-CCDS over the Msg protocol ----------- *)

let algo_duals =
  [|
    ("clique 12", Dual.classic (Gen.clique 12));
    ("star 17", Dual.classic (Gen.star 17));
    ("path 16", Dual.classic (Gen.path 16));
    ("dense 14", build_dual ~n:14 ~rel_w:5 ~gray_w:3 7);
  |]

let algo_config ~resume_shards ~resume_kernel ~adv ~seed dual =
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  R.config ~adversary:adv ~seed ~resume_shards ~resume_kernel ~detector:det dual

let prop_mis_resume_equiv =
  QCheck.Test.make ~name:"MIS: resume shards k = scalar" ~count:30
    QCheck.(small_nat)
    (fun case ->
      let rng = Rng.create (0x415 + case) in
      let dual_name, dual = algo_duals.(Rng.int rng (Array.length algo_duals)) in
      let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
      let seed = Rng.int rng 1000 in
      let shards = 2 + (2 * Rng.int rng 2) (* 2 or 4 *) in
      let params = Core.Params.default in
      let run ~resume_shards ~resume_kernel =
        R.run
          (algo_config ~resume_shards ~resume_kernel ~adv ~seed dual)
          (fun ctx -> Core.Mis.body params ctx)
      in
      let sharded = run ~resume_shards:shards ~resume_kernel:`On in
      let scalar = run ~resume_shards:1 ~resume_kernel:`Off in
      if sharded <> scalar then
        QCheck.Test.fail_reportf "MIS sharded <> scalar: %s adv=%s seed=%d shards=%d"
          dual_name adv_name seed shards;
      true)

let prop_tdma_resume_equiv =
  QCheck.Test.make ~name:"TDMA-CCDS: resume shards k = scalar" ~count:15
    QCheck.(small_nat)
    (fun case ->
      let rng = Rng.create (0x7D3A + case) in
      let dual_name, dual = algo_duals.(Rng.int rng (Array.length algo_duals)) in
      let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
      let seed = Rng.int rng 1000 in
      let params = Core.Params.default in
      let run ~resume_shards ~resume_kernel =
        R.run
          (algo_config ~resume_shards ~resume_kernel ~adv ~seed dual)
          (fun ctx -> Core.Tdma_ccds.body params ctx)
      in
      let sharded = run ~resume_shards:4 ~resume_kernel:`On in
      let scalar = run ~resume_shards:1 ~resume_kernel:`Off in
      if sharded <> scalar then
        QCheck.Test.fail_reportf "TDMA sharded <> scalar: %s adv=%s seed=%d" dual_name
          adv_name seed;
      true)

(* Moderate-scale pin at a shard count that does not divide the live
   fiber count: uneven slices, both sync and idle fibers in flight. *)
let test_resume_n512 () =
  let n = 512 in
  let es = ref [] in
  for u = 0 to n - 1 do
    for k = 1 to 32 do
      let v = (u + k) mod n in
      es := (min u v, max u v) :: !es
    done
  done;
  let dual = Dual.classic (Graph.of_edges n !es) in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let run resume_shards resume_kernel =
    let cfg =
      E.config ~adversary:(Adversary.bernoulli 0.5) ~seed:11
        ~stop:(Rn_sim.Engine.At_round 40) ~resume_shards ~resume_kernel ~detector:det dual
    in
    E.run cfg (fun ctx ->
        let rng = E.rng ctx in
        let heard = ref 0 in
        for _ = 1 to 40 do
          if Rng.bool rng 0.1 then E.idle ctx (1 + Rng.int rng 3)
          else
            match E.sync_p ctx 0.03 (E.me ctx) with
            | E.Recv _ -> incr heard
            | E.Own | E.Silence -> ()
        done;
        !heard)
  in
  let one = run 1 `Off and three = run 3 `On and four = run 4 `On in
  Alcotest.(check bool) "identical results at n=512, resume shards=3" true (one = three);
  Alcotest.(check bool) "identical results at n=512, resume shards=4" true (one = four);
  Alcotest.(check bool) "deliveries happened" true (one.E.stats.deliveries > 0)

let test_resume_config_validation () =
  let dual = Dual.classic (Gen.clique 4) in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  Alcotest.check_raises "resume_shards = 0 rejected"
    (Invalid_argument "Engine.config: resume_shards < 1") (fun () ->
      ignore (E.config ~resume_shards:0 ~detector:det dual));
  (* process-wide defaults clamp rather than raise (CLI validates) *)
  Rn_sim.Engine.set_default_resume_shards 0;
  Alcotest.check Alcotest.int "default clamps to 1" 1
    (Rn_sim.Engine.get_default_resume_shards ());
  Rn_sim.Engine.set_default_resume_shards 1

let () =
  Alcotest.run "resume-shard"
    [
      ( "sharded-resume",
        [
          qtest prop_resume_equiv;
          qtest prop_resume_traced_forcing;
          Alcotest.test_case "circulant n=512 pin" `Quick test_resume_n512;
          Alcotest.test_case "config validation" `Quick test_resume_config_validation;
        ] );
      ( "real-schedules",
        [ qtest prop_mis_resume_equiv; qtest prop_tdma_resume_equiv ] );
    ]
