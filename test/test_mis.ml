(* End-to-end tests of the Section 4 MIS algorithm. *)

module R = Core.Radio
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module Rng = Rn_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let run_mis ?params ?(adversary = Rn_sim.Adversary.bernoulli 0.5) ?(seed = 1) dual =
  let det = Detector.perfect (Dual.g dual) in
  let res = Core.Mis.run ?params ~seed ~adversary ~detector:(Detector.static det) dual in
  (res, det)

let check_solves ?adversary ?seed name dual =
  let res, det = run_mis ?adversary ?seed dual in
  let rep = Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs in
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " rep.violations)
    true (Verify.Mis_check.ok rep);
  res

let test_clique () =
  let res = check_solves "clique" (Dual.classic (Gen.clique 16)) in
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.check Alcotest.int "clique MIS is a single node" 1 members

let test_path () = ignore (check_solves "path" (Dual.classic (Gen.path 20)))
let test_ring () = ignore (check_solves "ring" (Dual.classic (Gen.ring 17)))

let test_star () =
  (* K_{1,4} is the largest star realisable in the unit-disk embedding the
     model assumes (leaves pairwise > 1 apart, all within 1 of the
     centre); bigger stars are outside the paper's guarantees. *)
  let res = check_solves ~seed:2 "star" (Dual.classic (Gen.star 5)) in
  let members =
    res.R.outputs |> Array.to_seqi
    |> Seq.filter_map (fun (v, o) -> if o = Some 1 then Some v else None)
    |> List.of_seq
  in
  Alcotest.(check bool) "centre alone or all leaves" true
    (members = [ 0 ] || members = List.init 4 (fun i -> i + 1))

let test_two_nodes () =
  let res = check_solves "pair" (Dual.classic (Gen.path 2)) in
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.check Alcotest.int "exactly one of two" 1 members

let test_geometric_seeds () =
  for seed = 1 to 5 do
    let dual = Rn_harness.Harness.geometric ~seed ~n:60 ~degree:10 () in
    ignore (check_solves ~seed (Printf.sprintf "geometric seed %d" seed) dual)
  done

let test_grid () =
  let rng = Rng.create 6 in
  let dual = Gen.grid_jitter ~rng ~rows:7 ~cols:7 () in
  ignore (check_solves "grid" dual)

let test_adversaries () =
  let dual = Rn_harness.Harness.geometric ~seed:2 ~n:50 ~degree:9 () in
  List.iter
    (fun (name, adversary) -> ignore (check_solves ~adversary name dual))
    [
      ("silent", Rn_sim.Adversary.silent);
      ("bernoulli 0.2", Rn_sim.Adversary.bernoulli 0.2);
      ("bernoulli 0.5", Rn_sim.Adversary.bernoulli 0.5);
      ("harassing 0.5", Rn_sim.Adversary.harassing 0.5);
    ]

let test_schedule_length () =
  let dual = Dual.classic (Gen.ring 32) in
  let res, _ = run_mis dual in
  Alcotest.check Alcotest.int "fixed schedule"
    (Core.Mis.schedule_rounds Core.Params.default ~n:32)
    res.R.rounds;
  Alcotest.(check bool) "no timeout" false res.R.timed_out

let test_decided_within_schedule () =
  let dual = Rn_harness.Harness.geometric ~seed:3 ~n:48 ~degree:8 () in
  let res, _ = run_mis dual in
  Array.iter
    (function
      | Some r -> Alcotest.(check bool) "decided within run" true (r >= 1 && r <= res.R.rounds)
      | None -> Alcotest.fail "undecided process")
    res.R.decided_round

let test_outputs_match_returns () =
  let dual = Rn_harness.Harness.geometric ~seed:4 ~n:48 ~degree:8 () in
  let res, det = run_mis dual in
  Array.iteri
    (fun v outcome ->
      match outcome with
      | Some (o : Core.Mis.outcome) ->
        Alcotest.(check bool) "in_mis iff output 1" true
          (o.in_mis = (res.R.outputs.(v) = Some 1));
        (* every reported MIS neighbour is a detector neighbour that output 1 *)
        List.iter
          (fun u ->
            Alcotest.(check bool) "neighbour in detector" true (Detector.mem det v u);
            Alcotest.(check bool) "neighbour output 1" true (res.R.outputs.(u) = Some 1))
          o.mis_neighbors
      | None -> Alcotest.fail "no return")
    res.R.returns

let test_determinism () =
  let dual = Rn_harness.Harness.geometric ~seed:5 ~n:40 ~degree:8 () in
  let a, _ = run_mis ~seed:9 dual in
  let b, _ = run_mis ~seed:9 dual in
  Alcotest.(check bool) "same outputs" true (a.R.outputs = b.R.outputs);
  let c, _ = run_mis ~seed:10 dual in
  ignore c (* different seed may or may not give a different MIS; just runs *)

let test_covered_have_dominator_knowledge () =
  (* every 0-output process must know at least one MIS neighbour — this is
     what the CCDS algorithm builds on *)
  let dual = Rn_harness.Harness.geometric ~seed:6 ~n:48 ~degree:8 () in
  let res, _ = run_mis dual in
  Array.iteri
    (fun v outcome ->
      match (outcome, res.R.outputs.(v)) with
      | Some (o : Core.Mis.outcome), Some 0 ->
        Alcotest.(check bool) "covered process knows a dominator" true (o.mis_neighbors <> [])
      | _ -> ())
    res.R.returns

let test_b_bits_sufficient () =
  (* contender/announce messages fit in Theta(log n) bits *)
  let dual = Dual.classic (Gen.ring 32) in
  let det = Detector.perfect (Dual.g dual) in
  let b = Core.Msg.tag_bits + Rn_util.Ilog.log2_up 32 + 1 in
  let res = Core.Mis.run ~seed:1 ~b_bits:b ~detector:(Detector.static det) dual in
  Alcotest.(check bool) "runs with b = Theta(log n)" false res.R.timed_out

(* The w.h.p. guarantee needs the paper's phase-length constant: the
   default c_phase = 6 (tuned for throughput in the experiments) leaves
   a small per-instance failure probability that a 200-seed generator
   space does hit — e.g. instance seed 100 below, found via
   QCHECK_SEED=720430007.  c_phase = 8 clears every seed in [10, 200]. *)
let whp_params = { Core.Params.default with Core.Params.c_phase = 8 }

let prop_random_geometric_solves =
  QCheck.Test.make ~name:"MIS solves on random geometric instances" ~count:8
    (QCheck.int_range 10 200) (fun seed ->
      let dual = Rn_harness.Harness.geometric ~seed ~n:40 ~degree:8 () in
      let res, det = run_mis ~params:whp_params ~seed dual in
      Verify.Mis_check.ok
        (Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs))

(* Pinned regression for the flake above: under the default budget this
   instance produced adjacent MIS members (22-31 and 22-36). *)
let test_whp_budget_regression () =
  let dual = Rn_harness.Harness.geometric ~seed:100 ~n:40 ~degree:8 () in
  let res, det = run_mis ~params:whp_params ~seed:100 dual in
  let rep = Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs in
  Alcotest.(check bool)
    ("seed 100: " ^ String.concat "; " rep.violations)
    true (Verify.Mis_check.ok rep)

let test_density_corollary () =
  let dual = Rn_harness.Harness.geometric ~seed:7 ~n:80 ~degree:12 () in
  let res, _ = run_mis dual in
  let members = ref [] in
  Array.iteri (fun v o -> if o = Some 1 then members := v :: !members) res.R.outputs;
  let pos = match Dual.positions dual with Some p -> p | None -> assert false in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "Cor 4.7 at r=%.0f" r)
        true
        (Verify.Density.respects_corollary ~pos ~members:!members r))
    [ 1.0; 2.0; 3.0 ]

let () =
  Alcotest.run "mis"
    [
      ( "topologies",
        [
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "two nodes" `Quick test_two_nodes;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "geometric seeds" `Slow test_geometric_seeds;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "adversaries" `Slow test_adversaries;
          Alcotest.test_case "fixed schedule length" `Quick test_schedule_length;
          Alcotest.test_case "decided within schedule" `Quick test_decided_within_schedule;
          Alcotest.test_case "outputs match returns" `Quick test_outputs_match_returns;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "covered know dominators" `Quick
            test_covered_have_dominator_knowledge;
          Alcotest.test_case "b = Theta(log n) suffices" `Quick test_b_bits_sufficient;
          Alcotest.test_case "density corollary" `Quick test_density_corollary;
          Alcotest.test_case "w.h.p. budget regression (seed 100)" `Quick
            test_whp_budget_regression;
          qtest prop_random_geometric_solves;
        ] );
    ]
