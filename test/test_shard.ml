(* Differential tests for intra-run delivery sharding and the
   Bigarray-backed bitset words underneath it.

   [Engine.run] with [shards > 1] partitions each round's broadcasters
   into contiguous slices, scatters every slice's reach into a private
   once/twice accumulator pair on a pool domain, and merges the pairs in
   fixed shard order.  The whole point is that this is pure evaluation
   strategy: for any config and body, any shard count must produce
   results identical to [shards:1], to the scalar path, and to
   [run_reference].  The scenarios reuse test_kernel.ml's generator
   (dense duals, all adversary policies, random wake/stop) with the
   shard count drawn per case.

   Also here: laws of the off-heap word layer the merge relies on — the
   (once, twice) pair is a pure function of the contribution multiset
   (checked against naive counting, as in test_kernel.ml), and
   [acc2_merge_into] over any partition of the rows into any number of
   shards reproduces the sequential accumulators bit for bit. *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

(* --- off-heap word-layer laws ------------------------------------------ *)

let bs cap l = Bitset.of_list cap l

(* The Bigarray storage swap must preserve the word-op laws the kernel
   and the sharded merge depend on; the multiset-counting oracle is the
   same one test_kernel.ml pins the on-heap representation with. *)
let prop_acc2_counts_offheap =
  QCheck.Test.make ~name:"off-heap acc2 = naive multiset counting" ~count:200
    QCheck.(small_list (small_list (int_range 0 200)))
    (fun rows ->
      let cap = 201 in
      let once = Bitset.create cap and twice = Bitset.create cap in
      let counts = Array.make cap 0 in
      List.iter
        (fun row ->
          let row = List.sort_uniq compare row in
          List.iter (fun i -> counts.(i) <- counts.(i) + 1) row;
          Bitset.acc2_or_into ~once ~twice (bs cap row))
        rows;
      let ok = ref true in
      for i = 0 to cap - 1 do
        if Bitset.mem once i <> (counts.(i) >= 1) then ok := false;
        if Bitset.mem twice i <> (counts.(i) >= 2) then ok := false
      done;
      !ok)

let prop_word_ops_offheap =
  (* union/inter/diff/cardinal/iter agree with a sorted-list model *)
  QCheck.Test.make ~name:"off-heap word ops = list model" ~count:300
    QCheck.(pair (small_list (int_range 0 190)) (small_list (int_range 0 190)))
    (fun (la, lb) ->
      let cap = 191 in
      let la = List.sort_uniq compare la and lb = List.sort_uniq compare lb in
      let a = bs cap la and b = bs cap lb in
      let model f = List.filter (fun i -> f (List.mem i la) (List.mem i lb)) (List.init cap Fun.id) in
      let got op =
        let c = Bitset.copy a in
        op ~into:c b;
        Bitset.to_list c
      in
      got Bitset.union_into = model (fun x y -> x || y)
      && got Bitset.inter_into = model (fun x y -> x && y)
      && got Bitset.diff_into = model (fun x y -> x && not y)
      && Bitset.cardinal a = List.length la
      && Bitset.to_list a = la
      && Bitset.equal a (bs cap la))

(* [acc2_merge_into] is the sharded scatter's merge step: feeding each
   shard's rows into a private pair and merging must equal feeding all
   rows into one pair, for any partition into any number of shards. *)
let prop_merge_equals_sequential =
  QCheck.Test.make ~name:"sharded acc2 merge = sequential acc2" ~count:300
    QCheck.(pair (int_range 1 7) (small_list (small_list (int_range 0 220))))
    (fun (shards, rows) ->
      let cap = 221 in
      let rows = Array.of_list rows in
      let nr = Array.length rows in
      (* sequential: one pass over all rows *)
      let once = Bitset.create cap and twice = Bitset.create cap in
      Array.iter (fun row -> Bitset.acc2_or_into ~once ~twice (bs cap row)) rows;
      (* sharded: contiguous slices (the engine's partition rule) into
         private pairs, merged in shard order *)
      let m_once = Bitset.create cap and m_twice = Bitset.create cap in
      for s = 0 to shards - 1 do
        let so = Bitset.create cap and st = Bitset.create cap in
        for i = s * nr / shards to (((s + 1) * nr) / shards) - 1 do
          Bitset.acc2_or_into ~once:so ~twice:st (bs cap rows.(i))
        done;
        Bitset.acc2_merge_into ~once:m_once ~twice:m_twice ~src_once:so ~src_twice:st
      done;
      Bitset.equal once m_once && Bitset.equal twice m_twice)

let test_merge_units () =
  let cap = 130 in
  let mk lo lt = (bs cap lo, bs cap lt) in
  let merge (o1, t1) (o2, t2) =
    let once = Bitset.copy o1 and twice = Bitset.copy t1 in
    Bitset.acc2_merge_into ~once ~twice ~src_once:o2 ~src_twice:t2;
    (Bitset.to_list once, Bitset.to_list twice)
  in
  (* disjoint singles stay single *)
  Alcotest.(check (pair (list int) (list int)))
    "disjoint singles"
    ([ 0; 64; 65; 129 ], [])
    (merge (mk [ 0; 64 ] []) (mk [ 65; 129 ] []));
  (* single + single on the same bit saturates to twice *)
  Alcotest.(check (pair (list int) (list int)))
    "overlap saturates"
    ([ 5; 70 ], [ 70 ])
    (merge (mk [ 5; 70 ] []) (mk [ 70 ] []));
  (* an incoming twice wins regardless of the target's state *)
  Alcotest.(check (pair (list int) (list int)))
    "src twice dominates"
    ([ 7 ], [ 7 ])
    (merge (mk [] []) (mk [ 7 ] [ 7 ]))

(* --- sharded engine ≡ scalar ≡ kernel ≡ reference ---------------------- *)

let adversaries =
  [|
    ("silent", Adversary.silent);
    ("all_gray", Adversary.all_gray);
    ("bernoulli 0.5", Adversary.bernoulli 0.5);
    ("bernoulli 0.9", Adversary.bernoulli 0.9);
    ("harassing 0.7", Adversary.harassing 0.7);
    ("spiteful", Adversary.spiteful);
    ("jamming", Adversary.jamming);
  |]

let build_dual ~n ~rel_w ~gray_w gseed =
  let rng = Rng.create gseed in
  let es = ref [] and grays = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let r = Rng.int rng 10 in
      if r < rel_w then es := (u, v) :: !es
      else if r < rel_w + gray_w then grays := (u, v) :: !grays
    done
  done;
  Dual.make ~g:(Graph.of_edges n !es) ~gray:!grays ()

type scenario = {
  dual : Dual.t;
  shape : string;
  adv_name : string;
  adv : Adversary.t;
  wake : int array option;
  stop : Rn_sim.Engine.stop_condition;
  seed : int;
  shards : int;
}

let scenario_of case_seed =
  let rng = Rng.create (0x54A2D + case_seed) in
  let n = 2 + Rng.int rng 39 in
  let shape, dual =
    match Rng.int rng 4 with
    | 0 -> ("dense", build_dual ~n ~rel_w:6 ~gray_w:3 (Rng.bits rng))
    | 1 -> ("classic", build_dual ~n ~rel_w:7 ~gray_w:0 (Rng.bits rng))
    | 2 -> ("all-gray", build_dual ~n ~rel_w:1 ~gray_w:8 (Rng.bits rng))
    | _ -> ("clique", Dual.classic (Gen.clique n))
  in
  let adv_name, adv = adversaries.(Rng.int rng (Array.length adversaries)) in
  let wake =
    if Rng.bool rng 0.5 then None else Some (Array.init n (fun _ -> 1 + Rng.int rng 8))
  in
  let stop =
    if Rng.bool rng 0.5 then Rn_sim.Engine.All_done
    else Rn_sim.Engine.At_round (5 + Rng.int rng 60)
  in
  {
    dual;
    shape;
    adv_name;
    adv;
    wake;
    stop;
    seed = Rng.int rng 10_000;
    (* more shards than broadcasters is legal (empty slices) and must
       still be exact, so draw well past the typical broadcaster count *)
    shards = 2 + Rng.int rng 4;
  }

let pp_scenario s =
  Printf.sprintf "n=%d shape=%s adv=%s seed=%d shards=%d" (Dual.n s.dual) s.shape
    s.adv_name s.seed s.shards

let config_of ?(kernel = `Auto) ~shards s =
  let det = Detector.static (Detector.perfect (Dual.g s.dual)) in
  E.config ~adversary:s.adv ~seed:s.seed ?wake:s.wake ~stop:s.stop ~max_rounds:5_000
    ~kernel ~shards ~detector:det s.dual

let body ctx =
  let rng = E.rng ctx in
  let me = E.me ctx in
  let log = ref [] in
  let decided = ref false in
  for _ = 1 to 14 do
    match Rng.int rng 6 with
    | 0 | 1 | 2 -> (
      match E.sync ctx (Some me) with
      | E.Recv m -> log := m :: !log
      | E.Own -> log := -1 :: !log
      | E.Silence -> ())
    | 3 -> (
      match E.sync ctx None with
      | E.Recv m -> log := m :: !log
      | E.Own | E.Silence -> ())
    | 4 -> E.idle ctx (1 + Rng.int rng 4)
    | _ ->
      if (not !decided) && Rng.int rng 4 = 0 then begin
        decided := true;
        E.output ctx (Rng.int rng 2)
      end;
      ignore (E.sync ctx None)
  done;
  (!log, E.round ctx)

let prop_shard_equiv =
  QCheck.Test.make ~name:"shards k = shards 1 = scalar = reference" ~count:120
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of case in
      let sharded = E.run (config_of ~shards:s.shards s) body in
      let single = E.run (config_of ~shards:1 s) body in
      let scalar = E.run (config_of ~kernel:`Off ~shards:1 s) body in
      let oracle = E.run_reference (config_of ~shards:1 s) body in
      if sharded <> single then
        QCheck.Test.fail_reportf "shards k <> shards 1: %s" (pp_scenario s);
      if sharded <> scalar then
        QCheck.Test.fail_reportf "shards k <> scalar: %s" (pp_scenario s);
      if sharded <> oracle then
        QCheck.Test.fail_reportf "shards k <> reference: %s" (pp_scenario s);
      true)

let prop_shard_forced_kernel =
  (* sharding composes with the forced dense kernel: the scatter feeds
     the same classify step the rows-based kernel uses *)
  QCheck.Test.make ~name:"shards k + kernel `On = kernel `On" ~count:60
    QCheck.(small_nat)
    (fun case ->
      let s = scenario_of (1000 + case) in
      let sharded = E.run (config_of ~kernel:`On ~shards:s.shards s) body in
      let plain = E.run (config_of ~kernel:`On ~shards:1 s) body in
      if sharded <> plain then
        QCheck.Test.fail_reportf "sharded `On <> `On: %s" (pp_scenario s);
      true)

(* Moderate-scale pin at a shard count that does not divide the
   broadcaster count: uneven slices, multiple words per row. *)
let test_shard_n512 () =
  let n = 512 in
  let es = ref [] in
  for u = 0 to n - 1 do
    for k = 1 to 32 do
      let v = (u + k) mod n in
      es := (min u v, max u v) :: !es
    done
  done;
  let dual = Dual.classic (Graph.of_edges n !es) in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let run shards =
    let cfg =
      E.config ~adversary:(Adversary.bernoulli 0.5) ~seed:11
        ~stop:(Rn_sim.Engine.At_round 30) ~shards ~detector:det dual
    in
    E.run cfg (fun ctx ->
        let heard = ref 0 in
        for _ = 1 to 30 do
          match E.sync_p ctx 0.03 (E.me ctx) with
          | E.Recv _ -> incr heard
          | E.Own | E.Silence -> ()
        done;
        !heard)
  in
  let one = run 1 and three = run 3 in
  Alcotest.(check bool) "identical results at n=512, shards=3" true (one = three);
  Alcotest.(check bool) "deliveries happened" true (one.E.stats.deliveries > 0);
  Alcotest.(check bool) "collisions happened" true (one.E.stats.collisions > 0)

let test_shard_config_validation () =
  let dual = Dual.classic (Gen.clique 4) in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  Alcotest.check_raises "shards = 0 rejected"
    (Invalid_argument "Engine.config: shards < 1") (fun () ->
      ignore (E.config ~shards:0 ~detector:det dual))

let () =
  Alcotest.run "shard"
    [
      ( "offheap-words",
        [
          qtest prop_acc2_counts_offheap;
          qtest prop_word_ops_offheap;
          Alcotest.test_case "acc2_merge_into unit cases" `Quick test_merge_units;
          qtest prop_merge_equals_sequential;
        ] );
      ( "sharded-delivery",
        [
          qtest prop_shard_equiv;
          qtest prop_shard_forced_kernel;
          Alcotest.test_case "circulant n=512, shards=3 pin" `Quick test_shard_n512;
          Alcotest.test_case "config validation" `Quick test_shard_config_validation;
        ] );
    ]
