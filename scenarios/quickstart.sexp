; Banned-list CCDS on a random geometric field under an active adversary.
(scenario
 (network (geometric (n 96) (degree 12)))
 (detector (tau 0))
 (adversary (bernoulli 0.5))
 (algorithm ccds-banned)
 (b 96)
 (seed 7))
