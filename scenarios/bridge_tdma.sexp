; The deterministic TDMA baseline on the Section 7 bridge network,
; under the spiteful adversary it is immune to.
(scenario
 (network (bridge (beta 16)))
 (detector (tau 0))
 (adversary spiteful)
 (algorithm ccds-tdma)
 (seed 1))
