; Exploration CCDS with a 2-complete detector on a clustered deployment.
(scenario
 (network (clusters (clusters 4) (per-cluster 16)))
 (detector (tau 2))
 (adversary (bernoulli 0.5))
 (algorithm ccds-explore)
 (seed 3))
