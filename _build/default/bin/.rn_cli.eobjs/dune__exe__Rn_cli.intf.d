bin/rn_cli.mli:
