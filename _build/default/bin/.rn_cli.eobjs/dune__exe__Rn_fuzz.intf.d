bin/rn_fuzz.mli:
