bin/rn_cli.ml: Arg Array Cmd Cmdliner Core Fmt Format List Printf Rn_broadcast Rn_detect Rn_games Rn_graph Rn_harness Rn_sim Rn_util Rn_verify String Term
