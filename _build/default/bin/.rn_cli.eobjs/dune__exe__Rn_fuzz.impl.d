bin/rn_fuzz.ml: Array Core List Printf Rn_detect Rn_graph Rn_harness Rn_sim Rn_util Rn_verify Sys
