(* Continuous randomized validation: generate random instances, run a
   random algorithm under a random adversary, verify the output against
   the Section 3 definitions, and report any violation with its full
   recipe (seed, size, degree, τ, adversary) so it can be replayed with
   rn_cli.

     dune exec bin/rn_fuzz.exe            # run until interrupted
     dune exec bin/rn_fuzz.exe -- 200     # exactly 200 trials
*)

module Rng = Rn_util.Rng
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio

type recipe = {
  seed : int;
  n : int;
  degree : int;
  tau : int;
  adv_name : string;
  adversary : Rn_sim.Adversary.t;
  algo : string;
}

let random_recipe rng trial =
  let seed = 100_000 + trial in
  let n = 24 + Rng.int rng 96 in
  let degree = 6 + Rng.int rng 10 in
  let adversaries =
    [|
      ("silent", Rn_sim.Adversary.silent);
      ("bernoulli:0.3", Rn_sim.Adversary.bernoulli 0.3);
      ("bernoulli:0.5", Rn_sim.Adversary.bernoulli 0.5);
      ("harassing:0.5", Rn_sim.Adversary.harassing 0.5);
    |]
  in
  let adv_name, adversary = Rng.choose rng adversaries in
  let algos = [| "mis"; "ccds-banned"; "ccds-explore"; "ccds-tdma" |] in
  let algo = Rng.choose rng algos in
  let tau = if algo = "ccds-explore" then Rng.int rng 3 else 0 in
  { seed; n; degree; tau; adv_name; adversary; algo }

let run_recipe r =
  let dual = Rn_harness.Harness.geometric ~seed:r.seed ~n:r.n ~degree:r.degree () in
  let det =
    if r.tau = 0 then Detector.perfect (Dual.g dual)
    else Detector.tau_complete ~rng:(Rng.create (r.seed + 77)) ~tau:r.tau dual
  in
  let h = Detector.h_graph det in
  let detector = Detector.static det in
  let ok_mis outputs =
    let c = Verify.Mis_check.check ~g:(Dual.g dual) ~h outputs in
    (Verify.Mis_check.ok c, c.violations)
  in
  let ok_ccds outputs =
    let c = Verify.Ccds_check.check ~h ~g':(Dual.g' dual) outputs in
    (Verify.Ccds_check.ok c, c.violations)
  in
  match r.algo with
  | "mis" ->
    let res = Core.Mis.run ~seed:r.seed ~adversary:r.adversary ~detector dual in
    ok_mis res.R.outputs
  | "ccds-banned" ->
    let res = Core.Ccds.run ~seed:r.seed ~adversary:r.adversary ~detector dual in
    ok_ccds res.R.outputs
  | "ccds-explore" ->
    let res =
      Core.Explore_ccds.run ~seed:r.seed ~adversary:r.adversary ~tau:r.tau ~detector dual
    in
    ok_ccds res.R.outputs
  | "ccds-tdma" ->
    let res = Core.Tdma_ccds.run ~seed:r.seed ~adversary:r.adversary ~detector dual in
    ok_ccds res.R.outputs
  | _ -> assert false

let () =
  let max_trials =
    if Array.length Sys.argv > 1 then int_of_string_opt Sys.argv.(1) else None
  in
  let rng = Rng.create 20260705 in
  let trial = ref 0 and failures = ref 0 in
  let continue () = match max_trials with Some m -> !trial < m | None -> true in
  while continue () do
    incr trial;
    let r = random_recipe rng !trial in
    let ok, violations = run_recipe r in
    if not ok then begin
      incr failures;
      Printf.printf "FAIL trial=%d algo=%s n=%d degree=%d tau=%d adversary=%s seed=%d\n"
        !trial r.algo r.n r.degree r.tau r.adv_name r.seed;
      List.iter (fun v -> Printf.printf "   %s\n" v) violations;
      Printf.printf "   replay: rn_cli %s -n %d --degree %d --tau %d --adversary %s --seed %d\n%!"
        (if r.algo = "mis" then "mis"
         else if r.algo = "ccds-banned" then "ccds --algo banned"
         else if r.algo = "ccds-explore" then "ccds --algo explore"
         else "ccds")
        r.n r.degree r.tau r.adv_name r.seed
    end;
    if !trial mod 25 = 0 then
      Printf.printf "[%d trials, %d failures]\n%!" !trial !failures
  done;
  Printf.printf "done: %d trials, %d failures\n" !trial !failures;
  if !failures > 0 then exit 1
