lib/games/reduction.ml: Array Core Double_game Hashtbl List Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
