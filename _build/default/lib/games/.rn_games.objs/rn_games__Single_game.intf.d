lib/games/single_game.mli: Rn_util
