lib/games/double_game.mli:
