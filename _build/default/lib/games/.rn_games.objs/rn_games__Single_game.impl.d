lib/games/single_game.ml: Array Rn_util
