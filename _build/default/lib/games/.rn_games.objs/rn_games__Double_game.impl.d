lib/games/double_game.ml: Array Hashtbl List Rn_util
