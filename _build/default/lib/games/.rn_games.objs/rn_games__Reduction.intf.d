lib/games/reduction.mli: Core Double_game Rn_detect Rn_graph Rn_verify
