(* Lemma 7.2 made executable: from a CCDS algorithm to double-hitting-game
   players.

   A player simulates one β-clique of the two-clique bridge network.  Its
   processes get the planted 1-complete detector L_u = clique ∪ {phantom},
   where the phantom node stands for the presumed bridge partner in the
   other clique (the input t_B of the game; our algorithms use ids only
   for equality, so a fixed phantom index represents any input value).
   The dual-graph adversary lets cross-clique gray edges collide anything,
   so within the player's simulation a message is received iff exactly one
   of its own processes broadcast — which on a complete reliable graph is
   just the engine's ordinary collision rule, no adversary needed.

   The guess stream: whenever a simulated process broadcasts alone, guess
   it; when the simulation terminates, guess every process that output 1
   (the CCDS must contain the bridge endpoint, so the guesses must cover
   the target).  *)

module R = Core.Radio
module Bitset = Rn_util.Bitset
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector

(* β-clique plus one isolated phantom node (index β). *)
let clique_with_phantom ~beta =
  let es = ref [] in
  for u = 0 to beta - 1 do
    for v = u + 1 to beta - 1 do
      es := (u, v) :: !es
    done
  done;
  Dual.classic (Graph.of_edges (beta + 1) !es)

let planted_detector ~beta =
  let sets =
    Array.init (beta + 1) (fun u ->
        let s = Bitset.create (beta + 1) in
        if u < beta then begin
          for v = 0 to beta - 1 do
            if v <> u then Bitset.add s v
          done;
          Bitset.add s beta
        end;
        s)
  in
  Detector.of_sets sets

(* One player simulation: returns the guess trace (values in [1, β]). *)
let ccds_clique_trace ?(params = Core.Params.default) ~beta ~seed () =
  let dual = clique_with_phantom ~beta in
  let detector = Detector.static (planted_detector ~beta) in
  let per_round : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let observer (v : R.view) =
    match v.R.view_broadcasters with
    | [| u |] when u < beta -> Hashtbl.replace per_round v.R.view_round (u + 1)
    | _ -> ()
  in
  let cfg = R.config ~seed ~observer ~detector dual in
  let res =
    R.run cfg (fun ctx ->
        if R.me ctx = beta then () (* phantom: silent forever *)
        else Core.Explore_ccds.body ~on_decide:(fun v -> R.output ctx v) params ~tau:1 ctx |> ignore)
  in
  let rounds = res.R.rounds in
  let trace = Array.make (rounds + beta) [] in
  Hashtbl.iter (fun r g -> if r >= 1 && r <= rounds then trace.(r - 1) <- [ g ]) per_round;
  (* Termination guesses: one CCDS member per extra round (the CCDS is
     constant-bounded, so this adds O(1) rounds). *)
  let members = ref [] in
  Array.iteri (fun u o -> if u < beta && o = Some 1 then members := (u + 1) :: !members) res.R.outputs;
  List.iteri (fun i g -> trace.(rounds + i) <- [ g ]) (List.rev !members);
  trace

(* The Lemma 7.2 player pair (traces memoised: a player's behaviour does
   not depend on the opponent's target beyond the phantom placeholder). *)
let ccds_players ?(params = Core.Params.default) ~beta () =
  let cache : (int, Double_game.trace) Hashtbl.t = Hashtbl.create 8 in
  let gen ~input:_ ~seed =
    match Hashtbl.find_opt cache seed with
    | Some t -> t
    | None ->
      let t = ccds_clique_trace ~params ~beta ~seed () in
      Hashtbl.add cache seed t;
      t
  in
  ({ Double_game.gen }, { Double_game.gen })

(* ---- Direct bridge-network measurement --------------------------------

   Runs the τ = 1 CCDS on the two-clique bridge network of Section 7 with
   the planted detectors and the spiteful adversary, and reports the
   rounds consumed together with whether the output actually solved the
   CCDS problem.  Theorem 7.1 says *no* algorithm can beat Ω(Δ) here;
   our O(Δ·polylog n) algorithm realises Θ(Δ·polylog n). *)

let bridge_detector ~beta =
  let n = 2 * beta in
  let sets =
    Array.init n (fun u ->
        let s = Bitset.create n in
        if u < beta then begin
          for v = 0 to beta - 1 do
            if v <> u then Bitset.add s v
          done;
          Bitset.add s beta
        end
        else begin
          for v = beta to n - 1 do
            if v <> u then Bitset.add s v
          done;
          Bitset.add s 0
        end;
        s)
  in
  Detector.of_sets sets

type bridge_result = {
  rounds : int;
  solved : bool;
  report : Rn_verify.Verify.Ccds_check.report;
}

let bridge_run ?(params = Core.Params.default) ~beta ~seed () =
  let dual = Gen.bridge_cliques ~beta () in
  let det = bridge_detector ~beta in
  let res =
    Core.Explore_ccds.run ~params ~seed ~adversary:Rn_sim.Adversary.spiteful ~tau:1
      ~detector:(Detector.static det) dual
  in
  let h = Detector.h_graph det in
  let report = Rn_verify.Verify.Ccds_check.check ~h ~g':(Dual.g' dual) res.R.outputs in
  { rounds = res.R.rounds; solved = Rn_verify.Verify.Ccds_check.ok report; report }
