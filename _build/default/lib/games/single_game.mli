(** The β-single hitting game of Section 7: guess a hidden target in
    [1, β], one guess per round, no feedback.  Ω(β) rounds are needed
    w.h.p. — the quantitative root of the Theorem 7.1 lower bound. *)

type strategy =
  | Permutation  (** a uniformly random permutation — optimal *)
  | Memoryless  (** a fresh uniform guess each round *)
  | Custom of (Rn_util.Rng.t -> beta:int -> round:int -> int)

(** The strategy's first [max_rounds] guesses. *)
val guesses : Rn_util.Rng.t -> strategy -> beta:int -> max_rounds:int -> int array

(** Rounds until the target is guessed, or [None]. *)
val play :
  Rn_util.Rng.t -> strategy -> beta:int -> target:int -> max_rounds:int -> int option

(** Mean hit time over uniform targets. *)
val mean_rounds : Rn_util.Rng.t -> strategy -> beta:int -> samples:int -> float

(** Worst-case-target [q]-quantile of the hit time (the w.h.p. cost). *)
val quantile_rounds :
  Rn_util.Rng.t -> strategy -> beta:int -> samples:int -> q:float -> float
