(** Lemma 7.2 made executable: CCDS algorithms as double-hitting-game
    players, and the two-clique bridge networks of the Theorem 7.1 lower
    bound. *)

(** β-clique plus one isolated phantom node standing for the presumed
    bridge partner. *)
val clique_with_phantom : beta:int -> Rn_graph.Dual.t

(** The planted 1-complete detector of the player simulation:
    [L_u = clique ∪ {phantom}]. *)
val planted_detector : beta:int -> Rn_detect.Detector.t

(** Guess trace of one player: run the τ=1 CCDS on the clique simulation;
    every solo broadcast is a guess, and the final CCDS members are
    guessed at termination. *)
val ccds_clique_trace :
  ?params:Core.Params.t -> beta:int -> seed:int -> unit -> Double_game.trace

(** The Lemma 7.2 player pair (traces memoised per seed). *)
val ccds_players :
  ?params:Core.Params.t -> beta:int -> unit -> Double_game.player * Double_game.player

(** The planted 1-complete detector for the full two-clique bridge
    network: everyone additionally trusts the opposite bridge endpoint. *)
val bridge_detector : beta:int -> Rn_detect.Detector.t

type bridge_result = {
  rounds : int;
  solved : bool;
  report : Rn_verify.Verify.Ccds_check.report;
}

(** Run the τ=1 CCDS on the bridge network with the spiteful adversary and
    judge the result (Theorem 7.1 forces Ω(Δ) rounds here). *)
val bridge_run : ?params:Core.Params.t -> beta:int -> seed:int -> unit -> bridge_result
