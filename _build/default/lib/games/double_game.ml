(* The β-double hitting game of Section 7.

   Two automata P_A and P_B receive each other's target as input and then
   run with no further communication, each outputting guesses; the game is
   solved when P_A guesses t_A or P_B guesses t_B.

   Because the players cannot interact, a player's entire behaviour for a
   given input is a *guess trace*: the list of guesses it emits per round.
   Representing players as trace generators keeps the machinery executable
   — the CCDS reduction of Lemma 7.2 produces exactly such traces. *)

module Rng = Rn_util.Rng

(* Guesses emitted per round (index 0 = round 1). *)
type trace = int list array

(* A player maps its input (the other player's target) and a seed to a
   trace over targets [1, beta]. *)
type player = { gen : input:int -> seed:int -> trace }

let trace_hits trace target =
  let rec loop i =
    if i >= Array.length trace then None
    else if List.mem target trace.(i) then Some (i + 1)
    else loop (i + 1)
  in
  loop 0

(* Rounds until solved for the given targets, or [None]. *)
let play ~pa ~pb ~t_a ~t_b ~seed =
  let ta_trace = pa.gen ~input:t_b ~seed in
  let tb_trace = pb.gen ~input:t_a ~seed:(seed + 1) in
  match (trace_hits ta_trace t_a, trace_hits tb_trace t_b) with
  | Some a, Some b -> Some (min a b)
  | Some a, None -> Some a
  | None, Some b -> Some b
  | None, None -> None

(* Worst-case solve time over all target pairs (small β only). *)
let worst_case ~pa ~pb ~beta ~seed =
  let worst = ref 0 in
  let unsolved = ref 0 in
  for t_a = 1 to beta do
    for t_b = 1 to beta do
      match play ~pa ~pb ~t_a ~t_b ~seed:(seed + (t_a * beta) + t_b) with
      | Some r -> if r > !worst then worst := r
      | None -> incr unsolved
    done
  done;
  (!worst, !unsolved)

(* A pair of players that splits the target space by parity and sweeps —
   a simple correct double-game solution used to exercise the Lemma 7.3
   transformation in tests. *)
let sweep_players ~beta =
  let sweep ~offset ~input:_ ~seed:_ =
    Array.init beta (fun i -> [ 1 + ((i + offset) mod beta) ])
  in
  ({ gen = sweep ~offset:0 }, { gen = sweep ~offset:(beta / 2) })

(* --- Lemma 7.3: double → single transformation ------------------------

   Given players solving the 2β-double game in f rounds w.h.p., at least
   one of P_A/P_B succeeds fast on each target pair (their failure
   probabilities multiply, being independent).  Tabulating the winner for
   every pair yields a column with ≥ β A-wins (or a row with ≥ β B-wins);
   fixing that column as the input and re-indexing through the bijection ψ
   gives a single-game automaton.  The table is estimated by Monte Carlo
   over seeds, which keeps the construction executable. *)

type single_automaton = { single_gen : seed:int -> trace }

let estimate_success player ~target ~input ~rounds ~samples ~seed =
  let hits = ref 0 in
  for s = 1 to samples do
    let tr = player.gen ~input ~seed:(seed + s) in
    match trace_hits tr target with
    | Some r when r <= rounds -> incr hits
    | Some _ | None -> ()
  done;
  float_of_int !hits /. float_of_int samples

let double_to_single ~pa ~pb ~beta2 ~rounds ~samples ~seed =
  if beta2 mod 2 <> 0 then invalid_arg "Double_game.double_to_single: beta2 odd";
  let beta = beta2 / 2 in
  (* winner.(x-1).(y-1) = true iff A wins for targets (t_A = x, t_B = y). *)
  let winner =
    Array.init beta2 (fun xi ->
        Array.init beta2 (fun yi ->
            let x = xi + 1 and y = yi + 1 in
            let p_a = estimate_success pa ~target:x ~input:y ~rounds ~samples ~seed in
            let p_b =
              estimate_success pb ~target:y ~input:x ~rounds ~samples ~seed:(seed + 7919)
            in
            p_a >= p_b))
  in
  (* Find a column with ≥ β A-wins, else a row with ≥ β B-wins (one must
     exist by counting). *)
  let col_count y = Array.fold_left (fun c row -> if row.(y) then c + 1 else c) 0 winner in
  let row_count x = Array.fold_left (fun c w -> if not w then c + 1 else c) 0 winner.(x) in
  let rec find_col y = if y >= beta2 then None else if col_count y >= beta then Some y else find_col (y + 1) in
  let rec find_row x = if x >= beta2 then None else if row_count x >= beta then Some x else find_row (x + 1) in
  let remap player ~input ~select =
    (* s_y: the first β winning indices in the chosen column/row; ψ maps
       them onto [1, β]. *)
    let s = ref [] in
    let count = ref 0 in
    for i = 0 to beta2 - 1 do
      if !count < beta && select i then begin
        s := i + 1 :: !s;
        incr count
      end
    done;
    let s = Array.of_list (List.rev !s) in
    let psi = Hashtbl.create beta in
    Array.iteri (fun k v -> Hashtbl.replace psi v (k + 1)) s;
    {
      single_gen =
        (fun ~seed ->
          let tr = player.gen ~input ~seed in
          Array.map
            (fun gs -> List.filter_map (fun g -> Hashtbl.find_opt psi g) gs)
            tr);
    }
  in
  match find_col 0 with
  | Some y -> remap pa ~input:(y + 1) ~select:(fun x -> winner.(x).(y))
  | None -> begin
    match find_row 0 with
    | Some x -> remap pb ~input:(x + 1) ~select:(fun y -> not winner.(x).(y))
    | None ->
      (* Impossible by counting when estimates are consistent; fall back to
         the first column to stay total under Monte Carlo noise. *)
      remap pa ~input:1 ~select:(fun x -> winner.(x).(0))
  end

(* Play the constructed single-game automaton. *)
let play_single automaton ~target ~seed =
  trace_hits (automaton.single_gen ~seed) target
