(** The β-double hitting game of Section 7 and the Lemma 7.3
    double→single transformation.

    Players cannot communicate after receiving each other's target as
    input, so a player's behaviour is fully described by a guess trace
    per (input, seed) — which is also exactly what the Lemma 7.2 CCDS
    reduction produces. *)

(** Guesses emitted per round (index 0 = round 1). *)
type trace = int list array

type player = { gen : input:int -> seed:int -> trace }

(** First round in which the trace guesses the target. *)
val trace_hits : trace -> int -> int option

(** Rounds until either player hits its target, or [None]. *)
val play : pa:player -> pb:player -> t_a:int -> t_b:int -> seed:int -> int option

(** [(worst solve time, unsolved pairs)] over all target pairs in
    [1, β]². *)
val worst_case : pa:player -> pb:player -> beta:int -> seed:int -> int * int

(** A simple correct player pair (offset sweeps) used to exercise the
    transformation. *)
val sweep_players : beta:int -> player * player

(** A single-game automaton built by the Lemma 7.3 construction. *)
type single_automaton

(** Monte-Carlo estimate of a player's hit probability within [rounds]. *)
val estimate_success :
  player -> target:int -> input:int -> rounds:int -> samples:int -> seed:int -> float

(** Lemma 7.3: from a pair solving the [beta2]-double game, build an
    automaton for the [beta2/2]-single game via the winner table (estimated
    over [samples] seeds). *)
val double_to_single :
  pa:player -> pb:player -> beta2:int -> rounds:int -> samples:int -> seed:int ->
  single_automaton

(** Rounds until the constructed automaton hits the target, or [None]. *)
val play_single : single_automaton -> target:int -> seed:int -> int option
