(* The β-single hitting game of Section 7.

   An adversary fixes a target in [1, β]; a probabilistic automaton guesses
   one value per round, with no feedback, until it guesses the target.
   Identifying an arbitrary element among β requires Ω(β) rounds w.h.p. —
   the quantitative root of the Theorem 7.1 lower bound.  The strategies
   here bracket the space: a uniform random permutation is optimal (hit
   time uniform on [1, β], mean (β+1)/2); memoryless uniform guessing has
   geometric hit time with mean β. *)

module Rng = Rn_util.Rng

type strategy =
  | Permutation (* guess a uniformly random permutation, optimal *)
  | Memoryless (* fresh uniform guess each round *)
  | Custom of (Rng.t -> beta:int -> round:int -> int)
      (* arbitrary automaton: guess for the given (1-based) round *)

let guesses rng strategy ~beta ~max_rounds =
  match strategy with
  | Permutation ->
    let p = Rng.permutation rng beta in
    Array.init (min beta max_rounds) (fun i -> p.(i) + 1)
  | Memoryless -> Array.init max_rounds (fun _ -> 1 + Rng.int rng beta)
  | Custom f -> Array.init max_rounds (fun i -> f rng ~beta ~round:(i + 1))

(* Rounds until the target is guessed, or [None] within [max_rounds]. *)
let play rng strategy ~beta ~target ~max_rounds =
  if target < 1 || target > beta then invalid_arg "Single_game.play: target";
  let gs = guesses rng strategy ~beta ~max_rounds in
  let rec loop i =
    if i >= Array.length gs then None
    else if gs.(i) = target then Some (i + 1)
    else loop (i + 1)
  in
  loop 0

(* Mean hit time over uniformly random targets. *)
let mean_rounds rng strategy ~beta ~samples =
  let total = ref 0 in
  let max_rounds = 1000 * beta in
  for _ = 1 to samples do
    let target = 1 + Rng.int rng beta in
    match play rng strategy ~beta ~target ~max_rounds with
    | Some r -> total := !total + r
    | None -> total := !total + max_rounds
  done;
  float_of_int !total /. float_of_int samples

(* Worst-case-target q-quantile of the hit time: for each target, the
   rounds needed to hit with probability [q]; report the max over targets.
   This is the "w.h.p." cost the lower bound speaks about. *)
let quantile_rounds rng strategy ~beta ~samples ~q =
  let worst = ref 0.0 in
  let max_rounds = 1000 * beta in
  for target = 1 to beta do
    let times =
      Array.init samples (fun _ ->
          match play rng strategy ~beta ~target ~max_rounds with
          | Some r -> float_of_int r
          | None -> float_of_int max_rounds)
    in
    let t = Rn_util.Stats.percentile times q in
    if t > !worst then worst := t
  done;
  !worst
