lib/graph/dual.ml: Array Fmt Graph List Rn_geom
