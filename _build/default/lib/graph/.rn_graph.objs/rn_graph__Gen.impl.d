lib/graph/gen.ml: Algo Array Dual Float Graph List Printf Rn_geom Rn_util
