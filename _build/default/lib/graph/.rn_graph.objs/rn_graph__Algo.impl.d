lib/graph/algo.ml: Array Graph Hashtbl List Queue Rn_util Seq
