lib/graph/dual.mli: Format Graph Rn_geom
