lib/graph/gen.mli: Dual Graph Rn_geom Rn_util
