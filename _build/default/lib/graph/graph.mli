(** Immutable undirected graphs over nodes [0, n). *)

type t

(** [of_edges n edges] builds a graph; duplicate edges are collapsed,
    self-loops and out-of-range endpoints rejected. *)
val of_edges : int -> (int * int) list -> t

val n : t -> int
val edge_count : t -> int

(** Sorted adjacency array of a node (do not mutate). *)
val neighbors : t -> int -> int array

val degree : t -> int -> int
val max_degree : t -> int
val mem_edge : t -> int -> int -> bool

(** All edges with [u < v], lexicographic order. *)
val edges : t -> (int * int) list

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Edge-union of two graphs on the same node set. *)
val union : t -> t -> t

(** [is_subgraph a b] iff every edge of [a] is in [b] (and sizes match). *)
val is_subgraph : t -> t -> bool

(** Subgraph keeping only edges between nodes satisfying the predicate. *)
val induced : t -> (int -> bool) -> t

val pp : Format.formatter -> t -> unit
