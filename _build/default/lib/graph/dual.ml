(* The dual graph network (G, G') of Section 2.

   G = (V, E) is the reliable link graph and G' = (V, E') the unreliable
   one, with E ⊆ E'.  We store G plus the *gray* edges E' \ E explicitly:
   these are exactly the links the round adversary may switch on and off,
   and the simulator indexes them densely so an adversary policy can
   activate them with a boolean per edge.

   Geometric instances additionally carry the plane embedding; the paper
   requires dist(u,v) <= 1 => (u,v) ∈ E and (u,v) ∈ E' => dist(u,v) <= d. *)

type t = {
  g : Graph.t;  (* reliable links E *)
  g' : Graph.t; (* E' = E ∪ gray *)
  gray : (int * int) array; (* E' \ E, canonical u < v, indexable *)
  gray_adj : (int * int) array array; (* node -> [(neighbor, gray edge id)] *)
  pos : Rn_geom.Point.t array option; (* plane embedding, if geometric *)
  d : float; (* max distance of a G' edge (paper's constant d) *)
}

let g t = t.g
let g' t = t.g'
let n t = Graph.n t.g
let gray_edges t = t.gray
let gray_count t = Array.length t.gray
let gray_adj t v = t.gray_adj.(v)
let positions t = t.pos
let d t = t.d

let make ?pos ?(d = 2.0) ~g ~gray () =
  let n = Graph.n g in
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let gray =
    List.sort_uniq compare (List.map canon gray)
    |> List.filter (fun (u, v) -> not (Graph.mem_edge g u v))
  in
  let gray = Array.of_list gray in
  let g' = Graph.union g (Graph.of_edges n (Array.to_list gray)) in
  (match pos with
  | Some p ->
    if Array.length p <> n then invalid_arg "Dual.make: positions arity";
    (* Model constraints: unit-distance pairs must be reliable links and no
       G' edge may exceed distance d. *)
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let dist = Rn_geom.Point.dist p.(u) p.(v) in
        if dist <= 1.0 && not (Graph.mem_edge g u v) then
          invalid_arg "Dual.make: unit-distance pair missing from E";
        if Graph.mem_edge g' u v && dist > d +. 1e-9 then
          invalid_arg "Dual.make: G' edge longer than d"
      done
    done
  | None -> ());
  let buckets = Array.make n [] in
  Array.iteri
    (fun id (u, v) ->
      buckets.(u) <- (v, id) :: buckets.(u);
      buckets.(v) <- (u, id) :: buckets.(v))
    gray;
  let gray_adj = Array.map Array.of_list buckets in
  { g; g'; gray; gray_adj; pos; d }

(* A dual graph with no unreliable links: the classic radio model G = G'. *)
let classic g = make ~g ~gray:[] ()

(* Move reliable edges into the gray set — the Section 8 "link degrades"
   event.  G' is unchanged; only the reliability of the named links drops.
   The geometric embedding is deliberately dropped: a demoted unit-distance
   edge no longer satisfies the *static* model constraint (dynamics is
   exactly the regime where that constraint is soft). *)
let demote_edges t edges =
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let demoted = List.sort_uniq compare (List.map canon edges) in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge t.g u v) then
        invalid_arg "Dual.demote_edges: not a reliable edge")
    demoted;
  let keep e = not (List.mem e demoted) in
  let g1 = Graph.of_edges (n t) (List.filter keep (Graph.edges t.g)) in
  make ~d:t.d ~g:g1 ~gray:(Array.to_list t.gray @ demoted) ()

let max_degree_g t = Graph.max_degree t.g
let max_degree_g' t = Graph.max_degree t.g'

let pp ppf t =
  Fmt.pf ppf "dual(n=%d, |E|=%d, gray=%d)" (n t) (Graph.edge_count t.g)
    (gray_count t)
