(** BFS, connectivity and path utilities over {!Graph.t}. *)

(** Distance value for unreachable nodes. *)
val unreachable : int

(** Hop distances from a source ([unreachable] where no path). *)
val bfs_dist : Graph.t -> int -> int array

(** BFS visiting only nodes allowed by the predicate. *)
val bfs_dist_restricted : Graph.t -> int -> allow:(int -> bool) -> int array

val is_connected : Graph.t -> bool

(** Is the subgraph induced by the listed nodes connected?  Vacuously true
    for empty/singleton lists. *)
val is_connected_subset : Graph.t -> int list -> bool

val connected_components : Graph.t -> int

(** Exact diameter (all-sources BFS). Raises on disconnected graphs. *)
val diameter : Graph.t -> int

val eccentricity : Graph.t -> int -> int

(** Nodes within [h] hops of [src], excluding [src]. *)
val within_hops : Graph.t -> int -> int -> int list

(** A shortest path as [src ... dst], or [None] if disconnected. *)
val shortest_path : Graph.t -> int -> int -> int list option

val is_independent_set : Graph.t -> int list -> bool
