(** Round adversaries controlling gray (unreliable) links. *)

type t

val name : t -> string

(** Fill [active] (a cleared bitset over gray-edge ids) with this round's
    activated gray edges; the adversary sees the broadcasters first, as in
    Section 2. *)
val choose :
  t ->
  round:int ->
  broadcasters:int array ->
  Rn_graph.Dual.t ->
  Rn_util.Rng.t ->
  Rn_util.Bitset.t ->
  unit

(** Never activates a gray edge. *)
val silent : t

(** Activates every gray edge every round. *)
val all_gray : t

(** Every gray edge independently active with probability [p] per round. *)
val bernoulli : float -> t

(** Gray edges incident to broadcasters active with probability [p]. *)
val harassing : float -> t

(** The Section 7 adversary: all gray edges active iff ≥ 2 broadcasters. *)
val spiteful : t

(** The broadcast-hardness adversary ([10,11]-style): adds one gray
    broadcaster at every receiver about to hear a solo reliable sender,
    and never activates a gray edge that could help. *)
val jamming : t

val custom :
  name:string ->
  (round:int ->
  broadcasters:int array ->
  Rn_graph.Dual.t ->
  Rn_util.Rng.t ->
  Rn_util.Bitset.t ->
  unit) ->
  t
