(** Execution tracing: record per-round activity via the engine observer
    and render compact summaries (sparklines, decision timelines). *)

type t

val create : unit -> t

(** Feed one observer view; wire as
    [~observer:(fun v -> Trace.observe t ~view_round:v.view_round ...)]. *)
val observe :
  t ->
  view_round:int ->
  view_broadcasters:int array ->
  view_decided:int option array ->
  view_outputs:int option array ->
  unit

(** Broadcaster count per round, in round order. *)
val broadcast_counts : t -> int array

(** First-decision events as [(round, process, output)], in round order. *)
val decisions : t -> (int * int * int) list

(** Mean broadcasters per round over equal round windows. *)
val activity_profile : t -> buckets:int -> float array

(** One-line unicode activity sparkline. *)
val sparkline : t -> buckets:int -> string

(** Summary statistics of first-decision rounds, if any. *)
val decision_summary : t -> Rn_util.Stats.summary option

val pp : Format.formatter -> t -> unit
