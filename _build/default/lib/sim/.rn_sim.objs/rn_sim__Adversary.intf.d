lib/sim/adversary.mli: Rn_graph Rn_util
