lib/sim/engine.ml: Adversary Array Effect Format List Printf Rn_detect Rn_graph Rn_util
