lib/sim/trace.ml: Array Fmt List Rn_util String
