lib/sim/engine.mli: Adversary Format Rn_detect Rn_graph Rn_util
