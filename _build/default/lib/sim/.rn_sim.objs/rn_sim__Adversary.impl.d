lib/sim/adversary.ml: Array Printf Rn_graph Rn_util
