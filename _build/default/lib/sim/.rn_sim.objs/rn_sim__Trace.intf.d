lib/sim/trace.mli: Format Rn_util
