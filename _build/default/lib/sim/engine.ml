(* The dual graph round engine (Section 2 semantics).

   Each process runs as an OCaml-5 effect fiber: algorithm code is written
   in direct style and performs [Sync send] once per round.  The engine
   gathers all send intents, lets the adversary pick the round's reach set
   (all of E plus an arbitrary subset of gray edges), computes receives
   under the collision rule — a node receives a message iff it did not
   broadcast and exactly one reachable neighbour broadcast; otherwise it
   gets silence, with no collision detection — and resumes every fiber with
   its receive.

   The functor is parameterised by the message type so each algorithm gets
   a typed payload; [size_bits] lets the engine enforce the model's bound b
   on message size in bits. *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

module type MESSAGE = sig
  type t

  (* Size of the encoded message in bits, given the network size (ids cost
     ceil(log2 n) bits). *)
  val size_bits : n:int -> t -> int

  val pp : Format.formatter -> t -> unit
end

type stop_condition =
  | All_done (* every fiber returned *)
  | All_decided (* every process produced an output *)
  | At_round of int (* run exactly this many rounds *)

type stats = {
  rounds : int;
  sends : int;
  deliveries : int;
  collisions : int; (* receiver-side: >= 2 reachable broadcasters *)
  bits_sent : int;
}

module Make (M : MESSAGE) = struct
  type receive = Own | Silence | Recv of M.t

  type _ Effect.t += Sync : M.t option -> receive Effect.t

  type view = {
    view_round : int;
    view_broadcasters : int array; (* who sent this round (read-only) *)
    view_outputs : int option array; (* read-only *)
    view_decided : int option array; (* read-only *)
  }

  type config = {
    dual : Dual.t;
    detector : Detector.dynamic;
    adversary : Adversary.t;
    seed : int;
    b_bits : int option;
    delta_bound : int;
    wake : int array option; (* global wake round per node; default all 1 *)
    stop : stop_condition;
    max_rounds : int;
    observer : (view -> unit) option;
  }

  let config ?(adversary = Adversary.silent) ?(seed = 0) ?b_bits ?(delta_bound = 0)
      ?wake ?(stop = All_done) ?(max_rounds = 2_000_000) ?observer ~detector dual =
    let delta_bound =
      if delta_bound > 0 then delta_bound else Dual.max_degree_g dual
    in
    { dual; detector; adversary; seed; b_bits; delta_bound; wake; stop; max_rounds; observer }

  type ctx = {
    me : int;
    n : int;
    delta_bound : int;
    b_bits : int option;
    rng : Rng.t;
    mutable local_round : int; (* completed syncs *)
    current_detector : unit -> Detector.t;
    do_output : int -> unit;
  }

  let me ctx = ctx.me
  let n ctx = ctx.n
  let delta_bound ctx = ctx.delta_bound
  let b_bits ctx = ctx.b_bits
  let rng ctx = ctx.rng
  let round ctx = ctx.local_round
  let detector ctx = Detector.set (ctx.current_detector ()) ctx.me
  let detector_mem ctx v = Bitset.mem (detector ctx) v
  let output ctx v = ctx.do_output v

  let sync ctx send =
    let r = Effect.perform (Sync send) in
    ctx.local_round <- ctx.local_round + 1;
    r

  (* Sync [k] rounds with no send, discarding receives. *)
  let idle ctx k =
    for _ = 1 to k do
      ignore (sync ctx None)
    done

  (* Broadcast with probability [p], otherwise listen. *)
  let sync_p ctx p send = if Rng.bool ctx.rng p then sync ctx (Some send) else sync ctx None

  type 'a result = {
    outputs : int option array;
    returns : 'a option array;
    rounds : int;
    decided_round : int option array;
    stats : stats;
    timed_out : bool;
  }

  type fiber_status = Asleep | Running | Finished

  let run cfg body =
    let dual = cfg.dual in
    let nn = Dual.n dual in
    let root_rng = Rng.create cfg.seed in
    let adv_rng = Rng.derive root_rng 0x5EED in
    let wake = match cfg.wake with Some w -> Array.copy w | None -> Array.make nn 1 in
    Array.iteri
      (fun v w -> if w < 1 then invalid_arg (Printf.sprintf "Engine.run: wake.(%d) < 1" v))
      wake;
    let outputs = Array.make nn None in
    let decided = Array.make nn None in
    let returns = Array.make nn None in
    let status = Array.make nn Asleep in
    let sends = Array.make nn None in
    let conts :
        (receive, unit) Effect.Deep.continuation option array =
      Array.make nn None
    in
    let round_counter = ref 0 in
    let sends_total = ref 0 and deliveries = ref 0 and collisions = ref 0 in
    let bits_sent = ref 0 in
    let mk_ctx v =
      {
        me = v;
        n = nn;
        delta_bound = cfg.delta_bound;
        b_bits = cfg.b_bits;
        rng = Rng.derive root_rng (v + 1);
        local_round = 0;
        current_detector = (fun () -> Detector.at cfg.detector !round_counter);
        do_output =
          (fun value ->
            match outputs.(v) with
            | Some old when old <> value ->
              invalid_arg
                (Printf.sprintf "Engine: process %d re-output %d after %d" v value old)
            | Some _ -> ()
            | None ->
              outputs.(v) <- Some value;
              decided.(v) <- Some !round_counter);
      }
    in
    let handler v : (unit, unit) Effect.Deep.handler =
      {
        retc = (fun () -> status.(v) <- Finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sync send ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  sends.(v) <- send;
                  conts.(v) <- Some k)
            | _ -> None);
      }
    in
    let start v =
      status.(v) <- Running;
      let ctx = mk_ctx v in
      Effect.Deep.match_with (fun () -> returns.(v) <- Some (body ctx)) () (handler v)
    in
    (* Delivery scratch space, reset via the touched list each round. *)
    let recv_count = Array.make nn 0 in
    let recv_msg : M.t option array = Array.make nn None in
    let touched = ref [] in
    let gray_active = Bitset.create (max 1 (Dual.gray_count dual)) in
    (* Preallocated receive buffer, reused every round. *)
    let receives = Array.make nn Silence in
    let g = Dual.g dual in
    let finished () = Array.for_all (fun s -> s = Finished) status in
    let decided_all () = Array.for_all (fun o -> o <> None) outputs in
    let stop_now () =
      match cfg.stop with
      | All_done -> finished ()
      | All_decided -> decided_all () || finished ()
      | At_round r -> !round_counter >= r
    in
    let timed_out = ref false in
    (try
       while not (stop_now ()) do
         if !round_counter >= cfg.max_rounds then begin
           timed_out := true;
           raise Exit
         end;
         incr round_counter;
         let r = !round_counter in
         (* 1. Wake processes scheduled for this round; they run to their
            first sync and thereby register this round's send intent. *)
         for v = 0 to nn - 1 do
           if status.(v) = Asleep && wake.(v) = r then start v
         done;
         (* 2. Collect broadcasters and enforce the message-size bound. *)
         let bcast = ref [] in
         for v = nn - 1 downto 0 do
           match sends.(v) with
           | Some m ->
             bcast := v :: !bcast;
             incr sends_total;
             let sz = M.size_bits ~n:nn m in
             bits_sent := !bits_sent + sz;
             (match cfg.b_bits with
             | Some b when sz > b ->
               invalid_arg
                 (Format.asprintf
                    "Engine: process %d sent %d bits > b=%d in round %d: %a" v sz b r M.pp m)
             | _ -> ())
           | None -> ()
         done;
         let broadcasters = Array.of_list !bcast in
         (* 3. Adversary picks the gray edges that behave reliably. *)
         Bitset.clear gray_active;
         Adversary.choose cfg.adversary ~round:r ~broadcasters dual adv_rng gray_active;
         (* 4. Deliveries along E plus activated gray edges. *)
         let touch v m =
           if recv_count.(v) = 0 then touched := v :: !touched;
           recv_count.(v) <- recv_count.(v) + 1;
           recv_msg.(v) <- Some m
         in
         Array.iter
           (fun u ->
             let m = match sends.(u) with Some m -> m | None -> assert false in
             Array.iter (fun v -> touch v m) (Graph.neighbors g u);
             Array.iter
               (fun (v, e) -> if Bitset.mem gray_active e then touch v m)
               (Dual.gray_adj dual u))
           broadcasters;
         (* 5. Compute receives for every live fiber, then resume.  All
            receives are computed before any resume so next-round send
            intents cannot bleed into this round. *)
         for v = 0 to nn - 1 do
           receives.(v) <- Silence;
           if conts.(v) <> None then
             if sends.(v) <> None then receives.(v) <- Own
             else if recv_count.(v) = 1 then begin
               (match recv_msg.(v) with Some m -> receives.(v) <- Recv m | None -> assert false);
               incr deliveries
             end
             else if recv_count.(v) >= 2 then incr collisions
         done;
         List.iter
           (fun v ->
             recv_count.(v) <- 0;
             recv_msg.(v) <- None)
           !touched;
         touched := [];
         for v = 0 to nn - 1 do
           match conts.(v) with
           | Some k ->
             sends.(v) <- None;
             conts.(v) <- None;
             Effect.Deep.continue k receives.(v)
           | None -> sends.(v) <- None
         done;
         match cfg.observer with
         | Some f ->
           f
             {
               view_round = r;
               view_broadcasters = broadcasters;
               view_outputs = outputs;
               view_decided = decided;
             }
         | None -> ()
       done
     with Exit -> ());
    {
      outputs;
      returns;
      rounds = !round_counter;
      decided_round = decided;
      stats =
        {
          rounds = !round_counter;
          sends = !sends_total;
          deliveries = !deliveries;
          collisions = !collisions;
          bits_sent = !bits_sent;
        };
      timed_out = !timed_out;
    }
end
