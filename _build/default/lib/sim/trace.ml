(* Execution tracing: an observer that records per-round activity and
   renders compact summaries (activity sparklines, decision timelines,
   window statistics).  Useful for eyeballing an algorithm's phase
   structure — competition bursts, announcement windows, the long quiet
   stretches of bounded-broadcast slots — without drowning in events. *)

module Stats = Rn_util.Stats

type t = {
  mutable broadcasters : int list; (* per round, reversed *)
  mutable decisions : (int * int * int) list; (* (round, process, output) *)
  mutable seen : bool array; (* processes whose decision is recorded *)
  mutable rounds : int;
}

let create () = { broadcasters = []; decisions = []; seen = [||]; rounds = 0 }

(* Feed one engine view into the trace (pass as the engine observer,
   partially applied: [~observer:(Trace.observe t)]). *)
let observe t ~view_round ~view_broadcasters ~view_decided:_ ~view_outputs =
  t.rounds <- view_round;
  t.broadcasters <- Array.length view_broadcasters :: t.broadcasters;
  if Array.length t.seen <> Array.length view_outputs then
    t.seen <- Array.make (Array.length view_outputs) false;
  Array.iteri
    (fun v o ->
      match o with
      | Some out ->
        if not t.seen.(v) then begin
          t.seen.(v) <- true;
          t.decisions <- (view_round, v, out) :: t.decisions
        end
      | None -> ())
    view_outputs

let broadcast_counts t = Array.of_list (List.rev t.broadcasters)

let decisions t = List.rev t.decisions

(* Mean broadcasters per round over [buckets] equal windows. *)
let activity_profile t ~buckets =
  let counts = broadcast_counts t in
  let n = Array.length counts in
  if n = 0 || buckets < 1 then [||]
  else
    Array.init buckets (fun b ->
        let lo = b * n / buckets and hi = max (((b + 1) * n / buckets) - 1) (b * n / buckets) in
        let slice = Array.sub counts lo (hi - lo + 1) in
        Stats.mean (Stats.of_ints slice))

(* A one-line unicode sparkline of the activity profile. *)
let sparkline t ~buckets =
  let profile = activity_profile t ~buckets in
  if Array.length profile = 0 then ""
  else begin
    let hi = Array.fold_left max 0.0 profile in
    let glyphs = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
    let pick v =
      if hi <= 0.0 then glyphs.(0)
      else glyphs.(min 8 (int_of_float (ceil (v /. hi *. 8.0))))
    in
    String.concat "" (Array.to_list (Array.map pick profile))
  end

(* Decision latency summary: when did processes decide, relative to the
   run length. *)
let decision_summary t =
  match decisions t with
  | [] -> None
  | ds ->
    let rounds = Array.of_list (List.map (fun (r, _, _) -> float_of_int r) ds) in
    Some (Stats.summarize rounds)

let pp ppf t =
  let counts = broadcast_counts t in
  let total = Array.fold_left ( + ) 0 counts in
  Fmt.pf ppf "trace: %d rounds, %d sends, activity [%s]" t.rounds total
    (sparkline t ~buckets:60);
  match decision_summary t with
  | Some s -> Fmt.pf ppf ", decisions %a" Stats.pp_summary s
  | None -> ()
