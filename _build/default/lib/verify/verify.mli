(** Checkers for the problem definitions of Section 3 and structural
    quality metrics. *)

(** Nodes with output 1, ascending. *)
val ones : int option array -> int list

module Mis_check : sig
  type report = {
    termination : bool;  (** every process output 0 or 1 *)
    independence : bool;  (** no two members adjacent in [G] *)
    maximality : bool;  (** every 0-process has an [H]-neighbour member *)
    violations : string list;  (** human-readable description of each failure *)
  }

  val ok : report -> bool

  (** Judge MIS outputs: independence against the reliable graph [g],
      maximality against the detector graph [h]. *)
  val check : g:Rn_graph.Graph.t -> h:Rn_graph.Graph.t -> int option array -> report
end

module Ccds_check : sig
  type report = {
    termination : bool;
    connectivity : bool;  (** the member set is connected in [H] *)
    domination : bool;  (** every 0-process has an [H]-neighbour member *)
    max_neighbors_g' : int;  (** max members among any node's [G']-neighbours *)
    size : int;
    violations : string list;
  }

  (** [ok ?bound r]: all conditions hold and the constant-bounded value is
      at most [bound] (default: unbounded). *)
  val ok : ?bound:int -> report -> bool

  val check : h:Rn_graph.Graph.t -> g':Rn_graph.Graph.t -> int option array -> report
end

(** Routing-quality metric for backbones: the detour cost of restricting
    intermediate hops to the member set. *)
module Stretch : sig
  (** Shortest [src]→[dst] path length with member-only interiors
      ([Rn_graph.Algo.unreachable] if none). *)
  val backbone_dist :
    Rn_graph.Graph.t -> is_member:(int -> bool) -> int -> int -> int

  type report = {
    max_stretch : float;
    mean_stretch : float;
    unroutable : int;  (** H-connected pairs with no backbone route *)
    pairs : int;
  }

  (** Stretch over all pairs, or over [sample = (rng, k)] random pairs. *)
  val measure :
    ?sample:Rn_util.Rng.t * int ->
    h:Rn_graph.Graph.t ->
    members:int list ->
    unit ->
    report
end

(** Exact optima on small instances, for approximation-quality checks. *)
module Exact : sig
  (** Largest instance size accepted (exponential enumeration). *)
  val max_n : int

  (** Size of a minimum connected dominating set of a connected graph.
      Raises [Invalid_argument] for [n > max_n]. *)
  val min_cds : Rn_graph.Graph.t -> int
end

(** Corollary 4.7: MIS density against the overlay bound [I_r]. *)
module Density : sig
  (** Maximum number of members within plane distance [r] of any node. *)
  val max_within : pos:Rn_geom.Point.t array -> members:int list -> float -> int

  (** [max_within <= I_r] for the constructive overlay bound. *)
  val respects_corollary : pos:Rn_geom.Point.t array -> members:int list -> float -> bool
end
