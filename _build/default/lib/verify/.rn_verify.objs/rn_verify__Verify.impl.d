lib/verify/verify.ml: Array Format Fun List Queue Rn_geom Rn_graph Rn_util
