lib/verify/verify.mli: Rn_geom Rn_graph Rn_util
