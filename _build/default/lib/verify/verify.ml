(* Checkers for the problem definitions of Section 3.

   Both problems are judged against two graphs: independence/domination
   constraints refer to the reliable graph G or the detector graph H
   (mutual detector membership), and the constant-bounded condition of the
   CCDS refers to G'.  The checkers return structured reports naming every
   violated condition, so experiment tables can report *which* property
   failed on the rare unlucky seed. *)

module Graph = Rn_graph.Graph
module Algo = Rn_graph.Algo
module Point = Rn_geom.Point
module Overlay = Rn_geom.Overlay

let ones outputs =
  let acc = ref [] in
  Array.iteri (fun v o -> if o = Some 1 then acc := v :: !acc) outputs;
  List.rev !acc

(* ---------------- MIS (Section 3) ---------------- *)

module Mis_check = struct
  type report = {
    termination : bool; (* every process output 0 or 1 *)
    independence : bool; (* no two MIS members adjacent in G *)
    maximality : bool; (* every 0-process has an H-neighbour in the MIS *)
    violations : string list;
  }

  let ok r = r.termination && r.independence && r.maximality

  let check ~g ~h outputs =
    let n = Graph.n g in
    if Array.length outputs <> n then invalid_arg "Mis_check.check: arity";
    let violations = ref [] in
    let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
    let termination = ref true in
    Array.iteri
      (fun v o ->
        if o = None then begin
          termination := false;
          add "process %d undecided" v
        end)
      outputs;
    let members = ones outputs in
    let independence = ref true in
    let rec indep = function
      | [] -> ()
      | u :: rest ->
        List.iter
          (fun v ->
            if Graph.mem_edge g u v then begin
              independence := false;
              add "MIS members %d and %d adjacent in G" u v
            end)
          rest;
        indep rest
    in
    indep members;
    let in_mis = Array.make n false in
    List.iter (fun v -> in_mis.(v) <- true) members;
    let maximality = ref true in
    Array.iteri
      (fun v o ->
        if o = Some 0 then
          if not (Array.exists (fun u -> in_mis.(u)) (Graph.neighbors h v)) then begin
            maximality := false;
            add "process %d output 0 without an H-neighbour in the MIS" v
          end)
      outputs;
    {
      termination = !termination;
      independence = !independence;
      maximality = !maximality;
      violations = List.rev !violations;
    }
end

(* ---------------- CCDS (Section 3) ---------------- *)

module Ccds_check = struct
  type report = {
    termination : bool;
    connectivity : bool; (* the 1-set is connected in H *)
    domination : bool; (* every 0-process has an H-neighbour in the set *)
    max_neighbors_g' : int; (* max CCDS members among any node's G'-neighbours *)
    size : int;
    violations : string list;
  }

  (* [bound] is the constant δ of the constant-bounded condition the
     caller wants enforced. *)
  let ok ?(bound = max_int) r =
    r.termination && r.connectivity && r.domination && r.max_neighbors_g' <= bound

  let check ~h ~g' outputs =
    let n = Graph.n h in
    if Array.length outputs <> n then invalid_arg "Ccds_check.check: arity";
    let violations = ref [] in
    let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
    let termination = ref true in
    Array.iteri
      (fun v o ->
        if o = None then begin
          termination := false;
          add "process %d undecided" v
        end)
      outputs;
    let members = ones outputs in
    let in_set = Array.make n false in
    List.iter (fun v -> in_set.(v) <- true) members;
    let connectivity = Algo.is_connected_subset h members in
    if not connectivity then add "CCDS not connected in H (|set|=%d)" (List.length members);
    let domination = ref true in
    Array.iteri
      (fun v o ->
        if o = Some 0 then
          if not (Array.exists (fun u -> in_set.(u)) (Graph.neighbors h v)) then begin
            domination := false;
            add "process %d output 0 without an H-neighbour in the CCDS" v
          end)
      outputs;
    let max_neighbors_g' =
      Graph.fold_nodes
        (fun v acc ->
          let c =
            Array.fold_left
              (fun c u -> if in_set.(u) then c + 1 else c)
              0 (Graph.neighbors g' v)
          in
          max acc c)
        g' 0
    in
    {
      termination = !termination;
      connectivity;
      domination = !domination;
      max_neighbors_g';
      size = List.length members;
      violations = List.rev !violations;
    }
end

(* ---------------- Backbone routing quality ----------------

   A CCDS is sold as a routing backbone: any two nodes route via their
   dominators across backbone-internal paths.  [Stretch] quantifies the
   detour that costs: the ratio of the backbone-constrained distance (all
   intermediate hops inside the member set) to the true distance in H. *)

module Stretch = struct
  (* Shortest u→v path where every intermediate node is a member.
     BFS that only expands member nodes (the source is always expandable,
     the destination only needs to be reached). *)
  let backbone_dist h ~is_member src dst =
    if src = dst then 0
    else begin
      let n = Graph.n h in
      let dist = Array.make n Algo.unreachable in
      let q = Queue.create () in
      dist.(src) <- 0;
      Queue.add src q;
      let answer = ref Algo.unreachable in
      while (not (Queue.is_empty q)) && !answer = Algo.unreachable do
        let u = Queue.pop q in
        Array.iter
          (fun v ->
            if dist.(v) = Algo.unreachable then begin
              dist.(v) <- dist.(u) + 1;
              if v = dst then answer := dist.(v)
              else if is_member v then Queue.add v q
            end)
          (Graph.neighbors h u)
      done;
      !answer
    end

  type report = {
    max_stretch : float;
    mean_stretch : float;
    unroutable : int; (* pairs connected in H but not via the backbone *)
    pairs : int;
  }

  (* Stretch over all (or [sample]d) connected pairs. *)
  let measure ?sample ~h ~members () =
    let n = Graph.n h in
    let is_member =
      let a = Array.make n false in
      List.iter (fun v -> a.(v) <- true) members;
      fun v -> a.(v)
    in
    let pairs =
      match sample with
      | None ->
        List.concat_map
          (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) (List.init n Fun.id))
          (List.init n Fun.id)
      | Some (rng, k) ->
        List.init k (fun _ ->
            let u = Rn_util.Rng.int rng n and v = Rn_util.Rng.int rng n in
            if u <= v then (u, v) else (v, u))
        |> List.filter (fun (u, v) -> u <> v)
    in
    let worst = ref 1.0 and total = ref 0.0 and counted = ref 0 and unroutable = ref 0 in
    List.iter
      (fun (u, v) ->
        let direct = Algo.bfs_dist h u in
        if direct.(v) <> Algo.unreachable then begin
          let via = backbone_dist h ~is_member u v in
          if via = Algo.unreachable then incr unroutable
          else begin
            let s = float_of_int via /. float_of_int direct.(v) in
            if s > !worst then worst := s;
            total := !total +. s;
            incr counted
          end
        end)
      pairs;
    {
      max_stretch = !worst;
      mean_stretch = (if !counted = 0 then 1.0 else !total /. float_of_int !counted);
      unroutable = !unroutable;
      pairs = !counted;
    }
end

(* ---------------- Exact optima on small instances ----------------

   Exhaustive minimum connected dominating set, for judging the CCDS
   algorithms' approximation quality where the optimum is computable
   (n ≤ ~20, bitmask enumeration in increasing-size order). *)

module Exact = struct
  let max_n = 22

  (* Closed neighbourhood masks. *)
  let masks g =
    let n = Graph.n g in
    Array.init n (fun v ->
        Array.fold_left (fun m u -> m lor (1 lsl u)) (1 lsl v) (Graph.neighbors g v))

  let dominates closed s =
    let n = Array.length closed in
    let covered = ref 0 in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then covered := !covered lor closed.(v)
    done;
    !covered = (1 lsl n) - 1

  (* Connectivity of the subgraph induced by mask [s]: flood from its
     lowest member through open neighbourhoods restricted to [s]. *)
  let connected_mask open_nbrs s =
    if s = 0 then false
    else begin
      let start = s land -s in
      let reach = ref start in
      let frontier = ref start in
      while !frontier <> 0 do
        let next = ref 0 in
        Array.iteri
          (fun v nb ->
            if !frontier land (1 lsl v) <> 0 then next := !next lor (nb land s))
          open_nbrs;
        frontier := !next land lnot !reach;
        reach := !reach lor !next
      done;
      !reach land s = s
    end

  (* Size of a minimum connected dominating set of a connected graph.
     Raises for n > [max_n] (exponential enumeration). *)
  let min_cds g =
    let n = Graph.n g in
    if n > max_n then invalid_arg "Exact.min_cds: instance too large";
    if n = 1 then 1
    else begin
      let closed = masks g in
      let open_nbrs =
        Array.init n (fun v ->
            Array.fold_left (fun m u -> m lor (1 lsl u)) 0 (Graph.neighbors g v))
      in
      (* enumerate subsets grouped by cardinality *)
      let best = ref n in
      (try
         for size = 1 to n do
           (* Gosper's hack over all masks of this popcount *)
           let limit = 1 lsl n in
           let s = ref ((1 lsl size) - 1) in
           while !s < limit do
             if dominates closed !s && connected_mask open_nbrs !s then begin
               best := size;
               raise Exit
             end;
             (* next mask with same popcount *)
             let c = !s land - !s in
             let r = !s + c in
             s := (((r lxor !s) lsr 2) / c) lor r
           done
         done
       with Exit -> ());
      !best
    end
end

(* ---------------- Density (Corollary 4.7) ---------------- *)

module Density = struct
  (* Maximum number of MIS members within plane distance [r] of any node
     (MIS members count themselves); Corollary 4.7 bounds this by I_r. *)
  let max_within ~pos ~members r =
    let worst = ref 0 in
    Array.iteri
      (fun v pv ->
        ignore v;
        let c =
          List.fold_left
            (fun c u -> if Point.dist pv pos.(u) <= r then c + 1 else c)
            0 members
        in
        if c > !worst then worst := c)
      pos;
    !worst

  (* Check Corollary 4.7 against the constructive overlay bound. *)
  let respects_corollary ~pos ~members r =
    max_within ~pos ~members r <= Overlay.i_r_cached r
end
