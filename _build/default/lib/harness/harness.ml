(* Shared experiment plumbing: instance construction, repetition over
   seeds, aggregation, and a uniform result format rendered by both
   [bench/main.ml] and the CLI. *)

module Rng = Rn_util.Rng
module Table = Rn_util.Table
module Stats = Rn_util.Stats
module Fit = Rn_util.Fit
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

type scale = Quick | Full

let reps = function Quick -> 3 | Full -> 5

type result = {
  id : string;
  title : string;
  body : string; (* rendered tables *)
  notes : string list; (* fit summaries, paper-vs-measured one-liners *)
}

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "=== %s: %s ===\n" r.id r.title);
  Buffer.add_string b r.body;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  . %s\n" n)) r.notes;
  Buffer.add_string b "\n";
  Buffer.contents b

let print r =
  print_string (render r);
  flush stdout

(* A connected random geometric dual graph with expected reliable degree
   [degree]; deterministic in [seed]. *)
let geometric ?(d = 2.0) ?(gray_p = 0.5) ~seed ~n ~degree () =
  let rng = Rng.create (0x9E0 + seed) in
  let side = Gen.side_for_degree ~n ~target_degree:degree in
  Gen.geometric ~rng (Gen.default_spec ~d ~gray_p ~n ~side ())

(* Perfect (0-complete) static detector for an instance. *)
let perfect_detector dual = Detector.static (Detector.perfect (Dual.g dual))

let tau_detector ~seed ~tau dual =
  let rng = Rng.create (0x7A0 + seed) in
  Detector.static (Detector.tau_complete ~rng ~tau dual)

let success_rate oks =
  let total = List.length oks in
  if total = 0 then 0.0
  else
    float_of_int (List.length (List.filter Fun.id oks)) /. float_of_int total

(* Mean of int samples as float. *)
let mean_int xs = Stats.mean (Stats.of_ints (Array.of_list xs))

(* Fit note helpers. *)
let note_polylog ~what xs ys =
  let p, r2 = Fit.polylog_exponent (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ (log n)^%.2f (r2=%.3f)" what p r2

let note_power ~what xs ys =
  let p, r2 = Fit.power_law (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ x^%.2f (r2=%.3f)" what p r2
