(* Figure generation: the scaling curves behind the experiment tables,
   rendered as standalone SVG files (the paper is a theory paper with no
   figures; these are the figures its theorems describe).

     F1  MIS rounds vs n (log-log)                        — Theorem 4.6
     F2  CCDS rounds vs Delta for small/large b           — Theorem 5.3
     F3  lower-bound costs vs beta (log-log)              — Theorem 7.1
     F4  deterministic TDMA vs randomized CCDS vs n       — related work [19]
*)

module Svg = Rn_util.Svg_plot
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module R = Core.Radio
open Harness

let f1 () =
  let ns = [ 32; 64; 128; 256; 512 ] in
  let rounds = ref [] and decide = ref [] in
  List.iter
    (fun n ->
      let dual = geometric ~seed:n ~n ~degree:(max 8 (2 * Rn_util.Ilog.log2_up n)) () in
      let det = Detector.perfect (Dual.g dual) in
      let res =
        Core.Mis.run ~seed:1
          ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
          ~detector:(Detector.static det) dual
      in
      let last =
        Array.fold_left (fun acc d -> match d with Some r -> max acc r | None -> acc) 0
          res.R.decided_round
      in
      rounds := (float_of_int n, float_of_int res.R.rounds) :: !rounds;
      decide := (float_of_int n, float_of_int last) :: !decide)
    ns;
  Svg.create ~x_axis:Svg.Log ~y_axis:Svg.Log ~title:"F1: MIS rounds vs n (Thm 4.6)"
    ~x_label:"n" ~y_label:"rounds" ()
  |> Svg.add_series ~label:"schedule" (List.rev !rounds)
  |> Svg.add_series ~label:"last decision" (List.rev !decide)

let f2 () =
  let n = 128 in
  let id = Rn_util.Ilog.log2_up n in
  let degrees = [ 8; 16; 32; 48 ] in
  let series_for b =
    List.map
      (fun degree ->
        let dual = geometric ~seed:(17 * degree) ~n ~degree () in
        let det = Detector.perfect (Dual.g dual) in
        let res =
          Core.Ccds.run ~seed:1 ?b_bits:b
            ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
            ~detector:(Detector.static det) dual
        in
        (float_of_int (Dual.max_degree_g dual), float_of_int res.R.rounds))
      degrees
  in
  Svg.create ~title:"F2: banned-list CCDS rounds vs Delta (Thm 5.3)" ~x_label:"Delta"
    ~y_label:"rounds" ()
  |> Svg.add_series ~label:(Printf.sprintf "b = %d bits" (6 * id)) (series_for (Some (6 * id)))
  |> Svg.add_series
       ~label:(Printf.sprintf "b = %d bits" (24 * id))
       (series_for (Some (24 * id)))
  |> Svg.add_series ~label:"b unbounded" (series_for None)

let f3 () =
  let betas = [ 4; 8; 16; 32; 64 ] in
  let bridge =
    List.map
      (fun beta ->
        let r = Rn_games.Reduction.bridge_run ~beta ~seed:3 () in
        (float_of_int beta, float_of_int r.rounds))
      betas
  in
  let rng = Rn_util.Rng.create 1 in
  let game =
    List.map
      (fun beta ->
        (float_of_int beta, Rn_games.Single_game.mean_rounds rng Permutation ~beta ~samples:300))
      betas
  in
  Svg.create ~x_axis:Svg.Log ~y_axis:Svg.Log
    ~title:"F3: the Omega(Delta) lower bound (Thm 7.1)" ~x_label:"beta = Delta"
    ~y_label:"rounds" ()
  |> Svg.add_series ~label:"tau=1 CCDS on bridge" bridge
  |> Svg.add_series ~label:"single hitting game" game

let f4 () =
  let ns = [ 32; 64; 128; 256 ] in
  let collect runner =
    List.map
      (fun n ->
        let dual = geometric ~seed:(11 * n) ~n ~degree:(max 8 (2 * Rn_util.Ilog.log2_up n)) () in
        let det = Detector.perfect (Dual.g dual) in
        (float_of_int n, float_of_int (runner det dual)))
      ns
  in
  let tdma det dual =
    (Core.Tdma_ccds.run ~seed:1 ~adversary:Rn_sim.Adversary.all_gray
       ~detector:(Detector.static det) dual)
      .R.rounds
  in
  let banned det dual =
    (Core.Ccds.run ~seed:1
       ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
       ~detector:(Detector.static det) dual)
      .R.rounds
  in
  Svg.create ~x_axis:Svg.Log ~y_axis:Svg.Log
    ~title:"F4: deterministic TDMA [19] vs randomized CCDS" ~x_label:"n" ~y_label:"rounds" ()
  |> Svg.add_series ~label:"TDMA (all-gray)" (collect tdma)
  |> Svg.add_series ~label:"banned-list (bern 0.5)" (collect banned)

let all = [ ("F1", f1); ("F2", f2); ("F3", f3); ("F4", f4) ]

(* Write every figure into [dir] (created if missing); returns the paths. *)
let write_all dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, f) ->
      let path = Filename.concat dir (name ^ ".svg") in
      Rn_util.Svg_plot.write (f ()) path;
      path)
    all
