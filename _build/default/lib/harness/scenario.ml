(* Scenario files: declarative experiment descriptions that the CLI can
   run directly, e.g.

     (scenario
      (network (geometric (n 128) (degree 12)))
      (detector (tau 0))
      (adversary (bernoulli 0.5))
      (algorithm ccds-banned)
      (b 96)
      (seed 7))

   Networks:    (geometric (n N) (degree D) [(d F)] [(gray-p F)])
                (grid (rows R) (cols C))
                (clusters (clusters K) (per-cluster M))
                (bridge (beta B))
                (ring (n N)) | (path (n N)) | (clique (n N)) | (star (n N))
   Adversaries: silent | all | spiteful | (bernoulli P) | (harassing P)
   Algorithms:  mis | ccds-banned | ccds-explore | ccds-tdma | async-mis

   Everything else is optional with sensible defaults.  Parsing failures
   raise [Scenario_error] with a readable message. *)

module Sexp = Rn_util.Sexp
module Rng = Rn_util.Rng
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio

exception Scenario_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Scenario_error m)) fmt

type algorithm = Mis | Ccds_banned | Ccds_explore | Ccds_tdma | Async_mis

type t = {
  network : Sexp.t;
  tau : int;
  adversary : Rn_sim.Adversary.t;
  algorithm : algorithm;
  b_bits : int option;
  seed : int;
}

let get_int ?default entries key =
  match Sexp.assoc key entries with
  | Some [ v ] -> begin
    match Sexp.as_int v with
    | Some i -> i
    | None -> fail "(%s …): expected an integer" key
  end
  | Some _ -> fail "(%s …): expected exactly one value" key
  | None -> ( match default with Some d -> d | None -> fail "missing (%s …)" key)

let get_float_opt entries key =
  match Sexp.assoc key entries with
  | Some [ v ] -> begin
    match Sexp.as_float v with
    | Some f -> Some f
    | None -> fail "(%s …): expected a number" key
  end
  | Some _ -> fail "(%s …): expected exactly one value" key
  | None -> None

let parse_adversary = function
  | Sexp.Atom "silent" -> Rn_sim.Adversary.silent
  | Sexp.Atom "all" -> Rn_sim.Adversary.all_gray
  | Sexp.Atom "spiteful" -> Rn_sim.Adversary.spiteful
  | Sexp.Atom "jamming" -> Rn_sim.Adversary.jamming
  | Sexp.List [ Sexp.Atom "bernoulli"; p ] -> begin
    match Sexp.as_float p with
    | Some p -> Rn_sim.Adversary.bernoulli p
    | None -> fail "(bernoulli P): bad probability"
  end
  | Sexp.List [ Sexp.Atom "harassing"; p ] -> begin
    match Sexp.as_float p with
    | Some p -> Rn_sim.Adversary.harassing p
    | None -> fail "(harassing P): bad probability"
  end
  | s -> fail "unknown adversary %s" (Sexp.to_string s)

let parse_algorithm = function
  | Sexp.Atom "mis" -> Mis
  | Sexp.Atom "ccds-banned" -> Ccds_banned
  | Sexp.Atom "ccds-explore" -> Ccds_explore
  | Sexp.Atom "ccds-tdma" -> Ccds_tdma
  | Sexp.Atom "async-mis" -> Async_mis
  | s -> fail "unknown algorithm %s" (Sexp.to_string s)

let parse sexp =
  (match sexp with
  | Sexp.List (Sexp.Atom "scenario" :: _) -> ()
  | _ -> fail "expected (scenario …)");
  let network =
    match Sexp.assoc "network" sexp with
    | Some [ n ] -> n
    | Some _ | None -> fail "missing (network …)"
  in
  let tau =
    match Sexp.assoc "detector" sexp with
    | Some [ d ] -> get_int ~default:0 (Sexp.List [ d ]) "tau"
    | Some _ -> fail "(detector …): expected one spec"
    | None -> 0
  in
  let adversary =
    match Sexp.assoc "adversary" sexp with
    | Some [ a ] -> parse_adversary a
    | Some _ -> fail "(adversary …): expected one spec"
    | None -> Rn_sim.Adversary.bernoulli 0.5
  in
  let algorithm =
    match Sexp.assoc "algorithm" sexp with
    | Some [ a ] -> parse_algorithm a
    | Some _ | None -> fail "missing (algorithm …)"
  in
  let b_bits =
    match Sexp.assoc "b" sexp with
    | Some [ v ] -> Some (match Sexp.as_int v with Some i -> i | None -> fail "(b …): bad int")
    | Some _ -> fail "(b …): expected one value"
    | None -> None
  in
  let seed = match Sexp.assoc "seed" sexp with Some [ v ] -> ( match Sexp.as_int v with Some i -> i | None -> fail "(seed …): bad int") | Some _ -> fail "(seed …)" | None -> 1 in
  { network; tau; adversary; algorithm; b_bits; seed }

let build_network t =
  match t.network with
  | Sexp.List (Sexp.Atom "geometric" :: _) as spec ->
    let n = get_int spec "n" in
    let degree = get_int ~default:12 spec "degree" in
    let d = match get_float_opt spec "d" with Some f -> f | None -> 2.0 in
    let gray_p = match get_float_opt spec "gray-p" with Some f -> f | None -> 0.5 in
    Harness.geometric ~d ~gray_p ~seed:t.seed ~n ~degree ()
  | Sexp.List (Sexp.Atom "grid" :: _) as spec ->
    let rows = get_int spec "rows" and cols = get_int spec "cols" in
    Gen.grid_jitter ~rng:(Rng.create t.seed) ~rows ~cols ()
  | Sexp.List (Sexp.Atom "clusters" :: _) as spec ->
    let k = get_int spec "clusters" and m = get_int spec "per-cluster" in
    Gen.clusters ~rng:(Rng.create t.seed) ~clusters:k ~per_cluster:m ()
  | Sexp.List (Sexp.Atom "bridge" :: _) as spec ->
    Gen.bridge_cliques ~beta:(get_int spec "beta") ()
  | Sexp.List (Sexp.Atom shape :: _) as spec
    when List.mem shape [ "ring"; "path"; "clique"; "star" ] ->
    let n = get_int spec "n" in
    let g =
      match shape with
      | "ring" -> Gen.ring n
      | "path" -> Gen.path n
      | "clique" -> Gen.clique n
      | _ -> Gen.star n
    in
    Dual.classic g
  | s -> fail "unknown network %s" (Sexp.to_string s)

type report = {
  scenario : t;
  rounds : int;
  stats : Rn_sim.Engine.stats;
  valid : bool;
  violations : string list;
  outputs : int option array;
}

let run t =
  let dual = build_network t in
  let detector =
    if t.tau = 0 then Detector.perfect (Dual.g dual)
    else Detector.tau_complete ~rng:(Rng.create (t.seed + 77)) ~tau:t.tau dual
  in
  let h = Detector.h_graph detector in
  let det = Detector.static detector in
  let adversary = t.adversary and seed = t.seed in
  let finish ~kind rounds stats (outputs : int option array) =
    let valid, violations =
      match kind with
      | `Mis ->
        let r = Verify.Mis_check.check ~g:(Dual.g dual) ~h outputs in
        (Verify.Mis_check.ok r, r.violations)
      | `Ccds ->
        let r = Verify.Ccds_check.check ~h ~g':(Dual.g' dual) outputs in
        (Verify.Ccds_check.ok r, r.violations)
    in
    { scenario = t; rounds; stats; valid; violations; outputs }
  in
  match t.algorithm with
  | Mis ->
    let r = Core.Mis.run ~adversary ~seed ?b_bits:t.b_bits ~detector:det dual in
    finish ~kind:`Mis r.R.rounds r.R.stats r.R.outputs
  | Ccds_banned ->
    if t.tau > 0 then fail "ccds-banned requires (detector (tau 0))";
    let r = Core.Ccds.run ~adversary ~seed ?b_bits:t.b_bits ~detector:det dual in
    finish ~kind:`Ccds r.R.rounds r.R.stats r.R.outputs
  | Ccds_explore ->
    let r =
      Core.Explore_ccds.run ~adversary ~seed ?b_bits:t.b_bits ~tau:t.tau ~detector:det dual
    in
    finish ~kind:`Ccds r.R.rounds r.R.stats r.R.outputs
  | Ccds_tdma ->
    let r = Core.Tdma_ccds.run ~adversary ~seed ?b_bits:t.b_bits ~detector:det dual in
    finish ~kind:`Ccds r.R.rounds r.R.stats r.R.outputs
  | Async_mis ->
    let n = Dual.n dual in
    let spread = 4 * Rn_util.Ilog.log2_up n * Rn_util.Ilog.log2_up n in
    let wake = Array.init n (fun i -> 1 + (((i * 131) + seed) mod spread)) in
    let r = Core.Async_mis.run ~adversary ~seed ~wake ~detector:det dual in
    finish ~kind:`Mis r.R.rounds r.R.stats r.R.outputs

let render (r : report) =
  let b = Buffer.create 256 in
  let size = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 r.outputs in
  Buffer.add_string b
    (Printf.sprintf "rounds=%d sends=%d collisions=%d bits=%d\n" r.rounds r.stats.sends
       r.stats.collisions r.stats.bits_sent);
  Buffer.add_string b
    (Printf.sprintf "structure: %d of %d processes output 1\n" size (Array.length r.outputs));
  Buffer.add_string b (Printf.sprintf "valid: %b\n" r.valid);
  List.iter (fun v -> Buffer.add_string b (Printf.sprintf "  violation: %s\n" v)) r.violations;
  Buffer.contents b

let run_file path = run (parse (Sexp.parse_file path))
