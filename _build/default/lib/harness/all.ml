(* Registry of every experiment, keyed by the DESIGN.md index. *)

let experiments : (string * (Harness.scale -> Harness.result)) list =
  [
    ("E1", Exp_mis.e1);
    ("E2", Exp_ccds.e2);
    ("E3", Exp_ccds.e3);
    ("E4a", Exp_lower.e4_single);
    ("E4b", Exp_lower.e4_double);
    ("E4c", Exp_lower.e4_bridge);
    ("E5", Exp_mis.e5);
    ("E6", Exp_ccds.e6);
    ("E7", Exp_mis.e7);
    ("E8a", Exp_subroutines.e8_bb);
    ("E8b", Exp_subroutines.e8_dd);
    ("A1", Exp_ccds.a1);
    ("A2", Exp_mis.a2);
    ("A3", Exp_broadcast.a3);
    ("A4", Exp_repair.a4);
    ("A5", Exp_tdma.a5);
    ("A6", Exp_params.a6);
    ("A7", Exp_broadcast.a7);
    ("A8", Exp_quality.a8);
  ]

let ids = List.map fst experiments

let find id =
  let canon s = String.lowercase_ascii s in
  List.find_map
    (fun (k, f) -> if canon k = canon id then Some f else None)
    experiments

let run_all scale =
  List.map (fun (_, f) -> f scale) experiments
