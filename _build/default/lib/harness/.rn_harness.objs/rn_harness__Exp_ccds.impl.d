lib/harness/exp_ccds.ml: Core Harness List Printf Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
