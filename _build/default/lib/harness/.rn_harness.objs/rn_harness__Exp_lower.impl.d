lib/harness/exp_lower.ml: Harness List Rn_games Rn_util
