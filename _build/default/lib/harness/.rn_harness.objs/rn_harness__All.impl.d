lib/harness/all.ml: Exp_broadcast Exp_ccds Exp_lower Exp_mis Exp_params Exp_quality Exp_repair Exp_subroutines Exp_tdma Harness List String
