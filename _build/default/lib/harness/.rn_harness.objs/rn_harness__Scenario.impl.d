lib/harness/scenario.ml: Array Buffer Core Harness List Printf Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
