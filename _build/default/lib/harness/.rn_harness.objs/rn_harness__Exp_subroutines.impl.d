lib/harness/exp_subroutines.ml: Array Core Harness Hashtbl List Rn_detect Rn_graph Rn_util
