lib/harness/exp_params.ml: Core Harness List Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
