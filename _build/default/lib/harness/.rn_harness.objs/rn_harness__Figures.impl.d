lib/harness/figures.ml: Array Core Filename Harness List Printf Rn_detect Rn_games Rn_graph Rn_sim Rn_util Sys
