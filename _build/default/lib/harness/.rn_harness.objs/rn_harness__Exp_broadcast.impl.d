lib/harness/exp_broadcast.ml: Array Core Harness List Printf Rn_broadcast Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
