lib/harness/exp_quality.ml: Array Core Harness List Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
