lib/harness/exp_tdma.ml: Array Core Harness List Printf Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
