lib/harness/exp_mis.ml: Array Core Harness List Rn_detect Rn_geom Rn_graph Rn_sim Rn_util Rn_verify
