lib/harness/harness.ml: Array Buffer Fun List Printf Rn_detect Rn_graph Rn_util
