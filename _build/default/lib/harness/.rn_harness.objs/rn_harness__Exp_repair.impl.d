lib/harness/exp_repair.ml: Array Core Harness List Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
