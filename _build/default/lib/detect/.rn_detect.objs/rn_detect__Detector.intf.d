lib/detect/detector.mli: Rn_graph Rn_util
