lib/detect/detector.ml: Array List Rn_graph Rn_util Seq
