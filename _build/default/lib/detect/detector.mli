(** Link detectors (Section 2): per-process estimates of the reliable
    neighbourhood, with at most τ misclassified unreliable links. *)

type t

(** Number of processes covered. *)
val n : t -> int

(** The detector set [L_u] (do not mutate). *)
val set : t -> int -> Rn_util.Bitset.t

(** [mem t u v] iff [v ∈ L_u]. *)
val mem : t -> int -> int -> bool

(** Wrap explicit per-node sets (no validation). *)
val of_sets : Rn_util.Bitset.t array -> t

(** The 0-complete detector [L_u = N_G(u)]. *)
val perfect : Rn_graph.Graph.t -> t

type mistake_pool =
  | Gray_only  (** misclassify only actual gray neighbours (realistic) *)
  | Any_non_neighbor
  | Planted of (int -> int list)
      (** exact mistakes per node; used by the lower-bound construction *)

(** τ-complete detector: perfect knowledge plus up to τ mistakes per node
    drawn from [pool] (default [Gray_only]). *)
val tau_complete :
  rng:Rn_util.Rng.t -> tau:int -> ?pool:mistake_pool -> Rn_graph.Dual.t -> t

(** Validates the τ-completeness conditions against the reliable graph. *)
val is_tau_complete : t -> tau:int -> Rn_graph.Graph.t -> bool

(** The graph [H] of Section 3: edge iff mutual detector membership. *)
val h_graph : t -> Rn_graph.Graph.t

(** Dynamic link detectors (Section 8): one output per round. *)
type dynamic

(** A dynamic detector that never changes. *)
val static : t -> dynamic

val dynamic : at:(int -> t) -> ?stabilizes_at:int -> unit -> dynamic

(** Output [before] until [round], then [after] forever (stabilises at
    [round]). *)
val switching : before:t -> after:t -> round:int -> dynamic

(** The detector output at a given round. *)
val at : dynamic -> int -> t

(** Round at which the detector is known to stabilise, if declared. *)
val stabilizes_at : dynamic -> int option
