(** The hexagonal-lattice disk overlay of Section 4 of the paper.

    Disks of radius 1/2 centred on a triangular lattice cover the plane;
    the proofs bound contention via [I_r], the maximum number of overlay
    disks intersecting any disk of radius [r] (Fact 4.1: constant for
    constant [r]). *)

(** Radius of each overlay disk (1/2, as in the paper). *)
val radius : float

(** Nearest-neighbour spacing of the lattice ([sqrt 3 /. 2]). *)
val pitch : float

(** Centre of the lattice disk with integer coordinates [(i, j)]. *)
val center : int -> int -> Point.t

(** The overlay disk covering a point: index of the nearest lattice
    centre. *)
val disk_of_point : Point.t -> int * int

(** Sanity predicate: the covering disk's centre is within [radius]. *)
val covered : Point.t -> bool

(** Lattice centres within a given distance of a point. *)
val centers_within : Point.t -> float -> (int * int) list

(** [i_r r] computes the paper's [I_r] by enumeration over a fundamental
    domain sampled on a [samples × samples] grid (default 24). *)
val i_r : ?samples:int -> float -> int

(** Memoised [i_r] with default sampling. *)
val i_r_cached : float -> int
