(** Points in the plane. *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t
val dist : t -> t -> float

(** Squared distance (no sqrt). *)
val dist2 : t -> t -> float

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Uniform point in [\[0,w\] × \[0,h\]]. *)
val random : Rn_util.Rng.t -> w:float -> h:float -> t
