lib/geom/point.mli: Format Rn_util
