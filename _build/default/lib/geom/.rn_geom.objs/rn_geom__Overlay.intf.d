lib/geom/overlay.mli: Point
