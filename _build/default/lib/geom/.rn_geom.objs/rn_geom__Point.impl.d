lib/geom/point.ml: Fmt Rn_util
