lib/geom/overlay.ml: Hashtbl List Point
