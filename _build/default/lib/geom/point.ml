(* Points in the two-dimensional plane in which the network nodes are
   embedded (Section 2 of the paper). *)

type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }

let equal a b = a.x = b.x && a.y = b.y

let pp ppf p = Fmt.pf ppf "(%.3f, %.3f)" p.x p.y

(* Uniform point in the axis-aligned box [0,w] x [0,h]. *)
let random rng ~w ~h =
  { x = Rn_util.Rng.float rng *. w; y = Rn_util.Rng.float rng *. h }
