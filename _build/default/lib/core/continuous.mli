(** The continuous CCDS of Section 8: rerun the one-shot algorithm every
    δ_CCDS rounds against a dynamic link detector, installing each rerun's
    outputs atomically at its end.  If the detector stabilises by round
    [r], the installed structure solves the CCDS problem from
    [r + 2·δ_CCDS] on (Theorem 8.1). *)

type iteration = {
  index : int;  (** 1-based rerun index *)
  start_round : int;
  end_round : int;
  outputs : int option array;  (** outputs installed at [end_round] *)
  timed_out : bool;
}

type run_result = {
  iterations : iteration list;
  period : int;  (** δ_CCDS: fixed length of one rerun *)
}

(** The structure in force at a global round: the last rerun finishing
    strictly before it, if any. *)
val structure_at : run_result -> int -> iteration option

val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  detector:Rn_detect.Detector.dynamic ->
  iterations:int ->
  Rn_graph.Dual.t ->
  run_result
