(** Localized CCDS repair after link degradation — a concrete answer to
    the open problem raised in Section 8.  Orphaned processes (all their
    remembered masters gone from the detector) elect replacements via one
    MIS schedule among themselves; old and new members then re-link
    through the Section 6 connection machinery.  The benefit over a full
    rebuild is structural stability (low churn); experiment A4 quantifies
    it. *)

type plan = {
  was_member : bool;  (** output 1 in the previous structure *)
  was_dominator : bool;  (** an MIS node of the previous structure *)
  old_masters : int list;  (** dominators this process was covered by *)
}

type outcome = { orphan : bool; dominator : bool; in_ccds : bool }

val body : ?on_decide:(int -> unit) -> Params.t -> plan -> Radio.ctx -> outcome

(** Standalone runner over the per-process state of a previous build. *)
val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  detector:Rn_detect.Detector.dynamic ->
  old_outputs:int option array ->
  old_dominators:bool array ->
  old_masters:int list array ->
  Rn_graph.Dual.t ->
  outcome Radio.result

(** Fraction of positions whose outputs differ. *)
val churn : before:int option array -> after:int option array -> float
