(* The exploration-based CCDS of Section 6 — and, with τ = 0, exactly the
   "simple approach" baseline the banned-list algorithm of Section 5 is
   measured against (each dominator gives *every* neighbour a chance to
   report, costing O(Δ) explorations regardless of message size).

   Structure: build a dominating set (plain MIS for τ = 0; the iterated
   MIS with H-filtering for τ > 0), then

   Phase 1 — every dominator polls each of its link-detector neighbours in
   turn (plus itself); the polled process announces its id and master (its
   own id marked as dominator, or one dominator covering it).

   Phase 2 — the same schedule again, with each polled process gossiping
   everything it heard in phase 1 (chunked under a message-size bound).

   After phase 2 a dominator u has, for every dominator t within 3 hops, an
   evidence path: t heard directly, t's announcement relayed by a
   neighbour v (u–v–t), or a gossiped entry (x, master = t) giving
   u–v–x–t.  Phases 3 and 4 broadcast the chosen relays so the path nodes
   join the CCDS.  The paper sketches phases 1–2 and notes they suffice to
   build the structure; the selection/join phases are the natural
   completion and add only O(polylog n) rounds.

   The connection machinery ([connect]) is shared with the localized
   repair protocol of [Repair] (Section 8 future work). *)

module R = Radio
module Bitset = Rn_util.Bitset
module Ilog = Rn_util.Ilog

type path = Direct | Via of int | Via2 of int * int

type outcome = {
  dominator : bool;
  in_ccds : bool;
  targets : (int * path) list; (* dominators discovered, with evidence *)
}

let path_len = function Direct -> 1 | Via _ -> 2 | Via2 _ -> 3

let announce_lds = function
  | Msg.Announce { lds; _ } | Msg.Gossip { lds; _ } -> lds
  | _ -> None

(* Entries fitting in one gossip message under the bound b. *)
let gossip_capacity ctx ~mutual =
  let n = R.n ctx in
  let id = Msg.id_bits ~n in
  match R.b_bits ctx with
  | None -> max_int
  | Some b ->
    let label = if mutual then (R.delta_bound ctx + 2) * id else 1 in
    let avail = b - Msg.tag_bits - id - label in
    let cap = avail / ((2 * id) + 1) in
    if cap < 1 then
      invalid_arg "Explore_ccds: b too small for gossip (need b = Omega(Delta log n) with labels)"
    else cap

(* The announce/gossip/select machinery: connects every pair of dominators
   within 3 hops by making the evidence-path relays call [on_join].  All
   processes execute it in lock step; dominators additionally drive the
   poll schedule.  Returns the evidence table of this dominator (empty for
   covered processes). *)
let connect ?(mutual = false) ?(on_join = fun () -> ()) (params : Params.t) ctx
    ~dominator ~my_master =
  let me = R.me ctx in
  let lds () = if mutual then Some (Radio.detector_list ctx) else None in
  let bb msg ~on_recv =
    Subroutines.bounded_broadcast params ctx ~delta:params.delta_bb msg ~on_recv
  in
  (* Detector filtering for control traffic; mutual H-filtering for
     announcements and gossip when τ > 0. *)
  let ctl on_msg m = if Radio.in_detector ctx (Msg.src m) then on_msg m in
  let data on_msg m =
    if Radio.in_detector ctx (Msg.src m) then
      if mutual then begin
        match announce_lds m with
        | Some l when List.mem me l -> on_msg m
        | Some _ | None -> ()
      end
      else on_msg m
  in
  let poll_list =
    if dominator then Array.of_list (List.sort compare (me :: Radio.detector_list ctx))
    else [||]
  in
  let slots = R.delta_bound ctx + 1 in
  let heard1 : (int, int option) Hashtbl.t = Hashtbl.create 16 in
  (* Run one poll sub-slot; [answer] builds the polled process's response
     rounds. *)
  let run_poll_slot k ~answer =
    let poll_msg =
      if dominator && k < Array.length poll_list && poll_list.(k) <> me then
        Some (Msg.Poll { src = me; who = poll_list.(k) })
      else None
    in
    let due = ref (dominator && k < Array.length poll_list && poll_list.(k) = me) in
    bb poll_msg ~on_recv:(fun m ->
        ctl (function Msg.Poll { src = _; who } when who = me -> due := true | _ -> ()) m);
    answer !due
  in
  (* ---------------- Phase 1: announcements ---------------- *)
  for k = 0 to slots - 1 do
    run_poll_slot k ~answer:(fun due ->
        let msg =
          if due && (dominator || my_master <> None) then
            Some
              (Msg.Announce
                 { src = me; master = (if dominator then None else my_master); lds = lds () })
          else None
        in
        bb msg ~on_recv:(fun m ->
            data
              (function
                | Msg.Announce { src; master; _ } -> Hashtbl.replace heard1 src master
                | _ -> ())
              m))
  done;
  (* ---------------- Phase 2: gossip ---------------- *)
  let cap = gossip_capacity ctx ~mutual in
  let gossip_slots = if cap = max_int then 1 else Ilog.cdiv (R.delta_bound ctx + 2) cap in
  (* Evidence per target dominator, preferring shorter paths. *)
  let evidence : (int, path) Hashtbl.t = Hashtbl.create 8 in
  let record target p =
    if target <> me then begin
      match Hashtbl.find_opt evidence target with
      | Some old when path_len old <= path_len p -> ()
      | _ -> Hashtbl.replace evidence target p
    end
  in
  Hashtbl.iter
    (fun p master ->
      match master with None -> record p Direct | Some m -> record m (Via p))
    heard1;
  for k = 0 to slots - 1 do
    run_poll_slot k ~answer:(fun due ->
        let my_entries =
          if due then
            Hashtbl.fold (fun pid master acc -> { Msg.pid; master } :: acc) heard1 []
          else []
        in
        let chunks = if cap = max_int then [ my_entries ] else Radio.chunks ~cap my_entries in
        for slot = 0 to gossip_slots - 1 do
          let msg =
            match List.nth_opt chunks slot with
            | Some (_ :: _ as entries) -> Some (Msg.Gossip { src = me; entries; lds = lds () })
            | Some [] | None -> None
          in
          bb msg ~on_recv:(fun m ->
              data
                (function
                  | Msg.Gossip { src = v; entries; _ } ->
                    List.iter
                      (fun { Msg.pid = x; master } ->
                        if x <> me then begin
                          match master with
                          | None -> record x (Via v)
                          | Some m ->
                            (* m = v means the gossiper itself is a
                               dominator and an H-neighbour: no relay. *)
                            if m = v then record m Direct else record m (Via2 (v, x))
                        end)
                      entries
                  | _ -> ())
                m)
        done)
  done;
  (* ---------------- Phase 3: path selection ---------------- *)
  let picks =
    if dominator then
      Hashtbl.fold
        (fun _target p acc ->
          match p with
          | Direct -> acc
          | Via v -> (v, None) :: acc
          | Via2 (v, x) -> (v, Some x) :: acc)
        evidence []
      |> List.sort_uniq compare
    else []
  in
  (* Selection messages are chunked under the bound b like everything
     else; slot counts are functions of the global (n, Δ, b) only, keeping
     all processes phase-aligned. *)
  let id = Msg.id_bits ~n:(R.n ctx) in
  let pick_cap, xs_cap =
    match R.b_bits ctx with
    | None -> (max_int, max_int)
    | Some b ->
      let avail = b - Msg.tag_bits - id in
      (max 1 (avail / ((2 * id) + 1)), max 1 (avail / id))
  in
  let pick_slots =
    if pick_cap = max_int then 1 else Ilog.cdiv (R.delta_bound ctx + 2) pick_cap
  in
  let relay_xs = ref [] in
  let pick_chunks = if pick_cap = max_int then [ picks ] else Radio.chunks ~cap:pick_cap picks in
  for slot = 0 to pick_slots - 1 do
    let msg =
      match List.nth_opt pick_chunks slot with
      | Some (_ :: _ as picks) -> Some (Msg.Path_select { src = me; picks })
      | Some [] | None -> None
    in
    bb msg ~on_recv:(fun m ->
        ctl
          (function
            | Msg.Path_select { src = _; picks } ->
              List.iter
                (fun (v, x) ->
                  if v = me then begin
                    on_join ();
                    match x with Some x -> relay_xs := x :: !relay_xs | None -> ()
                  end)
                picks
            | _ -> ())
          m)
  done;
  (* ---------------- Phase 4: second-hop relays ---------------- *)
  let xs = List.sort_uniq compare !relay_xs in
  let xs_chunks = if xs_cap = max_int then [ xs ] else Radio.chunks ~cap:xs_cap xs in
  for slot = 0 to pick_slots - 1 do
    let msg =
      match List.nth_opt xs_chunks slot with
      | Some (_ :: _ as xs) -> Some (Msg.Relay_select { src = me; xs })
      | Some [] | None -> None
    in
    bb msg ~on_recv:(fun m ->
        ctl
          (function
            | Msg.Relay_select { src = _; xs } -> if List.mem me xs then on_join ()
            | _ -> ())
          m)
  done;
  List.sort compare (Hashtbl.fold (fun t p acc -> (t, p) :: acc) evidence [])

let body ?(on_decide = fun _ -> ()) (params : Params.t) ~tau ctx =
  if tau < 0 then invalid_arg "Explore_ccds.body: negative tau";
  let mutual = tau > 0 in
  (* --- dominating structure --- *)
  let dominator, masters =
    if tau = 0 then
      let o = Mis.body params ctx in
      (o.in_mis, o.mis_neighbors)
    else
      let o = Iterated_mis.body params ~tau ctx in
      (o.dominator, o.masters)
  in
  let in_ccds = ref dominator in
  if dominator then on_decide 1;
  let on_join () =
    if not !in_ccds then begin
      in_ccds := true;
      on_decide 1
    end
  in
  let my_master = match masters with [] -> None | m :: _ -> Some m in
  let targets = connect ~mutual ~on_join params ctx ~dominator ~my_master in
  if not !in_ccds then on_decide 0;
  { dominator; in_ccds = !in_ccds; targets }

(* Standalone runner (τ = 0 gives the naive exploration baseline). *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ~tau ~detector dual =
  Params.validate params;
  let cfg = R.config ~adversary ~seed ?b_bits ~detector dual in
  R.run cfg (fun ctx -> body ~on_decide:(fun v -> R.output ctx v) params ~tau ctx)
