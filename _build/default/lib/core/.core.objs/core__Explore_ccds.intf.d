lib/core/explore_ccds.mli: Msg Params Radio Rn_detect Rn_graph Rn_sim
