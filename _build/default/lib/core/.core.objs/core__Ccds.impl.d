lib/core/ccds.ml: Hashtbl List Mis Msg Params Radio Rn_sim Rn_util Subroutines
