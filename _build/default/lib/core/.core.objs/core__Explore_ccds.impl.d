lib/core/explore_ccds.ml: Array Hashtbl Iterated_mis List Mis Msg Params Radio Rn_sim Rn_util Subroutines
