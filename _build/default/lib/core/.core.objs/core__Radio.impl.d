lib/core/radio.ml: List Msg Printf Rn_sim Rn_util
