lib/core/subroutines.mli: Msg Params Radio
