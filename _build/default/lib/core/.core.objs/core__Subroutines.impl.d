lib/core/subroutines.ml: Hashtbl List Msg Params Radio Rn_util
