lib/core/async_mis.mli: Msg Params Radio Rn_detect Rn_graph Rn_sim
