lib/core/iterated_mis.ml: Hashtbl List Mis Params Radio Rn_sim
