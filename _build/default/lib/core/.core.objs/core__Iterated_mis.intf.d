lib/core/iterated_mis.mli: Params Radio Rn_detect Rn_graph Rn_sim
