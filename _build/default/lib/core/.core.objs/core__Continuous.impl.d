lib/core/continuous.ml: Ccds List Params Radio Rn_detect Rn_sim
