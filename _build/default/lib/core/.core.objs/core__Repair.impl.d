lib/core/repair.ml: Array Explore_ccds List Mis Params Radio Rn_graph Rn_sim Rn_util
