lib/core/mis.ml: Hashtbl List Msg Params Radio Rn_sim Rn_util
