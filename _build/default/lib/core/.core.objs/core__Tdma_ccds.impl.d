lib/core/tdma_ccds.ml: Explore_ccds Hashtbl List Msg Params Radio Rn_sim Rn_util
