lib/core/tdma_ccds.mli: Explore_ccds Params Radio Rn_detect Rn_graph Rn_sim
