lib/core/ccds.mli: Params Radio Rn_detect Rn_graph Rn_sim
