lib/core/msg.ml: Fmt List Rn_util
