lib/core/continuous.mli: Params Rn_detect Rn_graph Rn_sim
