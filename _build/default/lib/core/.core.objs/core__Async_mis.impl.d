lib/core/async_mis.ml: Msg Params Radio Rn_sim Rn_util
