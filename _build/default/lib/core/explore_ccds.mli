(** The exploration-based CCDS of Section 6 (and, with [tau = 0], the
    naive per-neighbour baseline of Section 5's motivation): a dominating
    structure from the (iterated) MIS, then poll-driven announcement and
    gossip phases giving every dominator an evidence path to each
    dominator within 3 hops, then relay selection.  O(Δ·polylog n) rounds
    for any τ = O(1) (Theorem 6.2). *)

(** Evidence for reaching a target dominator: directly H-adjacent, via one
    relay, or via two relays. *)
type path = Direct | Via of int | Via2 of int * int

type outcome = {
  dominator : bool;
  in_ccds : bool;
  targets : (int * path) list;
      (** dominators discovered by this dominator, with chosen evidence *)
}

(** Hops on the evidence path (1, 2 or 3). *)
val path_len : path -> int

(** Detector-set label of announcement/gossip messages. *)
val announce_lds : Msg.t -> int list option

(** Gossip entries fitting one message under the bound (raises if [b] is
    too small for labelled gossip).  The label estimate assumes detector
    sets of at most [delta_bound + 2] ids; for τ > 2 under a bounded [b],
    provide [b = Ω((Δ+τ)·log n)] or the engine will reject an oversized
    labelled message at send time (loud, not silent). *)
val gossip_capacity : Radio.ctx -> mutual:bool -> int

(** The shared connection machinery (announce → gossip → path selection →
    relay join): connects every pair of dominators within 3 hops by making
    evidence-path relays call [on_join].  All processes must call it at
    the same local round with their role flags; also used by {!Repair}. *)
val connect :
  ?mutual:bool ->
  ?on_join:(unit -> unit) ->
  Params.t ->
  Radio.ctx ->
  dominator:bool ->
  my_master:int option ->
  (int * path) list

val body : ?on_decide:(int -> unit) -> Params.t -> tau:int -> Radio.ctx -> outcome

val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  tau:int ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
