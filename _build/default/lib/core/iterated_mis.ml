(* The iterated MIS procedure of Section 6.

   With a τ-complete detector, a single MIS run guarantees maximality only
   in H, and an H-covered process can be far from every MIS process in G.
   The fix: run τ+1 sequential iterations of the Section 4 algorithm, where
   processes label messages with their link detector sets and discard any
   message failing the mutual-membership (H-edge) check, and where a
   process that joined in an earlier iteration sits out later ones.

   Lemma 6.1: the resulting structure has (a) every process outputting 1 or
   having a *G*-neighbour that outputs 1 — a never-joining process was
   covered by τ+1 distinct H-neighbours of which at most τ can be outside
   G — and (b) only O(1) winners within G' range of any process. *)

module R = Radio

type outcome = {
  dominator : bool;
  iteration_joined : int option; (* 1-based iteration in which we joined *)
  masters : int list; (* H-neighbours known to have output 1 *)
}

let schedule_rounds (params : Params.t) ~n ~tau =
  (tau + 1) * Mis.schedule_rounds params ~n

let body ?(on_decide = fun _ -> ()) (params : Params.t) ~tau ctx =
  if tau < 0 then invalid_arg "Iterated_mis.body: negative tau";
  let joined = ref None in
  let masters : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  for iteration = 1 to tau + 1 do
    let o =
      Mis.body ~filter:Mis.h_filter ~label_lds:true ~participate:(!joined = None)
        params ctx
    in
    if o.in_mis && !joined = None then begin
      joined := Some iteration;
      on_decide 1
    end;
    List.iter (fun v -> Hashtbl.replace masters v ()) o.mis_neighbors
  done;
  if !joined = None then on_decide 0;
  let masters = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) masters []) in
  { dominator = !joined <> None; iteration_joined = !joined; masters }

(* Standalone runner: output 1 iff the process joined in some iteration. *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ~tau ~detector dual =
  Params.validate params;
  let cfg = R.config ~adversary ~seed ?b_bits ~detector dual in
  R.run cfg (fun ctx -> body ~on_decide:(fun v -> R.output ctx v) params ~tau ctx)
