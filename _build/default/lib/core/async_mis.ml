(* The asynchronous-start MIS variant of Section 9.

   Processes wake at arbitrary rounds and know only their local round
   number.  Each epoch is prefixed with a listening phase of Θ(log² n)
   rounds during which the process is silent; receiving *any* (filtered)
   message knocks it back to a brand-new epoch, and an MIS announcement
   additionally decides it 0.  A process that survives all competition
   phases joins the MIS and keeps announcing with probability 1/2 forever,
   informing processes that wake later.

   With [classic = true] the algorithm uses no topology information at all
   (every received message is accepted), which is the G = G' configuration
   of Theorem 9.4. *)

module R = Radio
module Ilog = Rn_util.Ilog

type outcome = { in_mis : bool; covered : bool }

exception Knocked
exception Covered

let accept_all _ctx = function R.Recv m -> Some m | R.Own | R.Silence -> None

let body ?(classic = false) ?(on_decide = fun _ -> ()) (params : Params.t) ctx =
  let n = R.n ctx and me = R.me ctx in
  let filter = if classic then accept_all else Radio.recv_from_detector in
  let logn = Ilog.log2_up n in
  let lp = params.c_phase * logn in
  let phases = logn in
  (* Θ(log² n), and at least as long as a whole competition block: a
     knocked-out process must stay silent long enough for its knocker to
     run through all remaining phases and join (Lemma 9.3's argument
     silently requires the listening constant to dominate the competition
     constant). *)
  let listen_len = params.c_listen * phases * lp in
  (* Listen one round; raise on knock-out or coverage. *)
  let listen_round ~send =
    let recv = match send with None -> R.sync ctx None | Some (p, m) -> R.sync_p ctx p m in
    match filter ctx recv with
    | Some (Msg.Mis_announce _) -> raise Covered
    | Some (Msg.Contender _) -> raise Knocked
    | Some _ | None -> ()
  in
  let joined = ref false in
  let covered = ref false in
  (try
     let epoch = ref 0 in
     (* Every restart counts as a started epoch; the budget is a safety
        valve against adversarial livelock, after which the process stops
        competing and waits passively to be covered (MIS members announce
        forever, so coverage eventually arrives w.h.p.). *)
     while (not !joined) && !epoch < params.max_async_epochs do
       incr epoch;
       try
         (* Listening phase: silent; any message restarts the epoch. *)
         for _ = 1 to listen_len do
           listen_round ~send:None
         done;
         (* Competition phases with doubling probabilities. *)
         for ph = 0 to phases - 1 do
           let p = min 0.5 (float_of_int (1 lsl ph) /. float_of_int n) in
           for _ = 1 to lp do
             listen_round ~send:(Some (p, Msg.Contender { src = me; lds = None }))
           done
         done;
         joined := true
       with Knocked -> ()
     done;
     if not !joined then
       while true do
         listen_round ~send:None
       done
   with Covered ->
     covered := true;
     on_decide 0);
  if !joined then begin
    on_decide 1;
    (* Announce forever so late wakers learn of us; the engine's stop
       condition (All_decided) ends the run. *)
    while true do
      ignore (R.sync_p ctx 0.5 (Msg.Mis_announce { src = me; lds = None }))
    done
  end;
  { in_mis = !joined; covered = !covered }

(* Standalone runner with per-process wake rounds. *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?(classic = false) ?wake ?(max_rounds = 2_000_000) ~detector dual =
  Params.validate params;
  let cfg =
    R.config ~adversary ~seed ?wake ~stop:R.All_decided ~max_rounds ~detector dual
  in
  R.run cfg (fun ctx -> body ~classic ~on_decide:(fun v -> R.output ctx v) params ctx)
