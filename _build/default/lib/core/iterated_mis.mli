(** The iterated MIS of Section 6: τ+1 sequential MIS runs with mutual
    detector-set (H-edge) filtering; earlier winners sit out later
    iterations.  Lemma 6.1: w.h.p. every process outputs 1 or has a
    G-neighbour that does, and only O(1) winners fall within G' range of
    any node. *)

type outcome = {
  dominator : bool;
  iteration_joined : int option;  (** 1-based iteration of joining *)
  masters : int list;  (** H-neighbours known to have output 1 *)
}

(** [(τ+1) ·] the MIS schedule. *)
val schedule_rounds : Params.t -> n:int -> tau:int -> int

val body : ?on_decide:(int -> unit) -> Params.t -> tau:int -> Radio.ctx -> outcome

val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  tau:int ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
