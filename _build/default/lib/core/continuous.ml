(* The continuous CCDS of Section 8.

   With a dynamic link detector, the one-shot CCDS algorithm is simply
   rerun every δ_CCDS rounds; processes hold their previous outputs until
   the very end of each rerun and then switch atomically.  Theorem 8.1: if
   the detector stabilises by round r, the structure solves the CCDS
   problem from round r + 2·δ_CCDS on.

   The driver below realises exactly that semantics as a sequence of
   engine runs, each seeing the dynamic detector shifted by the rounds
   already consumed; iteration k's outputs are the structure in force
   during iteration k+1. *)

module R = Radio
module Detector = Rn_detect.Detector

type iteration = {
  index : int;
  start_round : int; (* first global round of this rerun *)
  end_round : int; (* last global round of this rerun *)
  outputs : int option array; (* CCDS outputs installed at [end_round] *)
  timed_out : bool;
}

type run_result = {
  iterations : iteration list;
  period : int; (* δ_CCDS: fixed length of one rerun *)
}

(* The structure in force at a global round: outputs of the last rerun
   that finished strictly before it, if any. *)
let structure_at result round =
  List.fold_left
    (fun acc it -> if it.end_round < round then Some it else acc)
    None result.iterations

let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ~detector ~iterations dual =
  Params.validate params;
  if iterations < 1 then invalid_arg "Continuous.run: iterations < 1";
  let offset = ref 0 in
  let period = ref 0 in
  let revd = ref [] in
  for k = 1 to iterations do
    let start_round = !offset + 1 in
    let shifted =
      Detector.dynamic ~at:(fun r -> Detector.at detector (!offset + r)) ()
    in
    let res =
      Ccds.run ~params ~adversary ~seed:(seed + (1000 * k)) ?b_bits
        ~detector:shifted dual
    in
    offset := !offset + res.R.rounds;
    if !period = 0 then period := res.R.rounds;
    revd :=
      {
        index = k;
        start_round;
        end_round = !offset;
        outputs = res.R.outputs;
        timed_out = res.R.timed_out;
      }
      :: !revd
  done;
  { iterations = List.rev !revd; period = !period }
