(* The message vocabulary of all algorithms in the paper, with bit-size
   accounting.

   The model bounds message size by b bits; an id costs ⌈log₂ n⌉ bits and a
   constructor tag a constant.  [size_bits] implements that accounting so
   the engine can enforce b, which is what makes the Δ·log²n/b term of
   Theorem 5.3 measurable: small b forces the banned-list transfer of the
   CCDS algorithm into many chunks.

   The optional [lds] labels on competition messages carry the sender's
   link detector set, used by the Section 6 algorithms to restrict
   communication to H-neighbours (mutual detector membership). *)

type entry = { pid : int; master : int option }

type t =
  | Contender of { src : int; lds : int list option }
  | Mis_announce of { src : int; lds : int list option }
  (* CCDS (Section 5) *)
  | Banned_chunk of { src : int; ids : int list }
  | Nominations of { src : int; noms : (int * int) list } (* (dest MIS id, nominee) *)
  | Stop_order of { src : int }
  | Selected of { src : int; relay : int; target : int }
  | Explore_req of { src : int; target : int; origin : int }
  | Reply_chunk of { src : int; about : int; ids : int list }
  | Forward_chunk of { src : int; dest : int; about : int; ids : int list }
  (* Exploration CCDS (Section 6 / naive baseline) *)
  | Poll of { src : int; who : int }
  | Announce of { src : int; master : int option; lds : int list option }
  | Gossip of { src : int; entries : entry list; lds : int list option }
  | Path_select of { src : int; picks : (int * int option) list }
  | Relay_select of { src : int; xs : int list }

let tag_bits = 5

let id_bits ~n = Rn_util.Ilog.log2_up n

(* One optional id costs one presence bit plus the id. *)
let opt_id_bits ~n = function None -> 1 | Some _ -> 1 + id_bits ~n

let list_ids_bits ~n k = id_bits ~n * k

let lds_bits ~n = function
  | None -> 1
  | Some l -> 1 + id_bits ~n (* length *) + list_ids_bits ~n (List.length l)

let size_bits ~n t =
  let id = id_bits ~n in
  match t with
  | Contender { src = _; lds } | Mis_announce { src = _; lds } -> tag_bits + id + lds_bits ~n lds
  | Banned_chunk { src = _; ids } -> tag_bits + id + list_ids_bits ~n (List.length ids)
  | Nominations { src = _; noms } -> tag_bits + id + (2 * id * List.length noms)
  | Stop_order _ -> tag_bits + id
  | Selected _ -> tag_bits + (3 * id)
  | Explore_req _ -> tag_bits + (3 * id)
  | Reply_chunk { src = _; about = _; ids } ->
    tag_bits + (2 * id) + list_ids_bits ~n (List.length ids)
  | Forward_chunk { src = _; dest = _; about = _; ids } ->
    tag_bits + (3 * id) + list_ids_bits ~n (List.length ids)
  | Poll _ -> tag_bits + (2 * id)
  | Announce { src = _; master; lds } -> tag_bits + id + opt_id_bits ~n master + lds_bits ~n lds
  | Gossip { src = _; entries; lds } ->
    tag_bits + id
    + List.fold_left (fun acc e -> acc + id + opt_id_bits ~n e.master) 0 entries
    + lds_bits ~n lds
  | Path_select { src = _; picks } ->
    tag_bits + id
    + List.fold_left (fun acc (_, x) -> acc + id + opt_id_bits ~n x) 0 picks
  | Relay_select { src = _; xs } -> tag_bits + id + list_ids_bits ~n (List.length xs)

let src = function
  | Contender { src; _ }
  | Mis_announce { src; _ }
  | Banned_chunk { src; _ }
  | Nominations { src; _ }
  | Stop_order { src }
  | Selected { src; _ }
  | Explore_req { src; _ }
  | Reply_chunk { src; _ }
  | Forward_chunk { src; _ }
  | Poll { src; _ }
  | Announce { src; _ }
  | Gossip { src; _ }
  | Path_select { src; _ }
  | Relay_select { src; _ } -> src

let pp ppf t =
  match t with
  | Contender { src; _ } -> Fmt.pf ppf "contender(%d)" src
  | Mis_announce { src; _ } -> Fmt.pf ppf "mis(%d)" src
  | Banned_chunk { src; ids } -> Fmt.pf ppf "banned(%d,#%d)" src (List.length ids)
  | Nominations { src; noms } -> Fmt.pf ppf "noms(%d,#%d)" src (List.length noms)
  | Stop_order { src } -> Fmt.pf ppf "stop(%d)" src
  | Selected { src; relay; target } -> Fmt.pf ppf "selected(%d,%d,%d)" src relay target
  | Explore_req { src; target; origin } -> Fmt.pf ppf "explore(%d,%d,%d)" src target origin
  | Reply_chunk { src; about; ids } -> Fmt.pf ppf "reply(%d,about=%d,#%d)" src about (List.length ids)
  | Forward_chunk { src; dest; about; ids } ->
    Fmt.pf ppf "forward(%d,to=%d,about=%d,#%d)" src dest about (List.length ids)
  | Poll { src; who } -> Fmt.pf ppf "poll(%d,%d)" src who
  | Announce { src; master; _ } ->
    Fmt.pf ppf "announce(%d,master=%a)" src Fmt.(option ~none:(any "-") int) master
  | Gossip { src; entries; _ } -> Fmt.pf ppf "gossip(%d,#%d)" src (List.length entries)
  | Path_select { src; picks } -> Fmt.pf ppf "paths(%d,#%d)" src (List.length picks)
  | Relay_select { src; xs } -> Fmt.pf ppf "relays(%d,#%d)" src (List.length xs)
