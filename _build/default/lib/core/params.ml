(* Tunable constants behind the paper's Θ(·) phase lengths.

   The paper picks constants "sufficiently large" for union bounds over
   polynomially many events; running with such constants at experiment
   scale would be needlessly slow.  These defaults are tuned (see
   test/test_params.ml and EXPERIMENTS.md) so that all verifier checks pass
   across the test matrix while keeping runs fast.  Every length keeps the
   paper's asymptotic form — only the leading constant is configurable. *)

type t = {
  c_phase : int;
      (* competition/announcement phase length: ℓ_P = c_phase·⌈log₂ n⌉ *)
  c_epochs : int; (* number of epochs: ℓ_E = c_epochs·⌈log₂ n⌉ *)
  c_bb : int; (* bounded-broadcast: ℓ_BB(δ) = c_bb·2^min(δ,bb_cap)·⌈log₂ n⌉ *)
  bb_cap : int; (* cap on the exponent 2^δ (paper's δ is a worst-case O(1)) *)
  c_dd : int; (* directed-decay phase length: ℓ_DD = c_dd·⌈log₂ n⌉ *)
  delta_bb : int; (* effective contention constant δ passed to bounded-broadcast *)
  search_epochs : int; (* ℓ_SE: number of CCDS search epochs (paper: I_{3d} = O(1)) *)
  c_listen : int; (* async-start listening phase: c_listen·⌈log₂ n⌉² *)
  max_async_epochs : int; (* safety cap on epoch restarts with async starts *)
}

let default =
  {
    c_phase = 6;
    c_epochs = 4;
    c_bb = 6;
    bb_cap = 3;
    c_dd = 6;
    delta_bb = 2;
    search_epochs = 8;
    c_listen = 2;
    max_async_epochs = 512;
  }

(* Cheaper constants for quick demos; higher failure probability. *)
let fast =
  {
    c_phase = 3;
    c_epochs = 2;
    c_bb = 3;
    bb_cap = 2;
    c_dd = 3;
    delta_bb = 2;
    search_epochs = 5;
    c_listen = 1;
    max_async_epochs = 32;
  }

let validate p =
  if
    p.c_phase < 1 || p.c_epochs < 1 || p.c_bb < 1 || p.bb_cap < 0 || p.c_dd < 1
    || p.delta_bb < 0 || p.search_epochs < 1 || p.c_listen < 1
    || p.max_async_epochs < 1
  then invalid_arg "Params.validate: all constants must be positive"

let pp ppf p =
  Fmt.pf ppf
    "params(c_phase=%d c_epochs=%d c_bb=%d bb_cap=%d c_dd=%d delta_bb=%d \
     search_epochs=%d c_listen=%d)"
    p.c_phase p.c_epochs p.c_bb p.bb_cap p.c_dd p.delta_bb p.search_epochs
    p.c_listen
