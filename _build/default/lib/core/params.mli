(** Tunable constants behind the paper's Θ(·) phase lengths.

    Every schedule length in the library keeps the paper's asymptotic form;
    these constants set the leading factors.  The defaults are tuned so the
    verifiers pass across the test matrix (see DESIGN.md and
    [test/test_params.ml]); the paper's own "sufficiently large" constants
    would be correct but impractically slow. *)

type t = {
  c_phase : int;  (** competition/announcement phase length multiplier *)
  c_epochs : int;  (** epoch count multiplier *)
  c_bb : int;  (** bounded-broadcast length multiplier *)
  bb_cap : int;  (** cap on the exponent in [2^δ] for bounded-broadcast *)
  c_dd : int;  (** directed-decay phase length multiplier *)
  delta_bb : int;  (** contention constant δ for CCDS bounded-broadcasts *)
  search_epochs : int;  (** CCDS search epochs ℓ_SE (paper: [I_{3d}] = O(1)) *)
  c_listen : int;  (** async-start listening phase multiplier *)
  max_async_epochs : int;  (** epoch-restart budget before passive waiting *)
}

(** Tuned defaults used by all experiments. *)
val default : t

(** Cheaper constants for demos; higher failure probability. *)
val fast : t

(** Raises [Invalid_argument] if any constant is out of range. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
