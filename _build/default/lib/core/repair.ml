(* Localized CCDS repair — the open problem Section 8 raises ("design
   efficient repair protocols that can fix breaks in the structure in a
   localized fashion"), made concrete.

   Setting: a CCDS was built, then some reliable links degraded to
   unreliable (the detector re-stabilised on the shrunken G).  Rather than
   rebuilding from scratch, processes repair around the damage:

   1. Orphan detection is purely local: a non-member is an orphan iff none
      of its remembered masters is still in its (new) link detector set.
   2. Orphans run one MIS schedule among themselves (everyone else stays
      silent through it); winners join the structure, losers are covered
      by a new winner — domination is restored.
   3. All members, old and new, run the Section 6 connection machinery
      ([Explore_ccds.connect]): every pair of members within 3 hops gets a
      relay path, splicing new winners into the backbone and re-linking
      old members around dropped edges.

   The win over a full rebuild is *stability*, not asymptotic rounds (both
   schedules are fixed-length): almost all processes keep their previous
   output, so upper layers see a patched backbone instead of a fresh one.
   Experiment A4 quantifies churn and message cost against a rebuild. *)

module R = Radio
module Bitset = Rn_util.Bitset

(* What a process carries over from the previous structure. *)
type plan = {
  was_member : bool; (* output 1 in the previous structure *)
  was_dominator : bool; (* an MIS node of the previous structure *)
  old_masters : int list; (* dominators it was covered by *)
}

type outcome = {
  orphan : bool;
  dominator : bool; (* member responsible for polling in the reconnect *)
  in_ccds : bool;
}

let body ?(on_decide = fun _ -> ()) (params : Params.t) (plan : plan) ctx =
  let still_master m = Bitset.mem (R.detector ctx) m in
  let orphan =
    (not plan.was_member) && not (List.exists still_master plan.old_masters)
  in
  (* Orphan-local MIS: non-orphans listen through the whole schedule. *)
  let mis = Mis.body ~participate:orphan params ctx in
  (* Only previous MIS dominators and fresh winners drive the reconnect
     polls; previous relays keep their membership without polling, which
     keeps the repair's message bill proportional to the damage. *)
  let dominator = plan.was_dominator || mis.in_mis in
  let in_ccds = ref (plan.was_member || dominator) in
  if !in_ccds then on_decide 1;
  let on_join () =
    if not !in_ccds then begin
      in_ccds := true;
      on_decide 1
    end
  in
  let my_master =
    match List.filter still_master plan.old_masters with
    | m :: _ -> Some m
    | [] -> ( match mis.mis_neighbors with m :: _ -> Some m | [] -> None)
  in
  let _targets = Explore_ccds.connect ~on_join params ctx ~dominator ~my_master in
  if not !in_ccds then on_decide 0;
  { orphan; dominator; in_ccds = !in_ccds }

(* Standalone runner.  [old_outputs], [old_dominators] and [old_masters]
   come from the previous build (a [Ccds.run] result: its outputs, the
   per-process [in_mis] flags and [mis_neighbors]). *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ~detector ~old_outputs ~old_dominators ~old_masters dual =
  Params.validate params;
  let n = Rn_graph.Dual.n dual in
  if
    Array.length old_outputs <> n
    || Array.length old_masters <> n
    || Array.length old_dominators <> n
  then invalid_arg "Repair.run: state arity mismatch";
  let cfg = R.config ~adversary ~seed ?b_bits ~detector dual in
  R.run cfg (fun ctx ->
      let v = R.me ctx in
      let plan =
        {
          was_member = old_outputs.(v) = Some 1;
          was_dominator = old_dominators.(v);
          old_masters = old_masters.(v);
        }
      in
      body ~on_decide:(fun o -> R.output ctx o) params plan ctx)

(* Fraction of processes whose output differs between two structures. *)
let churn ~before ~after =
  if Array.length before <> Array.length after then invalid_arg "Repair.churn";
  let changed = ref 0 in
  Array.iteri (fun i o -> if o <> after.(i) then incr changed) before;
  float_of_int !changed /. float_of_int (Array.length before)
