(** The asynchronous-start MIS of Section 9: a Θ(log² n) listening phase
    prefixes each epoch, any received message knocks a process back to a
    fresh epoch, and MIS members announce forever so late wakers decide.
    Solves the MIS problem within O(log³ n) rounds of waking (Theorem
    9.4), in the dual graph model with a 0-complete detector or in the
    classic model ([classic = true]) with no topology information. *)

type outcome = {
  in_mis : bool;
  covered : bool;  (** decided 0 after learning of an MIS neighbour *)
}

(** Accept every received message (the no-topology-information filter). *)
val accept_all : Radio.ctx -> Radio.receive -> Msg.t option

(** The per-process body.  MIS members never return (they announce
    forever); run under [stop = All_decided]. *)
val body : ?classic:bool -> ?on_decide:(int -> unit) -> Params.t -> Radio.ctx -> outcome

(** Standalone runner; [wake] gives per-process wake rounds (≥ 1). *)
val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?classic:bool ->
  ?wake:int array ->
  ?max_rounds:int ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
