(** Plain-text table rendering for experiment output. *)

type t

val create : string list -> t

(** Append a row; raises if the arity differs from the header. *)
val add_row : t -> string list -> unit

(** Render with aligned columns and a separator line. *)
val render : t -> string

val print : t -> unit

val cell_int : int -> string
val cell_float : ?digits:int -> float -> string
val cell_pct : float -> string
