(* Least-squares fitting of simple scaling models.

   The experiment harness validates theorem shapes (e.g. "MIS rounds grow as
   log^3 n", "tau=1 CCDS rounds grow linearly in Delta") by fitting measured
   series to candidate models and comparing goodness of fit. *)

type line = { slope : float; intercept : float; r2 : float }

(* Ordinary least squares y = slope * x + intercept. *)
let linear xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Fit.linear: length mismatch";
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let nf = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs and sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxx := !sxx +. (xs.(i) *. xs.(i));
    sxy := !sxy +. (xs.(i) *. ys.(i))
  done;
  let denom = (nf *. !sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Fit.linear: degenerate xs";
  let slope = ((nf *. !sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ymean = sy /. nf in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let pred = (slope *. xs.(i)) +. intercept in
    ss_res := !ss_res +. ((ys.(i) -. pred) ** 2.0);
    ss_tot := !ss_tot +. ((ys.(i) -. ymean) ** 2.0)
  done;
  let r2 = if !ss_tot < 1e-12 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { slope; intercept; r2 }

(* Fit y = a * x^p by regressing log y on log x; returns (exponent, r2).
   All data must be strictly positive. *)
let power_law xs ys =
  let lx = Array.map log xs and ly = Array.map log ys in
  let l = linear lx ly in
  (l.slope, l.r2)

(* Fit y = a * (log2 x)^p: regress log y on log (log2 x). *)
let polylog_exponent xs ys =
  let lx = Array.map (fun x -> log (log x /. log 2.0)) xs in
  let ly = Array.map log ys in
  let l = linear lx ly in
  (l.slope, l.r2)

let pp_line ppf l = Fmt.pf ppf "slope=%.3f intercept=%.1f r2=%.4f" l.slope l.intercept l.r2
