(* Plain-text table rendering for experiment output.

   Rows are lists of cells; the renderer right-aligns numeric-looking cells
   and left-aligns the rest, matching the style of the tables printed by the
   bench harness. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let numeric_like s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%' || c = 'x') s

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad c s =
    let w = List.nth widths c in
    let gap = String.make (w - String.length s) ' ' in
    if numeric_like s then gap ^ s else s ^ gap
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line t.header :: sep :: List.map line rows) @ [ "" ])

let print t = print_string (render t)

let cell_int i = string_of_int i
let cell_float ?(digits = 1) f = Printf.sprintf "%.*f" digits f
let cell_pct f = Printf.sprintf "%.0f%%" (100.0 *. f)
