lib/util/bitset.ml: Array Fmt Ilog List Sys
