lib/util/sexp.mli:
