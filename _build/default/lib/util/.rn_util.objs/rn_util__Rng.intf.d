lib/util/rng.mli:
