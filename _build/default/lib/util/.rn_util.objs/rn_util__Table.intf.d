lib/util/table.mli:
