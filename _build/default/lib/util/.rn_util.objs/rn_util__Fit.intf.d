lib/util/fit.mli: Format
