lib/util/sexp.ml: List String
