lib/util/ilog.ml:
