lib/util/fit.ml: Array Fmt
