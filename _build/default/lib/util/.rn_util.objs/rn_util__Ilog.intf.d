lib/util/ilog.mli:
