(* A minimal s-expression reader/printer (atoms and lists, ';' line
   comments) used for scenario files.  No external dependencies; parse
   errors carry the offending position. *)

type t = Atom of string | List of t list

exception Parse_error of { pos : int; message : string }

let error pos message = raise (Parse_error { pos; message })

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_atom_char c = (not (is_space c)) && c <> '(' && c <> ')' && c <> ';'

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some c when is_space c ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while peek () <> None && peek () <> Some '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    while match peek () with Some c when is_atom_char c -> true | _ -> false do
      advance ()
    done;
    if !pos = start then error start "expected atom";
    Atom (String.sub s start (!pos - start))
  in
  let rec expr () =
    skip_ws ();
    match peek () with
    | None -> error !pos "unexpected end of input"
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> error !pos "unclosed '('"
        | Some _ ->
          items := expr () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> error !pos "unexpected ')'"
    | Some _ -> atom ()
  in
  let e = expr () in
  skip_ws ();
  if !pos <> n then error !pos "trailing input";
  e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content

let rec to_string = function
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

(* --- accessors for keyword-style config lists --- *)

(* In [(key v1 v2 ...)] entries of an association-style list, find [key]. *)
let assoc key = function
  | List items ->
    List.find_map
      (function
        | List (Atom k :: rest) when k = key -> Some rest
        | _ -> None)
      items
  | Atom _ -> None

let atom = function Atom a -> Some a | List _ -> None

let as_int = function Atom a -> int_of_string_opt a | List _ -> None

let as_float = function
  | Atom a -> float_of_string_opt a
  | List _ -> None
