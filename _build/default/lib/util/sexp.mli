(** Minimal s-expressions (atoms, lists, [;] comments) for scenario
    files. *)

type t = Atom of string | List of t list

exception Parse_error of { pos : int; message : string }

(** Parse exactly one expression (plus surrounding whitespace/comments).
    Raises {!Parse_error}. *)
val parse_string : string -> t

val parse_file : string -> t

val to_string : t -> string

(** [(key a b …)] lookup inside a list of entries: returns [\[a; b; …\]]. *)
val assoc : string -> t -> t list option

val atom : t -> string option
val as_int : t -> int option
val as_float : t -> float option
