(* Integer logarithm helpers used throughout phase-length computations. *)

(* [floor_log2 n] for n >= 1. *)
let floor_log2 n =
  if n < 1 then invalid_arg "Ilog.floor_log2";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

(* [ceil_log2 n] for n >= 1: smallest k with 2^k >= n. *)
let ceil_log2 n =
  if n < 1 then invalid_arg "Ilog.ceil_log2";
  let f = floor_log2 n in
  if 1 lsl f = n then f else f + 1

(* ⌈log₂ n⌉ but at least 1, the "log n" quantity of the paper's phase
   lengths (avoids zero-length phases at tiny n). *)
let log2_up n = max 1 (ceil_log2 n)

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Ilog.pow2";
  1 lsl k

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Round [n] up to the next power of two. *)
let next_pow2 n = if n <= 1 then 1 else pow2 (ceil_log2 n)

(* Overflow-proof: (a + b - 1) would wrap for huge b (e.g. a capacity of
   max_int meaning "unbounded"), silently yielding 0 chunks. *)
let cdiv a b =
  if b <= 0 then invalid_arg "Ilog.cdiv";
  if a <= 0 then 0 else 1 + ((a - 1) / b)
