(** Dependency-free SVG line charts for the experiment figures. *)

type axis = Linear | Log

type t

val create :
  ?x_axis:axis -> ?y_axis:axis -> title:string -> x_label:string -> y_label:string -> unit -> t

(** Append a series (colour assigned automatically); pipeline-friendly. *)
val add_series : label:string -> (float * float) list -> t -> t

(** Render to an SVG document string. *)
val render : t -> string

(** Write the SVG to a file. *)
val write : t -> string -> unit
