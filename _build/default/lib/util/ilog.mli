(** Integer logarithm and power-of-two helpers. *)

(** Largest [k] with [2^k <= n]. Raises for [n < 1]. *)
val floor_log2 : int -> int

(** Smallest [k] with [2^k >= n]. Raises for [n < 1]. *)
val ceil_log2 : int -> int

(** [max 1 (ceil_log2 n)] — the "log n" of the paper's phase lengths. *)
val log2_up : int -> int

(** [pow2 k = 2^k] for [0 <= k <= 61]. *)
val pow2 : int -> int

val is_pow2 : int -> bool

(** Smallest power of two [>= n] ([1] for [n <= 1]). *)
val next_pow2 : int -> int

(** Ceiling division [⌈a/b⌉] for [b > 0]. *)
val cdiv : int -> int -> int
