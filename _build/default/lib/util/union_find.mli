(** Union-find (disjoint sets) with path compression. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** Current number of disjoint components. *)
val components : t -> int
