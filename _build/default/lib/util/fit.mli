(** Least-squares fitting of scaling models for experiment validation. *)

type line = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares [y = slope*x + intercept] with R². *)
val linear : float array -> float array -> line

(** Fit [y = a·x^p] in log-log space; returns [(p, r2)].  Inputs must be
    strictly positive. *)
val power_law : float array -> float array -> float * float

(** Fit [y = a·(log₂ x)^p]; returns [(p, r2)].  Inputs must exceed 1. *)
val polylog_exponent : float array -> float array -> float * float

val pp_line : Format.formatter -> line -> unit
