(** Descriptive statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

(** Arithmetic mean. Raises on empty input. *)
val mean : float array -> float

(** Sample (unbiased) variance; [0.] for fewer than two samples. *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile xs q] with [q] in [\[0,1\]], linear interpolation. *)
val percentile : float array -> float -> float

val median : float array -> float

val summarize : float array -> summary

val of_ints : int array -> float array

(** Half-width of a 95% confidence interval for the mean (normal
    approximation; [0.] for fewer than two samples). *)
val ci95 : float array -> float

val pp_summary : Format.formatter -> summary -> unit
