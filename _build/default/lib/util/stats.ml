(* Descriptive statistics over float samples, used by the experiment
   harness to aggregate repeated runs. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

(* Percentile by linear interpolation between closest ranks. *)
let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median xs = percentile xs 0.5

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
    median = median xs;
    p90 = percentile xs 0.9;
  }

let of_ints xs = Array.map float_of_int xs

(* Half-width of a normal-approximation 95% confidence interval for the
   mean (0 for fewer than two samples). *)
let ci95 xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else 1.96 *. stddev xs /. sqrt (float_of_int n)

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.1f sd=%.1f med=%.1f p90=%.1f min=%.1f max=%.1f"
    s.count s.mean s.stddev s.median s.p90 s.min s.max
