(* Dense fixed-capacity bitsets over [0, capacity).

   Node sets in the simulator (banned lists, detector sets, reach sets) are
   dense integer sets bounded by the network size, for which an unboxed
   int-array bitset is both faster and smaller than tree sets. *)

type t = { words : int array; capacity : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Array.make (Ilog.cdiv (max capacity 1) bits_per_word) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let popcount_word w =
  let rec loop acc w = if w = 0 then acc else loop (acc + (w land 1)) (w lsr 1) in
  loop 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

let union_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.union_into";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) lor src.words.(w)
  done

let inter_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.inter_into";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) land src.words.(w)
  done

let diff a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.diff";
  let r = copy a in
  for w = 0 to Array.length r.words - 1 do
    r.words.(w) <- r.words.(w) land lnot b.words.(w)
  done;
  r

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.subset";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
