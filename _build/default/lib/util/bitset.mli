(** Dense mutable bitsets over [0, capacity). *)

type t

val create : int -> t
val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val copy : t -> t
val cardinal : t -> int
val is_empty : t -> bool

(** Iterate members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val to_list : t -> int list

val of_list : int -> int list -> t

(** In-place union/intersection; capacities must match. *)
val union_into : into:t -> t -> unit

val inter_into : into:t -> t -> unit

(** [diff a b] is a fresh set [a \ b]. *)
val diff : t -> t -> t

val equal : t -> t -> bool

(** [subset a b] iff every member of [a] is in [b]. *)
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
