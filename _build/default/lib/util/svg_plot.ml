(* A small dependency-free SVG line-chart writer.

   The experiment harness uses it to render the scaling figures referenced
   from EXPERIMENTS.md (rounds vs n, rounds vs Δ, hitting-game cost vs β)
   without any plotting dependency.  Linear or logarithmic axes, multiple
   series with markers, a legend, and automatic "nice" tick placement. *)

type axis = Linear | Log

type series = { label : string; points : (float * float) list; color : string }

type t = {
  title : string;
  x_label : string;
  y_label : string;
  x_axis : axis;
  y_axis : axis;
  series : series list;
}

let default_colors =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b"; "#17becf" |]

let create ?(x_axis = Linear) ?(y_axis = Linear) ~title ~x_label ~y_label () =
  { title; x_label; y_label; x_axis; y_axis; series = [] }

let add_series ~label points t =
  let color = default_colors.(List.length t.series mod Array.length default_colors) in
  { t with series = t.series @ [ { label; points; color } ] }

(* Geometry of the canvas. *)
let width = 640.0
let height = 420.0
let margin_l = 70.0
let margin_r = 160.0 (* room for the legend *)
let margin_t = 40.0
let margin_b = 55.0

let plot_w = width -. margin_l -. margin_r
let plot_h = height -. margin_t -. margin_b

let transform axis v = match axis with Linear -> v | Log -> log10 v

let bounds axis values =
  let values = List.map (transform axis) values in
  match values with
  | [] -> (0.0, 1.0)
  | v :: rest ->
    let lo = List.fold_left min v rest and hi = List.fold_left max v rest in
    if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5)
    else begin
      let pad = (hi -. lo) *. 0.05 in
      (lo -. pad, hi +. pad)
    end

(* "Nice" tick positions in transformed space. *)
let ticks axis (lo, hi) =
  match axis with
  | Log ->
    (* decade ticks *)
    let first = int_of_float (ceil lo) and last = int_of_float (floor hi) in
    if last >= first then List.init (last - first + 1) (fun i -> float_of_int (first + i))
    else [ lo; hi ]
  | Linear ->
    let span = hi -. lo in
    let raw = span /. 5.0 in
    let mag = 10.0 ** floor (log10 raw) in
    let step =
      let r = raw /. mag in
      if r < 1.5 then mag else if r < 3.5 then 2.0 *. mag else if r < 7.5 then 5.0 *. mag
      else 10.0 *. mag
    in
    let first = ceil (lo /. step) *. step in
    let rec loop acc v = if v > hi +. 1e-9 then List.rev acc else loop (v :: acc) (v +. step) in
    loop [] first

let tick_label axis v =
  match axis with
  | Log ->
    let x = 10.0 ** v in
    if x >= 1.0 && Float.is_integer x && x < 1e7 then Printf.sprintf "%.0f" x
    else Printf.sprintf "1e%g" v
  | Linear ->
    if Float.is_integer v && abs_float v < 1e7 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

let esc s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render t =
  let all_x = List.concat_map (fun s -> List.map fst s.points) t.series in
  let all_y = List.concat_map (fun s -> List.map snd s.points) t.series in
  let bx = bounds t.x_axis all_x and by = bounds t.y_axis all_y in
  let sx v =
    let lo, hi = bx in
    margin_l +. ((transform t.x_axis v -. lo) /. (hi -. lo) *. plot_w)
  in
  let sy v =
    let lo, hi = by in
    margin_t +. plot_h -. ((transform t.y_axis v -. lo) /. (hi -. lo) *. plot_h)
  in
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\" font-size=\"12\">\n"
    width height width height;
  pf "<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n" width height;
  pf "<text x=\"%.0f\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">%s</text>\n"
    (margin_l +. (plot_w /. 2.0))
    (esc t.title);
  (* frame *)
  pf
    "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" \
     stroke=\"#444\"/>\n"
    margin_l margin_t plot_w plot_h;
  (* ticks and gridlines *)
  let x_ticks = ticks t.x_axis bx and y_ticks = ticks t.y_axis by in
  List.iter
    (fun tv ->
      let x = margin_l +. ((tv -. fst bx) /. (snd bx -. fst bx) *. plot_w) in
      pf
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n" x margin_t
        x (margin_t +. plot_h);
      pf "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>\n" x
        (margin_t +. plot_h +. 18.0)
        (tick_label t.x_axis tv))
    x_ticks;
  List.iter
    (fun tv ->
      let y = margin_t +. plot_h -. ((tv -. fst by) /. (snd by -. fst by) *. plot_h) in
      pf
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n" margin_l y
        (margin_l +. plot_w) y;
      pf "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n" (margin_l -. 6.0)
        (y +. 4.0)
        (tick_label t.y_axis tv))
    y_ticks;
  (* axis labels *)
  pf "<text x=\"%.0f\" y=\"%.0f\" text-anchor=\"middle\">%s</text>\n"
    (margin_l +. (plot_w /. 2.0))
    (height -. 14.0) (esc t.x_label);
  pf
    "<text x=\"16\" y=\"%.0f\" text-anchor=\"middle\" transform=\"rotate(-90 16 %.0f)\">%s</text>\n"
    (margin_t +. (plot_h /. 2.0))
    (margin_t +. (plot_h /. 2.0))
    (esc t.y_label);
  (* series *)
  List.iteri
    (fun i s ->
      let pts =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (sx x) (sy y)) s.points)
      in
      pf "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n" pts
        s.color;
      List.iter
        (fun (x, y) ->
          pf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n" (sx x) (sy y) s.color)
        s.points;
      (* legend entry *)
      let ly = margin_t +. 10.0 +. (float_of_int i *. 18.0) in
      pf "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"2\"/>\n"
        (width -. margin_r +. 10.0)
        ly
        (width -. margin_r +. 34.0)
        ly s.color;
      pf "<text x=\"%.1f\" y=\"%.1f\">%s</text>\n"
        (width -. margin_r +. 40.0)
        (ly +. 4.0) (esc s.label))
    t.series;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc
