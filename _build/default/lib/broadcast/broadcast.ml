(* Single-source multihop broadcast in the dual graph model — the workload
   the paper's introduction motivates the CCDS with ("a routing backbone
   that can be used to efficiently move information through the network").

   Three protocols:

   - [flood]: probabilistic flooding — every informed node relays with a
     fixed probability each round;
   - [backbone]: the same relay rule restricted to a designated relay set
     (e.g. a CCDS) plus the source — coverage still reaches everyone when
     the set is dominating and connected;
   - [round_robin]: the deterministic schedule of Clementi-Monti-Silvestri
     (reference [5] of the paper): node ids take turns, one per round, so a
     sweep of n rounds is collision-free and immune to unreliable links —
     the optimal *fault-tolerant* broadcast the dual graph line of work
     starts from.

   All three run on the engine with bit-accounted messages, so they compose
   with the same adversaries and detectors as the structure algorithms. *)

module Rng = Rn_util.Rng
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

module Token = struct
  type t = { origin : int; hops : int }

  (* origin id + a hop counter *)
  let size_bits ~n { hops = _; _ } = 2 * Rn_util.Ilog.log2_up n

  let pp ppf { origin; hops } = Fmt.pf ppf "token(%d,%d)" origin hops
end

module E = Rn_sim.Engine.Make (Token)

type protocol =
  | Flood of float (* relay probability per round *)
  | Backbone of { relay : int -> bool; p : float }
  | Round_robin
  | Decay of int
    (* Bar-Yehuda–Goldreich–Itai: informed nodes run synchronised "decay"
       phases of the given length k, halving their broadcast probability
       each round within a phase (1, 1/2, 1/4, ...).  With k = Θ(log n),
       every receiver with at least one informed neighbour hears something
       per phase with constant probability — the classic randomized
       broadcast primitive. *)

type result = {
  reached : bool array; (* who holds the token at the end *)
  coverage : int; (* number of informed nodes *)
  first_hear : int option array; (* round of first reception *)
  rounds : int;
  sends : int;
  bits_sent : int;
}

(* Run a broadcast from [source] for [rounds] rounds. *)
let run ?(adversary = Rn_sim.Adversary.silent) ?(seed = 0) ~protocol ~source ~rounds dual =
  let n = Dual.n dual in
  if source < 0 || source >= n then invalid_arg "Broadcast.run: source";
  if rounds < 1 then invalid_arg "Broadcast.run: rounds";
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let cfg =
    E.config ~adversary ~seed ~stop:(Rn_sim.Engine.At_round rounds) ~detector:det dual
  in
  let first_hear = Array.make n None in
  let res =
    E.run cfg (fun ctx ->
        let me = E.me ctx in
        let rng = E.rng ctx in
        let have = ref (me = source) in
        let hops = ref 0 in
        let relay_allowed =
          match protocol with
          | Flood _ -> true
          | Backbone { relay; _ } -> relay me || me = source
          | Round_robin | Decay _ -> true
        in
        for r = 1 to rounds do
          let wants_to_send =
            !have && relay_allowed
            &&
            match protocol with
            | Flood p | Backbone { p; _ } -> Rng.bool rng p
            | Round_robin -> (r - 1) mod n = me
            | Decay k ->
              (* global round-aligned decay phases: probability 2^-(pos) *)
              let pos = (r - 1) mod k in
              Rng.bool rng (1.0 /. float_of_int (1 lsl min pos 30))
          in
          let send =
            if wants_to_send then Some { Token.origin = source; hops = !hops } else None
          in
          match E.sync ctx send with
          | E.Recv { Token.hops = h; _ } ->
            if not !have then begin
              have := true;
              hops := h + 1;
              first_hear.(me) <- Some r
            end
          | E.Own | E.Silence -> ()
        done;
        !have)
  in
  let reached = Array.map (fun r -> r = Some true) res.E.returns in
  reached.(source) <- true;
  {
    reached;
    coverage = Array.fold_left (fun c b -> if b then c + 1 else c) 0 reached;
    first_hear;
    rounds = res.E.rounds;
    sends = res.E.stats.sends;
    bits_sent = res.E.stats.bits_sent;
  }

(* Rounds needed by round-robin to provably cover a connected G: one sweep
   of n rounds per eccentricity level. *)
let round_robin_budget dual ~source =
  let n = Dual.n dual in
  n * Rn_graph.Algo.eccentricity (Dual.g dual) source

let full_coverage r = r.coverage = Array.length r.reached
