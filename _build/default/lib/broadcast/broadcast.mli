(** Single-source multihop broadcast in the dual graph model: probabilistic
    flooding, backbone-restricted flooding (the CCDS use case from the
    paper's introduction), and the deterministic round-robin schedule of
    Clementi-Monti-Silvestri (the paper's reference [5]). *)

type protocol =
  | Flood of float  (** every informed node relays with this probability *)
  | Backbone of { relay : int -> bool; p : float }
      (** only designated relays (plus the source) forward *)
  | Round_robin  (** ids take turns; collision-free and unreliability-proof *)
  | Decay of int
      (** Bar-Yehuda–Goldreich–Itai decay phases of the given length:
          informed nodes halve their broadcast probability each round
          within a phase.  Use [Θ(log n)] for the classic guarantee. *)

type result = {
  reached : bool array;
  coverage : int;
  first_hear : int option array;  (** round of first reception, per node *)
  rounds : int;
  sends : int;
  bits_sent : int;
}

(** Run a broadcast from [source] for exactly [rounds] rounds. *)
val run :
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  protocol:protocol ->
  source:int ->
  rounds:int ->
  Rn_graph.Dual.t ->
  result

(** [n · eccentricity(source)]: a budget with which round-robin provably
    covers a connected [G] whatever the adversary does. *)
val round_robin_budget : Rn_graph.Dual.t -> source:int -> int

val full_coverage : result -> bool
