lib/broadcast/broadcast.mli: Rn_graph Rn_sim
