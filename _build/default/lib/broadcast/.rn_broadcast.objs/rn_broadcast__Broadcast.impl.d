lib/broadcast/broadcast.ml: Array Fmt Rn_detect Rn_graph Rn_sim Rn_util
