(* Unit and property tests for rn_util. *)

module Rng = Rn_util.Rng
module Ilog = Rn_util.Ilog
module Stats = Rn_util.Stats
module Fit = Rn_util.Fit
module Bitset = Rn_util.Bitset
module Union_find = Rn_util.Union_find
module Table = Rn_util.Table

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 8)

let test_rng_derive_stable () =
  let t = Rng.create 7 in
  let a = Rng.derive t 3 and b = Rng.derive t 3 in
  (* derive does not advance the parent and is label-deterministic *)
  check Alcotest.int "same derived stream" (Rng.int a 9999) (Rng.int b 9999)

let test_rng_derive_labels_differ () =
  let t = Rng.create 7 in
  let a = Rng.derive t 1 and b = Rng.derive t 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "labels give distinct streams" true (!same < 8)

let test_rng_bool_degenerate () =
  let t = Rng.create 3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never true" false (Rng.bool t 0.0)
  done

let test_rng_int_error () =
  let t = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let x = Rng.int t bound in
      x >= 0 && x < bound)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let t = Rng.create seed in
      let x = Rng.float t in
      x >= 0.0 && x < 1.0)

let prop_rng_permutation =
  QCheck.Test.make ~name:"Rng.permutation is a permutation" ~count:200
    QCheck.(pair small_int (int_range 1 64))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_rng_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle_in_place (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_geometric_support () =
  let t = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "geometric >= 1" true (Rng.geometric t 0.5 >= 1)
  done

(* ---------------- Ilog ---------------- *)

let test_ilog_known () =
  check Alcotest.int "floor_log2 1" 0 (Ilog.floor_log2 1);
  check Alcotest.int "floor_log2 2" 1 (Ilog.floor_log2 2);
  check Alcotest.int "floor_log2 3" 1 (Ilog.floor_log2 3);
  check Alcotest.int "ceil_log2 1" 0 (Ilog.ceil_log2 1);
  check Alcotest.int "ceil_log2 3" 2 (Ilog.ceil_log2 3);
  check Alcotest.int "log2_up 1" 1 (Ilog.log2_up 1);
  check Alcotest.int "log2_up 1024" 10 (Ilog.log2_up 1024);
  check Alcotest.int "next_pow2 5" 8 (Ilog.next_pow2 5);
  check Alcotest.int "next_pow2 8" 8 (Ilog.next_pow2 8)

let prop_ilog_floor =
  QCheck.Test.make ~name:"floor_log2 brackets n" ~count:500 (QCheck.int_range 1 1_000_000)
    (fun n ->
      let k = Ilog.floor_log2 n in
      Ilog.pow2 k <= n && n < Ilog.pow2 (k + 1))

let prop_ilog_ceil =
  QCheck.Test.make ~name:"ceil_log2 brackets n" ~count:500 (QCheck.int_range 2 1_000_000)
    (fun n ->
      let k = Ilog.ceil_log2 n in
      Ilog.pow2 k >= n && Ilog.pow2 (k - 1) < n)

let prop_ilog_cdiv =
  QCheck.Test.make ~name:"cdiv is ceiling division" ~count:500
    QCheck.(pair (int_range 0 10000) (int_range 1 100))
    (fun (a, b) -> Ilog.cdiv a b = int_of_float (ceil (float_of_int a /. float_of_int b)))

let test_ilog_errors () =
  Alcotest.check_raises "floor_log2 0" (Invalid_argument "Ilog.floor_log2") (fun () ->
      ignore (Ilog.floor_log2 0));
  Alcotest.check_raises "cdiv by 0" (Invalid_argument "Ilog.cdiv") (fun () ->
      ignore (Ilog.cdiv 3 0))

let prop_is_pow2 =
  QCheck.Test.make ~name:"is_pow2 matches definition" ~count:500 (QCheck.int_range 1 65536)
    (fun n -> Ilog.is_pow2 n = (Ilog.pow2 (Ilog.floor_log2 n) = n))

(* ---------------- Stats ---------------- *)

let test_stats_known () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean xs);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.variance xs);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median xs);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile xs 1.0)

let test_stats_single () =
  let xs = [| 5.0 |] in
  check (Alcotest.float 1e-9) "mean single" 5.0 (Stats.mean xs);
  check (Alcotest.float 1e-9) "variance single" 0.0 (Stats.variance xs);
  check (Alcotest.float 1e-9) "median single" 5.0 (Stats.median xs)

let test_stats_empty () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let prop_stats_summary_order =
  QCheck.Test.make ~name:"summary min<=median<=p90<=max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
    (fun l ->
      let s = Stats.summarize (Array.of_list l) in
      s.min <= s.median && s.median <= s.p90 +. 1e-9 && s.p90 <= s.max +. 1e-9)

let test_stats_ci95 () =
  Alcotest.check (Alcotest.float 1e-9) "single sample" 0.0 (Stats.ci95 [| 3.0 |]);
  (* constant data: zero width *)
  Alcotest.check (Alcotest.float 1e-9) "constant" 0.0 (Stats.ci95 [| 2.0; 2.0; 2.0 |]);
  (* known case: sd=1, n=4 -> 1.96/2 *)
  let xs = [| -1.0; 1.0; -1.0; 1.0 |] in
  Alcotest.check (Alcotest.float 1e-6) "known width" (1.96 *. Stats.stddev xs /. 2.0)
    (Stats.ci95 xs)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
    (fun l ->
      let s = Stats.summarize (Array.of_list l) in
      s.min -. 1e-9 <= s.mean && s.mean <= s.max +. 1e-9)

(* ---------------- Fit ---------------- *)

let test_fit_linear_exact () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let l = Fit.linear xs ys in
  check (Alcotest.float 1e-9) "slope" 2.0 l.slope;
  check (Alcotest.float 1e-9) "intercept" 1.0 l.intercept;
  check (Alcotest.float 1e-9) "r2" 1.0 l.r2

let test_fit_power () =
  let xs = [| 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 3.0 *. (x ** 2.0)) xs in
  let p, r2 = Fit.power_law xs ys in
  check (Alcotest.float 1e-6) "exponent" 2.0 p;
  check (Alcotest.float 1e-6) "r2" 1.0 r2

let test_fit_polylog () =
  let xs = [| 4.0; 16.0; 256.0; 1024.0 |] in
  let ys = Array.map (fun x -> 5.0 *. ((log x /. log 2.0) ** 3.0)) xs in
  let p, r2 = Fit.polylog_exponent xs ys in
  check (Alcotest.float 1e-6) "exponent" 3.0 p;
  check (Alcotest.float 1e-6) "r2" 1.0 r2

let test_fit_errors () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fit.linear: length mismatch") (fun () ->
      ignore (Fit.linear [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "degenerate" (Invalid_argument "Fit.linear: degenerate xs")
    (fun () -> ignore (Fit.linear [| 2.0; 2.0 |] [| 1.0; 2.0 |]))

(* ---------------- Bitset ---------------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  check Alcotest.int "cardinal" 4 (Bitset.cardinal s);
  check (Alcotest.list Alcotest.int) "to_list sorted" [ 0; 63; 64; 99 ] (Bitset.to_list s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s 10)

let test_bitset_copy_independent () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  let c = Bitset.copy s in
  Bitset.add c 5;
  Alcotest.(check bool) "original unchanged" false (Bitset.mem s 5);
  Alcotest.(check bool) "copy has both" true (Bitset.mem c 3 && Bitset.mem c 5)

module IS = Set.Make (Int)

let set_of_list l = List.fold_left (fun s i -> IS.add i s) IS.empty l

let small_members = QCheck.(list_of_size (Gen.int_range 0 40) (int_range 0 99))

let prop_bitset_union =
  QCheck.Test.make ~name:"union matches Set.union" ~count:300
    QCheck.(pair small_members small_members)
    (fun (a, b) ->
      let sa = Bitset.of_list 100 a and sb = Bitset.of_list 100 b in
      Bitset.union_into ~into:sa sb;
      Bitset.to_list sa = IS.elements (IS.union (set_of_list a) (set_of_list b)))

let prop_bitset_inter =
  QCheck.Test.make ~name:"inter matches Set.inter" ~count:300
    QCheck.(pair small_members small_members)
    (fun (a, b) ->
      let sa = Bitset.of_list 100 a and sb = Bitset.of_list 100 b in
      Bitset.inter_into ~into:sa sb;
      Bitset.to_list sa = IS.elements (IS.inter (set_of_list a) (set_of_list b)))

let prop_bitset_diff =
  QCheck.Test.make ~name:"diff matches Set.diff" ~count:300
    QCheck.(pair small_members small_members)
    (fun (a, b) ->
      let sa = Bitset.of_list 100 a and sb = Bitset.of_list 100 b in
      Bitset.to_list (Bitset.diff sa sb)
      = IS.elements (IS.diff (set_of_list a) (set_of_list b)))

let prop_bitset_subset =
  QCheck.Test.make ~name:"subset matches Set.subset" ~count:300
    QCheck.(pair small_members small_members)
    (fun (a, b) ->
      let sa = Bitset.of_list 100 a and sb = Bitset.of_list 100 b in
      Bitset.subset sa sb = IS.subset (set_of_list a) (set_of_list b))

let prop_bitset_cardinal =
  QCheck.Test.make ~name:"cardinal matches Set.cardinal" ~count:300 small_members
    (fun a ->
      Bitset.cardinal (Bitset.of_list 100 a) = IS.cardinal (set_of_list a))

(* ---------------- Union_find ---------------- *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  check Alcotest.int "5 components" 5 (Union_find.components uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  check Alcotest.int "3 components" 3 (Union_find.components uf);
  Alcotest.(check bool) "0~1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "0!~2" false (Union_find.same uf 0 2);
  Union_find.union uf 1 2;
  Alcotest.(check bool) "0~3 transitively" true (Union_find.same uf 0 3);
  Union_find.union uf 0 3;
  check Alcotest.int "idempotent union" 2 (Union_find.components uf)

let prop_uf_components =
  QCheck.Test.make ~name:"components = n - spanning unions" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      (* cross-check against a naive fixpoint partition *)
      let repr = Array.init 20 (fun i -> i) in
      let rec naive_find i = if repr.(i) = i then i else naive_find repr.(i) in
      List.iter
        (fun (a, b) ->
          let ra = naive_find a and rb = naive_find b in
          if ra <> rb then repr.(ra) <- rb)
        pairs;
      let naive_components =
        List.length (List.sort_uniq compare (List.init 20 naive_find))
      in
      Union_find.components uf = naive_components)

(* ---------------- Table ---------------- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  Alcotest.(check bool) "contains separator" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.trim l <> "" && String.for_all (fun c -> c = '-' || c = ' ') l))

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let () =
  Alcotest.run "rn_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "derive stable" `Quick test_rng_derive_stable;
          Alcotest.test_case "derive labels differ" `Quick test_rng_derive_labels_differ;
          Alcotest.test_case "bool degenerate" `Quick test_rng_bool_degenerate;
          Alcotest.test_case "int error" `Quick test_rng_int_error;
          Alcotest.test_case "geometric support" `Quick test_rng_geometric_support;
          qtest prop_rng_int_bounds;
          qtest prop_rng_float_unit;
          qtest prop_rng_permutation;
          qtest prop_rng_shuffle_multiset;
        ] );
      ( "ilog",
        [
          Alcotest.test_case "known values" `Quick test_ilog_known;
          Alcotest.test_case "errors" `Quick test_ilog_errors;
          qtest prop_ilog_floor;
          qtest prop_ilog_ceil;
          qtest prop_ilog_cdiv;
          qtest prop_is_pow2;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
          Alcotest.test_case "ci95" `Quick test_stats_ci95;
          qtest prop_stats_summary_order;
          qtest prop_stats_mean_bounds;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_fit_linear_exact;
          Alcotest.test_case "power law" `Quick test_fit_power;
          Alcotest.test_case "polylog" `Quick test_fit_polylog;
          Alcotest.test_case "errors" `Quick test_fit_errors;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic ops" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          qtest prop_bitset_union;
          qtest prop_bitset_inter;
          qtest prop_bitset_diff;
          qtest prop_bitset_subset;
          qtest prop_bitset_cardinal;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          qtest prop_uf_components;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
    ]
