(* Tests for the Section 6 algorithms: iterated MIS and the exploration
   CCDS (also the tau = 0 naive baseline). *)

module R = Core.Radio
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module Rng = Rn_util.Rng

let detector_for ?(seed = 0) ~tau dual =
  if tau = 0 then Detector.perfect (Dual.g dual)
  else Detector.tau_complete ~rng:(Rng.create (seed + 300)) ~tau dual

(* --- iterated MIS (Lemma 6.1) --- *)

let run_iterated ?(seed = 1) ~tau dual =
  let det = detector_for ~seed ~tau dual in
  let res =
    Core.Iterated_mis.run ~seed
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~tau ~detector:(Detector.static det) dual
  in
  (res, det)

let test_iterated_properties () =
  List.iter
    (fun tau ->
      let dual = Rn_harness.Harness.geometric ~seed:tau ~n:48 ~degree:9 () in
      let res, _det = run_iterated ~tau dual in
      let g = Dual.g dual in
      let dominator = Array.map (fun o -> o = Some 1) res.R.outputs in
      (* Lemma 6.1(a): every process is a dominator or has a G-neighbour
         dominator *)
      Array.iteri
        (fun v is_dom ->
          if not is_dom then
            Alcotest.(check bool)
              (Printf.sprintf "tau=%d: process %d dominated in G" tau v)
              true
              (Array.exists (fun u -> dominator.(u)) (Graph.neighbors g v)))
        dominator;
      (* Lemma 6.1(b): constant winners within G' range — bound by a
         generous constant times (tau+1) *)
      let worst = ref 0 in
      Graph.fold_nodes
        (fun v () ->
          let c =
            Array.fold_left
              (fun c u -> if dominator.(u) then c + 1 else c)
              0
              (Graph.neighbors (Dual.g' dual) v)
          in
          if c > !worst then worst := c)
        (Dual.g' dual) ();
      Alcotest.(check bool)
        (Printf.sprintf "tau=%d: density bounded (got %d)" tau !worst)
        true
        (!worst <= 12 * (tau + 1)))
    [ 0; 1; 2 ]

let test_iterated_schedule () =
  let dual = Dual.classic (Gen.ring 16) in
  let res, _ = run_iterated ~tau:2 dual in
  Alcotest.check Alcotest.int "3x MIS schedule"
    (Core.Iterated_mis.schedule_rounds Core.Params.default ~n:16 ~tau:2)
    res.R.rounds

let test_iterated_joined_once () =
  let dual = Rn_harness.Harness.geometric ~seed:5 ~n:40 ~degree:8 () in
  let res, _ = run_iterated ~tau:2 dual in
  Array.iteri
    (fun v outcome ->
      match outcome with
      | Some (o : Core.Iterated_mis.outcome) ->
        Alcotest.(check bool) "dominator iff output 1" true
          (o.dominator = (res.R.outputs.(v) = Some 1));
        (match o.iteration_joined with
        | Some it -> Alcotest.(check bool) "iteration in range" true (it >= 1 && it <= 3)
        | None -> Alcotest.(check bool) "non-dominator" false o.dominator)
      | None -> Alcotest.fail "no return")
    res.R.returns

let test_iterated_negative_tau () =
  let dual = Dual.classic (Gen.path 4) in
  let det = Detector.perfect (Dual.g dual) in
  Alcotest.(check bool) "negative tau rejected" true
    (try
       ignore (Core.Iterated_mis.run ~tau:(-1) ~detector:(Detector.static det) dual);
       false
     with Invalid_argument _ -> true)

(* --- exploration CCDS --- *)

let run_explore ?(adversary = Rn_sim.Adversary.bernoulli 0.5) ?(seed = 1) ?b_bits ~tau dual =
  let det = detector_for ~seed ~tau dual in
  let res =
    Core.Explore_ccds.run ~seed ~adversary ?b_bits ~tau ~detector:(Detector.static det) dual
  in
  (res, det)

let check_solves ?seed ?b_bits ~tau name dual =
  let res, det = run_explore ?seed ?b_bits ~tau dual in
  let rep = Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) res.R.outputs in
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " rep.violations)
    true (Verify.Ccds_check.ok rep);
  (res, det)

let test_explore_taus () =
  List.iter
    (fun tau ->
      let dual = Rn_harness.Harness.geometric ~seed:(20 + tau) ~n:48 ~degree:9 () in
      ignore (check_solves ~tau (Printf.sprintf "tau=%d" tau) dual))
    [ 0; 1; 2; 3 ]

let test_explore_topologies () =
  List.iter
    (fun (name, g) -> ignore (check_solves ~tau:0 name (Dual.classic g)))
    [ ("path", Gen.path 12); ("ring", Gen.ring 12); ("star", Gen.star 9); ("clique", Gen.clique 8) ]

let test_explore_small_b () =
  (* tau = 0 (no detector labels) with a bound big enough for gossip *)
  let dual = Rn_harness.Harness.geometric ~seed:30 ~n:40 ~degree:8 () in
  let id = Rn_util.Ilog.log2_up 40 in
  ignore (check_solves ~tau:0 ~b_bits:(10 * id) "explore small b" dual)

let test_explore_b_too_small () =
  let dual = Dual.classic (Gen.path 6) in
  Alcotest.(check bool) "gossip-impossible b rejected" true
    (try
       ignore (run_explore ~tau:0 ~b_bits:8 dual);
       false
     with Invalid_argument _ -> true)

let test_explore_targets_are_dominators () =
  let dual = Rn_harness.Harness.geometric ~seed:31 ~n:48 ~degree:9 () in
  let res, _ = run_explore ~tau:1 dual in
  let dominator =
    Array.map
      (function Some (o : Core.Explore_ccds.outcome) -> o.dominator | None -> false)
      res.R.returns
  in
  Array.iter
    (function
      | Some (o : Core.Explore_ccds.outcome) when o.dominator ->
        List.iter
          (fun (t, _) ->
            Alcotest.(check bool) (Printf.sprintf "target %d is dominator" t) true
              dominator.(t))
          o.targets
      | _ -> ())
    res.R.returns

let test_explore_dominators_in_ccds () =
  let dual = Rn_harness.Harness.geometric ~seed:32 ~n:40 ~degree:8 () in
  let res, _ = run_explore ~tau:1 dual in
  Array.iteri
    (fun v o ->
      match o with
      | Some (o : Core.Explore_ccds.outcome) ->
        if o.dominator then
          Alcotest.(check bool) "dominator joined" true (res.R.outputs.(v) = Some 1);
        Alcotest.(check bool) "in_ccds iff output 1" true
          (o.in_ccds = (res.R.outputs.(v) = Some 1))
      | None -> Alcotest.fail "no return")
    res.R.returns

let test_explore_grows_with_tau () =
  let dual = Rn_harness.Harness.geometric ~seed:33 ~n:40 ~degree:8 () in
  let r0, _ = run_explore ~tau:0 dual in
  let r2, _ = run_explore ~tau:2 dual in
  Alcotest.(check bool) "more iterations, more rounds" true (r2.R.rounds > r0.R.rounds)

let test_bridge_solved () =
  (* the Lemma 7.2 setting end-to-end *)
  let r = Rn_games.Reduction.bridge_run ~beta:6 ~seed:2 () in
  Alcotest.(check bool)
    ("bridge: " ^ String.concat "; " r.report.violations)
    true r.solved;
  (* both bridge endpoints must be in the CCDS (they are the H-cut) *)
  Alcotest.(check bool) "rounds recorded" true (r.rounds > 0)

let () =
  Alcotest.run "explore"
    [
      ( "iterated-mis",
        [
          Alcotest.test_case "Lemma 6.1 properties" `Slow test_iterated_properties;
          Alcotest.test_case "schedule length" `Quick test_iterated_schedule;
          Alcotest.test_case "join bookkeeping" `Quick test_iterated_joined_once;
          Alcotest.test_case "negative tau" `Quick test_iterated_negative_tau;
        ] );
      ( "explore-ccds",
        [
          Alcotest.test_case "tau sweep" `Slow test_explore_taus;
          Alcotest.test_case "topologies" `Slow test_explore_topologies;
          Alcotest.test_case "small b" `Slow test_explore_small_b;
          Alcotest.test_case "b too small rejected" `Quick test_explore_b_too_small;
          Alcotest.test_case "targets are dominators" `Quick
            test_explore_targets_are_dominators;
          Alcotest.test_case "dominators join" `Quick test_explore_dominators_in_ccds;
          Alcotest.test_case "rounds grow with tau" `Quick test_explore_grows_with_tau;
          Alcotest.test_case "bridge solved" `Quick test_bridge_solved;
        ] );
    ]
