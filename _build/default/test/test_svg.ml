(* Tests for the SVG chart writer and the figure registry. *)

module Svg = Rn_util.Svg_plot

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
  nl = 0 || loop 0

let count ~needle hay =
  let nl = String.length needle in
  let rec loop i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then loop (i + 1) (acc + 1)
    else loop (i + 1) acc
  in
  loop 0 0

let sample () =
  Svg.create ~title:"t" ~x_label:"x" ~y_label:"y" ()
  |> Svg.add_series ~label:"a" [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ]
  |> Svg.add_series ~label:"b" [ (1.0, 2.0); (2.0, 3.0) ]

let test_render_structure () =
  let s = Svg.render (sample ()) in
  Alcotest.(check bool) "opens svg" true (contains ~needle:"<svg" s);
  Alcotest.(check bool) "closes svg" true (contains ~needle:"</svg>" s);
  Alcotest.check Alcotest.int "one polyline per series" 2 (count ~needle:"<polyline" s);
  Alcotest.check Alcotest.int "one marker per point" 5 (count ~needle:"<circle" s);
  Alcotest.(check bool) "legend labels present" true
    (contains ~needle:">a</text>" s && contains ~needle:">b</text>" s);
  Alcotest.(check bool) "title present" true (contains ~needle:">t</text>" s)

let test_escaping () =
  let s =
    Svg.render
      (Svg.create ~title:"a<b & c" ~x_label:"x" ~y_label:"y" ()
      |> Svg.add_series ~label:"s" [ (1.0, 1.0); (2.0, 2.0) ])
  in
  Alcotest.(check bool) "escaped" true (contains ~needle:"a&lt;b &amp; c" s);
  Alcotest.(check bool) "no raw title" false (contains ~needle:"a<b" s)

let test_log_axes () =
  let s =
    Svg.render
      (Svg.create ~x_axis:Svg.Log ~y_axis:Svg.Log ~title:"log" ~x_label:"x" ~y_label:"y" ()
      |> Svg.add_series ~label:"s" [ (10.0, 100.0); (100.0, 1000.0); (1000.0, 10000.0) ])
  in
  (* decade ticks appear as labels *)
  Alcotest.(check bool) "decade tick" true (contains ~needle:">100</text>" s)

let test_points_in_canvas () =
  (* markers never land at negative coordinates for positive data *)
  let s = Svg.render (sample ()) in
  Alcotest.(check bool) "no negative coordinates" true
    (not (contains ~needle:"cx=\"-" s || contains ~needle:"cy=\"-" s))

let test_write_file () =
  let path = Filename.temp_file "rn_svg" ".svg" in
  Svg.write (sample ()) path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 500)

let test_figure_registry () =
  Alcotest.(check (list Alcotest.string))
    "figure names" [ "F1"; "F2"; "F3"; "F4" ]
    (List.map fst Rn_harness.Figures.all)

let () =
  Alcotest.run "svg"
    [
      ( "svg",
        [
          Alcotest.test_case "render structure" `Quick test_render_structure;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "log axes" `Quick test_log_axes;
          Alcotest.test_case "points in canvas" `Quick test_points_in_canvas;
          Alcotest.test_case "write file" `Quick test_write_file;
          Alcotest.test_case "figure registry" `Quick test_figure_registry;
        ] );
    ]
