(* Tests for the declarative scenario runner. *)

module Scenario = Rn_harness.Scenario
module Sexp = Rn_util.Sexp

let parse s = Scenario.parse (Sexp.parse_string s)

let test_defaults () =
  let t = parse "(scenario (network (ring (n 8))) (algorithm mis))" in
  Alcotest.check Alcotest.int "default tau" 0 t.tau;
  Alcotest.check Alcotest.int "default seed" 1 t.seed;
  Alcotest.(check bool) "default b" true (t.b_bits = None)

let test_fields () =
  let t =
    parse
      "(scenario (network (geometric (n 64) (degree 9))) (detector (tau 2)) \
       (adversary spiteful) (algorithm ccds-explore) (b 128) (seed 9))"
  in
  Alcotest.check Alcotest.int "tau" 2 t.tau;
  Alcotest.check Alcotest.int "seed" 9 t.seed;
  Alcotest.(check (option Alcotest.int)) "b" (Some 128) t.b_bits

let expect_error s =
  Alcotest.(check bool)
    ("rejects " ^ s)
    true
    (try
       ignore (parse s);
       false
     with Scenario.Scenario_error _ -> true)

let test_parse_errors () =
  expect_error "(not-a-scenario)";
  expect_error "(scenario (algorithm mis))" (* missing network *);
  expect_error "(scenario (network (ring (n 8))))" (* missing algorithm *);
  expect_error "(scenario (network (ring (n 8))) (algorithm nope))";
  expect_error
    "(scenario (network (ring (n 8))) (algorithm mis) (adversary (bernoulli two)))"

let test_unknown_network_rejected_at_run () =
  (* network shapes are validated when the network is built *)
  let t = parse "(scenario (network (warp (n 8))) (algorithm mis))" in
  Alcotest.(check bool) "run rejects" true
    (try
       ignore (Scenario.run t);
       false
     with Scenario.Scenario_error _ -> true)

let test_banned_requires_tau0 () =
  (* parsing succeeds; the mismatch is rejected at run time *)
  let t =
    parse "(scenario (network (ring (n 8))) (detector (tau 1)) (algorithm ccds-banned))"
  in
  Alcotest.(check bool) "run rejects" true
    (try
       ignore (Scenario.run t);
       false
     with Scenario.Scenario_error _ -> true)

let run_str s = Scenario.run (parse s)

let test_run_mis () =
  let r = run_str "(scenario (network (ring (n 16))) (algorithm mis) (seed 2))" in
  Alcotest.(check bool) "valid" true r.valid;
  Alcotest.(check bool) "rounds recorded" true (r.rounds > 0)

let test_run_every_network_shape () =
  List.iter
    (fun net ->
      let r =
        run_str (Printf.sprintf "(scenario (network %s) (algorithm ccds-tdma) (seed 2))" net)
      in
      Alcotest.(check bool) (net ^ " valid") true r.valid)
    [
      "(ring (n 12))";
      "(path (n 12))";
      "(clique (n 8))";
      "(star (n 6))";
      "(grid (rows 4) (cols 5))";
      "(geometric (n 40) (degree 8))";
      "(bridge (beta 6))";
    ]

let test_run_algorithms () =
  List.iter
    (fun algo ->
      let r =
        run_str
          (Printf.sprintf
             "(scenario (network (geometric (n 40) (degree 8))) (algorithm %s) (seed 3))"
             algo)
      in
      Alcotest.(check bool) (algo ^ " valid") true r.valid)
    [ "mis"; "ccds-banned"; "ccds-explore"; "ccds-tdma"; "async-mis" ]

let test_repo_scenarios () =
  (* the checked-in scenario files must run and validate *)
  List.iter
    (fun f ->
      let path = Filename.concat "../../../scenarios" f in
      if Sys.file_exists path then begin
        let r = Scenario.run_file path in
        Alcotest.(check bool) (f ^ " valid") true r.valid
      end)
    [ "quickstart.sexp"; "bridge_tdma.sexp" ]

let test_render () =
  let r = run_str "(scenario (network (ring (n 12))) (algorithm mis) (seed 2))" in
  let s = Scenario.render r in
  Alcotest.(check bool) "mentions rounds" true
    (String.length s > 0 && String.sub s 0 7 = "rounds=")

let () =
  Alcotest.run "scenario"
    [
      ( "scenario",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "fields" `Quick test_fields;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "unknown network" `Quick test_unknown_network_rejected_at_run;
          Alcotest.test_case "banned requires tau0" `Quick test_banned_requires_tau0;
          Alcotest.test_case "run mis" `Quick test_run_mis;
          Alcotest.test_case "network shapes" `Slow test_run_every_network_shape;
          Alcotest.test_case "algorithms" `Slow test_run_algorithms;
          Alcotest.test_case "repo scenarios" `Slow test_repo_scenarios;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
