(* Tests of the problem-definition checkers themselves, on handcrafted
   structures where ground truth is known. *)

module Graph = Rn_graph.Graph
module Gen = Rn_graph.Gen
module Verify = Rn_verify.Verify
module Point = Rn_geom.Point

let path5 = Gen.path 5

(* --- MIS checker --- *)

let test_mis_valid () =
  (* 0-1-2-3-4: {0, 2, 4} is a valid MIS *)
  let outputs = [| Some 1; Some 0; Some 1; Some 0; Some 1 |] in
  let r = Verify.Mis_check.check ~g:path5 ~h:path5 outputs in
  Alcotest.(check bool) "valid" true (Verify.Mis_check.ok r);
  Alcotest.(check bool) "no violations" true (r.violations = [])

let test_mis_termination_violation () =
  let outputs = [| Some 1; Some 0; None; Some 0; Some 1 |] in
  let r = Verify.Mis_check.check ~g:path5 ~h:path5 outputs in
  Alcotest.(check bool) "termination fails" false r.termination;
  Alcotest.(check bool) "not ok" false (Verify.Mis_check.ok r)

let test_mis_independence_violation () =
  let outputs = [| Some 1; Some 1; Some 0; Some 0; Some 1 |] in
  let r = Verify.Mis_check.check ~g:path5 ~h:path5 outputs in
  Alcotest.(check bool) "independence fails" false r.independence;
  Alcotest.(check bool) "others hold" true (r.termination && r.maximality)

let test_mis_maximality_violation () =
  (* node 2 outputs 0 but no neighbour is in the MIS *)
  let outputs = [| Some 1; Some 0; Some 0; Some 0; Some 1 |] in
  let r = Verify.Mis_check.check ~g:path5 ~h:path5 outputs in
  Alcotest.(check bool) "maximality fails" false r.maximality;
  Alcotest.(check bool) "independence holds" true r.independence

let test_mis_maximality_in_h () =
  (* maximality is judged in H, independence in G: node 2 output 0 and is
     H-adjacent (but not G-adjacent) to MIS node 0 *)
  let g = Graph.of_edges 3 [ (1, 2) ] in
  let h = Graph.of_edges 3 [ (0, 2); (1, 2) ] in
  let outputs = [| Some 1; Some 1; Some 0 |] in
  let r = Verify.Mis_check.check ~g ~h outputs in
  Alcotest.(check bool) "valid with H-maximality" true (Verify.Mis_check.ok r)

let test_mis_arity () =
  Alcotest.check_raises "arity" (Invalid_argument "Mis_check.check: arity") (fun () ->
      ignore (Verify.Mis_check.check ~g:path5 ~h:path5 [| Some 1 |]))

(* --- CCDS checker --- *)

let test_ccds_valid () =
  (* path CCDS: internal nodes 1,2,3 *)
  let outputs = [| Some 0; Some 1; Some 1; Some 1; Some 0 |] in
  let r = Verify.Ccds_check.check ~h:path5 ~g':path5 outputs in
  Alcotest.(check bool) "valid" true (Verify.Ccds_check.ok r);
  Alcotest.check Alcotest.int "size" 3 r.size;
  Alcotest.check Alcotest.int "max neighbours" 2 r.max_neighbors_g'

let test_ccds_disconnected () =
  let outputs = [| Some 1; Some 0; Some 0; Some 0; Some 1 |] in
  let r = Verify.Ccds_check.check ~h:path5 ~g':path5 outputs in
  Alcotest.(check bool) "connectivity fails" false r.connectivity

let test_ccds_domination_violation () =
  (* {1} dominates 0 and 2, but not 3, 4 *)
  let outputs = [| Some 0; Some 1; Some 0; Some 0; Some 0 |] in
  let r = Verify.Ccds_check.check ~h:path5 ~g':path5 outputs in
  Alcotest.(check bool) "domination fails" false r.domination;
  Alcotest.(check bool) "connectivity holds (singleton)" true r.connectivity

let test_ccds_bound () =
  let star = Gen.star 6 in
  (* all leaves in the set: centre has 5 CCDS neighbours *)
  let outputs = [| Some 0; Some 1; Some 1; Some 1; Some 1; Some 1 |] in
  let r = Verify.Ccds_check.check ~h:star ~g':star outputs in
  Alcotest.check Alcotest.int "max neighbours" 5 r.max_neighbors_g';
  Alcotest.(check bool) "bound 4 fails" false (Verify.Ccds_check.ok ~bound:4 r);
  (* a star's leaves are pairwise non-adjacent: connectivity fails too *)
  Alcotest.(check bool) "leaves disconnected" false r.connectivity

let test_ccds_connectivity_in_h_only () =
  (* the member set is connected in H but not in G': H decides *)
  let h = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let g' = Graph.of_edges 3 [ (0, 2) ] in
  let outputs = [| Some 1; Some 1; Some 1 |] in
  let r = Verify.Ccds_check.check ~h ~g' outputs in
  Alcotest.(check bool) "connectivity judged in H" true r.connectivity

let test_ccds_all_members_trivially_dominates () =
  let outputs = Array.make 5 (Some 1) in
  let r = Verify.Ccds_check.check ~h:path5 ~g':path5 outputs in
  Alcotest.(check bool) "valid" true (Verify.Ccds_check.ok r)

(* --- exact minimum CDS --- *)

let test_exact_known () =
  (* path P5: the 3 internal nodes are the unique minimum CDS *)
  Alcotest.check Alcotest.int "path 5" 3 (Verify.Exact.min_cds (Gen.path 5));
  Alcotest.check Alcotest.int "path 2" 1 (Verify.Exact.min_cds (Gen.path 2));
  Alcotest.check Alcotest.int "clique" 1 (Verify.Exact.min_cds (Gen.clique 6));
  Alcotest.check Alcotest.int "star" 1 (Verify.Exact.min_cds (Gen.star 7));
  (* C6: two antipodal-ish … a cycle of n needs n-2 *)
  Alcotest.check Alcotest.int "ring 6" 4 (Verify.Exact.min_cds (Gen.ring 6));
  Alcotest.check Alcotest.int "singleton" 1 (Verify.Exact.min_cds (Gen.path 1))

let test_exact_too_large () =
  Alcotest.(check bool) "rejects big n" true
    (try
       ignore (Verify.Exact.min_cds (Gen.path 30));
       false
     with Invalid_argument _ -> true)

let prop_exact_lower_bounds_ccds =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"algorithmic CCDS >= exact optimum" ~count:4
       (QCheck.int_range 1 50) (fun seed ->
         let dual = Rn_harness.Harness.geometric ~seed ~n:14 ~degree:5 () in
         let det = Rn_detect.Detector.perfect (Rn_graph.Dual.g dual) in
         let res =
           Core.Ccds.run ~seed
             ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
             ~detector:(Rn_detect.Detector.static det) dual
         in
         let size =
           Array.fold_left
             (fun c o -> if o = Some 1 then c + 1 else c)
             0 res.Core.Radio.outputs
         in
         size >= Verify.Exact.min_cds (Rn_graph.Dual.g dual)))

(* --- density --- *)

let test_density () =
  let pos = [| Point.make 0.0 0.0; Point.make 0.5 0.0; Point.make 5.0 0.0 |] in
  Alcotest.check Alcotest.int "two members within 1" 2
    (Verify.Density.max_within ~pos ~members:[ 0; 1 ] 1.0);
  Alcotest.check Alcotest.int "far member excluded" 2
    (Verify.Density.max_within ~pos ~members:[ 0; 1; 2 ] 1.0);
  Alcotest.check Alcotest.int "all within 10" 3
    (Verify.Density.max_within ~pos ~members:[ 0; 1; 2 ] 10.0)

let () =
  Alcotest.run "verify"
    [
      ( "mis-check",
        [
          Alcotest.test_case "valid" `Quick test_mis_valid;
          Alcotest.test_case "termination violation" `Quick test_mis_termination_violation;
          Alcotest.test_case "independence violation" `Quick test_mis_independence_violation;
          Alcotest.test_case "maximality violation" `Quick test_mis_maximality_violation;
          Alcotest.test_case "maximality in H" `Quick test_mis_maximality_in_h;
          Alcotest.test_case "arity" `Quick test_mis_arity;
        ] );
      ( "ccds-check",
        [
          Alcotest.test_case "valid" `Quick test_ccds_valid;
          Alcotest.test_case "disconnected" `Quick test_ccds_disconnected;
          Alcotest.test_case "domination violation" `Quick test_ccds_domination_violation;
          Alcotest.test_case "constant bound" `Quick test_ccds_bound;
          Alcotest.test_case "connectivity in H" `Quick test_ccds_connectivity_in_h_only;
          Alcotest.test_case "all members" `Quick test_ccds_all_members_trivially_dominates;
        ] );
      ( "exact",
        [
          Alcotest.test_case "known optima" `Quick test_exact_known;
          Alcotest.test_case "size guard" `Quick test_exact_too_large;
          prop_exact_lower_bounds_ccds;
        ] );
      ("density", [ Alcotest.test_case "max within" `Quick test_density ]);
    ]
