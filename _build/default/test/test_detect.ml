(* Tests for link detectors: τ-completeness, the H graph, dynamics. *)

module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let small_dual seed =
  let rng = Rng.create seed in
  Gen.geometric ~rng (Gen.default_spec ~n:40 ~side:4.0 ~gray_p:0.8 ())

let test_perfect () =
  let g = Gen.ring 6 in
  let det = Detector.perfect g in
  Alcotest.check Alcotest.int "n" 6 (Detector.n det);
  for u = 0 to 5 do
    Alcotest.(check (list Alcotest.int))
      (Printf.sprintf "set %d" u)
      (Array.to_list (Graph.neighbors g u))
      (Bitset.to_list (Detector.set det u))
  done;
  Alcotest.(check bool) "is 0-complete" true (Detector.is_tau_complete det ~tau:0 g)

let test_h_equals_g_when_perfect () =
  let dual = small_dual 1 in
  let det = Detector.perfect (Dual.g dual) in
  let h = Detector.h_graph det in
  Alcotest.(check bool) "H = G" true (Graph.edges h = Graph.edges (Dual.g dual))

let prop_tau_complete_valid =
  QCheck.Test.make ~name:"tau_complete is tau-complete" ~count:50
    QCheck.(pair (int_range 0 100) (int_range 0 3))
    (fun (seed, tau) ->
      let dual = small_dual seed in
      let det = Detector.tau_complete ~rng:(Rng.create seed) ~tau dual in
      Detector.is_tau_complete det ~tau (Dual.g dual))

let prop_tau_mistakes_are_gray =
  QCheck.Test.make ~name:"Gray_only mistakes are gray neighbours" ~count:30
    (QCheck.int_range 0 100) (fun seed ->
      let dual = small_dual seed in
      let det = Detector.tau_complete ~rng:(Rng.create seed) ~tau:2 ~pool:Gray_only dual in
      let g = Dual.g dual and g' = Dual.g' dual in
      let ok = ref true in
      for u = 0 to Dual.n dual - 1 do
        Bitset.iter
          (fun v ->
            if not (Graph.mem_edge g u v) then
              if not (Graph.mem_edge g' u v) then ok := false)
          (Detector.set det u)
      done;
      !ok)

let prop_g_subset_h =
  QCheck.Test.make ~name:"G subset of H for tau-complete" ~count:30
    QCheck.(pair (int_range 0 100) (int_range 0 3))
    (fun (seed, tau) ->
      let dual = small_dual seed in
      let det = Detector.tau_complete ~rng:(Rng.create seed) ~tau dual in
      Graph.is_subgraph (Dual.g dual) (Detector.h_graph det))

let test_planted () =
  let dual = Gen.bridge_cliques ~beta:3 () in
  (* plant: node 1 believes node 4 (non-neighbour) is reliable *)
  let det =
    Detector.tau_complete ~rng:(Rng.create 0) ~tau:1
      ~pool:(Detector.Planted (fun u -> if u = 1 then [ 4 ] else []))
      dual
  in
  Alcotest.(check bool) "planted present" true (Detector.mem det 1 4);
  Alcotest.(check bool) "planted one-sided" false (Detector.mem det 4 1);
  (* asymmetric mistakes create no H edge *)
  let h = Detector.h_graph det in
  Alcotest.(check bool) "no H edge from one-sided mistake" false (Graph.mem_edge h 1 4);
  Alcotest.(check bool) "is 1-complete" true (Detector.is_tau_complete det ~tau:1 (Dual.g dual))

let test_planted_invalid () =
  let dual = Gen.bridge_cliques ~beta:3 () in
  Alcotest.(check bool) "planted neighbour rejected" true
    (try
       ignore
         (Detector.tau_complete ~rng:(Rng.create 0) ~tau:1
            ~pool:(Detector.Planted (fun u -> if u = 0 then [ 1 ] else []))
            dual);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too many mistakes rejected" true
    (try
       ignore
         (Detector.tau_complete ~rng:(Rng.create 0) ~tau:1
            ~pool:(Detector.Planted (fun u -> if u = 1 then [ 4; 5 ] else []))
            dual);
       false
     with Invalid_argument _ -> true)

let test_mutual_h_edges () =
  let dual = Gen.bridge_cliques ~beta:3 () in
  (* symmetric planted mistakes DO create an H edge *)
  let det =
    Detector.tau_complete ~rng:(Rng.create 0) ~tau:1
      ~pool:
        (Detector.Planted (fun u -> if u = 1 then [ 4 ] else if u = 4 then [ 1 ] else []))
      dual
  in
  Alcotest.(check bool) "mutual mistake = H edge" true
    (Graph.mem_edge (Detector.h_graph det) 1 4)

let test_is_tau_complete_detects_missing () =
  let g = Gen.ring 6 in
  let sets = Array.init 6 (fun _ -> Bitset.create 6) in
  (* node 0's set misses its neighbours entirely *)
  Alcotest.(check bool) "missing neighbours detected" false
    (Detector.is_tau_complete (Detector.of_sets sets) ~tau:0 g)

let test_is_tau_complete_detects_self () =
  let g = Gen.ring 6 in
  let det = Detector.perfect g in
  Bitset.add (Detector.set det 0) 0;
  Alcotest.(check bool) "self-membership rejected" false
    (Detector.is_tau_complete det ~tau:1 g)

let test_dynamic_static () =
  let g = Gen.ring 6 in
  let det = Detector.perfect g in
  let dyn = Detector.static det in
  Alcotest.(check bool) "same at all rounds" true
    (Detector.at dyn 1 == det && Detector.at dyn 9999 == det);
  Alcotest.(check (option Alcotest.int)) "stabilises at 0" (Some 0) (Detector.stabilizes_at dyn)

let test_dynamic_switching () =
  let g = Gen.ring 6 in
  let a = Detector.perfect g in
  let b = Detector.perfect g in
  let dyn = Detector.switching ~before:a ~after:b ~round:10 in
  Alcotest.(check bool) "before" true (Detector.at dyn 9 == a);
  Alcotest.(check bool) "at switch" true (Detector.at dyn 10 == b);
  Alcotest.(check bool) "after" true (Detector.at dyn 11 == b);
  Alcotest.(check (option Alcotest.int)) "stabilises" (Some 10) (Detector.stabilizes_at dyn)

let test_tau_zero_no_mistakes () =
  let dual = small_dual 3 in
  let det = Detector.tau_complete ~rng:(Rng.create 3) ~tau:0 dual in
  Alcotest.(check bool) "tau=0 equals perfect" true
    (Graph.edges (Detector.h_graph det) = Graph.edges (Dual.g dual))

let test_any_non_neighbor_pool () =
  let dual = small_dual 4 in
  let det =
    Detector.tau_complete ~rng:(Rng.create 4) ~tau:2 ~pool:Detector.Any_non_neighbor dual
  in
  Alcotest.(check bool) "still tau-complete" true
    (Detector.is_tau_complete det ~tau:2 (Dual.g dual))

let () =
  Alcotest.run "rn_detect"
    [
      ( "static",
        [
          Alcotest.test_case "perfect" `Quick test_perfect;
          Alcotest.test_case "H = G when perfect" `Quick test_h_equals_g_when_perfect;
          Alcotest.test_case "planted mistakes" `Quick test_planted;
          Alcotest.test_case "planted validation" `Quick test_planted_invalid;
          Alcotest.test_case "mutual mistakes make H edges" `Quick test_mutual_h_edges;
          Alcotest.test_case "missing neighbours detected" `Quick
            test_is_tau_complete_detects_missing;
          Alcotest.test_case "self-membership rejected" `Quick
            test_is_tau_complete_detects_self;
          Alcotest.test_case "tau=0 equals perfect" `Quick test_tau_zero_no_mistakes;
          Alcotest.test_case "any-non-neighbour pool" `Quick test_any_non_neighbor_pool;
          qtest prop_tau_complete_valid;
          qtest prop_tau_mistakes_are_gray;
          qtest prop_g_subset_h;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "static wrapper" `Quick test_dynamic_static;
          Alcotest.test_case "switching" `Quick test_dynamic_switching;
        ] );
    ]
