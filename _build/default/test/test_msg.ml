(* Tests of the message vocabulary's bit-size accounting. *)

module Msg = Core.Msg

let qtest = QCheck_alcotest.to_alcotest

let n = 256
let id = Msg.id_bits ~n

let test_id_bits () =
  Alcotest.check Alcotest.int "id bits 256" 8 (Msg.id_bits ~n:256);
  Alcotest.check Alcotest.int "id bits 2" 1 (Msg.id_bits ~n:2);
  Alcotest.check Alcotest.int "id bits 1000" 10 (Msg.id_bits ~n:1000)

let test_fixed_sizes () =
  Alcotest.check Alcotest.int "stop order" (Msg.tag_bits + id)
    (Msg.size_bits ~n (Msg.Stop_order { src = 1 }));
  Alcotest.check Alcotest.int "selected" (Msg.tag_bits + (3 * id))
    (Msg.size_bits ~n (Msg.Selected { src = 1; relay = 2; target = 3 }));
  Alcotest.check Alcotest.int "explore req" (Msg.tag_bits + (3 * id))
    (Msg.size_bits ~n (Msg.Explore_req { src = 1; target = 2; origin = 3 }));
  Alcotest.check Alcotest.int "poll" (Msg.tag_bits + (2 * id))
    (Msg.size_bits ~n (Msg.Poll { src = 1; who = 2 }))

let test_unlabelled_contender () =
  Alcotest.check Alcotest.int "contender" (Msg.tag_bits + id + 1)
    (Msg.size_bits ~n (Msg.Contender { src = 1; lds = None }))

let prop_banned_chunk_linear =
  QCheck.Test.make ~name:"banned chunk grows by id_bits per id" ~count:100
    (QCheck.int_range 0 50) (fun k ->
      let ids = List.init k (fun i -> i) in
      Msg.size_bits ~n (Msg.Banned_chunk { src = 0; ids })
      = Msg.tag_bits + id + (k * id))

let prop_lds_label_cost =
  QCheck.Test.make ~name:"detector label costs length+ids" ~count:100
    (QCheck.int_range 0 50) (fun k ->
      let lds = Some (List.init k (fun i -> i)) in
      let with_label = Msg.size_bits ~n (Msg.Mis_announce { src = 0; lds }) in
      let without = Msg.size_bits ~n (Msg.Mis_announce { src = 0; lds = None }) in
      with_label - without = id + (k * id))

let prop_nominations_linear =
  QCheck.Test.make ~name:"nominations cost 2 ids each" ~count:100 (QCheck.int_range 0 20)
    (fun k ->
      let noms = List.init k (fun i -> (i, i + 1)) in
      Msg.size_bits ~n (Msg.Nominations { src = 0; noms })
      = Msg.tag_bits + id + (2 * id * k))

let prop_gossip_entries =
  QCheck.Test.make ~name:"gossip entries cost id + master option" ~count:100
    (QCheck.int_range 0 20) (fun k ->
      let entries = List.init k (fun i -> { Msg.pid = i; master = (if i mod 2 = 0 then Some i else None) }) in
      let base = Msg.tag_bits + id + 1 in
      let expect =
        List.fold_left
          (fun acc (e : Msg.entry) ->
            acc + id + (match e.master with Some _ -> 1 + id | None -> 1))
          base entries
      in
      Msg.size_bits ~n (Msg.Gossip { src = 0; entries; lds = None }) = expect)

let test_src_extraction () =
  List.iter
    (fun (m, expect) -> Alcotest.check Alcotest.int "src" expect (Msg.src m))
    [
      (Msg.Contender { src = 7; lds = None }, 7);
      (Msg.Mis_announce { src = 8; lds = Some [ 1 ] }, 8);
      (Msg.Banned_chunk { src = 9; ids = [ 1; 2 ] }, 9);
      (Msg.Nominations { src = 10; noms = [] }, 10);
      (Msg.Stop_order { src = 11 }, 11);
      (Msg.Selected { src = 12; relay = 0; target = 0 }, 12);
      (Msg.Explore_req { src = 13; target = 0; origin = 0 }, 13);
      (Msg.Reply_chunk { src = 14; about = 0; ids = [] }, 14);
      (Msg.Forward_chunk { src = 15; dest = 0; about = 0; ids = [] }, 15);
      (Msg.Poll { src = 16; who = 0 }, 16);
      (Msg.Announce { src = 17; master = None; lds = None }, 17);
      (Msg.Gossip { src = 18; entries = []; lds = None }, 18);
      (Msg.Path_select { src = 19; picks = [] }, 19);
      (Msg.Relay_select { src = 20; xs = [] }, 20);
    ]

let test_chunk_helper () =
  Alcotest.(check (list (list Alcotest.int)))
    "chunks of 2"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Core.Radio.chunks ~cap:2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list Alcotest.int))) "empty" [] (Core.Radio.chunks ~cap:3 [])

let () =
  Alcotest.run "msg"
    [
      ( "sizes",
        [
          Alcotest.test_case "id bits" `Quick test_id_bits;
          Alcotest.test_case "fixed sizes" `Quick test_fixed_sizes;
          Alcotest.test_case "unlabelled contender" `Quick test_unlabelled_contender;
          Alcotest.test_case "src extraction" `Quick test_src_extraction;
          Alcotest.test_case "chunk helper" `Quick test_chunk_helper;
          qtest prop_banned_chunk_linear;
          qtest prop_lds_label_cost;
          qtest prop_nominations_linear;
          qtest prop_gossip_entries;
        ] );
    ]
