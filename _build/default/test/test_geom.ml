(* Tests for rn_geom: points and the Section 4 disk overlay. *)

module Point = Rn_geom.Point
module Overlay = Rn_geom.Overlay
module Rng = Rn_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let point_gen =
  QCheck.Gen.map2 (fun x y -> Point.make x y)
    (QCheck.Gen.float_range (-50.0) 50.0)
    (QCheck.Gen.float_range (-50.0) 50.0)

let arb_point = QCheck.make ~print:(Format.asprintf "%a" Point.pp) point_gen

let test_point_basic () =
  let a = Point.make 0.0 0.0 and b = Point.make 3.0 4.0 in
  Alcotest.check (Alcotest.float 1e-9) "dist 3-4-5" 5.0 (Point.dist a b);
  Alcotest.check (Alcotest.float 1e-9) "dist2" 25.0 (Point.dist2 a b);
  Alcotest.(check bool) "add" true (Point.equal (Point.add a b) b);
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub b b) Point.origin);
  Alcotest.(check bool) "scale" true
    (Point.equal (Point.scale 2.0 b) (Point.make 6.0 8.0))

let prop_dist_symmetric =
  QCheck.Test.make ~name:"dist symmetric" ~count:300 (QCheck.pair arb_point arb_point)
    (fun (a, b) -> abs_float (Point.dist a b -. Point.dist b a) < 1e-9)

let prop_dist_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:300
    (QCheck.triple arb_point arb_point arb_point)
    (fun (a, b, c) -> Point.dist a c <= Point.dist a b +. Point.dist b c +. 1e-9)

let prop_dist2_consistent =
  QCheck.Test.make ~name:"dist2 = dist^2" ~count:300 (QCheck.pair arb_point arb_point)
    (fun (a, b) -> abs_float (Point.dist2 a b -. (Point.dist a b ** 2.0)) < 1e-6)

let test_point_random_in_box () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    let p = Point.random rng ~w:3.0 ~h:2.0 in
    Alcotest.(check bool) "in box" true (p.x >= 0.0 && p.x < 3.0 && p.y >= 0.0 && p.y < 2.0)
  done

(* --- Overlay --- *)

let prop_overlay_covers =
  QCheck.Test.make ~name:"every point covered by its disk" ~count:500 arb_point
    Overlay.covered

let prop_overlay_nearest =
  QCheck.Test.make ~name:"disk_of_point is the nearest lattice centre" ~count:300
    arb_point (fun p ->
      let i, j = Overlay.disk_of_point p in
      let d0 = Point.dist (Overlay.center i j) p in
      (* brute force over a window of lattice points around the answer *)
      let ok = ref true in
      for di = -3 to 3 do
        for dj = -3 to 3 do
          if Point.dist (Overlay.center (i + di) (j + dj)) p < d0 -. 1e-9 then ok := false
        done
      done;
      !ok)

let test_overlay_pitch () =
  (* nearest-neighbour spacing is sqrt(3) * radius: disks cover exactly *)
  Alcotest.check (Alcotest.float 1e-9) "pitch" (sqrt 3.0 *. 0.5) Overlay.pitch;
  let d = Point.dist (Overlay.center 0 0) (Overlay.center 1 0) in
  Alcotest.check (Alcotest.float 1e-9) "basis v1 length" Overlay.pitch d;
  let d2 = Point.dist (Overlay.center 0 0) (Overlay.center 0 1) in
  Alcotest.check (Alcotest.float 1e-9) "basis v2 length" Overlay.pitch d2

let test_i_r_monotone () =
  let last = ref 0 in
  List.iter
    (fun r ->
      let v = Overlay.i_r r in
      Alcotest.(check bool) (Printf.sprintf "I_%.1f >= previous" r) true (v >= !last);
      last := v)
    [ 0.0; 0.5; 1.0; 2.0; 3.0; 4.0 ]

let test_i_r_small () =
  (* A degenerate disk (r = 0) still intersects every overlay disk whose
     centre is within 1/2: at least 1, at most a few. *)
  let v = Overlay.i_r 0.0 in
  Alcotest.(check bool) "I_0 in [1,4]" true (v >= 1 && v <= 4)

let test_i_r_growth () =
  (* I_r grows like the area ratio: approx (r + 1/2)^2 / (pitch Voronoi
     cell area).  Check the r=2 value against a generous envelope. *)
  let v = Overlay.i_r 2.0 in
  Alcotest.(check bool) "I_2 plausible" true (v >= 20 && v <= 50)

let test_i_r_cached () =
  Alcotest.check Alcotest.int "cache consistent" (Overlay.i_r 1.5) (Overlay.i_r_cached 1.5);
  Alcotest.check Alcotest.int "cache stable" (Overlay.i_r_cached 1.5) (Overlay.i_r_cached 1.5)

let test_i_r_negative () =
  Alcotest.check_raises "negative radius" (Invalid_argument "Overlay.i_r: negative radius")
    (fun () -> ignore (Overlay.i_r (-1.0)))

let test_centers_within () =
  let p = Overlay.center 0 0 in
  let cs = Overlay.centers_within p 0.1 in
  Alcotest.(check bool) "own centre included" true (List.mem (0, 0) cs);
  Alcotest.check Alcotest.int "only own centre at tiny range" 1 (List.length cs);
  let cs2 = Overlay.centers_within p (Overlay.pitch +. 0.01) in
  (* 6 neighbours on the triangular lattice plus itself *)
  Alcotest.check Alcotest.int "hex neighbourhood" 7 (List.length cs2)

let prop_centers_within_sound =
  QCheck.Test.make ~name:"centers_within returns centres in range" ~count:200
    (QCheck.pair arb_point (QCheck.float_range 0.2 5.0))
    (fun (p, range) ->
      List.for_all
        (fun (i, j) -> Point.dist (Overlay.center i j) p <= range +. 1e-9)
        (Overlay.centers_within p range))

let () =
  Alcotest.run "rn_geom"
    [
      ( "point",
        [
          Alcotest.test_case "basic" `Quick test_point_basic;
          Alcotest.test_case "random in box" `Quick test_point_random_in_box;
          qtest prop_dist_symmetric;
          qtest prop_dist_triangle;
          qtest prop_dist2_consistent;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "pitch and basis" `Quick test_overlay_pitch;
          Alcotest.test_case "I_r monotone" `Quick test_i_r_monotone;
          Alcotest.test_case "I_0 small" `Quick test_i_r_small;
          Alcotest.test_case "I_2 plausible" `Quick test_i_r_growth;
          Alcotest.test_case "I_r cached" `Quick test_i_r_cached;
          Alcotest.test_case "negative radius" `Quick test_i_r_negative;
          Alcotest.test_case "centers_within" `Quick test_centers_within;
          qtest prop_overlay_covers;
          qtest prop_overlay_nearest;
          qtest prop_centers_within_sound;
        ] );
    ]
