(* Tests for the asynchronous-start MIS (Section 9). *)

module R = Core.Radio
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify

let check_async ?(classic = true) ?wake ?(seed = 1) name dual =
  let det = Detector.perfect (Dual.g dual) in
  let adversary =
    if classic then Rn_sim.Adversary.silent else Rn_sim.Adversary.bernoulli 0.5
  in
  let res =
    Core.Async_mis.run ~seed ~classic ?wake ~adversary ~detector:(Detector.static det) dual
  in
  let rep = Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs in
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " rep.violations)
    true (Verify.Mis_check.ok rep);
  res

let test_sync_start_classic () =
  ignore (check_async "ring sync" (Dual.classic (Gen.ring 16)));
  ignore (check_async "clique sync" (Dual.classic (Gen.clique 10)))

let test_staggered_wakes () =
  let n = 48 in
  let dual = Rn_harness.Harness.geometric ~seed:2 ~n ~degree:9 () in
  let classic = Dual.classic (Dual.g dual) in
  let wake = Array.init n (fun i -> 1 + ((i * 97) mod 600)) in
  let res = check_async ~wake "staggered" classic in
  (* everyone decides after waking *)
  Array.iteri
    (fun v d ->
      match d with
      | Some r -> Alcotest.(check bool) "decided after wake" true (r >= wake.(v))
      | None -> Alcotest.fail "undecided")
    res.R.decided_round

let test_dual_with_detector () =
  let dual = Rn_harness.Harness.geometric ~seed:3 ~n:40 ~degree:8 () in
  ignore (check_async ~classic:false "dual graph" dual)

let test_very_late_waker () =
  (* a process waking long after the MIS stabilised must still decide,
     via the perpetual announcements *)
  let n = 10 in
  let dual = Dual.classic (Gen.clique n) in
  let wake = Array.init n (fun i -> if i = n - 1 then 20_000 else 1) in
  let res = check_async ~wake "late waker" dual in
  match res.R.decided_round.(n - 1) with
  | Some r -> Alcotest.(check bool) "late waker decided after waking" true (r >= 20_000)
  | None -> Alcotest.fail "late waker undecided"

let test_covered_flag () =
  let dual = Dual.classic (Gen.star 8) in
  let res = check_async "star" dual in
  Array.iteri
    (fun v outcome ->
      match outcome with
      | Some (o : Core.Async_mis.outcome) ->
        Alcotest.(check bool) "in_mis iff output 1" true
          (o.in_mis = (res.R.outputs.(v) = Some 1));
        if o.covered then
          Alcotest.(check bool) "covered means output 0" true (res.R.outputs.(v) = Some 0)
      | None ->
        (* MIS members never return (they announce forever): their output
           must be 1 *)
        Alcotest.(check bool) "non-returning processes are announcers" true
          (res.R.outputs.(v) = Some 1))
    res.R.returns

let test_two_nodes () =
  let res = check_async "pair" (Dual.classic (Gen.path 2)) in
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.check Alcotest.int "one winner" 1 members

let () =
  Alcotest.run "async-mis"
    [
      ( "async",
        [
          Alcotest.test_case "sync start classic" `Quick test_sync_start_classic;
          Alcotest.test_case "staggered wakes" `Slow test_staggered_wakes;
          Alcotest.test_case "dual with detector" `Slow test_dual_with_detector;
          Alcotest.test_case "very late waker" `Quick test_very_late_waker;
          Alcotest.test_case "covered flag" `Quick test_covered_flag;
          Alcotest.test_case "two nodes" `Quick test_two_nodes;
        ] );
    ]
