(* Tests for the broadcast library and the backbone-stretch metric. *)

module B = Rn_broadcast.Broadcast
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Graph = Rn_graph.Graph
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify

let geometric seed = Rn_harness.Harness.geometric ~seed ~n:60 ~degree:10 ()

let test_flood_covers () =
  let dual = geometric 1 in
  let r = B.run ~seed:1 ~protocol:(B.Flood 0.1) ~source:0 ~rounds:500 dual in
  Alcotest.(check bool) "full coverage" true (B.full_coverage r);
  Alcotest.(check bool) "sends counted" true (r.sends > 0)

let test_flood_under_adversary () =
  let dual = geometric 2 in
  let r =
    B.run ~adversary:(Rn_sim.Adversary.bernoulli 0.5) ~seed:2 ~protocol:(B.Flood 0.1)
      ~source:3 ~rounds:800 dual
  in
  Alcotest.(check bool) "full coverage with gray traffic" true (B.full_coverage r)

let test_backbone_covers () =
  let dual = geometric 3 in
  let det = Detector.perfect (Dual.g dual) in
  let ccds =
    Core.Ccds.run ~seed:3
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det) dual
  in
  let in_bb = Array.map (fun o -> o = Some 1) ccds.Core.Radio.outputs in
  let r =
    B.run ~seed:3
      ~protocol:(B.Backbone { relay = (fun v -> in_bb.(v)); p = 0.1 })
      ~source:0 ~rounds:800 dual
  in
  Alcotest.(check bool) "backbone coverage" true (B.full_coverage r)

let test_backbone_no_relays () =
  (* only the source relays: coverage is exactly its closed neighbourhood *)
  let dual = Dual.classic (Gen.star 6) in
  let r =
    B.run ~seed:1
      ~protocol:(B.Backbone { relay = (fun _ -> false); p = 0.5 })
      ~source:1 (* a leaf: it reaches only the centre *)
      ~rounds:200 dual
  in
  Alcotest.check Alcotest.int "leaf reaches only centre" 2 r.coverage

let test_round_robin_deterministic_budget () =
  (* covers within n * eccentricity rounds under ANY adversary *)
  List.iter
    (fun (name, adversary) ->
      let dual = Dual.classic (Gen.path 9) in
      let budget = B.round_robin_budget dual ~source:0 in
      let r = B.run ~adversary ~seed:7 ~protocol:B.Round_robin ~source:0 ~rounds:budget dual in
      Alcotest.(check bool) (name ^ ": covered in budget") true (B.full_coverage r))
    [
      ("silent", Rn_sim.Adversary.silent);
      ("all-gray", Rn_sim.Adversary.all_gray);
      ("spiteful", Rn_sim.Adversary.spiteful);
    ]

let test_round_robin_gray_network () =
  (* solo broadcasts survive arbitrary gray activation *)
  let g = Gen.path 6 in
  let dual = Rn_graph.Dual.make ~g ~gray:[ (0, 3); (1, 4); (2, 5) ] () in
  let budget = B.round_robin_budget dual ~source:0 in
  let r =
    B.run ~adversary:Rn_sim.Adversary.all_gray ~seed:1 ~protocol:B.Round_robin ~source:0
      ~rounds:budget dual
  in
  Alcotest.(check bool) "covered despite gray" true (B.full_coverage r)

let test_first_hear_consistency () =
  let dual = geometric 4 in
  let r = B.run ~seed:4 ~protocol:(B.Flood 0.1) ~source:0 ~rounds:500 dual in
  Array.iteri
    (fun v f ->
      if v <> 0 then
        Alcotest.(check bool) "reached iff heard" true (r.reached.(v) = (f <> None)))
    r.first_hear

let test_decay_covers () =
  let dual = geometric 6 in
  let k = 2 * Rn_util.Ilog.log2_up 60 in
  let r =
    B.run ~adversary:(Rn_sim.Adversary.bernoulli 0.5) ~seed:6 ~protocol:(B.Decay k)
      ~source:0 ~rounds:600 dual
  in
  Alcotest.(check bool) "decay covers" true (B.full_coverage r)

let test_decay_dense () =
  (* decay's raison d'etre: it beats plain flooding under heavy contention
     (a clique informs everyone in O(k) rounds without any topology
     knowledge) *)
  let dual = Dual.classic (Rn_graph.Gen.clique 32) in
  let r = B.run ~seed:7 ~protocol:(B.Decay 10) ~source:0 ~rounds:200 dual in
  Alcotest.(check bool) "clique covered" true (B.full_coverage r)

let test_errors () =
  let dual = Dual.classic (Gen.path 3) in
  Alcotest.check_raises "bad source" (Invalid_argument "Broadcast.run: source") (fun () ->
      ignore (B.run ~protocol:B.Round_robin ~source:9 ~rounds:5 dual));
  Alcotest.check_raises "bad rounds" (Invalid_argument "Broadcast.run: rounds") (fun () ->
      ignore (B.run ~protocol:B.Round_robin ~source:0 ~rounds:0 dual))

(* --- stretch metric --- *)

let test_stretch_path_internal () =
  (* path with all internal nodes as backbone: stretch is exactly 1 *)
  let h = Gen.path 6 in
  let r = Verify.Stretch.measure ~h ~members:[ 1; 2; 3; 4 ] () in
  Alcotest.check (Alcotest.float 1e-9) "max stretch 1" 1.0 r.max_stretch;
  Alcotest.check Alcotest.int "no unroutable" 0 r.unroutable

let test_stretch_detour () =
  (* a 4-cycle where only one side is backbone: the pair across the missing
     side pays a detour *)
  let h = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  (* route 0→2 via member 1 is length 2 = direct; route 1→3 must go via...
     members = [0]: 1-0-3 length 2, direct 2 → stretch 1. Use members = [1]:
     0→2 via 1 fine; 0→3 direct 1; 3→1 direct... craft stronger: members=[1],
     pair (2,3): direct 1 (edge 2-3); no constraint (adjacent). pair (0,3):
     direct 1. All pairs adjacent or via 1 → max stretch = 1?  Use a path
     instead: 0-1-2-3-4 with members {1,2,3} minus 2... *)
  ignore h;
  let h = Gen.path 5 in
  (* backbone misses node 2: pairs crossing it are unroutable *)
  let r = Verify.Stretch.measure ~h ~members:[ 1; 3 ] () in
  Alcotest.(check bool) "crossing pairs unroutable" true (r.unroutable > 0)

let test_stretch_sampled () =
  let dual = geometric 5 in
  let det = Detector.perfect (Dual.g dual) in
  let ccds =
    Core.Ccds.run ~seed:5
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det) dual
  in
  let members = ref [] in
  Array.iteri (fun v o -> if o = Some 1 then members := v :: !members) ccds.Core.Radio.outputs;
  let r =
    Verify.Stretch.measure
      ~sample:(Rn_util.Rng.create 1, 200)
      ~h:(Detector.h_graph det) ~members:!members ()
  in
  Alcotest.check Alcotest.int "CCDS routes everything" 0 r.unroutable;
  Alcotest.(check bool) "bounded stretch" true (r.max_stretch <= 3.0);
  Alcotest.(check bool) "mean >= 1" true (r.mean_stretch >= 1.0)

let () =
  Alcotest.run "broadcast"
    [
      ( "protocols",
        [
          Alcotest.test_case "flood covers" `Quick test_flood_covers;
          Alcotest.test_case "flood under adversary" `Quick test_flood_under_adversary;
          Alcotest.test_case "backbone covers" `Slow test_backbone_covers;
          Alcotest.test_case "backbone without relays" `Quick test_backbone_no_relays;
          Alcotest.test_case "round-robin budget" `Quick test_round_robin_deterministic_budget;
          Alcotest.test_case "round-robin vs gray" `Quick test_round_robin_gray_network;
          Alcotest.test_case "decay covers" `Quick test_decay_covers;
          Alcotest.test_case "decay dense" `Quick test_decay_dense;
          Alcotest.test_case "first-hear consistency" `Quick test_first_hear_consistency;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "stretch",
        [
          Alcotest.test_case "path internal" `Quick test_stretch_path_internal;
          Alcotest.test_case "missing relay unroutable" `Quick test_stretch_detour;
          Alcotest.test_case "CCDS stretch sampled" `Slow test_stretch_sampled;
        ] );
    ]
