(* Tests for the deterministic TDMA CCDS baseline. *)

module R = Core.Radio
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify

let check_solves ?(adversary = Rn_sim.Adversary.silent) ?(seed = 1) ?b_bits name dual =
  let det = Detector.perfect (Dual.g dual) in
  let res = Core.Tdma_ccds.run ~seed ~adversary ?b_bits ~detector:(Detector.static det) dual in
  let rep = Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) res.R.outputs in
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " rep.violations)
    true (Verify.Ccds_check.ok rep);
  (res, det)

let test_topologies () =
  List.iter
    (fun (name, g) -> ignore (check_solves name (Dual.classic g)))
    [
      ("path", Gen.path 12);
      ("ring", Gen.ring 11);
      ("clique", Gen.clique 9);
      ("star", Gen.star 7);
      ("two", Gen.path 2);
    ]

let test_geometric () =
  for seed = 1 to 3 do
    let dual = Rn_harness.Harness.geometric ~seed ~n:48 ~degree:9 () in
    ignore (check_solves ~seed "geometric" dual)
  done

let test_all_gray_robustness () =
  (* one speaker per round: collision-free under any adversary *)
  let dual = Rn_harness.Harness.geometric ~seed:4 ~n:48 ~degree:9 () in
  ignore (check_solves ~adversary:Rn_sim.Adversary.all_gray "all-gray" dual);
  ignore (check_solves ~adversary:Rn_sim.Adversary.spiteful "spiteful" dual)

let test_deterministic () =
  (* seeds are irrelevant: the construction is deterministic *)
  let dual = Rn_harness.Harness.geometric ~seed:5 ~n:40 ~degree:8 () in
  let a, _ = check_solves ~seed:1 "det a" dual in
  let b, _ = check_solves ~seed:999 "det b" dual in
  Alcotest.(check bool) "same outputs regardless of seed" true (a.R.outputs = b.R.outputs)

let test_greedy_mis_by_id () =
  (* on a clique, the smallest id wins and is the whole CCDS *)
  let res, _ = check_solves "clique greedy" (Dual.classic (Gen.clique 8)) in
  Alcotest.(check bool) "node 0 is the dominator" true (res.R.outputs.(0) = Some 1);
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.check Alcotest.int "singleton" 1 members

let test_linear_rounds () =
  let rounds n =
    let dual = Dual.classic (Gen.ring n) in
    let res, _ = check_solves "ring" dual in
    res.R.rounds
  in
  let r16 = rounds 16 and r64 = rounds 64 in
  Alcotest.check Alcotest.int "5 frames at b=inf (n=16)" (5 * 16) r16;
  Alcotest.check Alcotest.int "exactly linear" (4 * r16) r64

let test_small_b_chunks () =
  let dual = Rn_harness.Harness.geometric ~seed:6 ~n:40 ~degree:8 () in
  let id = Rn_util.Ilog.log2_up 40 in
  let res, _ = check_solves ~b_bits:(8 * id) "small b" dual in
  Alcotest.(check bool) "more frames under small b" true (res.R.rounds > 5 * 40)

let test_b_too_small () =
  let dual = Dual.classic (Gen.path 6) in
  Alcotest.(check bool) "rejects tiny b" true
    (try
       ignore (check_solves ~b_bits:8 "tiny" dual);
       false
     with Invalid_argument _ -> true)

let test_dominators_in_ccds () =
  let dual = Rn_harness.Harness.geometric ~seed:7 ~n:40 ~degree:8 () in
  let res, _ = check_solves "roles" dual in
  Array.iteri
    (fun v o ->
      match o with
      | Some (oc : Core.Tdma_ccds.outcome) ->
        if oc.dominator then
          Alcotest.(check bool) "dominator joined" true (res.R.outputs.(v) = Some 1);
        Alcotest.(check bool) "in_ccds iff output 1" true
          (oc.in_ccds = (res.R.outputs.(v) = Some 1))
      | None -> Alcotest.fail "no return")
    res.R.returns

let test_clusters_topology () =
  (* the clustered generator composes with the deterministic baseline *)
  let rng = Rn_util.Rng.create 11 in
  let dual = Gen.clusters ~rng ~clusters:3 ~per_cluster:12 () in
  Alcotest.(check bool) "connected" true (Rn_graph.Algo.is_connected (Dual.g dual));
  ignore (check_solves "clusters" dual)

let () =
  Alcotest.run "tdma"
    [
      ( "tdma",
        [
          Alcotest.test_case "topologies" `Quick test_topologies;
          Alcotest.test_case "geometric" `Slow test_geometric;
          Alcotest.test_case "all-gray robustness" `Quick test_all_gray_robustness;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "greedy MIS by id" `Quick test_greedy_mis_by_id;
          Alcotest.test_case "linear rounds" `Quick test_linear_rounds;
          Alcotest.test_case "small b chunks" `Quick test_small_b_chunks;
          Alcotest.test_case "b too small" `Quick test_b_too_small;
          Alcotest.test_case "roles consistent" `Quick test_dominators_in_ccds;
          Alcotest.test_case "clusters topology" `Slow test_clusters_topology;
        ] );
    ]
