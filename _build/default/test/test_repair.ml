(* Tests for the localized repair protocol (Section 8 extension). *)

module Dual = Rn_graph.Dual
module Graph = Rn_graph.Graph
module Detector = Rn_detect.Detector
module R = Core.Radio
module Verify = Rn_verify.Verify

let adv = Rn_sim.Adversary.bernoulli 0.5

(* Build a CCDS, orphan one well-connected covered process, repair. *)
let build_and_damage ~seed =
  let dual = Rn_harness.Harness.geometric ~seed ~n:64 ~degree:10 () in
  let det0 = Detector.perfect (Dual.g dual) in
  let build = Core.Ccds.run ~seed ~adversary:adv ~detector:(Detector.static det0) dual in
  let old_outputs = build.R.outputs in
  let old_masters =
    Array.map
      (function Some (o : Core.Ccds.outcome) -> o.mis_neighbors | None -> [])
      build.R.returns
  in
  let old_dominators =
    Array.map
      (function Some (o : Core.Ccds.outcome) -> o.in_mis | None -> false)
      build.R.returns
  in
  let victim = ref (-1) in
  Array.iteri
    (fun v o ->
      if !victim < 0 && o = Some 0 && old_masters.(v) <> []
         && Graph.degree (Dual.g dual) v > List.length old_masters.(v) + 1 then
        victim := v)
    old_outputs;
  let v = !victim in
  let dual1 = Dual.demote_edges dual (List.map (fun m -> (v, m)) old_masters.(v)) in
  (dual, dual1, v, old_outputs, old_dominators, old_masters)

let test_repair_restores_validity () =
  let _, dual1, _, old_outputs, old_dominators, old_masters = build_and_damage ~seed:1 in
  let det1 = Detector.perfect (Dual.g dual1) in
  let rep =
    Core.Repair.run ~seed:9 ~adversary:adv ~detector:(Detector.static det1) ~old_outputs
      ~old_dominators ~old_masters dual1
  in
  let check =
    Verify.Ccds_check.check ~h:(Detector.h_graph det1) ~g':(Dual.g' dual1) rep.R.outputs
  in
  Alcotest.(check bool)
    ("valid after repair: " ^ String.concat ";" check.violations)
    true
    (Verify.Ccds_check.ok check)

let test_victim_is_orphan () =
  let _, dual1, v, old_outputs, old_dominators, old_masters = build_and_damage ~seed:2 in
  let det1 = Detector.perfect (Dual.g dual1) in
  let rep =
    Core.Repair.run ~seed:9 ~adversary:adv ~detector:(Detector.static det1) ~old_outputs
      ~old_dominators ~old_masters dual1
  in
  (match rep.R.returns.(v) with
  | Some (o : Core.Repair.outcome) -> Alcotest.(check bool) "victim orphaned" true o.orphan
  | None -> Alcotest.fail "no return");
  (* the victim ends up dominated or in the structure *)
  match rep.R.outputs.(v) with
  | Some _ -> ()
  | None -> Alcotest.fail "victim undecided"

let test_members_stay () =
  (* previous members never leave the structure under repair *)
  let _, dual1, _, old_outputs, old_dominators, old_masters = build_and_damage ~seed:3 in
  let det1 = Detector.perfect (Dual.g dual1) in
  let rep =
    Core.Repair.run ~seed:9 ~adversary:adv ~detector:(Detector.static det1) ~old_outputs
      ~old_dominators ~old_masters dual1
  in
  Array.iteri
    (fun i o -> if o = Some 1 then Alcotest.(check bool) "member kept" true (rep.R.outputs.(i) = Some 1))
    old_outputs

let test_low_churn () =
  let _, dual1, _, old_outputs, old_dominators, old_masters = build_and_damage ~seed:4 in
  let det1 = Detector.perfect (Dual.g dual1) in
  let rep =
    Core.Repair.run ~seed:9 ~adversary:adv ~detector:(Detector.static det1) ~old_outputs
      ~old_dominators ~old_masters dual1
  in
  let rebuild =
    Core.Ccds.run ~seed:9 ~adversary:adv ~detector:(Detector.static det1) dual1
  in
  let c_repair = Core.Repair.churn ~before:old_outputs ~after:rep.R.outputs in
  let c_rebuild = Core.Repair.churn ~before:old_outputs ~after:rebuild.R.outputs in
  Alcotest.(check bool)
    (Printf.sprintf "repair churn (%.2f) below rebuild churn (%.2f)" c_repair c_rebuild)
    true (c_repair < c_rebuild)

let test_no_damage_noop_valid () =
  (* repairing an undamaged network keeps a valid structure with zero
     member churn *)
  let dual = Rn_harness.Harness.geometric ~seed:5 ~n:48 ~degree:9 () in
  let det = Detector.perfect (Dual.g dual) in
  let build = Core.Ccds.run ~seed:5 ~adversary:adv ~detector:(Detector.static det) dual in
  let old_masters =
    Array.map
      (function Some (o : Core.Ccds.outcome) -> o.mis_neighbors | None -> [])
      build.R.returns
  in
  let old_dominators =
    Array.map
      (function Some (o : Core.Ccds.outcome) -> o.in_mis | None -> false)
      build.R.returns
  in
  let rep =
    Core.Repair.run ~seed:6 ~adversary:adv ~detector:(Detector.static det)
      ~old_outputs:build.R.outputs ~old_dominators ~old_masters dual
  in
  let check =
    Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) rep.R.outputs
  in
  Alcotest.(check bool) "still valid" true (Verify.Ccds_check.ok check);
  (* no orphans, so no new MIS members: membership can only stay or grow
     through reconnection relays *)
  let orphans =
    Array.fold_left
      (fun c o ->
        match o with Some (oc : Core.Repair.outcome) -> if oc.orphan then c + 1 else c | None -> c)
      0 rep.R.returns
  in
  Alcotest.check Alcotest.int "no orphans" 0 orphans

let test_churn_metric () =
  Alcotest.check (Alcotest.float 1e-9) "zero churn" 0.0
    (Core.Repair.churn ~before:[| Some 1; Some 0 |] ~after:[| Some 1; Some 0 |]);
  Alcotest.check (Alcotest.float 1e-9) "half churn" 0.5
    (Core.Repair.churn ~before:[| Some 1; Some 0 |] ~after:[| Some 1; Some 1 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Repair.churn") (fun () ->
      ignore (Core.Repair.churn ~before:[| Some 1 |] ~after:[||]))

let test_state_arity () =
  let dual = Rn_graph.Dual.classic (Rn_graph.Gen.path 4) in
  let det = Detector.perfect (Dual.g dual) in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore
         (Core.Repair.run ~detector:(Detector.static det) ~old_outputs:[| Some 1 |]
            ~old_dominators:[| true |] ~old_masters:[| [] |] dual);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "repair"
    [
      ( "repair",
        [
          Alcotest.test_case "restores validity" `Slow test_repair_restores_validity;
          Alcotest.test_case "victim orphaned" `Slow test_victim_is_orphan;
          Alcotest.test_case "members stay" `Slow test_members_stay;
          Alcotest.test_case "low churn" `Slow test_low_churn;
          Alcotest.test_case "no-damage repair valid" `Slow test_no_damage_noop_valid;
          Alcotest.test_case "churn metric" `Quick test_churn_metric;
          Alcotest.test_case "state arity" `Quick test_state_arity;
        ] );
    ]
