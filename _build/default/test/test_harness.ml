(* Tests for the experiment harness plumbing. *)

module Harness = Rn_harness.Harness
module All = Rn_harness.All

let test_ids_unique () =
  let ids = All.ids in
  Alcotest.check Alcotest.int "no duplicates"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_find () =
  Alcotest.(check bool) "finds E1" true (All.find "E1" <> None);
  Alcotest.(check bool) "case-insensitive" true (All.find "e4A" <> None);
  Alcotest.(check bool) "unknown" true (All.find "nope" = None)

let test_geometric_deterministic () =
  let a = Harness.geometric ~seed:3 ~n:30 ~degree:6 () in
  let b = Harness.geometric ~seed:3 ~n:30 ~degree:6 () in
  Alcotest.(check bool) "same instance" true
    (Rn_graph.Graph.edges (Rn_graph.Dual.g a) = Rn_graph.Graph.edges (Rn_graph.Dual.g b))

let test_success_rate () =
  Alcotest.check (Alcotest.float 1e-9) "empty" 0.0 (Harness.success_rate []);
  Alcotest.check (Alcotest.float 1e-9) "half" 0.5 (Harness.success_rate [ true; false ]);
  Alcotest.check (Alcotest.float 1e-9) "all" 1.0 (Harness.success_rate [ true; true ])

let test_render () =
  let r =
    {
      Harness.id = "X";
      title = "t";
      body = "body\n";
      notes = [ "note1"; "note2" ];
    }
  in
  let s = Harness.render r in
  Alcotest.(check bool) "has id" true (String.length s > 0);
  Alcotest.(check bool) "has notes" true
    (List.exists (fun l -> l = "  . note1") (String.split_on_char '\n' s))

(* Smoke-run two cheap experiments end to end (the full sweep is the
   bench's job). *)
let test_experiment_smoke () =
  List.iter
    (fun id ->
      match All.find id with
      | Some f ->
        let r = f Harness.Quick in
        Alcotest.(check bool) (id ^ " rendered") true (String.length r.body > 0)
      | None -> Alcotest.fail ("missing " ^ id))
    [ "E4a"; "E8b" ]

let () =
  Alcotest.run "harness"
    [
      ( "harness",
        [
          Alcotest.test_case "ids unique" `Quick test_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "geometric deterministic" `Quick test_geometric_deterministic;
          Alcotest.test_case "success rate" `Quick test_success_rate;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "experiment smoke" `Slow test_experiment_smoke;
        ] );
    ]
