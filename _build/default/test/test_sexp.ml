(* Tests for the s-expression reader used by scenario files. *)

module Sexp = Rn_util.Sexp

let qtest = QCheck_alcotest.to_alcotest

let rec sexp_testable_eq (a : Sexp.t) (b : Sexp.t) =
  match (a, b) with
  | Sexp.Atom x, Sexp.Atom y -> x = y
  | Sexp.List xs, Sexp.List ys ->
    List.length xs = List.length ys && List.for_all2 sexp_testable_eq xs ys
  | _ -> false

let check_parse name input expected =
  Alcotest.(check bool) name true (sexp_testable_eq (Sexp.parse_string input) expected)

let test_atoms () =
  check_parse "bare atom" "hello" (Atom "hello");
  check_parse "number" "42" (Atom "42");
  check_parse "padded" "  x  " (Atom "x")

let test_lists () =
  check_parse "empty" "()" (List []);
  check_parse "flat" "(a b c)" (List [ Atom "a"; Atom "b"; Atom "c" ]);
  check_parse "nested" "(a (b c) d)" (List [ Atom "a"; List [ Atom "b"; Atom "c" ]; Atom "d" ]);
  check_parse "deep" "(((x)))" (List [ List [ List [ Atom "x" ] ] ])

let test_comments () =
  check_parse "line comment" "; hi\n(a b) ; tail\n" (List [ Atom "a"; Atom "b" ]);
  check_parse "inside list" "(a ; note\n b)" (List [ Atom "a"; Atom "b" ])

let test_errors () =
  let expect_error input =
    Alcotest.(check bool)
      ("rejects " ^ input)
      true
      (try
         ignore (Sexp.parse_string input);
         false
       with Sexp.Parse_error _ -> true)
  in
  expect_error "";
  expect_error "(a";
  expect_error ")";
  expect_error "a b" (* trailing input *)

let test_accessors () =
  let s = Sexp.parse_string "(scenario (n 12) (p 0.5) (name x))" in
  Alcotest.(check (option Alcotest.int)) "int" (Some 12)
    (Option.bind (Sexp.assoc "n" s) (function [ v ] -> Sexp.as_int v | _ -> None));
  Alcotest.(check (option (Alcotest.float 1e-9))) "float" (Some 0.5)
    (Option.bind (Sexp.assoc "p" s) (function [ v ] -> Sexp.as_float v | _ -> None));
  Alcotest.(check (option Alcotest.string)) "atom" (Some "x")
    (Option.bind (Sexp.assoc "name" s) (function [ v ] -> Sexp.atom v | _ -> None));
  Alcotest.(check bool) "missing" true (Sexp.assoc "zzz" s = None)

(* Round trip: printing and reparsing a random sexp is the identity. *)
let gen_sexp =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            if size <= 1 then map (fun s -> Sexp.Atom s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
            else
              frequency
                [
                  (1, map (fun s -> Sexp.Atom s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)));
                  (2, map (fun l -> Sexp.List l) (list_size (int_range 0 4) (self (size / 2))));
                ])
          (min size 16)))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make ~print:Sexp.to_string gen_sexp) (fun s ->
      sexp_testable_eq (Sexp.parse_string (Sexp.to_string s)) s)

let () =
  Alcotest.run "sexp"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "accessors" `Quick test_accessors;
          qtest prop_roundtrip;
        ] );
    ]
