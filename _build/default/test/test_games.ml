(* Tests for the Section 7 games and reductions. *)

module Rng = Rn_util.Rng
module Single = Rn_games.Single_game
module Double = Rn_games.Double_game
module Reduction = Rn_games.Reduction
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual

let qtest = QCheck_alcotest.to_alcotest

(* --- single hitting game --- *)

let test_permutation_hits_within_beta () =
  let rng = Rng.create 1 in
  for target = 1 to 16 do
    match Single.play rng Permutation ~beta:16 ~target ~max_rounds:16 with
    | Some r -> Alcotest.(check bool) "within beta" true (r >= 1 && r <= 16)
    | None -> Alcotest.fail "permutation must hit within beta"
  done

let test_memoryless_eventually_hits () =
  let rng = Rng.create 2 in
  match Single.play rng Memoryless ~beta:8 ~target:5 ~max_rounds:10_000 with
  | Some _ -> ()
  | None -> Alcotest.fail "memoryless should hit in 10k rounds"

let test_target_out_of_range () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "bad target" (Invalid_argument "Single_game.play: target")
    (fun () -> ignore (Single.play rng Permutation ~beta:4 ~target:5 ~max_rounds:10))

let test_mean_rounds_linear () =
  let rng = Rng.create 4 in
  let m8 = Single.mean_rounds rng Permutation ~beta:8 ~samples:500 in
  let m64 = Single.mean_rounds rng Permutation ~beta:64 ~samples:500 in
  (* optimal means are about (beta+1)/2 *)
  Alcotest.(check bool) "mean beta=8 near 4.5" true (abs_float (m8 -. 4.5) < 1.0);
  Alcotest.(check bool) "mean beta=64 near 32.5" true (abs_float (m64 -. 32.5) < 5.0);
  Alcotest.(check bool) "linear growth" true (m64 /. m8 > 4.0)

let test_custom_strategy () =
  let rng = Rng.create 5 in
  (* a sweep strategy as Custom *)
  let sweep = Single.Custom (fun _rng ~beta ~round -> 1 + ((round - 1) mod beta)) in
  Alcotest.(check (option Alcotest.int))
    "sweep hits target 3 at round 3" (Some 3)
    (Single.play rng sweep ~beta:8 ~target:3 ~max_rounds:8)

let prop_quantile_at_least_mean_target =
  QCheck.Test.make ~name:"p90 worst target >= beta/2 (no free lunch)" ~count:5
    (QCheck.int_range 4 32) (fun beta ->
      let rng = Rng.create beta in
      Single.quantile_rounds rng Permutation ~beta ~samples:50 ~q:0.9
      >= float_of_int beta /. 2.0)

(* --- double hitting game --- *)

let test_sweep_players_solve () =
  let beta = 12 in
  let pa, pb = Double.sweep_players ~beta in
  let worst, unsolved = Double.worst_case ~pa ~pb ~beta ~seed:1 in
  Alcotest.check Alcotest.int "all pairs solved" 0 unsolved;
  Alcotest.(check bool) "within beta rounds" true (worst <= beta)

let test_trace_hits () =
  let trace = [| [ 3 ]; []; [ 1; 2 ]; [ 5 ] |] in
  Alcotest.(check (option Alcotest.int)) "hit at 1" (Some 1) (Double.trace_hits trace 3);
  Alcotest.(check (option Alcotest.int)) "hit at 3" (Some 3) (Double.trace_hits trace 2);
  Alcotest.(check (option Alcotest.int)) "miss" None (Double.trace_hits trace 9)

let test_double_to_single () =
  let beta2 = 8 in
  let pa, pb = Double.sweep_players ~beta:beta2 in
  let automaton = Double.double_to_single ~pa ~pb ~beta2 ~rounds:beta2 ~samples:3 ~seed:2 in
  for target = 1 to beta2 / 2 do
    match Double.play_single automaton ~target ~seed:3 with
    | Some r -> Alcotest.(check bool) "hit within 2*beta" true (r <= beta2)
    | None -> Alcotest.fail (Printf.sprintf "target %d never hit" target)
  done

(* --- the CCDS reduction (Lemma 7.2) --- *)

let test_clique_trace_shape () =
  let beta = 4 in
  let trace = Reduction.ccds_clique_trace ~beta ~seed:1 () in
  Alcotest.(check bool) "trace non-trivial" true (Array.length trace > 100);
  Array.iter
    (List.iter (fun g ->
         Alcotest.(check bool) "guesses in [1,beta]" true (g >= 1 && g <= beta)))
    trace;
  (* the CCDS of a clique contains at least one process: termination
     guesses exist *)
  Alcotest.(check bool) "some guess emitted" true
    (Array.exists (fun gs -> gs <> []) trace)

let test_ccds_players_solve_all_pairs () =
  let beta = 4 in
  let pa, pb = Reduction.ccds_players ~beta () in
  let worst, unsolved = Double.worst_case ~pa ~pb ~beta ~seed:5 in
  Alcotest.check Alcotest.int "all pairs solved" 0 unsolved;
  Alcotest.(check bool) "positive solve time" true (worst > 0)

let test_planted_detector_is_1_complete () =
  let beta = 5 in
  let dual = Reduction.clique_with_phantom ~beta in
  let det = Reduction.planted_detector ~beta in
  Alcotest.(check bool) "1-complete" true
    (Rn_detect.Detector.is_tau_complete det ~tau:1 (Dual.g dual))

let test_bridge_detector_is_1_complete () =
  let beta = 5 in
  let dual = Rn_graph.Gen.bridge_cliques ~beta () in
  let det = Reduction.bridge_detector ~beta in
  Alcotest.(check bool) "1-complete" true
    (Rn_detect.Detector.is_tau_complete det ~tau:1 (Dual.g dual));
  (* H of the planted detector is exactly G: cliques plus the bridge *)
  let h = Rn_detect.Detector.h_graph det in
  Alcotest.(check bool) "H = G" true (Graph.edges h = Graph.edges (Dual.g dual))

let test_bridge_run_solves () =
  let r = Reduction.bridge_run ~beta:4 ~seed:1 () in
  Alcotest.(check bool) ("solved: " ^ String.concat ";" r.report.violations) true r.solved

let test_bridge_rounds_grow () =
  let r4 = Reduction.bridge_run ~beta:4 ~seed:1 () in
  let r16 = Reduction.bridge_run ~beta:16 ~seed:1 () in
  Alcotest.(check bool) "rounds grow with beta" true
    (float_of_int r16.rounds /. float_of_int r4.rounds > 2.0)

let () =
  Alcotest.run "games"
    [
      ( "single",
        [
          Alcotest.test_case "permutation within beta" `Quick test_permutation_hits_within_beta;
          Alcotest.test_case "memoryless hits" `Quick test_memoryless_eventually_hits;
          Alcotest.test_case "target range" `Quick test_target_out_of_range;
          Alcotest.test_case "means linear" `Quick test_mean_rounds_linear;
          Alcotest.test_case "custom strategy" `Quick test_custom_strategy;
          qtest prop_quantile_at_least_mean_target;
        ] );
      ( "double",
        [
          Alcotest.test_case "sweep players" `Quick test_sweep_players_solve;
          Alcotest.test_case "trace hits" `Quick test_trace_hits;
          Alcotest.test_case "double-to-single" `Quick test_double_to_single;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "clique trace" `Quick test_clique_trace_shape;
          Alcotest.test_case "ccds players solve" `Slow test_ccds_players_solve_all_pairs;
          Alcotest.test_case "planted detector" `Quick test_planted_detector_is_1_complete;
          Alcotest.test_case "bridge detector" `Quick test_bridge_detector_is_1_complete;
          Alcotest.test_case "bridge run solves" `Quick test_bridge_run_solves;
          Alcotest.test_case "bridge rounds grow" `Slow test_bridge_rounds_grow;
        ] );
    ]
