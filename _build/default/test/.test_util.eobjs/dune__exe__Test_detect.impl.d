test/test_detect.ml: Alcotest Array Printf QCheck QCheck_alcotest Rn_detect Rn_graph Rn_util
