test/test_scenario.ml: Alcotest Filename List Printf Rn_harness Rn_util String Sys
