test/test_params.ml: Alcotest Core List Printf Rn_detect Rn_graph Rn_harness Rn_sim Rn_util Rn_verify
