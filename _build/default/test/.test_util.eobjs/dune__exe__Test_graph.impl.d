test/test_graph.ml: Alcotest Array Fun List QCheck QCheck_alcotest Rn_geom Rn_graph Rn_util
