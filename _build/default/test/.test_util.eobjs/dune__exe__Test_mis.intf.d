test/test_mis.mli:
