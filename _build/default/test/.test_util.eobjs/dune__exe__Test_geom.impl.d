test/test_geom.ml: Alcotest Format List Printf QCheck QCheck_alcotest Rn_geom Rn_util
