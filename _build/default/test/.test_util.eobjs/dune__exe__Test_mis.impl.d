test/test_mis.ml: Alcotest Array Core List Printf QCheck QCheck_alcotest Rn_detect Rn_graph Rn_harness Rn_sim Rn_util Rn_verify Seq String
