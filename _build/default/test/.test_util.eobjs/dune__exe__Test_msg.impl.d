test/test_msg.ml: Alcotest Core List QCheck QCheck_alcotest
