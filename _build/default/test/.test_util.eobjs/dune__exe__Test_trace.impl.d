test/test_trace.ml: Alcotest Array Core List Rn_detect Rn_graph Rn_sim String
