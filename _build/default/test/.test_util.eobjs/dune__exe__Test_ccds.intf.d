test/test_ccds.mli:
