test/test_broadcast.ml: Alcotest Array Core List Rn_broadcast Rn_detect Rn_graph Rn_harness Rn_sim Rn_util Rn_verify
