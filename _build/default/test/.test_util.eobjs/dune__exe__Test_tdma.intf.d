test/test_tdma.mli:
