test/test_tdma.ml: Alcotest Array Core List Rn_detect Rn_graph Rn_harness Rn_sim Rn_util Rn_verify String
