test/test_svg.ml: Alcotest Filename List Rn_harness Rn_util String Sys
