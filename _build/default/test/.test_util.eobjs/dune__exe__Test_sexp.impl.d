test/test_sexp.ml: Alcotest List Option QCheck QCheck_alcotest Rn_util
