test/test_util.ml: Alcotest Array Gen Int List QCheck QCheck_alcotest Rn_util Set String
