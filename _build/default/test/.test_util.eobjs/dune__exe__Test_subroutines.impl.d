test/test_subroutines.ml: Alcotest Array Core Hashtbl List Printf Rn_detect Rn_graph Rn_util
