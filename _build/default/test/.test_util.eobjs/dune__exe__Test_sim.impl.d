test/test_sim.ml: Alcotest Array Dump Fmt Format Fun List QCheck QCheck_alcotest Rn_detect Rn_graph Rn_sim
