test/test_games.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rn_detect Rn_games Rn_graph Rn_util String
