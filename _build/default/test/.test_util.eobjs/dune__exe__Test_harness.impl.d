test/test_harness.ml: Alcotest List Rn_graph Rn_harness String
