test/test_explore.ml: Alcotest Array Core List Printf Rn_detect Rn_games Rn_graph Rn_harness Rn_sim Rn_util Rn_verify String
