test/test_continuous.mli:
