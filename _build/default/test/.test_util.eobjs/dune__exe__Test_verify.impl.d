test/test_verify.ml: Alcotest Array Core QCheck QCheck_alcotest Rn_detect Rn_geom Rn_graph Rn_harness Rn_sim Rn_verify
