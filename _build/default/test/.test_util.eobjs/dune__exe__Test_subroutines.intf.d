test/test_subroutines.mli:
