test/test_repair.ml: Alcotest Array Core List Printf Rn_detect Rn_graph Rn_harness Rn_sim Rn_verify String
