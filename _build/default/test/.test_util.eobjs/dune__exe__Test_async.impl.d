test/test_async.ml: Alcotest Array Core Rn_detect Rn_graph Rn_harness Rn_sim Rn_verify String
