(* Tests for the continuous CCDS (Section 8). *)

module R = Core.Radio
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify

let dual () = Rn_harness.Harness.geometric ~seed:1 ~n:40 ~degree:8 ()

let valid_against det dual outputs =
  Verify.Ccds_check.ok
    (Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) outputs)

let test_static_detector_all_valid () =
  let dual = dual () in
  let det = Detector.perfect (Dual.g dual) in
  let result =
    Core.Continuous.run ~seed:2
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det) ~iterations:3 dual
  in
  Alcotest.check Alcotest.int "three iterations" 3 (List.length result.iterations);
  List.iter
    (fun (it : Core.Continuous.iteration) ->
      Alcotest.(check bool)
        (Printf.sprintf "iteration %d valid" it.index)
        true
        (valid_against det dual it.outputs))
    result.iterations

let test_windows_contiguous () =
  let dual = dual () in
  let det = Detector.perfect (Dual.g dual) in
  let result =
    Core.Continuous.run ~seed:3 ~detector:(Detector.static det) ~iterations:3 dual
  in
  let rec check_chain prev = function
    | [] -> ()
    | (it : Core.Continuous.iteration) :: rest ->
      Alcotest.check Alcotest.int "contiguous" (prev + 1) it.start_round;
      Alcotest.(check bool) "non-empty window" true (it.end_round >= it.start_round);
      Alcotest.check Alcotest.int "period length" result.period
        (it.end_round - it.start_round + 1);
      check_chain it.end_round rest
  in
  check_chain 0 result.iterations

let test_structure_at () =
  let dual = dual () in
  let det = Detector.perfect (Dual.g dual) in
  let result =
    Core.Continuous.run ~seed:4 ~detector:(Detector.static det) ~iterations:2 dual
  in
  Alcotest.(check bool) "nothing installed during first period" true
    (Core.Continuous.structure_at result 1 = None);
  (match Core.Continuous.structure_at result (result.period + 1) with
  | Some it -> Alcotest.check Alcotest.int "first structure installed" 1 it.index
  | None -> Alcotest.fail "expected structure after first period");
  match Core.Continuous.structure_at result ((2 * result.period) + 1) with
  | Some it -> Alcotest.check Alcotest.int "second structure installed" 2 it.index
  | None -> Alcotest.fail "expected second structure"

let test_theorem_8_1 () =
  (* detector stabilises during iteration 2; iterations starting after
     stabilisation must be valid against the stable topology *)
  let dual = dual () in
  let good = Detector.perfect (Dual.g dual) in
  let noisy = Detector.tau_complete ~rng:(Rn_util.Rng.create 9) ~tau:2 dual in
  let probe = Core.Continuous.run ~seed:5 ~detector:(Detector.static good) ~iterations:1 dual in
  let period = probe.period in
  let stab = period + (period / 2) in
  let dyn = Detector.switching ~before:noisy ~after:good ~round:stab in
  let result =
    Core.Continuous.run ~seed:6
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:dyn ~iterations:4 dual
  in
  List.iter
    (fun (it : Core.Continuous.iteration) ->
      if it.start_round >= stab then
        Alcotest.(check bool)
          (Printf.sprintf "post-stabilisation iteration %d valid" it.index)
          true
          (valid_against good dual it.outputs))
    result.iterations;
  (* Theorem 8.1's deadline: some valid structure installed by stab + 2 period *)
  let deadline = stab + (2 * period) in
  match Core.Continuous.structure_at result deadline with
  | Some it ->
    Alcotest.(check bool) "deadline structure valid" true (valid_against good dual it.outputs)
  | None -> Alcotest.fail "no structure installed by the deadline"

let test_iterations_validated () =
  Alcotest.(check bool) "zero iterations rejected" true
    (try
       let dual = dual () in
       let det = Detector.perfect (Dual.g dual) in
       ignore (Core.Continuous.run ~detector:(Detector.static det) ~iterations:0 dual);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "continuous"
    [
      ( "continuous",
        [
          Alcotest.test_case "static detector valid" `Slow test_static_detector_all_valid;
          Alcotest.test_case "windows contiguous" `Quick test_windows_contiguous;
          Alcotest.test_case "structure_at" `Quick test_structure_at;
          Alcotest.test_case "Theorem 8.1" `Slow test_theorem_8_1;
          Alcotest.test_case "iterations validated" `Quick test_iterations_validated;
        ] );
    ]
