(* Engine semantics tests: the Section 2 receive rule, adversaries, wake
   schedules, message-size enforcement, stop conditions, determinism —
   including a property test against an independent delivery oracle. *)

module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Adversary = Rn_sim.Adversary

let qtest = QCheck_alcotest.to_alcotest

module M = struct
  type t = int (* sender id *)

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

type event = Got of int | Mine

(* Run scripted senders: [sends v] lists the (global, = local here) rounds
   in which v broadcasts.  Returns per-process (round, event) logs. *)
let scripted ?(adversary = Adversary.silent) ?(seed = 0) ?wake ?b_bits ~rounds ~sends dual =
  let det = Detector.perfect (Dual.g dual) in
  let cfg =
    E.config ~adversary ~seed ?wake ?b_bits ~stop:(Rn_sim.Engine.At_round rounds)
      ~detector:(Detector.static det) dual
  in
  E.run cfg (fun ctx ->
      let me = E.me ctx in
      let log = ref [] in
      for r = 1 to rounds do
        let send = if List.mem r (sends me) then Some me else None in
        (match E.sync ctx send with
        | E.Recv m -> log := (r, Got m) :: !log
        | E.Own -> log := (r, Mine) :: !log
        | E.Silence -> ())
      done;
      List.rev !log)

let log_of res v = match res.E.returns.(v) with Some l -> l | None -> []

let path3 = Dual.classic (Gen.path 3)

let test_solo_delivery () =
  let res = scripted ~rounds:1 ~sends:(fun v -> if v = 1 then [ 1 ] else []) path3 in
  Alcotest.(check bool) "0 received" true (log_of res 0 = [ (1, Got 1) ]);
  Alcotest.(check bool) "2 received" true (log_of res 2 = [ (1, Got 1) ]);
  Alcotest.(check bool) "1 got Own" true (log_of res 1 = [ (1, Mine) ])

let test_collision () =
  (* 0 and 2 both send: node 1 sees two broadcasters, receives nothing *)
  let res = scripted ~rounds:1 ~sends:(fun v -> if v = 0 || v = 2 then [ 1 ] else []) path3 in
  Alcotest.(check bool) "1 silent" true (log_of res 1 = []);
  Alcotest.check Alcotest.int "collision counted" 1 res.E.stats.collisions

let test_non_neighbor () =
  (* 0 sends; 2 is two hops away and must hear nothing *)
  let res = scripted ~rounds:1 ~sends:(fun v -> if v = 0 then [ 1 ] else []) path3 in
  Alcotest.(check bool) "2 silent" true (log_of res 2 = []);
  Alcotest.(check bool) "1 received" true (log_of res 1 = [ (1, Got 0) ])

(* G: 0-1, gray: 0-2 *)
let gray_net = Dual.make ~g:(Graph.of_edges 3 [ (0, 1) ]) ~gray:[ (0, 2) ] ()

let test_gray_silent () =
  let res = scripted ~rounds:1 ~sends:(fun v -> if v = 0 then [ 1 ] else []) gray_net in
  Alcotest.(check bool) "gray inactive" true (log_of res 2 = []);
  Alcotest.(check bool) "reliable delivered" true (log_of res 1 = [ (1, Got 0) ])

let test_gray_all () =
  let res =
    scripted ~adversary:Adversary.all_gray ~rounds:1
      ~sends:(fun v -> if v = 0 then [ 1 ] else [])
      gray_net
  in
  Alcotest.(check bool) "gray active" true (log_of res 2 = [ (1, Got 0) ])

let test_bernoulli_extremes () =
  let run adversary =
    let res =
      scripted ~adversary ~rounds:1 ~sends:(fun v -> if v = 0 then [ 1 ] else []) gray_net
    in
    log_of res 2 <> []
  in
  Alcotest.(check bool) "bernoulli 1.0 = all" true (run (Adversary.bernoulli 1.0));
  Alcotest.(check bool) "bernoulli 0.0 = silent" false (run (Adversary.bernoulli 0.0))

let test_spiteful () =
  (* G: 0-1 and 2-3; gray (1,2).  Two broadcasters => all gray active =>
     node 1 sees {0,2} and collides; solo broadcaster is left alone. *)
  let net = Dual.make ~g:(Graph.of_edges 4 [ (0, 1); (2, 3) ]) ~gray:[ (1, 2) ] () in
  let both =
    scripted ~adversary:Adversary.spiteful ~rounds:1
      ~sends:(fun v -> if v = 0 || v = 2 then [ 1 ] else [])
      net
  in
  Alcotest.(check bool) "collision at 1" true (log_of both 1 = []);
  (* node 3 has no gray incidence: it still hears its sole G-neighbour *)
  Alcotest.(check bool) "3 hears 2" true (log_of both 3 = [ (1, Got 2) ]);
  let solo =
    scripted ~adversary:Adversary.spiteful ~rounds:1
      ~sends:(fun v -> if v = 2 then [ 1 ] else [])
      net
  in
  Alcotest.(check bool) "solo delivered on E" true (log_of solo 3 = [ (1, Got 2) ]);
  Alcotest.(check bool) "solo not extended to gray" true (log_of solo 1 = [])

let test_jamming () =
  (* G: 0-1, gray (1,2).  Broadcasters 0 and 2: node 1 would hear 0 solo,
     so the jammer activates (1,2) and collides it. *)
  let net = Dual.make ~g:(Graph.of_edges 3 [ (0, 1) ]) ~gray:[ (1, 2) ] () in
  let res =
    scripted ~adversary:Adversary.jamming ~rounds:1
      ~sends:(fun v -> if v = 0 || v = 2 then [ 1 ] else [])
      net
  in
  Alcotest.(check bool) "node 1 jammed" true (log_of res 1 = []);
  (* without the second broadcaster there is nothing to jam with *)
  let solo =
    scripted ~adversary:Adversary.jamming ~rounds:1
      ~sends:(fun v -> if v = 0 then [ 1 ] else [])
      net
  in
  Alcotest.(check bool) "solo delivered" true (log_of solo 1 = [ (1, Got 0) ])

let test_jamming_never_helps () =
  (* gray (0,2): a solo broadcaster's gray edge is never switched on *)
  let res =
    scripted ~adversary:Adversary.jamming ~rounds:1
      ~sends:(fun v -> if v = 0 then [ 1 ] else [])
      gray_net
  in
  Alcotest.(check bool) "gray stays dark" true (log_of res 2 = [])

let test_wake_schedule () =
  (* node 1 wakes at round 3: it must miss earlier broadcasts *)
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let wake = [| 1; 3 |] in
  let cfg =
    E.config ~wake ~stop:(Rn_sim.Engine.At_round 5) ~detector:(Detector.static det) dual
  in
  let res =
    E.run cfg (fun ctx ->
        let me = E.me ctx in
        if me = 0 then begin
          (* broadcast every round *)
          let heard = ref [] in
          for _ = 1 to 5 do
            ignore (E.sync ctx (Some 0));
            heard := E.round ctx :: !heard
          done;
          List.length !heard
        end
        else begin
          let got = ref 0 in
          for _ = 1 to 3 do
            match E.sync ctx None with E.Recv _ -> incr got | _ -> ()
          done;
          !got
        end)
  in
  (* woken at 3, node 1 syncs rounds 3,4,5: hears exactly 3 broadcasts *)
  Alcotest.check Alcotest.int "heard post-wake only" 3
    (match res.E.returns.(1) with Some g -> g | None -> -1)

let test_wake_invalid () =
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg = E.config ~wake:[| 0; 1 |] ~detector:(Detector.static det) dual in
  Alcotest.check_raises "wake < 1" (Invalid_argument "Engine.run: wake.(0) < 1") (fun () ->
      ignore (E.run cfg (fun _ -> ())))

let test_b_bits_enforced () =
  Alcotest.(check bool) "oversized message rejected" true
    (try
       ignore (scripted ~b_bits:8 ~rounds:1 ~sends:(fun v -> if v = 0 then [ 1 ] else []) path3);
       false
     with Invalid_argument _ -> true)

let test_output_semantics () =
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg = E.config ~detector:(Detector.static det) dual in
  let res =
    E.run cfg (fun ctx ->
        E.output ctx 1;
        E.output ctx 1 (* idempotent *))
  in
  Alcotest.(check bool) "outputs recorded" true (res.E.outputs = [| Some 1; Some 1 |]);
  let cfg2 = E.config ~detector:(Detector.static det) dual in
  Alcotest.(check bool) "conflicting output raises" true
    (try
       ignore
         (E.run cfg2 (fun ctx ->
              E.output ctx 1;
              E.output ctx 0));
       false
     with Invalid_argument _ -> true)

let test_stop_all_decided () =
  (* one process loops forever; stop must fire once outputs are set *)
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg =
    E.config ~stop:Rn_sim.Engine.All_decided ~max_rounds:10_000
      ~detector:(Detector.static det) dual
  in
  let res =
    E.run cfg (fun ctx ->
        if E.me ctx = 0 then begin
          E.idle ctx 3;
          E.output ctx 1;
          while true do
            E.idle ctx 1
          done
        end
        else E.output ctx 0)
  in
  Alcotest.(check bool) "stopped promptly" true (res.E.rounds <= 5 && not res.E.timed_out)

let test_timeout () =
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg =
    E.config ~stop:Rn_sim.Engine.All_decided ~max_rounds:50 ~detector:(Detector.static det)
      dual
  in
  let res =
    E.run cfg (fun ctx ->
        while true do
          E.idle ctx 1
        done)
  in
  Alcotest.(check bool) "timed out" true res.E.timed_out;
  Alcotest.check Alcotest.int "at cap" 50 res.E.rounds

let test_at_round_exact () =
  let res = scripted ~rounds:7 ~sends:(fun _ -> []) path3 in
  Alcotest.check Alcotest.int "exact rounds" 7 res.E.rounds

let test_local_round_counts () =
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg = E.config ~detector:(Detector.static det) dual in
  let res =
    E.run cfg (fun ctx ->
        Alcotest.check Alcotest.int "starts at 0" 0 (E.round ctx);
        E.idle ctx 4;
        E.round ctx)
  in
  Alcotest.(check bool) "counts syncs" true (res.E.returns = [| Some 4; Some 4 |])

exception Boom

let test_body_exception_propagates () =
  let dual = Dual.classic (Gen.path 2) in
  let det = Detector.perfect (Dual.g dual) in
  let cfg = E.config ~detector:(Detector.static det) dual in
  Alcotest.(check bool) "exception surfaces" true
    (try
       ignore
         (E.run cfg (fun ctx ->
              if E.me ctx = 1 then begin
                E.idle ctx 2;
                raise Boom
              end
              else E.idle ctx 5));
       false
     with Boom -> true)

let test_determinism () =
  let dual = gray_net in
  let run seed =
    let res =
      scripted ~adversary:(Adversary.bernoulli 0.5) ~seed ~rounds:50
        ~sends:(fun v -> if v = 0 then List.init 25 (fun i -> (2 * i) + 1) else [])
        dual
    in
    (res.E.stats, log_of res 2)
  in
  Alcotest.(check bool) "same seed same run" true (run 3 = run 3);
  Alcotest.(check bool) "different seed differs" true (run 3 <> run 4)

let test_stats_counts () =
  let res = scripted ~rounds:2 ~sends:(fun v -> if v = 1 then [ 1; 2 ] else []) path3 in
  Alcotest.check Alcotest.int "sends" 2 res.E.stats.sends;
  Alcotest.check Alcotest.int "deliveries" 4 res.E.stats.deliveries;
  Alcotest.check Alcotest.int "bits" 32 res.E.stats.bits_sent

let test_observer () =
  let seen = ref [] in
  let dual = path3 in
  let det = Detector.perfect (Dual.g dual) in
  let cfg =
    E.config
      ~observer:(fun v -> seen := (v.E.view_round, Array.to_list v.E.view_broadcasters) :: !seen)
      ~stop:(Rn_sim.Engine.At_round 2) ~detector:(Detector.static det) dual
  in
  ignore
    (E.run cfg (fun ctx ->
         let me = E.me ctx in
         ignore (E.sync ctx (if me = 1 then Some 1 else None));
         ignore (E.sync ctx None)));
  Alcotest.(check bool) "observer saw broadcaster" true
    (List.rev !seen = [ (1, [ 1 ]); (2, []) ])

(* Property: the engine's delivery matches an independent oracle on random
   graphs and random deterministic send schedules (silent adversary). *)
let prop_delivery_oracle =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* edges =
        list_size (int_range 0 12) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* schedule = list_size (int_range 0 10) (pair (int_range 0 (n - 1)) (int_range 1 5)) in
      return (n, List.filter (fun (u, v) -> u <> v) edges, schedule))
  in
  let print (n, edges, schedule) =
    Format.asprintf "n=%d edges=%a sched=%a" n
      Fmt.(Dump.list (Dump.pair int int))
      edges
      Fmt.(Dump.list (Dump.pair int int))
      schedule
  in
  QCheck.Test.make ~name:"delivery matches oracle" ~count:300 (QCheck.make ~print gen)
    (fun (n, edges, schedule) ->
      let g = Graph.of_edges n edges in
      let dual = Dual.classic g in
      let rounds = 5 in
      let sends v = List.filter_map (fun (u, r) -> if u = v then Some r else None) schedule in
      let res = scripted ~rounds ~sends dual in
      (* oracle *)
      let expected v =
        List.concat_map
          (fun r ->
            let broadcasters =
              List.init n Fun.id |> List.filter (fun u -> List.mem r (sends u))
            in
            if List.mem v broadcasters then [ (r, Mine) ]
            else begin
              match List.filter (fun u -> Graph.mem_edge g u v) broadcasters with
              | [ u ] -> [ (r, Got u) ]
              | _ -> []
            end)
          (List.init rounds (fun i -> i + 1))
      in
      List.for_all (fun v -> log_of res v = expected v) (List.init n Fun.id))

(* Same oracle over dual graphs with every gray edge forced active:
   delivery iff exactly one broadcaster among G'-neighbours. *)
let prop_delivery_oracle_gray =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 7 in
      let* edges =
        list_size (int_range 0 8) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* gray =
        list_size (int_range 0 8) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* schedule = list_size (int_range 0 8) (pair (int_range 0 (n - 1)) (int_range 1 4)) in
      let clean = List.filter (fun (u, v) -> u <> v) in
      return (n, clean edges, clean gray, schedule))
  in
  let print (n, edges, gray, schedule) =
    Format.asprintf "n=%d edges=%a gray=%a sched=%a" n
      Fmt.(Dump.list (Dump.pair int int))
      edges
      Fmt.(Dump.list (Dump.pair int int))
      gray
      Fmt.(Dump.list (Dump.pair int int))
      schedule
  in
  QCheck.Test.make ~name:"delivery matches oracle (all-gray duals)" ~count:300
    (QCheck.make ~print gen) (fun (n, edges, gray, schedule) ->
      let g = Graph.of_edges n edges in
      let dual = Dual.make ~g ~gray () in
      let g' = Dual.g' dual in
      let rounds = 4 in
      let sends v = List.filter_map (fun (u, r) -> if u = v then Some r else None) schedule in
      let res = scripted ~adversary:Adversary.all_gray ~rounds ~sends dual in
      let expected v =
        List.concat_map
          (fun r ->
            let broadcasters =
              List.init n Fun.id |> List.filter (fun u -> List.mem r (sends u))
            in
            if List.mem v broadcasters then [ (r, Mine) ]
            else begin
              match List.filter (fun u -> Graph.mem_edge g' u v) broadcasters with
              | [ u ] -> [ (r, Got u) ]
              | _ -> []
            end)
          (List.init rounds (fun i -> i + 1))
      in
      List.for_all (fun v -> log_of res v = expected v) (List.init n Fun.id))

let () =
  Alcotest.run "rn_sim"
    [
      ( "delivery",
        [
          Alcotest.test_case "solo delivery" `Quick test_solo_delivery;
          Alcotest.test_case "collision" `Quick test_collision;
          Alcotest.test_case "non-neighbour" `Quick test_non_neighbor;
          qtest prop_delivery_oracle;
          qtest prop_delivery_oracle_gray;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "gray silent" `Quick test_gray_silent;
          Alcotest.test_case "gray all" `Quick test_gray_all;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "spiteful" `Quick test_spiteful;
          Alcotest.test_case "jamming" `Quick test_jamming;
          Alcotest.test_case "jamming never helps" `Quick test_jamming_never_helps;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "wake schedule" `Quick test_wake_schedule;
          Alcotest.test_case "wake invalid" `Quick test_wake_invalid;
          Alcotest.test_case "b bits enforced" `Quick test_b_bits_enforced;
          Alcotest.test_case "output semantics" `Quick test_output_semantics;
          Alcotest.test_case "stop all-decided" `Quick test_stop_all_decided;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "at-round exact" `Quick test_at_round_exact;
          Alcotest.test_case "local round counts" `Quick test_local_round_counts;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "body exception propagates" `Quick test_body_exception_propagates;
          Alcotest.test_case "stats counts" `Quick test_stats_counts;
          Alcotest.test_case "observer" `Quick test_observer;
        ] );
    ]
