(* End-to-end tests of the banned-list CCDS algorithm (Section 5). *)

module R = Core.Radio
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module Ilog = Rn_util.Ilog

let qtest = QCheck_alcotest.to_alcotest

let run_ccds ?(adversary = Rn_sim.Adversary.bernoulli 0.5) ?(seed = 1) ?b_bits dual =
  let det = Detector.perfect (Dual.g dual) in
  let res = Core.Ccds.run ~seed ~adversary ?b_bits ~detector:(Detector.static det) dual in
  (res, det)

let check_solves ?adversary ?seed ?b_bits name dual =
  let res, det = run_ccds ?adversary ?seed ?b_bits dual in
  let rep = Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) res.R.outputs in
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " rep.violations)
    true (Verify.Ccds_check.ok rep);
  (res, det)

let test_clique () =
  let res, _ = check_solves "clique" (Dual.classic (Gen.clique 12)) in
  (* one MIS node dominates the clique; CCDS = that node *)
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.check Alcotest.int "singleton CCDS" 1 members

let test_path () =
  let res, _ = check_solves "path" (Dual.classic (Gen.path 16)) in
  (* a path's CCDS must span it: at least (n-2)/3 internal nodes *)
  let members = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 res.R.outputs in
  Alcotest.(check bool) "path CCDS spans" true (members >= 4)

let test_ring () = ignore (check_solves "ring" (Dual.classic (Gen.ring 15)))
let test_star () = ignore (check_solves "star" (Dual.classic (Gen.star 5)))

let test_geometric_seeds () =
  for seed = 1 to 4 do
    let dual = Rn_harness.Harness.geometric ~seed ~n:60 ~degree:10 () in
    ignore (check_solves ~seed (Printf.sprintf "geometric %d" seed) dual)
  done

let test_small_b () =
  let dual = Rn_harness.Harness.geometric ~seed:2 ~n:48 ~degree:10 () in
  let b = 8 * Ilog.log2_up 48 in
  ignore (check_solves ~b_bits:b "small b" dual)

let test_b_too_small_rejected () =
  let dual = Dual.classic (Gen.path 8) in
  Alcotest.(check bool) "tiny b rejected" true
    (try
       ignore (run_ccds ~b_bits:6 dual);
       false
     with Invalid_argument _ -> true)

let test_mis_subset_ccds () =
  let dual = Rn_harness.Harness.geometric ~seed:3 ~n:48 ~degree:9 () in
  let res, _ = run_ccds dual in
  Array.iteri
    (fun v outcome ->
      match outcome with
      | Some (o : Core.Ccds.outcome) ->
        if o.in_mis then begin
          Alcotest.(check bool) "MIS member in CCDS" true o.in_ccds;
          Alcotest.(check bool) "MIS member output 1" true (res.R.outputs.(v) = Some 1)
        end;
        Alcotest.(check bool) "in_ccds iff output 1" true
          (o.in_ccds = (res.R.outputs.(v) = Some 1))
      | None -> Alcotest.fail "no return")
    res.R.returns

let test_discovered_are_mis () =
  let dual = Rn_harness.Harness.geometric ~seed:4 ~n:48 ~degree:9 () in
  let res, _ = run_ccds dual in
  let in_mis = Array.map (function Some (o : Core.Ccds.outcome) -> o.in_mis | None -> false) res.R.returns in
  Array.iter
    (function
      | Some (o : Core.Ccds.outcome) ->
        List.iter
          (fun d ->
            Alcotest.(check bool) (Printf.sprintf "discovered %d is MIS" d) true in_mis.(d))
          o.discovered
      | None -> ())
    res.R.returns

let test_discoveries_within_3_hops () =
  (* Claim 2 of Theorem 5.3: discovered MIS processes are within 3 hops *)
  let dual = Rn_harness.Harness.geometric ~seed:5 ~n:48 ~degree:9 () in
  let res, _ = run_ccds dual in
  let g = Dual.g dual in
  Array.iteri
    (fun v outcome ->
      match outcome with
      | Some (o : Core.Ccds.outcome) when o.in_mis ->
        let dist = Rn_graph.Algo.bfs_dist g v in
        List.iter
          (fun d ->
            Alcotest.(check bool)
              (Printf.sprintf "%d discovered %d within 3 hops" v d)
              true
              (dist.(d) <= 3))
          o.discovered
      | _ -> ())
    res.R.returns

let test_fixed_schedule () =
  let dual = Rn_harness.Harness.geometric ~seed:6 ~n:40 ~degree:8 () in
  let a, _ = run_ccds ~seed:11 dual in
  let b, _ = run_ccds ~seed:12 dual in
  Alcotest.check Alcotest.int "schedule independent of coin flips" a.R.rounds b.R.rounds

let test_more_chunks_with_smaller_b () =
  let dual = Rn_harness.Harness.geometric ~seed:7 ~n:48 ~degree:12 () in
  let small, _ = run_ccds ~b_bits:(8 * Ilog.log2_up 48) dual in
  let large, _ = run_ccds dual in
  Alcotest.(check bool) "small b is slower" true (small.R.rounds > large.R.rounds)

let test_adversaries () =
  let dual = Rn_harness.Harness.geometric ~seed:8 ~n:48 ~degree:9 () in
  List.iter
    (fun (name, adversary) -> ignore (check_solves ~adversary name dual))
    [
      ("silent", Rn_sim.Adversary.silent);
      ("bernoulli 0.5", Rn_sim.Adversary.bernoulli 0.5);
      ("harassing 0.5", Rn_sim.Adversary.harassing 0.5);
    ]

let test_grid () =
  let dual = Gen.grid_jitter ~rng:(Rn_util.Rng.create 9) ~rows:6 ~cols:6 () in
  ignore (check_solves "grid" dual)

let prop_random_geometric_solves =
  QCheck.Test.make ~name:"CCDS solves on random geometric instances" ~count:5
    (QCheck.int_range 10 200) (fun seed ->
      let dual = Rn_harness.Harness.geometric ~seed ~n:40 ~degree:8 () in
      let res, det = run_ccds ~seed dual in
      Verify.Ccds_check.ok
        (Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) res.R.outputs))

let () =
  Alcotest.run "ccds"
    [
      ( "topologies",
        [
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Slow test_grid;
          Alcotest.test_case "geometric seeds" `Slow test_geometric_seeds;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "small b solves" `Slow test_small_b;
          Alcotest.test_case "tiny b rejected" `Quick test_b_too_small_rejected;
          Alcotest.test_case "MIS subset of CCDS" `Quick test_mis_subset_ccds;
          Alcotest.test_case "discovered are MIS" `Quick test_discovered_are_mis;
          Alcotest.test_case "discoveries within 3 hops" `Quick
            test_discoveries_within_3_hops;
          Alcotest.test_case "fixed schedule" `Quick test_fixed_schedule;
          Alcotest.test_case "smaller b costs rounds" `Quick test_more_chunks_with_smaller_b;
          Alcotest.test_case "adversaries" `Slow test_adversaries;
          qtest prop_random_geometric_solves;
        ] );
    ]
