(* Tests for rn_graph: graphs, algorithms, dual graphs and generators. *)

module Graph = Rn_graph.Graph
module Algo = Rn_graph.Algo
module Dual = Rn_graph.Dual
module Gen = Rn_graph.Gen
module Rng = Rn_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Random edge lists over a small node range. *)
let arb_edges n =
  QCheck.(
    list_of_size (Gen.int_range 0 60)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    |> map (List.filter (fun (u, v) -> u <> v)))

(* ---------------- Graph ---------------- *)

let test_graph_dedup () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 0); (0, 1); (2, 3) ] in
  Alcotest.check Alcotest.int "edge count" 2 (Graph.edge_count g);
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "symmetric" true (Graph.mem_edge g 1 0)

let test_graph_errors () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_graph_neighbors_sorted () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array Alcotest.int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2);
  Alcotest.check Alcotest.int "degree" 4 (Graph.degree g 2);
  Alcotest.check Alcotest.int "max degree" 4 (Graph.max_degree g)

let prop_mem_edge_consistent =
  QCheck.Test.make ~name:"mem_edge matches edge list" ~count:200 (arb_edges 12)
    (fun edges ->
      let g = Graph.of_edges 12 edges in
      let canon (u, v) = if u < v then (u, v) else (v, u) in
      let set = List.sort_uniq compare (List.map canon edges) in
      List.for_all (fun (u, v) -> Graph.mem_edge g u v) set
      && List.length (Graph.edges g) = List.length set)

let prop_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2m" ~count:200 (arb_edges 12) (fun edges ->
      let g = Graph.of_edges 12 edges in
      Graph.fold_nodes (fun v acc -> acc + Graph.degree g v) g 0
      = 2 * Graph.edge_count g)

let test_graph_union () =
  let a = Graph.of_edges 4 [ (0, 1) ] and b = Graph.of_edges 4 [ (1, 2) ] in
  let u = Graph.union a b in
  Alcotest.check Alcotest.int "union edges" 2 (Graph.edge_count u);
  Alcotest.(check bool) "subgraph a" true (Graph.is_subgraph a u);
  Alcotest.(check bool) "subgraph b" true (Graph.is_subgraph b u);
  Alcotest.(check bool) "not subgraph u of a" false (Graph.is_subgraph u a)

let test_graph_induced () =
  let g = Gen.clique 5 in
  let sub = Graph.induced g (fun v -> v < 3) in
  Alcotest.check Alcotest.int "induced K3" 3 (Graph.edge_count sub)

(* ---------------- Algo ---------------- *)

let test_bfs_path () =
  let g = Gen.path 5 in
  let d = Algo.bfs_dist g 0 in
  Alcotest.(check (array Alcotest.int)) "distances" [| 0; 1; 2; 3; 4 |] d;
  Alcotest.check Alcotest.int "diameter" 4 (Algo.diameter g);
  Alcotest.check Alcotest.int "eccentricity mid" 2 (Algo.eccentricity g 2)

let test_bfs_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Algo.bfs_dist g 0 in
  Alcotest.(check bool) "unreachable" true (d.(3) = Algo.unreachable);
  Alcotest.(check bool) "not connected" true (not (Algo.is_connected g));
  Alcotest.check Alcotest.int "components" 3 (Algo.connected_components g)

let test_ring_diameter () =
  Alcotest.check Alcotest.int "ring 8 diameter" 4 (Algo.diameter (Gen.ring 8));
  Alcotest.check Alcotest.int "ring 9 diameter" 4 (Algo.diameter (Gen.ring 9))

let test_within_hops () =
  let g = Gen.path 6 in
  Alcotest.(check (list Alcotest.int)) "2 hops of node 0" [ 1; 2 ] (Algo.within_hops g 0 2);
  Alcotest.(check (list Alcotest.int)) "1 hop of node 3" [ 2; 4 ] (Algo.within_hops g 3 1)

let test_connected_subset () =
  let g = Gen.path 5 in
  Alcotest.(check bool) "contiguous" true (Algo.is_connected_subset g [ 1; 2; 3 ]);
  Alcotest.(check bool) "gap" false (Algo.is_connected_subset g [ 0; 2 ]);
  Alcotest.(check bool) "empty" true (Algo.is_connected_subset g []);
  Alcotest.(check bool) "singleton" true (Algo.is_connected_subset g [ 4 ])

let prop_shortest_path_valid =
  QCheck.Test.make ~name:"shortest_path is a valid shortest path" ~count:200
    (arb_edges 10) (fun edges ->
      let g = Graph.of_edges 10 edges in
      let d = Algo.bfs_dist g 0 in
      List.for_all
        (fun dst ->
          match Algo.shortest_path g 0 dst with
          | None -> d.(dst) = Algo.unreachable
          | Some path ->
            let rec ok = function
              | a :: (b :: _ as rest) -> Graph.mem_edge g a b && ok rest
              | [ last ] -> last = dst
              | [] -> false
            in
            List.hd path = 0 && ok path && List.length path = d.(dst) + 1)
        (List.init 10 Fun.id))

let test_independent_set () =
  let g = Gen.path 5 in
  Alcotest.(check bool) "alternating" true (Algo.is_independent_set g [ 0; 2; 4 ]);
  Alcotest.(check bool) "adjacent" false (Algo.is_independent_set g [ 0; 1 ])

(* ---------------- Gen ---------------- *)

let test_shapes () =
  Alcotest.check Alcotest.int "clique edges" 10 (Graph.edge_count (Gen.clique 5));
  Alcotest.check Alcotest.int "path edges" 4 (Graph.edge_count (Gen.path 5));
  Alcotest.check Alcotest.int "ring edges" 5 (Graph.edge_count (Gen.ring 5));
  Alcotest.check Alcotest.int "star edges" 4 (Graph.edge_count (Gen.star 5));
  Alcotest.check Alcotest.int "star centre degree" 4 (Graph.degree (Gen.star 5) 0)

let test_geometric_instance () =
  let rng = Rng.create 8 in
  let spec = Gen.default_spec ~n:60 ~side:(Gen.side_for_degree ~n:60 ~target_degree:10) () in
  let dual = Gen.geometric ~rng spec in
  Alcotest.(check bool) "G connected" true (Algo.is_connected (Dual.g dual));
  Alcotest.(check bool) "E subset E'" true (Graph.is_subgraph (Dual.g dual) (Dual.g' dual));
  let pos = match Dual.positions dual with Some p -> p | None -> Alcotest.fail "no positions" in
  (* spot-check the geometric constraints *)
  let n = Dual.n dual in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Rn_geom.Point.dist pos.(u) pos.(v) in
      if d <= 1.0 then
        Alcotest.(check bool) "unit pair reliable" true (Graph.mem_edge (Dual.g dual) u v);
      if Graph.mem_edge (Dual.g' dual) u v then
        Alcotest.(check bool) "G' edge within d" true (d <= spec.d +. 1e-9)
    done
  done

let test_geometric_deterministic () =
  let mk seed =
    let rng = Rng.create seed in
    Gen.geometric ~rng (Gen.default_spec ~n:40 ~side:4.0 ())
  in
  let a = mk 5 and b = mk 5 in
  Alcotest.(check bool) "same seed same graph" true
    (Graph.edges (Dual.g a) = Graph.edges (Dual.g b))

let test_grid_jitter_connected () =
  let rng = Rng.create 2 in
  let dual = Gen.grid_jitter ~rng ~rows:6 ~cols:7 () in
  Alcotest.check Alcotest.int "node count" 42 (Dual.n dual);
  Alcotest.(check bool) "connected" true (Algo.is_connected (Dual.g dual))

let test_bridge_cliques () =
  let beta = 5 in
  let dual = Gen.bridge_cliques ~beta () in
  let g = Dual.g dual in
  Alcotest.check Alcotest.int "n" 10 (Dual.n dual);
  (* two K5 plus the bridge *)
  Alcotest.check Alcotest.int "edges" ((2 * 10) + 1) (Graph.edge_count g);
  Alcotest.(check bool) "bridge edge" true (Graph.mem_edge g 0 beta);
  Alcotest.(check bool) "no other cross edge" false (Graph.mem_edge g 1 (beta + 1));
  Alcotest.check Alcotest.int "gray count" ((beta * beta) - 1) (Dual.gray_count dual);
  Alcotest.(check bool) "G' complete" true
    (Graph.edge_count (Dual.g' dual) = 10 * 9 / 2);
  Alcotest.(check bool) "connected" true (Algo.is_connected g)

let test_bridge_custom_endpoints () =
  let dual = Gen.bridge_cliques ~beta:4 ~bridge_a:2 ~bridge_b:6 () in
  Alcotest.(check bool) "custom bridge" true (Graph.mem_edge (Dual.g dual) 2 6);
  Alcotest.(check bool) "default bridge absent" false (Graph.mem_edge (Dual.g dual) 0 4)

let test_clusters_generator () =
  let rng = Rng.create 3 in
  let dual = Gen.clusters ~rng ~clusters:4 ~per_cluster:10 () in
  Alcotest.(check bool) "connected" true (Algo.is_connected (Dual.g dual));
  Alcotest.(check bool) "E subset E'" true (Graph.is_subgraph (Dual.g dual) (Dual.g' dual));
  Alcotest.(check bool) "has positions" true (Dual.positions dual <> None);
  Alcotest.(check bool) "at least the cluster members" true (Dual.n dual >= 40)

let test_side_for_degree () =
  Alcotest.(check bool) "larger degree smaller box" true
    (Gen.side_for_degree ~n:100 ~target_degree:20
    < Gen.side_for_degree ~n:100 ~target_degree:10)

(* ---------------- Dual ---------------- *)

let test_dual_classic () =
  let d = Dual.classic (Gen.ring 6) in
  Alcotest.check Alcotest.int "no gray" 0 (Dual.gray_count d);
  Alcotest.(check bool) "G = G'" true
    (Graph.edges (Dual.g d) = Graph.edges (Dual.g' d))

let test_dual_gray_adj () =
  let g = Gen.path 4 in
  let dual = Dual.make ~g ~gray:[ (0, 2); (1, 3) ] () in
  Alcotest.check Alcotest.int "gray count" 2 (Dual.gray_count dual);
  (* each gray edge indexed consistently from both endpoints *)
  Array.iteri
    (fun e (u, v) ->
      let has node other =
        Array.exists (fun (w, i) -> w = other && i = e) (Dual.gray_adj dual node)
      in
      Alcotest.(check bool) "endpoint u sees e" true (has u v);
      Alcotest.(check bool) "endpoint v sees e" true (has v u))
    (Dual.gray_edges dual)

let test_dual_gray_dedup () =
  let g = Gen.path 4 in
  (* gray edges already in G are dropped; duplicates collapse *)
  let dual = Dual.make ~g ~gray:[ (0, 1); (0, 2); (2, 0) ] () in
  Alcotest.check Alcotest.int "gray deduped" 1 (Dual.gray_count dual)

let test_dual_geometry_validation () =
  let pos = [| Rn_geom.Point.make 0.0 0.0; Rn_geom.Point.make 0.5 0.0 |] in
  (* unit-distance pair must be a reliable edge *)
  Alcotest.check_raises "missing unit edge"
    (Invalid_argument "Dual.make: unit-distance pair missing from E") (fun () ->
      ignore (Dual.make ~pos ~g:(Graph.of_edges 2 []) ~gray:[] ()));
  let pos2 = [| Rn_geom.Point.make 0.0 0.0; Rn_geom.Point.make 5.0 0.0 |] in
  Alcotest.check_raises "edge too long" (Invalid_argument "Dual.make: G' edge longer than d")
    (fun () -> ignore (Dual.make ~pos:pos2 ~g:(Graph.of_edges 2 [ (0, 1) ]) ~gray:[] ()))

let () =
  Alcotest.run "rn_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "dedup" `Quick test_graph_dedup;
          Alcotest.test_case "errors" `Quick test_graph_errors;
          Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
          Alcotest.test_case "union/subgraph" `Quick test_graph_union;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          qtest prop_mem_edge_consistent;
          qtest prop_degree_sum;
        ] );
      ( "algo",
        [
          Alcotest.test_case "bfs on path" `Quick test_bfs_path;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "ring diameter" `Quick test_ring_diameter;
          Alcotest.test_case "within hops" `Quick test_within_hops;
          Alcotest.test_case "connected subset" `Quick test_connected_subset;
          Alcotest.test_case "independent set" `Quick test_independent_set;
          qtest prop_shortest_path_valid;
        ] );
      ( "gen",
        [
          Alcotest.test_case "basic shapes" `Quick test_shapes;
          Alcotest.test_case "geometric constraints" `Quick test_geometric_instance;
          Alcotest.test_case "geometric deterministic" `Quick test_geometric_deterministic;
          Alcotest.test_case "grid jitter connected" `Quick test_grid_jitter_connected;
          Alcotest.test_case "bridge cliques" `Quick test_bridge_cliques;
          Alcotest.test_case "bridge custom endpoints" `Quick test_bridge_custom_endpoints;
          Alcotest.test_case "clusters generator" `Quick test_clusters_generator;
          Alcotest.test_case "side for degree" `Quick test_side_for_degree;
        ] );
      ( "dual",
        [
          Alcotest.test_case "classic" `Quick test_dual_classic;
          Alcotest.test_case "gray adjacency" `Quick test_dual_gray_adj;
          Alcotest.test_case "gray dedup" `Quick test_dual_gray_dedup;
          Alcotest.test_case "geometry validation" `Quick test_dual_geometry_validation;
        ] );
    ]
