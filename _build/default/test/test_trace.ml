(* Tests for the engine trace recorder. *)

module Trace = Rn_sim.Trace

let feed t ~round ~bcast ~outputs =
  Trace.observe t ~view_round:round ~view_broadcasters:bcast
    ~view_decided:(Array.map (fun _ -> None) outputs)
    ~view_outputs:outputs

let test_counts () =
  let t = Trace.create () in
  feed t ~round:1 ~bcast:[| 0; 1 |] ~outputs:[| None; None |];
  feed t ~round:2 ~bcast:[||] ~outputs:[| None; None |];
  feed t ~round:3 ~bcast:[| 1 |] ~outputs:[| None; None |];
  Alcotest.(check (array Alcotest.int)) "counts" [| 2; 0; 1 |] (Trace.broadcast_counts t)

let test_first_decisions_only () =
  let t = Trace.create () in
  feed t ~round:1 ~bcast:[||] ~outputs:[| Some 1; None |];
  feed t ~round:2 ~bcast:[||] ~outputs:[| Some 1; Some 0 |];
  feed t ~round:3 ~bcast:[||] ~outputs:[| Some 1; Some 0 |];
  Alcotest.(check (list (triple Alcotest.int Alcotest.int Alcotest.int)))
    "decisions"
    [ (1, 0, 1); (2, 1, 0) ]
    (Trace.decisions t)

let test_activity_profile () =
  let t = Trace.create () in
  for r = 1 to 8 do
    feed t ~round:r ~bcast:(Array.make (if r <= 4 then 4 else 0) 0)
      ~outputs:[| None |]
  done;
  let p = Trace.activity_profile t ~buckets:2 in
  Alcotest.check (Alcotest.float 1e-9) "busy half" 4.0 p.(0);
  Alcotest.check (Alcotest.float 1e-9) "quiet half" 0.0 p.(1)

let test_sparkline () =
  let t = Trace.create () in
  for r = 1 to 10 do
    feed t ~round:r ~bcast:(Array.make r 0) ~outputs:[| None |]
  done;
  let s = Trace.sparkline t ~buckets:5 in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  (* monotone activity gives a full final bucket *)
  Alcotest.(check bool) "ends full" true
    (String.length s >= 3
    && String.sub s (String.length s - 3) 3 = "\xe2\x96\x88" (* █ *))

let test_empty () =
  let t = Trace.create () in
  Alcotest.(check string) "empty sparkline" "" (Trace.sparkline t ~buckets:10);
  Alcotest.(check bool) "no summary" true (Trace.decision_summary t = None)

let test_with_engine () =
  (* end-to-end: trace an actual MIS run *)
  let dual = Rn_graph.Dual.classic (Rn_graph.Gen.ring 16) in
  let det = Rn_detect.Detector.perfect (Rn_graph.Dual.g dual) in
  let t = Trace.create () in
  let module R = Core.Radio in
  let observer (v : R.view) =
    Trace.observe t ~view_round:v.R.view_round ~view_broadcasters:v.R.view_broadcasters
      ~view_decided:v.R.view_decided ~view_outputs:v.R.view_outputs
  in
  let cfg = R.config ~seed:1 ~observer ~detector:(Rn_detect.Detector.static det) dual in
  let res =
    R.run cfg (fun ctx ->
        Core.Mis.body ~on_decide:(fun o -> R.output ctx o) Core.Params.default ctx)
  in
  Alcotest.check Alcotest.int "rounds observed" res.R.rounds
    (Array.length (Trace.broadcast_counts t));
  Alcotest.check Alcotest.int "all decisions observed" 16
    (List.length (Trace.decisions t));
  match Trace.decision_summary t with
  | Some s -> Alcotest.(check bool) "summary sane" true (s.count = 16 && s.min >= 1.0)
  | None -> Alcotest.fail "expected summary"

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "first decisions only" `Quick test_first_decisions_only;
          Alcotest.test_case "activity profile" `Quick test_activity_profile;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "with engine" `Quick test_with_engine;
        ] );
    ]
