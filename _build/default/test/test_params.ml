(* Params validation and the documented defaults. *)

let test_default_valid () = Core.Params.validate Core.Params.default
let test_fast_valid () = Core.Params.validate Core.Params.fast

let test_invalid () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "rejected" true
        (try
           Core.Params.validate p;
           false
         with Invalid_argument _ -> true))
    [
      { Core.Params.default with c_phase = 0 };
      { Core.Params.default with c_epochs = -1 };
      { Core.Params.default with c_bb = 0 };
      { Core.Params.default with bb_cap = -1 };
      { Core.Params.default with c_dd = 0 };
      { Core.Params.default with delta_bb = -1 };
      { Core.Params.default with search_epochs = 0 };
      { Core.Params.default with c_listen = 0 };
      { Core.Params.default with max_async_epochs = 0 };
    ]

(* The documented tuning claim: the defaults solve MIS and CCDS across a
   seed sweep on a moderate instance (this is the pinning test DESIGN.md
   points at). *)
let test_defaults_solve () =
  for seed = 1 to 3 do
    let dual = Rn_harness.Harness.geometric ~seed ~n:64 ~degree:10 () in
    let det = Rn_detect.Detector.perfect (Rn_graph.Dual.g dual) in
    let res =
      Core.Ccds.run ~seed
        ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
        ~detector:(Rn_detect.Detector.static det) dual
    in
    let rep =
      Rn_verify.Verify.Ccds_check.check
        ~h:(Rn_detect.Detector.h_graph det)
        ~g':(Rn_graph.Dual.g' dual) res.Core.Radio.outputs
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d solves" seed)
      true
      (Rn_verify.Verify.Ccds_check.ok rep)
  done

let test_schedule_scaling () =
  (* phase lengths follow the documented formulas *)
  let p = Core.Params.default in
  let n = 256 in
  let logn = Rn_util.Ilog.log2_up n in
  Alcotest.(check Alcotest.int)
    "mis schedule"
    (p.c_epochs * logn * (logn + 1) * (p.c_phase * logn))
    (Core.Mis.schedule_rounds p ~n);
  Alcotest.(check Alcotest.int)
    "bb rounds"
    (p.c_bb * (1 lsl p.bb_cap) * logn)
    (Core.Subroutines.bb_rounds p ~n ~delta:99);
  Alcotest.(check Alcotest.int)
    "dd rounds"
    (logn * ((p.c_dd * logn) + Core.Subroutines.bb_rounds p ~n ~delta:p.delta_bb))
    (Core.Subroutines.directed_decay_rounds p ~n)

let () =
  Alcotest.run "params"
    [
      ( "params",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "fast valid" `Quick test_fast_valid;
          Alcotest.test_case "invalid rejected" `Quick test_invalid;
          Alcotest.test_case "schedule formulas" `Quick test_schedule_scaling;
          Alcotest.test_case "defaults solve (pinned seeds)" `Slow test_defaults_solve;
        ] );
    ]
