(* Sensor-network backbone: the motivating workload from the paper's
   introduction.  A CCDS gives a routing backbone; disseminating data over
   the backbone instead of flooding the whole network cuts transmissions
   while still reaching everyone, and the deterministic round-robin
   broadcast of the paper's reference [5] shows the
   unreliability-proof-but-slow end of the spectrum.

   Run with:  dune exec examples/sensor_backbone.exe *)

module Rng = Rn_util.Rng
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module B = Rn_broadcast.Broadcast
module R = Core.Radio

let () =
  let rng = Rng.create 314 in
  let n = 150 in
  let spec = Gen.default_spec ~n ~side:(Gen.side_for_degree ~n ~target_degree:14) () in
  let dual = Gen.geometric ~rng spec in
  Format.printf "sensor field: %a@." Dual.pp dual;

  (* Build the backbone once. *)
  let det = Detector.perfect (Dual.g dual) in
  let ccds =
    Core.Ccds.run ~seed:9
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det) dual
  in
  let in_backbone = Array.map (fun o -> o = Some 1) ccds.R.outputs in
  let backbone_size = Array.fold_left (fun c b -> if b then c + 1 else c) 0 in_backbone in
  Printf.printf "backbone built in %d rounds: %d of %d nodes\n" ccds.R.rounds backbone_size n;

  (* Routing quality of the backbone. *)
  let members = ref [] in
  Array.iteri (fun v b -> if b then members := v :: !members) in_backbone;
  let stretch =
    Rn_verify.Verify.Stretch.measure
      ~sample:(Rng.create 4, 300)
      ~h:(Detector.h_graph det) ~members:!members ()
  in
  Printf.printf "routing stretch via backbone: max %.2f, mean %.2f (%d pairs)\n"
    stretch.max_stretch stretch.mean_stretch stretch.pairs;

  (* Disseminate a reading from node 0 under an active adversary. *)
  let adversary = Rn_sim.Adversary.bernoulli 0.5 in
  let rounds = 400 in
  let report name (r : B.result) =
    Printf.printf "%-14s reached %3d/%d nodes with %5d transmissions (%d bits)\n" name
      r.coverage n r.sends r.bits_sent
  in
  let flood = B.run ~adversary ~seed:21 ~protocol:(B.Flood 0.1) ~source:0 ~rounds dual in
  report "flooding:" flood;
  let bb =
    B.run ~adversary ~seed:21
      ~protocol:(B.Backbone { relay = (fun v -> in_backbone.(v)); p = 0.1 })
      ~source:0 ~rounds dual
  in
  report "backbone:" bb;
  let rr_budget = B.round_robin_budget dual ~source:0 in
  let rr = B.run ~adversary ~seed:21 ~protocol:B.Round_robin ~source:0 ~rounds:rr_budget dual in
  report "round-robin:" rr;
  if bb.sends < flood.sends && B.full_coverage bb then
    Printf.printf "backbone saves %.0f%% of transmissions at full coverage\n"
      (100.0 *. (1.0 -. (float_of_int bb.sends /. float_of_int flood.sends)))
