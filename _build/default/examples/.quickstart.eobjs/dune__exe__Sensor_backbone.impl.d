examples/sensor_backbone.ml: Array Core Format Printf Rn_broadcast Rn_detect Rn_graph Rn_sim Rn_util Rn_verify
