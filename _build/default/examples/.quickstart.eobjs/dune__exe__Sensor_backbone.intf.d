examples/sensor_backbone.mli:
