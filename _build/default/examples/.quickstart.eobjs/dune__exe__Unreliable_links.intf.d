examples/unreliable_links.mli:
