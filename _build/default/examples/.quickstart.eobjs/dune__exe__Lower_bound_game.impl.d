examples/lower_bound_game.ml: List Printf Rn_games Rn_util String
