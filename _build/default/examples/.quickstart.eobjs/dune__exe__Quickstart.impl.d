examples/quickstart.ml: Array Core Format List Printf Rn_detect Rn_graph Rn_sim Rn_util Rn_verify Seq String
