examples/quickstart.mli:
