examples/dynamic_network.mli:
