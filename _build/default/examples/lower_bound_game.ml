(* The Section 7 lower bound, played out:

   1. the beta-single hitting game — no guessing automaton beats Theta(beta);
   2. players built from our tau=1 CCDS algorithm via the Lemma 7.2
      reduction solve the double hitting game, in rounds growing with beta;
   3. the Lemma 7.3 double-to-single transformation, run concretely on a
      pair of sweep players.

   Run with:  dune exec examples/lower_bound_game.exe *)

module Rng = Rn_util.Rng
module Single = Rn_games.Single_game
module Double = Rn_games.Double_game
module Reduction = Rn_games.Reduction

let () =
  let rng = Rng.create 3 in
  print_endline "-- 1. single hitting game: mean rounds to hit the target --";
  List.iter
    (fun beta ->
      let opt = Single.mean_rounds rng Permutation ~beta ~samples:400 in
      let mem = Single.mean_rounds rng Memoryless ~beta ~samples:400 in
      Printf.printf "  beta=%4d   optimal=%7.1f   memoryless=%7.1f\n" beta opt mem)
    [ 16; 64; 256 ];
  print_endline "  (both grow linearly: Omega(beta) is unavoidable)";

  print_endline "\n-- 2. double hitting game via the CCDS reduction (Lemma 7.2) --";
  List.iter
    (fun beta ->
      let pa, pb = Reduction.ccds_players ~beta () in
      let worst, unsolved = Double.worst_case ~pa ~pb ~beta ~seed:1 in
      Printf.printf "  beta=%2d   worst-pair rounds=%6d   unsolved pairs=%d\n" beta worst
        unsolved)
    [ 4; 8 ];

  print_endline "\n-- 3. the bridge network itself (tau=1 CCDS, spiteful adversary) --";
  List.iter
    (fun beta ->
      let r = Reduction.bridge_run ~beta ~seed:2 () in
      Printf.printf "  Delta=%3d   rounds=%6d   solved=%b\n" beta r.rounds r.solved)
    [ 8; 16; 32 ];

  print_endline "\n-- 4. Lemma 7.3: double-to-single transformation (sweep players) --";
  let beta2 = 16 in
  let pa, pb = Double.sweep_players ~beta:beta2 in
  let automaton = Double.double_to_single ~pa ~pb ~beta2 ~rounds:beta2 ~samples:4 ~seed:5 in
  let beta = beta2 / 2 in
  let hits =
    List.init beta (fun t ->
        match Double.play_single automaton ~target:(t + 1) ~seed:9 with
        | Some r -> r
        | None -> -1)
  in
  Printf.printf "  constructed single-game automaton for beta=%d; hit rounds per target: %s\n"
    beta
    (String.concat " " (List.map string_of_int hits));
  if List.for_all (fun r -> r > 0) hits then
    print_endline "  every target hit: the transformation preserves correctness"
