(* A long-lived network whose link quality changes: a link detector that
   starts noisy (misclassifying two unreliable links per node) and
   stabilises mid-execution.  The continuous CCDS of Section 8 reruns the
   one-shot algorithm every delta_CCDS rounds and swaps structures
   atomically; within two periods of stabilisation the installed structure
   is a valid CCDS again (Theorem 8.1).

   Run with:  dune exec examples/dynamic_network.exe *)

module Rng = Rn_util.Rng
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio

let () =
  let rng = Rng.create 12 in
  let n = 72 in
  let spec = Gen.default_spec ~n ~side:(Gen.side_for_degree ~n ~target_degree:10) () in
  let dual = Gen.geometric ~rng spec in
  Format.printf "network: %a@." Dual.pp dual;

  let stable = Detector.perfect (Dual.g dual) in
  let noisy = Detector.tau_complete ~rng:(Rng.create 77) ~tau:2 dual in

  (* Probe one run to learn delta_CCDS, then stabilise mid-second-period. *)
  let probe = Core.Ccds.run ~seed:1 ~detector:(Detector.static stable) dual in
  let period = probe.R.rounds in
  let stab = period + (period / 2) in
  Printf.printf "delta_CCDS = %d rounds; detector stabilises at round %d\n" period stab;

  let dyn = Detector.switching ~before:noisy ~after:stable ~round:stab in
  let result =
    Core.Continuous.run ~seed:5
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:dyn ~iterations:5 dual
  in
  let h = Detector.h_graph stable in
  List.iter
    (fun (it : Core.Continuous.iteration) ->
      let rep = Verify.Ccds_check.check ~h ~g':(Dual.g' dual) it.outputs in
      Printf.printf
        "iteration %d (rounds %6d-%6d): %s against the stable topology (size %d)\n" it.index
        it.start_round it.end_round
        (if Verify.Ccds_check.ok rep then "valid  " else "invalid")
        rep.size)
    result.iterations;
  Printf.printf "Theorem 8.1 deadline: stabilisation + 2*delta = round %d\n"
    (stab + (2 * period))
