(* Quickstart: build a CCDS over a random geometric dual graph network.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Rn_util.Rng
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio

let () =
  (* 1. A network: 100 nodes in the plane, reliable links at distance <= 1,
     unreliable (gray) links up to distance 2 that an adversary toggles. *)
  let rng = Rng.create 2026 in
  let spec =
    Gen.default_spec ~n:100 ~side:(Gen.side_for_degree ~n:100 ~target_degree:12) ()
  in
  let dual = Gen.geometric ~rng spec in
  Format.printf "network: %a, Delta(G) = %d, Delta(G') = %d@." Dual.pp dual
    (Dual.max_degree_g dual) (Dual.max_degree_g' dual);

  (* 2. A 0-complete link detector: every process knows exactly which of
     its neighbours are reliable. *)
  let det = Detector.perfect (Dual.g dual) in

  (* 3. Run the banned-list CCDS algorithm (Section 5 of the paper) under
     an adversary that flips every gray link on or off each round. *)
  let res =
    Core.Ccds.run ~seed:7
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det) dual
  in
  Printf.printf "finished in %d rounds (%d messages, %d collisions)\n" res.R.rounds
    res.R.stats.sends res.R.stats.collisions;

  (* 4. Inspect and verify the structure. *)
  let members =
    res.R.outputs |> Array.to_seqi
    |> Seq.filter_map (fun (v, o) -> if o = Some 1 then Some v else None)
    |> List.of_seq
  in
  Printf.printf "CCDS members (%d of %d): %s\n" (List.length members)
    (Array.length res.R.outputs)
    (String.concat " " (List.map string_of_int members));
  let report =
    Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) res.R.outputs
  in
  Printf.printf
    "verified: termination=%b connectivity=%b domination=%b max-CCDS-neighbours=%d\n"
    report.termination report.connectivity report.domination report.max_neighbors_g';
  if Verify.Ccds_check.ok report then print_endline "CCDS OK"
  else begin
    print_endline "CCDS INVALID:";
    List.iter (fun v -> Printf.printf "  %s\n" v) report.violations
  end
