(* What unreliable links and imperfect link detectors do to structure
   building: the same network under increasingly hostile gray-edge
   policies, with 0-complete and tau-complete detectors.

   Run with:  dune exec examples/unreliable_links.exe *)

module Rng = Rn_util.Rng
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module Table = Rn_util.Table
module R = Core.Radio

let () =
  let rng = Rng.create 99 in
  let n = 80 in
  let spec = Gen.default_spec ~n ~side:(Gen.side_for_degree ~n ~target_degree:10) () in
  let dual = Gen.geometric ~rng spec in
  Format.printf "network: %a (gray links are the unreliable ones)@." Dual.pp dual;

  let t = Table.create [ "detector"; "adversary"; "algorithm"; "rounds"; "valid"; "size" ] in
  let record ~det_name ~adv_name ~algo_name ~det ~rounds outputs =
    let rep = Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) outputs in
    Table.add_row t
      [
        det_name;
        adv_name;
        algo_name;
        Table.cell_int rounds;
        (if Verify.Ccds_check.ok rep then "yes" else "NO");
        Table.cell_int rep.size;
      ]
  in
  let adversaries =
    [ ("silent", Rn_sim.Adversary.silent); ("bernoulli 0.5", Rn_sim.Adversary.bernoulli 0.5) ]
  in
  (* 0-complete detector: the banned-list algorithm applies. *)
  let det0 = Detector.perfect (Dual.g dual) in
  List.iter
    (fun (adv_name, adversary) ->
      let res = Core.Ccds.run ~seed:4 ~adversary ~detector:(Detector.static det0) dual in
      record ~det_name:"0-complete" ~adv_name ~algo_name:"banned-list" ~det:det0
        ~rounds:res.R.rounds res.R.outputs)
    adversaries;
  (* tau-complete detectors: fall back to the exploration algorithm. *)
  List.iter
    (fun tau ->
      let det = Detector.tau_complete ~rng:(Rng.create (500 + tau)) ~tau dual in
      List.iter
        (fun (adv_name, adversary) ->
          let res =
            Core.Explore_ccds.run ~seed:4 ~adversary ~tau ~detector:(Detector.static det) dual
          in
          record
            ~det_name:(Printf.sprintf "%d-complete" tau)
            ~adv_name ~algo_name:"explore" ~det ~rounds:res.R.rounds res.R.outputs)
        adversaries)
    [ 1; 2 ];
  (* the deterministic TDMA baseline never collides: even the all-gray
     adversary cannot touch it *)
  List.iter
    (fun (adv_name, adversary) ->
      let res = Core.Tdma_ccds.run ~seed:4 ~adversary ~detector:(Detector.static det0) dual in
      record ~det_name:"0-complete" ~adv_name ~algo_name:"TDMA [19]" ~det:det0
        ~rounds:res.R.rounds res.R.outputs)
    (("all-gray", Rn_sim.Adversary.all_gray) :: adversaries);
  Table.print t;
  print_endline
    "note: tau > 0 forces the slower exploration algorithm — the Omega(Delta)\n\
     lower bound of Section 7 says no algorithm can avoid that penalty."
