# Shared helpers for the smoke scripts (store_smoke, shard_smoke,
# adv_smoke, serve_smoke).  POSIX sh; source it after setting
# SMOKE_NAME:
#
#   SMOKE_NAME=store_smoke
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Provides:
#   $RN_CLI     how to invoke the CLI (overridable; CI uses
#               "opam exec -- dune exec bin/rn_cli.exe --")
#   $tmp        a scratch directory, removed on exit
#   rn ...      run the CLI under the per-step timeout
#   step ...    run any command under the per-step timeout
#   assert_same REF GOT WHAT   byte-compare two files, diff on failure
#   fail MSG / note MSG        uniform failure and progress lines
#   cleanup()   override for extra teardown (e.g. killing a daemon);
#               runs before the scratch dir is removed
#
# Every CLI invocation goes through `timeout` (SMOKE_STEP_TIMEOUT
# seconds, default 300) so a hung daemon or worker fails CI in minutes,
# not at the job time limit.

set -eu

SMOKE_NAME=${SMOKE_NAME:-smoke}
RN_CLI=${RN_CLI:-"dune exec bin/rn_cli.exe --"}
SMOKE_STEP_TIMEOUT=${SMOKE_STEP_TIMEOUT:-300}

tmp=$(mktemp -d)
cleanup() { :; }
trap 'cleanup; rm -rf "$tmp"' EXIT

fail() {
  echo "$SMOKE_NAME: FAIL: $*" >&2
  exit 1
}

note() { echo "== $*"; }

step() {
  timeout "$SMOKE_STEP_TIMEOUT" "$@" || {
    rc=$?
    if [ "$rc" -eq 124 ]; then
      fail "step timed out after ${SMOKE_STEP_TIMEOUT}s: $*"
    fi
    fail "step failed (rc=$rc): $*"
  }
}

# shellcheck disable=SC2086  # RN_CLI is intentionally word-split
rn() { step $RN_CLI "$@"; }

assert_same() {
  cmp "$1" "$2" || {
    echo "$SMOKE_NAME: FAIL: $3" >&2
    diff "$1" "$2" >&2 || true
    exit 1
  }
}
