#!/bin/sh
# Shard-equivalence smoke: the CI-facing proof that intra-run delivery
# sharding is pure evaluation strategy (ISSUE 6 acceptance criteria).
#
#   scripts/shard_smoke.sh [SIZES]
#
# Runs the S1 beacon scenario in --check mode (deterministic columns
# only: world shape and send/delivery/collision counts, no timings) at
# --shards 1, 2 and 4, and once more with the kernel forced off (the
# scalar per-edge path that predates both the word-parallel kernel and
# sharding).  All four tables must be byte-identical: the sharded
# scatter, the dense kernel, and the scalar walk are three evaluation
# strategies for one semantics.
#
# SIZES is a comma-separated n grid (default small enough for CI).
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=shard_smoke
. "$(dirname "$0")/smoke_lib.sh"

sizes=${1:-512,1024,2048}

run() { # run OUTFILE EXTRA_ARGS...
  out=$1; shift
  rn scale --check --sizes "$sizes" "$@" > "$out" 2> "$out.err"
}

note "reference: --shards 1 (auto kernel)"
run "$tmp/s1.out"

for s in 2 4; do
  note "--shards $s"
  run "$tmp/s$s.out" --shards "$s"
  assert_same "$tmp/s1.out" "$tmp/s$s.out" "--shards $s table differs from --shards 1"
done

note "--kernel off (scalar per-edge path)"
run "$tmp/off.out" --kernel off
assert_same "$tmp/s1.out" "$tmp/off.out" "scalar-path table differs from --shards 1"

note "--kernel on --shards 4 (forced kernel under sharding)"
run "$tmp/on4.out" --kernel on --shards 4
assert_same "$tmp/s1.out" "$tmp/on4.out" "--kernel on --shards 4 table differs from --shards 1"

echo "shard_smoke: OK (sizes=$sizes: shards 1 = 2 = 4 = scalar = forced kernel, byte-identical)"
