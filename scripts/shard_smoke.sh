#!/bin/sh
# Shard-equivalence smoke: the CI-facing proof that intra-run delivery
# sharding AND resume-loop sharding are pure evaluation strategy
# (ISSUE 6 and ISSUE 10 acceptance criteria).
#
#   scripts/shard_smoke.sh [SIZES]
#
# Runs the S1 beacon scenario in --check mode (deterministic columns
# only: world shape and send/delivery/collision counts, no timings) at
# --shards 1, 2 and 4, once more with the kernel forced off (the
# scalar per-edge path that predates both the word-parallel kernel and
# sharding), and then across --resume-shards 1/2/4 x --kernel on/off
# (resume kernel forced on, so sharding engages below the auto
# threshold).  All tables must be byte-identical: the sharded scatter,
# the dense kernel, the scalar walk, and the sharded resume loop are
# evaluation strategies for one semantics.
#
# SIZES is a comma-separated n grid (default small enough for CI).
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=shard_smoke
. "$(dirname "$0")/smoke_lib.sh"

sizes=${1:-512,1024,2048}

run() { # run OUTFILE EXTRA_ARGS...
  out=$1; shift
  rn scale --check --sizes "$sizes" "$@" > "$out" 2> "$out.err"
}

note "reference: --shards 1 (auto kernel)"
run "$tmp/s1.out"

for s in 2 4; do
  note "--shards $s"
  run "$tmp/s$s.out" --shards "$s"
  assert_same "$tmp/s1.out" "$tmp/s$s.out" "--shards $s table differs from --shards 1"
done

note "--kernel off (scalar per-edge path)"
run "$tmp/off.out" --kernel off
assert_same "$tmp/s1.out" "$tmp/off.out" "scalar-path table differs from --shards 1"

note "--kernel on --shards 4 (forced kernel under sharding)"
run "$tmp/on4.out" --kernel on --shards 4
assert_same "$tmp/s1.out" "$tmp/on4.out" "--kernel on --shards 4 table differs from --shards 1"

for rs in 1 2 4; do
  for k in on off; do
    note "--resume-shards $rs --resume-kernel on --kernel $k"
    run "$tmp/rs$rs-$k.out" --resume-shards "$rs" --resume-kernel on --kernel "$k"
    assert_same "$tmp/s1.out" "$tmp/rs$rs-$k.out" \
      "--resume-shards $rs --kernel $k table differs from reference"
  done
done

note "--resume-shards 4 --shards 4 (both phases sharded)"
run "$tmp/both4.out" --resume-shards 4 --resume-kernel on --shards 4
assert_same "$tmp/s1.out" "$tmp/both4.out" "doubly sharded table differs from reference"

echo "shard_smoke: OK (sizes=$sizes: shards 1 = 2 = 4 = scalar = forced kernel = resume-shards 1/2/4 x kernel on/off, byte-identical)"
