#!/bin/sh
# Sweep-service smoke: the CI-facing proof of the daemon's crash-tolerant
# equivalence guarantee (ISSUE 8 acceptance criteria).
#
#   scripts/serve_smoke.sh [EXPERIMENTS] [WORKERS]
#
# 1. runs EXPERIMENTS (default "E5 E8a") directly with --no-cache
#                                                     -> reference tables
# 2. cold sweep through the daemon (fresh store)      -> must match
#    + telemetry checks while the daemon is up: progress stream
#      non-empty/monotone, metrics JSON + Prometheus exposition,
#      health, slowest.txt, and an on-demand trace byte-compared
#      against a direct traced re-run
# 3. crash drill on a second fresh store: submit, SIGKILL one worker
#    mid-sweep, SIGKILL the daemon itself, restart the daemon on the
#    same store, re-submit (resumes from the journal) -> must match
# 4. warm re-submit on the resumed store              -> must match, with
#    the job reporting zero store misses (no engine rounds executed)
#
# The byte-compares are timing-robust by construction: if the SIGKILLs
# land after the sweep already finished, the resume degenerates to a
# warm replay and every assertion still holds — the script can't flake
# on scheduling.
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=serve_smoke
. "$(dirname "$0")/smoke_lib.sh"

exps=${1:-"E5 E8a"}
workers=${2:-2}

sock="$tmp/serve.sock"
DAEMON_PID=

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}

start_daemon() { # STORE_DIR
  # All call sites run with no daemon alive, so any socket file is a
  # stale leftover (e.g. from the SIGKILL drill).  Remove it before
  # spawning: otherwise the readiness wait below passes instantly and
  # the first client races the new daemon's bind.
  rm -f "$sock"
  # --log rotates the previous daemon's log to daemon.log.1 and stamps
  # every line with a monotonic timestamp (asserted below).
  # shellcheck disable=SC2086
  $RN_CLI serve --socket "$sock" --store "$1" --workers "$workers" \
    --log "$tmp/daemon.log" &
  DAEMON_PID=$!
  i=0
  # shellcheck disable=SC2086
  until $RN_CLI status --socket "$sock" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not answer on $sock (see $tmp/daemon.log)"
    sleep 0.1
  done
}

stop_daemon() {
  rn shutdown --socket "$sock" > /dev/null
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=
}

# shellcheck disable=SC2086
note "reference run (direct, --no-cache)"
rn experiment $exps --no-cache --jobs 1 > "$tmp/ref.out" 2> "$tmp/ref.err"

note "cold sweep through the daemon (watched through the progress stream)"
start_daemon "$tmp/store-cold"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait --progress > "$tmp/cold.out" 2> "$tmp/cold.err"
assert_same "$tmp/ref.out" "$tmp/cold.out" "cold daemon tables differ from direct run"

note "progress stream is non-empty and monotone"
grep -c '^progress seq=' "$tmp/cold.err" > /dev/null \
  || fail "no progress events on --wait --progress (see $tmp/cold.err)"
awk -F'seq=' '/^progress /{split($2, a, " "); if (a[1] + 0 <= prev) exit 1; prev = a[1] + 0}' \
  "$tmp/cold.err" || fail "progress sequence numbers are not strictly increasing"

note "daemon log has monotonic timestamps"
grep -q '^\[serve +' "$tmp/daemon.log" || fail "daemon.log lines lack the [serve +...] prefix"

note "metrics exposition (registry merge) is valid JSON"
rn serve metrics --socket "$sock" --format json > "$tmp/metrics.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$tmp/metrics.json" > /dev/null \
    || fail "serve metrics --format json is not valid JSON"
else
  note "python3 not available, skipping JSON validation"
fi
grep -q '"cells.done"' "$tmp/metrics.json" || fail "metrics exposition lacks scheduler counters"
rn serve metrics --socket "$sock" --format prometheus | grep -q '^# TYPE rn_' \
  || fail "prometheus exposition lacks TYPE lines"
rn serve health --socket "$sock" > "$tmp/health.out"
grep -q '^cells: done ' "$tmp/health.out" || fail "serve health output missing cell counters"

note "daemon sweep wrote the slowest-cells ranking"
[ -s "$tmp/store-cold/slowest.txt" ] || fail "daemon did not write slowest.txt"

note "on-demand trace matches a direct traced re-run byte-for-byte"
slow_label=$(awk 'NR==1{print $2}' "$tmp/store-cold/slowest.txt")
slow_exp=${slow_label%%/*}
slow_coord=${slow_label##*/}
rn serve trace --socket "$sock" "$slow_exp" "$slow_coord" --out "$tmp/trace-daemon.json" \
  2> /dev/null
rn trace cell "$slow_exp" "$slow_coord" --store "$tmp/store-cold" \
  --out "$tmp/trace-direct.json" 2> /dev/null
[ -s "$tmp/trace-daemon.json" ] || fail "daemon trace is empty"
assert_same "$tmp/trace-direct.json" "$tmp/trace-daemon.json" \
  "daemon trace differs from direct traced re-run"
stop_daemon

note "crash drill: SIGKILL a worker mid-sweep, then the daemon"
start_daemon "$tmp/store-crash"
# shellcheck disable=SC2086
job=$(rn submit --socket "$sock" $exps | awk '{print $2}')
[ -n "$job" ] || fail "submit did not return a job id"
sleep 0.4
wpid=$(rn status --socket "$sock" | awk '/^worker .* alive/{print $4; exit}')
if [ -n "$wpid" ]; then
  note "SIGKILLing worker pid $wpid"
  kill -9 "$wpid" 2>/dev/null || true
else
  note "sweep already finished before the kill (fast machine) - resume degenerates to warm"
fi
sleep 0.2
note "SIGKILLing the daemon (journal keeps every finished cell)"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

note "restarting the daemon on the same store and resuming"
start_daemon "$tmp/store-crash"
[ -f "$tmp/daemon.log.1" ] || fail "daemon restart did not rotate the previous log to daemon.log.1"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait > "$tmp/resumed.out" 2> "$tmp/resumed.err"
assert_same "$tmp/ref.out" "$tmp/resumed.out" "resumed tables differ from direct run"

note "warm re-submit (must be 100% store hits, zero engine rounds)"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait > "$tmp/warm.out" 2> "$tmp/warm.err"
assert_same "$tmp/ref.out" "$tmp/warm.out" "warm tables differ from direct run"
rn status --socket "$sock" > "$tmp/status.out"
warm_job=$(awk '/^job /{j=$2} END{print j}' "$tmp/status.out")
grep -q "^job $warm_job .* misses 0 " "$tmp/status.out" || {
  cat "$tmp/status.out" >&2
  fail "warm re-submit executed engine rounds (expected zero store misses)"
}
grep -Eq "^job $warm_job .* hits [1-9]" "$tmp/status.out" || {
  cat "$tmp/status.out" >&2
  fail "warm re-submit reported no store hits"
}

note "store survives the drill intact"
rn store verify --store "$tmp/store-crash"
rn status --socket "$sock" --metrics
rn store stats --store "$tmp/store-crash" --json | grep -q '"daemon":{' \
  || fail "store stats --json lacks the daemon sidecar block"
stop_daemon

echo "serve_smoke: OK ($exps, workers=$workers: direct = cold = killed+resumed = warm, warm 100% hits)"
