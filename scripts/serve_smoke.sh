#!/bin/sh
# Sweep-service smoke: the CI-facing proof of the daemon's crash-tolerant
# equivalence guarantee (ISSUE 8 acceptance criteria).
#
#   scripts/serve_smoke.sh [EXPERIMENTS] [WORKERS]
#
# 1. runs EXPERIMENTS (default "E5 E8a") directly with --no-cache
#                                                     -> reference tables
# 2. cold sweep through the daemon (fresh store)      -> must match
# 3. crash drill on a second fresh store: submit, SIGKILL one worker
#    mid-sweep, SIGKILL the daemon itself, restart the daemon on the
#    same store, re-submit (resumes from the journal) -> must match
# 4. warm re-submit on the resumed store              -> must match, with
#    the job reporting zero store misses (no engine rounds executed)
#
# The byte-compares are timing-robust by construction: if the SIGKILLs
# land after the sweep already finished, the resume degenerates to a
# warm replay and every assertion still holds — the script can't flake
# on scheduling.
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=serve_smoke
. "$(dirname "$0")/smoke_lib.sh"

exps=${1:-"E5 E8a"}
workers=${2:-2}

sock="$tmp/serve.sock"
DAEMON_PID=

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}

start_daemon() { # STORE_DIR
  # Both call sites run with no daemon alive, so any socket file is a
  # stale leftover (e.g. from the SIGKILL drill).  Remove it before
  # spawning: otherwise the readiness wait below passes instantly and
  # the first client races the new daemon's bind.
  rm -f "$sock"
  # shellcheck disable=SC2086
  $RN_CLI serve --socket "$sock" --store "$1" --workers "$workers" \
    2>> "$tmp/daemon.log" &
  DAEMON_PID=$!
  i=0
  # shellcheck disable=SC2086
  until $RN_CLI status --socket "$sock" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not answer on $sock (see $tmp/daemon.log)"
    sleep 0.1
  done
}

stop_daemon() {
  rn shutdown --socket "$sock" > /dev/null
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=
}

# shellcheck disable=SC2086
note "reference run (direct, --no-cache)"
rn experiment $exps --no-cache --jobs 1 > "$tmp/ref.out" 2> "$tmp/ref.err"

note "cold sweep through the daemon"
start_daemon "$tmp/store-cold"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait > "$tmp/cold.out" 2> "$tmp/cold.err"
assert_same "$tmp/ref.out" "$tmp/cold.out" "cold daemon tables differ from direct run"
stop_daemon

note "crash drill: SIGKILL a worker mid-sweep, then the daemon"
start_daemon "$tmp/store-crash"
# shellcheck disable=SC2086
job=$(rn submit --socket "$sock" $exps | awk '{print $2}')
[ -n "$job" ] || fail "submit did not return a job id"
sleep 0.4
wpid=$(rn status --socket "$sock" | awk '/^worker .* alive/{print $4; exit}')
if [ -n "$wpid" ]; then
  note "SIGKILLing worker pid $wpid"
  kill -9 "$wpid" 2>/dev/null || true
else
  note "sweep already finished before the kill (fast machine) - resume degenerates to warm"
fi
sleep 0.2
note "SIGKILLing the daemon (journal keeps every finished cell)"
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

note "restarting the daemon on the same store and resuming"
start_daemon "$tmp/store-crash"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait > "$tmp/resumed.out" 2> "$tmp/resumed.err"
assert_same "$tmp/ref.out" "$tmp/resumed.out" "resumed tables differ from direct run"

note "warm re-submit (must be 100% store hits, zero engine rounds)"
# shellcheck disable=SC2086
rn submit --socket "$sock" $exps --wait > "$tmp/warm.out" 2> "$tmp/warm.err"
assert_same "$tmp/ref.out" "$tmp/warm.out" "warm tables differ from direct run"
rn status --socket "$sock" > "$tmp/status.out"
warm_job=$(awk '/^job /{j=$2} END{print j}' "$tmp/status.out")
grep -q "^job $warm_job .* misses 0 " "$tmp/status.out" || {
  cat "$tmp/status.out" >&2
  fail "warm re-submit executed engine rounds (expected zero store misses)"
}
grep -Eq "^job $warm_job .* hits [1-9]" "$tmp/status.out" || {
  cat "$tmp/status.out" >&2
  fail "warm re-submit reported no store hits"
}

note "store survives the drill intact"
rn store verify --store "$tmp/store-crash"
rn status --socket "$sock" --metrics
stop_daemon

echo "serve_smoke: OK ($exps, workers=$workers: direct = cold = killed+resumed = warm, warm 100% hits)"
