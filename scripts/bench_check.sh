#!/bin/sh
# Compare a fresh bench JSON report against the committed baseline.
#
#   scripts/bench_check.sh FRESH.json BASELINE.json [TOLERANCE]
#
# Fails (exit 1) only if some experiment's fresh wall-clock exceeds the
# baseline by BOTH a multiplicative factor (default 4x — CI runners are
# noisy and share cores) AND an absolute slack of 1 second (so
# sub-second experiments never trip on scheduler jitter).  Experiments
# present in only one file are reported but not fatal: the suite grows.
#
# Requires only POSIX sh + awk; the JSON is one entry per line by
# construction (bench/main.ml write_json).

set -eu

if [ $# -lt 2 ]; then
  echo "usage: $0 FRESH.json BASELINE.json [TOLERANCE]" >&2
  exit 2
fi

fresh=$1
base=$2
tol=${3:-4.0}
slack=1.0

for f in "$fresh" "$base"; do
  if [ ! -f "$f" ]; then
    echo "bench_check: missing file: $f" >&2
    exit 2
  fi
done

extract() {
  # "  {\"id\": \"E2\", \"seconds\": 24.346}," -> "E2 24.346"
  awk 'match($0, /"id": "[^"]*", "seconds": [0-9.]+/) {
         s = substr($0, RSTART, RLENGTH);
         gsub(/"id": "|", "seconds": /, " ", s);
         gsub(/"/, "", s);
         print s
       }' "$1"
}

extract "$fresh" > /tmp/bench_fresh.$$
extract "$base" > /tmp/bench_base.$$
trap 'rm -f /tmp/bench_fresh.$$ /tmp/bench_base.$$' EXIT

fail=0
while read -r id secs; do
  basev=$(awk -v id="$id" '$1 == id { print $2 }' /tmp/bench_base.$$)
  if [ -z "$basev" ]; then
    echo "bench_check: $id: new experiment (no baseline), skipping"
    continue
  fi
  verdict=$(awk -v f="$secs" -v b="$basev" -v tol="$tol" -v slack="$slack" \
    'BEGIN { print (f > b * tol && f - b > slack) ? "REGRESSION" : "ok" }')
  if [ "$verdict" = "REGRESSION" ]; then
    echo "bench_check: $id: REGRESSION: ${secs}s vs baseline ${basev}s (tol ${tol}x + ${slack}s)"
    fail=1
  else
    echo "bench_check: $id: ok (${secs}s vs ${basev}s)"
  fi
done < /tmp/bench_fresh.$$

while read -r id _; do
  if ! awk -v id="$id" '$1 == id { found = 1 } END { exit !found }' /tmp/bench_fresh.$$; then
    echo "bench_check: $id: in baseline but not in fresh run"
  fi
done < /tmp/bench_base.$$

if [ "$fail" -ne 0 ]; then
  echo "bench_check: FAILED" >&2
  exit 1
fi
echo "bench_check: all experiments within tolerance"
