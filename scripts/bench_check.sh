#!/bin/sh
# Compare a fresh bench JSON report against the committed baseline.
#
#   scripts/bench_check.sh FRESH.json BASELINE.json [TOLERANCE] [SLACK]
#
# Exits non-zero (1) ONLY on a genuine regression: an experiment present
# in BOTH reports whose fresh wall-clock exceeds the baseline by BOTH a
# multiplicative factor (default 4x — CI runners are noisy and share
# cores) AND an absolute slack (default 1s, so sub-second experiments
# never trip on scheduler jitter).  Everything else is warn-and-skip:
#
#   - experiments only in the fresh report (new benches)       -> skipped
#   - experiments only in the baseline (removed/renamed)       -> skipped
#   - micro entries only in the baseline (or only fresh)       -> warned,
#     never a failure (a renamed/removed micro-bench must not break CI)
#   - duplicated ids within a report (first occurrence wins)   -> warned
#
# Micro-bench entries ({"name": ..., "ns_per_run": ...}) present in both
# reports are gated like experiments, with the absolute slack read in
# milliseconds-per-run (micro noise is large relative to ns counts).
#
# Usage errors and missing/empty reports exit 2, so a broken pipeline is
# distinguishable from a perf regression.
#
# Requires only POSIX sh + awk; the JSON is one entry per line by
# construction (bench/main.ml write_json).
#
# The report also carries two tracing-overhead pseudo-experiments,
# "trace-off" and "trace-on" (the same MIS workload with the event sink
# and metrics registry off/on), so a regression in the observability
# hot path trips the same gate as any other experiment.  Baselines
# predating them are handled by the one-sided skip above.

set -eu

if [ $# -lt 2 ]; then
  echo "usage: $0 FRESH.json BASELINE.json [TOLERANCE] [SLACK]" >&2
  exit 2
fi

fresh=$1
base=$2
tol=${3:-4.0}
slack=${4:-1.0}

for f in "$fresh" "$base"; do
  if [ ! -f "$f" ]; then
    echo "bench_check: missing file: $f" >&2
    exit 2
  fi
done

awk -v tol="$tol" -v slack="$slack" '
  FNR == 1 { filenum++ }
  # collect {"name": "substrate/x", "ns_per_run": 123.4} micro entries
  match($0, /"name": *"[^"]*", *"ns_per_run": *-?[0-9.eE+-]+/) {
    s = substr($0, RSTART, RLENGTH)
    sub(/^"name": *"/, "", s)
    name = s; sub(/".*/, "", name)
    ns = s; sub(/^[^,]*, *"ns_per_run": */, "", ns)
    if (filenum == 1) {
      if (!(name in base_micro)) base_micro[name] = ns + 0
    } else {
      if (!(name in fresh_micro)) {
        fresh_micro[name] = ns + 0
        micro_order[++n_micro] = name
      }
    }
    next
  }
  # collect {"id": "E2", "seconds": 24.346} entries from either file;
  # the baseline is passed first (filenum 1), the fresh report second
  match($0, /"id": *"[^"]*", *"seconds": *[0-9.eE+-]+/) {
    s = substr($0, RSTART, RLENGTH)
    sub(/^"id": *"/, "", s)
    id = s; sub(/".*/, "", id)
    secs = s; sub(/^[^,]*, *"seconds": */, "", secs)
    if (filenum == 1) {
      if (id in baseline) {
        print "bench_check: " id ": duplicate baseline entry, keeping first (" baseline[id] "s)"
      } else {
        baseline[id] = secs + 0
      }
    } else {
      if (id in seen_fresh) {
        print "bench_check: " id ": duplicate fresh entry, keeping first (" seen_fresh[id] "s)"
      } else {
        seen_fresh[id] = secs + 0
        order[++n_fresh] = id
      }
    }
  }
  END {
    if (n_fresh == 0) {
      print "bench_check: no experiment entries found in fresh report" > "/dev/stderr"
      exit 2
    }
    fails = 0; compared = 0; skipped = 0
    for (i = 1; i <= n_fresh; i++) {
      id = order[i]; f = seen_fresh[id]
      if (!(id in baseline)) {
        print "bench_check: " id ": new experiment (no baseline), skipping"
        skipped++
        continue
      }
      b = baseline[id]
      compared++
      if (f > b * tol && f - b > slack) {
        printf "bench_check: %s: REGRESSION: %.3fs vs baseline %.3fs (tol %sx + %ss)\n", id, f, b, tol, slack
        fails++
      } else {
        printf "bench_check: %s: ok (%.3fs vs %.3fs)\n", id, f, b
      }
    }
    for (id in baseline) {
      if (!(id in seen_fresh)) {
        print "bench_check: " id ": in baseline but not in fresh run (removed/renamed), skipping"
        skipped++
      }
    }
    # micro entries: one-sided presence is a warning only (exit 0);
    # both-sided uses the same tol with slack in ms/run.  ns_per_run of
    # -1 marks a failed OLS fit (write_json), which is not comparable.
    for (i = 1; i <= n_micro; i++) {
      name = micro_order[i]; f = fresh_micro[name]
      if (!(name in base_micro)) {
        print "bench_check: micro " name ": new micro-bench (no baseline), skipping"
        skipped++
        continue
      }
      b = base_micro[name]
      if (f < 0 || b < 0) {
        print "bench_check: micro " name ": unusable estimate (fit failed), skipping"
        skipped++
        continue
      }
      compared++
      if (f > b * tol && f - b > slack * 1e6) {
        printf "bench_check: micro %s: REGRESSION: %.0fns vs baseline %.0fns (tol %sx + %sms)\n", name, f, b, tol, slack
        fails++
      } else {
        printf "bench_check: micro %s: ok (%.0fns vs %.0fns)\n", name, f, b
      }
    }
    for (name in base_micro) {
      if (!(name in fresh_micro)) {
        print "bench_check: micro " name ": in baseline but not in fresh run (removed/renamed), skipping"
        skipped++
      }
    }
    printf "bench_check: %d compared, %d skipped, %d regression(s)\n", compared, skipped, fails
    if (fails > 0) {
      print "bench_check: FAILED" > "/dev/stderr"
      exit 1
    }
  }
' "$base" "$fresh"
