#!/bin/sh
# Adversary-kernel equivalence smoke: the CI-facing proof that the
# word-parallel adversary kernel is pure evaluation strategy (ISSUE 7
# acceptance criteria), sibling of shard_smoke.sh.
#
#   scripts/adv_smoke.sh [SIZES]
#
# For each deterministic policy (spiteful, jamming, all) runs the S1
# beacon scenario in --check mode (deterministic columns only) across
# --adv-kernel on/off/auto x --shards 1/2/4 and byte-compares every
# table against the policy's --adv-kernel off --shards 1 reference: the
# mask-algebra kernel, the scalar per-edge walk, and the sharded mask
# accumulation are all evaluation strategies for one semantics.
#
# bernoulli keeps its scalar path by design (the per-edge draw sequence
# IS the semantics) — one pair checks that --adv-kernel on is a no-op
# for it rather than an error.
#
# SIZES is a comma-separated n grid (default small enough for CI).
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=adv_smoke
. "$(dirname "$0")/smoke_lib.sh"

sizes=${1:-512,1024}

run() { # run OUTFILE EXTRA_ARGS...
  out=$1; shift
  rn scale --check --sizes "$sizes" "$@" > "$out" 2> "$out.err"
}

for adv in spiteful jamming all; do
  note "$adv: reference (--adv-kernel off --shards 1)"
  run "$tmp/$adv.ref" --adversary "$adv" --adv-kernel off
  for mode in on auto; do
    for s in 1 2 4; do
      run "$tmp/$adv.$mode.$s" --adversary "$adv" --adv-kernel "$mode" --shards "$s"
      assert_same "$tmp/$adv.ref" "$tmp/$adv.$mode.$s" \
        "$adv --adv-kernel $mode --shards $s differs from scalar"
    done
    note "$adv: --adv-kernel $mode x shards 1/2/4 byte-identical"
  done
done

note "bernoulli:0.5: --adv-kernel on is a no-op (no kernel, scalar draws)"
run "$tmp/bern.ref" --adversary bernoulli:0.5 --adv-kernel off
run "$tmp/bern.on" --adversary bernoulli:0.5 --adv-kernel on --shards 2
assert_same "$tmp/bern.ref" "$tmp/bern.on" "bernoulli tables differ across --adv-kernel"

echo "adv_smoke: OK (sizes=$sizes: spiteful/jamming/all x on/auto x shards 1/2/4 = scalar)"
