#!/bin/sh
# Store round-trip smoke: the CI-facing proof of the result store's
# kill-and-resume determinism (ISSUE 3 acceptance criteria).
#
#   scripts/store_smoke.sh [EXPERIMENT] [JOBS]
#
# 1. runs EXPERIMENT (default E5) with --no-cache        -> reference table
# 2. runs it cold through a fresh store                  -> must match
# 3. chops the journal tail mid-record (simulated crash)
# 4. re-runs the same command (resume)                   -> must match
# 5. re-runs warm                                        -> must match, with
#    100% cache hits (misses=0) reported on stderr
#
# Tables are compared byte-for-byte: store diagnostics go to stderr by
# design, so stdout must be identical across all four runs.
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

SMOKE_NAME=store_smoke
. "$(dirname "$0")/smoke_lib.sh"

exp=${1:-E5}
jobs=${2:-2}

store="$tmp/store"
journal="$store/journal.rnj"

run() { # run OUTFILE ERRFILE EXTRA_ARGS...
  out=$1; err=$2; shift 2
  rn experiment "$exp" --jobs "$jobs" "$@" > "$out" 2> "$err"
}

note "reference run (--no-cache)"
run "$tmp/ref.out" "$tmp/ref.err" --no-cache

note "cold run (populating $store)"
run "$tmp/cold.out" "$tmp/cold.err" --store "$store"
assert_same "$tmp/ref.out" "$tmp/cold.out" "cold cached table differs from --no-cache"

[ -f "$journal" ] || fail "no journal written"

note "simulated crash (truncating journal mid-record)"
size=$(wc -c < "$journal")
cut=$((size * 3 / 5))
dd if="$journal" of="$journal.part" bs=1 count="$cut" 2>/dev/null
mv "$journal.part" "$journal"

note "resumed run"
run "$tmp/resume.out" "$tmp/resume.err" --store "$store"
assert_same "$tmp/ref.out" "$tmp/resume.out" "resumed table differs from uninterrupted run"
grep -q "hits=[1-9]" "$tmp/resume.err" || {
  cat "$tmp/resume.err" >&2
  fail "resume did not replay any cached cells"
}

note "warm run (must be 100% cache hits)"
run "$tmp/warm.out" "$tmp/warm.err" --store "$store"
assert_same "$tmp/ref.out" "$tmp/warm.out" "warm table differs from --no-cache"
grep -q "misses=0 " "$tmp/warm.err" && grep -q "hits=[1-9]" "$tmp/warm.err" || {
  cat "$tmp/warm.err" >&2
  fail "warm run was not 100% cache hits"
}

note "store stats / verify"
rn store stats --store "$store"
rn store verify --store "$store"

echo "store_smoke: OK ($exp, jobs=$jobs: cold = resumed = warm = --no-cache, warm 100% hits)"
