#!/bin/sh
# Store round-trip smoke: the CI-facing proof of the result store's
# kill-and-resume determinism (ISSUE 3 acceptance criteria).
#
#   scripts/store_smoke.sh [EXPERIMENT] [JOBS]
#
# 1. runs EXPERIMENT (default E5) with --no-cache        -> reference table
# 2. runs it cold through a fresh store                  -> must match
# 3. chops the journal tail mid-record (simulated crash)
# 4. re-runs the same command (resume)                   -> must match
# 5. re-runs warm                                        -> must match, with
#    100% cache hits (misses=0) reported on stderr
#
# Tables are compared byte-for-byte: store diagnostics go to stderr by
# design, so stdout must be identical across all four runs.
#
# RN_CLI overrides how the CLI is invoked (CI uses
# "opam exec -- dune exec bin/rn_cli.exe --").

set -eu

exp=${1:-E5}
jobs=${2:-2}
RN_CLI=${RN_CLI:-"dune exec bin/rn_cli.exe --"}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
store="$tmp/store"
journal="$store/journal.rnj"

run() { # run OUTFILE ERRFILE EXTRA_ARGS...
  out=$1; err=$2; shift 2
  $RN_CLI experiment "$exp" --jobs "$jobs" "$@" > "$out" 2> "$err"
}

echo "== reference run (--no-cache)"
run "$tmp/ref.out" "$tmp/ref.err" --no-cache

echo "== cold run (populating $store)"
run "$tmp/cold.out" "$tmp/cold.err" --store "$store"
cmp "$tmp/ref.out" "$tmp/cold.out" || {
  echo "store_smoke: FAIL: cold cached table differs from --no-cache" >&2; exit 1; }

[ -f "$journal" ] || { echo "store_smoke: FAIL: no journal written" >&2; exit 1; }

echo "== simulated crash (truncating journal mid-record)"
size=$(wc -c < "$journal")
cut=$((size * 3 / 5))
dd if="$journal" of="$journal.part" bs=1 count="$cut" 2>/dev/null
mv "$journal.part" "$journal"

echo "== resumed run"
run "$tmp/resume.out" "$tmp/resume.err" --store "$store"
cmp "$tmp/ref.out" "$tmp/resume.out" || {
  echo "store_smoke: FAIL: resumed table differs from uninterrupted run" >&2; exit 1; }
grep -q "hits=[1-9]" "$tmp/resume.err" || {
  echo "store_smoke: FAIL: resume did not replay any cached cells" >&2
  cat "$tmp/resume.err" >&2; exit 1; }

echo "== warm run (must be 100% cache hits)"
run "$tmp/warm.out" "$tmp/warm.err" --store "$store"
cmp "$tmp/ref.out" "$tmp/warm.out" || {
  echo "store_smoke: FAIL: warm table differs from --no-cache" >&2; exit 1; }
grep -q "misses=0 " "$tmp/warm.err" && grep -q "hits=[1-9]" "$tmp/warm.err" || {
  echo "store_smoke: FAIL: warm run was not 100% cache hits" >&2
  cat "$tmp/warm.err" >&2; exit 1; }

echo "== store stats / verify"
$RN_CLI store stats --store "$store"
$RN_CLI store verify --store "$store"

echo "store_smoke: OK ($exp, jobs=$jobs: cold = resumed = warm = --no-cache, warm 100% hits)"
