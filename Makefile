# Convenience targets; everything is plain dune underneath.

.PHONY: all build test fmt bench bench-full examples figures fuzz clean

# Worker domains for the experiment sweeps (see "Parallel execution" in
# README.md); tables are identical for every JOBS value.
JOBS ?= 0
JOBS_FLAG = $(if $(filter-out 0,$(JOBS)),--jobs $(JOBS),)

all: build

build:
	dune build @all

test:
	dune runtest --force

# Requires ocamlformat (pinned in .ocamlformat); CI enforces this.
fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe -- $(JOBS_FLAG)

bench-full:
	dune exec bench/main.exe -- --full $(JOBS_FLAG)

examples:
	dune build @examples

figures:
	dune exec bin/rn_cli.exe -- figures --out plots

fuzz:
	dune exec bin/rn_fuzz.exe -- 200

clean:
	dune clean
