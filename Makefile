# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-full examples figures fuzz clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full

examples:
	dune build @examples

figures:
	dune exec bin/rn_cli.exe -- figures --out plots

fuzz:
	dune exec bin/rn_fuzz.exe -- 200

clean:
	dune clean
