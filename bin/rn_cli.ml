(* Command-line driver: run any algorithm or experiment from the shell.

     rn_cli experiment E1 E4c --full
     rn_cli mis --n 128 --degree 12 --adversary bernoulli:0.5
     rn_cli ccds --n 128 --algo banned --b 96
     rn_cli bridge --beta 16
*)

open Cmdliner
module R = Core.Radio
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify

let adversary_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "silent" ] -> Ok Rn_sim.Adversary.silent
    | [ "all" ] -> Ok Rn_sim.Adversary.all_gray
    | [ "spiteful" ] -> Ok Rn_sim.Adversary.spiteful
    | [ "jamming" ] -> Ok Rn_sim.Adversary.jamming
    | [ "bernoulli"; p ] -> begin
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Rn_sim.Adversary.bernoulli p)
      | _ -> Error (`Msg "bernoulli probability must be in [0,1]")
    end
    | [ "harassing"; p ] -> begin
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Rn_sim.Adversary.harassing p)
      | _ -> Error (`Msg "harassing probability must be in [0,1]")
    end
    | _ -> Error (`Msg "expected silent|all|spiteful|jamming|bernoulli:P|harassing:P")
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (Rn_sim.Adversary.name a))

let kernel_mode_of_string ~flag s =
  match s with
  | "auto" -> `Auto
  | "on" -> `On
  | "off" -> `Off
  | s ->
    Printf.eprintf "rn_cli: bad %s %S (want auto|on|off)\n" flag s;
    exit 2

let n_arg = Arg.(value & opt int 128 & info [ "n"; "nodes" ] ~doc:"Network size.")
let degree_arg = Arg.(value & opt int 12 & info [ "degree" ] ~doc:"Target reliable degree.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Experiment seed.")
let tau_arg = Arg.(value & opt int 0 & info [ "tau" ] ~doc:"Detector completeness parameter.")

let b_arg =
  Arg.(value & opt (some int) None & info [ "b" ] ~doc:"Message size bound in bits.")

let adversary_arg =
  Arg.(
    value
    & opt adversary_conv (Rn_sim.Adversary.bernoulli 0.5)
    & info [ "adversary" ] ~doc:"Gray-edge policy: silent|all|spiteful|bernoulli:P|harassing:P.")

let build_instance ~seed ~n ~degree ~tau =
  let dual = Rn_harness.Harness.geometric ~seed ~n ~degree () in
  let det =
    if tau = 0 then Detector.perfect (Dual.g dual)
    else
      Detector.tau_complete ~rng:(Rn_util.Rng.create (seed + 77)) ~tau dual
  in
  (dual, det)

let summarize_engine name (rounds, stats, timed_out) =
  Printf.printf "%s: rounds=%d sends=%d deliveries=%d collisions=%d bits=%d silent=%d%s\n" name
    rounds stats.Rn_sim.Engine.sends stats.Rn_sim.Engine.deliveries
    stats.Rn_sim.Engine.collisions stats.Rn_sim.Engine.bits_sent
    stats.Rn_sim.Engine.silent_rounds
    (if timed_out then " TIMEOUT" else "")

let print_mis_report dual det outputs =
  let rep = Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) outputs in
  Printf.printf "MIS check: termination=%b independence=%b maximality=%b\n" rep.termination
    rep.independence rep.maximality;
  List.iter (fun v -> Printf.printf "  violation: %s\n" v) rep.violations;
  let size = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 outputs in
  Printf.printf "MIS size: %d / %d\n" size (Array.length outputs)

let print_ccds_report dual det outputs =
  let rep = Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) outputs in
  Printf.printf
    "CCDS check: termination=%b connectivity=%b domination=%b max-G'-neighbours=%d size=%d\n"
    rep.termination rep.connectivity rep.domination rep.max_neighbors_g' rep.size;
  List.iter (fun v -> Printf.printf "  violation: %s\n" v) rep.violations

(* --- mis command --- *)

let run_mis n degree seed tau adversary trace =
  let dual, det = build_instance ~seed ~n ~degree ~tau in
  Printf.printf "instance: %s, Delta=%d\n" (Format.asprintf "%a" Dual.pp dual)
    (Dual.max_degree_g dual);
  let tracer = Rn_sim.Trace.create () in
  let observer (v : R.view) =
    Rn_sim.Trace.observe tracer ~view_round:v.R.view_round
      ~view_broadcasters:v.R.view_broadcasters ~view_decided:v.R.view_decided
      ~view_outputs:v.R.view_outputs
  in
  let cfg = R.config ~adversary ~seed ~observer ~detector:(Detector.static det) dual in
  let res =
    R.run cfg (fun ctx ->
        Core.Mis.body ~on_decide:(fun v -> R.output ctx v) Core.Params.default ctx)
  in
  summarize_engine "mis" (res.R.rounds, res.R.stats, res.R.timed_out);
  if trace then Format.printf "%a@." Rn_sim.Trace.pp tracer;
  print_mis_report dual det res.R.outputs

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print an activity sparkline of the run.")

let mis_cmd =
  Cmd.v
    (Cmd.info "mis" ~doc:"Run the Section 4 MIS algorithm on a random geometric network.")
    Term.(const run_mis $ n_arg $ degree_arg $ seed_arg $ tau_arg $ adversary_arg $ trace_arg)

(* --- ccds command --- *)

let run_ccds n degree seed tau b algo adversary =
  let dual, det = build_instance ~seed ~n ~degree ~tau in
  Printf.printf "instance: %s, Delta=%d\n" (Format.asprintf "%a" Dual.pp dual)
    (Dual.max_degree_g dual);
  let rounds, stats, timed_out, outputs =
    match algo with
    | `Banned ->
      if tau > 0 then
        failwith "the banned-list algorithm requires a 0-complete detector (--tau 0)";
      let res = Core.Ccds.run ~seed ?b_bits:b ~adversary ~detector:(Detector.static det) dual in
      (res.R.rounds, res.R.stats, res.R.timed_out, res.R.outputs)
    | `Explore ->
      let res =
        Core.Explore_ccds.run ~seed ?b_bits:b ~tau ~adversary ~detector:(Detector.static det)
          dual
      in
      (res.R.rounds, res.R.stats, res.R.timed_out, res.R.outputs)
  in
  summarize_engine "ccds" (rounds, stats, timed_out);
  print_ccds_report dual det outputs

let algo_arg =
  Arg.(
    value
    & opt (enum [ ("banned", `Banned); ("explore", `Explore) ]) `Banned
    & info [ "algo" ] ~doc:"CCDS algorithm: banned (Sec 5) or explore (Sec 6).")

let ccds_cmd =
  Cmd.v
    (Cmd.info "ccds" ~doc:"Run a CCDS algorithm on a random geometric network.")
    Term.(const run_ccds $ n_arg $ degree_arg $ seed_arg $ tau_arg $ b_arg $ algo_arg $ adversary_arg)

(* --- bridge command --- *)

let run_bridge beta seed =
  let r = Rn_games.Reduction.bridge_run ~beta ~seed () in
  Printf.printf "bridge beta=%d: rounds=%d solved=%b\n" beta r.rounds r.solved;
  List.iter (fun v -> Printf.printf "  violation: %s\n" v) r.report.violations

let beta_arg = Arg.(value & opt int 16 & info [ "beta" ] ~doc:"Clique size (Delta = beta).")

let bridge_cmd =
  Cmd.v
    (Cmd.info "bridge"
       ~doc:"Run the tau=1 CCDS on the Section 7 two-clique bridge network.")
    Term.(const run_bridge $ beta_arg $ seed_arg)

(* --- trace command --- *)

module Events = Rn_sim.Events

let rounds_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <= b -> Ok (a, b)
      | _ -> Error (`Msg "expected LO:HI round range with LO <= HI"))
    | _ -> Error (`Msg "expected LO:HI round range")
  in
  Arg.conv (parse, fun ppf (a, b) -> Fmt.pf ppf "%d:%d" a b)

let trace_format_arg =
  Arg.(
    value
    & opt
        (enum [ ("chrome", Events.Chrome); ("jsonl", Events.Jsonl); ("sexp", Events.Sexp_format) ])
        Events.Chrome
    & info [ "format" ]
        ~doc:"Trace format: chrome (Perfetto-loadable JSON), jsonl, or sexp.")

let trace_out_arg =
  Arg.(value & opt string "trace.json" & info [ "out" ] ~docv:"FILE" ~doc:"Trace output file.")

let capacity_arg =
  Arg.(
    value & opt int 65536
    & info [ "capacity" ]
        ~doc:"Ring-buffer size: the newest N events are kept, older ones evicted.")

let rounds_filter_arg =
  Arg.(
    value
    & opt (some rounds_conv) None
    & info [ "rounds" ] ~docv:"LO:HI" ~doc:"Record only rounds in the inclusive range.")

let procs_filter_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "procs" ] ~docv:"IDS"
        ~doc:"Record process events only for these ids (round-scoped events always pass).")

let sample_arg =
  Arg.(
    value & opt int 1
    & info [ "sample" ] ~docv:"K" ~doc:"Record only rounds where round mod K = 0.")

let trace_algo_arg =
  Arg.(
    value
    & pos 0 (enum [ ("mis", `Mis); ("ccds", `Ccds); ("tdma", `Tdma) ]) `Mis
    & info [] ~docv:"ALGO" ~doc:"Algorithm to trace: mis, ccds, or tdma.")

let run_trace algo n degree seed tau b adversary out format capacity rounds procs sample =
  let dual, det = build_instance ~seed ~n ~degree ~tau in
  Printf.printf "instance: %s, Delta=%d\n" (Format.asprintf "%a" Dual.pp dual)
    (Dual.max_degree_g dual);
  let sink = Events.create ~capacity ?rounds ?procs ~sample () in
  let detector = Detector.static det in
  let name, summary =
    match algo with
    | `Mis ->
      let r = Core.Mis.run ~seed ?b_bits:b ~adversary ~sink ~detector dual in
      ("mis", (r.R.rounds, r.R.stats, r.R.timed_out))
    | `Ccds ->
      if tau > 0 then
        failwith "the banned-list CCDS requires a 0-complete detector (--tau 0)";
      let r = Core.Ccds.run ~seed ?b_bits:b ~adversary ~sink ~detector dual in
      ("ccds", (r.R.rounds, r.R.stats, r.R.timed_out))
    | `Tdma ->
      let r = Core.Tdma_ccds.run ~seed ?b_bits:b ~adversary ~sink ~detector dual in
      ("tdma", (r.R.rounds, r.R.stats, r.R.timed_out))
  in
  summarize_engine name summary;
  let evs = Events.events sink in
  let oc = open_out out in
  output_string oc (Events.export format evs);
  close_out oc;
  Printf.printf "trace: wrote %d events to %s (%s; emitted=%d evicted=%d filtered=%d)\n"
    (List.length evs) out
    (Events.format_name format)
    (Events.emitted sink) (Events.evicted sink) (Events.filtered sink)

let trace_run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a built-in algorithm with structured event tracing and write the trace to a \
          file (Chrome format loads in Perfetto / chrome://tracing).")
    Term.(
      const run_trace $ trace_algo_arg $ n_arg $ degree_arg $ seed_arg $ tau_arg $ b_arg
      $ adversary_arg $ trace_out_arg $ trace_format_arg $ capacity_arg $ rounds_filter_arg
      $ procs_filter_arg $ sample_arg)

let kind_order =
  [
    ("wake", 0); ("broadcast", 1); ("deliver", 2); ("collide", 3); ("gray", 4); ("decide", 5);
    ("skip", 6);
  ]

let run_trace_inspect file rounds proc top =
  let content = In_channel.with_open_text file In_channel.input_all in
  let evs = Events.of_string content in
  let evs =
    match rounds with
    | None -> evs
    | Some (a, b) -> List.filter (fun e -> e.Events.round >= a && e.Events.round <= b) evs
  in
  let evs =
    match proc with
    | None -> evs
    | Some p -> List.filter (fun e -> e.Events.proc = p) evs
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) e -> (min lo e.Events.round, max hi e.Events.round))
      (max_int, min_int) evs
  in
  if evs = [] then print_endline "0 events match"
  else begin
    Printf.printf "%d events, rounds %d..%d\n" (List.length evs) lo hi;
    (* Event counts per kind, in engine order. *)
    let counts = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let k = Events.kind_name e.Events.kind in
        Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
      evs;
    List.iter
      (fun (k, _) ->
        match Hashtbl.find_opt counts k with
        | Some c -> Printf.printf "  %-10s %d\n" k c
        | None -> ())
      kind_order;
    match proc with
    | Some p ->
      (* Per-process timeline. *)
      Printf.printf "timeline for proc %d:\n" p;
      List.iter (fun e -> Format.printf "  %a@." Events.pp_event e) evs
    | None ->
      (* Busiest rounds by broadcasters, then collision hotspots. *)
      let per_round = Hashtbl.create 64 in
      let bump r i =
        let b, d, c = Option.value (Hashtbl.find_opt per_round r) ~default:(0, 0, 0) in
        Hashtbl.replace per_round r
          (match i with
          | `B -> (b + 1, d, c)
          | `D -> (b, d + 1, c)
          | `C -> (b, d, c + 1))
      in
      let per_proc_coll = Hashtbl.create 64 in
      List.iter
        (fun e ->
          match e.Events.kind with
          | Events.Broadcast _ -> bump e.Events.round `B
          | Events.Deliver _ -> bump e.Events.round `D
          | Events.Collide _ ->
            bump e.Events.round `C;
            Hashtbl.replace per_proc_coll e.Events.proc
              (1 + Option.value (Hashtbl.find_opt per_proc_coll e.Events.proc) ~default:0)
          | _ -> ())
        evs;
      let top_by f tbl =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (ka, a) (kb, b) ->
               let c = compare (f b) (f a) in
               if c <> 0 then c else compare ka kb)
        |> List.filteri (fun i _ -> i < top)
      in
      let busiest = top_by (fun (b, _, _) -> b) per_round in
      if busiest <> [] then begin
        Printf.printf "busiest rounds (by broadcasters):\n";
        List.iter
          (fun (r, (b, d, c)) ->
            Printf.printf "  r%-6d %d broadcasts, %d deliveries, %d collisions\n" r b d c)
          busiest
      end;
      let hot = top_by Fun.id per_proc_coll in
      if hot <> [] then begin
        Printf.printf "collision hotspots (by receiver):\n";
        List.iter (fun (p, c) -> Printf.printf "  p%-6d %d collisions\n" p c) hot
      end
  end

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file to inspect.")

let proc_filter_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "proc" ] ~docv:"ID" ~doc:"Show the timeline of this process only.")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Rows in the top-K tables.")

let trace_inspect_cmd =
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Query a trace file written by 'trace run' (any format): kind counts, busiest \
          rounds, collision hotspots, per-process timelines.")
    Term.(const run_trace_inspect $ trace_file_arg $ rounds_filter_arg $ proc_filter_arg $ top_arg)

(* The `trace` group is assembled after the experiment section: the
   `trace cell` subcommand re-runs one sweep cell and needs the store
   arguments defined there. *)

(* --- experiment command --- *)

module Store = Rn_util.Store

(* Store diagnostics go to stderr: the rendered tables on stdout must be
   byte-identical whether cells were computed or replayed from the
   cache (and identical to --no-cache).  Per-experiment metrics
   (--metrics) keep that property because each cell's snapshot rides in
   its store payload: a warm sweep reports the metrics recorded when the
   cell was computed. *)
let run_experiments ids full jobs profile metrics store_dir no_cache retry cell_timeout
    adv_kernel resume_shards resume_kernel =
  Rn_harness.Harness.set_jobs jobs;
  (* The adversary and resume kernels are pure evaluation strategies
     (byte-identical results at any setting), so overrides are safe to
     apply globally — they cannot invalidate cached cells. *)
  Rn_sim.Engine.set_default_adv_kernel
    (kernel_mode_of_string ~flag:"--adv-kernel" adv_kernel);
  if resume_shards < 1 then begin
    Printf.eprintf "rn_cli experiment: --resume-shards must be >= 1\n";
    exit 2
  end;
  Rn_sim.Engine.set_default_resume_shards resume_shards;
  Rn_sim.Engine.set_default_resume_kernel
    (kernel_mode_of_string ~flag:"--resume-kernel" resume_kernel);
  if profile then Rn_util.Timing.set_enabled true;
  if metrics then begin
    Rn_util.Metrics.set_enabled true;
    Rn_harness.Harness.reset_experiment_metrics ()
  end;
  let scale = if full then Rn_harness.Harness.Full else Rn_harness.Harness.Quick in
  let ids = if ids = [] then Rn_harness.All.ids else ids in
  let store =
    if no_cache then None
    else begin
      let s = Store.open_ store_dir in
      if Store.recovered_bytes s > 0 then
        Printf.eprintf "[store] dropped %d corrupt trailing bytes (interrupted run?)\n%!"
          (Store.recovered_bytes s);
      Rn_harness.Harness.set_store ~retry ?timeout:cell_timeout s;
      Some s
    end
  in
  let any_failed = ref false in
  List.iter
    (fun id ->
      match Rn_harness.All.find id with
      | Some f -> begin
        match f scale with
        | r -> Rn_harness.Harness.print r
        | exception Rn_harness.Harness.Cell_failed { exp; failed; total } ->
          any_failed := true;
          Printf.eprintf
            "[store] %s: %d/%d cells failed; finished cells are cached, re-run to retry\n%!"
            exp failed total
      end
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" id
          (String.concat ", " Rn_harness.All.ids))
    ids;
  (match store with
  | Some s ->
    let hits, misses, failures = Rn_harness.Harness.store_counters () in
    Printf.eprintf "[store] hits=%d misses=%d failed=%d dir=%s\n%!" hits misses failures
      store_dir;
    Store.write_last_run ~dir:store_dir ~hits ~misses ~failures;
    (* Slowest freshly-computed cells, for the nightly trace-the-slow-
       cells job (and for humans hunting sweep bottlenecks). *)
    (match Rn_harness.Harness.slowest_cells ~k:10 () with
    | [] -> ()
    | slow ->
      let path = Filename.concat store_dir "slowest.txt" in
      let oc = open_out path in
      List.iter (fun (label, t) -> Printf.fprintf oc "%.3f %s\n" t label) slow;
      close_out oc;
      Printf.eprintf "[store] slowest cells -> %s\n%!" path);
    Rn_harness.Harness.clear_store ();
    Store.close s
  | None -> ());
  if metrics then begin
    List.iter
      (fun (id, snap) ->
        Format.printf "=== metrics: %s ===@\n%a@\n" id Rn_util.Metrics.pp_snapshot snap)
      (Rn_harness.Harness.experiment_metrics ())
  end;
  if profile then Rn_util.Timing.print_report ();
  if !any_failed then exit 1

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Full scale (slower, more sizes/reps).")

let jobs_arg =
  Arg.(
    value
    & opt int (Rn_util.Pool.recommended_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for experiment cells (default: cores - 1, capped). Tables are \
           identical for every value; 1 runs strictly sequentially.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print engine round-loop section timings (wake/collect/adversary/deliver/resume) \
           aggregated over all runs; see EXPERIMENTS.md for how to read the report.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the metrics registry and print per-experiment aggregated counters and \
           histograms (engine.*, store.*, cell.*) after the tables.")

let store_arg =
  Arg.(
    value & opt string ".rn-store"
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Result store directory: finished cells are journalled there as they complete, \
           a re-run replays them, and a killed sweep resumes from the journal.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the result store entirely: every cell is recomputed, nothing is written.")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Re-run a cell that raises up to N extra times before recording it as failed \
           (cells are deterministic, so this rederives nothing: same key, same result).")

let cell_timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "cell-timeout" ] ~docv:"SEC"
        ~doc:
          "Per-cell wall-clock budget: a cell that reaches it is recorded as \
           failed-but-resumable and the rest of the sweep still runs (and caches).")

let exp_adv_kernel_arg =
  Arg.(
    value & opt string "auto"
    & info [ "adv-kernel" ] ~docv:"MODE"
        ~doc:
          "Adversary kernel mode for every cell: auto, on, or off. Pure evaluation \
           strategy — tables are byte-identical for every value (and compatible with \
           cached cells).")

let exp_resume_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "resume-shards" ] ~docv:"N"
        ~doc:
          "Shard each round's fiber resume loop across N domains for every cell. \
           Pure evaluation strategy — tables are byte-identical at any value (and \
           compatible with cached cells).")

let exp_resume_kernel_arg =
  Arg.(
    value & opt string "auto"
    & info [ "resume-kernel" ] ~docv:"MODE"
        ~doc:
          "Resume kernel mode for every cell: auto (live-fiber cost model), on, or \
           off (scalar path). Byte-identical for every value.")

let experiment_cmd =
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's experiment tables (see DESIGN.md).")
    Term.(
      const run_experiments $ ids_arg $ full_arg $ jobs_arg $ profile_arg $ metrics_arg
      $ store_arg $ no_cache_arg $ retry_arg $ cell_timeout_arg $ exp_adv_kernel_arg
      $ exp_resume_shards_arg $ exp_resume_kernel_arg)

(* --- store command --- *)

let store_dir_pos =
  Arg.(value & opt string ".rn-store" & info [ "store" ] ~docv:"DIR" ~doc:"Store directory.")

let per_group records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Store.record_) ->
      let g = (r.key.exp, r.key.code_version, r.key.scale, r.key.env) in
      let ok, fl = Option.value (Hashtbl.find_opt tbl g) ~default:(0, 0) in
      Hashtbl.replace tbl g
        (match r.status with Store.Done -> (ok + 1, fl) | Store.Failed -> (ok, fl + 1)))
    records;
  Hashtbl.fold (fun g c acc -> (g, c) :: acc) tbl [] |> List.sort compare

(* Minimal JSON string escaping for the --json output (keys here are
   identifiers; only journal problem messages could be exotic). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Fault-recovery counters mirrored by the sweep daemon into
   <dir>/daemon-stats.sexp (requeues, claim waits, heartbeat age) —
   absent when no daemon ever ran against this store. *)
let read_daemon_stats dir =
  let module Sx = Rn_util.Sexp in
  let path = Filename.concat dir "daemon-stats.sexp" in
  if not (Sys.file_exists path) then None
  else
    match Sx.parse_file path with
    | sx ->
      let int1 key =
        match Sx.assoc key sx with
        | Some [ v ] -> Option.value (Sx.as_int v) ~default:0
        | _ -> 0
      in
      let counters =
        match Sx.assoc "counters" sx with
        | Some entries ->
          List.filter_map
            (function
              | Sx.List [ Sx.Atom k; v ] -> Option.map (fun n -> (k, n)) (Sx.as_int v)
              | _ -> None)
            entries
        | None -> []
      in
      Some (counters, int1 "heartbeat-age-ms", int1 "workers-alive", int1 "inflight")
    | exception _ -> None

let run_store_stats dir json =
  let scan = Store.scan_file (Store.journal_path dir) in
  if json then begin
    let groups =
      List.map
        (fun ((exp, v, scale, env), (ok, fl)) ->
          Printf.sprintf
            {|{"exp":"%s","version":%d,"scale":"%s","env":"%s","ok":%d,"failed":%d}|}
            (json_escape exp) v (json_escape scale) (json_escape env) ok fl)
        (per_group scan.Store.good)
    in
    let problems = List.map (fun m -> "\"" ^ json_escape m ^ "\"") scan.Store.problems in
    let last_run =
      match Store.read_last_run ~dir with
      | Some (h, m, f) -> Printf.sprintf {|{"hits":%d,"misses":%d,"failures":%d}|} h m f
      | None -> "null"
    in
    let daemon =
      match read_daemon_stats dir with
      | None -> "null"
      | Some (counters, hb, alive, inflight) ->
        let kvs =
          List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
            counters
        in
        Printf.sprintf
          {|{"counters":{%s},"heartbeat_age_ms":%d,"workers_alive":%d,"inflight":%d}|}
          (String.concat "," kvs) hb alive inflight
    in
    Printf.printf
      {|{"dir":"%s","records":%d,"journal_bytes":%d,"intact_bytes":%d,"problems":[%s],"groups":[%s],"last_run":%s,"daemon":%s}|}
      (json_escape dir)
      (List.length scan.Store.good)
      scan.Store.total_bytes scan.Store.good_bytes (String.concat "," problems)
      (String.concat "," groups) last_run daemon;
    print_newline ()
  end
  else begin
    Printf.printf "store %s: %d records, journal %d bytes (%d intact)\n" dir
      (List.length scan.Store.good) scan.Store.total_bytes scan.Store.good_bytes;
    List.iter
      (fun m -> Printf.printf "  journal: %s\n" m)
      scan.Store.problems;
    List.iter
      (fun ((exp, v, scale, env), (ok, fl)) ->
        Printf.printf "  %-4s v%d %-5s %-6s %d ok%s\n" exp v scale env ok
          (if fl > 0 then Printf.sprintf ", %d failed" fl else ""))
      (per_group scan.Store.good);
    (match Store.read_last_run ~dir with
    | Some (h, m, f) ->
      let total = h + m in
      let pct = if total = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int total in
      Printf.printf "last run: hits=%d misses=%d failed=%d (%.1f%% hits)\n" h m f pct
    | None -> ());
    match read_daemon_stats dir with
    | None -> ()
    | Some (counters, hb, alive, inflight) ->
      let c k = Option.value (List.assoc_opt k counters) ~default:0 in
      Printf.printf
        "daemon: requeued=%d claim-waits=%d heartbeat-age=%.1fs workers-alive=%d in-flight=%d\n"
        (c "cells.requeued") (c "cells.claim_theirs")
        (float_of_int hb /. 1000.0)
        alive inflight
  end

let run_store_gc dir =
  let s = Store.open_ dir in
  let live = Rn_harness.All.versions in
  (* Must match the env the harness keys cells under (payload-format
     tag included), or gc would prune every live record. *)
  let env = Rn_harness.Harness.cell_env in
  let keep (r : Store.record_) =
    r.key.env = env
    && List.exists (fun (id, v) -> id = r.key.exp && v = r.key.code_version) live
  in
  let dropped = Store.gc s ~keep in
  Printf.printf "store %s: pruned %d stale records, kept %d\n" dir dropped (Store.count s);
  Store.close s

let run_store_verify dir =
  let path = Store.journal_path dir in
  let scan = Store.scan_file path in
  Printf.printf "store %s: %d records intact (%d/%d bytes)\n" dir
    (List.length scan.Store.good) scan.Store.good_bytes scan.Store.total_bytes;
  if scan.Store.problems <> [] then begin
    List.iter (fun m -> Printf.printf "  INTEGRITY: %s\n" m) scan.Store.problems;
    exit 1
  end

let store_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let store_cmd =
  let sub name doc f =
    Cmd.v (Cmd.info name ~doc) Term.(const f $ store_dir_pos)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and maintain the experiment result store.")
    [
      Cmd.v
        (Cmd.info "stats"
           ~doc:"Record counts per experiment/version and last-run hit rates.")
        Term.(const run_store_stats $ store_dir_pos $ store_json_arg);
      sub "gc" "Prune records with a stale code_version or engine digest." run_store_gc;
      sub "verify" "Re-hash every journal record and check integrity." run_store_verify;
    ]

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List experiment ids.")
    Term.(
      const (fun () -> List.iter print_endline Rn_harness.All.ids) $ const ())

(* --- scenario command --- *)

let run_scenario_files files =
  List.iter
    (fun path ->
      Printf.printf "== %s ==\n" path;
      match Rn_harness.Scenario.run_file path with
      | report -> print_string (Rn_harness.Scenario.render report)
      | exception Rn_harness.Scenario.Scenario_error m ->
        Printf.eprintf "scenario error: %s\n" m;
        exit 1
      | exception Rn_util.Sexp.Parse_error { pos; message } ->
        Printf.eprintf "parse error at %d: %s\n" pos message;
        exit 1)
    files

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Scenario files (.sexp).")

let scenario_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run declarative scenario files (see scenarios/*.sexp).")
    Term.(const run_scenario_files $ files_arg)

(* --- figures command --- *)

let run_figures out =
  let paths = Rn_harness.Figures.write_all out in
  List.iter (fun p -> Printf.printf "wrote %s\n" p) paths

let out_arg =
  Arg.(value & opt string "plots" & info [ "out" ] ~doc:"Output directory for SVG figures.")

let figures_cmd =
  Cmd.v
    (Cmd.info "figures" ~doc:"Render the scaling figures (F1-F4) as SVG files.")
    Term.(const run_figures $ out_arg)

(* --- scale command --- *)

let run_scale full out sizes shards kernel adv_kernel resume_shards resume_kernel adversary
    check =
  let scale = if full then Rn_harness.Harness.Full else Rn_harness.Harness.Quick in
  if shards < 1 then begin
    Printf.eprintf "rn_cli scale: --shards must be >= 1\n";
    exit 2
  end;
  if resume_shards < 1 then begin
    Printf.eprintf "rn_cli scale: --resume-shards must be >= 1\n";
    exit 2
  end;
  let kernel = kernel_mode_of_string ~flag:"--kernel" kernel in
  let adv_kernel = kernel_mode_of_string ~flag:"--adv-kernel" adv_kernel in
  let resume_kernel = kernel_mode_of_string ~flag:"--resume-kernel" resume_kernel in
  let sizes =
    match sizes with
    | None -> None
    | Some csv -> (
      match
        List.map
          (fun s ->
            let v = int_of_string (String.trim s) in
            if v < 2 then failwith "too small";
            v)
          (String.split_on_char ',' csv)
      with
      | l -> Some l
      | exception _ ->
        Printf.eprintf "rn_cli scale: bad --sizes %S (want a CSV of ints >= 2)\n" csv;
        exit 2)
  in
  Rn_harness.Harness.print
    (Rn_harness.Exp_scale.run ?out ?sizes ~shards ~kernel ~adv_kernel ~resume_shards
       ~resume_kernel ~adversary ~check scale)

let scale_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Also write the S1 log-log figure (SVG) into DIR.")

let scale_sizes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sizes" ] ~docv:"CSV"
        ~doc:"Override the size grid with a comma-separated list of n values.")

let scale_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard each round's delivery scatter across N domains. Results are \
           byte-identical at any shard count.")

let scale_kernel_arg =
  Arg.(
    value & opt string "auto"
    & info [ "kernel" ] ~docv:"MODE"
        ~doc:"Delivery kernel mode: auto (cost model), on, or off (scalar path).")

let scale_adv_kernel_arg =
  Arg.(
    value & opt string "auto"
    & info [ "adv-kernel" ] ~docv:"MODE"
        ~doc:
          "Adversary kernel mode: auto (per-round cost model), on (forced for policies \
           that have one), or off (scalar path). Results are byte-identical either way.")

let scale_resume_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "resume-shards" ] ~docv:"N"
        ~doc:
          "Shard each round's fiber resume loop across N domains. Results are \
           byte-identical at any shard count.")

let scale_resume_kernel_arg =
  Arg.(
    value & opt string "auto"
    & info [ "resume-kernel" ] ~docv:"MODE"
        ~doc:
          "Resume kernel mode: auto (live-fiber cost model), on (forced whenever \
           resume-shards > 1), or off (scalar path). Results are byte-identical \
           either way.")

let scale_adversary_arg =
  Arg.(
    value
    & opt adversary_conv (Rn_sim.Adversary.bernoulli 0.5)
    & info [ "adversary" ]
        ~doc:
          "Gray-edge policy for the beacon workload: \
           silent|all|spiteful|jamming|bernoulli:P|harassing:P.")

let scale_check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Print only the deterministic columns (counts, no timings), suitable for \
           byte-comparison across --shards/--kernel settings.")

let scale_cmd =
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Wall-clock scaling sweep (S1): world-generation time and beacon-workload \
          round throughput vs n, with fitted exponents. Quick stops at n=8192; --full \
          goes to n=1048576. Timings are machine-dependent, so this never touches the \
          result store.")
    Term.(
      const run_scale $ full_arg $ scale_out_arg $ scale_sizes_arg $ scale_shards_arg
      $ scale_kernel_arg $ scale_adv_kernel_arg $ scale_resume_shards_arg
      $ scale_resume_kernel_arg $ scale_adversary_arg $ scale_check_arg)

(* --- graph command --- *)

let run_graph_stats file =
  let t0 = Unix.gettimeofday () in
  let scenario =
    match Rn_harness.Scenario.parse (Rn_util.Sexp.parse_file file) with
    | s -> s
    | exception Rn_harness.Scenario.Scenario_error m ->
      Printf.eprintf "scenario error: %s\n" m;
      exit 1
    | exception Rn_util.Sexp.Parse_error { pos; message } ->
      Printf.eprintf "parse error at %d: %s\n" pos message;
      exit 1
  in
  let dual = Rn_harness.Scenario.build_network scenario in
  let build_s = Unix.gettimeofday () -. t0 in
  let n = Dual.n dual in
  let g = Dual.g dual and g' = Dual.g' dual in
  let m = Rn_graph.Graph.edge_count g and m' = Rn_graph.Graph.edge_count g' in
  let gray = Dual.gray_count dual in
  Printf.printf "%s: n=%d |E|=%d |E'|=%d gray=%d (%.1f%% of E')\n" file n m m' gray
    (if m' = 0 then 0.0 else 100.0 *. float_of_int gray /. float_of_int m');
  Printf.printf "degree: G max=%d mean=%.1f, G' max=%d mean=%.1f\n" (Dual.max_degree_g dual)
    (if n = 0 then 0.0 else 2.0 *. float_of_int m /. float_of_int n)
    (Dual.max_degree_g' dual)
    (if n = 0 then 0.0 else 2.0 *. float_of_int m' /. float_of_int n);
  (* Power-of-two degree histogram over G, matching the metrics registry's
     bucket geometry so the shapes are comparable across tools. *)
  let hist =
    Rn_util.Metrics.hist_of_values
      (List.init n (fun v -> Rn_graph.Graph.degree g v))
  in
  Printf.printf "G degree histogram (bucket upper bound: count):\n";
  List.iter (fun (ub, c) -> Printf.printf "  <=%-6d %d\n" ub c) hist.Rn_util.Metrics.buckets;
  (match Dual.positions dual with
  | Some _ -> Printf.printf "embedding: geometric, d=%.2f\n" (Dual.d dual)
  | None -> Printf.printf "embedding: none\n");
  Printf.printf "build time: %.3fs\n" build_s

let scenario_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Scenario file (.sexp) naming the network to build.")

let graph_cmd =
  Cmd.group (Cmd.info "graph" ~doc:"Inspect network instances without running anything.")
    [
      Cmd.v
        (Cmd.info "stats"
           ~doc:
             "Build the network of a scenario file and print its size, degree \
              distribution, gray fraction, and build time.")
        Term.(const run_graph_stats $ scenario_file_arg);
    ]

(* --- broadcast command --- *)

let run_broadcast n degree seed adversary protocol =
  let dual, det = build_instance ~seed ~n ~degree ~tau:0 in
  let proto, rounds =
    match protocol with
    | `Flood -> (Rn_broadcast.Broadcast.Flood 0.1, 12 * n)
    | `Decay -> (Rn_broadcast.Broadcast.Decay (2 * Rn_util.Ilog.log2_up n), 12 * n)
    | `Round_robin ->
      (Rn_broadcast.Broadcast.Round_robin, Rn_broadcast.Broadcast.round_robin_budget dual ~source:0)
    | `Backbone ->
      let ccds = Core.Ccds.run ~seed ~adversary ~detector:(Detector.static det) dual in
      let bb = Array.map (fun o -> o = Some 1) ccds.R.outputs in
      (Rn_broadcast.Broadcast.Backbone { relay = (fun v -> bb.(v)); p = 0.1 }, 12 * n)
  in
  let r = Rn_broadcast.Broadcast.run ~adversary ~seed ~protocol:proto ~source:0 ~rounds dual in
  Printf.printf "coverage=%d/%d transmissions=%d bits=%d rounds=%d\n" r.coverage n r.sends
    r.bits_sent r.rounds

let protocol_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("flood", `Flood);
             ("decay", `Decay);
             ("round-robin", `Round_robin);
             ("backbone", `Backbone);
           ])
        `Flood
    & info [ "protocol" ] ~doc:"flood | decay | round-robin | backbone.")

let broadcast_cmd =
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Disseminate a token from node 0 and report coverage/cost.")
    Term.(const run_broadcast $ n_arg $ degree_arg $ seed_arg $ adversary_arg $ protocol_arg)

(* --- repair command --- *)

let run_repair n degree seed adversary orphans =
  let dual, det0 = build_instance ~seed ~n ~degree ~tau:0 in
  let build = Core.Ccds.run ~seed ~adversary ~detector:(Detector.static det0) dual in
  let old_outputs = build.R.outputs in
  let old_masters =
    Array.map
      (function Some (o : Core.Ccds.outcome) -> o.mis_neighbors | None -> [])
      build.R.returns
  in
  let old_dominators =
    Array.map (function Some (o : Core.Ccds.outcome) -> o.in_mis | None -> false) build.R.returns
  in
  (* orphan up to [orphans] covered processes *)
  let current = ref dual and count = ref 0 in
  Array.iteri
    (fun v o ->
      if !count < orphans && o = Some 0 && old_masters.(v) <> [] then begin
        let candidate =
          Dual.demote_edges !current (List.map (fun m -> (v, m)) old_masters.(v))
        in
        if Rn_graph.Algo.is_connected (Dual.g candidate) then begin
          current := candidate;
          incr count
        end
      end)
    old_outputs;
  let dual1 = !current in
  Printf.printf "demoted the master links of %d processes\n" !count;
  let det1 = Detector.perfect (Dual.g dual1) in
  let rep =
    Core.Repair.run ~seed:(seed + 1) ~adversary ~detector:(Detector.static det1) ~old_outputs
      ~old_dominators ~old_masters dual1
  in
  summarize_engine "repair" (rep.R.rounds, rep.R.stats, rep.R.timed_out);
  Printf.printf "churn: %.1f%%\n"
    (100.0 *. Core.Repair.churn ~before:old_outputs ~after:rep.R.outputs);
  print_ccds_report dual1 det1 rep.R.outputs

let orphans_arg =
  Arg.(value & opt int 3 & info [ "orphans" ] ~doc:"Covered processes to orphan.")

let repair_cmd =
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Build a CCDS, degrade some links, and run the localized repair protocol.")
    Term.(const run_repair $ n_arg $ degree_arg $ seed_arg $ adversary_arg $ orphans_arg)

(* --- trace cell: re-run one sweep cell under an Events sink --- *)

(* Same code path as a worker's [Trace_task] (lib/serve/worker.ml), so
   `rn_cli trace cell` and `rn_cli serve trace` produce byte-identical
   Chrome traces for the same store — determinism makes the warm re-run
   faithful to the original compute. *)
let run_trace_cell exp coord full store_dir out =
  if Rn_harness.All.find exp = None then begin
    Printf.eprintf "rn_cli: unknown experiment %s (known: %s)\n" exp
      (String.concat ", " Rn_harness.All.ids);
    exit 1
  end;
  let scale = if full then Rn_harness.Harness.Full else Rn_harness.Harness.Quick in
  let store = Store.open_ store_dir in
  let data =
    Fun.protect
      ~finally:(fun () ->
        Rn_harness.Harness.clear_trace_target ();
        Rn_harness.Harness.clear_store ();
        Store.close store)
      (fun () ->
        Rn_harness.Harness.set_store store;
        Rn_harness.Harness.set_jobs 1;
        Rn_harness.Harness.set_trace_target ~exp ~coord ();
        (match Rn_harness.All.find exp with
        | Some f -> (
          match f scale with
          | _ -> ()
          | exception Rn_harness.Harness.Cell_failed _ -> ())
        | None -> ());
        match Rn_harness.Harness.take_trace_events () with
        | Some evs -> Rn_sim.Events.to_chrome evs
        | None ->
          Printf.eprintf "rn_cli: no cell %s in %s @%s\n" coord exp
            (if full then "full" else "quick");
          exit 1)
  in
  match out with
  | None ->
    print_string data;
    flush stdout
  | Some path ->
    Out_channel.with_open_bin path (fun oc -> output_string oc data);
    Printf.eprintf "trace: wrote %d bytes to %s\n" (String.length data) path

let trace_exp_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EXP" ~doc:"Experiment id (see 'rn_cli list').")

let trace_coord_pos =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"COORD"
        ~doc:
          "Cell coordinate as printed in slowest.txt, e.g. \"n=256,seed=1\" — the label's \
           last /-separated component.")

let trace_out_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the Chrome trace here (default: stdout).")

let trace_cell_cmd =
  Cmd.v
    (Cmd.info "cell"
       ~doc:
         "Re-run one experiment sweep cell with event tracing and emit its Chrome trace \
          (loads in Perfetto). The rest of the sweep replays warm from the store; the \
          target cell is recomputed under the sink, byte-faithful to the original run.")
    Term.(
      const run_trace_cell $ trace_exp_pos $ trace_coord_pos $ full_arg $ store_arg
      $ trace_out_file_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Structured event tracing: record and query engine event traces.")
    [ trace_run_cmd; trace_inspect_cmd; trace_cell_cmd ]

(* --- the sweep service (serve / work / submit / status / ...) ---

   `rn_cli serve` runs the daemon, `rn_cli work` is the worker entry
   point the daemon spawns, and the rest are one-shot thin clients.
   Tables printed by `submit --wait` / `results` are byte-identical to
   `rn_cli experiment` output (see EXPERIMENTS.md, "The sweep service"). *)

module Serve_p = Rn_serve.Protocol
module Serve_client = Rn_serve.Client

let socket_arg =
  Arg.(
    value
    & opt string (Filename.concat ".rn-store" "serve.sock")
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the daemon listens on.")

let job_pos = Arg.(required & pos 0 (some int) None & info [] ~docv:"JOB" ~doc:"Job id.")

(* One-shot client request with a friendly connection error. *)
let serve_request socket req =
  match Serve_client.request ~socket req with
  | resp -> resp
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
    Printf.eprintf "rn_cli: no daemon at %s (start one with: rn_cli serve)\n" socket;
    exit 1

let die_err m =
  Printf.eprintf "rn_cli: %s\n" m;
  exit 1

let run_serve socket store_dir workers heartbeat log_file =
  Rn_serve.Daemon.run ~workers ~heartbeat ~socket ~store_dir ~log_file ()

let serve_workers_arg =
  Arg.(
    value
    & opt int (Rn_util.Pool.recommended_jobs ())
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker processes to keep alive while jobs are open (default: cores - 1, \
           capped). Tables are identical at any worker count.")

let serve_heartbeat_arg =
  Arg.(
    value & opt float 60.0
    & info [ "heartbeat-timeout" ] ~docv:"SEC"
        ~doc:
          "Declare a connected-but-silent worker dead after this long and requeue its \
           claimed cells (socket EOF requeues immediately; this is the backstop for hung \
           workers).")

let serve_log_arg =
  Arg.(
    value & opt string "-"
    & info [ "log" ] ~docv:"PATH"
        ~doc:
          "Write the daemon log (with monotonic timestamps; spawned workers' stderr too) \
           to this file, rotating any previous log to PATH.1 at startup. \"-\" (default) \
           keeps stderr.")

let serve_daemon_term =
  Term.(
    const run_serve $ socket_arg $ store_arg $ serve_workers_arg $ serve_heartbeat_arg
    $ serve_log_arg)

(* --- serve telemetry subcommands (top / metrics / health / trace) --- *)

let run_serve_health socket =
  match serve_request socket Serve_p.Health with
  | Serve_p.Health_r h -> print_string (Serve_client.format_health h)
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected health reply"

let serve_health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "One-shot daemon health: worker heartbeat ages, queue depths, requeue counters, \
          journal size and growth.")
    Term.(const run_serve_health $ socket_arg)

let run_serve_metrics socket format =
  match serve_request socket Serve_p.Metrics_reg with
  | Serve_p.Metrics_reg_r s -> (
    let snap =
      match Rn_util.Metrics.snapshot_of_sexp (Rn_util.Sexp.parse_string s) with
      | snap -> snap
      | exception _ -> die_err "malformed metrics snapshot from daemon"
    in
    match format with
    | `Json -> print_endline (Rn_util.Metrics.to_json snap)
    | `Prometheus -> print_string (Rn_util.Metrics.to_prometheus snap)
    | `Sexp -> print_endline s)
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected metrics reply"

let serve_metrics_format_arg =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("prometheus", `Prometheus); ("sexp", `Sexp) ]) `Json
    & info [ "format" ] ~docv:"FMT" ~doc:"json | prometheus | sexp.")

let serve_metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Full metrics-registry exposition: the daemon's registry, the scheduler \
          counters, and the latest pushed per-worker snapshots merged into one \
          (commutative merge, so worker arrival order is irrelevant).")
    Term.(const run_serve_metrics $ socket_arg $ serve_metrics_format_arg)

let run_serve_trace socket exp coord full out =
  let scale = if full then Serve_p.Full else Serve_p.Quick in
  match serve_request socket (Serve_p.Trace { exp; scale; coord }) with
  | Serve_p.Trace_r data -> (
    match out with
    | None ->
      print_string data;
      flush stdout
    | Some path ->
      Out_channel.with_open_bin path (fun oc -> output_string oc data);
      Printf.eprintf "trace: wrote %d bytes to %s\n" (String.length data) path)
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected trace reply"

let serve_trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Ask a worker to re-run one finished cell under an event sink and print its \
          Chrome trace — byte-identical to 'rn_cli trace cell' on the same store \
          (blocks until a worker delivers it).")
    Term.(
      const run_serve_trace $ socket_arg $ trace_exp_pos $ trace_coord_pos $ full_arg
      $ trace_out_file_arg)

(* `serve top`: self-refreshing terminal dashboard.  Plain ANSI clear +
   reprint — no terminal library, works in any VT100-ish terminal.
   Cells/sec comes from successive samples of each worker's lifetime
   cell counter; the ETA is in-flight cells x mean cell time spread over
   the live workers (a store-hit-heavy job finishes far sooner). *)
let run_serve_top socket interval count =
  let prev : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let prev_t = ref None in
  let iter = ref 0 in
  let continue () = match count with None -> true | Some n -> !iter < n in
  while continue () do
    incr iter;
    let h =
      match serve_request socket Serve_p.Health with
      | Serve_p.Health_r h -> h
      | Serve_p.Err m -> die_err m
      | _ -> die_err "unexpected health reply"
    in
    let jobs =
      match serve_request socket (Serve_p.Status None) with
      | Serve_p.Status_r { jobs; _ } -> jobs
      | _ -> []
    in
    let now = Unix.gettimeofday () in
    let dt = match !prev_t with None -> 0.0 | Some t -> now -. t in
    prev_t := Some now;
    let b = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    add "rn serve top  -  uptime %.0fs  jobs %d open / %d total  waiters %d\n"
      (float_of_int h.Serve_p.uptime_ms /. 1000.0)
      h.Serve_p.jobs_open h.Serve_p.jobs_total h.Serve_p.waiters;
    add "cells: done %d  hit %d  failed %d  requeued %d  in-flight %d  mean %.1f ms\n\n"
      h.Serve_p.done_cells h.Serve_p.hit_cells h.Serve_p.failed_cells h.Serve_p.requeued
      h.Serve_p.inflight
      (float_of_int h.Serve_p.mean_cell_us /. 1000.0);
    List.iter
      (fun (s : Serve_p.job_summary) ->
        add "job %-3d %-9s exps %d/%d  cells %d (failed %d)  hits %d  misses %d  [%s @%s]\n"
          s.Serve_p.job
          (Serve_p.state_name s.Serve_p.state)
          s.Serve_p.exps_done
          (List.length s.Serve_p.spec.Serve_p.exps)
          s.Serve_p.cells_done s.Serve_p.cells_failed s.Serve_p.hits s.Serve_p.misses
          (String.concat "," s.Serve_p.spec.Serve_p.exps)
          (Serve_p.scale_name s.Serve_p.spec.Serve_p.scale))
      jobs;
    if jobs <> [] then add "\n";
    let total_rate = ref 0.0 and rate_known = ref false and alive = ref 0 in
    List.iter
      (fun (w : Serve_p.worker_health) ->
        if w.Serve_p.halive then incr alive;
        (* A rate needs two samples of the same worker's counter: on the
           first frame (dt = 0), or the first time a worker appears, or
           after a counter reset (respawn), there is no rate yet — render
           "--" instead of 0.0 or a divide-by-dt spike. *)
        let before = Hashtbl.find_opt prev w.Serve_p.hwid in
        Hashtbl.replace prev w.Serve_p.hwid w.Serve_p.hcells;
        let rate =
          match before with
          | Some b when dt > 0.0 && w.Serve_p.hcells >= b ->
            Some (float_of_int (w.Serve_p.hcells - b) /. dt)
          | _ -> None
        in
        (match rate with
        | Some r ->
          total_rate := !total_rate +. r;
          rate_known := true
        | None -> ());
        add "worker %-2d pid %-7d %-5s heartbeat %5.1fs  cells %-6d %s%s\n"
          w.Serve_p.hwid w.Serve_p.hpid
          (if w.Serve_p.halive then "alive" else "lost")
          (float_of_int w.Serve_p.hage_ms /. 1000.0)
          w.Serve_p.hcells
          (match rate with
          | Some r -> Printf.sprintf "%6.1f cells/s" r
          | None -> "    -- cells/s")
          (match w.Serve_p.hjob with
          | None -> ""
          | Some j -> Printf.sprintf "  job %d" j))
      h.Serve_p.hworkers;
    if !rate_known then add "throughput %.1f cells/s" !total_rate
    else add "throughput -- cells/s";
    (* No mean cell time yet (nothing finished) means the ETA is unknown,
       not zero — say so rather than hiding it while work is in flight. *)
    if h.Serve_p.inflight > 0 && !alive > 0 then
      if h.Serve_p.mean_cell_us > 0 then
        add "  eta ~%.0fs (in-flight x mean / workers)"
          (float_of_int (h.Serve_p.inflight * h.Serve_p.mean_cell_us)
          /. 1e6 /. float_of_int !alive)
      else add "  eta -- (no finished cells yet)";
    add "\n";
    (match h.Serve_p.slow_claims with
    | [] -> ()
    | slow ->
      add "\nslowest in-flight cells:\n";
      List.iter
        (fun (key, wid, age_ms) ->
          add "  %8.1fs  w%-2d  %s\n" (float_of_int age_ms /. 1000.0) wid key)
        slow);
    if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
    print_string (Buffer.contents b);
    flush stdout;
    if continue () then Unix.sleepf interval
  done

let top_interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SEC" ~doc:"Refresh period in seconds.")

let top_count_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N" ~doc:"Render N frames and exit (default: refresh forever).")

let serve_top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Self-refreshing terminal dashboard for the daemon: queue state, per-worker \
          throughput, cells/sec, ETA, slowest in-flight cells. Ctrl-C to quit.")
    Term.(const run_serve_top $ socket_arg $ top_interval_arg $ top_count_arg)

let serve_cmd =
  Cmd.group ~default:serve_daemon_term
    (Cmd.info "serve"
       ~doc:
         "Run the sweep daemon: accept submitted experiment sweeps and fan their cells \
          out to worker processes sharing one result store. Subcommands watch a running \
          daemon (top, metrics, health, trace).")
    [ serve_top_cmd; serve_metrics_cmd; serve_health_cmd; serve_trace_cmd ]

let work_cmd =
  Cmd.v
    (Cmd.info "work"
       ~doc:"Worker entry point; normally spawned by the daemon, not run by hand.")
    Term.(const (fun socket -> Rn_serve.Worker.run ~socket ()) $ socket_arg)

(* "exp|scale|vN|env|coord" -> "exp coord": the readable slice of a
   store key for the one-line progress display. *)
let short_key k =
  match String.split_on_char '|' k with
  | exp :: _ :: _ :: _ :: coord :: _ -> exp ^ " " ^ coord
  | _ -> k

(* Live progress rendering for `submit --wait --progress`.  On a tty the
   line redraws in place; piped (CI, the smoke test) each event becomes
   its own greppable line with its monotone sequence number. *)
let progress_renderer job =
  let tty = Unix.isatty Unix.stderr in
  let counts = Hashtbl.create 8 in
  let t0 = Unix.gettimeofday () in
  fun (p : Serve_p.progress) ->
    let name = Serve_p.phase_name p.Serve_p.phase in
    Hashtbl.replace counts name
      (1 + Option.value (Hashtbl.find_opt counts name) ~default:0);
    if tty then begin
      let c k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
      Printf.eprintf "\r[job %d +%.1fs] done %d  hit %d  failed %d  requeued %d  (%s %s)\027[K%!"
        job
        (Unix.gettimeofday () -. t0)
        (c "done") (c "hit") (c "failed") (c "requeued")
        name
        (short_key p.Serve_p.pkey)
    end
    else
      Printf.eprintf "progress seq=%d job=%d worker=%d phase=%s us=%d key=%s\n%!"
        p.Serve_p.pseq p.Serve_p.pjob p.Serve_p.pworker name p.Serve_p.pus
        (short_key p.Serve_p.pkey)

let run_submit socket ids full jobs retry wait progress =
  let ids = if ids = [] then Rn_harness.All.ids else ids in
  let spec =
    {
      Serve_p.exps = ids;
      scale = (if full then Serve_p.Full else Serve_p.Quick);
      jobs;
      retry;
    }
  in
  let io =
    match Serve_client.connect socket with
    | io -> io
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      Printf.eprintf "rn_cli: no daemon at %s (start one with: rn_cli serve)\n" socket;
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Serve_client.close io)
    (fun () ->
      match Serve_client.rpc io (Serve_p.Submit spec) with
      | Serve_p.Err m -> die_err m
      | Serve_p.Job_id j ->
        if not wait then Printf.printf "job %d\n" j
        else begin
          (* stdout stays pure tables; progress goes to stderr *)
          Printf.eprintf "job %d submitted, waiting...\n%!" j;
          let final =
            if progress then begin
              let r = Serve_client.wait_progress io j ~on_progress:(progress_renderer j) in
              if Unix.isatty Unix.stderr then Printf.eprintf "\n%!";
              r
            end
            else Serve_client.rpc io (Serve_p.Wait { job = j; progress = false })
          in
          (match final with
          | Serve_p.Ok_unit -> ()
          | Serve_p.Err m -> die_err m
          | _ -> die_err "unexpected wait reply");
          match Serve_client.rpc io (Serve_p.Results j) with
          | Serve_p.Results_r out ->
            print_string out;
            flush stdout
          | Serve_p.Err m -> die_err m
          | _ -> die_err "unexpected results reply"
        end
      | _ -> die_err "unexpected submit reply")

let submit_wait_arg =
  Arg.(
    value & flag
    & info [ "wait" ]
        ~doc:"Block until the job finishes and print its tables to stdout.")

let submit_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Cell domains per worker process.")

let submit_progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "With --wait, stream per-cell progress events to stderr as they happen (live \
           line on a tty, one line per event when piped). Tables on stdout are unchanged.")

let submit_cmd =
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit an experiment sweep to the daemon.")
    Term.(
      const run_submit $ socket_arg $ ids_arg $ full_arg $ submit_jobs_arg $ retry_arg
      $ submit_wait_arg $ submit_progress_arg)

let run_status socket jid metrics =
  if metrics then
    match serve_request socket Serve_p.Metrics with
    | Serve_p.Metrics_r kvs ->
      List.iter (fun (k, v) -> Printf.printf "%-18s %d\n" k v) kvs
    | Serve_p.Err m -> die_err m
    | _ -> die_err "unexpected metrics reply"
  else
    match serve_request socket (Serve_p.Status jid) with
    | Serve_p.Status_r { jobs; workers } ->
      print_string (Serve_client.format_status jobs workers)
    | Serve_p.Err m -> die_err m
    | _ -> die_err "unexpected status reply"

let status_job_pos =
  Arg.(value & pos 0 (some int) None & info [] ~docv:"JOB" ~doc:"Show only this job.")

let status_metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the daemon's scheduler counters instead.")

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Show the daemon's jobs and workers (pids included).")
    Term.(const run_status $ socket_arg $ status_job_pos $ status_metrics_arg)

let run_results socket j =
  match serve_request socket (Serve_p.Results j) with
  | Serve_p.Results_r out ->
    print_string out;
    flush stdout
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected results reply"

let results_cmd =
  Cmd.v
    (Cmd.info "results" ~doc:"Print a finished job's tables (byte-identical to a direct run).")
    Term.(const run_results $ socket_arg $ job_pos)

let run_cancel socket j =
  match serve_request socket (Serve_p.Cancel j) with
  | Serve_p.Ok_unit -> Printf.printf "job %d cancelled\n" j
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected cancel reply"

let cancel_cmd =
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a queued or running job.")
    Term.(const run_cancel $ socket_arg $ job_pos)

let run_shutdown socket =
  match serve_request socket Serve_p.Shutdown with
  | Serve_p.Ok_unit -> print_endline "daemon stopping"
  | Serve_p.Err m -> die_err m
  | _ -> die_err "unexpected shutdown reply"

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop the daemon (the store journal keeps all finished cells).")
    Term.(const run_shutdown $ socket_arg)

let main =
  Cmd.group
    (Cmd.info "rn_cli" ~version:"1.0.0"
       ~doc:"Dual graph radio network algorithms (Censor-Hillel et al., PODC 2011).")
    [
      mis_cmd; ccds_cmd; bridge_cmd; experiment_cmd; list_cmd; figures_cmd; broadcast_cmd;
      repair_cmd; scenario_cmd; store_cmd; trace_cmd; scale_cmd; graph_cmd; serve_cmd;
      work_cmd; submit_cmd; status_cmd; results_cmd; cancel_cmd; shutdown_cmd;
    ]

let () = exit (Cmd.eval main)
