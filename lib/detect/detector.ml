(* Link detectors (Section 2 of the paper).

   A link detector provides each process u a set L_u estimating which
   neighbours are connected to u by a reliable link.  A τ-complete detector
   satisfies L_u = N_G(u) ∪ W_u with W_u a set of at most τ non-neighbours
   — τ bounds the classification mistakes, and τ = 0 is perfect knowledge.

   As in the rest of this reproduction, process ids coincide with node
   indices (the adversarial process-to-node bijection of the paper only
   matters for algorithms that exploit id structure, which none of the
   paper's algorithms do); detector sets therefore hold node indices. *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual

(* Rows are built lazily: a detector over n nodes holds n bitsets of n
   bits, which at a million nodes is ~125 GB if materialised up front —
   but scale workloads (beacon bodies) never read their detector sets at
   all, and algorithmic bodies only read the rows of nodes that actually
   consult them.  [sets] caches built rows; [build] produces one on
   first use.  Rows are forced from algorithm fibers; a fiber only ever
   forces its own row (process u queries L_u), and under the engine's
   sharded resume each fiber is stepped by exactly one domain per round,
   so row slots are written by at most one domain at a time and the
   cache still needs no lock.  (Whole-detector scans like [h_graph] and
   [is_tau_complete] run outside simulations, on one domain.) *)
type t = { n : int; sets : Bitset.t option array; build : int -> Bitset.t }

let n t = t.n

let set t u =
  match t.sets.(u) with
  | Some s -> s
  | None ->
    let s = t.build u in
    t.sets.(u) <- Some s;
    s

let mem t u v = Bitset.mem (set t u) v

let of_sets sets =
  {
    n = Array.length sets;
    sets = Array.map Option.some sets;
    build = (fun _ -> invalid_arg "Detector.of_sets: no builder");
  }

(* The perfect (0-complete) detector: L_u = N_G(u). *)
let perfect g =
  let n = Graph.n g in
  {
    n;
    sets = Array.make n None;
    build =
      (fun u ->
        let s = Bitset.create n in
        Graph.iter_neighbors (Bitset.add s) g u;
        s);
  }

(* Where detector mistakes are drawn from. *)
type mistake_pool =
  | Gray_only (* misclassify only actual G' gray neighbours (realistic) *)
  | Any_non_neighbor (* arbitrary non-neighbours *)
  | Planted of (int -> int list) (* exact mistakes per node (lower bound) *)

(* A τ-complete detector for the dual graph: perfect knowledge plus up to
   τ mistakes per node drawn from [pool]. *)
let tau_complete ~rng ~tau ?(pool = Gray_only) dual =
  if tau < 0 then invalid_arg "Detector.tau_complete: negative tau";
  let g = Dual.g dual in
  let nn = Graph.n g in
  let base = perfect g in
  (match pool with
  | Planted f ->
    for u = 0 to nn - 1 do
      let ws = f u in
      if List.length ws > tau then
        invalid_arg "Detector.tau_complete: planted mistakes exceed tau";
      List.iter
        (fun w ->
          if w = u || Graph.mem_edge g u w then
            invalid_arg "Detector.tau_complete: planted mistake not a non-neighbor";
          Bitset.add (set base u) w)
        ws
    done
  | Gray_only | Any_non_neighbor ->
    for u = 0 to nn - 1 do
      let candidates =
        match pool with
        | Gray_only -> Array.map fst (Dual.gray_adj dual u)
        | Any_non_neighbor ->
          Array.of_seq
            (Seq.filter
               (fun v -> v <> u && not (Graph.mem_edge g u v))
               (Seq.init nn (fun i -> i)))
        | Planted _ -> assert false
      in
      let picks = min tau (Array.length candidates) in
      if picks > 0 then begin
        let shuffled = Array.copy candidates in
        Rng.shuffle_in_place rng shuffled;
        for k = 0 to picks - 1 do
          Bitset.add (set base u) shuffled.(k)
        done
      end
    done);
  base

(* τ-completeness check: contains every reliable neighbour, never contains
   the node itself, and has at most τ extras. *)
let is_tau_complete t ~tau g =
  let nn = Graph.n g in
  t.n = nn
  &&
  let ok = ref true in
  for u = 0 to nn - 1 do
    if Bitset.mem (set t u) u then ok := false;
    Graph.iter_neighbors (fun v -> if not (Bitset.mem (set t u) v) then ok := false) g u;
    let extras = Bitset.cardinal (set t u) - Graph.degree g u in
    if extras > tau then ok := false
  done;
  !ok

(* The graph H of Section 3: edge (u,v) iff u ∈ L_v and v ∈ L_u.  For a
   τ-complete detector G ⊆ H, and H = G when τ = 0. *)
let h_graph t =
  let nn = n t in
  let es = ref [] in
  for u = 0 to nn - 1 do
    Bitset.iter (fun v -> if u < v && mem t v u then es := (u, v) :: !es) (set t u)
  done;
  Graph.of_edges nn !es

(* --- Dynamic link detectors (Section 8) --------------------------------

   A dynamic detector outputs a set per round.  It "stabilises at r" when
   from round r on its output equals a fixed static detector.  *)

type dynamic = { at : int -> t; stabilizes_at : int option }

let static t = { at = (fun _ -> t); stabilizes_at = Some 0 }

let dynamic ~at ?stabilizes_at () = { at; stabilizes_at }

(* A detector that reports [before] until [round] and [after] from then on:
   the "link degrades / link estimate converges" scenario of Section 8. *)
let switching ~before ~after ~round =
  {
    at = (fun r -> if r < round then before else after);
    stabilizes_at = Some round;
  }

let at dyn round = dyn.at round

(* Round at which the detector is known to stabilise, if any. *)
let stabilizes_at dyn = dyn.stabilizes_at
