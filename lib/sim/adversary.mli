(** Round adversaries controlling gray (unreliable) links. *)

type t

val name : t -> string

(** Fill [active] (a cleared bitset over gray-edge ids) with this round's
    activated gray edges; the adversary sees the broadcasters first, as in
    Section 2.  The scalar reference path — always available, and the one
    {!val:choose_kernel} must match bit-for-bit. *)
val choose :
  t ->
  round:int ->
  broadcasters:int array ->
  Rn_graph.Dual.t ->
  Rn_util.Rng.t ->
  Rn_util.Bitset.t ->
  unit

(** {2 Word-parallel kernel path}

    Deterministic policies ({!all_gray}, {!spiteful}, {!jamming}) carry a
    second implementation of the same activation set that works by mask
    algebra over the dual graph's CSR structures instead of per-edge
    callbacks, mirroring the engine's delivery kernel.  Randomised
    policies ({!bernoulli}, {!harassing}) have none: their per-edge draw
    sequence IS the semantics.  A kernel is certified byte-identical to
    its scalar [choose] at any shard count. *)

(** Preallocated per-run kernel scratch.  [shards > 1] additionally
    allocates private per-shard accumulators; [run_shards] (used only
    when [shards > 1]) must apply its argument to every shard index in
    [0, shards) — typically on the engine's domain pool — and return
    once all have finished. *)
type scratch

val make_scratch :
  ?shards:int -> ?run_shards:((int -> unit) -> unit) -> Rn_graph.Dual.t -> scratch

val has_kernel : t -> bool

(** [`Auto] profitability estimate for this round's broadcasters; [false]
    when the policy has no kernel.  O(#broadcasters). *)
val kernel_wins : t -> broadcasters:int array -> Rn_graph.Dual.t -> bool

(** Kernel counterpart of {!val:choose}: same contract, same resulting
    bytes in [active].  Raises [Invalid_argument] if the policy has no
    kernel (check {!has_kernel}). *)
val choose_kernel :
  t ->
  round:int ->
  broadcasters:int array ->
  Rn_graph.Dual.t ->
  Rn_util.Rng.t ->
  scratch ->
  Rn_util.Bitset.t ->
  unit

(** Never activates a gray edge. *)
val silent : t

(** Activates every gray edge every round. *)
val all_gray : t

(** Every gray edge independently active with probability [p] per round. *)
val bernoulli : float -> t

(** Gray edges incident to broadcasters active with probability [p]. *)
val harassing : float -> t

(** The Section 7 adversary: all gray edges active iff ≥ 2 broadcasters. *)
val spiteful : t

(** The broadcast-hardness adversary ([10,11]-style): adds one gray
    broadcaster at every receiver about to hear a solo reliable sender,
    and never activates a gray edge that could help. *)
val jamming : t

val custom :
  name:string ->
  (round:int ->
  broadcasters:int array ->
  Rn_graph.Dual.t ->
  Rn_util.Rng.t ->
  Rn_util.Bitset.t ->
  unit) ->
  t
