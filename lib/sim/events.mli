(** Structured per-round event tracing.

    The engine emits one {!event} per observable micro-step of a round
    into a bounded ring-buffer {!sink} attached via [Engine.config
    ~sink].  Emission is side-effect-free with respect to the
    simulation: a traced run produces byte-identical results and stats
    to an untraced one.

    Events export to three formats — JSONL (one object per line),
    Chrome trace-event JSON (loadable in Perfetto or chrome://tracing,
    one track per process), and sexp — and each format parses back, so
    [rn_cli trace inspect] can query any trace file it wrote. *)

type kind =
  | Wake  (** process started executing its protocol *)
  | Broadcast of { bits : int }  (** process sent; [bits] on the channel *)
  | Deliver of { src : int }  (** message from [src] received *)
  | Collide of { senders : int }  (** >1 reliable sender; receiver heard noise *)
  | Gray of { active : int; total : int }
      (** adversary resolved the gray edges: [active] of [total]
          gray edges made reliable this round (round-scoped) *)
  | Decide of { value : int }  (** process produced its first output *)
  | Skip of { rounds : int }
      (** the engine fast-forwarded [rounds] provably silent rounds
          (round-scoped; [round] is the round execution resumed at) *)

type event = {
  round : int;  (** 1-based simulation round *)
  proc : int;  (** process id, or [-1] for round-scoped events *)
  kind : kind;
}

val kind_name : kind -> string

(** {1 Sink} *)

type sink

(** [create ()] makes a bounded ring-buffer sink.

    @param capacity ring size; the newest [capacity] events are kept
      and older ones are counted as evicted (default [65536]).
    @param rounds inclusive [(lo, hi)] round range filter.
    @param procs keep process-scoped events only for these ids
      (round-scoped events always pass).
    @param sample keep only rounds where [round mod sample = 0]
      (default [1] = every round). *)
val create :
  ?capacity:int -> ?rounds:int * int -> ?procs:int list -> ?sample:int -> unit -> sink

val emit : sink -> event -> unit

(** Buffered events, oldest first. *)
val events : sink -> event list

val length : sink -> int

(** Events accepted into the ring (including since-evicted ones). *)
val emitted : sink -> int

(** Events overwritten because the ring was full. *)
val evicted : sink -> int

(** Events rejected by the round/proc/sampling filters. *)
val filtered : sink -> int

val clear : sink -> unit

(** {1 Ambient sink}

    A process-wide default sink consulted by [Engine.config] when no
    explicit [?sink] is passed.  Lets a caller trace engine runs buried
    inside code that never heard of sinks (harness cells, on-demand
    trace re-runs) by bracketing the computation with
    [set_ambient (Some s) … set_ambient None].  Like an explicit sink
    it forces the scalar engine path; results are byte-identical either
    way (see test_engine_equiv). *)

val set_ambient : sink option -> unit
val ambient : unit -> sink option

(** {1 Export / import}

    Each [to_*] has an inverse that accepts exactly what it wrote. *)

type format = Jsonl | Chrome | Sexp_format

val format_name : format -> string
val export : format -> event list -> string

val to_jsonl : event list -> string
val of_jsonl : string -> event list

(** Chrome trace-event JSON: broadcasts are 8 us duration slices, other
    events instants; one [tid] per process under [pid] 0, round-scoped
    events under [pid] 1; [ts = (round - 1) * 10] us. *)
val to_chrome : event list -> string

val of_chrome : string -> event list
val to_sexp : event list -> string
val of_sexp : string -> event list

(** Parse a trace in any of the three formats (sniffed from the
    content: leading ['('] is sexp, a [traceEvents] wrapper is Chrome,
    otherwise JSONL). *)
val of_string : string -> event list

val pp_event : Format.formatter -> event -> unit
