(* The dual graph round engine (Section 2 semantics).

   Each process runs as an OCaml-5 effect fiber: algorithm code is written
   in direct style and performs [Sync send] once per round.  The engine
   gathers all send intents, lets the adversary pick the round's reach set
   (all of E plus an arbitrary subset of gray edges), computes receives
   under the collision rule — a node receives a message iff it did not
   broadcast and exactly one reachable neighbour broadcast; otherwise it
   gets silence, with no collision detection — and resumes every fiber with
   its receive.

   The round loop is organised so per-round cost scales with *activity*,
   not with n:

   - a live-fiber worklist holds exactly the fibers awaiting this round's
     receive, so send collection, receive computation and resumption touch
     only live ids;
   - wake rounds are pre-sorted into a round-ordered queue, so the wake
     phase is O(#wakers this round);
   - fibers that declare themselves inert for k rounds ([idle]) park in a
     min-heap keyed by resume round instead of being resumed k times;
   - the adversary RNG is re-derived per round from a root stream
     ([Rng.derive_into adv_root round]), so rounds with no broadcasters can
     skip the adversary/delivery phases — and stretches of rounds with no
     live fiber at all are fast-forwarded in one jump — without perturbing
     any later round's randomness;
   - delivery scratch (`recv_count`/`recv_from`/`touched`) and the
     broadcaster buffer are preallocated and reset via the touched list, so
     steady-state rounds allocate nothing but the sorted broadcaster
     snapshot handed to the adversary and observer.

   [run_reference] keeps the original straightforward O(n)-scans-per-round
   loop (modulo the per-round adversary derivation, which is part of the
   semantics now) as a differential-testing oracle: for any config and
   body, [run] and [run_reference] must produce identical results.

   The functor is parameterised by the message type so each algorithm gets
   a typed payload; [size_bits] lets the engine enforce the model's bound b
   on message size in bits. *)

module Bitset = Rn_util.Bitset
module Pool = Rn_util.Pool
module Rng = Rn_util.Rng
module Timing = Rn_util.Timing
module Metrics = Rn_util.Metrics
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

(* Engine-level metrics, recorded at the end of each [run] when the
   registry is enabled ([Metrics.enabled] is sampled once per run, like
   [Timing.enabled], so a disabled registry costs one atomic read per
   simulation).  Registration is idempotent, so these module-level
   handles are shared by every [Make] instantiation. *)
let m_runs = Metrics.counter "engine.runs"
let m_rounds = Metrics.counter "engine.rounds"
let m_sends = Metrics.counter "engine.sends"
let m_deliveries = Metrics.counter "engine.deliveries"
let m_collisions = Metrics.counter "engine.collisions"
let m_bits_sent = Metrics.counter "engine.bits_sent"
let m_silent_rounds = Metrics.counter "engine.silent_rounds"
let m_sharded_rounds = Metrics.counter "engine.sharded_rounds"
let m_adv_kernel_rounds = Metrics.counter "engine.adv_kernel_rounds"

(* Resume-shard counters are recorded on the *calling* domain after the
   merge (the per-shard buffers carry the raw counts home): [Metrics.scoped]
   snapshots see only the calling domain's records, so counting on the
   worker domains would leak the events out of per-cell snapshots even
   though the global atomics themselves merge commutatively. *)
let m_resume_sharded_rounds = Metrics.counter "engine.resume_sharded_rounds"
let m_resume_sharded_steps = Metrics.counter "engine.resume_sharded_steps"
let m_timeouts = Metrics.counter "engine.timeouts"
let m_round_bcast = Metrics.histogram "engine.round_broadcasters"
let m_run_rounds = Metrics.histogram "engine.run_rounds"

module type MESSAGE = sig
  type t

  (* Size of the encoded message in bits, given the network size (ids cost
     ceil(log2 n) bits). *)
  val size_bits : n:int -> t -> int

  val pp : Format.formatter -> t -> unit
end

type stop_condition =
  | All_done (* every fiber returned *)
  | All_decided (* every process produced an output *)
  | At_round of int (* run exactly this many rounds *)

type stats = {
  rounds : int;
  sends : int;
  deliveries : int;
  collisions : int; (* receiver-side: >= 2 reachable broadcasters *)
  bits_sent : int;
  silent_rounds : int; (* rounds with zero broadcasters (fast-forwardable) *)
}

(* Bump whenever the observable round semantics change (delivery rule,
   adversary derivation, RNG streams, ...): cached experiment cells are
   keyed on [semantics_digest], so a bump invalidates every stored
   result computed under the old semantics.  Version 3 is the PR 2
   activity-scaled loop with per-round adversary RNG derivation. *)
let semantics_version = 3
let semantics_digest = Printf.sprintf "eng%d" semantics_version

(* Process-wide default for [config]'s [?adv_kernel], so front-ends that
   share one functor instantiation across every algorithm (the experiment
   harness) can still plumb a CLI override through.  Safe to vary freely:
   the adversary kernel is a pure evaluation strategy — any setting
   produces byte-identical runs. *)
let default_adv_kernel : [ `Auto | `On | `Off ] Atomic.t = Atomic.make `Auto

let set_default_adv_kernel k = Atomic.set default_adv_kernel k
let get_default_adv_kernel () = Atomic.get default_adv_kernel

(* Same plumbing for the resume-phase sharding ([config]'s
   [?resume_shards]/[?resume_kernel]): the sharded resume is a pure
   evaluation strategy (per-process RNG streams are independently derived
   and a fiber's step reads only its own receive slot), so a process-wide
   override is safe and cannot invalidate cached results. *)
let default_resume_shards : int Atomic.t = Atomic.make 1
let set_default_resume_shards s = Atomic.set default_resume_shards (max 1 s)
let get_default_resume_shards () = Atomic.get default_resume_shards
let default_resume_kernel : [ `Auto | `On | `Off ] Atomic.t = Atomic.make `Auto
let set_default_resume_kernel k = Atomic.set default_resume_kernel k
let get_default_resume_kernel () = Atomic.get default_resume_kernel

(* Under [`Auto], a round's resume phase shards only when at least this
   many fibers await their receive: below it, the Pool dispatch and merge
   cost more than stepping the fibers on one domain. *)
let resume_auto_threshold = 1024

(* Private per-shard collection buffers for the sharded resume phase: a
   stepped fiber contributes at most one join *or* one idle-parking, plus
   at most one first decision and one finish, so slice-sized arrays never
   overflow.  Buffers hold only ints — the merge is blits, pushes, and
   counter adds on the main domain, in ascending shard order. *)
type resume_buf = {
  rb_join : int array; (* fibers that performed Sync, in step order *)
  mutable rb_join_n : int;
  rb_idle_r : int array; (* heap keys of fibers that performed Idle *)
  rb_idle_v : int array;
  mutable rb_idle_n : int;
  mutable rb_finished : int; (* fibers whose body returned *)
  mutable rb_decided : int; (* first-time outputs *)
}

module Make (M : MESSAGE) = struct
  type receive = Own | Silence | Recv of M.t

  type _ Effect.t +=
    | Sync : M.t option -> receive Effect.t
    | Idle : int -> unit Effect.t

  type view = {
    view_round : int;
    view_broadcasters : int array; (* who sent this round (read-only) *)
    view_outputs : int option array; (* read-only *)
    view_decided : int option array; (* read-only *)
  }

  type config = {
    dual : Dual.t;
    detector : Detector.dynamic;
    adversary : Adversary.t;
    seed : int;
    b_bits : int option;
    delta_bound : int;
    wake : int array option; (* global wake round per node; default all 1 *)
    stop : stop_condition;
    max_rounds : int;
    observer : (view -> unit) option;
    sink : Events.sink option; (* structured event trace destination *)
    kernel : [ `Auto | `On | `Off ];
        (* dense-round delivery kernel: `Auto picks per round on a cost
           model, `On forces it whenever legal, `Off never uses it.  A
           sink always forces the scalar path (the kernel cannot emit
           per-receiver events); results are identical either way. *)
    shards : int;
        (* intra-run delivery sharding: with [shards > 1] (and the
           kernel not [`Off], no sink), each broadcasting round's
           once/twice accumulation is partitioned across this many Pool
           domains and merged in fixed shard order.  Pure evaluation
           strategy — results are byte-identical at any shard count. *)
    adv_kernel : [ `Auto | `On | `Off ];
        (* word-parallel adversary kernel (mask algebra for the
           deterministic policies): `Auto switches per round on the
           policy's own cost model, `On forces it whenever the policy
           has one, `Off never uses it.  A sink forces the scalar path,
           like [kernel].  Shares [shards]: with [shards > 1] the mask
           accumulation is partitioned across the same Pool domains.
           Results are byte-identical at any setting (certified by
           test_adversary_kernel). *)
    resume_shards : int;
        (* resume-phase sharding: with [resume_shards > 1] (and
           [resume_kernel] not [`Off], no sink), each round's work list —
           the synced fibers in worklist order, then the idlers due this
           round in heap-pop order — is partitioned into contiguous
           slices stepped in parallel on Pool domains.  Each shard
           collects its joins / idle-parkings / finish and decide counts
           into a private buffer; the main domain merges the buffers in
           ascending shard order.  Pure evaluation strategy — results
           are byte-identical at any shard count (test_resume_shard). *)
    resume_kernel : [ `Auto | `On | `Off ];
        (* gates the sharded resume: `Auto shards a round only when the
           live-fiber count clears [resume_auto_threshold] (Pool
           dispatch has a fixed cost), `On shards every round, `Off
           never shards.  A sink forces the scalar path, like the other
           kernels (the scalar step emits Decide events in step order). *)
  }

  let config ?(adversary = Adversary.silent) ?(seed = 0) ?b_bits ?(delta_bound = 0)
      ?wake ?(stop = All_done) ?(max_rounds = 2_000_000) ?observer ?sink
      ?(kernel = `Auto) ?(shards = 1) ?adv_kernel ?resume_shards ?resume_kernel
      ~detector dual =
    if shards < 1 then invalid_arg "Engine.config: shards < 1";
    let adv_kernel =
      match adv_kernel with Some k -> k | None -> Atomic.get default_adv_kernel
    in
    let resume_shards =
      match resume_shards with Some s -> s | None -> Atomic.get default_resume_shards
    in
    if resume_shards < 1 then invalid_arg "Engine.config: resume_shards < 1";
    let resume_kernel =
      match resume_kernel with Some k -> k | None -> Atomic.get default_resume_kernel
    in
    (* No explicit sink: fall back to the process-wide ambient sink (the
       trace-on-demand hook).  Resolved here, once per config, so every
       consumer of [cfg.sink] sees the same decision. *)
    let sink = match sink with Some _ -> sink | None -> Events.ambient () in
    let delta_bound =
      if delta_bound > 0 then delta_bound else Dual.max_degree_g dual
    in
    {
      dual;
      detector;
      adversary;
      seed;
      b_bits;
      delta_bound;
      wake;
      stop;
      max_rounds;
      observer;
      sink;
      kernel;
      shards;
      adv_kernel;
      resume_shards;
      resume_kernel;
    }

  type ctx = {
    me : int;
    n : int;
    delta_bound : int;
    b_bits : int option;
    rng : Rng.t;
    mutable local_round : int; (* completed syncs *)
    current_detector : unit -> Detector.t;
    do_output : int -> unit;
  }

  let me ctx = ctx.me
  let n ctx = ctx.n
  let delta_bound ctx = ctx.delta_bound
  let b_bits ctx = ctx.b_bits
  let rng ctx = ctx.rng
  let round ctx = ctx.local_round
  let detector ctx = Detector.set (ctx.current_detector ()) ctx.me
  let detector_mem ctx v = Bitset.mem (detector ctx) v
  let output ctx v = ctx.do_output v

  let sync ctx send =
    let r = Effect.perform (Sync send) in
    ctx.local_round <- ctx.local_round + 1;
    r

  (* Listen for [k] rounds, discarding receives.  A single [Idle] perform
     lets the engine park the fiber for the whole stretch instead of
     resuming it k times; semantically identical to k silent syncs. *)
  let idle ctx k =
    if k > 0 then begin
      Effect.perform (Idle k);
      ctx.local_round <- ctx.local_round + k
    end

  (* Broadcast with probability [p], otherwise listen. *)
  let sync_p ctx p send = if Rng.bool ctx.rng p then sync ctx (Some send) else sync ctx None

  type 'a result = {
    outputs : int option array;
    returns : 'a option array;
    rounds : int;
    decided_round : int option array;
    stats : stats;
    timed_out : bool;
  }

  type fiber_status = Asleep | Running | Finished

  (* A fiber between resumptions: waiting on this round's receive, parked
     by [idle], or absent (asleep / finished). *)
  type fiber_pending =
    | No_fiber
    | Synced of (receive, unit) Effect.Deep.continuation
    | Idling of (unit, unit) Effect.Deep.continuation

  let no_broadcasters : int array = [||]

  (* Memoise a dynamic detector once it has stabilised (static detectors
     stabilise at round 0), so the common query path is one load instead of
     a closure call per query. *)
  let detector_query dyn round_counter =
    match Detector.stabilizes_at dyn with
    | None -> fun () -> Detector.at dyn !round_counter
    | Some s ->
      let cache = ref None in
      fun () ->
        (match !cache with
        | Some d -> d
        | None ->
          let d = Detector.at dyn !round_counter in
          if !round_counter >= s then cache := Some d;
          d)

  let validate_wake wake =
    Array.iteri
      (fun v w -> if w < 1 then invalid_arg (Printf.sprintf "Engine.run: wake.(%d) < 1" v))
      wake

  let run cfg body =
    let dual = cfg.dual in
    let nn = Dual.n dual in
    let root_rng = Rng.create cfg.seed in
    let adv_root = Rng.derive root_rng 0x5EED in
    let adv_rng = Rng.create 0 (* re-derived from [adv_root] every round *) in
    let wake = match cfg.wake with Some w -> Array.copy w | None -> Array.make nn 1 in
    validate_wake wake;
    let outputs = Array.make nn None in
    let decided = Array.make nn None in
    let returns = Array.make nn None in
    let sends = Array.make nn None in
    let pending = Array.make nn No_fiber in
    let round_counter = ref 0 in
    let sends_total = ref 0 and deliveries = ref 0 and collisions = ref 0 in
    let bits_sent = ref 0 and silent_rounds = ref 0 in
    let n_finished = ref 0 and n_decided = ref 0 in
    let current_detector = detector_query cfg.detector round_counter in
    (* Event tracing: sampled once per run.  [emit] only ever appends to
       the sink's ring buffer — it reads no RNG and mutates no engine
       state, so a traced run is byte-identical to an untraced one. *)
    let tracing, emit =
      match cfg.sink with
      | Some s -> (true, fun e -> Events.emit s e)
      | None -> (false, fun (_ : Events.event) -> ())
    in
    let met = Metrics.enabled () in
    (* Resume-phase sharding.  [resume_assign.(v)] routes fiber [v]'s next
       effect: -1 (the default, and always outside a sharded resume) means
       the handler mutates the global worklist/heap/counters directly; a
       shard index means it appends to that shard's private buffer.
       Assignments are set by the main domain before the Pool dispatch and
       cleared after the merge, so the wake phase and the scalar path never
       see one.  A sink forces the scalar step (Decide events must come out
       in step order), like the delivery and adversary kernels. *)
    let resume_shards =
      if tracing || cfg.resume_kernel = `Off then 1 else cfg.resume_shards
    in
    let resume_assign = Array.make (max 1 nn) (-1) in
    let resume_bufs : resume_buf array ref = ref [||] in
    let mk_ctx v =
      {
        me = v;
        n = nn;
        delta_bound = cfg.delta_bound;
        b_bits = cfg.b_bits;
        rng = Rng.derive root_rng (v + 1);
        local_round = 0;
        current_detector;
        do_output =
          (fun value ->
            match outputs.(v) with
            | Some old when old <> value ->
              invalid_arg
                (Printf.sprintf "Engine: process %d re-output %d after %d" v value old)
            | Some _ -> ()
            | None ->
              outputs.(v) <- Some value;
              decided.(v) <- Some !round_counter;
              (let s = resume_assign.(v) in
               if s < 0 then incr n_decided
               else begin
                 let b = (!resume_bufs).(s) in
                 b.rb_decided <- b.rb_decided + 1
               end);
              if tracing then
                emit { Events.round = !round_counter; proc = v; kind = Decide { value } });
      }
    in
    (* Live worklist: [active.(0 .. n_active-1)] are the fibers holding a
       [Synced] continuation for the current round.  [joining] collects the
       fibers that perform [Sync] during a start/resume phase. *)
    let active = Array.make (max 1 nn) 0 in
    let n_active = ref 0 in
    let joining = Array.make (max 1 nn) 0 in
    let n_joining = ref 0 in
    (* Idling fibers, min-heap keyed by the round at whose end they resume.
       At most one entry per fiber. *)
    let heap_r = Array.make (max 1 nn) 0 in
    let heap_v = Array.make (max 1 nn) 0 in
    let heap_n = ref 0 in
    let heap_swap i j =
      let tr = heap_r.(i) and tv = heap_v.(i) in
      heap_r.(i) <- heap_r.(j);
      heap_v.(i) <- heap_v.(j);
      heap_r.(j) <- tr;
      heap_v.(j) <- tv
    in
    let heap_push r v =
      let i = ref !heap_n in
      heap_r.(!i) <- r;
      heap_v.(!i) <- v;
      incr heap_n;
      while !i > 0 && heap_r.((!i - 1) / 2) > heap_r.(!i) do
        let p = (!i - 1) / 2 in
        heap_swap p !i;
        i := p
      done
    in
    let heap_min () = if !heap_n = 0 then max_int else heap_r.(0) in
    let heap_pop () =
      let v = heap_v.(0) in
      decr heap_n;
      heap_r.(0) <- heap_r.(!heap_n);
      heap_v.(0) <- heap_v.(!heap_n);
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < !heap_n && heap_r.(l) < heap_r.(!s) then s := l;
        if r < !heap_n && heap_r.(r) < heap_r.(!s) then s := r;
        if !s = !i then sifting := false
        else begin
          heap_swap !i !s;
          i := !s
        end
      done;
      v
    in
    (* Wake queue: node ids sorted by (wake round, id); [wake_ptr] advances
       monotonically, so the wake phase costs O(#wakers this round). *)
    let wake_order = Array.init nn (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare wake.(a) wake.(b) in
        if c <> 0 then c else compare a b)
      wake_order;
    let wake_ptr = ref 0 in
    let next_wake () = if !wake_ptr >= nn then max_int else wake.(wake_order.(!wake_ptr)) in
    (* The round a fresh [Idle k] starts counting from: the current round
       during the wake phase, the next round during the resume phase. *)
    let idle_base = ref 0 in
    (* During a sharded resume the handler closures execute on whichever
       Pool domain stepped the fiber; [resume_assign.(v)] routes their
       side effects into that shard's private buffer.  [idle_base] and
       [round_counter] are only read during a resume phase and only
       written by the main domain between phases, so the reads are
       stable. *)
    let handler v : (unit, unit) Effect.Deep.handler =
      {
        retc =
          (fun () ->
            pending.(v) <- No_fiber;
            let s = resume_assign.(v) in
            if s < 0 then incr n_finished
            else begin
              let b = (!resume_bufs).(s) in
              b.rb_finished <- b.rb_finished + 1
            end);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sync send ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  sends.(v) <- send;
                  pending.(v) <- Synced k;
                  let s = resume_assign.(v) in
                  if s < 0 then begin
                    joining.(!n_joining) <- v;
                    incr n_joining
                  end
                  else begin
                    let b = (!resume_bufs).(s) in
                    b.rb_join.(b.rb_join_n) <- v;
                    b.rb_join_n <- b.rb_join_n + 1
                  end)
            | Idle dur ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  pending.(v) <- Idling k;
                  let s = resume_assign.(v) in
                  if s < 0 then heap_push (!idle_base + dur - 1) v
                  else begin
                    let b = (!resume_bufs).(s) in
                    b.rb_idle_r.(b.rb_idle_n) <- !idle_base + dur - 1;
                    b.rb_idle_v.(b.rb_idle_n) <- v;
                    b.rb_idle_n <- b.rb_idle_n + 1
                  end)
            | _ -> None);
      }
    in
    let start v =
      let ctx = mk_ctx v in
      Effect.Deep.match_with (fun () -> returns.(v) <- Some (body ctx)) () (handler v)
    in
    (* Delivery scratch, reset via the touched list each round.  A unique
       broadcaster is remembered by id ([recv_from]) rather than by boxing
       its message. *)
    let recv_count = Array.make nn 0 in
    let recv_from = Array.make nn (-1) in
    let touched = Array.make (max 1 nn) 0 in
    let n_touched = ref 0 in
    let touch u v =
      if recv_count.(v) = 0 then begin
        touched.(!n_touched) <- v;
        incr n_touched;
        recv_from.(v) <- u
      end;
      recv_count.(v) <- recv_count.(v) + 1
    in
    let bcast = Array.make (max 1 nn) 0 in
    let n_bcast = ref 0 in
    let gray_active = Bitset.create (max 1 (Dual.gray_count dual)) in
    (* Word-parallel delivery kernel scratch.  On a dense round the
       once/twice saturating accumulators classify every node at once —
       receives = once ∧ ¬twice ∧ listeners, collisions = twice ∧
       listeners — instead of per-edge touches.  A few words per 63
       nodes each, cheap enough to preallocate unconditionally. *)
    let k_once = Bitset.create nn in
    let k_twice = Bitset.create nn in
    let k_sync = Bitset.create nn in
    let k_idle = Bitset.create nn in
    let k_recv = Bitset.create nn in
    let k_words = Bitset.word_count k_once in
    (* Intra-run sharding: with [shards > 1], broadcasting rounds slice
       the sorted broadcaster array into [shards] contiguous ranges and
       scatter each slice's reach into a private accumulator pair on a
       Pool domain.  The pool is created on the first sharded round and
       shut down when the run ends; tracing and [`Off] fall back to one
       shard (the scalar path emits per-receiver events, and [`Off]
       promises no word-parallel evaluation at all). *)
    let shards = if tracing || cfg.kernel = `Off then 1 else cfg.shards in
    let shard_once =
      if shards > 1 then Array.init shards (fun _ -> Bitset.create nn) else [||]
    in
    let shard_twice =
      if shards > 1 then Array.init shards (fun _ -> Bitset.create nn) else [||]
    in
    let shard_ids = List.init shards Fun.id in
    (* The adversary kernel gates its sharding independently (it can run
       sharded under [kernel = `Off], and vice versa); the Pool is shared
       and sized for whichever path needs more domains. *)
    let adv_shards = if tracing || cfg.adv_kernel = `Off then 1 else cfg.shards in
    let adv_shard_ids = List.init adv_shards Fun.id in
    let pool = ref None in
    let get_pool () =
      match !pool with
      | Some p -> p
      | None ->
        let p = Pool.create ~jobs:(max (max shards adv_shards) resume_shards) in
        pool := Some p;
        p
    in
    (* Sharded-resume scratch, built on the first sharded round: the work
       list (synced fibers then due idlers) and one buffer per shard,
       slice-sized — a stepped fiber appends at most one join or one
       idle-parking. *)
    let resume_work =
      if resume_shards > 1 then Array.make (max 1 nn) 0 else no_broadcasters
    in
    let get_resume_bufs () =
      if Array.length !resume_bufs = 0 then begin
        let cap = (nn / resume_shards) + 1 in
        resume_bufs :=
          Array.init resume_shards (fun _ ->
              {
                rb_join = Array.make cap 0;
                rb_join_n = 0;
                rb_idle_r = Array.make cap 0;
                rb_idle_v = Array.make cap 0;
                rb_idle_n = 0;
                rb_finished = 0;
                rb_decided = 0;
              })
      end;
      !resume_bufs
    in
    (* Adversary kernel scratch, built on the first kernel round (never
       for policies without a kernel or under [`Off]). *)
    let adv_scratch = ref None in
    let get_adv_scratch () =
      match !adv_scratch with
      | Some s -> s
      | None ->
        let run_shards =
          if adv_shards > 1 then
            Some (fun f -> ignore (Pool.run (get_pool ()) f adv_shard_ids))
          else None
        in
        let s = Adversary.make_scratch ~shards:adv_shards ?run_shards dual in
        adv_scratch := Some s;
        s
    in
    (* Shared by the dense kernel and the sharded path: once the round's
       (once, twice) pair sits in [k_once]/[k_twice], classify every node
       word-parallel — receives = once ∧ ¬twice ∧ listeners, collisions =
       twice ∧ listeners — update the counters, leave the synced
       receivers in [k_recv], and report whether there are any. *)
    let kernel_classify () =
      Bitset.clear k_sync;
      Bitset.clear k_idle;
      for i = 0 to !n_active - 1 do
        let v = active.(i) in
        if sends.(v) = None then Bitset.add k_sync v
      done;
      for i = 0 to !heap_n - 1 do
        Bitset.add k_idle heap_v.(i)
      done;
      let any_recv = ref false in
      for w = 0 to k_words - 1 do
        let once = Bitset.get_word k_once w in
        let twice = Bitset.get_word k_twice w in
        let sy = Bitset.get_word k_sync w in
        let listen = sy lor Bitset.get_word k_idle w in
        let recv = once land lnot twice in
        deliveries := !deliveries + Bitset.popcount_word (recv land listen);
        collisions := !collisions + Bitset.popcount_word (twice land listen);
        let rs = recv land sy in
        if rs <> 0 then any_recv := true;
        Bitset.set_word k_recv w rs
      done;
      !any_recv
    in
    (* Receive buffer; all-[Silence] between rounds (entries are reset as
       they are consumed by the resume phase). *)
    let receives = Array.make nn Silence in
    let g = Dual.g dual in
    (* Returns the encoded size so the broadcast event can carry it. *)
    let validate_send v =
      incr sends_total;
      let m = match sends.(v) with Some m -> m | None -> assert false in
      let sz = M.size_bits ~n:nn m in
      bits_sent := !bits_sent + sz;
      (match cfg.b_bits with
      | Some b when sz > b ->
        invalid_arg
          (Format.asprintf "Engine: process %d sent %d bits > b=%d in round %d: %a" v sz b
             !round_counter M.pp m)
      | _ -> ());
      sz
    in
    let stop_now () =
      match cfg.stop with
      | All_done -> !n_finished = nn
      | All_decided -> !n_decided = nn || !n_finished = nn
      | At_round r -> !round_counter >= r
    in
    let timed_out = ref false in
    let prof = Timing.enabled () in
    let ff_skipped = ref 0 in
    let t_mark = ref 0.0 in
    let p_start () = if prof then t_mark := Timing.now () in
    let p_stop sec = if prof then Timing.record sec (Timing.now () -. !t_mark) in
    Fun.protect
      ~finally:(fun () -> match !pool with Some p -> Pool.shutdown p | None -> ())
      (fun () ->
    try
       while not (stop_now ()) do
         (* Fast-forward: with no fiber awaiting a receive and no observer,
            every round before the next wake or idle expiry is a no-op —
            nothing broadcasts, nothing listens, and the per-round adversary
            derivation guarantees the skipped draws cannot influence later
            rounds.  Jump there in one step. *)
         if !n_active = 0 && cfg.observer = None then begin
           let next_event = min (next_wake ()) (heap_min ()) in
           let cap =
             match cfg.stop with
             | At_round tgt -> min tgt cfg.max_rounds
             | All_done | All_decided -> cfg.max_rounds
           in
           let target = min (next_event - 1) cap in
           if target > !round_counter then begin
             let skipped = target - !round_counter in
             silent_rounds := !silent_rounds + skipped;
             ff_skipped := !ff_skipped + skipped;
             round_counter := target;
             if tracing then
               emit { Events.round = target; proc = -1; kind = Skip { rounds = skipped } }
           end
         end;
         if not (stop_now ()) then begin
           if !round_counter >= cfg.max_rounds then begin
             timed_out := true;
             raise Exit
           end;
           incr round_counter;
           let r = !round_counter in
           (* 1. Wake processes scheduled for this round; they run to their
              first sync/idle and thereby register this round's intent. *)
           p_start ();
           idle_base := r;
           n_joining := 0;
           while !wake_ptr < nn && wake.(wake_order.(!wake_ptr)) = r do
             let v = wake_order.(!wake_ptr) in
             incr wake_ptr;
             if tracing then emit { Events.round = r; proc = v; kind = Wake };
             start v
           done;
           if !n_joining > 0 then begin
             Array.blit joining 0 active !n_active !n_joining;
             n_active := !n_active + !n_joining
           end;
           p_stop Timing.Wake;
           (* 2. Collect broadcasters (live fibers only) and enforce the
              message-size bound. *)
           p_start ();
           n_bcast := 0;
           for i = 0 to !n_active - 1 do
             let v = active.(i) in
             if sends.(v) <> None then begin
               bcast.(!n_bcast) <- v;
               incr n_bcast
             end
           done;
           let broadcasters =
             if !n_bcast = 0 then no_broadcasters
             else begin
               let a = Array.sub bcast 0 !n_bcast in
               Array.sort (compare : int -> int -> int) a;
               a
             end
           in
           Array.iter
             (fun v ->
               let sz = validate_send v in
               if tracing then emit { Events.round = r; proc = v; kind = Broadcast { bits = sz } })
             broadcasters;
           if met then Metrics.observe m_round_bcast !n_bcast;
           p_stop Timing.Collect;
           if !n_bcast = 0 then incr silent_rounds
           else begin
             (* 3. Adversary picks the gray edges that behave reliably,
                from a stream derived fresh for this round. *)
             p_start ();
             Bitset.clear gray_active;
             Rng.derive_into adv_rng ~parent:adv_root r;
             (* Deterministic policies carry a word-parallel kernel that
                fills [gray_active] by mask algebra; it is certified
                byte-identical to the scalar [choose], so switching per
                round on the policy's cost model is a pure evaluation
                strategy.  Tracing forces scalar, like delivery. *)
             let use_adv_kernel =
               (not tracing)
               &&
               match cfg.adv_kernel with
               | `Off -> false
               | `On -> Adversary.has_kernel cfg.adversary
               | `Auto -> Adversary.kernel_wins cfg.adversary ~broadcasters dual
             in
             if use_adv_kernel then begin
               if met then Metrics.incr m_adv_kernel_rounds;
               Adversary.choose_kernel cfg.adversary ~round:r ~broadcasters dual adv_rng
                 (get_adv_scratch ()) gray_active
             end
             else
               Adversary.choose cfg.adversary ~round:r ~broadcasters dual adv_rng gray_active;
             if tracing then
               emit
                 {
                   Events.round = r;
                   proc = -1;
                   kind =
                     Gray
                       {
                         active = Bitset.cardinal gray_active;
                         total = Dual.gray_count dual;
                       };
                 };
             p_stop Timing.Adversary;
             (* 4. Deliveries along E plus activated gray edges: scalar
                per-edge touches on sparse rounds, the word-parallel
                kernel on dense ones.  The kernel is only a faster
                evaluation of the same collision rule — counts and
                receives are identical by construction (certified by
                test_kernel and test_engine_equiv) — but it cannot emit
                per-receiver events, so a sink forces the scalar path. *)
             p_start ();
             let use_kernel =
               (not tracing)
               &&
               match cfg.kernel with
               | `Off -> false
               | `On -> true
               | `Auto ->
                 (* scalar cost ~ total broadcaster reach; kernel cost ~
                    two word-sweeps per broadcaster plus rebuilding the
                    listener masks from the worklist and the heap *)
                 let reach = ref 0 in
                 for i = 0 to !n_bcast - 1 do
                   let u = bcast.(i) in
                   reach := !reach + Graph.degree g u + Dual.gray_degree dual u
                 done;
                 !reach > (((2 * !n_bcast) + 8) * k_words) + !n_active + !heap_n
             in
             if shards > 1 then begin
               (* Sharded scatter: each Pool domain walks its contiguous
                  slice of the sorted broadcaster array and scatters that
                  slice's reach — CSR neighbors plus this round's active
                  gray edges — into its private (once, twice) pair.  The
                  pair is a pure function of the contribution multiset,
                  so merging the shards (in fixed order, though any order
                  gives the same bytes) reproduces the single-domain
                  accumulators exactly; certified against the kernel,
                  scalar, and reference paths by test_shard. *)
               if met then Metrics.incr m_sharded_rounds;
               let nb = !n_bcast in
               ignore
                 (Pool.run (get_pool ())
                    (fun s ->
                      let once = shard_once.(s) and twice = shard_twice.(s) in
                      Bitset.clear once;
                      Bitset.clear twice;
                      for i = s * nb / shards to (((s + 1) * nb) / shards) - 1 do
                        let u = broadcasters.(i) in
                        Graph.iter_neighbors
                          (fun v -> Bitset.acc2_add ~once ~twice v)
                          g u;
                        if Dual.gray_degree dual u > 0 then
                          Dual.iter_gray_adj
                            (fun v e ->
                              if Bitset.mem gray_active e then
                                Bitset.acc2_add ~once ~twice v)
                            dual u
                      done)
                    shard_ids);
               Bitset.clear k_once;
               Bitset.clear k_twice;
               for s = 0 to shards - 1 do
                 Bitset.acc2_merge_into ~once:k_once ~twice:k_twice
                   ~src_once:shard_once.(s) ~src_twice:shard_twice.(s)
               done;
               (* second sweep as in the dense kernel, but walking CSR
                  rows instead of bitset rows — the sharded path never
                  materialises the O(n^2)-bit row cache, which is what
                  lets it run at million-node sizes *)
               if kernel_classify () then
                 Array.iter
                   (fun u ->
                     let m = match sends.(u) with Some m -> m | None -> assert false in
                     Graph.iter_neighbors
                       (fun v -> if Bitset.mem k_recv v then receives.(v) <- Recv m)
                       g u;
                     if Dual.gray_degree dual u > 0 then
                       Dual.iter_gray_adj
                         (fun v e ->
                           if Bitset.mem gray_active e && Bitset.mem k_recv v then
                             receives.(v) <- Recv m)
                         dual u)
                   broadcasters
             end
             else if use_kernel then begin
               let rows = Graph.adj_rows g in
               let ng = Dual.gray_count dual in
               let gmask = if ng > 0 then Dual.gray_masks dual else [||] in
               Bitset.clear k_once;
               Bitset.clear k_twice;
               Array.iter
                 (fun u ->
                   Bitset.acc2_or_into ~once:k_once ~twice:k_twice rows.(u);
                   if ng > 0 && Dual.gray_degree dual u > 0 then
                     Bitset.iter_inter
                       (fun e ->
                         Bitset.acc2_add ~once:k_once ~twice:k_twice
                           (Dual.gray_other dual e u))
                       gmask.(u) gray_active)
                 broadcasters;
               (* second sweep hands each receiving synced fiber its
                  sender's message; the sender is unique because an
                  exactly-one-sender node lies in exactly one
                  broadcaster's reach set.  Skipped outright when nobody
                  received (the common case under heavy contention). *)
               if kernel_classify () then
                 Array.iter
                   (fun u ->
                     let m = match sends.(u) with Some m -> m | None -> assert false in
                     Bitset.iter_inter (fun v -> receives.(v) <- Recv m) rows.(u) k_recv;
                     if ng > 0 && Dual.gray_degree dual u > 0 then
                       Bitset.iter_inter
                         (fun e ->
                           let v = Dual.gray_other dual e u in
                           if Bitset.mem k_recv v then receives.(v) <- Recv m)
                         gmask.(u) gray_active)
                   broadcasters
             end
             else begin
               n_touched := 0;
               Array.iter
                 (fun u ->
                   Graph.iter_neighbors (fun v -> touch u v) g u;
                   Dual.iter_gray_adj
                     (fun v e -> if Bitset.mem gray_active e then touch u v)
                     dual u)
                 broadcasters;
               for i = 0 to !n_touched - 1 do
                 let v = touched.(i) in
                 (if sends.(v) = None then
                    match pending.(v) with
                    | Synced _ ->
                      if recv_count.(v) = 1 then begin
                        (match sends.(recv_from.(v)) with
                        | Some m -> receives.(v) <- Recv m
                        | None -> assert false);
                        incr deliveries;
                        if tracing then
                          emit { Events.round = r; proc = v; kind = Deliver { src = recv_from.(v) } }
                      end
                      else begin
                        incr collisions;
                        if tracing then
                          emit { Events.round = r; proc = v; kind = Collide { senders = recv_count.(v) } }
                      end
                    | Idling _ ->
                      (* Parked listeners discard the message, but the
                         delivery (or collision) still happened. *)
                      if recv_count.(v) = 1 then begin
                        incr deliveries;
                        if tracing then
                          emit { Events.round = r; proc = v; kind = Deliver { src = recv_from.(v) } }
                      end
                      else begin
                        incr collisions;
                        if tracing then
                          emit { Events.round = r; proc = v; kind = Collide { senders = recv_count.(v) } }
                      end
                    | No_fiber -> ());
                 recv_count.(v) <- 0;
                 recv_from.(v) <- -1
               done
             end;
             Array.iter (fun v -> receives.(v) <- Own) broadcasters;
             p_stop Timing.Deliver
           end;
           (* 5. Resume every live fiber with its receive, then unpark the
              idlers whose stretch ends this round.  All receives were
              computed before any resume, so next-round intents cannot
              bleed into this round. *)
           p_start ();
           idle_base := r + 1;
           n_joining := 0;
           let use_resume_shards =
             resume_shards > 1
             &&
             match cfg.resume_kernel with
             | `Off -> false
             | `On -> true
             | `Auto ->
               (* Pool dispatch + merge are a fixed per-round cost; only
                  rounds with enough fibers to step amortise it. *)
               !n_active >= resume_auto_threshold
           in
           if use_resume_shards then begin
             (* Sharded resume: fix the work list up front — the synced
                fibers in worklist order, then every idler due this round
                in heap-pop order.  [idle] guarantees dur >= 1, so any
                Idle performed by a stepped fiber parks at a key >= r+1:
                the due set cannot grow while we step, which is what
                makes popping it before the first step sound.  Contiguous
                slices then step on Pool domains; per-process RNG streams
                are independently derived and a step reads only its own
                [receives] slot, so slices are independent.  Merging the
                per-shard buffers in ascending shard order reproduces the
                sequential pop-all-then-step outcome exactly; any
                residual ordering freedom (heap layout among equal keys,
                worklist order) is unobservable in results — certified
                against the scalar path and [run_reference] by
                test_resume_shard. *)
             Array.blit active 0 resume_work 0 !n_active;
             let mw = ref !n_active in
             while !heap_n > 0 && heap_r.(0) = r do
               resume_work.(!mw) <- heap_pop ();
               incr mw
             done;
             let m = !mw in
             if met then begin
               Metrics.incr m_resume_sharded_rounds;
               Metrics.add m_resume_sharded_steps m
             end;
             let bufs = get_resume_bufs () in
             for s = 0 to resume_shards - 1 do
               let b = bufs.(s) in
               b.rb_join_n <- 0;
               b.rb_idle_n <- 0;
               b.rb_finished <- 0;
               b.rb_decided <- 0;
               for i = s * m / resume_shards to (((s + 1) * m) / resume_shards) - 1 do
                 resume_assign.(resume_work.(i)) <- s
               done
             done;
             Pool.run_n (get_pool ())
               (fun s ->
                 for i = s * m / resume_shards to (((s + 1) * m) / resume_shards) - 1 do
                   let v = resume_work.(i) in
                   match pending.(v) with
                   | Synced k ->
                     let recv = receives.(v) in
                     receives.(v) <- Silence;
                     sends.(v) <- None;
                     pending.(v) <- No_fiber;
                     Effect.Deep.continue k recv
                   | Idling k ->
                     pending.(v) <- No_fiber;
                     Effect.Deep.continue k ()
                   | No_fiber -> assert false
                 done)
               resume_shards;
             for s = 0 to resume_shards - 1 do
               let b = bufs.(s) in
               Array.blit b.rb_join 0 joining !n_joining b.rb_join_n;
               n_joining := !n_joining + b.rb_join_n;
               for i = 0 to b.rb_idle_n - 1 do
                 heap_push b.rb_idle_r.(i) b.rb_idle_v.(i)
               done;
               n_finished := !n_finished + b.rb_finished;
               n_decided := !n_decided + b.rb_decided
             done;
             for i = 0 to m - 1 do
               resume_assign.(resume_work.(i)) <- -1
             done
           end
           else begin
             for i = 0 to !n_active - 1 do
               let v = active.(i) in
               match pending.(v) with
               | Synced k ->
                 let recv = receives.(v) in
                 receives.(v) <- Silence;
                 sends.(v) <- None;
                 pending.(v) <- No_fiber;
                 Effect.Deep.continue k recv
               | Idling _ | No_fiber -> assert false
             done;
             while !heap_n > 0 && heap_r.(0) = r do
               let v = heap_pop () in
               match pending.(v) with
               | Idling k ->
                 pending.(v) <- No_fiber;
                 Effect.Deep.continue k ()
               | Synced _ | No_fiber -> assert false
             done
           end;
           Array.blit joining 0 active 0 !n_joining;
           n_active := !n_joining;
           p_stop Timing.Resume;
           match cfg.observer with
           | Some f ->
             f
               {
                 view_round = r;
                 view_broadcasters = broadcasters;
                 view_outputs = outputs;
                 view_decided = decided;
               }
           | None -> ()
         end
       done
     with Exit -> ());
    if prof then begin
      Timing.add_rounds (!round_counter - !ff_skipped);
      Timing.add_silent_skipped !ff_skipped
    end;
    if met then begin
      Metrics.incr m_runs;
      Metrics.add m_rounds !round_counter;
      Metrics.add m_sends !sends_total;
      Metrics.add m_deliveries !deliveries;
      Metrics.add m_collisions !collisions;
      Metrics.add m_bits_sent !bits_sent;
      Metrics.add m_silent_rounds !silent_rounds;
      if !timed_out then Metrics.incr m_timeouts;
      Metrics.observe m_run_rounds !round_counter
    end;
    {
      outputs;
      returns;
      rounds = !round_counter;
      decided_round = decided;
      stats =
        {
          rounds = !round_counter;
          sends = !sends_total;
          deliveries = !deliveries;
          collisions = !collisions;
          bits_sent = !bits_sent;
          silent_rounds = !silent_rounds;
        };
      timed_out = !timed_out;
    }

  (* Straightforward reference implementation: full 0..n-1 scans every
     round, no worklist, no fast-forward, adversary consulted every round
     (its per-round derived draws in broadcaster-free rounds are discarded,
     which is exactly the invariant that makes [run]'s skip sound).  Kept
     as the differential-testing oracle for [run]; see
     test/test_engine_equiv.ml.

     [cfg.sink] is ignored here on purpose: event emission is untestable
     by differencing (it is defined as having no observable effect on the
     result), and keeping the oracle free of instrumentation means the
     equivalence tests also certify that tracing never leaks into [run]'s
     semantics. *)
  let run_reference cfg body =
    let dual = cfg.dual in
    let nn = Dual.n dual in
    let root_rng = Rng.create cfg.seed in
    let adv_root = Rng.derive root_rng 0x5EED in
    let wake = match cfg.wake with Some w -> Array.copy w | None -> Array.make nn 1 in
    validate_wake wake;
    let outputs = Array.make nn None in
    let decided = Array.make nn None in
    let returns = Array.make nn None in
    let status = Array.make nn Asleep in
    let sends = Array.make nn None in
    let pending = Array.make nn No_fiber in
    let resume_round = Array.make nn 0 in
    let round_counter = ref 0 in
    let sends_total = ref 0 and deliveries = ref 0 and collisions = ref 0 in
    let bits_sent = ref 0 and silent_rounds = ref 0 in
    let mk_ctx v =
      {
        me = v;
        n = nn;
        delta_bound = cfg.delta_bound;
        b_bits = cfg.b_bits;
        rng = Rng.derive root_rng (v + 1);
        local_round = 0;
        current_detector = (fun () -> Detector.at cfg.detector !round_counter);
        do_output =
          (fun value ->
            match outputs.(v) with
            | Some old when old <> value ->
              invalid_arg
                (Printf.sprintf "Engine: process %d re-output %d after %d" v value old)
            | Some _ -> ()
            | None ->
              outputs.(v) <- Some value;
              decided.(v) <- Some !round_counter);
      }
    in
    let idle_base = ref 0 in
    let handler v : (unit, unit) Effect.Deep.handler =
      {
        retc = (fun () -> status.(v) <- Finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sync send ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  sends.(v) <- send;
                  pending.(v) <- Synced k)
            | Idle dur ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  pending.(v) <- Idling k;
                  resume_round.(v) <- !idle_base + dur - 1)
            | _ -> None);
      }
    in
    let start v =
      status.(v) <- Running;
      let ctx = mk_ctx v in
      Effect.Deep.match_with (fun () -> returns.(v) <- Some (body ctx)) () (handler v)
    in
    let recv_count = Array.make nn 0 in
    let recv_msg : M.t option array = Array.make nn None in
    let touched = ref [] in
    let gray_active = Bitset.create (max 1 (Dual.gray_count dual)) in
    let receives = Array.make nn Silence in
    let g = Dual.g dual in
    let finished () = Array.for_all (fun s -> s = Finished) status in
    let decided_all () = Array.for_all (fun o -> o <> None) outputs in
    let stop_now () =
      match cfg.stop with
      | All_done -> finished ()
      | All_decided -> decided_all () || finished ()
      | At_round r -> !round_counter >= r
    in
    let timed_out = ref false in
    (try
       while not (stop_now ()) do
         if !round_counter >= cfg.max_rounds then begin
           timed_out := true;
           raise Exit
         end;
         incr round_counter;
         let r = !round_counter in
         (* 1. Wake. *)
         idle_base := r;
         for v = 0 to nn - 1 do
           if status.(v) = Asleep && wake.(v) = r then start v
         done;
         (* 2. Collect broadcasters and enforce the message-size bound. *)
         let bcast = ref [] in
         for v = nn - 1 downto 0 do
           if sends.(v) <> None then bcast := v :: !bcast
         done;
         let broadcasters = Array.of_list !bcast in
         Array.iter
           (fun v ->
             incr sends_total;
             let m = match sends.(v) with Some m -> m | None -> assert false in
             let sz = M.size_bits ~n:nn m in
             bits_sent := !bits_sent + sz;
             match cfg.b_bits with
             | Some b when sz > b ->
               invalid_arg
                 (Format.asprintf
                    "Engine: process %d sent %d bits > b=%d in round %d: %a" v sz b r M.pp m)
             | _ -> ())
           broadcasters;
         if Array.length broadcasters = 0 then incr silent_rounds;
         (* 3. Adversary, from this round's derived stream. *)
         Bitset.clear gray_active;
         let adv_rng = Rng.derive adv_root r in
         Adversary.choose cfg.adversary ~round:r ~broadcasters dual adv_rng gray_active;
         (* 4. Deliveries along E plus activated gray edges. *)
         let touch v m =
           if recv_count.(v) = 0 then touched := v :: !touched;
           recv_count.(v) <- recv_count.(v) + 1;
           recv_msg.(v) <- Some m
         in
         Array.iter
           (fun u ->
             let m = match sends.(u) with Some m -> m | None -> assert false in
             Graph.iter_neighbors (fun v -> touch v m) g u;
             Dual.iter_gray_adj
               (fun v e -> if Bitset.mem gray_active e then touch v m)
               dual u)
           broadcasters;
         (* 5. Receives for every live fiber — parked idlers count towards
            deliveries/collisions but discard the payload. *)
         for v = 0 to nn - 1 do
           receives.(v) <- Silence;
           match pending.(v) with
           | No_fiber -> ()
           | Synced _ | Idling _ ->
             if sends.(v) <> None then receives.(v) <- Own
             else if recv_count.(v) = 1 then begin
               (match pending.(v) with
               | Synced _ -> (
                 match recv_msg.(v) with
                 | Some m -> receives.(v) <- Recv m
                 | None -> assert false)
               | _ -> ());
               incr deliveries
             end
             else if recv_count.(v) >= 2 then incr collisions
         done;
         List.iter
           (fun v ->
             recv_count.(v) <- 0;
             recv_msg.(v) <- None)
           !touched;
         touched := [];
         (* 6. Resume synced fibers, then idlers whose stretch ends now. *)
         idle_base := r + 1;
         for v = 0 to nn - 1 do
           match pending.(v) with
           | Synced k ->
             sends.(v) <- None;
             pending.(v) <- No_fiber;
             Effect.Deep.continue k receives.(v)
           | Idling _ | No_fiber -> sends.(v) <- None
         done;
         for v = 0 to nn - 1 do
           match pending.(v) with
           | Idling k when resume_round.(v) = r ->
             pending.(v) <- No_fiber;
             Effect.Deep.continue k ()
           | _ -> ()
         done;
         match cfg.observer with
         | Some f ->
           f
             {
               view_round = r;
               view_broadcasters = broadcasters;
               view_outputs = outputs;
               view_decided = decided;
             }
         | None -> ()
       done
     with Exit -> ());
    {
      outputs;
      returns;
      rounds = !round_counter;
      decided_round = decided;
      stats =
        {
          rounds = !round_counter;
          sends = !sends_total;
          deliveries = !deliveries;
          collisions = !collisions;
          bits_sent = !bits_sent;
          silent_rounds = !silent_rounds;
        };
      timed_out = !timed_out;
    }
end
