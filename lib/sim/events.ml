(* Structured per-round event records.

   The engine emits one [event] per observable micro-step of a round —
   wake, broadcast, delivery, collision, the adversary's gray-edge
   resolution, a process's first decision, and fast-forwarded silent
   stretches — into a bounded ring buffer ([sink]).  Emission never
   touches the engine's RNG or control flow, so a traced run is
   byte-identical to an untraced one (test_metrics proves this by
   qcheck).

   The sink is deliberately bounded: a hot run emits O(sends +
   deliveries) events, so the ring keeps the newest [capacity] events
   and counts evictions instead of growing without limit.  Round-range
   and process filters plus round sampling cut volume at the source.

   Three export formats, each with a parser so traces round-trip:

   - JSONL: one self-contained object per line, greppable, streams.
   - Chrome trace-event JSON: loadable in Perfetto / chrome://tracing;
     one track (tid) per process, round-scoped events on their own
     process row; [ts] is round * 10 us.
   - sexp: matches the repo's scenario tooling.

   The JSON "parsers" here only read what the exporters write (flat
   objects, int fields, one line per event) — they are codecs for our
   own files, not general JSON. *)

module Sexp = Rn_util.Sexp

type kind =
  | Wake
  | Broadcast of { bits : int }
  | Deliver of { src : int }
  | Collide of { senders : int }
  | Gray of { active : int; total : int }
  | Decide of { value : int }
  | Skip of { rounds : int }

(* [proc] is the process id, or -1 for round-scoped events (gray-edge
   resolution, fast-forward skips). *)
type event = { round : int; proc : int; kind : kind }

let kind_name = function
  | Wake -> "wake"
  | Broadcast _ -> "broadcast"
  | Deliver _ -> "deliver"
  | Collide _ -> "collide"
  | Gray _ -> "gray"
  | Decide _ -> "decide"
  | Skip _ -> "skip"

(* --- the ring-buffer sink --- *)

type sink = {
  cap : int;
  buf : event array;
  mutable start : int; (* index of the oldest event *)
  mutable len : int;
  round_lo : int;
  round_hi : int;
  procs : int list option;
  sample : int;
  mutable emitted : int; (* accepted into the ring *)
  mutable evicted : int; (* overwritten oldest events *)
  mutable filtered : int; (* rejected by filters/sampling *)
}

let dummy = { round = 0; proc = -1; kind = Wake }

let create ?(capacity = 65536) ?rounds ?procs ?(sample = 1) () =
  if capacity < 1 then invalid_arg "Events.create: capacity < 1";
  if sample < 1 then invalid_arg "Events.create: sample < 1";
  let round_lo, round_hi = match rounds with Some (a, b) -> (a, b) | None -> (min_int, max_int) in
  {
    cap = capacity;
    buf = Array.make capacity dummy;
    start = 0;
    len = 0;
    round_lo;
    round_hi;
    procs;
    sample;
    emitted = 0;
    evicted = 0;
    filtered = 0;
  }

(* --- ambient sink ---

   A process-wide default consulted by [Engine.config] when no explicit
   [?sink] is passed.  This is how trace-on-demand reaches engine runs
   buried inside harness cells without threading a sink through every
   experiment: the trace runner installs an ambient sink around the one
   cell it wants, recomputes it, and reads the events back.  Atomic so a
   worker domain and the main domain never see a torn pointer. *)

let ambient_sink : sink option Atomic.t = Atomic.make None
let set_ambient s = Atomic.set ambient_sink s
let ambient () = Atomic.get ambient_sink

let keep t e =
  e.round >= t.round_lo
  && e.round <= t.round_hi
  && (t.sample = 1 || e.round mod t.sample = 0)
  && match t.procs with Some ps when e.proc >= 0 -> List.mem e.proc ps | _ -> true

let emit t e =
  if keep t e then begin
    t.buf.((t.start + t.len) mod t.cap) <- e;
    if t.len = t.cap then begin
      t.start <- (t.start + 1) mod t.cap;
      t.evicted <- t.evicted + 1
    end
    else t.len <- t.len + 1;
    t.emitted <- t.emitted + 1
  end
  else t.filtered <- t.filtered + 1

let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))
let length t = t.len
let emitted t = t.emitted
let evicted t = t.evicted
let filtered t = t.filtered

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.emitted <- 0;
  t.evicted <- 0;
  t.filtered <- 0

(* --- JSONL --- *)

let extras_of_kind = function
  | Wake -> []
  | Broadcast { bits } -> [ ("bits", bits) ]
  | Deliver { src } -> [ ("src", src) ]
  | Collide { senders } -> [ ("senders", senders) ]
  | Gray { active; total } -> [ ("active", active); ("total", total) ]
  | Decide { value } -> [ ("value", value) ]
  | Skip { rounds } -> [ ("rounds", rounds) ]

let kind_of_fields name field =
  match name with
  | "wake" -> Wake
  | "broadcast" -> Broadcast { bits = field "bits" }
  | "deliver" -> Deliver { src = field "src" }
  | "collide" -> Collide { senders = field "senders" }
  | "gray" -> Gray { active = field "active"; total = field "total" }
  | "decide" -> Decide { value = field "value" }
  | "skip" -> Skip { rounds = field "rounds" }
  | k -> failwith (Printf.sprintf "Events: unknown event kind %S" k)

let jsonl_of_event e =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf {|{"round":%d,"proc":%d,"kind":"%s"|} e.round e.proc (kind_name e.kind));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf {|,"%s":%d|} k v)) (extras_of_kind e.kind);
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl evs =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (jsonl_of_event e);
      Buffer.add_char b '\n')
    evs;
  Buffer.contents b

(* Extract ["key": 123] from a line of our own JSON output. *)
let int_field line key =
  let pat = Printf.sprintf {|"%s":|} key in
  match
    let rec find i =
      if i + String.length pat > String.length line then None
      else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some i ->
    let j = ref i in
    if !j < String.length line && line.[!j] = '-' then Stdlib.incr j;
    while !j < String.length line && line.[!j] >= '0' && line.[!j] <= '9' do
      Stdlib.incr j
    done;
    if !j = i then None else int_of_string_opt (String.sub line i (!j - i))

let str_field line key =
  let pat = Printf.sprintf {|"%s":"|} key in
  let rec find i =
    if i + String.length pat > String.length line then None
    else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> (
    match String.index_from_opt line i '"' with
    | None -> None
    | Some j -> Some (String.sub line i (j - i)))

let fail_line line = failwith (Printf.sprintf "Events: malformed event line %S" line)

let event_of_json_line line =
  let field k =
    match int_field line k with Some v -> v | None -> fail_line line
  in
  match (str_field line "kind", int_field line "round", int_field line "proc") with
  | Some kind, Some round, Some proc -> { round; proc; kind = kind_of_fields kind field }
  | _ -> fail_line line

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map event_of_json_line

(* --- Chrome trace-event JSON (Perfetto / chrome://tracing) --- *)

(* One simulated round is 10 us of trace time; broadcasts render as 8 us
   slices so they are visible, everything else as instants. *)
let chrome_ts round = (round - 1) * 10

let chrome_of_event e =
  let name = kind_name e.kind in
  let pid, tid = if e.proc < 0 then (1, 0) else (0, e.proc) in
  let args =
    String.concat ","
      (Printf.sprintf {|"round":%d|} e.round
      :: Printf.sprintf {|"proc":%d|} e.proc
      :: List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v) (extras_of_kind e.kind))
  in
  match e.kind with
  | Broadcast _ ->
    Printf.sprintf
      {|{"name":"%s","cat":"rn","ph":"X","ts":%d,"dur":8,"pid":%d,"tid":%d,"args":{%s}}|}
      name (chrome_ts e.round) pid tid args
  | _ ->
    Printf.sprintf
      {|{"name":"%s","cat":"rn","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{%s}}|}
      name (chrome_ts e.round) pid tid args

let to_chrome evs =
  let b = Buffer.create 8192 in
  Buffer.add_string b {|{"displayTimeUnit":"ms","traceEvents":[|};
  Buffer.add_char b '\n';
  (* Track-name metadata: one named thread per process seen, plus the
     round-scoped track. *)
  let procs = List.sort_uniq compare (List.filter_map (fun e -> if e.proc >= 0 then Some e.proc else None) evs) in
  let meta =
    Printf.sprintf {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"processes"}}|}
    :: Printf.sprintf {|{"name":"process_name","ph":"M","pid":1,"args":{"name":"round"}}|}
    :: Printf.sprintf {|{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"adversary/engine"}}|}
    :: List.map
         (fun p ->
           Printf.sprintf {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"proc %d"}}|} p p)
         procs
  in
  let lines = meta @ List.map chrome_of_event evs in
  List.iteri
    (fun i l ->
      Buffer.add_string b l;
      if i < List.length lines - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    lines;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Chrome lines name the kind via "name" and carry round/proc (plus the
   kind's extra fields) in "args"; field extraction works on the whole
   line since keys don't collide. *)
let event_of_chrome_line line =
  let field k =
    match int_field line k with Some v -> v | None -> fail_line line
  in
  match (str_field line "name", int_field line "round", int_field line "proc") with
  | Some kind, Some round, Some proc -> { round; proc; kind = kind_of_fields kind field }
  | _ -> fail_line line

let of_chrome s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         (* keep only real event lines; skip metadata and the wrapper *)
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
           in
           go 0
         in
         has {|"cat":"rn"|})
  |> List.map event_of_chrome_line

(* --- sexp --- *)

let sexp_of_event e =
  let entry k v = Sexp.List [ Sexp.Atom k; Sexp.Atom (string_of_int v) ] in
  Sexp.List
    (entry "round" e.round :: entry "proc" e.proc
    :: Sexp.List [ Sexp.Atom "kind"; Sexp.Atom (kind_name e.kind) ]
    :: List.map (fun (k, v) -> entry k v) (extras_of_kind e.kind))

let to_sexp evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "(events";
  List.iter
    (fun e ->
      Buffer.add_string b "\n ";
      Buffer.add_string b (Sexp.to_string (sexp_of_event e)))
    evs;
  Buffer.add_string b ")\n";
  Buffer.contents b

let event_of_sexp sx =
  let fail () = failwith "Events: malformed event sexp" in
  let entries = match sx with Sexp.List l -> l | Sexp.Atom _ -> fail () in
  let lookup k =
    List.find_map
      (function Sexp.List [ Sexp.Atom k'; v ] when k' = k -> Some v | _ -> None)
      entries
  in
  let int_f k = match lookup k with Some v -> (match Sexp.as_int v with Some i -> i | None -> fail ()) | None -> fail () in
  let kind = match lookup "kind" with Some (Sexp.Atom k) -> k | _ -> fail () in
  { round = int_f "round"; proc = int_f "proc"; kind = kind_of_fields kind int_f }

let of_sexp s =
  match Sexp.parse_string s with
  | Sexp.List (Sexp.Atom "events" :: evs) -> List.map event_of_sexp evs
  | _ -> failwith "Events: expected an (events ...) sexp"

(* --- format dispatch --- *)

type format = Jsonl | Chrome | Sexp_format

let format_name = function Jsonl -> "jsonl" | Chrome -> "chrome" | Sexp_format -> "sexp"

let export format evs =
  match format with Jsonl -> to_jsonl evs | Chrome -> to_chrome evs | Sexp_format -> to_sexp evs

(* Sniff which of the three exporters produced a file. *)
let detect_format s =
  let rec first_non_ws i =
    if i >= String.length s then None
    else match s.[i] with ' ' | '\t' | '\n' | '\r' -> first_non_ws (i + 1) | c -> Some c
  in
  match first_non_ws 0 with
  | Some '(' -> Sexp_format
  | Some '{' ->
    let head = String.sub s 0 (min 200 (String.length s)) in
    let has sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length head && (String.sub head i n = sub || go (i + 1)) in
      go 0
    in
    if has "traceEvents" then Chrome else Jsonl
  | _ -> Jsonl

let of_string s =
  match detect_format s with
  | Jsonl -> of_jsonl s
  | Chrome -> of_chrome s
  | Sexp_format -> of_sexp s

let pp_event ppf e =
  Format.fprintf ppf "r%d %s" e.round
    (if e.proc >= 0 then Printf.sprintf "p%d %s" e.proc (kind_name e.kind) else kind_name e.kind);
  match e.kind with
  | Wake -> ()
  | Broadcast { bits } -> Format.fprintf ppf " bits=%d" bits
  | Deliver { src } -> Format.fprintf ppf " from=%d" src
  | Collide { senders } -> Format.fprintf ppf " senders=%d" senders
  | Gray { active; total } -> Format.fprintf ppf " %d/%d gray edges reliable" active total
  | Decide { value } -> Format.fprintf ppf " value=%d" value
  | Skip { rounds } -> Format.fprintf ppf " fast-forwarded %d silent rounds" rounds
