(* Round adversaries for the dual graph model.

   Each round, after seeing who broadcasts, the adversary picks a reach set
   consisting of all reliable edges E plus an arbitrary subset of the gray
   edges E' \ E (Section 2).  A policy fills a bitset over gray-edge ids.

   The [spiteful] policy is the Section 7 simulation adversary: whenever two
   or more processes broadcast it activates every gray edge, colliding any
   message that would otherwise have crossed between weakly-connected parts;
   a solo broadcaster is left alone so its message travels only on E.

   Deterministic policies additionally carry an optional word-parallel
   KERNEL — a second implementation of exactly the same activation set
   that works by mask algebra instead of per-edge callbacks, mirroring
   the engine's delivery kernel:

   - [all_gray]/[spiteful] activate every gray edge incident to a
     broadcaster.  Dense gray ids follow ascending packed (u, v) order,
     so the ids whose lower endpoint is a given node form one contiguous
     range: the kernel ORs each broadcaster's row in as one
     [Bitset.fill_range] (word-parallel, ranges of distinct nodes
     disjoint) plus per-id visits of the scattered upper-endpoint side
     ([Dual.iter_gray_upper]) — each gray edge is visited at most once
     per side, where the scalar callback walk visits it from every
     broadcasting endpoint and pays a div/mod per visit.
   - [jamming] finds its victims — nodes about to hear exactly one
     reliable broadcaster — with the delivery kernel's once/twice
     saturating accumulator over the broadcasters' reliable neighbours,
     then reads them off word-parallel as once ∧ ¬twice ∧ ¬bcast instead
     of scanning all n nodes; the per-victim choice of one colliding
     gray edge is unchanged (same edge, same order).
   - [bernoulli]/[harassing] have NO kernel: their per-edge RNG draws
     are the semantics — any evaluation that reorders or batches the
     draws changes the stream — so they keep the scalar loop (made
     cheaper below: broadcaster membership is a per-round bitset, not a
     binary search per edge).

   A kernel must produce bit-for-bit the activation set of its scalar
   [choose] (certified by test_adversary_kernel.ml), which is what lets
   the engine switch per round on a cost model.  With [shards > 1] the
   scratch carries private per-shard accumulators and a runner supplied
   by the engine's Pool; contributions are merged in fixed shard order
   ([Bitset.union_into] for activation masks, [Bitset.acc2_merge_into]
   for the once/twice pairs), and since OR and the accumulator pair are
   pure functions of the contribution multiset the sharded result is
   byte-identical to the sequential one. *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual

(* Preallocated scratch for the kernel path, one per engine run (built
   lazily on the first kernel round).  [sc_run] applies a function to
   every shard index — in parallel on the engine's Pool domains when
   sharding, inline otherwise.  [sc_bcast] must be empty between rounds
   (policies restore it by removing what they added). *)
type scratch = {
  sc_shards : int;
  sc_run : (int -> unit) -> unit;
  sc_bcast : Bitset.t; (* capacity n *)
  sc_once : Bitset.t; (* capacity n *)
  sc_twice : Bitset.t; (* capacity n *)
  sc_gray : Bitset.t array; (* per-shard activation masks (capacity gray) *)
  sc_once_s : Bitset.t array; (* per-shard once/twice pairs (capacity n) *)
  sc_twice_s : Bitset.t array;
}

let make_scratch ?(shards = 1) ?run_shards dual =
  let shards = max 1 shards in
  let n = Dual.n dual in
  let ng = max 1 (Dual.gray_count dual) in
  let sc_run =
    match run_shards with
    | Some r when shards > 1 -> r
    | _ ->
      fun f ->
        for s = 0 to shards - 1 do
          f s
        done
  in
  let arr cap = if shards > 1 then Array.init shards (fun _ -> Bitset.create cap) else [||] in
  {
    sc_shards = shards;
    sc_run;
    sc_bcast = Bitset.create n;
    sc_once = Bitset.create n;
    sc_twice = Bitset.create n;
    sc_gray = arr ng;
    sc_once_s = arr n;
    sc_twice_s = arr n;
  }

type choose_fn =
  round:int -> broadcasters:int array -> Dual.t -> Rng.t -> Bitset.t -> unit

type kernel = {
  k_choose :
    round:int -> broadcasters:int array -> Dual.t -> Rng.t -> scratch -> Bitset.t -> unit;
  k_wins : broadcasters:int array -> Dual.t -> bool;
      (* [`Auto] profitability: is the mask path expected to beat the
         scalar one on THIS round's broadcasters?  Must be O(#bcast). *)
}

type t = { name : string; choose : choose_fn; kernel : kernel option }

let name t = t.name

let choose t ~round ~broadcasters dual rng active =
  t.choose ~round ~broadcasters dual rng active

let has_kernel t = t.kernel <> None

let kernel_wins t ~broadcasters dual =
  match t.kernel with None -> false | Some k -> k.k_wins ~broadcasters dual

let choose_kernel t ~round ~broadcasters dual rng scratch active =
  match t.kernel with
  | Some k -> k.k_choose ~round ~broadcasters dual rng scratch active
  | None -> invalid_arg "Adversary.choose_kernel: policy has no kernel"

(* Only gray edges incident to a broadcaster can influence delivery — the
   engine reads the activation bitset exclusively through the broadcasters'
   gray adjacency — so policies below restrict themselves to those edges.
   For deterministic policies this is observably identical; for [bernoulli]
   it merely re-times which stream positions feed which edges (each
   relevant edge still gets one independent draw per round, from the
   round's derived stream). *)

let silent = { name = "silent"; choose = (fun ~round:_ ~broadcasters:_ _ _ _ -> ()); kernel = None }

(* Shared by [all_gray] and [spiteful]: activate every gray edge incident
   to a broadcaster, as one contiguous lower-range fill plus the
   scattered upper ids per broadcaster.  Sharded: contiguous slices of
   the sorted broadcaster array into private masks, merged by OR in
   fixed shard order (any order gives the same bytes). *)
let or_rows_masks ~broadcasters dual scratch active =
  let nb = Array.length broadcasters in
  let fill_slice into lo hi =
    for i = lo to hi - 1 do
      let u = Array.unsafe_get broadcasters i in
      let l0, l1 = Dual.gray_lower_range dual u in
      Bitset.fill_range into l0 l1;
      Dual.iter_gray_upper (fun id -> Bitset.add into id) dual u
    done
  in
  if scratch.sc_shards > 1 && nb >= 2 * scratch.sc_shards then begin
    let shards = scratch.sc_shards in
    scratch.sc_run (fun s ->
        let acc = scratch.sc_gray.(s) in
        Bitset.clear acc;
        fill_slice acc (s * nb / shards) ((s + 1) * nb / shards));
    for s = 0 to shards - 1 do
      Bitset.union_into ~into:active scratch.sc_gray.(s)
    done
  end
  else fill_slice active 0 nb

(* Mask path pays once per broadcaster (range fill) plus once per
   upper-side incidence; scalar pays the full incidence with a div/mod
   callback per visit.  Ask for a modest margin over the fixed per-round
   sweep overhead before switching. *)
let dense_enough ~broadcasters dual =
  let reach = ref 0 in
  Array.iter (fun u -> reach := !reach + Dual.gray_degree dual u) broadcasters;
  !reach > (8 * Array.length broadcasters) + 64

let all_gray =
  {
    name = "all-gray";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        Array.iter
          (fun u -> Dual.iter_gray_adj (fun _ e -> Bitset.add active e) dual u)
          broadcasters);
    kernel =
      Some
        {
          k_choose =
            (fun ~round:_ ~broadcasters dual _ scratch active ->
              or_rows_masks ~broadcasters dual scratch active);
          k_wins = dense_enough;
        };
  }

(* Each gray edge independently active with probability p, fresh each
   round.  One draw per distinct incident edge: the lowest-id broadcasting
   endpoint owns the draw.  NO kernel: the per-edge draw sequence is the
   semantics.  The broadcaster membership test is a per-round bitset
   (filled from the sorted broadcaster array, emptied again after the
   walk) instead of a per-edge binary search — same draws, same stream,
   cheaper by the O(log #bcast) factor on every gray edge.  The bitset
   lives in domain-local storage so one policy value stays safe to share
   across Pool domains running independent cells. *)
let bernoulli p =
  if p < 0.0 || p > 1.0 then invalid_arg "Adversary.bernoulli";
  let dls = Domain.DLS.new_key (fun () -> ref (Bitset.create 0)) in
  {
    name = Printf.sprintf "bernoulli(%.2f)" p;
    choose =
      (fun ~round:_ ~broadcasters dual rng active ->
        let n = Dual.n dual in
        let cell = Domain.DLS.get dls in
        if Bitset.capacity !cell <> n then cell := Bitset.create n;
        let bcast = !cell in
        Array.iter (fun u -> Bitset.add bcast u) broadcasters;
        Array.iter
          (fun u ->
            Dual.iter_gray_adj
              (fun v e ->
                if not (v < u && Bitset.mem bcast v) then
                  if Rng.bool rng p then Bitset.add active e)
              dual u)
          broadcasters;
        Array.iter (fun u -> Bitset.remove bcast u) broadcasters);
    kernel = None;
  }

(* Activate gray edges incident to broadcasters with probability p: a
   cheaper adaptive policy that concentrates unreliability where it can
   actually cause collisions.  NO kernel, like [bernoulli]. *)
let harassing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Adversary.harassing";
  {
    name = Printf.sprintf "harassing(%.2f)" p;
    choose =
      (fun ~round:_ ~broadcasters dual rng active ->
        Array.iter
          (fun u ->
            Dual.iter_gray_adj
              (fun _ e -> if Rng.bool rng p then Bitset.add active e)
              dual u)
          broadcasters);
    kernel = None;
  }

(* Section 7 simulation adversary: collide everything whenever at least two
   processes broadcast, never interfere with a solo broadcaster. *)
let spiteful =
  {
    name = "spiteful";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        if Array.length broadcasters >= 2 then
          Array.iter
            (fun u -> Dual.iter_gray_adj (fun _ e -> Bitset.add active e) dual u)
            broadcasters);
    kernel =
      Some
        {
          k_choose =
            (fun ~round:_ ~broadcasters dual _ scratch active ->
              if Array.length broadcasters >= 2 then
                or_rows_masks ~broadcasters dual scratch active);
          k_wins =
            (fun ~broadcasters dual ->
              Array.length broadcasters >= 2 && dense_enough ~broadcasters dual);
        };
  }

(* Picks the gray edge the scalar jamming loop would: the first
   broadcasting gray neighbour of [v] in descending edge-id order. *)
let jam_victim ~bcast_mem dual active v =
  let jammed = ref false in
  Dual.iter_gray_adj
    (fun w e ->
      if (not !jammed) && bcast_mem w then begin
        Bitset.add active e;
        jammed := true
      end)
    dual v

(* The broadcast-hardness adversary of the dual graph line of work
   (references [10, 11] of the paper): wherever a node is about to hear a
   solo reliable broadcaster, activate a gray edge from *another*
   broadcaster to collide it.  It never helps — gray edges are only ever
   switched on to raise a receiver's broadcaster count past one.

   The scalar path threads preallocated per-domain scratch (broadcast
   flags + reliable-neighbour counts) through domain-local storage, so
   steady-state rounds allocate nothing: flags are cleared by removing
   the broadcasters again, counts by re-walking their neighbourhoods. *)
let jamming =
  let dls = Domain.DLS.new_key (fun () -> ref None) in
  {
    name = "jamming";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        let g = Dual.g dual in
        let n = Dual.n dual in
        let cell = Domain.DLS.get dls in
        let bcast, counts =
          match !cell with
          | Some ((b, _) as s) when Bytes.length b = n -> s
          | _ ->
            let s = (Bytes.make n '\000', Array.make n 0) in
            cell := Some s;
            s
        in
        Array.iter (fun u -> Bytes.unsafe_set bcast u '\001') broadcasters;
        Array.iter
          (fun u ->
            Graph.iter_neighbors
              (fun v -> Array.unsafe_set counts v (Array.unsafe_get counts v + 1))
              g u)
          broadcasters;
        for v = 0 to n - 1 do
          if Bytes.unsafe_get bcast v = '\000' && Array.unsafe_get counts v = 1 then
            (* one gray broadcaster suffices to collide v *)
            jam_victim ~bcast_mem:(fun w -> Bytes.unsafe_get bcast w = '\001') dual active v
        done;
        Array.iter
          (fun u -> Graph.iter_neighbors (fun v -> Array.unsafe_set counts v 0) g u)
          broadcasters;
        Array.iter (fun u -> Bytes.unsafe_set bcast u '\000') broadcasters);
    kernel =
      Some
        {
          k_choose =
            (fun ~round:_ ~broadcasters dual _ scratch active ->
              let g = Dual.g dual in
              let bcast = scratch.sc_bcast in
              let once = scratch.sc_once and twice = scratch.sc_twice in
              Bitset.clear once;
              Bitset.clear twice;
              Array.iter (fun u -> Bitset.add bcast u) broadcasters;
              let nb = Array.length broadcasters in
              if scratch.sc_shards > 1 && nb >= 2 * scratch.sc_shards then begin
                let shards = scratch.sc_shards in
                scratch.sc_run (fun s ->
                    let o = scratch.sc_once_s.(s) and t2 = scratch.sc_twice_s.(s) in
                    Bitset.clear o;
                    Bitset.clear t2;
                    for i = s * nb / shards to (((s + 1) * nb) / shards) - 1 do
                      Graph.iter_neighbors
                        (fun v -> Bitset.acc2_add ~once:o ~twice:t2 v)
                        g broadcasters.(i)
                    done);
                for s = 0 to shards - 1 do
                  Bitset.acc2_merge_into ~once ~twice ~src_once:scratch.sc_once_s.(s)
                    ~src_twice:scratch.sc_twice_s.(s)
                done
              end
              else
                Array.iter
                  (fun u ->
                    Graph.iter_neighbors (fun v -> Bitset.acc2_add ~once ~twice v) g u)
                  broadcasters;
              (* victims = once ∧ ¬twice ∧ ¬bcast, read off word-parallel
                 in ascending order — the same order, and per victim the
                 same gray edge, as the scalar n-scan *)
              let bpw = Bitset.bits_per_word in
              for w = 0 to Bitset.word_count once - 1 do
                let word =
                  ref
                    (Bitset.get_word once w
                    land lnot (Bitset.get_word twice w)
                    land lnot (Bitset.get_word bcast w))
                in
                let base = w * bpw in
                while !word <> 0 do
                  let v = base + Bitset.lowest_bit !word in
                  word := !word land (!word - 1);
                  jam_victim ~bcast_mem:(fun u -> Bitset.mem bcast u) dual active v
                done
              done;
              Array.iter (fun u -> Bitset.remove bcast u) broadcasters);
          k_wins =
            (fun ~broadcasters:_ dual ->
              (* scalar cost is O(n) regardless of activity; the kernel
                 sweeps words instead, so it wins as soon as the scan is
                 more than a few words long *)
              Dual.n dual >= 4 * Bitset.bits_per_word);
        };
  }

let custom ~name choose = { name; choose; kernel = None }
