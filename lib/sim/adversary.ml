(* Round adversaries for the dual graph model.

   Each round, after seeing who broadcasts, the adversary picks a reach set
   consisting of all reliable edges E plus an arbitrary subset of the gray
   edges E' \ E (Section 2).  A policy fills a bitset over gray-edge ids.

   The [spiteful] policy is the Section 7 simulation adversary: whenever two
   or more processes broadcast it activates every gray edge, colliding any
   message that would otherwise have crossed between weakly-connected parts;
   a solo broadcaster is left alone so its message travels only on E. *)

module Bitset = Rn_util.Bitset
module Rng = Rn_util.Rng
module Dual = Rn_graph.Dual

type t = {
  name : string;
  choose :
    round:int -> broadcasters:int array -> Dual.t -> Rng.t -> Bitset.t -> unit;
}

let name t = t.name

let choose t ~round ~broadcasters dual rng active =
  t.choose ~round ~broadcasters dual rng active

(* Only gray edges incident to a broadcaster can influence delivery — the
   engine reads the activation bitset exclusively through the broadcasters'
   gray adjacency — so policies below restrict themselves to those edges.
   For deterministic policies this is observably identical; for [bernoulli]
   it merely re-times which stream positions feed which edges (each
   relevant edge still gets one independent draw per round, from the
   round's derived stream). *)

(* Membership test in a sorted int array (the engine passes broadcasters
   in ascending order). *)
let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let y = a.(mid) in
    if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let silent = { name = "silent"; choose = (fun ~round:_ ~broadcasters:_ _ _ _ -> ()) }

let all_gray =
  {
    name = "all-gray";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        Array.iter
          (fun u -> Dual.iter_gray_adj (fun _ e -> Bitset.add active e) dual u)
          broadcasters);
  }

(* Each gray edge independently active with probability p, fresh each
   round.  One draw per distinct incident edge: the lowest-id broadcasting
   endpoint owns the draw. *)
let bernoulli p =
  if p < 0.0 || p > 1.0 then invalid_arg "Adversary.bernoulli";
  {
    name = Printf.sprintf "bernoulli(%.2f)" p;
    choose =
      (fun ~round:_ ~broadcasters dual rng active ->
        Array.iter
          (fun u ->
            Dual.iter_gray_adj
              (fun v e ->
                if not (v < u && mem_sorted broadcasters v) then
                  if Rng.bool rng p then Bitset.add active e)
              dual u)
          broadcasters);
  }

(* Activate gray edges incident to broadcasters with probability p: a
   cheaper adaptive policy that concentrates unreliability where it can
   actually cause collisions. *)
let harassing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Adversary.harassing";
  {
    name = Printf.sprintf "harassing(%.2f)" p;
    choose =
      (fun ~round:_ ~broadcasters dual rng active ->
        Array.iter
          (fun u ->
            Dual.iter_gray_adj
              (fun _ e -> if Rng.bool rng p then Bitset.add active e)
              dual u)
          broadcasters);
  }

(* Section 7 simulation adversary: collide everything whenever at least two
   processes broadcast, never interfere with a solo broadcaster. *)
let spiteful =
  {
    name = "spiteful";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        if Array.length broadcasters >= 2 then
          Array.iter
            (fun u -> Dual.iter_gray_adj (fun _ e -> Bitset.add active e) dual u)
            broadcasters);
  }

(* The broadcast-hardness adversary of the dual graph line of work
   (references [10, 11] of the paper): wherever a node is about to hear a
   solo reliable broadcaster, activate a gray edge from *another*
   broadcaster to collide it.  It never helps — gray edges are only ever
   switched on to raise a receiver's broadcaster count past one. *)
let jamming =
  {
    name = "jamming";
    choose =
      (fun ~round:_ ~broadcasters dual _ active ->
        let g = Dual.g dual in
        let n = Dual.n dual in
        let bcast = Array.make n false in
        Array.iter (fun u -> bcast.(u) <- true) broadcasters;
        let reliable_count = Array.make n 0 in
        Array.iter
          (fun u ->
            Rn_graph.Graph.iter_neighbors
              (fun v -> reliable_count.(v) <- reliable_count.(v) + 1)
              g u)
          broadcasters;
        for v = 0 to n - 1 do
          if (not bcast.(v)) && reliable_count.(v) = 1 then begin
            (* one gray broadcaster suffices to collide v *)
            let jammed = ref false in
            Dual.iter_gray_adj
              (fun w e ->
                if (not !jammed) && bcast.(w) then begin
                  Bitset.add active e;
                  jammed := true
                end)
              dual v
          end
        done);
  }

let custom ~name choose = { name; choose }
