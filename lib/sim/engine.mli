(** The dual graph round engine.

    Processes are effect-based fibers written in direct style: they call
    {!Make.sync} once per round with an optional message; the engine applies
    the Section 2 semantics (adversarial reach set over gray edges, receive
    iff exactly one reachable broadcaster and not broadcasting yourself, no
    collision detection) and resumes every fiber with its receive. *)

module type MESSAGE = sig
  type t

  (** Encoded size in bits given network size (an id costs ⌈log₂ n⌉). *)
  val size_bits : n:int -> t -> int

  val pp : Format.formatter -> t -> unit
end

type stop_condition =
  | All_done  (** stop when every fiber has returned *)
  | All_decided  (** stop when every process has produced an output *)
  | At_round of int  (** run exactly this many rounds *)

type stats = {
  rounds : int;
  sends : int;
  deliveries : int;
  collisions : int;
  bits_sent : int;
  silent_rounds : int;
      (** rounds in which nothing broadcast; the engine fast-forwards
          stretches of them when no fiber is live *)
}

(** Monotone version of the observable round semantics; bumped whenever
    the delivery rule, adversary derivation, or RNG streams change. *)
val semantics_version : int

(** Cheap digest of the engine configuration space, folded into
    {!Rn_util.Store} cache keys so that stored cell results computed
    under different engine semantics never collide. *)
val semantics_digest : string

(** Process-wide default for {!Make.config}'s [?adv_kernel], for
    front-ends that share one functor instantiation across algorithms
    and want to plumb a CLI override through.  Any setting yields
    byte-identical runs (the adversary kernel is a pure evaluation
    strategy), so changing it never invalidates cached results. *)
val set_default_adv_kernel : [ `Auto | `On | `Off ] -> unit

val get_default_adv_kernel : unit -> [ `Auto | `On | `Off ]

(** Process-wide defaults for {!Make.config}'s [?resume_shards] and
    [?resume_kernel], mirroring {!set_default_adv_kernel}: the sharded
    resume phase is a pure evaluation strategy (byte-identical results
    at any shard count), so a CLI override applied through the shared
    functor instantiation never invalidates cached results.  Values
    below 1 are clamped to 1. *)
val set_default_resume_shards : int -> unit

val get_default_resume_shards : unit -> int
val set_default_resume_kernel : [ `Auto | `On | `Off ] -> unit
val get_default_resume_kernel : unit -> [ `Auto | `On | `Off ]

module Make (M : MESSAGE) : sig
  (** What a process sees at the end of a round: its own broadcast, silence
      (zero or ≥ 2 reachable broadcasters — indistinguishable), or a
      message. *)
  type receive = Own | Silence | Recv of M.t

  (** Read-only snapshot passed to the per-round observer. *)
  type view = {
    view_round : int;
    view_broadcasters : int array;
    view_outputs : int option array;
    view_decided : int option array;
  }

  type config = {
    dual : Rn_graph.Dual.t;
    detector : Rn_detect.Detector.dynamic;
    adversary : Adversary.t;
    seed : int;
    b_bits : int option;  (** enforced bound on message size, if given *)
    delta_bound : int;  (** global Δ bound known to processes *)
    wake : int array option;  (** global wake round per node (≥ 1) *)
    stop : stop_condition;
    max_rounds : int;
    observer : (view -> unit) option;
    sink : Events.sink option;
        (** structured event trace destination; emission has no
            observable effect on the run ({!run_reference} ignores it) *)
    kernel : [ `Auto | `On | `Off ];
        (** dense-round delivery kernel: [`Auto] chooses per round on a
            cost model (scalar per-edge touches for sparse rounds, the
            word-parallel once/twice kernel when the broadcasters' total
            reach exceeds the kernel's word-sweep cost); [`On] forces
            the kernel whenever legal, [`Off] never uses it.  An
            attached [sink] always forces the scalar path.  The choice
            is pure evaluation strategy — results are identical. *)
    shards : int;
        (** intra-run delivery sharding (≥ 1).  With [shards > 1] and
            the kernel not [`Off] (and no [sink]), each broadcasting
            round partitions the sorted broadcaster array into [shards]
            contiguous slices, scatters every slice's reach into a
            private once/twice accumulator pair on an {!Rn_util.Pool}
            domain, and merges the pairs in fixed shard order.  The
            accumulator pair is a pure function of the contribution
            multiset, so results are byte-identical at any shard count
            — pure evaluation strategy, like [kernel]. *)
    adv_kernel : [ `Auto | `On | `Off ];
        (** word-parallel adversary kernel for the deterministic
            policies ({!Adversary.all_gray}, {!Adversary.spiteful},
            {!Adversary.jamming}): mask algebra over the dual graph's
            CSR structures instead of per-edge callbacks.  [`Auto]
            switches per round on the policy's own cost model; [`On]
            forces the kernel whenever the policy has one; [`Off] never
            uses it.  An attached [sink] forces the scalar path, and
            randomised policies always run scalar (their draw sequence
            is the semantics).  Shares [shards] and the Pool with
            delivery.  Pure evaluation strategy — byte-identical results
            at any setting; defaults to {!set_default_adv_kernel}'s
            value ([`Auto] initially). *)
    resume_shards : int;
        (** resume-phase sharding (≥ 1).  With [resume_shards > 1] (and
            [resume_kernel] not [`Off], no [sink]), each round's fiber
            work list — the synced fibers in worklist order, then the
            idlers due this round in heap-pop order — is cut into
            contiguous slices stepped in parallel on {!Rn_util.Pool}
            domains (OCaml 5 continuations are not domain-pinned).
            Every shard collects its broadcast intents, idle-parkings,
            and finish/decide counts into a private preallocated buffer;
            the main domain merges the buffers in ascending shard order.
            Steps are independent because per-process RNG streams are
            derived independently from the seed and a step reads only
            its own receive slot — so the broadcaster set, wake buckets,
            idle heap, and every downstream adversary and delivery
            decision are byte-identical at any shard count.  Pure
            evaluation strategy, like [kernel] and [shards]; defaults to
            {!set_default_resume_shards}'s value (1 initially). *)
    resume_kernel : [ `Auto | `On | `Off ];
        (** gates the sharded resume: [`Auto] shards a round only when
            enough fibers await their receive to amortise the Pool
            dispatch (a live-fiber-count cost model), [`On] shards every
            round, [`Off] never shards.  An attached [sink] forces the
            scalar step (Decide events must be emitted in step order).
            Defaults to {!set_default_resume_kernel}'s value ([`Auto]
            initially). *)
  }

  (** Build a config with sensible defaults: silent adversary, seed 0,
      [delta_bound] defaulting to the true max degree of [G], synchronous
      wake-up, stop at [All_done], 2M-round safety cap, no tracing. *)
  val config :
    ?adversary:Adversary.t ->
    ?seed:int ->
    ?b_bits:int ->
    ?delta_bound:int ->
    ?wake:int array ->
    ?stop:stop_condition ->
    ?max_rounds:int ->
    ?observer:(view -> unit) ->
    ?sink:Events.sink ->
    ?kernel:[ `Auto | `On | `Off ] ->
    ?shards:int ->
    ?adv_kernel:[ `Auto | `On | `Off ] ->
    ?resume_shards:int ->
    ?resume_kernel:[ `Auto | `On | `Off ] ->
    detector:Rn_detect.Detector.dynamic ->
    Rn_graph.Dual.t ->
    config

  (** Per-process handle available inside the fiber. *)
  type ctx

  val me : ctx -> int
  val n : ctx -> int

  (** The Δ bound shared by all processes (phase alignment). *)
  val delta_bound : ctx -> int

  val b_bits : ctx -> int option

  (** This process's private deterministic random stream. *)
  val rng : ctx -> Rn_util.Rng.t

  (** Completed rounds since this process woke (local round number). *)
  val round : ctx -> int

  (** Current round's link detector set [L_me]. *)
  val detector : ctx -> Rn_util.Bitset.t

  val detector_mem : ctx -> int -> bool

  (** Record the process's problem output (0 or 1).  Idempotent for equal
      values; raises on conflicting re-output. *)
  val output : ctx -> int -> unit

  (** Execute one round, optionally broadcasting. *)
  val sync : ctx -> M.t option -> receive

  (** [idle ctx k]: listen for [k] rounds, discarding receives.
      Semantically identical to [k] silent syncs, but performed as a single
      effect so the engine can park the fiber for the whole stretch (and
      fast-forward rounds in which no fiber is live at all). *)
  val idle : ctx -> int -> unit

  (** Broadcast with probability [p], else listen. *)
  val sync_p : ctx -> float -> M.t -> receive

  type 'a result = {
    outputs : int option array;
    returns : 'a option array;  (** fiber return values (None on timeout) *)
    rounds : int;
    decided_round : int option array;
    stats : stats;
    timed_out : bool;
  }

  (** Run all processes in lock step until the stop condition (or
      [max_rounds], setting [timed_out]).

      The round loop costs O(activity) per round: live fibers sit in a
      worklist, wake rounds are pre-bucketed, idling fibers park in a heap,
      and stretches of silent rounds are skipped outright.  The adversary's
      RNG is derived per round from the seed, which is what makes the skip
      sound.  If the detector declares [stabilizes_at], queries after the
      stabilisation round are served from a cache — detectors whose [at]
      violates the declared stabilisation get the cached value.

      When [config.sink] is set, one {!Events.event} is emitted per wake,
      broadcast, delivery, collision, gray-edge resolution, first
      decision, and fast-forward jump.  Emission reads no RNG and mutates
      no engine state, so the result is byte-identical to an untraced
      run.  When {!Rn_util.Metrics.enabled} (sampled once per run),
      engine-level [engine.*] counters and histograms are recorded. *)
  val run : config -> (ctx -> 'a) -> 'a result

  (** Straightforward O(n)-scans-per-round implementation of exactly the
      same semantics (including the per-round adversary derivation).  Slow;
      exists as the differential-testing oracle for [run] — for any config
      and body the two must agree on [outputs], [returns], [decided_round],
      [rounds], [stats], and [timed_out]. *)
  val run_reference : config -> (ctx -> 'a) -> 'a result
end
