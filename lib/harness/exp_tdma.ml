(* Experiment A5 — deterministic TDMA CCDS (the paper's reference [19]
   style, Θ(n) rounds) versus the randomized banned-list CCDS (Θ(polylog)
   rounds asymptotically).

   Two honest findings: (a) the shapes separate exactly as related work
   says — linear in n versus polylog in n; (b) at laptop scale the
   deterministic baseline *wins outright*, because the randomized
   algorithm's w.h.p. constants are large — the crossover lives at much
   larger n.  The deterministic algorithm is also unconditionally robust
   (one speaker per round, no collisions), so its success column stays
   100% even under the all-gray adversary that defeats the randomized
   algorithm in A2. *)

module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let a5 scale =
  let sizes = match scale with Quick -> [ 32; 64; 128 ] | Full -> [ 32; 64; 128; 256; 512 ] in
  let t = Table.create [ "n"; "algorithm"; "adversary"; "rounds"; "ok" ] in
  let xs_t = ref [] and ys_t = ref [] and xs_c = ref [] and ys_c = ref [] in
  let tdma ~rep ~adversary ~det ~dual =
    let res = Core.Tdma_ccds.run ~seed:rep ~adversary ~detector:(Detector.static det) dual in
    (res.R.rounds, res.R.outputs)
  in
  let banned ~rep ~adversary ~det ~dual =
    let res = Core.Ccds.run ~seed:rep ~adversary ~detector:(Detector.static det) dual in
    (res.R.rounds, res.R.outputs)
  in
  let keys =
    List.concat_map
      (fun n ->
        [
          (n, "TDMA [19]", "all-gray", Rn_sim.Adversary.all_gray, tdma);
          ( n,
            "banned-list (Sec 5)",
            "bernoulli 0.5",
            Rn_sim.Adversary.bernoulli 0.5,
            banned );
        ])
      sizes
  in
  let grid =
    sweep keys ~reps:(reps scale) (fun (n, _, _, adversary, runner) rep ->
        let degree = max 8 (2 * Rn_util.Ilog.log2_up n) in
        let dual = geometric ~seed:(rep + (11 * n)) ~n ~degree () in
        let det = Detector.perfect (Dual.g dual) in
        let r, outputs = runner ~rep ~adversary ~det ~dual in
        let ok =
          Verify.Ccds_check.ok
            (Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) outputs)
        in
        (r, ok))
  in
  List.iter
    (fun ((n, name, adv_name, _, _), runs) ->
      let rounds, _ = last_rep runs in
      Table.add_row t
        [
          Table.cell_int n;
          name;
          adv_name;
          Table.cell_int rounds;
          Table.cell_pct (success_rate (List.map snd runs));
        ];
      let xs, ys = if name = "TDMA [19]" then (xs_t, ys_t) else (xs_c, ys_c) in
      xs := float_of_int n :: !xs;
      ys := float_of_int rounds :: !ys)
    grid;
  let p_t, r2_t = Rn_util.Fit.power_law (Array.of_list !xs_t) (Array.of_list !ys_t) in
  {
    id = "A5";
    title = "Baseline: deterministic TDMA CCDS [19] vs randomized banned-list";
    body = Table.render t;
    notes =
      [
        Printf.sprintf "TDMA rounds ~ n^%.2f (r2=%.3f) — linear, as [19]" p_t r2_t;
        note_polylog ~what:"banned-list rounds" (List.rev !xs_c) (List.rev !ys_c);
        "TDMA never collides, so it shrugs off even the all-gray adversary; its \
linear cost loses asymptotically but wins at these n (w.h.p. constants)";
      ];
  }
