(* Experiments E2 (Theorem 5.3), E3 (Theorem 6.2), E6 (Theorem 8.1) and
   ablation A1 — the CCDS family. *)

module R = Core.Radio
module Table = Rn_util.Table
module Ilog = Rn_util.Ilog
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let check_ok ~det ~dual outputs =
  let h = Detector.h_graph det in
  Verify.Ccds_check.ok (Verify.Ccds_check.check ~h ~g':(Dual.g' dual) outputs)

(* --- E2: banned-list CCDS, rounds vs (Δ, b) --- *)

let e2 scale =
  let n = match scale with Quick -> 128 | Full -> 256 in
  let id = Ilog.log2_up n in
  let degrees = match scale with Quick -> [ 8; 16; 32 ] | Full -> [ 8; 16; 32; 64 ] in
  let bs = [ Some (6 * id); Some (12 * id); Some (48 * id); None ] in
  let b_name = function Some b -> string_of_int b | None -> "inf" in
  let t = Table.create [ "deg"; "Delta"; "b(bits)"; "rounds"; "ok" ] in
  let notes = ref [] in
  let keys = List.concat_map (fun degree -> List.map (fun b -> (degree, b)) bs) degrees in
  let grid =
    sweep keys ~reps:(reps scale) (fun (degree, b) rep ->
        let dual = geometric ~seed:(rep + (17 * degree)) ~n ~degree () in
        let det = Detector.perfect (Dual.g dual) in
        let res =
          Core.Ccds.run ~seed:rep ?b_bits:b
            ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
            ~detector:(Detector.static det) dual
        in
        (res.R.rounds, Dual.max_degree_g dual, check_ok ~det ~dual res.R.outputs))
  in
  List.iter
    (fun ((degree, b), runs) ->
      let rounds, _, _ = last_rep runs in
      Table.add_row t
        [
          Table.cell_int degree;
          Table.cell_float ~digits:0 (mean_int (List.map (fun (_, d, _) -> d) runs));
          b_name b;
          Table.cell_int rounds;
          Table.cell_pct (success_rate (List.map (fun (_, _, ok) -> ok) runs));
        ])
    grid;
  notes :=
    [
      "paper: rounds = O(Delta log^2 n / b + log^3 n) — flat in Delta once b = Omega(Delta)";
      "the b = inf column isolates the log^3 n term; small b shows the Delta/b chunking cost";
    ];
  {
    id = "E2";
    title = "Banned-list CCDS rounds vs degree and message size (Thm 5.3)";
    body = Table.render t;
    notes = !notes;
  }

(* --- E3: tau-complete detectors (Thm 6.2: O(Delta polylog n)) --- *)

let e3 scale =
  let n = match scale with Quick -> 96 | Full -> 160 in
  let degrees = match scale with Quick -> [ 8; 16; 24 ] | Full -> [ 8; 16; 32; 48 ] in
  let taus = [ 0; 1; 2; 3 ] in
  let t = Table.create [ "tau"; "deg"; "Delta"; "rounds"; "explore-only"; "ok" ] in
  let xs = ref [] and ys = ref [] in
  let keys = List.concat_map (fun tau -> List.map (fun degree -> (tau, degree)) degrees) taus in
  let grid =
    sweep keys ~reps:(reps scale) (fun (tau, degree) rep ->
        let dual = geometric ~seed:(rep + (31 * degree)) ~n ~degree () in
        let rng = Rn_util.Rng.create (rep + 555) in
        let det = Detector.tau_complete ~rng ~tau dual in
        let res =
          Core.Explore_ccds.run ~seed:rep ~tau
            ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
            ~detector:(Detector.static det) dual
        in
        (res.R.rounds, Dual.max_degree_g dual, check_ok ~det ~dual res.R.outputs))
  in
  List.iter
    (fun ((tau, degree), runs) ->
      let rounds, _, _ = last_rep runs in
      (* Rounds spent past the fixed domination (MIS) prefix: the part
         Theorem 6.2 charges O(Delta polylog n) for. *)
      let dom = (tau + 1) * Core.Mis.schedule_rounds Core.Params.default ~n in
      let explore_only = rounds - dom in
      let delta_mean = mean_int (List.map (fun (_, d, _) -> d) runs) in
      Table.add_row t
        [
          Table.cell_int tau;
          Table.cell_int degree;
          Table.cell_float ~digits:0 delta_mean;
          Table.cell_int rounds;
          Table.cell_int explore_only;
          Table.cell_pct (success_rate (List.map (fun (_, _, ok) -> ok) runs));
        ];
      if tau = 1 then begin
        xs := delta_mean :: !xs;
        ys := float_of_int explore_only :: !ys
      end)
    grid;
  {
    id = "E3";
    title = "Exploration CCDS with tau-complete detectors (Thm 6.2)";
    body = Table.render t;
    notes =
      [
        note_power ~what:"explore-only rounds vs Delta (tau=1)" (List.rev !xs)
          (List.rev !ys);
        "paper: O(Delta polylog n) for any tau = O(1) — the exploration part grows \
linearly in Delta on top of the fixed O(log^3 n) domination prefix";
      ];
  }

(* --- A1: banned list vs naive exploration across message sizes --- *)

let a1 scale =
  let n = match scale with Quick -> 96 | Full -> 192 in
  let id = Ilog.log2_up n in
  let degrees = match scale with Quick -> [ 8; 24 ] | Full -> [ 8; 24; 48 ] in
  let bs = [ Some (8 * id); None ] in
  let b_name = function Some b -> string_of_int b | None -> "inf" in
  let t = Table.create [ "algorithm"; "deg"; "b(bits)"; "rounds"; "ok" ] in
  let algorithms =
    [
      ( "banned-list (Sec 5)",
        fun ~rep ~b ~det ~dual ->
          let res =
            Core.Ccds.run ~seed:rep ?b_bits:b
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          (res.R.rounds, res.R.outputs) );
      ( "naive explore (Sec 6, tau=0)",
        fun ~rep ~b ~det ~dual ->
          let res =
            Core.Explore_ccds.run ~seed:rep ?b_bits:b ~tau:0
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          (res.R.rounds, res.R.outputs) );
    ]
  in
  let keys =
    List.concat_map
      (fun (d, b) -> List.map (fun algo -> (d, b, algo)) algorithms)
      (List.concat_map (fun d -> List.map (fun b -> (d, b)) bs) degrees)
  in
  let grid =
    sweep keys ~reps:(reps scale) (fun (degree, b, (_, runner)) rep ->
        let dual = geometric ~seed:(rep + 71) ~n ~degree () in
        let det = Detector.perfect (Dual.g dual) in
        let r, outputs = runner ~rep ~b ~det ~dual in
        (r, check_ok ~det ~dual outputs))
  in
  List.iter
    (fun ((degree, b, (name, _)), runs) ->
      let rounds, _ = last_rep runs in
      Table.add_row t
        [
          name;
          Table.cell_int degree;
          b_name b;
          Table.cell_int rounds;
          Table.cell_pct (success_rate (List.map snd runs));
        ])
    grid;
  {
    id = "A1";
    title = "Ablation: banned-list vs naive exploration CCDS";
    body = Table.render t;
    notes =
      [
        "paper's motivation for the banned list: O(1) explorations instead of O(Delta)";
        "expected: at large b the banned list is flat in Delta while naive exploration \
grows linearly; at small b both pay the Delta/b transfer cost";
      ];
  }

(* --- E6: continuous CCDS with a stabilising dynamic detector (Thm 8.1) --- *)

let e6 scale =
  let n = match scale with Quick -> 64 | Full -> 96 in
  let t = Table.create [ "iteration"; "window(rounds)"; "solves CCDS" ] in
  (* Single-instance experiment: the whole probe + continuous run is one
     cell so a warm (cached) run executes zero engine rounds. *)
  let stab_round, delta, rows =
    match
      run_cells
        (fun () ->
          let dual = geometric ~seed:3 ~n ~degree:10 () in
          let good = Detector.perfect (Dual.g dual) in
          let rng = Rn_util.Rng.create 99 in
          let noisy = Detector.tau_complete ~rng ~tau:2 dual in
          (* The detector reports two mistakes per node until it
             stabilises. *)
          let probe = Core.Ccds.run ~seed:1 ~detector:(Detector.static good) dual in
          let period = probe.R.rounds in
          let stab_round = period + (period / 2) in
          let dyn = Detector.switching ~before:noisy ~after:good ~round:stab_round in
          let result =
            Core.Continuous.run ~seed:2
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:dyn ~iterations:4 dual
          in
          let h = Detector.h_graph good in
          let rows =
            List.map
              (fun (it : Core.Continuous.iteration) ->
                let ok =
                  Verify.Ccds_check.ok
                    (Verify.Ccds_check.check ~h ~g':(Dual.g' dual) it.outputs)
                in
                (it.index, it.start_round, it.end_round, ok))
              result.iterations
          in
          (stab_round, result.period, rows))
        [ () ]
    with
    | [ cell ] -> cell
    | _ -> assert false
  in
  List.iter
    (fun (index, start_round, end_round, ok) ->
      Table.add_row t
        [
          Table.cell_int index;
          Printf.sprintf "%d-%d" start_round end_round;
          (if ok then "yes" else "no");
        ])
    rows;
  let notes =
    [
      Printf.sprintf "detector stabilises at round %d; delta_CCDS = %d" stab_round delta;
      Printf.sprintf
        "paper (Thm 8.1): solved from round stabilisation + 2*delta = %d on"
        (stab_round + (2 * delta));
      "iterations that *start* after stabilisation must validate against the stable H";
    ]
  in
  {
    id = "E6";
    title = "Continuous CCDS under a stabilising dynamic link detector (Thm 8.1)";
    body = Table.render t;
    notes;
  }
