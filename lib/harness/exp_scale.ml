(* S1: large-n scaling of world construction and the delivery kernel.

   Unlike the E*/A* experiments this one measures *wall clock*, so it is
   deliberately NOT in the [All] registry and never touches the result
   store (a cached timing is a lie).  It exists to certify the two
   perf claims of the kernel PR at sweep scale:

     - world generation is O(n) expected (hash-grid [Gen.of_positions]),
       so the fitted exponent of gen seconds vs n should sit near 1;
     - simulation throughput survives large n: a beacon workload at
       constant expected per-node traffic should scale near-linearly in
       total work (rounds x n), i.e. per-round seconds ~ n^~1.

   Run it via [rn_cli scale] (quick: n up to 8192; --full: up to a
   million nodes).  [--shards N] shards each round's delivery across N
   Pool domains, [--resume-shards N] likewise shards the fiber resume
   loop; [--check] prints only the deterministic columns (counts, no
   timings), which is what lets scripts/shard_smoke.sh byte-compare
   tables across shard counts and kernel modes. *)

module Rng = Rn_util.Rng
module Table = Rn_util.Table
module Metrics = Rn_util.Metrics
module Timing = Rn_util.Timing
module Svg = Rn_util.Svg_plot
module Gen = Rn_graph.Gen
module Graph = Rn_graph.Graph
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
open Harness

(* A trivial message type: the beacon workload only exercises delivery,
   not protocol logic. *)
module M = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module E = Rn_sim.Engine.Make (M)

let sizes = function
  | Quick -> [ 1024; 2048; 4096; 8192 ]
  | Full ->
    (* The top of the grid is the ROADMAP's million-node milestone: CSR
       worlds, off-heap bitsets and lazy detector rows keep one point's
       working set to a few hundred MB, so the full grid fits easily. *)
    [ 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072; 262144; 524288; 1048576 ]

(* Expected reliable degree must clear the geometric-connectivity
   threshold (~ln n) or [Gen.geometric]'s resampling loop dominates the
   gen timing at the top sizes; max(12, log2 n) stays a constant factor
   above it across the whole grid. *)
let degree_for n = max 12 (Rn_util.Ilog.log2_up n)
let beacon_rounds = 128
let beacon_p = 0.25

type row = {
  n : int;
  m : int; (* reliable edges *)
  gray : int;
  gen_s : float;
  wall_s : float; (* beacon workload, [beacon_rounds] rounds *)
  rps : float; (* rounds per second *)
  p50_bcast : int; (* per-round broadcaster histogram percentile *)
  p50_round_us : int; (* per-round wall-time histogram percentiles *)
  p95_round_us : int;
  sends : int;
  deliveries : int;
  collisions : int;
}

(* One grid point: generate the world, then run the beacon workload —
   every process syncs with probability [beacon_p] each round for
   [beacon_rounds] rounds, which keeps expected per-neighbourhood
   traffic constant as n grows (throughput is then work-bound, not
   contention-bound). *)
let measure ?(shards = 1) ?(kernel = `Auto) ?(adv_kernel = `Auto) ?(resume_shards = 1)
    ?(resume_kernel = `Auto) ?(adversary = Rn_sim.Adversary.bernoulli 0.5) n =
  let t0 = Timing.now () in
  let dual = geometric ~seed:(0x5CA1E + n) ~n ~degree:(degree_for n) () in
  let gen_s = Timing.now () -. t0 in
  let det = perfect_detector dual in
  (* Per-round wall time via the observer callback (called once per
     executed round): inter-callback deltas, bucketed like any other
     registry histogram.  The observer does not perturb delivery — it
     only disables silent-round fast-forward, and a beacon round is
     never silent. *)
  let round_times = ref [] in
  let run () =
    let last = ref (Timing.now ()) in
    round_times := [];
    let observer (_ : E.view) =
      let now = Timing.now () in
      round_times := int_of_float ((now -. !last) *. 1e6) :: !round_times;
      last := now
    in
    let cfg =
      E.config ~seed:(n lxor 0x5EED)
        ~stop:(Rn_sim.Engine.At_round beacon_rounds)
        ~adversary ~observer ~kernel ~shards ~adv_kernel ~resume_shards ~resume_kernel
        ~detector:det dual
    in
    E.run cfg (fun ctx ->
        let me = E.me ctx in
        for _ = 1 to beacon_rounds do
          ignore (E.sync_p ctx beacon_p me)
        done)
  in
  (* Per-round histograms ride on the metrics registry; [scoped] keeps
     this run's records separate from whatever the process accumulated. *)
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let (res, wall_s), snap =
    Metrics.scoped (fun () ->
        let t1 = Timing.now () in
        let r = run () in
        (r, Timing.now () -. t1))
  in
  Metrics.set_enabled was;
  let bcast_hist =
    match List.assoc_opt "engine.round_broadcasters" snap.Metrics.hists with
    | Some h -> h
    | None -> Metrics.hist_of_values []
  in
  let round_hist = Metrics.hist_of_values !round_times in
  {
    n;
    m = Graph.edge_count (Dual.g dual);
    gray = Dual.gray_count dual;
    gen_s;
    wall_s;
    rps = float_of_int beacon_rounds /. wall_s;
    p50_bcast = Metrics.percentile bcast_hist 0.5;
    p50_round_us = Metrics.percentile round_hist 0.5;
    p95_round_us = Metrics.percentile round_hist 0.95;
    sends = res.E.stats.Rn_sim.Engine.sends;
    deliveries = res.E.stats.Rn_sim.Engine.deliveries;
    collisions = res.E.stats.Rn_sim.Engine.collisions;
  }

let figure rows =
  Svg.create ~x_axis:Svg.Log ~y_axis:Svg.Log
    ~title:"S1: world build and per-round cost vs n" ~x_label:"n" ~y_label:"seconds" ()
  |> Svg.add_series ~label:"world gen"
       (List.map (fun r -> (float_of_int r.n, Float.max r.gen_s 1e-6)) rows)
  |> Svg.add_series ~label:"per beacon round"
       (List.map
          (fun r ->
            (float_of_int r.n, Float.max (r.wall_s /. float_of_int beacon_rounds) 1e-6))
          rows)

(* [run ?out scale]: measure the grid, render the table, and (with
   [?out]) write the log-log figure next to the F* ones.  [?sizes]
   overrides the grid; [?shards]/[?kernel] select the delivery strategy;
   [?check] renders only the deterministic columns so tables can be
   byte-compared across strategies. *)
let run ?out ?sizes:sizes_override ?(shards = 1) ?(kernel = `Auto) ?(adv_kernel = `Auto)
    ?(resume_shards = 1) ?(resume_kernel = `Auto) ?adversary ?(check = false) scale =
  let grid = match sizes_override with Some l -> l | None -> sizes scale in
  let rows =
    List.map
      (fun n ->
        let r = measure ~shards ~kernel ~adv_kernel ~resume_shards ~resume_kernel ?adversary n in
        (* between points: retire the previous world before building the
           next, so peak RSS holds one world, not two *)
        Gc.full_major ();
        r)
      grid
  in
  if check then begin
    (* Deterministic columns only: counts are byte-identical across
       shard counts and kernel modes (that is the sharding contract),
       timings are not.  Notes likewise carry no timing or strategy
       detail — two check tables from different strategies must compare
       equal byte-for-byte. *)
    let t = Table.create [ "n"; "m"; "gray"; "sends"; "deliveries"; "collisions" ] in
    List.iter
      (fun r ->
        Table.add_row t
          [
            Table.cell_int r.n;
            Table.cell_int r.m;
            Table.cell_int r.gray;
            Table.cell_int r.sends;
            Table.cell_int r.deliveries;
            Table.cell_int r.collisions;
          ])
      rows;
    {
      id = "S1";
      title = "Scaling: deterministic delivery counts (check mode)";
      body = Table.render t;
      notes =
        [
          Printf.sprintf "beacon workload: %d rounds, each process syncs w.p. %.2f"
            beacon_rounds beacon_p;
        ];
    }
  end
  else begin
  let t =
    Table.create
      [
        "n"; "m"; "gray"; "gen(s)"; "sim(s)"; "rounds/s"; "bcast p50"; "round p50us";
        "round p95us"; "deliveries";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.n;
          Table.cell_int r.m;
          Table.cell_int r.gray;
          Table.cell_float ~digits:3 r.gen_s;
          Table.cell_float ~digits:3 r.wall_s;
          Table.cell_float ~digits:1 r.rps;
          Table.cell_int r.p50_bcast;
          Table.cell_int r.p50_round_us;
          Table.cell_int r.p95_round_us;
          Table.cell_int r.deliveries;
        ])
    rows;
  let ns = List.map (fun r -> float_of_int r.n) rows in
  let notes =
    [
      note_power ~what:"world-gen seconds" ns
        (List.map (fun r -> Float.max r.gen_s 1e-6) rows);
      note_power ~what:"per-round seconds" ns
        (List.map (fun r -> Float.max (r.wall_s /. float_of_int beacon_rounds) 1e-6) rows);
      Printf.sprintf "beacon workload: %d rounds, each process syncs w.p. %.2f" beacon_rounds
        beacon_p;
      "expect both exponents near 1 (log-degree growth adds ~0.1-0.3): gen is \
       O(n.deg) expected (hash grid), the kernel makes a dense round \
       O(reach/word + senders)";
    ]
  in
  let notes =
    match out with
    | None -> notes
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "S1.svg" in
      Svg.write (figure rows) path;
      notes @ [ Printf.sprintf "figure: %s" path ]
  in
  {
    id = "S1";
    title = "Scaling: O(n)-expected world build + word-parallel kernel";
    body = Table.render t;
    notes;
  }
  end
