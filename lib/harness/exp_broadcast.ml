(* Experiment A3 — the CCDS as a routing backbone, quantified.

   The paper's introduction motivates the CCDS with efficient information
   movement.  This experiment builds the Section 5 backbone on a geometric
   network and compares three disseminations of one token under an active
   gray adversary: full probabilistic flooding, the same flood restricted
   to backbone relays, and the deterministic round-robin broadcast of the
   paper's reference [5].  It also reports the routing stretch the
   backbone costs. *)

module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

(* A7 — multihop broadcast under unreliability.  The dual graph line of
   work starts from the observation (the paper's references [10, 11])
   that broadcast is strictly *harder* with unreliable links: gray edges
   carry collisions into neighbourhoods that would otherwise hear a solo
   sender.  This experiment measures the slowdown of the classic decay
   broadcast as gray activity rises, against the deterministic
   round-robin schedule that is immune by construction. *)
let a7 scale =
  let n = match scale with Quick -> 128 | Full -> 192 in
  let dual = geometric ~seed:29 ~n ~degree:10 () in
  let k = 2 * Rn_util.Ilog.log2_up n in
  let budget = 40 * k in
  let t = Table.create [ "protocol"; "adversary"; "coverage"; "last reached" ] in
  let rr_budget = Rn_broadcast.Broadcast.round_robin_budget dual ~source:0 in
  let specs =
    List.map
      (fun (adv_name, adversary) ->
        ("decay [BGI]", Rn_broadcast.Broadcast.Decay k, adv_name, adversary, budget))
      [
        ("silent", Rn_sim.Adversary.silent);
        ("bernoulli 0.3", Rn_sim.Adversary.bernoulli 0.3);
        ("bernoulli 0.7", Rn_sim.Adversary.bernoulli 0.7);
        ("spiteful", Rn_sim.Adversary.spiteful);
        ("jamming", Rn_sim.Adversary.jamming);
      ]
    @ [
        ( "round-robin [5]",
          Rn_broadcast.Broadcast.Round_robin,
          "jamming",
          Rn_sim.Adversary.jamming,
          rr_budget );
      ]
  in
  let rows =
    run_cells
      (fun (name, protocol, adv_name, adversary, rounds) ->
        let r =
          Rn_broadcast.Broadcast.run ~adversary ~seed:31 ~protocol ~source:0 ~rounds dual
        in
        let last =
          Array.fold_left
            (fun acc f -> match f with Some x -> max acc x | None -> acc)
            0 r.first_hear
        in
        (name, adv_name, r.coverage, last))
      specs
  in
  List.iter
    (fun (name, adv_name, coverage, last) ->
      Table.add_row t
        [ name; adv_name; Printf.sprintf "%d/%d" coverage n; Table.cell_int last ])
    rows;
  {
    id = "A7";
    title = "Broadcast under unreliability (the [10,11] hardness, qualitatively)";
    body = Table.render t;
    notes =
      [
        "random (and even spiteful) gray activation often *helps* — extra reach — \
which is why such links are seductive; the jamming adversary shows their true \
worst case: it only ever uses gray edges to collide solo reliable senders";
        "round-robin is immune by construction (one speaker per round) but pays \
n rounds per hop — the trade the fault-tolerant broadcast literature studies";
      ];
  }

let a3 scale =
  let n = match scale with Quick -> 128 | Full -> 256 in
  let dual = geometric ~seed:13 ~n ~degree:12 () in
  let det = Detector.perfect (Dual.g dual) in
  (* The backbone CCDS run is its own cell so warm runs replay it too. *)
  let in_backbone =
    match
      run_cells
        (fun () ->
          let ccds =
            Core.Ccds.run ~seed:5
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          Array.map (fun o -> o = Some 1) ccds.Core.Radio.outputs)
        [ () ]
    with
    | [ a ] -> a
    | _ -> assert false
  in
  let backbone_size =
    Array.fold_left (fun c b -> if b then c + 1 else c) 0 in_backbone
  in
  let source = 0 in
  let rounds = 12 * n in
  let adversary = Rn_sim.Adversary.bernoulli 0.5 in
  let t =
    Table.create [ "protocol"; "coverage"; "last reached (round)"; "transmissions"; "bits" ]
  in
  let rr_budget = Rn_broadcast.Broadcast.round_robin_budget dual ~source in
  let specs =
    [
      ("flood p=0.1", Rn_broadcast.Broadcast.Flood 0.1, rounds);
      ( "backbone p=0.1",
        Rn_broadcast.Broadcast.Backbone { relay = (fun v -> in_backbone.(v)); p = 0.1 },
        rounds );
      ("round-robin [5]", Rn_broadcast.Broadcast.Round_robin, rr_budget);
    ]
  in
  let rows =
    run_cells
      (fun (name, protocol, budget) ->
        let r =
          Rn_broadcast.Broadcast.run ~adversary ~seed:21 ~protocol ~source ~rounds:budget dual
        in
        let last =
          Array.fold_left
            (fun acc f -> match f with Some x -> max acc x | None -> acc)
            0 r.first_hear
        in
        (name, r.coverage, last, r.sends, r.bits_sent))
      specs
  in
  List.iter
    (fun (name, coverage, last, sends, bits) ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%d/%d" coverage n;
          Table.cell_int last;
          Table.cell_int sends;
          Table.cell_int bits;
        ])
    rows;
  let stretch =
    let members = ref [] in
    Array.iteri (fun v b -> if b then members := v :: !members) in_backbone;
    Verify.Stretch.measure
      ~sample:(Rn_util.Rng.create 3, 400)
      ~h:(Detector.h_graph det) ~members:!members ()
  in
  {
    id = "A3";
    title = "Application: CCDS as a dissemination backbone (paper's intro)";
    body = Table.render t;
    notes =
      [
        Printf.sprintf "backbone: %d of %d nodes (built once, reused per broadcast)"
          backbone_size n;
        Printf.sprintf
          "routing stretch via backbone: max %.2f, mean %.2f over %d pairs (%d unroutable)"
          stretch.max_stretch stretch.mean_stretch stretch.pairs stretch.unroutable;
        "round-robin is adversary-proof but needs n rounds per hop of progress";
      ];
  }
