(* Shared experiment plumbing: instance construction, repetition over
   seeds, aggregation, and a uniform result format rendered by both
   [bench/main.ml] and the CLI. *)

module Rng = Rn_util.Rng
module Table = Rn_util.Table
module Stats = Rn_util.Stats
module Fit = Rn_util.Fit
module Metrics = Rn_util.Metrics
module Timing = Rn_util.Timing
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

type scale = Quick | Full

let reps = function Quick -> 3 | Full -> 5
let scale_name = function Quick -> "quick" | Full -> "full"

(* --- parallel execution ---

   Every experiment cell derives its randomness from the cell itself
   (seed, n, degree, ...), so cells are independent and a parallel sweep
   must produce the same table as a sequential one.  [run_cells] is the
   single entry point both seed repetition and grid iteration go through;
   the worker count defaults to a harness-wide setting so the registry's
   [scale -> result] experiment signature stays unchanged. *)

let default_jobs = ref 1
let set_jobs j = default_jobs := max 1 j
let jobs () = !default_jobs

(* --- the result store (crash-safe caching and resume) ---

   The same determinism invariant makes cells perfectly cacheable: a
   cell result is a pure function of (experiment id, scale, position in
   the sweep, the experiment's declared code_version, and the engine
   semantics digest).  When a store is configured, [run_cells] looks
   every cell up before computing it, and appends each fresh result to
   the journal the moment it is computed — so a killed sweep resumes
   from the finished cells, and a warm re-run replays entirely from
   disk.  Cell payloads are [Marshal]ed, which round-trips the plain
   int/float/bool/list/tuple data cells return exactly; anyone changing
   a cell's semantics or result type MUST bump that experiment's
   [code_version] (see EXPERIMENTS.md).

   A cell that raises (or overruns the per-cell time budget) is recorded
   as [Failed] — which [Store.find] treats as a miss, so it is resumable
   — and the rest of the sweep still runs and caches; [run_cells] raises
   {!Cell_failed} only after the whole batch has been driven. *)

module Store = Rn_util.Store

type store_cfg = {
  store : Store.t;
  retry : int;  (* extra attempts after a cell raises *)
  timeout : float option;  (* per-cell wall-clock budget, seconds *)
}

let store_cfg : store_cfg option ref = ref None

let set_store ?(retry = 0) ?timeout store =
  store_cfg := Some { store; retry = max 0 retry; timeout }

let clear_store () = store_cfg := None

(* Cumulative cache statistics for the current process, expressed as
   registry counters so they flow through the same snapshot/merge/export
   pipeline as everything else.  Metrics cells are atomic, so recording
   from Pool worker domains is safe; recording is unconditional (these
   counters predate the registry and the CLI always reports them). *)
let m_store_hits = Metrics.counter "store.hits"
let m_store_misses = Metrics.counter "store.misses"
let m_store_failures = Metrics.counter "store.failures"

let reset_store_counters () =
  Metrics.reset_counter m_store_hits;
  Metrics.reset_counter m_store_misses;
  Metrics.reset_counter m_store_failures

let store_counters () =
  (Metrics.value m_store_hits, Metrics.value m_store_misses, Metrics.value m_store_failures)

(* Store cache-key environment: the engine semantics digest plus a
   payload-format tag.  Since the observability PR a cell payload is a
   Marshal'ed (result, metrics snapshot) pair, not a bare result; the
   "+obs1" tag keeps cells cached under the old format from being
   replayed into the new decoder.  [rn_cli store gc] must use the same
   value. *)
let cell_env = Rn_sim.Engine.semantics_digest ^ "+obs1"

(* Wall time of freshly computed (non-cached) cells, for the nightly
   "trace the slowest cells" report. *)
let cell_times : (string * float) list ref = ref []
let cell_times_lock = Mutex.create ()

let note_cell_time label secs =
  Mutex.protect cell_times_lock (fun () -> cell_times := (label, secs) :: !cell_times)

let slowest_cells ?(k = 10) () =
  Mutex.protect cell_times_lock (fun () ->
      List.filteri
        (fun i _ -> i < k)
        (List.sort (fun (_, a) (_, b) -> compare (b : float) a) !cell_times))

let reset_cell_times () = Mutex.protect cell_times_lock (fun () -> cell_times := [])

(* Per-experiment key context, set by the registry wrapper in [All]
   before the experiment function runs.  [batch] numbers the successive
   [run_cells] calls inside one experiment so every cell gets a stable
   coordinate; the sweep structure is deterministic, so coordinates are
   reproducible run to run (changing the structure is a code_version
   bump). *)
let exp_ctx : (string * string * int) option ref = ref None
let batch = ref 0

let begin_experiment ~id ~scale ~version =
  exp_ctx := Some (id, scale_name scale, version);
  batch := 0

(* Per-experiment metrics: each cell's scoped snapshot is merged into
   its experiment's aggregate, both on compute and on cache replay (the
   snapshot rides in the store payload, so a warm sweep reports the same
   metrics as the cold one that populated it). *)
let exp_metrics : (string, Metrics.snapshot) Hashtbl.t = Hashtbl.create 16
let exp_metrics_lock = Mutex.create ()

(* Takes the experiment id explicitly rather than reading [exp_ctx]:
   this runs on Pool worker domains, where only values captured before
   the map started are safe to read. *)
let record_exp_metrics ~exp snap =
  Mutex.protect exp_metrics_lock (fun () ->
      let cur =
        match Hashtbl.find_opt exp_metrics exp with
        | Some s -> s
        | None -> Metrics.of_counters []
      in
      Hashtbl.replace exp_metrics exp (Metrics.merge cur snap))

(* Aggregated per-experiment metrics, sorted by experiment id. *)
let experiment_metrics () =
  Mutex.protect exp_metrics_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) exp_metrics []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let reset_experiment_metrics () =
  Mutex.protect exp_metrics_lock (fun () -> Hashtbl.reset exp_metrics)

exception Cell_failed of { exp : string; failed : int; total : int }
exception Cell_timeout of float

let with_timeout timeout f =
  match timeout with
  | None -> f ()
  | Some limit ->
    let t0 = Unix.gettimeofday () in
    let v = f () in
    if Unix.gettimeofday () -. t0 >= limit then raise (Cell_timeout limit) else v

(* Compute one uncached cell, retrying raises up to [retry] times (the
   cell is deterministic, so a retry rederives nothing: same key, same
   result — retries exist for the timeout path and for genuinely flaky
   environments). *)
let compute_cell cfg f c =
  let rec attempt a =
    match with_timeout cfg.timeout (fun () -> f c) with
    | v -> Ok v
    | exception _ when a < cfg.retry -> attempt (a + 1)
    | exception e -> Error (Printexc.to_string e)
  in
  attempt 0

(* Each cell's gauge for its own wall time; captured into the cell's
   scoped snapshot, so per-experiment aggregates carry a max cell time. *)
let m_cell_us = Metrics.gauge "cell.us"

(* --- cross-process sweep coordination (the serve daemon) ---

   When several worker processes sweep the same experiment against one
   shared store journal, each store miss is first offered to a
   coordinator (the daemon, over the worker's socket).  [Claim_mine]
   means compute it; [Claim_theirs] means a live peer owns it — poll the
   journal via {!Store.refresh} until the peer's record lands (or the
   peer dies and a re-ask returns [Claim_mine]).  Without a coordinator
   the miss path is unchanged.  Claims run on Pool worker domains, so a
   coordinator's functions must be domain-safe. *)

type claim_outcome =
  | Claim_mine
  | Claim_theirs
  | Claim_failed of string  (* the owner computed it, and it failed *)
  | Claim_cancelled

type coordinator = {
  claim : string -> claim_outcome;  (* argument is the cell's Store.key_id *)
  complete : string -> ok:bool -> err:string -> us:int -> unit;
      (* [us] is the cell's compute wall time in microseconds *)
  hit : string -> unit;  (* store replay provenance, for live progress *)
  poll_interval : float;  (* seconds between journal polls on Claim_theirs *)
}

exception Sweep_cancelled

let coordinator_ref : coordinator option ref = ref None
let set_coordinator c = coordinator_ref := Some c
let clear_coordinator () = coordinator_ref := None

(* --- trace-on-demand (one cell re-run under an ambient Events sink) ---

   [set_trace_target ~exp ~coord] marks one cell of the next sweep: when
   [run_cells_cached] reaches it, the cell is recomputed (cache
   bypassed, store/metrics counters untouched, nothing written back)
   with an ambient {!Rn_sim.Events} sink installed, and the captured
   events are parked for [take_trace_events].  Determinism makes the
   re-run byte-faithful: the traced computation takes the certified
   scalar engine path and produces the same result the cached record
   holds.  Callers must run with [jobs = 1] so the ambient sink sees
   only the target cell. *)

module Events = Rn_sim.Events

let trace_target : (string * string) option Atomic.t = Atomic.make None
let trace_capacity = ref 65536
let traced_events : Events.event list option ref = ref None

let set_trace_target ?(capacity = 65536) ~exp ~coord () =
  trace_capacity := capacity;
  traced_events := None;
  Atomic.set trace_target (Some (exp, coord))

let clear_trace_target () = Atomic.set trace_target None
let take_trace_events () = !traced_events

let run_cells_cached cfg (exp, scale, version) ~jobs:j f cells =
  let b = !batch in
  incr batch;
  let env = cell_env in
  let key i =
    {
      Store.exp;
      scale;
      coord = Printf.sprintf "b%d.c%d" b i;
      code_version = version;
      env;
    }
  in
  let run_one (i, c) =
    let k = key i in
    let replay payload =
      Metrics.incr m_store_hits;
      let v, (snap : Metrics.snapshot) = Marshal.from_string payload 0 in
      record_exp_metrics ~exp snap;
      Ok v
    in
    let compute () =
      (* Scoped: the snapshot holds exactly what this cell recorded on
         this domain, independent of what other cells do concurrently —
         so the payload is deterministic at any [--jobs].  Returns the
         cell's compute wall time in microseconds alongside the result
         so coordinators can report per-cell progress timings. *)
      let (result, dt), snap =
        Metrics.scoped (fun () ->
            let t0 = Timing.now () in
            let r = compute_cell cfg f c in
            let dt = Timing.now () -. t0 in
            Metrics.set m_cell_us (int_of_float (dt *. 1e6));
            (r, dt))
      in
      let us = int_of_float (dt *. 1e6) in
      match result with
      | Ok v ->
        Metrics.incr m_store_misses;
        note_cell_time (Printf.sprintf "%s/%s/%s" exp scale k.Store.coord) dt;
        record_exp_metrics ~exp snap;
        Store.put cfg.store k Store.Done (Marshal.to_string (v, snap) []);
        (Ok v, us)
      | Error msg ->
        Metrics.incr m_store_failures;
        Store.put cfg.store k Store.Failed msg;
        (Error msg, us)
    in
    let traced () =
      (* Cache bypassed in both directions: recompute even when a record
         exists, and write nothing back — the trace is a side-channel,
         not a sweep step, so hit/miss counters stay untouched. *)
      let sink = Events.create ~capacity:!trace_capacity () in
      Events.set_ambient (Some sink);
      let r =
        Fun.protect
          ~finally:(fun () -> Events.set_ambient None)
          (fun () -> compute_cell cfg f c)
      in
      traced_events := Some (Events.events sink);
      r
    in
    let is_trace_target =
      match Atomic.get trace_target with
      | Some (texp, tcoord) -> texp = exp && tcoord = k.Store.coord
      | None -> false
    in
    if is_trace_target then traced ()
    else
      match !coordinator_ref with
      | None -> (
        match Store.find cfg.store k with Some p -> replay p | None -> fst (compute ()))
      | Some co ->
        let kid = Store.key_id k in
        let rec obtain () =
          match Store.find cfg.store k with
          | Some p ->
            co.hit kid;
            replay p
          | None -> (
            match co.claim kid with
            | Claim_mine ->
              let r, us = compute () in
              (match r with
              | Ok _ -> co.complete kid ~ok:true ~err:"" ~us
              | Error e -> co.complete kid ~ok:false ~err:e ~us);
              r
            | Claim_theirs ->
              (* a live peer owns this cell: wait for its journal append *)
              Unix.sleepf co.poll_interval;
              ignore (Store.refresh cfg.store);
              obtain ()
            | Claim_failed msg ->
              Metrics.incr m_store_failures;
              Error msg
            | Claim_cancelled -> raise Sweep_cancelled)
        in
        obtain ()
  in
  let out = Rn_util.Pool.map ~jobs:j run_one (List.mapi (fun i c -> (i, c)) cells) in
  let failed = List.length (List.filter Result.is_error out) in
  if failed > 0 then raise (Cell_failed { exp; failed; total = List.length out });
  List.map (function Ok v -> v | Error _ -> assert false) out

(* [run_cells f cells] maps [f] over the cells, in parallel when the jobs
   setting (or [?jobs]) exceeds 1, preserving input order.  [~jobs:1] is
   exactly [List.map].  With a store configured (and an experiment
   context set), cached cells are replayed instead of recomputed. *)
let run_cells ?jobs f cells =
  let j = match jobs with Some j -> j | None -> !default_jobs in
  match (!store_cfg, !exp_ctx) with
  | Some cfg, Some ctx -> run_cells_cached cfg ctx ~jobs:j f cells
  | _ -> (
    (* No store: still feed per-experiment metrics when the registry is
       on and we know which experiment is running ([--metrics] without
       [--no-cache] goes through the cached path above). *)
    match !exp_ctx with
    | Some (exp, _, _) when Metrics.enabled () ->
      Rn_util.Pool.map ~jobs:j
        (fun c ->
          let v, snap = Metrics.scoped (fun () -> f c) in
          record_exp_metrics ~exp snap;
          v)
        cells
    | _ -> Rn_util.Pool.map ~jobs:j f cells)

(* [run_reps scale f] runs [f rep] for [rep = 1 .. reps scale] and returns
   the results in rep order. *)
let run_reps ?jobs scale f = run_cells ?jobs f (List.init (reps scale) (fun i -> i + 1))

(* [sweep keys ~reps f] flattens a parameter grid x seed repetition into
   one cell list, runs it through [run_cells], and regroups the results:
   the returned list pairs each key (in input order) with its [reps]
   results (in rep order).  This keeps grids and repetitions on a single
   flat queue, so the pool load-balances across the whole sweep instead
   of barrier-synchronising at each grid point. *)
let sweep ?jobs keys ~reps:r f =
  let cells = List.concat_map (fun k -> List.init r (fun i -> (k, i + 1))) keys in
  let out = run_cells ?jobs (fun (k, rep) -> f k rep) cells in
  let rec regroup keys out =
    match keys with
    | [] -> []
    | k :: keys ->
      let rec split n acc rest =
        if n = 0 then (List.rev acc, rest)
        else match rest with x :: rest -> split (n - 1) (x :: acc) rest | [] -> assert false
      in
      let mine, rest = split r [] out in
      (k, mine) :: regroup keys rest
  in
  regroup keys out

(* The last of a cell's repetitions, matching the historical "keep the
   final rep's value" convention of the tables. *)
let last_rep = function [] -> invalid_arg "last_rep" | l -> List.nth l (List.length l - 1)

type result = {
  id : string;
  title : string;
  body : string; (* rendered tables *)
  notes : string list; (* fit summaries, paper-vs-measured one-liners *)
}

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "=== %s: %s ===\n" r.id r.title);
  Buffer.add_string b r.body;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  . %s\n" n)) r.notes;
  Buffer.add_string b "\n";
  Buffer.contents b

let print r =
  print_string (render r);
  flush stdout

(* A connected random geometric dual graph with expected reliable degree
   [degree]; deterministic in [seed]. *)
let geometric ?(d = 2.0) ?(gray_p = 0.5) ~seed ~n ~degree () =
  let rng = Rng.create (0x9E0 + seed) in
  let side = Gen.side_for_degree ~n ~target_degree:degree in
  Gen.geometric ~rng (Gen.default_spec ~d ~gray_p ~n ~side ())

(* Perfect (0-complete) static detector for an instance. *)
let perfect_detector dual = Detector.static (Detector.perfect (Dual.g dual))

let tau_detector ~seed ~tau dual =
  let rng = Rng.create (0x7A0 + seed) in
  Detector.static (Detector.tau_complete ~rng ~tau dual)

let success_rate oks =
  let total = List.length oks in
  if total = 0 then 0.0
  else
    float_of_int (List.length (List.filter Fun.id oks)) /. float_of_int total

(* Mean of int samples as float. *)
let mean_int xs = Stats.mean (Stats.of_ints (Array.of_list xs))

(* Fit note helpers. *)
let note_polylog ~what xs ys =
  let p, r2 = Fit.polylog_exponent (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ (log n)^%.2f (r2=%.3f)" what p r2

let note_power ~what xs ys =
  let p, r2 = Fit.power_law (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ x^%.2f (r2=%.3f)" what p r2
