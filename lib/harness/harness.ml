(* Shared experiment plumbing: instance construction, repetition over
   seeds, aggregation, and a uniform result format rendered by both
   [bench/main.ml] and the CLI. *)

module Rng = Rn_util.Rng
module Table = Rn_util.Table
module Stats = Rn_util.Stats
module Fit = Rn_util.Fit
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

type scale = Quick | Full

let reps = function Quick -> 3 | Full -> 5

(* --- parallel execution ---

   Every experiment cell derives its randomness from the cell itself
   (seed, n, degree, ...), so cells are independent and a parallel sweep
   must produce the same table as a sequential one.  [run_cells] is the
   single entry point both seed repetition and grid iteration go through;
   the worker count defaults to a harness-wide setting so the registry's
   [scale -> result] experiment signature stays unchanged. *)

let default_jobs = ref 1
let set_jobs j = default_jobs := max 1 j
let jobs () = !default_jobs

(* [run_cells f cells] maps [f] over the cells, in parallel when the jobs
   setting (or [?jobs]) exceeds 1, preserving input order.  [~jobs:1] is
   exactly [List.map]. *)
let run_cells ?jobs f cells =
  let j = match jobs with Some j -> j | None -> !default_jobs in
  Rn_util.Pool.map ~jobs:j f cells

(* [run_reps scale f] runs [f rep] for [rep = 1 .. reps scale] and returns
   the results in rep order. *)
let run_reps ?jobs scale f = run_cells ?jobs f (List.init (reps scale) (fun i -> i + 1))

(* [sweep keys ~reps f] flattens a parameter grid x seed repetition into
   one cell list, runs it through [run_cells], and regroups the results:
   the returned list pairs each key (in input order) with its [reps]
   results (in rep order).  This keeps grids and repetitions on a single
   flat queue, so the pool load-balances across the whole sweep instead
   of barrier-synchronising at each grid point. *)
let sweep ?jobs keys ~reps:r f =
  let cells = List.concat_map (fun k -> List.init r (fun i -> (k, i + 1))) keys in
  let out = run_cells ?jobs (fun (k, rep) -> f k rep) cells in
  let rec regroup keys out =
    match keys with
    | [] -> []
    | k :: keys ->
      let rec split n acc rest =
        if n = 0 then (List.rev acc, rest)
        else match rest with x :: rest -> split (n - 1) (x :: acc) rest | [] -> assert false
      in
      let mine, rest = split r [] out in
      (k, mine) :: regroup keys rest
  in
  regroup keys out

(* The last of a cell's repetitions, matching the historical "keep the
   final rep's value" convention of the tables. *)
let last_rep = function [] -> invalid_arg "last_rep" | l -> List.nth l (List.length l - 1)

type result = {
  id : string;
  title : string;
  body : string; (* rendered tables *)
  notes : string list; (* fit summaries, paper-vs-measured one-liners *)
}

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "=== %s: %s ===\n" r.id r.title);
  Buffer.add_string b r.body;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  . %s\n" n)) r.notes;
  Buffer.add_string b "\n";
  Buffer.contents b

let print r =
  print_string (render r);
  flush stdout

(* A connected random geometric dual graph with expected reliable degree
   [degree]; deterministic in [seed]. *)
let geometric ?(d = 2.0) ?(gray_p = 0.5) ~seed ~n ~degree () =
  let rng = Rng.create (0x9E0 + seed) in
  let side = Gen.side_for_degree ~n ~target_degree:degree in
  Gen.geometric ~rng (Gen.default_spec ~d ~gray_p ~n ~side ())

(* Perfect (0-complete) static detector for an instance. *)
let perfect_detector dual = Detector.static (Detector.perfect (Dual.g dual))

let tau_detector ~seed ~tau dual =
  let rng = Rng.create (0x7A0 + seed) in
  Detector.static (Detector.tau_complete ~rng ~tau dual)

let success_rate oks =
  let total = List.length oks in
  if total = 0 then 0.0
  else
    float_of_int (List.length (List.filter Fun.id oks)) /. float_of_int total

(* Mean of int samples as float. *)
let mean_int xs = Stats.mean (Stats.of_ints (Array.of_list xs))

(* Fit note helpers. *)
let note_polylog ~what xs ys =
  let p, r2 = Fit.polylog_exponent (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ (log n)^%.2f (r2=%.3f)" what p r2

let note_power ~what xs ys =
  let p, r2 = Fit.power_law (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ x^%.2f (r2=%.3f)" what p r2
