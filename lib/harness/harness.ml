(* Shared experiment plumbing: instance construction, repetition over
   seeds, aggregation, and a uniform result format rendered by both
   [bench/main.ml] and the CLI. *)

module Rng = Rn_util.Rng
module Table = Rn_util.Table
module Stats = Rn_util.Stats
module Fit = Rn_util.Fit
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector

type scale = Quick | Full

let reps = function Quick -> 3 | Full -> 5
let scale_name = function Quick -> "quick" | Full -> "full"

(* --- parallel execution ---

   Every experiment cell derives its randomness from the cell itself
   (seed, n, degree, ...), so cells are independent and a parallel sweep
   must produce the same table as a sequential one.  [run_cells] is the
   single entry point both seed repetition and grid iteration go through;
   the worker count defaults to a harness-wide setting so the registry's
   [scale -> result] experiment signature stays unchanged. *)

let default_jobs = ref 1
let set_jobs j = default_jobs := max 1 j
let jobs () = !default_jobs

(* --- the result store (crash-safe caching and resume) ---

   The same determinism invariant makes cells perfectly cacheable: a
   cell result is a pure function of (experiment id, scale, position in
   the sweep, the experiment's declared code_version, and the engine
   semantics digest).  When a store is configured, [run_cells] looks
   every cell up before computing it, and appends each fresh result to
   the journal the moment it is computed — so a killed sweep resumes
   from the finished cells, and a warm re-run replays entirely from
   disk.  Cell payloads are [Marshal]ed, which round-trips the plain
   int/float/bool/list/tuple data cells return exactly; anyone changing
   a cell's semantics or result type MUST bump that experiment's
   [code_version] (see EXPERIMENTS.md).

   A cell that raises (or overruns the per-cell time budget) is recorded
   as [Failed] — which [Store.find] treats as a miss, so it is resumable
   — and the rest of the sweep still runs and caches; [run_cells] raises
   {!Cell_failed} only after the whole batch has been driven. *)

module Store = Rn_util.Store

type store_cfg = {
  store : Store.t;
  retry : int;  (* extra attempts after a cell raises *)
  timeout : float option;  (* per-cell wall-clock budget, seconds *)
}

let store_cfg : store_cfg option ref = ref None

let set_store ?(retry = 0) ?timeout store =
  store_cfg := Some { store; retry = max 0 retry; timeout }

let clear_store () = store_cfg := None

(* Cumulative cache statistics for the current process (atomic: cells
   run on Pool worker domains). *)
let store_hits = Atomic.make 0
let store_misses = Atomic.make 0
let store_failures = Atomic.make 0

let reset_store_counters () =
  Atomic.set store_hits 0;
  Atomic.set store_misses 0;
  Atomic.set store_failures 0

let store_counters () =
  (Atomic.get store_hits, Atomic.get store_misses, Atomic.get store_failures)

(* Per-experiment key context, set by the registry wrapper in [All]
   before the experiment function runs.  [batch] numbers the successive
   [run_cells] calls inside one experiment so every cell gets a stable
   coordinate; the sweep structure is deterministic, so coordinates are
   reproducible run to run (changing the structure is a code_version
   bump). *)
let exp_ctx : (string * string * int) option ref = ref None
let batch = ref 0

let begin_experiment ~id ~scale ~version =
  exp_ctx := Some (id, scale_name scale, version);
  batch := 0

exception Cell_failed of { exp : string; failed : int; total : int }
exception Cell_timeout of float

let with_timeout timeout f =
  match timeout with
  | None -> f ()
  | Some limit ->
    let t0 = Unix.gettimeofday () in
    let v = f () in
    if Unix.gettimeofday () -. t0 >= limit then raise (Cell_timeout limit) else v

(* Compute one uncached cell, retrying raises up to [retry] times (the
   cell is deterministic, so a retry rederives nothing: same key, same
   result — retries exist for the timeout path and for genuinely flaky
   environments). *)
let compute_cell cfg f c =
  let rec attempt a =
    match with_timeout cfg.timeout (fun () -> f c) with
    | v -> Ok v
    | exception _ when a < cfg.retry -> attempt (a + 1)
    | exception e -> Error (Printexc.to_string e)
  in
  attempt 0

let run_cells_cached cfg (exp, scale, version) ~jobs:j f cells =
  let b = !batch in
  incr batch;
  let env = Rn_sim.Engine.semantics_digest in
  let key i =
    {
      Store.exp;
      scale;
      coord = Printf.sprintf "b%d.c%d" b i;
      code_version = version;
      env;
    }
  in
  let run_one (i, c) =
    let k = key i in
    match Store.find cfg.store k with
    | Some payload ->
      Atomic.incr store_hits;
      Ok (Marshal.from_string payload 0)
    | None -> (
      match compute_cell cfg f c with
      | Ok v ->
        Atomic.incr store_misses;
        Store.put cfg.store k Store.Done (Marshal.to_string v []);
        Ok v
      | Error msg ->
        Atomic.incr store_failures;
        Store.put cfg.store k Store.Failed msg;
        Error msg)
  in
  let out = Rn_util.Pool.map ~jobs:j run_one (List.mapi (fun i c -> (i, c)) cells) in
  let failed = List.length (List.filter Result.is_error out) in
  if failed > 0 then raise (Cell_failed { exp; failed; total = List.length out });
  List.map (function Ok v -> v | Error _ -> assert false) out

(* [run_cells f cells] maps [f] over the cells, in parallel when the jobs
   setting (or [?jobs]) exceeds 1, preserving input order.  [~jobs:1] is
   exactly [List.map].  With a store configured (and an experiment
   context set), cached cells are replayed instead of recomputed. *)
let run_cells ?jobs f cells =
  let j = match jobs with Some j -> j | None -> !default_jobs in
  match (!store_cfg, !exp_ctx) with
  | Some cfg, Some ctx -> run_cells_cached cfg ctx ~jobs:j f cells
  | _ -> Rn_util.Pool.map ~jobs:j f cells

(* [run_reps scale f] runs [f rep] for [rep = 1 .. reps scale] and returns
   the results in rep order. *)
let run_reps ?jobs scale f = run_cells ?jobs f (List.init (reps scale) (fun i -> i + 1))

(* [sweep keys ~reps f] flattens a parameter grid x seed repetition into
   one cell list, runs it through [run_cells], and regroups the results:
   the returned list pairs each key (in input order) with its [reps]
   results (in rep order).  This keeps grids and repetitions on a single
   flat queue, so the pool load-balances across the whole sweep instead
   of barrier-synchronising at each grid point. *)
let sweep ?jobs keys ~reps:r f =
  let cells = List.concat_map (fun k -> List.init r (fun i -> (k, i + 1))) keys in
  let out = run_cells ?jobs (fun (k, rep) -> f k rep) cells in
  let rec regroup keys out =
    match keys with
    | [] -> []
    | k :: keys ->
      let rec split n acc rest =
        if n = 0 then (List.rev acc, rest)
        else match rest with x :: rest -> split (n - 1) (x :: acc) rest | [] -> assert false
      in
      let mine, rest = split r [] out in
      (k, mine) :: regroup keys rest
  in
  regroup keys out

(* The last of a cell's repetitions, matching the historical "keep the
   final rep's value" convention of the tables. *)
let last_rep = function [] -> invalid_arg "last_rep" | l -> List.nth l (List.length l - 1)

type result = {
  id : string;
  title : string;
  body : string; (* rendered tables *)
  notes : string list; (* fit summaries, paper-vs-measured one-liners *)
}

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "=== %s: %s ===\n" r.id r.title);
  Buffer.add_string b r.body;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  . %s\n" n)) r.notes;
  Buffer.add_string b "\n";
  Buffer.contents b

let print r =
  print_string (render r);
  flush stdout

(* A connected random geometric dual graph with expected reliable degree
   [degree]; deterministic in [seed]. *)
let geometric ?(d = 2.0) ?(gray_p = 0.5) ~seed ~n ~degree () =
  let rng = Rng.create (0x9E0 + seed) in
  let side = Gen.side_for_degree ~n ~target_degree:degree in
  Gen.geometric ~rng (Gen.default_spec ~d ~gray_p ~n ~side ())

(* Perfect (0-complete) static detector for an instance. *)
let perfect_detector dual = Detector.static (Detector.perfect (Dual.g dual))

let tau_detector ~seed ~tau dual =
  let rng = Rng.create (0x7A0 + seed) in
  Detector.static (Detector.tau_complete ~rng ~tau dual)

let success_rate oks =
  let total = List.length oks in
  if total = 0 then 0.0
  else
    float_of_int (List.length (List.filter Fun.id oks)) /. float_of_int total

(* Mean of int samples as float. *)
let mean_int xs = Stats.mean (Stats.of_ints (Array.of_list xs))

(* Fit note helpers. *)
let note_polylog ~what xs ys =
  let p, r2 = Fit.polylog_exponent (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ (log n)^%.2f (r2=%.3f)" what p r2

let note_power ~what xs ys =
  let p, r2 = Fit.power_law (Array.of_list xs) (Array.of_list ys) in
  Printf.sprintf "%s ~ x^%.2f (r2=%.3f)" what p r2
