(* Experiment E4 — the Section 7 lower bound, measured three ways:

   (a) the β-single hitting game needs Θ(β) guesses even for the optimal
       strategy (the quantitative core of Theorem 7.1);
   (b) the Lemma 7.2 reduction run for real: double-hitting players built
       from the τ=1 CCDS algorithm solve every target pair, in rounds that
       grow linearly with β;
   (c) the τ=1 CCDS algorithm on the two-clique bridge network with the
       spiteful adversary: Ω(Δ) is forced, our algorithm takes Θ(Δ·polylog). *)

module Table = Rn_util.Table
module Rng = Rn_util.Rng
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let e4_single scale =
  let betas = match scale with Quick -> [ 8; 16; 32; 64 ] | Full -> [ 8; 16; 32; 64; 128; 256 ] in
  let t = Table.create [ "beta"; "mean (permutation)"; "mean (memoryless)"; "p90 worst target" ] in
  let xs = ref [] and ys = ref [] in
  let rows =
    (* Each beta gets its own generator so the cells are independent and
       the sweep parallelises without changing any stream. *)
    run_cells
      (fun beta ->
        let rng = Rng.create (0xE4A + beta) in
        let samples = match scale with Quick -> 200 | Full -> 1000 in
        let perm = Rn_games.Single_game.mean_rounds rng Permutation ~beta ~samples in
        let memless = Rn_games.Single_game.mean_rounds rng Memoryless ~beta ~samples in
        let p90 =
          Rn_games.Single_game.quantile_rounds rng Permutation ~beta
            ~samples:(max 50 (samples / 10)) ~q:0.9
        in
        (beta, perm, memless, p90))
      betas
  in
  List.iter
    (fun (beta, perm, memless, p90) ->
      Table.add_row t
        [
          Table.cell_int beta;
          Table.cell_float perm;
          Table.cell_float memless;
          Table.cell_float p90;
        ];
      xs := float_of_int beta :: !xs;
      ys := perm :: !ys)
    rows;
  {
    id = "E4a";
    title = "Single hitting game: rounds to hit vs beta (lower-bound core)";
    body = Table.render t;
    notes =
      [
        note_power ~what:"mean rounds (optimal strategy)" (List.rev !xs) (List.rev !ys);
        "paper: identifying one of beta elements takes Omega(beta) rounds w.h.p.";
      ];
  }

let e4_double scale =
  let betas = match scale with Quick -> [ 4; 8 ] | Full -> [ 4; 8; 16 ] in
  let t = Table.create [ "beta"; "worst pair rounds"; "unsolved pairs" ] in
  let xs = ref [] and ys = ref [] in
  let rows =
    run_cells
      (fun beta ->
        let pa, pb = Rn_games.Reduction.ccds_players ~beta () in
        let worst, unsolved = Rn_games.Double_game.worst_case ~pa ~pb ~beta ~seed:11 in
        (beta, worst, unsolved))
      betas
  in
  List.iter
    (fun (beta, worst, unsolved) ->
      Table.add_row t [ Table.cell_int beta; Table.cell_int worst; Table.cell_int unsolved ];
      xs := float_of_int beta :: !xs;
      ys := float_of_int worst :: !ys)
    rows;
  {
    id = "E4b";
    title = "Double hitting game via the Lemma 7.2 CCDS reduction";
    body = Table.render t;
    notes =
      [
        note_power ~what:"worst-pair rounds" (List.rev !xs) (List.rev !ys);
        "every pair must be solved (unsolved = 0); rounds grow ~linearly in beta";
      ];
  }

let e4_bridge scale =
  let betas = match scale with Quick -> [ 4; 8; 16; 32 ] | Full -> [ 4; 8; 16; 32; 64 ] in
  let t = Table.create [ "beta"; "Delta"; "rounds"; "solved" ] in
  let xs = ref [] and ys = ref [] in
  let rows =
    run_cells (fun beta -> (beta, Rn_games.Reduction.bridge_run ~beta ~seed:3 ())) betas
  in
  List.iter
    (fun (beta, (r : Rn_games.Reduction.bridge_result)) ->
      Table.add_row t
        [
          Table.cell_int beta;
          Table.cell_int beta (* max G-degree of the bridge network *);
          Table.cell_int r.rounds;
          (if r.solved then "yes" else "no");
        ];
      xs := float_of_int beta :: !xs;
      ys := float_of_int r.rounds :: !ys)
    rows;
  {
    id = "E4c";
    title = "tau=1 CCDS on the two-clique bridge network (Thm 7.1: Omega(Delta))";
    body = Table.render t;
    notes =
      [
        note_power ~what:"rounds vs Delta" (List.rev !xs) (List.rev !ys);
        "paper: with 1-complete detectors every CCDS algorithm needs Omega(Delta) rounds";
        "our Sec-6 algorithm realises Theta(Delta polylog n) here, matching the bound";
      ];
  }
