(* Experiments E1 (Theorem 4.6), E5 (Corollary 4.7), E7 (Theorem 9.4) and
   ablation A2 — the MIS family.  See DESIGN.md's experiment index. *)

module R = Core.Radio
module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module Overlay = Rn_geom.Overlay
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let degree_for n = max 8 (2 * Rn_util.Ilog.log2_up n)

let sizes = function Quick -> [ 32; 64; 128; 256 ] | Full -> [ 32; 64; 128; 256; 512; 1024 ]

(* --- E1: MIS round complexity, O(log^3 n) w.h.p. --- *)

let e1 scale =
  let t = Table.create [ "n"; "deg"; "rounds"; "last-decide"; "ok" ] in
  let per_n =
    sweep (sizes scale) ~reps:(reps scale) (fun n rep ->
        let dual = geometric ~seed:(rep + (100 * n)) ~n ~degree:(degree_for n) () in
        let det = Detector.perfect (Dual.g dual) in
        let res =
          Core.Mis.run ~seed:rep
            ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
            ~detector:(Detector.static det) dual
        in
        let last =
          Array.fold_left
            (fun acc d -> match d with Some r -> max acc r | None -> acc)
            0 res.R.decided_round
        in
        let rep_ok =
          Verify.Mis_check.ok
            (Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs)
        in
        (res.R.rounds, last, rep_ok))
  in
  let xs = ref [] and ys = ref [] and ds = ref [] in
  List.iter
    (fun (n, runs) ->
      let rounds, _, _ = last_rep runs in
      let last_mean = mean_int (List.map (fun (_, last, _) -> last) runs) in
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int (degree_for n);
          Table.cell_int rounds;
          Table.cell_float last_mean;
          Table.cell_pct (success_rate (List.map (fun (_, _, ok) -> ok) runs));
        ];
      xs := float_of_int n :: !xs;
      ys := float_of_int rounds :: !ys;
      ds := last_mean :: !ds)
    per_n;
  {
    id = "E1";
    title = "MIS rounds vs n (Thm 4.6: O(log^3 n) w.h.p.)";
    body = Table.render t;
    notes =
      [
        note_polylog ~what:"schedule rounds" (List.rev !xs) (List.rev !ys);
        note_polylog ~what:"last decision round" (List.rev !xs) (List.rev !ds);
        "paper: exponent 3 in log n; success column should be 100%";
      ];
  }

(* --- E5: MIS density vs the overlay bound I_r (Cor 4.7) --- *)

let e5 scale =
  let n = match scale with Quick -> 128 | Full -> 256 in
  let t = Table.create [ "r"; "max MIS within r"; "I_r bound"; "ok" ] in
  let dual = geometric ~seed:5 ~n ~degree:16 () in
  (* The engine run lives inside a cell so a warm (fully cached) re-run
     replays the MIS membership from the store without simulating a
     single round; the instance itself is cheap to rebuild. *)
  let members =
    match
      run_cells
        (fun () ->
          let det = Detector.perfect (Dual.g dual) in
          let res =
            Core.Mis.run ~seed:5
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          let members = ref [] in
          Array.iteri (fun v o -> if o = Some 1 then members := v :: !members) res.R.outputs;
          !members)
        [ () ]
    with
    | [ m ] -> m
    | _ -> assert false
  in
  let pos = match Dual.positions dual with Some p -> p | None -> assert false in
  let notes = ref [] in
  let rows =
    run_cells
      (fun r ->
        let r_f = float_of_int r in
        let got = Verify.Density.max_within ~pos ~members r_f in
        let bound = Overlay.i_r_cached r_f in
        (r, got, bound))
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun (r, got, bound) ->
      Table.add_row t
        [
          Table.cell_int r;
          Table.cell_int got;
          Table.cell_int bound;
          (if got <= bound then "yes" else "NO");
        ])
    rows;
  notes := [ "paper: no more than I_r MIS processes within distance r of any node" ];
  {
    id = "E5";
    title = "MIS density vs overlay bound (Cor 4.7)";
    body = Table.render t;
    notes = !notes;
  }

(* --- E7: asynchronous-start MIS (Thm 9.4) --- *)

let e7 scale =
  let t = Table.create [ "n"; "model"; "max local decide"; "ok" ] in
  let xs = ref [] and ys = ref [] in
  let keys =
    sizes scale
    |> List.filter (fun n -> n <= 512)
    |> List.concat_map (fun n -> [ (n, true); (n, false) ])
  in
  let grid =
    sweep keys ~reps:(reps scale) (fun (n, classic) rep ->
        let dual = geometric ~seed:(rep + (30 * n)) ~n ~degree:(degree_for n) () in
        let net = if classic then Dual.classic (Dual.g dual) else dual in
        let det = Detector.perfect (Dual.g net) in
        let spread = 4 * Rn_util.Ilog.log2_up n * Rn_util.Ilog.log2_up n in
        let wake = Array.init n (fun i -> 1 + (((i * 131) + rep) mod spread)) in
        let adversary =
          if classic then Rn_sim.Adversary.silent else Rn_sim.Adversary.bernoulli 0.5
        in
        let res =
          Core.Async_mis.run ~seed:rep ~classic ~wake ~adversary
            ~detector:(Detector.static det) net
        in
        (* local decision latency: decided round minus wake round *)
        let worst = ref 0 in
        Array.iteri
          (fun v d ->
            match d with
            | Some r -> worst := max !worst (r - wake.(v) + 1)
            | None -> worst := max !worst res.R.rounds)
          res.R.decided_round;
        let rep_ok =
          Verify.Mis_check.ok
            (Verify.Mis_check.check ~g:(Dual.g net) ~h:(Detector.h_graph det) res.R.outputs)
        in
        (!worst, rep_ok))
  in
  List.iter
    (fun ((n, classic), runs) ->
      let m = mean_int (List.map fst runs) in
      Table.add_row t
        [
          Table.cell_int n;
          (if classic then "classic G=G'" else "dual 0-complete");
          Table.cell_float m;
          Table.cell_pct (success_rate (List.map snd runs));
        ];
      if classic then begin
        xs := float_of_int n :: !xs;
        ys := m :: !ys
      end)
    grid;
  {
    id = "E7";
    title = "Async-start MIS: local decision latency (Thm 9.4: O(log^3 n))";
    body = Table.render t;
    notes =
      [
        note_polylog ~what:"max local decision latency (classic)" (List.rev !xs)
          (List.rev !ys);
        "paper: every process decides within O(log^3 n) rounds of waking";
      ];
  }

(* --- A2: ablation — what the link-detector filter buys --- *)

let a2 scale =
  let n = match scale with Quick -> 96 | Full -> 192 in
  let t = Table.create [ "filter"; "adversary"; "ok"; "indep"; "maximal" ] in
  let keys =
    List.concat_map
      (fun filter ->
        List.map
          (fun adv -> (filter, adv))
          [
            ("bernoulli 0.5", Rn_sim.Adversary.bernoulli 0.5);
            ("jamming", Rn_sim.Adversary.jamming);
            ("all-gray", Rn_sim.Adversary.all_gray);
          ])
      [
        ("detector", Core.Radio.recv_from_detector);
        ("accept-all", Core.Async_mis.accept_all);
      ]
  in
  let grid =
    sweep keys ~reps:(reps scale) (fun ((_, filter), (_, adv)) rep ->
        let dual = geometric ~seed:(rep + 900) ~n ~degree:12 () in
        let det = Detector.perfect (Dual.g dual) in
        let cfg = R.config ~seed:rep ~adversary:adv ~detector:(Detector.static det) dual in
        let res =
          R.run cfg (fun ctx ->
              Core.Mis.body ~filter
                ~on_decide:(fun v -> R.output ctx v)
                Core.Params.default ctx)
        in
        let rep_check =
          Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs
        in
        (Verify.Mis_check.ok rep_check, rep_check.independence, rep_check.maximality))
  in
  List.iter
    (fun (((filter_name, _), (adv_name, _)), runs) ->
      Table.add_row t
        [
          filter_name;
          adv_name;
          Table.cell_pct (success_rate (List.map (fun (ok, _, _) -> ok) runs));
          Table.cell_pct (success_rate (List.map (fun (_, i, _) -> i) runs));
          Table.cell_pct (success_rate (List.map (fun (_, _, m) -> m) runs));
        ])
    grid;
  {
    id = "A2";
    title = "Ablation: MIS with vs without detector filtering";
    body = Table.render t;
    notes =
      [
        "accept-all loses maximality even under mild gray traffic: processes are \
knocked out and 'covered' by senders that are not H-neighbours";
        "all-gray defeats both variants at feasible phase lengths: the paper's \
success constant is (1/4)^I_{d+1/2} per round, astronomically small — its O(1) \
hides a 4^{I_d} factor (see EXPERIMENTS.md)";
        "the jamming adversary sits between: it fails the defaults but yields to \
c_phase ~ 24 (A6) — collisions need a real nearby broadcaster to carry them";
      ];
  }
