(* Experiment A6 — sensitivity to the hidden Θ-constants.

   The paper's phase lengths are Θ(log n) with constants "large enough";
   this experiment measures the empirical reliability knee: MIS success
   rate as a function of the phase-length constant c_phase, under
   increasingly active gray adversaries.  It is the quantitative backdrop
   for every "constants are tuned" caveat in DESIGN.md: defaults sit past
   the knee for moderate adversaries, while hostile gray activity moves
   the knee out — all the way to infeasible for all-gray (A2). *)

module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let a6 scale =
  let n = match scale with Quick -> 64 | Full -> 96 in
  let trials = match scale with Quick -> 10 | Full -> 25 in
  let c_phases = [ 2; 3; 4; 6; 8 ] in
  let advs =
    [
      ("bern 0.3", Rn_sim.Adversary.bernoulli 0.3);
      ("bern 0.5", Rn_sim.Adversary.bernoulli 0.5);
      ("bern 0.8", Rn_sim.Adversary.bernoulli 0.8);
      ("jamming", Rn_sim.Adversary.jamming);
    ]
  in
  let t =
    Table.create ("c_phase" :: "rounds" :: List.map (fun (name, _) -> "ok " ^ name) advs)
  in
  let keys =
    List.concat_map (fun c_phase -> List.map (fun adv -> (c_phase, adv)) advs) c_phases
  in
  let grid =
    sweep keys ~reps:trials (fun (c_phase, (_, adversary)) rep ->
        let params = { Core.Params.default with c_phase } in
        let dual = geometric ~seed:(rep + 400) ~n ~degree:9 () in
        let det = Detector.perfect (Dual.g dual) in
        let res =
          Core.Mis.run ~params ~seed:rep ~adversary ~detector:(Detector.static det) dual
        in
        let ok =
          Verify.Mis_check.ok
            (Verify.Mis_check.check ~g:(Dual.g dual) ~h:(Detector.h_graph det) res.R.outputs)
        in
        (res.R.rounds, ok))
  in
  List.iter
    (fun c_phase ->
      let mine = List.filter (fun ((c, _), _) -> c = c_phase) grid in
      (* the rounds column keeps the historical "last run wins" value:
         the final rep of the last adversary at this c_phase *)
      let rounds, _ = last_rep (snd (last_rep mine)) in
      let cells =
        List.map (fun (_, runs) -> Table.cell_pct (success_rate (List.map snd runs))) mine
      in
      Table.add_row t (Table.cell_int c_phase :: Table.cell_int rounds :: cells))
    c_phases;
  {
    id = "A6";
    title = "Sensitivity: MIS success vs the phase-length constant c_phase";
    body = Table.render t;
    notes =
      [
        "the paper's Theta() hides these constants; success transitions sharply once \
c_phase crosses the contention-dependent knee";
        "heavier gray activity pushes the knee right: c_phase ~ 4 suffices at bern 0.3, \
~ 8 at bern 0.8, ~ 24 for the jamming adversary, and all-gray pushes it to ~4^{I_d} (A2)";
      ];
  }
