(* Experiment A8 — approximation quality against the exact optimum.

   The CCDS definition only asks for a *constant-bounded* structure; on
   small instances we can compute the true minimum connected dominating
   set by enumeration and measure how much the algorithms over-build.
   The paper's constant-degree guarantee tolerates a large constant
   factor (Theorem 5.3's proof budgets 4·I_{4d}² members near any node);
   this experiment shows the factors actually realised. *)

module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

let a8 scale =
  let trials = reps scale in
  let n = 18 in
  let t = Table.create [ "algorithm"; "mean size"; "mean optimum"; "mean ratio"; "valid" ] in
  let algorithms =
    [
      ( "banned-list (Sec 5)",
        fun ~seed ~det ~dual ->
          let r =
            Core.Ccds.run ~seed
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          r.R.outputs );
      ( "explore (Sec 6, tau=0)",
        fun ~seed ~det ~dual ->
          let r =
            Core.Explore_ccds.run ~seed ~tau:0
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          r.R.outputs );
      ( "TDMA [19]",
        fun ~seed ~det ~dual ->
          let r =
            Core.Tdma_ccds.run ~seed
              ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
              ~detector:(Detector.static det) dual
          in
          r.R.outputs );
    ]
  in
  let grid =
    sweep algorithms ~reps:trials (fun (_, runner) seed ->
        let dual = geometric ~seed:(seed + 60) ~n ~degree:6 () in
        let det = Detector.perfect (Dual.g dual) in
        let outputs = runner ~seed ~det ~dual in
        let size = Array.fold_left (fun c o -> if o = Some 1 then c + 1 else c) 0 outputs in
        let opt = Verify.Exact.min_cds (Dual.g dual) in
        let rep =
          Verify.Ccds_check.check ~h:(Detector.h_graph det) ~g':(Dual.g' dual) outputs
        in
        (float_of_int size, float_of_int opt, Verify.Ccds_check.ok rep))
  in
  List.iter
    (fun ((name, _), runs) ->
      let mean f = Rn_util.Stats.mean (Array.of_list (List.map f runs)) in
      Table.add_row t
        [
          name;
          Table.cell_float (mean (fun (s, _, _) -> s));
          Table.cell_float (mean (fun (_, o, _) -> o));
          Table.cell_float ~digits:2 (mean (fun (s, o, _) -> s /. o));
          Table.cell_pct (success_rate (List.map (fun (_, _, ok) -> ok) runs));
        ])
    grid;
  {
    id = "A8";
    title = "Approximation quality vs exact minimum CDS (n = 18)";
    body = Table.render t;
    notes =
      [
        "the exact optimum is computed by enumeration; the definition only demands \
constant-bounded structures, and the over-build factor is the price of the \
connect-everything-within-3-hops strategy";
      ];
  }
