(* Experiment E8 — the delivery guarantees of the Section 5 subroutines
   (Lemmas 5.1 and 5.2), exercised directly on synthetic topologies. *)

module R = Core.Radio
module Table = Rn_util.Table
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

(* Honest (uncapped) 2^delta schedule lengths for the subroutine study. *)
let sub_params = { Core.Params.default with bb_cap = 8 }

(* k concurrent bounded-broadcast callers in a clique, one listener.
   Lemma 5.1: with delta = k, every caller delivers w.h.p. — the listener
   should hear all k distinct sources. *)
let bb_trial ~k ~seed =
  let g = Gen.clique (k + 1) in
  let dual = Dual.classic g in
  let det = Detector.perfect g in
  let cfg = R.config ~seed ~detector:(Detector.static det) dual in
  let res =
    R.run cfg (fun ctx ->
        let me = R.me ctx in
        let heard : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        let msg = if me > 0 then Some (Core.Msg.Stop_order { src = me }) else None in
        Core.Subroutines.bounded_broadcast sub_params ctx ~delta:k msg
          ~on_recv:(fun m -> Hashtbl.replace heard (Core.Msg.src m) ());
        Hashtbl.length heard)
  in
  let heard = match res.R.returns.(0) with Some h -> h | None -> 0 in
  (heard, res.R.rounds)

let e8_bb scale =
  let t = Table.create [ "concurrent callers k"; "rounds"; "heard all k" ] in
  let grid =
    sweep [ 1; 2; 4; 8 ] ~reps:(2 * reps scale) (fun k rep ->
        let heard, r = bb_trial ~k ~seed:(rep + (10 * k)) in
        (r, heard = k))
  in
  List.iter
    (fun (k, runs) ->
      let rounds, _ = last_rep runs in
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int rounds;
          Table.cell_pct (success_rate (List.map snd runs));
        ])
    grid;
  {
    id = "E8a";
    title = "bounded-broadcast under contention (Lemma 5.1)";
    body = Table.render t;
    notes =
      [
        "with honest ell_BB(delta) = Theta(2^delta log n), all concurrent callers deliver";
      ];
  }

(* A star of m covered leaves, padded with idle nodes to a fixed network
   size so the schedule length is identical across m.  Lemma 5.2: the MIS
   centre receives at least one nomination w.h.p., in O(log^2 n) rounds
   regardless of the covered-set size. *)
let dd_network_size = 160

let dd_trial ~m ~seed =
  if m + 1 > dd_network_size then invalid_arg "dd_trial";
  let g =
    Rn_graph.Graph.of_edges dd_network_size (List.init m (fun i -> (0, i + 1)))
  in
  let dual = Dual.classic g in
  let det = Detector.perfect g in
  let cfg = R.config ~seed ~detector:(Detector.static det) dual in
  let res =
    R.run cfg (fun ctx ->
        let me = R.me ctx in
        let noms = if me = 0 then [] else [ (0, me) ] in
        Core.Subroutines.directed_decay sub_params ctx ~is_mis:(me = 0) ~noms)
  in
  let received = match res.R.returns.(0) with Some l -> List.length l | None -> 0 in
  (received, res.R.rounds)

let e8_dd scale =
  let t = Table.create [ "covered set m"; "rounds"; "centre heard >=1" ] in
  let grid =
    sweep [ 2; 8; 32; 128 ] ~reps:(2 * reps scale) (fun m rep ->
        let received, r = dd_trial ~m ~seed:(rep + (7 * m)) in
        (r, received >= 1))
  in
  List.iter
    (fun (m, runs) ->
      let rounds, _ = last_rep runs in
      Table.add_row t
        [
          Table.cell_int m;
          Table.cell_int rounds;
          Table.cell_pct (success_rate (List.map snd runs));
        ])
    grid;
  {
    id = "E8b";
    title = "directed-decay delivery (Lemma 5.2)";
    body = Table.render t;
    notes =
      [
        "the network size is fixed (padding nodes), so the constant rounds column \
shows the point: directed-decay's schedule does not grow with the covered-set size";
      ];
  }
