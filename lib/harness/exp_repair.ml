(* Experiment A4 — localized repair vs full rebuild (Section 8's open
   problem, implemented in [Core.Repair]).

   Workload: build a CCDS, orphan [k] covered processes by demoting every
   link to their masters, then either repair in place or rebuild from
   scratch.  Both must produce a valid CCDS for the shrunken reliable
   graph; the comparison is structural churn and message cost. *)

module Table = Rn_util.Table
module Dual = Rn_graph.Dual
module Graph = Rn_graph.Graph
module Detector = Rn_detect.Detector
module Verify = Rn_verify.Verify
module R = Core.Radio
open Harness

(* Store cache key version for every experiment in this file: bump
   whenever a cell function's semantics, sweep structure, or result
   type changes, so stale cached cells are never replayed (see
   EXPERIMENTS.md, "The result store"). *)
let code_version = 1

(* Pick up to [k] covered victims with spare degree and demote the links
   to their masters; returns the damaged network (keeping G connected). *)
let damage ~k dual old_outputs old_masters =
  let victims = ref [] and current = ref dual in
  let g = Dual.g dual in
  (try
     Array.iteri
       (fun v o ->
         if List.length !victims < k && o = Some 0 && old_masters.(v) <> []
            && Graph.degree g v > List.length old_masters.(v) + 1 then begin
           let candidate =
             Dual.demote_edges !current (List.map (fun m -> (v, m)) old_masters.(v))
           in
           if Rn_graph.Algo.is_connected (Dual.g candidate) then begin
             current := candidate;
             victims := v :: !victims
           end
         end)
       old_outputs
   with Invalid_argument _ -> ());
  (!current, List.length !victims)

let a4 scale =
  let n = match scale with Quick -> 64 | Full -> 128 in
  let ks = [ 1; 3; 6 ] in
  let t =
    Table.create
      [ "orphaned"; "strategy"; "rounds"; "messages"; "churn"; "valid" ]
  in
  let grid =
    sweep ks ~reps:(reps scale) (fun k rep ->
        let dual = geometric ~seed:(rep + (5 * k)) ~n ~degree:10 () in
        let det0 = perfect_detector dual in
        let adv = Rn_sim.Adversary.bernoulli 0.5 in
        let build = Core.Ccds.run ~seed:rep ~adversary:adv ~detector:det0 dual in
        let old_outputs = build.R.outputs in
        let old_masters =
          Array.map
            (function Some (o : Core.Ccds.outcome) -> o.mis_neighbors | None -> [])
            build.R.returns
        in
        let old_dominators =
          Array.map
            (function Some (o : Core.Ccds.outcome) -> o.in_mis | None -> false)
            build.R.returns
        in
        let dual1, _orphaned = damage ~k dual old_outputs old_masters in
        let det1 = Detector.perfect (Dual.g dual1) in
        let h1 = Detector.h_graph det1 in
        let repair =
          Core.Repair.run ~seed:(rep + 50) ~adversary:adv
            ~detector:(Detector.static det1) ~old_outputs ~old_dominators ~old_masters
            dual1
        in
        let rebuild =
          Core.Ccds.run ~seed:(rep + 50) ~adversary:adv ~detector:(Detector.static det1)
            dual1
        in
        let ok outputs =
          Verify.Ccds_check.ok (Verify.Ccds_check.check ~h:h1 ~g':(Dual.g' dual1) outputs)
        in
        let measure (res : _ R.result) =
          ( res.R.rounds,
            res.R.stats.sends,
            Core.Repair.churn ~before:old_outputs ~after:res.R.outputs,
            ok res.R.outputs )
        in
        (measure repair, measure rebuild))
  in
  List.iter
    (fun (k, runs) ->
      let mean f = Rn_util.Stats.mean (Array.of_list (List.map f runs)) in
      let row label pick =
        let rounds, msgs, _, _ = pick (last_rep runs) in
        Table.add_row t
          [
            Table.cell_int k;
            label;
            Table.cell_int rounds;
            Table.cell_int msgs;
            Table.cell_pct (mean (fun run -> let _, _, churn, _ = pick run in churn));
            Table.cell_pct
              (success_rate (List.map (fun run -> let _, _, _, ok = pick run in ok) runs));
          ]
      in
      row "repair (A4)" fst;
      row "full rebuild" snd)
    grid;
  {
    id = "A4";
    title = "Extension: localized repair vs full rebuild (Sec 8 open problem)";
    body = Table.render t;
    notes =
      [
        "repair keeps most of the old structure (low churn) while restoring a valid CCDS";
        "the repair wins on churn and rounds; the rebuild's banned-list transfers stay more message-frugal";
      ];
  }
