(* Registry of every experiment, keyed by the DESIGN.md index.  Each
   entry carries the experiment's store-cache [code_version]; [find]
   wraps the experiment function so the harness key context (id, scale,
   version) is always set before any cells run. *)

let experiments : (string * int * (Harness.scale -> Harness.result)) list =
  [
    ("E1", Exp_mis.code_version, Exp_mis.e1);
    ("E2", Exp_ccds.code_version, Exp_ccds.e2);
    ("E3", Exp_ccds.code_version, Exp_ccds.e3);
    ("E4a", Exp_lower.code_version, Exp_lower.e4_single);
    ("E4b", Exp_lower.code_version, Exp_lower.e4_double);
    ("E4c", Exp_lower.code_version, Exp_lower.e4_bridge);
    ("E5", Exp_mis.code_version, Exp_mis.e5);
    ("E6", Exp_ccds.code_version, Exp_ccds.e6);
    ("E7", Exp_mis.code_version, Exp_mis.e7);
    ("E8a", Exp_subroutines.code_version, Exp_subroutines.e8_bb);
    ("E8b", Exp_subroutines.code_version, Exp_subroutines.e8_dd);
    ("A1", Exp_ccds.code_version, Exp_ccds.a1);
    ("A2", Exp_mis.code_version, Exp_mis.a2);
    ("A3", Exp_broadcast.code_version, Exp_broadcast.a3);
    ("A4", Exp_repair.code_version, Exp_repair.a4);
    ("A5", Exp_tdma.code_version, Exp_tdma.a5);
    ("A6", Exp_params.code_version, Exp_params.a6);
    ("A7", Exp_broadcast.code_version, Exp_broadcast.a7);
    ("A8", Exp_quality.code_version, Exp_quality.a8);
  ]

let ids = List.map (fun (k, _, _) -> k) experiments

(* (id, code_version) pairs for the live registry — what [store gc]
   keeps. *)
let versions = List.map (fun (k, v, _) -> (k, v)) experiments

let wrap k v f scale =
  Harness.begin_experiment ~id:k ~scale ~version:v;
  f scale

let find id =
  let canon s = String.lowercase_ascii s in
  List.find_map
    (fun (k, v, f) -> if canon k = canon id then Some (wrap k v f) else None)
    experiments

let code_version id =
  let canon s = String.lowercase_ascii s in
  List.find_map
    (fun (k, v, _) -> if canon k = canon id then Some v else None)
    experiments

let run_all scale = List.map (fun (k, v, f) -> wrap k v f scale) experiments
