(** The dual graph network [(G, G')] of the paper: reliable links [G] plus
    gray (unreliable) links [E' \ E] the adversary controls per round. *)

type t

(** [make ~g ~gray ()] builds a dual graph from the reliable graph and the
    gray edge list (deduplicated; edges already in [g] dropped).  With
    [?pos], validates the geometric constraints: unit-distance pairs are in
    [E] and every [G'] edge has length at most [d] (default [2.0]). *)
val make :
  ?pos:Rn_geom.Point.t array -> ?d:float -> g:Graph.t -> gray:(int * int) list -> unit -> t

(** Allocation-lean construction from already-canonical gray keys:
    strictly ascending packed [u * n + v] with [u < v], disjoint from
    [g]'s edges (validated).  Same geometric validation as {!make}, done
    edge-by-edge so [g'] is never materialised. *)
val make_packed :
  ?pos:Rn_geom.Point.t array -> ?d:float -> g:Graph.t -> gray_pk:int array -> unit -> t

(** Classic radio model: [G = G'] (no gray edges). *)
val classic : Graph.t -> t

(** Demote reliable edges to gray (the Section 8 "link degrades" event);
    [G'] is unchanged, the embedding is dropped.  Raises if an edge is not
    currently reliable. *)
val demote_edges : t -> (int * int) list -> t

val g : t -> Graph.t

(** [E' = E ∪ gray], materialised lazily on first use (the delivery
    engine never needs it; verification passes do). *)
val g' : t -> Graph.t

val n : t -> int

(** Gray edges, canonically ordered, densely indexed by position, as a
    freshly-allocated tuple array.  Hot paths should use the packed
    accessors {!gray_u}/{!gray_v}/{!gray_other} instead. *)
val gray_edges : t -> (int * int) array

val gray_count : t -> int

(** Endpoints of a gray edge by dense id, [gray_u t id < gray_v t id]. *)
val gray_u : t -> int -> int

val gray_v : t -> int -> int

(** [gray_other t id v] is the endpoint of gray edge [id] that is not
    [v] (one of whose endpoints [v] must be). *)
val gray_other : t -> int -> int -> int

(** Gray incidence of a node: [(neighbor, gray_edge_id)] pairs, as a
    freshly-allocated array.  Hot paths should use {!iter_gray_adj}. *)
val gray_adj : t -> int -> (int * int) array

(** [iter_gray_adj f t v] calls [f neighbor edge_id] for each gray edge
    incident to [v], in descending edge-id order — the order adversary
    policies consume RNG draws in.  No allocation. *)
val iter_gray_adj : (int -> int -> unit) -> t -> int -> unit

val gray_degree : t -> int -> int

(** Gray incidence of a node as a bitset over gray edge ids, for the
    word-parallel delivery kernel.  Built lazily on first use, published
    atomically — safe to share across Pool domains.  Do not mutate. *)
val gray_mask : t -> int -> Rn_util.Bitset.t

(** The whole mask array, same rules as {!gray_mask}. *)
val gray_masks : t -> Rn_util.Bitset.t array

(** [gray_lower_range t u] is the contiguous id range [(lo, hi)] of the
    gray edges whose LOWER endpoint is [u] — contiguous because dense ids
    follow ascending packed [(u, v)] order.  The adversary kernel turns
    "activate every gray edge of broadcaster [u]" into a word-parallel
    {!Rn_util.Bitset.fill_range} over this range plus per-id visits of
    {!iter_gray_upper}.  Backed by a lazily-built O(n + gray)-int CSR,
    published atomically (safe to share across domains). *)
val gray_lower_range : t -> int -> int * int

(** [iter_gray_upper f t v] calls [f id] for each gray edge whose UPPER
    endpoint is [v], ascending id.  Same lazy CSR as
    {!gray_lower_range}; every gray edge appears exactly once per side. *)
val iter_gray_upper : (int -> unit) -> t -> int -> unit

val positions : t -> Rn_geom.Point.t array option

(** The paper's constant [d]: maximum length of a [G'] edge. *)
val d : t -> float

(** Both memoised at graph construction — O(1). *)
val max_degree_g : t -> int

val max_degree_g' : t -> int
val pp : Format.formatter -> t -> unit
