(** The dual graph network [(G, G')] of the paper: reliable links [G] plus
    gray (unreliable) links [E' \ E] the adversary controls per round. *)

type t

(** [make ~g ~gray ()] builds a dual graph from the reliable graph and the
    gray edge list (deduplicated; edges already in [g] dropped).  With
    [?pos], validates the geometric constraints: unit-distance pairs are in
    [E] and every [G'] edge has length at most [d] (default [2.0]). *)
val make :
  ?pos:Rn_geom.Point.t array -> ?d:float -> g:Graph.t -> gray:(int * int) list -> unit -> t

(** Classic radio model: [G = G'] (no gray edges). *)
val classic : Graph.t -> t

(** Demote reliable edges to gray (the Section 8 "link degrades" event);
    [G'] is unchanged, the embedding is dropped.  Raises if an edge is not
    currently reliable. *)
val demote_edges : t -> (int * int) list -> t

val g : t -> Graph.t
val g' : t -> Graph.t
val n : t -> int

(** Gray edges, canonically ordered, densely indexed by position. *)
val gray_edges : t -> (int * int) array

val gray_count : t -> int

(** Gray incidence of a node: [(neighbor, gray_edge_id)] pairs. *)
val gray_adj : t -> int -> (int * int) array

(** Gray incidence of a node as a bitset over gray edge ids, for the
    word-parallel delivery kernel.  Built lazily on first use, published
    atomically — safe to share across Pool domains.  Do not mutate. *)
val gray_mask : t -> int -> Rn_util.Bitset.t

(** The whole mask array, same rules as {!gray_mask}. *)
val gray_masks : t -> Rn_util.Bitset.t array

val positions : t -> Rn_geom.Point.t array option

(** The paper's constant [d]: maximum length of a [G'] edge. *)
val d : t -> float

(** Both memoised at graph construction — O(1). *)
val max_degree_g : t -> int

val max_degree_g' : t -> int
val pp : Format.formatter -> t -> unit
