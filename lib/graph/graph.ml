(* Immutable undirected graphs over nodes [0, n).

   Adjacency lists are sorted int arrays, giving O(log deg) membership
   tests and cache-friendly iteration — the simulator's inner loop walks
   broadcaster adjacency every round. *)

type t = { n : int; adj : int array array; m : int }

let n t = t.n
let edge_count t = t.m

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: node out of range"

let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let deg = Array.make n 0 in
  let canon (u, v) =
    if u = v then invalid_arg "Graph.of_edges: self loop";
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u < v then (u, v) else (v, u)
  in
  let edges = List.sort_uniq compare (List.map canon edges) in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; adj; m = List.length edges }

let neighbors t v =
  check_node t v;
  t.adj.(v)

let degree t v = Array.length (neighbors t v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !best then best := degree t v
  done;
  !best

let mem_edge t u v =
  check_node t u;
  check_node t v;
  let a = t.adj.(u) in
  (* Binary search in the sorted adjacency array. *)
  let rec bs lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true else if a.(mid) < v then bs (mid + 1) hi else bs lo mid
    end
  in
  bs 0 (Array.length a)

let edges t =
  let acc = ref [] in
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.rev !acc

(* Same visiting order as [edges t], without building the list. *)
let iter_edges f t =
  for u = 0 to t.n - 1 do
    let a = t.adj.(u) in
    for i = 0 to Array.length a - 1 do
      let v = a.(i) in
      if u < v then f u v
    done
  done

let fold_nodes f t init =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f v !acc
  done;
  !acc

(* [union a b] has an edge wherever either graph does.  Both adjacency
   lists are already sorted and duplicate-free, so a per-node merge avoids
   the edge-list rebuild and re-sort of [of_edges]. *)
let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let merge x y =
    let lx = Array.length x and ly = Array.length y in
    if lx = 0 then Array.copy y
    else if ly = 0 then Array.copy x
    else begin
      let buf = Array.make (lx + ly) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < lx && !j < ly do
        let xv = x.(!i) and yv = y.(!j) in
        if xv < yv then begin
          buf.(!k) <- xv;
          incr i
        end
        else if yv < xv then begin
          buf.(!k) <- yv;
          incr j
        end
        else begin
          buf.(!k) <- xv;
          incr i;
          incr j
        end;
        incr k
      done;
      while !i < lx do
        buf.(!k) <- x.(!i);
        incr i;
        incr k
      done;
      while !j < ly do
        buf.(!k) <- y.(!j);
        incr j;
        incr k
      done;
      if !k = lx + ly then buf else Array.sub buf 0 !k
    end
  in
  let adj = Array.init a.n (fun v -> merge a.adj.(v) b.adj.(v)) in
  let m = Array.fold_left (fun acc l -> acc + Array.length l) 0 adj / 2 in
  { n = a.n; adj; m }

(* [is_subgraph a b]: every edge of [a] is an edge of [b]. *)
let is_subgraph a b =
  a.n = b.n && List.for_all (fun (u, v) -> mem_edge b u v) (edges a)

(* [induced t keep] restricts to nodes where [keep] holds (same node ids). *)
let induced t keep =
  let es =
    List.filter (fun (u, v) -> keep u && keep v) (edges t)
  in
  of_edges t.n es

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, m=%d)" t.n t.m
