(* Immutable undirected graphs over nodes [0, n).

   Adjacency lists are sorted int arrays, giving O(log deg) membership
   tests and cache-friendly iteration — the simulator's inner loop walks
   broadcaster adjacency every round.

   [rows] is a lazily-built bitset view of the same adjacency (one
   Bitset per node), used by the engine's word-parallel delivery kernel
   on dense rounds.  It is built at most once, on first use, so sparse
   workloads never pay its O(n^2 / word_size) memory; publication goes
   through an [Atomic] so the cache is safe to share across Pool
   domains (an atomic read sees either nothing or a fully-built
   cache). *)

module Bitset = Rn_util.Bitset

type t = {
  n : int;
  adj : int array array;
  m : int;
  maxdeg : int; (* memoised: max degree is read in per-round paths *)
  rows : Bitset.t array option Atomic.t;
}

let n t = t.n
let edge_count t = t.m

let max_deg_of adj = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 adj

let make ~n ~adj ~m = { n; adj; m; maxdeg = max_deg_of adj; rows = Atomic.make None }

(* The build lock is module-wide: row builds are rare (once per graph
   that ever sees a dense round) and the double-check under the lock
   keeps concurrent first uses from building twice. *)
let rows_lock = Mutex.create ()

let adj_rows t =
  match Atomic.get t.rows with
  | Some r -> r
  | None ->
    Mutex.protect rows_lock (fun () ->
        match Atomic.get t.rows with
        | Some r -> r
        | None ->
          let r =
            Array.map
              (fun a ->
                let b = Bitset.create t.n in
                Array.iter (Bitset.add b) a;
                b)
              t.adj
          in
          Atomic.set t.rows (Some r);
          r)

let adj_row t v = (adj_rows t).(v)

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: node out of range"

(* Edges are canonicalised and deduplicated as packed ints (u * n + v,
   u < v): sorting an unboxed int array is several times faster than
   [List.sort_uniq] on tuples, which dominates construction at the
   experiment sizes.  A pleasant consequence of the lexicographic pack:
   filling adjacency in sorted-edge order yields already-sorted rows
   (for node w, all (y, w) edges precede all (w, x) ones and y < w < x
   within each group ascending), so no per-node sort is needed. *)
(* Build from strictly-ascending packed keys (u * n + v, u < v), the
   first [m] entries of [packed].  Filling adjacency in sorted-edge
   order yields already-sorted rows: for node w, all (y, w) edges
   precede all (w, x) ones, and within each group the partner ascends
   (y < w < x), so no per-node sort is needed. *)
let build_packed n packed m =
  let deg = Array.make n 0 in
  for i = 0 to m - 1 do
    let u = packed.(i) / n and v = packed.(i) mod n in
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  done;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  for i = 0 to m - 1 do
    let u = packed.(i) / n and v = packed.(i) mod n in
    adj.(u).(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1;
    adj.(v).(fill.(v)) <- u;
    fill.(v) <- fill.(v) + 1
  done;
  make ~n ~adj ~m

let check_packable n = if n > 0x3FFF_FFFF then invalid_arg "Graph: n too large to pack edges"

let of_packed n packed =
  if n < 0 then invalid_arg "Graph.of_packed: negative n";
  check_packable n;
  let m = Array.length packed in
  for i = 0 to m - 1 do
    let e = packed.(i) in
    let u = e / n and v = e mod n in
    if e < 0 || u >= v || v >= n then invalid_arg "Graph.of_packed: bad key";
    if i > 0 && packed.(i - 1) >= e then invalid_arg "Graph.of_packed: keys not ascending"
  done;
  build_packed n packed m

(* Edges are canonicalised and deduplicated as packed ints: sorting an
   unboxed int array is several times faster than [List.sort_uniq] on
   tuples, which dominates construction at the experiment sizes.  Input
   that is already sorted (e.g. re-building from [edges t]) skips the
   sort. *)
let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  check_packable n;
  let packed =
    Array.of_list
      (List.map
         (fun (u, v) ->
           if u = v then invalid_arg "Graph.of_edges: self loop";
           if u < 0 || u >= n || v < 0 || v >= n then
             invalid_arg "Graph.of_edges: endpoint out of range";
           if u < v then (u * n) + v else (v * n) + u)
         edges)
  in
  let len = Array.length packed in
  let sorted = ref true in
  for i = 1 to len - 1 do
    if packed.(i - 1) > packed.(i) then sorted := false
  done;
  if not !sorted then Array.sort compare packed;
  let m = ref 0 in
  Array.iteri
    (fun i e ->
      if i = 0 || packed.(i - 1) <> e then begin
        packed.(!m) <- e;
        incr m
      end)
    packed;
  build_packed n packed !m

let neighbors t v =
  check_node t v;
  t.adj.(v)

let degree t v = Array.length (neighbors t v)

let max_degree t = t.maxdeg

let mem_edge t u v =
  check_node t u;
  check_node t v;
  let a = t.adj.(u) in
  (* Binary search in the sorted adjacency array. *)
  let rec bs lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true else if a.(mid) < v then bs (mid + 1) hi else bs lo mid
    end
  in
  bs 0 (Array.length a)

let edges t =
  let acc = ref [] in
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.rev !acc

(* Same visiting order as [edges t], without building the list. *)
let iter_edges f t =
  for u = 0 to t.n - 1 do
    let a = t.adj.(u) in
    for i = 0 to Array.length a - 1 do
      let v = a.(i) in
      if u < v then f u v
    done
  done

let fold_nodes f t init =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f v !acc
  done;
  !acc

(* [union a b] has an edge wherever either graph does.  Both adjacency
   lists are already sorted and duplicate-free, so a per-node merge avoids
   the edge-list rebuild and re-sort of [of_edges]. *)
let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let merge x y =
    let lx = Array.length x and ly = Array.length y in
    if lx = 0 then Array.copy y
    else if ly = 0 then Array.copy x
    else begin
      let buf = Array.make (lx + ly) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < lx && !j < ly do
        let xv = x.(!i) and yv = y.(!j) in
        if xv < yv then begin
          buf.(!k) <- xv;
          incr i
        end
        else if yv < xv then begin
          buf.(!k) <- yv;
          incr j
        end
        else begin
          buf.(!k) <- xv;
          incr i;
          incr j
        end;
        incr k
      done;
      while !i < lx do
        buf.(!k) <- x.(!i);
        incr i;
        incr k
      done;
      while !j < ly do
        buf.(!k) <- y.(!j);
        incr j;
        incr k
      done;
      if !k = lx + ly then buf else Array.sub buf 0 !k
    end
  in
  let adj = Array.init a.n (fun v -> merge a.adj.(v) b.adj.(v)) in
  let m = Array.fold_left (fun acc l -> acc + Array.length l) 0 adj / 2 in
  make ~n:a.n ~adj ~m

(* [is_subgraph a b]: every edge of [a] is an edge of [b]. *)
let is_subgraph a b =
  a.n = b.n && List.for_all (fun (u, v) -> mem_edge b u v) (edges a)

(* [induced t keep] restricts to nodes where [keep] holds (same node ids). *)
let induced t keep =
  let es =
    List.filter (fun (u, v) -> keep u && keep v) (edges t)
  in
  of_edges t.n es

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, m=%d)" t.n t.m
