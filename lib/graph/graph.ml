(* Immutable undirected graphs over nodes [0, n).

   Adjacency is stored in CSR form: one flat [nbr] array of length 2m
   holding every row back-to-back (sorted within each row), indexed by an
   [off] array of n+1 offsets.  Compared to an array-of-arrays this
   drops n header words and n pointers — at a million nodes that is the
   difference between the graph fitting comfortably in memory and the GC
   chasing a million tiny arrays — and iteration over a row is a plain
   int-array scan either way.

   [rows] is a lazily-built bitset view of the same adjacency (one
   Bitset per node), used by the engine's word-parallel delivery kernel
   on dense rounds.  It is built at most once, on first use, so sparse
   workloads never pay its O(n^2 / word_size) memory; publication goes
   through an [Atomic] so the cache is safe to share across Pool
   domains (an atomic read sees either nothing or a fully-built
   cache). *)

module Bitset = Rn_util.Bitset

type t = {
  n : int;
  off : int array; (* n + 1 row offsets into [nbr] *)
  nbr : int array; (* length 2m; sorted within each row *)
  m : int;
  maxdeg : int; (* memoised: max degree is read in per-round paths *)
  rows : Bitset.t array option Atomic.t;
}

let n t = t.n
let edge_count t = t.m

let make ~n ~off ~nbr ~m =
  let maxdeg = ref 0 in
  for v = 0 to n - 1 do
    maxdeg := max !maxdeg (off.(v + 1) - off.(v))
  done;
  { n; off; nbr; m; maxdeg = !maxdeg; rows = Atomic.make None }

(* The build lock is module-wide: row builds are rare (once per graph
   that ever sees a dense round) and the double-check under the lock
   keeps concurrent first uses from building twice. *)
let rows_lock = Mutex.create ()

let adj_rows t =
  match Atomic.get t.rows with
  | Some r -> r
  | None ->
    Mutex.protect rows_lock (fun () ->
        match Atomic.get t.rows with
        | Some r -> r
        | None ->
          let r =
            Array.init t.n (fun v ->
                let b = Bitset.create t.n in
                for i = t.off.(v) to t.off.(v + 1) - 1 do
                  Bitset.add b t.nbr.(i)
                done;
                b)
          in
          Atomic.set t.rows (Some r);
          r)

let adj_row t v = (adj_rows t).(v)

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: node out of range"

(* Build from strictly-ascending packed keys (u * n + v, u < v), the
   first [m] entries of [packed].  Filling adjacency in sorted-edge
   order yields already-sorted rows: for node w, all (y, w) edges
   precede all (w, x) ones, and within each group the partner ascends
   (y < w < x), so no per-node sort is needed. *)
let build_packed n packed m =
  let off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    let u = packed.(i) / n and v = packed.(i) mod n in
    off.(u + 1) <- off.(u + 1) + 1;
    off.(v + 1) <- off.(v + 1) + 1
  done;
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v + 1) + off.(v)
  done;
  let nbr = Array.make (2 * m) 0 in
  let fill = Array.copy off in
  for i = 0 to m - 1 do
    let u = packed.(i) / n and v = packed.(i) mod n in
    nbr.(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1;
    nbr.(fill.(v)) <- u;
    fill.(v) <- fill.(v) + 1
  done;
  make ~n ~off ~nbr ~m

let check_packable n = if n > 0x3FFF_FFFF then invalid_arg "Graph: n too large to pack edges"

let of_packed n packed =
  if n < 0 then invalid_arg "Graph.of_packed: negative n";
  check_packable n;
  let m = Array.length packed in
  for i = 0 to m - 1 do
    let e = packed.(i) in
    let u = e / n and v = e mod n in
    if e < 0 || u >= v || v >= n then invalid_arg "Graph.of_packed: bad key";
    if i > 0 && packed.(i - 1) >= e then invalid_arg "Graph.of_packed: keys not ascending"
  done;
  build_packed n packed m

let int_compare (x : int) y = if x < y then -1 else if x > y then 1 else 0

(* Sort-dedup-build from an unvalidated packed key array; mutates
   [packed] in place (the builders that use this hold a scratch buffer
   anyway).  This is the memory-lean construction path: no tuple list,
   no intermediate copies beyond the caller's buffer. *)
let of_packed_unsorted n packed =
  if n < 0 then invalid_arg "Graph.of_packed_unsorted: negative n";
  check_packable n;
  let len = Array.length packed in
  for i = 0 to len - 1 do
    let e = packed.(i) in
    let u = e / n and v = e mod n in
    if e < 0 || u >= v || v >= n then invalid_arg "Graph.of_packed_unsorted: bad key"
  done;
  Array.sort int_compare packed;
  let m = ref 0 in
  for i = 0 to len - 1 do
    let e = packed.(i) in
    if i = 0 || packed.(i - 1) <> e then begin
      packed.(!m) <- e;
      incr m
    end
  done;
  build_packed n packed !m

(* Edges are canonicalised and deduplicated as packed ints: sorting an
   unboxed int array is several times faster than [List.sort_uniq] on
   tuples, which dominates construction at the experiment sizes.  Input
   that is already sorted (e.g. re-building from [edges t]) skips the
   sort. *)
let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  check_packable n;
  let packed =
    Array.of_list
      (List.map
         (fun (u, v) ->
           if u = v then invalid_arg "Graph.of_edges: self loop";
           if u < 0 || u >= n || v < 0 || v >= n then
             invalid_arg "Graph.of_edges: endpoint out of range";
           if u < v then (u * n) + v else (v * n) + u)
         edges)
  in
  let len = Array.length packed in
  let sorted = ref true in
  for i = 1 to len - 1 do
    if packed.(i - 1) > packed.(i) then sorted := false
  done;
  if not !sorted then Array.sort int_compare packed;
  let m = ref 0 in
  Array.iteri
    (fun i e ->
      if i = 0 || packed.(i - 1) <> e then begin
        packed.(!m) <- e;
        incr m
      end)
    packed;
  build_packed n packed !m

let degree t v =
  check_node t v;
  t.off.(v + 1) - t.off.(v)

(* Allocates a fresh copy of the row (the CSR store is shared); hot
   paths should use [iter_neighbors] instead. *)
let neighbors t v =
  check_node t v;
  Array.sub t.nbr t.off.(v) (t.off.(v + 1) - t.off.(v))

(* Visit a node's neighbors in increasing order, no allocation. *)
let iter_neighbors f t v =
  check_node t v;
  for i = t.off.(v) to t.off.(v + 1) - 1 do
    f (Array.unsafe_get t.nbr i)
  done

let fold_neighbors f t v init =
  check_node t v;
  let acc = ref init in
  for i = t.off.(v) to t.off.(v + 1) - 1 do
    acc := f (Array.unsafe_get t.nbr i) !acc
  done;
  !acc

let max_degree t = t.maxdeg

let mem_edge t u v =
  check_node t u;
  check_node t v;
  (* Binary search in the sorted CSR row. *)
  let rec bs lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if t.nbr.(mid) = v then true
      else if t.nbr.(mid) < v then bs (mid + 1) hi
      else bs lo mid
    end
  in
  bs t.off.(u) t.off.(u + 1)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for i = t.off.(u + 1) - 1 downto t.off.(u) do
      let v = t.nbr.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

(* Same visiting order as [edges t], without building the list. *)
let iter_edges f t =
  for u = 0 to t.n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.nbr.(i) in
      if u < v then f u v
    done
  done

let fold_nodes f t init =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f v !acc
  done;
  !acc

(* [union a b] has an edge wherever either graph does.  Both CSR rows
   are already sorted and duplicate-free, so a per-node merge avoids the
   edge-list rebuild and re-sort of [of_edges]. *)
let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let cap = Array.length a.nbr + Array.length b.nbr in
  let nbr = Array.make (max cap 1) 0 in
  let off = Array.make (a.n + 1) 0 in
  let k = ref 0 in
  for v = 0 to a.n - 1 do
    let i = ref a.off.(v) and j = ref b.off.(v) in
    let ihi = a.off.(v + 1) and jhi = b.off.(v + 1) in
    while !i < ihi && !j < jhi do
      let xv = a.nbr.(!i) and yv = b.nbr.(!j) in
      if xv < yv then begin
        nbr.(!k) <- xv;
        incr i
      end
      else if yv < xv then begin
        nbr.(!k) <- yv;
        incr j
      end
      else begin
        nbr.(!k) <- xv;
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < ihi do
      nbr.(!k) <- a.nbr.(!i);
      incr i;
      incr k
    done;
    while !j < jhi do
      nbr.(!k) <- b.nbr.(!j);
      incr j;
      incr k
    done;
    off.(v + 1) <- !k
  done;
  let nbr = if !k = cap then nbr else Array.sub nbr 0 (max !k 1) in
  make ~n:a.n ~off ~nbr ~m:(!k / 2)

(* [is_subgraph a b]: every edge of [a] is an edge of [b]. *)
let is_subgraph a b =
  if a.n <> b.n then false
  else begin
    let ok = ref true in
    iter_edges (fun u v -> if not (mem_edge b u v) then ok := false) a;
    !ok
  end

(* [induced t keep] restricts to nodes where [keep] holds (same node ids). *)
let induced t keep =
  let buf = ref [] in
  let cnt = ref 0 in
  iter_edges
    (fun u v ->
      if keep u && keep v then begin
        buf := ((u * t.n) + v) :: !buf;
        incr cnt
      end)
    t;
  let packed = Array.make !cnt 0 in
  (* [iter_edges] visits in ascending packed order and the list was
     built by consing, so unreverse while filling. *)
  List.iteri (fun i e -> packed.(!cnt - 1 - i) <- e) !buf;
  build_packed t.n packed !cnt

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, m=%d)" t.n t.m
