(** Network generators: geometric dual graphs, the Section 7 lower-bound
    family, and simple deterministic topologies. *)

type geometric_spec = {
  n : int;
  side : float;
  d : float;
  gray_p : float;
  max_attempts : int;
}

val default_spec :
  ?d:float -> ?gray_p:float -> ?max_attempts:int -> n:int -> side:float -> unit -> geometric_spec

(** Box side yielding expected reliable degree ≈ [target_degree]. *)
val side_for_degree : n:int -> target_degree:int -> float

(** Dual graph induced by fixed positions: reliable at distance ≤ 1,
    gray-zone pairs in (1, d] kept with probability [gray_p].  O(n)
    expected via a hash-grid; consumes the RNG stream in the same order
    as {!of_positions_naive}, so the result is identical to it. *)
val of_positions :
  rng:Rn_util.Rng.t -> d:float -> gray_p:float -> Rn_geom.Point.t array -> Dual.t

(** Reference O(n²) pairwise implementation of {!of_positions} — the
    differential oracle for the grid path; use only in tests. *)
val of_positions_naive :
  rng:Rn_util.Rng.t -> d:float -> gray_p:float -> Rn_geom.Point.t array -> Dual.t

(** Random geometric dual graph resampled until [G] is connected.
    Raises [Failure] after [max_attempts]. *)
val geometric : rng:Rn_util.Rng.t -> geometric_spec -> Dual.t

(** Jittered grid placement (connected by construction for the default
    spacing/jitter). *)
val grid_jitter :
  rng:Rn_util.Rng.t ->
  ?spacing:float ->
  ?jitter:float ->
  ?d:float ->
  ?gray_p:float ->
  rows:int ->
  cols:int ->
  unit ->
  Dual.t

(** Clustered deployment: [clusters] dense hotspots of [per_cluster] nodes
    on a ring, linked by waypoint chains (connected by construction or
    [Failure]).  High in-cluster contention, thin corridors between. *)
val clusters :
  rng:Rn_util.Rng.t ->
  ?d:float ->
  ?gray_p:float ->
  ?cluster_radius:float ->
  clusters:int ->
  per_cluster:int ->
  unit ->
  Dual.t

(** Two β-cliques joined by one reliable bridge edge; [G'] complete
    (Section 7 lower bound).  Defaults: bridge endpoints [0] and [β]. *)
val bridge_cliques : beta:int -> ?bridge_a:int -> ?bridge_b:int -> unit -> Dual.t

val clique : int -> Graph.t
val path : int -> Graph.t
val ring : int -> Graph.t
val star : int -> Graph.t
