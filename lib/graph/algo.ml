(* Classic graph algorithms over [Graph.t], used by generators (connectivity
   retries), verifiers (CCDS connectivity/domination) and experiments
   (hop-distance bookkeeping). *)

let unreachable = max_int

(* BFS hop distances from [src]; [unreachable] where no path exists. *)
let bfs_dist g src =
  let n = Graph.n g in
  let dist = Array.make n unreachable in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors
      (fun v ->
        if dist.(v) = unreachable then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      g u
  done;
  dist

(* BFS restricted to nodes satisfying [allow] (source must satisfy it). *)
let bfs_dist_restricted g src ~allow =
  let n = Graph.n g in
  let dist = Array.make n unreachable in
  if allow src then begin
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors
        (fun v ->
          if allow v && dist.(v) = unreachable then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        g u
    done
  end;
  dist

let is_connected g =
  let n = Graph.n g in
  n <= 1
  ||
  let dist = bfs_dist g 0 in
  Array.for_all (fun d -> d <> unreachable) dist

(* Connectivity of the subgraph induced by [members] (a node list).  Vacuous
   for the empty and singleton sets. *)
let is_connected_subset g members =
  match members with
  | [] -> true
  | src :: _ ->
    let allow =
      let set = Hashtbl.create (List.length members) in
      List.iter (fun v -> Hashtbl.replace set v ()) members;
      fun v -> Hashtbl.mem set v
    in
    let dist = bfs_dist_restricted g src ~allow in
    List.for_all (fun v -> dist.(v) <> unreachable) members

let connected_components g =
  let n = Graph.n g in
  let uf = Rn_util.Union_find.create n in
  Graph.iter_edges (fun u v -> Rn_util.Union_find.union uf u v) g;
  Rn_util.Union_find.components uf

(* Exact diameter by all-sources BFS (fine at experiment scales). *)
let diameter g =
  if not (is_connected g) then invalid_arg "Algo.diameter: disconnected";
  let best = ref 0 in
  for src = 0 to Graph.n g - 1 do
    let dist = bfs_dist g src in
    Array.iter (fun d -> if d <> unreachable && d > !best then best := d) dist
  done;
  !best

(* Eccentricity of one node. *)
let eccentricity g src =
  let dist = bfs_dist g src in
  Array.fold_left (fun acc d -> if d = unreachable then acc else max acc d) 0 dist

(* Nodes within [h] hops of [src] (excluding [src]). *)
let within_hops g src h =
  let dist = bfs_dist g src in
  let acc = ref [] in
  Array.iteri (fun v d -> if v <> src && d <= h then acc := v :: !acc) dist;
  List.rev !acc

(* A shortest path from [src] to [dst] as a node list, or [None]. *)
let shortest_path g src dst =
  let dist = bfs_dist g src in
  if dist.(dst) = unreachable then None
  else begin
    (* Walk back from dst choosing any neighbour one hop closer. *)
    let rec back v acc =
      if v = src then v :: acc
      else begin
        let next =
          Array.to_seq (Graph.neighbors g v)
          |> Seq.filter (fun u -> dist.(u) = dist.(v) - 1)
          |> Seq.uncons
        in
        match next with
        | Some (u, _) -> back u (v :: acc)
        | None -> assert false
      end
    in
    Some (back dst [])
  end

(* Greedy check that a set is independent in g. *)
let is_independent_set g members =
  let rec loop = function
    | [] -> true
    | v :: rest ->
      List.for_all (fun u -> not (Graph.mem_edge g u v)) rest && loop rest
  in
  loop members
