(* Network generators.

   Geometric generators realise the paper's embedding assumptions: nodes in
   the plane, reliable links at distance <= 1, unreliable (gray) links in
   the zone (1, d].  [bridge_cliques] is the synthetic two-cliques-plus-
   bridge family from the lower bound of Section 7 (it has no geometric
   embedding; the lower bound does not need one). *)

module Rng = Rn_util.Rng
module Point = Rn_geom.Point

type geometric_spec = {
  n : int;
  side : float; (* nodes are sampled uniformly in [0,side]^2 *)
  d : float; (* gray-zone outer radius (paper's d) *)
  gray_p : float; (* probability a gray-zone pair joins E' *)
  max_attempts : int; (* resampling budget for G-connectivity *)
}

let default_spec ?(d = 2.0) ?(gray_p = 0.5) ?(max_attempts = 200) ~n ~side () =
  { n; side; d; gray_p; max_attempts }

(* Box side length giving an expected reliable degree near [target_degree]
   (unit-disk area pi over density n/side^2). *)
let side_for_degree ~n ~target_degree =
  if n <= 1 || target_degree <= 0 then invalid_arg "Gen.side_for_degree";
  sqrt (Float.pi *. float_of_int (n - 1) /. float_of_int target_degree)

(* Derive a dual graph from fixed positions — reference O(n^2) pairwise
   scan, kept as the differential oracle for the grid path below. *)
let of_positions_naive ~rng ~d ~gray_p pos =
  let n = Array.length pos in
  let reliable = ref [] and gray = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = Point.dist pos.(u) pos.(v) in
      if dist <= 1.0 then reliable := (u, v) :: !reliable
      else if dist <= d && Rng.bool rng gray_p then gray := (u, v) :: !gray
    done
  done;
  let g = Graph.of_edges n !reliable in
  Dual.make ~pos ~d ~g ~gray:!gray ()

(* Derive a dual graph from fixed positions, O(n) expected for bounded
   density: a hash-grid of cell max(d, 1) enumerates exactly the pairs
   that can be reliable or gray-zone.

   RNG-stream compatibility matters here: the naive scan draws one
   Bernoulli per gray-zone pair in (u, v)-lexicographic order, and every
   cached experiment table depends on that stream.  The grid visits
   pairs in cell order, so gray-zone *candidates* are collected first
   and sorted back to (u, v) order before any draw — the produced dual
   graph is identical to the naive one, bit for bit. *)
let of_positions ~rng ~d ~gray_p pos =
  let n = Array.length pos in
  (* Growable unboxed buffers of packed (u * n + v) keys: at a million
     nodes the reliable and gray-zone sets run to tens of millions of
     pairs, where tuple lists cost gigabytes of boxed cells.  The
     amortised-doubling push keeps peak memory at ~2x the final size. *)
  let push bufref lenref e =
    let buf = !bufref and len = !lenref in
    let buf =
      if len < Array.length buf then buf
      else begin
        let b = Array.make (2 * len) 0 in
        Array.blit buf 0 b 0 len;
        bufref := b;
        b
      end
    in
    buf.(len) <- e;
    lenref := len + 1
  in
  let rel_buf = ref (Array.make 1024 0) and rel_len = ref 0 in
  let cand_buf = ref (Array.make 1024 0) and cand_len = ref 0 in
  let grid = Rn_geom.Grid.build ~cell:(Float.max d 1.0) pos in
  Rn_geom.Grid.iter_pairs
    (fun u v dist ->
      if dist <= 1.0 then push rel_buf rel_len ((u * n) + v)
      else if dist <= d then push cand_buf cand_len ((u * n) + v))
    grid pos;
  (* packed (u * n + v) candidates sort as unboxed ints, and ascending
     packed order is (u, v)-lexicographic — the naive scan's draw order *)
  let cand = Array.sub !cand_buf 0 !cand_len in
  cand_buf := [||];
  Array.sort (fun (x : int) y -> compare x y) cand;
  (* Bernoulli draws in ascending order produce the gray keys already
     ascending, exactly what [Dual.make_packed] wants. *)
  let gray_len = ref 0 in
  Array.iter
    (fun e ->
      if Rng.bool rng gray_p then begin
        cand.(!gray_len) <- e;
        incr gray_len
      end)
    cand;
  let gray_pk = Array.sub cand 0 !gray_len in
  let g = Graph.of_packed_unsorted n (Array.sub !rel_buf 0 !rel_len) in
  rel_buf := [||];
  Dual.make_packed ~pos ~d ~g ~gray_pk ()

(* Random geometric dual graph, resampled until G is connected. *)
let geometric ~rng spec =
  if spec.n < 1 then invalid_arg "Gen.geometric: n < 1";
  let rec attempt k =
    if k > spec.max_attempts then
      failwith
        (Printf.sprintf
           "Gen.geometric: no connected instance in %d attempts (n=%d side=%.2f)"
           spec.max_attempts spec.n spec.side);
    let pos = Array.init spec.n (fun _ -> Point.random rng ~w:spec.side ~h:spec.side) in
    let dual = of_positions ~rng ~d:spec.d ~gray_p:spec.gray_p pos in
    if Algo.is_connected (Dual.g dual) then dual else attempt (k + 1)
  in
  attempt 1

(* Nodes near a jittered grid: connected by construction for small jitter
   (grid spacing + 2*jitter stays within unit distance), which makes it a
   deterministic-shape workload for tests. *)
let grid_jitter ~rng ?(spacing = 0.75) ?(jitter = 0.1) ?(d = 2.0) ?(gray_p = 0.5) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid_jitter";
  let pos =
    Array.init (rows * cols) (fun idx ->
        let r = idx / cols and c = idx mod cols in
        let dx = (Rng.float rng -. 0.5) *. 2.0 *. jitter in
        let dy = (Rng.float rng -. 0.5) *. 2.0 *. jitter in
        Point.make ((float_of_int c *. spacing) +. dx) ((float_of_int r *. spacing) +. dy))
  in
  of_positions ~rng ~d ~gray_p pos

(* Clustered sensor deployment: dense hotspots connected by a sparse
   backbone of waypoints — a common real-world shape that stresses the
   algorithms differently from uniform fields (high local contention
   inside clusters, long thin corridors between them).  Cluster centres
   are placed on a circle spaced so adjacent waypoint chains connect. *)
let clusters ~rng ?(d = 2.0) ?(gray_p = 0.5) ?(cluster_radius = 0.8) ~clusters:k
    ~per_cluster () =
  if k < 1 || per_cluster < 1 then invalid_arg "Gen.clusters";
  let ring_radius = if k = 1 then 0.0 else float_of_int k *. 1.4 /. (2.0 *. Float.pi) in
  let center i =
    let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int k in
    Point.make (ring_radius *. cos a) (ring_radius *. sin a)
  in
  let members = ref [] in
  for i = 0 to k - 1 do
    let c = center i in
    for _ = 1 to per_cluster do
      let dx = (Rng.float rng -. 0.5) *. 2.0 *. cluster_radius in
      let dy = (Rng.float rng -. 0.5) *. 2.0 *. cluster_radius in
      members := Point.make (c.Point.x +. dx) (c.Point.y +. dy) :: !members
    done;
    (* waypoints towards the next cluster keep the field connected *)
    if k > 1 then begin
      let next = center ((i + 1) mod k) in
      let gap = Point.dist c next in
      let steps = int_of_float (ceil (gap /. 0.8)) in
      for s = 1 to steps - 1 do
        let t = float_of_int s /. float_of_int steps in
        members :=
          Point.make
            (c.Point.x +. (t *. (next.Point.x -. c.Point.x)))
            (c.Point.y +. (t *. (next.Point.y -. c.Point.y)))
          :: !members
      done
    end
  done;
  let pos = Array.of_list (List.rev !members) in
  let dual = of_positions ~rng ~d ~gray_p pos in
  if not (Algo.is_connected (Dual.g dual)) then
    failwith "Gen.clusters: disconnected instance (increase per_cluster or radius)";
  dual

(* The Section 7 lower-bound family: G is two beta-cliques joined by a
   single bridge edge; G' is the complete graph.  [bridge_a] lives in
   clique A = {0..beta-1} and [bridge_b] in clique B = {beta..2beta-1}. *)
let bridge_cliques ~beta ?(bridge_a = 0) ?bridge_b () =
  if beta < 2 then invalid_arg "Gen.bridge_cliques: beta < 2";
  let bridge_b = match bridge_b with Some b -> b | None -> beta in
  if bridge_a < 0 || bridge_a >= beta then invalid_arg "Gen.bridge_cliques: bridge_a";
  if bridge_b < beta || bridge_b >= 2 * beta then invalid_arg "Gen.bridge_cliques: bridge_b";
  let n = 2 * beta in
  let reliable = ref [] in
  for u = 0 to beta - 1 do
    for v = u + 1 to beta - 1 do
      reliable := (u, v) :: !reliable
    done
  done;
  for u = beta to n - 1 do
    for v = u + 1 to n - 1 do
      reliable := (u, v) :: !reliable
    done
  done;
  reliable := (bridge_a, bridge_b) :: !reliable;
  let g = Graph.of_edges n !reliable in
  let gray = ref [] in
  for u = 0 to beta - 1 do
    for v = beta to n - 1 do
      if not (u = bridge_a && v = bridge_b) then gray := (u, v) :: !gray
    done
  done;
  Dual.make ~g ~gray:!gray ()

(* Simple deterministic topologies for unit tests. *)
let clique n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges n !es

let path n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Gen.ring: n < 3";
  Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 2 then invalid_arg "Gen.star: n < 2";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))
