(** Immutable undirected graphs over nodes [0, n). *)

type t

(** [of_edges n edges] builds a graph; duplicate edges are collapsed,
    self-loops and out-of-range endpoints rejected. *)
val of_edges : int -> (int * int) list -> t

(** [of_packed n keys] builds a graph from edges encoded as strictly
    ascending [u * n + v] keys with [u < v] — the fast path for builders
    (e.g. {!Dual.make}) that already hold canonicalised sorted edges.
    Raises [Invalid_argument] on malformed or out-of-order keys. *)
val of_packed : int -> int array -> t

(** Like {!of_packed} but sorts and deduplicates the keys first,
    mutating the input array in place — the memory-lean path for
    generators that accumulate packed edges into a scratch buffer. *)
val of_packed_unsorted : int -> int array -> t

val n : t -> int
val edge_count : t -> int

(** Sorted adjacency of a node, as a freshly-allocated array (the CSR
    backing store is shared).  Hot paths should use {!iter_neighbors}. *)
val neighbors : t -> int -> int array

(** [iter_neighbors f t v] visits [v]'s neighbors in increasing order
    without allocating. *)
val iter_neighbors : (int -> unit) -> t -> int -> unit

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
val degree : t -> int -> int

(** Memoised at construction — O(1). *)
val max_degree : t -> int

val mem_edge : t -> int -> int -> bool

(** Bitset view of a node's adjacency, for word-parallel kernels.  The
    per-node row cache is built lazily on first use (so sparse workloads
    never pay its memory) and published atomically, making it safe to
    share one graph across Pool domains.  Do not mutate the result. *)
val adj_row : t -> int -> Rn_util.Bitset.t

(** The whole row cache, same laziness and sharing rules as {!adj_row};
    hoists the cache lookup out of per-broadcaster loops. *)
val adj_rows : t -> Rn_util.Bitset.t array

(** All edges with [u < v], lexicographic order. *)
val edges : t -> (int * int) list

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Edge-union of two graphs on the same node set. *)
val union : t -> t -> t

(** [is_subgraph a b] iff every edge of [a] is in [b] (and sizes match). *)
val is_subgraph : t -> t -> bool

(** Subgraph keeping only edges between nodes satisfying the predicate. *)
val induced : t -> (int -> bool) -> t

val pp : Format.formatter -> t -> unit
