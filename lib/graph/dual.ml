(* The dual graph network (G, G') of Section 2.

   G = (V, E) is the reliable link graph and G' = (V, E') the unreliable
   one, with E ⊆ E'.  We store G plus the *gray* edges E' \ E explicitly:
   these are exactly the links the round adversary may switch on and off,
   and the simulator indexes them densely so an adversary policy can
   activate them with a boolean per edge.

   Geometric instances additionally carry the plane embedding; the paper
   requires dist(u,v) <= 1 => (u,v) ∈ E and (u,v) ∈ E' => dist(u,v) <= d. *)

module Bitset = Rn_util.Bitset

type t = {
  g : Graph.t;  (* reliable links E *)
  g' : Graph.t; (* E' = E ∪ gray *)
  gray : (int * int) array; (* E' \ E, canonical u < v, indexable *)
  gray_adj : (int * int) array array; (* node -> [(neighbor, gray edge id)] *)
  pos : Rn_geom.Point.t array option; (* plane embedding, if geometric *)
  d : float; (* max distance of a G' edge (paper's constant d) *)
  gray_masks : Bitset.t array option Atomic.t;
      (* lazy: node -> bitset of incident gray edge ids, for the
         word-parallel delivery kernel; same build-once / atomic-publish
         discipline as [Graph]'s row cache *)
}

let g t = t.g
let g' t = t.g'
let n t = Graph.n t.g
let gray_edges t = t.gray
let gray_count t = Array.length t.gray
let gray_adj t v = t.gray_adj.(v)
let positions t = t.pos
let d t = t.d

let make ?pos ?(d = 2.0) ~g ~gray () =
  let n = Graph.n g in
  (* Canonicalise/dedup as packed ints, like [Graph.of_edges]: the sort
     is the construction hot spot at experiment sizes, and ascending
     packed order is exactly the lexicographic order the dense gray-edge
     ids must follow (adversary policies draw per edge id). *)
  let gray_packed =
    let a =
      Array.of_list
        (List.map
           (fun (u, v) ->
             if u = v || u < 0 || v < 0 || u >= n || v >= n then
               invalid_arg "Dual.make: bad gray edge";
             if u < v then (u * n) + v else (v * n) + u)
           gray)
    in
    Array.sort compare a;
    let k = ref 0 in
    Array.iteri
      (fun i e ->
        if (i = 0 || a.(i - 1) <> e) && not (Graph.mem_edge g (e / n) (e mod n)) then begin
          a.(!k) <- e;
          incr k
        end)
      a;
    Array.sub a 0 !k
  in
  let gray = Array.map (fun e -> (e / n, e mod n)) gray_packed in
  let g' = Graph.union g (Graph.of_packed n gray_packed) in
  (match pos with
  | Some p ->
    if Array.length p <> n then invalid_arg "Dual.make: positions arity";
    (* Model constraints: unit-distance pairs must be reliable links and no
       G' edge may exceed distance d.  The first only concerns pairs at
       distance <= 1, which a unit hash-grid enumerates in O(n) expected;
       the second only concerns the m' edges of G' — neither needs the
       full O(n^2) pair scan. *)
    let grid = Rn_geom.Grid.build ~cell:1.0 p in
    Rn_geom.Grid.iter_pairs
      (fun u v dist ->
        if dist <= 1.0 && not (Graph.mem_edge g u v) then
          invalid_arg "Dual.make: unit-distance pair missing from E")
      grid p;
    Graph.iter_edges
      (fun u v ->
        if Rn_geom.Point.dist p.(u) p.(v) > d +. 1e-9 then
          invalid_arg "Dual.make: G' edge longer than d")
      g'
  | None -> ());
  (* Counting fill instead of list buckets; iterating ids high-to-low
     reproduces the historical row order (descending edge id), which
     adversary policies may consume RNG draws in. *)
  let gdeg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      gdeg.(u) <- gdeg.(u) + 1;
      gdeg.(v) <- gdeg.(v) + 1)
    gray;
  let gray_adj = Array.init n (fun v -> Array.make gdeg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  for id = Array.length gray - 1 downto 0 do
    let u, v = gray.(id) in
    gray_adj.(u).(fill.(u)) <- (v, id);
    fill.(u) <- fill.(u) + 1;
    gray_adj.(v).(fill.(v)) <- (u, id);
    fill.(v) <- fill.(v) + 1
  done;
  { g; g'; gray; gray_adj; pos; d; gray_masks = Atomic.make None }

let masks_lock = Mutex.create ()

(* Gray incidence as bitsets over gray edge ids: [gray_mask t v] has bit
   [id] set iff gray edge [id] touches [v].  Lets the delivery kernel
   intersect a node's incident gray edges with the round's active set in
   O(gray/word) instead of walking [gray_adj]. *)
let gray_masks t =
  match Atomic.get t.gray_masks with
  | Some m -> m
  | None ->
    Mutex.protect masks_lock (fun () ->
        match Atomic.get t.gray_masks with
        | Some m -> m
        | None ->
          let ng = Array.length t.gray in
          let m =
            Array.map
              (fun inc ->
                let b = Bitset.create ng in
                Array.iter (fun (_, id) -> Bitset.add b id) inc;
                b)
              t.gray_adj
          in
          Atomic.set t.gray_masks (Some m);
          m)

let gray_mask t v = (gray_masks t).(v)

(* A dual graph with no unreliable links: the classic radio model G = G'. *)
let classic g = make ~g ~gray:[] ()

(* Move reliable edges into the gray set — the Section 8 "link degrades"
   event.  G' is unchanged; only the reliability of the named links drops.
   The geometric embedding is deliberately dropped: a demoted unit-distance
   edge no longer satisfies the *static* model constraint (dynamics is
   exactly the regime where that constraint is soft). *)
let demote_edges t edges =
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let demoted = List.sort_uniq compare (List.map canon edges) in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge t.g u v) then
        invalid_arg "Dual.demote_edges: not a reliable edge")
    demoted;
  let keep e = not (List.mem e demoted) in
  let g1 = Graph.of_edges (n t) (List.filter keep (Graph.edges t.g)) in
  make ~d:t.d ~g:g1 ~gray:(Array.to_list t.gray @ demoted) ()

let max_degree_g t = Graph.max_degree t.g
let max_degree_g' t = Graph.max_degree t.g'

let pp ppf t =
  Fmt.pf ppf "dual(n=%d, |E|=%d, gray=%d)" (n t) (Graph.edge_count t.g)
    (gray_count t)
