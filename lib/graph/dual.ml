(* The dual graph network (G, G') of Section 2.

   G = (V, E) is the reliable link graph and G' = (V, E') the unreliable
   one, with E ⊆ E'.  We store G plus the *gray* edges E' \ E explicitly:
   these are exactly the links the round adversary may switch on and off,
   and the simulator indexes them densely so an adversary policy can
   activate them with a boolean per edge.

   Gray edges are kept packed ([u * n + v], ascending, so the array index
   IS the dense edge id) and gray incidence in CSR form — at a million
   nodes the gray set runs to tens of millions of edges, where an array
   of (neighbor, id) tuple arrays would cost gigabytes of boxed pairs.
   [g'] is materialised lazily: the delivery engine never touches it
   (it works off G plus the gray set), so scale runs skip its cost
   entirely while verification-style callers still get it on demand.

   Geometric instances additionally carry the plane embedding; the paper
   requires dist(u,v) <= 1 => (u,v) ∈ E and (u,v) ∈ E' => dist(u,v) <= d. *)

module Bitset = Rn_util.Bitset

type t = {
  g : Graph.t; (* reliable links E *)
  gprime : Graph.t option Atomic.t; (* lazy E' = E ∪ gray *)
  gray_pk : int array; (* E' \ E as ascending u * n + v keys; index = edge id *)
  goff : int array; (* n + 1 CSR offsets into [gid] *)
  gid : int array; (* incident gray edge ids, descending id within each row *)
  pos : Rn_geom.Point.t array option; (* plane embedding, if geometric *)
  d : float; (* max distance of a G' edge (paper's constant d) *)
  gray_masks : Bitset.t array option Atomic.t;
      (* lazy: node -> bitset of incident gray edge ids, for the
         word-parallel delivery kernel; same build-once / atomic-publish
         discipline as [Graph]'s row cache *)
  adv_csr : adv_csr option Atomic.t;
      (* lazy: the adversary kernel's endpoint-split view of the gray
         set (see below); same build-once discipline *)
}

(* Endpoint-split CSR over the gray set, for the word-parallel adversary
   kernel.  Because gray ids follow ascending packed (u, v) order with
   u < v, the ids whose LOWER endpoint is u form one contiguous range —
   [loff] indexes those ranges directly into the id space, so "every
   gray edge of a broadcaster, seen from its lower endpoint" is a
   word-parallel bitset range fill.  The ids whose UPPER endpoint is v
   are scattered; [uoff]/[uid] hold them as a conventional CSR
   (ascending id within each row).  Every gray edge appears exactly once
   on each side. *)
and adv_csr = {
  loff : int array; (* n + 1: gray ids with lower endpoint u are [loff.(u), loff.(u+1)) *)
  uoff : int array; (* n + 1 CSR offsets into [uid] *)
  uid : int array; (* gray ids with that upper endpoint, ascending id *)
}

let g t = t.g
let n t = Graph.n t.g
let gray_count t = Array.length t.gray_pk
let positions t = t.pos
let d t = t.d

let gray_u t id = t.gray_pk.(id) / Graph.n t.g
let gray_v t id = t.gray_pk.(id) mod Graph.n t.g

(* The endpoint of gray edge [id] that is not [v]. *)
let gray_other t id v =
  let e = t.gray_pk.(id) in
  let nn = Graph.n t.g in
  (e / nn) + (e mod nn) - v

let gray_edges t =
  let nn = Graph.n t.g in
  Array.map (fun e -> (e / nn, e mod nn)) t.gray_pk

let gray_degree t v = t.goff.(v + 1) - t.goff.(v)

(* Visit [(neighbor, edge id)] pairs of [v]'s gray incidence, descending
   edge id — the historical row order, which adversary policies consume
   RNG draws in. *)
let iter_gray_adj f t v =
  let nn = Graph.n t.g in
  for i = t.goff.(v) to t.goff.(v + 1) - 1 do
    let id = Array.unsafe_get t.gid i in
    let e = Array.unsafe_get t.gray_pk id in
    f ((e / nn) + (e mod nn) - v) id
  done

(* Compat view of one row as a materialised tuple array (tests, detector
   construction); hot paths use {!iter_gray_adj}. *)
let gray_adj t v =
  let deg = gray_degree t v in
  let a = Array.make deg (0, 0) in
  let k = ref 0 in
  iter_gray_adj
    (fun w id ->
      a.(!k) <- (w, id);
      incr k)
    t v;
  a

(* Shared lock for the lazy caches; builds are rare (at most one g' and
   one mask cache per dual graph) and the double-check under the lock
   keeps concurrent first uses from building twice. *)
let lazy_lock = Mutex.create ()

let g' t =
  match Atomic.get t.gprime with
  | Some g' -> g'
  | None ->
    Mutex.protect lazy_lock (fun () ->
        match Atomic.get t.gprime with
        | Some g' -> g'
        | None ->
          let g' = Graph.union t.g (Graph.of_packed (Graph.n t.g) t.gray_pk) in
          Atomic.set t.gprime (Some g');
          g')

(* Build from already-canonical gray keys: strictly ascending packed
   [u * n + v] with [u < v], disjoint from [g]'s edges.  This is the
   allocation-lean path generators use; [make] funnels into it after
   canonicalising its tuple list. *)
let make_packed ?pos ?(d = 2.0) ~g ~gray_pk () =
  let n = Graph.n g in
  let ng = Array.length gray_pk in
  for i = 0 to ng - 1 do
    let e = gray_pk.(i) in
    let u = e / n and v = e mod n in
    if e < 0 || u >= v || v >= n then invalid_arg "Dual.make_packed: bad gray key";
    if i > 0 && gray_pk.(i - 1) >= e then
      invalid_arg "Dual.make_packed: keys not ascending";
    if Graph.mem_edge g u v then invalid_arg "Dual.make_packed: gray edge already reliable"
  done;
  (match pos with
  | Some p ->
    if Array.length p <> n then invalid_arg "Dual.make: positions arity";
    (* Model constraints: unit-distance pairs must be reliable links and no
       G' edge may exceed distance d.  The first only concerns pairs at
       distance <= 1, which a unit hash-grid enumerates in O(n) expected;
       the second is checked edge-by-edge over E and the gray set, so the
       lazy G' union is never forced here. *)
    let grid = Rn_geom.Grid.build ~cell:1.0 p in
    Rn_geom.Grid.iter_pairs
      (fun u v dist ->
        if dist <= 1.0 && not (Graph.mem_edge g u v) then
          invalid_arg "Dual.make: unit-distance pair missing from E")
      grid p;
    let check_len u v =
      if Rn_geom.Point.dist p.(u) p.(v) > d +. 1e-9 then
        invalid_arg "Dual.make: G' edge longer than d"
    in
    Graph.iter_edges check_len g;
    Array.iter (fun e -> check_len (e / n) (e mod n)) gray_pk
  | None -> ());
  (* Counting fill of the incidence CSR; iterating ids high-to-low
     reproduces the historical row order (descending edge id), which
     adversary policies may consume RNG draws in. *)
  let goff = Array.make (n + 1) 0 in
  Array.iter
    (fun e ->
      let u = e / n and v = e mod n in
      goff.(u + 1) <- goff.(u + 1) + 1;
      goff.(v + 1) <- goff.(v + 1) + 1)
    gray_pk;
  for v = 0 to n - 1 do
    goff.(v + 1) <- goff.(v + 1) + goff.(v)
  done;
  let gid = Array.make (2 * ng) 0 in
  let fill = Array.copy goff in
  for id = ng - 1 downto 0 do
    let e = gray_pk.(id) in
    let u = e / n and v = e mod n in
    gid.(fill.(u)) <- id;
    fill.(u) <- fill.(u) + 1;
    gid.(fill.(v)) <- id;
    fill.(v) <- fill.(v) + 1
  done;
  {
    g;
    gprime = Atomic.make None;
    gray_pk;
    goff;
    gid;
    pos;
    d;
    gray_masks = Atomic.make None;
    adv_csr = Atomic.make None;
  }

let make ?pos ?(d = 2.0) ~g ~gray () =
  let n = Graph.n g in
  (* Canonicalise/dedup as packed ints, like [Graph.of_edges]: the sort
     is the construction hot spot at experiment sizes, and ascending
     packed order is exactly the lexicographic order the dense gray-edge
     ids must follow (adversary policies draw per edge id). *)
  let gray_pk =
    let a =
      Array.of_list
        (List.map
           (fun (u, v) ->
             if u = v || u < 0 || v < 0 || u >= n || v >= n then
               invalid_arg "Dual.make: bad gray edge";
             if u < v then (u * n) + v else (v * n) + u)
           gray)
    in
    Array.sort compare a;
    let k = ref 0 in
    Array.iteri
      (fun i e ->
        if (i = 0 || a.(i - 1) <> e) && not (Graph.mem_edge g (e / n) (e mod n)) then begin
          a.(!k) <- e;
          incr k
        end)
      a;
    Array.sub a 0 !k
  in
  make_packed ?pos ~d ~g ~gray_pk ()

(* Gray incidence as bitsets over gray edge ids: [gray_mask t v] has bit
   [id] set iff gray edge [id] touches [v].  Lets the delivery kernel
   intersect a node's incident gray edges with the round's active set in
   O(gray/word) instead of walking the incidence row. *)
let gray_masks t =
  match Atomic.get t.gray_masks with
  | Some m -> m
  | None ->
    Mutex.protect lazy_lock (fun () ->
        match Atomic.get t.gray_masks with
        | Some m -> m
        | None ->
          let ng = Array.length t.gray_pk in
          let nn = Graph.n t.g in
          let m =
            Array.init nn (fun v ->
                let b = Bitset.create ng in
                for i = t.goff.(v) to t.goff.(v + 1) - 1 do
                  Bitset.add b t.gid.(i)
                done;
                b)
          in
          Atomic.set t.gray_masks (Some m);
          m)

let gray_mask t v = (gray_masks t).(v)

(* The adversary kernel's endpoint-split view; built on first use (scale
   runs under randomized policies never pay for it), O(n + gray) ints. *)
let adv_csr t =
  match Atomic.get t.adv_csr with
  | Some c -> c
  | None ->
    Mutex.protect lazy_lock (fun () ->
        match Atomic.get t.adv_csr with
        | Some c -> c
        | None ->
          let nn = Graph.n t.g in
          let ng = Array.length t.gray_pk in
          let loff = Array.make (nn + 1) 0 in
          let uoff = Array.make (nn + 1) 0 in
          Array.iter
            (fun e ->
              loff.((e / nn) + 1) <- loff.((e / nn) + 1) + 1;
              uoff.((e mod nn) + 1) <- uoff.((e mod nn) + 1) + 1)
            t.gray_pk;
          for v = 0 to nn - 1 do
            loff.(v + 1) <- loff.(v + 1) + loff.(v);
            uoff.(v + 1) <- uoff.(v + 1) + uoff.(v)
          done;
          let uid = Array.make ng 0 in
          let fill = Array.copy uoff in
          for id = 0 to ng - 1 do
            let v = t.gray_pk.(id) mod nn in
            uid.(fill.(v)) <- id;
            fill.(v) <- fill.(v) + 1
          done;
          let c = { loff; uoff; uid } in
          Atomic.set t.adv_csr (Some c);
          c)

let gray_lower_range t u =
  let c = adv_csr t in
  (c.loff.(u), c.loff.(u + 1))

let iter_gray_upper f t v =
  let c = adv_csr t in
  for i = c.uoff.(v) to c.uoff.(v + 1) - 1 do
    f (Array.unsafe_get c.uid i)
  done

(* A dual graph with no unreliable links: the classic radio model G = G'. *)
let classic g = make_packed ~g ~gray_pk:[||] ()

(* Move reliable edges into the gray set — the Section 8 "link degrades"
   event.  G' is unchanged; only the reliability of the named links drops.
   The geometric embedding is deliberately dropped: a demoted unit-distance
   edge no longer satisfies the *static* model constraint (dynamics is
   exactly the regime where that constraint is soft). *)
let demote_edges t edges =
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let demoted = List.sort_uniq compare (List.map canon edges) in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge t.g u v) then
        invalid_arg "Dual.demote_edges: not a reliable edge")
    demoted;
  let keep e = not (List.mem e demoted) in
  let g1 = Graph.of_edges (n t) (List.filter keep (Graph.edges t.g)) in
  make ~d:t.d ~g:g1 ~gray:(Array.to_list (gray_edges t) @ demoted) ()

let max_degree_g t = Graph.max_degree t.g
let max_degree_g' t = Graph.max_degree (g' t)

let pp ppf t =
  Fmt.pf ppf "dual(n=%d, |E|=%d, gray=%d)" (n t) (Graph.edge_count t.g)
    (gray_count t)
