(* The daemon's job queue and cell scheduler.

   Deliberately pure bookkeeping: no sockets, no clocks (time is passed
   in), no store access — so test_serve.ml can drive every transition
   deterministically.  The daemon layers IO on top.

   The unit of fan-out is the *cell claim*.  Every worker assigned to a
   job runs the job's experiments end to end; before computing a cell
   miss it asks [claim].  The first asker owns the cell ([Mine]); later
   askers are told [Theirs] and poll the shared store journal until the
   owner's record lands.  If the owner dies first (socket EOF or
   heartbeat timeout), [worker_dead] releases its claims, and the next
   asker becomes the owner — the store's failed-cell-as-resumable-miss
   rule does the rest, because a dead worker never appended its record.
   Cells are deterministic, so the rare double-compute (a worker
   declared dead that was merely slow) appends an identical record and
   is harmless.

   Telemetry rides on the same transitions.  Each job keeps an ordered
   progress-event log ([P.progress], per-job [pseq] from 1) appended on
   claim / first terminal report / requeue; since every worker replays
   every cell, terminal events (done / hit / failed) are deduplicated by
   key — the first reporter wins — so their count sums exactly to the
   number of distinct cells the sweep touched.  Claims carry the time
   they were taken so health reports can rank in-flight cells by age,
   and finished cells feed a per-job slowest-cells ranking plus a global
   mean compute time. *)

module P = Protocol

(* How many progress events a job retains (newest kept, count exact).
   A full-grid job emits a few events per cell, so this bound is far
   above any real sweep; it only guards a pathological requeue storm. *)
let max_progress_events = 200_000

(* Per-job slowest-cells ranking size (mirrors Harness.slowest_cells). *)
let slowest_k = 10

type job = {
  id : P.job_id;
  spec : P.spec;
  submitted : float;
  mutable state : P.job_state;
  claims : (string, int * float) Hashtbl.t;  (* key -> owning worker, since *)
  failed_keys : (string, string) Hashtbl.t;  (* key -> error, this job *)
  done_keys : (string, unit) Hashtbl.t;  (* keys with a terminal progress event *)
  outputs : (string, string) Hashtbl.t;  (* exp -> rendered table *)
  mutable failed_exps : string list;
  mutable cells_done : int;
  mutable hits : int;
  mutable misses : int;
  mutable slow : (string * int) list;  (* key, us; descending, <= slowest_k *)
  mutable pevents : P.progress list;  (* newest first *)
  mutable pcount : int;  (* total emitted = last pseq *)
}

type worker = {
  wid : int;
  pid : int;
  mutable alive : bool;
  mutable last_seen : float;
  mutable wjob : P.job_id option;
  mutable cells : int;  (* terminal cells this worker reported first *)
}

(* An on-demand trace request: re-run one finished cell under an Events
   sink.  Dispatched to any polling worker like a job assignment; if the
   owner dies before delivering, the task is released and re-offered. *)
type trace_task = {
  tid : int;
  texp : string;
  tscale : P.scale;
  tcoord : string;
  mutable towner : int option;
  mutable tresult : (string, string) result option;  (* Chrome JSON | error *)
}

type t = {
  jobs : (P.job_id, job) Hashtbl.t;
  workers : (int, worker) Hashtbl.t;
  traces : (int, trace_task) Hashtbl.t;
  mutable next_job : int;
  mutable next_worker : int;
  mutable next_trace : int;
  counters : (string, int ref) Hashtbl.t;
  mutable us_sum : int;  (* total compute time of finished cells *)
  mutable us_n : int;
}

let create () =
  {
    jobs = Hashtbl.create 16;
    workers = Hashtbl.create 16;
    traces = Hashtbl.create 8;
    next_job = 1;
    next_worker = 1;
    next_trace = 1;
    counters = Hashtbl.create 16;
    us_sum = 0;
    us_n = 0;
  }

let bump ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> List.sort compare

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let job t id = Hashtbl.find_opt t.jobs id

(* --- progress log --- *)

let pemit t j ~worker ~key ~phase ~us =
  j.pcount <- j.pcount + 1;
  j.pevents <-
    { P.pseq = j.pcount; pjob = j.id; pworker = worker; pkey = key; phase; pus = us }
    :: (if j.pcount > max_progress_events then
          (* drop the oldest event; [pcount] still tracks every emit *)
          match List.rev j.pevents with _ :: kept -> List.rev kept | [] -> []
        else j.pevents);
  bump t "progress.events"

(* Events with [pseq > from], oldest first; [from] is the count the
   watcher has already consumed (a streamed wait starts at 0 and sees
   the job's full history). *)
let progress_events t jid ~from =
  match job t jid with
  | None -> []
  | Some j -> List.filter (fun p -> p.P.pseq > from) (List.rev j.pevents)

let progress_count t jid = match job t jid with Some j -> j.pcount | None -> 0

let submit t spec ~now =
  let id = t.next_job in
  t.next_job <- id + 1;
  Hashtbl.replace t.jobs id
    {
      id;
      spec;
      submitted = now;
      state = P.Queued;
      claims = Hashtbl.create 64;
      failed_keys = Hashtbl.create 8;
      done_keys = Hashtbl.create 64;
      outputs = Hashtbl.create 8;
      failed_exps = [];
      cells_done = 0;
      hits = 0;
      misses = 0;
      slow = [];
      pevents = [];
      pcount = 0;
    };
  bump t "jobs.submitted";
  id

let add_worker t ~pid ~now =
  let wid = t.next_worker in
  t.next_worker <- wid + 1;
  Hashtbl.replace t.workers wid
    { wid; pid; alive = true; last_seen = now; wjob = None; cells = 0 };
  bump t "workers.seen";
  wid

let live_worker t wid =
  match Hashtbl.find_opt t.workers wid with Some w when w.alive -> Some w | _ -> None

let touch t wid ~now =
  match live_worker t wid with Some w -> w.last_seen <- now | None -> ()

let job_open j = match j.state with P.Queued | P.Running -> true | _ -> false
let has_open_jobs t = Hashtbl.fold (fun _ j acc -> acc || job_open j) t.jobs false

(* --- on-demand traces --- *)

let add_trace t ~exp ~scale ~coord =
  let tid = t.next_trace in
  t.next_trace <- tid + 1;
  Hashtbl.replace t.traces tid
    { tid; texp = exp; tscale = scale; tcoord = coord; towner = None; tresult = None };
  bump t "traces.requested";
  tid

let trace_result t ~tid =
  match Hashtbl.find_opt t.traces tid with Some task -> task.tresult | None -> None

let remove_trace t ~tid = Hashtbl.remove t.traces tid

let trace_done t ~worker ~tid ~data ~err ~now =
  touch t worker ~now;
  match Hashtbl.find_opt t.traces tid with
  | None -> ()
  | Some task ->
    if task.tresult = None then begin
      task.tresult <- Some (if err = "" then Ok data else Error err);
      bump t "traces.done"
    end

let pending_trace t =
  Hashtbl.fold
    (fun _ task acc ->
      if task.towner = None && task.tresult = None then
        match acc with Some (b : trace_task) when b.tid <= task.tid -> acc | _ -> Some task
      else acc)
    t.traces None

let has_pending_traces t = pending_trace t <> None

(* Work exists for workers: an open job, or an undispatched trace. *)
let has_work t = has_open_jobs t || has_pending_traces t

(* Oldest open job; every asking worker is fanned onto it.  Pending
   traces take priority — they are tiny (one warm cell) and a client is
   blocked on the reply. *)
let next_assignment t ~worker ~now =
  match live_worker t worker with
  | None -> `Quit
  | Some w -> (
    w.last_seen <- now;
    match pending_trace t with
    | Some task ->
      task.towner <- Some worker;
      `Trace (task.tid, task.texp, task.tscale, task.tcoord)
    | None -> (
      let best =
        Hashtbl.fold
          (fun _ j acc ->
            if not (job_open j) then acc
            else
              match acc with
              | Some b when b.id <= j.id -> acc
              | _ -> Some j)
          t.jobs None
      in
      match best with
      | None ->
        w.wjob <- None;
        `Wait
      | Some j ->
        if j.state = P.Queued then j.state <- P.Running;
        w.wjob <- Some j.id;
        `Assign (j.id, j.spec)))

let claim t ~worker ~job:jid ~key ~now =
  touch t worker ~now;
  match (job t jid, live_worker t worker) with
  | None, _ | _, None -> P.Job_cancelled
  | Some j, Some _ -> (
    match j.state with
    | P.Cancelled -> P.Job_cancelled
    | _ -> (
      match Hashtbl.find_opt j.failed_keys key with
      | Some msg -> P.Key_failed msg
      | None -> (
        match Hashtbl.find_opt j.claims key with
        | Some (owner, _) when owner = worker -> P.Mine
        | Some (owner, _) when live_worker t owner <> None ->
          bump t "cells.claim_theirs";
          P.Theirs
        | _ ->
          (* unclaimed, or orphaned by a dead owner (already counted as
             requeued when the owner was declared dead) *)
          Hashtbl.replace j.claims key (worker, now);
          bump t "cells.claimed";
          pemit t j ~worker ~key ~phase:P.P_claimed ~us:0;
          P.Mine)))

(* First terminal report per key wins; replays from the other workers of
   the fan-out are ignored, so terminal progress events sum exactly to
   the number of distinct cells. *)
let terminal t j ~worker ~key ~phase ~us ~counter =
  if not (Hashtbl.mem j.done_keys key) then begin
    Hashtbl.replace j.done_keys key ();
    bump t counter;
    (match live_worker t worker with Some w -> w.cells <- w.cells + 1 | None -> ());
    pemit t j ~worker ~key ~phase ~us;
    true
  end
  else false

let cell_done t ~worker ~job:jid ~key ~ok ~err ~us ~now =
  touch t worker ~now;
  match job t jid with
  | None -> ()
  | Some j ->
    Hashtbl.remove j.claims key;
    if ok then begin
      if terminal t j ~worker ~key ~phase:P.P_done ~us ~counter:"cells.done" then begin
        j.cells_done <- j.cells_done + 1;
        t.us_sum <- t.us_sum + us;
        t.us_n <- t.us_n + 1;
        j.slow <-
          (let merged =
             List.sort (fun (_, a) (_, b) -> compare (b : int) a) ((key, us) :: j.slow)
           in
           List.filteri (fun i _ -> i < slowest_k) merged)
      end
    end
    else begin
      Hashtbl.replace j.failed_keys key err;
      ignore (terminal t j ~worker ~key ~phase:P.P_failed ~us ~counter:"cells.failed")
    end

(* A worker replayed [key] from the shared store (hit provenance). *)
let cell_hit t ~worker ~job:jid ~key ~now =
  touch t worker ~now;
  match job t jid with
  | None -> ()
  | Some j -> ignore (terminal t j ~worker ~key ~phase:P.P_hit ~us:0 ~counter:"cells.hit")

let exp_done t ~job:jid ~exp ~output ~hits ~misses ~failed =
  match job t jid with
  | None -> ()
  | Some j ->
    if not (Hashtbl.mem j.outputs exp) then begin
      (* first finisher wins; tables are deterministic so later copies
         are byte-identical anyway *)
      Hashtbl.replace j.outputs exp output;
      j.hits <- j.hits + hits;
      j.misses <- j.misses + misses;
      if failed && not (List.mem exp j.failed_exps) then j.failed_exps <- exp :: j.failed_exps;
      bump t "exps.done"
    end

let job_done t ~worker ~job:jid ~now =
  touch t worker ~now;
  match job t jid with
  | None -> ()
  | Some j ->
    if job_open j then
      if j.failed_exps <> [] then begin
        j.state <- P.Failed;
        bump t "jobs.failed"
      end
      else if List.for_all (fun e -> Hashtbl.mem j.outputs e) j.spec.P.exps then begin
        j.state <- P.Done;
        bump t "jobs.done"
      end

let worker_dead t ~worker =
  match Hashtbl.find_opt t.workers worker with
  | None -> ()
  | Some w ->
    if w.alive then begin
      w.alive <- false;
      bump t "workers.lost";
      Hashtbl.iter
        (fun _ j ->
          let mine =
            Hashtbl.fold
              (fun k (o, _) acc -> if o = worker then k :: acc else acc)
              j.claims []
          in
          List.iter
            (fun k ->
              Hashtbl.remove j.claims k;
              bump t "cells.requeued";
              pemit t j ~worker ~key:k ~phase:P.P_requeued ~us:0)
            mine)
        t.jobs;
      (* release undelivered trace tasks so another worker retries *)
      Hashtbl.iter
        (fun _ task ->
          if task.towner = Some worker && task.tresult = None then task.towner <- None)
        t.traces
    end

(* Workers silent for longer than [timeout] are declared dead (their
   claims requeue); returns who was reaped.  The daemon's primary death
   signal is socket EOF — this is the backstop for *hung* workers. *)
let reap t ~now ~timeout =
  if timeout <= 0.0 then []
  else
    Hashtbl.fold
      (fun wid w acc ->
        if w.alive && now -. w.last_seen > timeout then begin
          worker_dead t ~worker:wid;
          wid :: acc
        end
        else acc)
      t.workers []

let cancel t ~job:jid =
  match job t jid with
  | None -> false
  | Some j ->
    if job_open j then begin
      j.state <- P.Cancelled;
      bump t "jobs.cancelled"
    end;
    true

let summary_of_job t j =
  let live_claims =
    Hashtbl.fold
      (fun _ (owner, _) acc -> if live_worker t owner <> None then acc + 1 else acc)
      j.claims 0
  in
  {
    P.job = j.id;
    state = j.state;
    spec = j.spec;
    exps_done = Hashtbl.length j.outputs;
    cells_done = j.cells_done;
    cells_failed = Hashtbl.length j.failed_keys;
    claims = live_claims;
    hits = j.hits;
    misses = j.misses;
  }

let status t jid =
  let jobs =
    match jid with
    | Some id -> ( match job t id with Some j -> [ summary_of_job t j ] | None -> [])
    | None ->
      Hashtbl.fold (fun _ j acc -> summary_of_job t j :: acc) t.jobs []
      |> List.sort (fun a b -> compare a.P.job b.P.job)
  in
  let workers =
    Hashtbl.fold
      (fun _ w acc -> { P.wid = w.wid; pid = w.pid; alive = w.alive; wjob = w.wjob } :: acc)
      t.workers []
    |> List.sort (fun a b -> compare a.P.wid b.P.wid)
  in
  (jobs, workers)

let finished t jid =
  match job t jid with
  | Some j -> not (job_open j)
  | None -> false

(* --- health report ingredients (the daemon adds journal/uptime) --- *)

let jobs_open t = Hashtbl.fold (fun _ j acc -> if job_open j then acc + 1 else acc) t.jobs 0
let jobs_total t = Hashtbl.length t.jobs
let mean_cell_us t = if t.us_n = 0 then 0 else t.us_sum / t.us_n

let workers_health t ~now =
  Hashtbl.fold
    (fun _ w acc ->
      {
        P.hwid = w.wid;
        hpid = w.pid;
        halive = w.alive;
        hage_ms = int_of_float ((now -. w.last_seen) *. 1000.0);
        hcells = w.cells;
        hjob = w.wjob;
      }
      :: acc)
    t.workers []
  |> List.sort (fun a b -> compare a.P.hwid b.P.hwid)

(* Live in-flight claims, oldest (slowest) first, capped at [k]. *)
let inflight_claims ?(k = 10) t ~now =
  let all =
    Hashtbl.fold
      (fun _ j acc ->
        if not (job_open j) then acc
        else
          Hashtbl.fold
            (fun key (owner, since) acc ->
              if live_worker t owner <> None then
                (key, owner, int_of_float ((now -. since) *. 1000.0)) :: acc
              else acc)
            j.claims acc)
      t.jobs []
  in
  List.filteri
    (fun i _ -> i < k)
    (List.sort (fun (_, _, a) (_, _, b) -> compare (b : int) a) all)

let inflight_count t =
  Hashtbl.fold
    (fun _ j acc ->
      if not (job_open j) then acc
      else
        Hashtbl.fold
          (fun _ (owner, _) acc -> if live_worker t owner <> None then acc + 1 else acc)
          j.claims acc)
    t.jobs 0

(* Per-job slowest computed cells (key, us), slowest first — the
   daemon's cross-worker counterpart of [Harness.slowest_cells]. *)
let slowest t jid = match job t jid with Some j -> j.slow | None -> []

(* Concatenated rendered tables in request order — the byte-identical
   image of what `rn_cli experiment <exps>` prints on stdout. *)
let results t jid =
  match job t jid with
  | None -> Error (Printf.sprintf "no such job %d" jid)
  | Some j -> (
    match j.state with
    | P.Cancelled -> Error (Printf.sprintf "job %d was cancelled" jid)
    | P.Queued | P.Running -> Error (Printf.sprintf "job %d is still running" jid)
    | P.Failed ->
      Error
        (Printf.sprintf "job %d failed (experiments: %s)" jid
           (String.concat ", " (List.sort compare j.failed_exps)))
    | P.Done -> (
      match
        List.map
          (fun e ->
            match Hashtbl.find_opt j.outputs e with Some o -> o | None -> raise Exit)
          j.spec.P.exps
      with
      | outs -> Ok (String.concat "" outs)
      | exception Exit -> Error (Printf.sprintf "job %d is missing outputs" jid)))
