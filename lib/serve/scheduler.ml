(* The daemon's job queue and cell scheduler.

   Deliberately pure bookkeeping: no sockets, no clocks (time is passed
   in), no store access — so test_serve.ml can drive every transition
   deterministically.  The daemon layers IO on top.

   The unit of fan-out is the *cell claim*.  Every worker assigned to a
   job runs the job's experiments end to end; before computing a cell
   miss it asks [claim].  The first asker owns the cell ([Mine]); later
   askers are told [Theirs] and poll the shared store journal until the
   owner's record lands.  If the owner dies first (socket EOF or
   heartbeat timeout), [worker_dead] releases its claims, and the next
   asker becomes the owner — the store's failed-cell-as-resumable-miss
   rule does the rest, because a dead worker never appended its record.
   Cells are deterministic, so the rare double-compute (a worker
   declared dead that was merely slow) appends an identical record and
   is harmless. *)

module P = Protocol

type job = {
  id : P.job_id;
  spec : P.spec;
  submitted : float;
  mutable state : P.job_state;
  claims : (string, int) Hashtbl.t;  (* key -> owning worker *)
  failed_keys : (string, string) Hashtbl.t;  (* key -> error, this job *)
  released : (string, unit) Hashtbl.t;  (* keys orphaned by dead workers *)
  outputs : (string, string) Hashtbl.t;  (* exp -> rendered table *)
  mutable failed_exps : string list;
  mutable cells_done : int;
  mutable hits : int;
  mutable misses : int;
}

type worker = {
  wid : int;
  pid : int;
  mutable alive : bool;
  mutable last_seen : float;
  mutable wjob : P.job_id option;
}

type t = {
  jobs : (P.job_id, job) Hashtbl.t;
  workers : (int, worker) Hashtbl.t;
  mutable next_job : int;
  mutable next_worker : int;
  counters : (string, int ref) Hashtbl.t;
}

let create () =
  {
    jobs = Hashtbl.create 16;
    workers = Hashtbl.create 16;
    next_job = 1;
    next_worker = 1;
    counters = Hashtbl.create 16;
  }

let bump ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> List.sort compare

let job t id = Hashtbl.find_opt t.jobs id

let submit t spec ~now =
  let id = t.next_job in
  t.next_job <- id + 1;
  Hashtbl.replace t.jobs id
    {
      id;
      spec;
      submitted = now;
      state = P.Queued;
      claims = Hashtbl.create 64;
      failed_keys = Hashtbl.create 8;
      released = Hashtbl.create 8;
      outputs = Hashtbl.create 8;
      failed_exps = [];
      cells_done = 0;
      hits = 0;
      misses = 0;
    };
  bump t "jobs.submitted";
  id

let add_worker t ~pid ~now =
  let wid = t.next_worker in
  t.next_worker <- wid + 1;
  Hashtbl.replace t.workers wid { wid; pid; alive = true; last_seen = now; wjob = None };
  bump t "workers.seen";
  wid

let live_worker t wid =
  match Hashtbl.find_opt t.workers wid with Some w when w.alive -> Some w | _ -> None

let touch t wid ~now =
  match live_worker t wid with Some w -> w.last_seen <- now | None -> ()

let job_open j = match j.state with P.Queued | P.Running -> true | _ -> false
let has_open_jobs t = Hashtbl.fold (fun _ j acc -> acc || job_open j) t.jobs false

(* Oldest open job; every asking worker is fanned onto it. *)
let next_assignment t ~worker ~now =
  match live_worker t worker with
  | None -> `Quit
  | Some w -> (
    w.last_seen <- now;
    let best =
      Hashtbl.fold
        (fun _ j acc ->
          if not (job_open j) then acc
          else
            match acc with
            | Some b when b.id <= j.id -> acc
            | _ -> Some j)
        t.jobs None
    in
    match best with
    | None ->
      w.wjob <- None;
      `Wait
    | Some j ->
      if j.state = P.Queued then j.state <- P.Running;
      w.wjob <- Some j.id;
      `Assign (j.id, j.spec))

let claim t ~worker ~job:jid ~key ~now =
  touch t worker ~now;
  match (job t jid, live_worker t worker) with
  | None, _ | _, None -> P.Job_cancelled
  | Some j, Some _ -> (
    match j.state with
    | P.Cancelled -> P.Job_cancelled
    | _ -> (
      match Hashtbl.find_opt j.failed_keys key with
      | Some msg -> P.Key_failed msg
      | None -> (
        match Hashtbl.find_opt j.claims key with
        | Some owner when owner = worker -> P.Mine
        | Some owner when live_worker t owner <> None -> P.Theirs
        | _ ->
          (* unclaimed, or orphaned by a dead owner *)
          if Hashtbl.mem j.released key then begin
            Hashtbl.remove j.released key;
            bump t "cells.requeued"
          end;
          Hashtbl.replace j.claims key worker;
          bump t "cells.claimed";
          P.Mine)))

let cell_done t ~worker ~job:jid ~key ~ok ~err ~now =
  touch t worker ~now;
  match job t jid with
  | None -> ()
  | Some j ->
    Hashtbl.remove j.claims key;
    Hashtbl.remove j.released key;
    if ok then begin
      j.cells_done <- j.cells_done + 1;
      bump t "cells.done"
    end
    else begin
      Hashtbl.replace j.failed_keys key err;
      bump t "cells.failed"
    end

let exp_done t ~job:jid ~exp ~output ~hits ~misses ~failed =
  match job t jid with
  | None -> ()
  | Some j ->
    if not (Hashtbl.mem j.outputs exp) then begin
      (* first finisher wins; tables are deterministic so later copies
         are byte-identical anyway *)
      Hashtbl.replace j.outputs exp output;
      j.hits <- j.hits + hits;
      j.misses <- j.misses + misses;
      if failed && not (List.mem exp j.failed_exps) then j.failed_exps <- exp :: j.failed_exps;
      bump t "exps.done"
    end

let job_done t ~worker ~job:jid ~now =
  touch t worker ~now;
  match job t jid with
  | None -> ()
  | Some j ->
    if job_open j then
      if j.failed_exps <> [] then begin
        j.state <- P.Failed;
        bump t "jobs.failed"
      end
      else if List.for_all (fun e -> Hashtbl.mem j.outputs e) j.spec.P.exps then begin
        j.state <- P.Done;
        bump t "jobs.done"
      end

let worker_dead t ~worker =
  match Hashtbl.find_opt t.workers worker with
  | None -> ()
  | Some w ->
    if w.alive then begin
      w.alive <- false;
      bump t "workers.lost";
      Hashtbl.iter
        (fun _ j ->
          let mine =
            Hashtbl.fold (fun k o acc -> if o = worker then k :: acc else acc) j.claims []
          in
          List.iter
            (fun k ->
              Hashtbl.remove j.claims k;
              Hashtbl.replace j.released k ())
            mine)
        t.jobs
    end

(* Workers silent for longer than [timeout] are declared dead (their
   claims requeue); returns who was reaped.  The daemon's primary death
   signal is socket EOF — this is the backstop for *hung* workers. *)
let reap t ~now ~timeout =
  if timeout <= 0.0 then []
  else
    Hashtbl.fold
      (fun wid w acc ->
        if w.alive && now -. w.last_seen > timeout then begin
          worker_dead t ~worker:wid;
          wid :: acc
        end
        else acc)
      t.workers []

let cancel t ~job:jid =
  match job t jid with
  | None -> false
  | Some j ->
    if job_open j then begin
      j.state <- P.Cancelled;
      bump t "jobs.cancelled"
    end;
    true

let summary_of_job t j =
  let live_claims =
    Hashtbl.fold
      (fun _ owner acc -> if live_worker t owner <> None then acc + 1 else acc)
      j.claims 0
  in
  {
    P.job = j.id;
    state = j.state;
    spec = j.spec;
    exps_done = Hashtbl.length j.outputs;
    cells_done = j.cells_done;
    cells_failed = Hashtbl.length j.failed_keys;
    claims = live_claims;
    hits = j.hits;
    misses = j.misses;
  }

let status t jid =
  let jobs =
    match jid with
    | Some id -> ( match job t id with Some j -> [ summary_of_job t j ] | None -> [])
    | None ->
      Hashtbl.fold (fun _ j acc -> summary_of_job t j :: acc) t.jobs []
      |> List.sort (fun a b -> compare a.P.job b.P.job)
  in
  let workers =
    Hashtbl.fold
      (fun _ w acc -> { P.wid = w.wid; pid = w.pid; alive = w.alive; wjob = w.wjob } :: acc)
      t.workers []
    |> List.sort (fun a b -> compare a.P.wid b.P.wid)
  in
  (jobs, workers)

let finished t jid =
  match job t jid with
  | Some j -> not (job_open j)
  | None -> false

(* Concatenated rendered tables in request order — the byte-identical
   image of what `rn_cli experiment <exps>` prints on stdout. *)
let results t jid =
  match job t jid with
  | None -> Error (Printf.sprintf "no such job %d" jid)
  | Some j -> (
    match j.state with
    | P.Cancelled -> Error (Printf.sprintf "job %d was cancelled" jid)
    | P.Queued | P.Running -> Error (Printf.sprintf "job %d is still running" jid)
    | P.Failed ->
      Error
        (Printf.sprintf "job %d failed (experiments: %s)" jid
           (String.concat ", " (List.sort compare j.failed_exps)))
    | P.Done -> (
      match
        List.map
          (fun e ->
            match Hashtbl.find_opt j.outputs e with Some o -> o | None -> raise Exit)
          j.spec.P.exps
      with
      | outs -> Ok (String.concat "" outs)
      | exception Exit -> Error (Printf.sprintf "job %d is missing outputs" jid)))
