(* Worker process main loop (`rn_cli work`).

   A worker connects to the daemon, introduces itself ([Hello]), then
   loops asking for work ([Next]).  For each assigned job it opens the
   shared store journal, installs a {!Harness.coordinator} whose claim
   and completion calls are RPCs back to the daemon, and runs the job's
   experiments end to end — exactly the `rn_cli experiment` code path,
   which is what makes daemon tables byte-identical to direct runs.
   Store hits replay locally (reported to the daemon as [Cell_hit]
   provenance); store misses are claimed through the daemon so exactly
   one live worker computes each cell while the others poll the journal
   for its append.

   Telemetry: a background domain pushes the worker's full metrics
   registry to the daemon every couple of seconds ([Metrics_push], which
   doubles as a heartbeat); [Trace_task] assignments re-run one finished
   cell warm against the shared store under an ambient Events sink and
   ship the Chrome-trace JSON back ([Trace_done]).

   The daemon going away (socket EOF on any RPC) is a normal way to die:
   the worker logs it and exits, leaving the journal intact — every cell
   it finished is already appended, so the next run resumes from them. *)

module P = Protocol
module Store = Rn_util.Store
module Metrics = Rn_util.Metrics

let log fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "[work %d] %s\n%!" (Unix.getpid ()) s)
    fmt

let scale_of = function P.Quick -> Rn_harness.Harness.Quick | P.Full -> Rn_harness.Harness.Full

(* Run one experiment under the installed store+coordinator; returns the
   rendered table and whether the sweep failed. *)
let run_exp ~id ~scale =
  match Rn_harness.All.find id with
  | None -> Error (Printf.sprintf "unknown experiment %s" id)
  | Some f -> (
    match f scale with
    | r -> Ok (Rn_harness.Harness.render r)
    | exception Rn_harness.Harness.Cell_failed { failed; total; _ } ->
      Error (Printf.sprintf "%d/%d cells failed" failed total))

let run_job io ~wid ~job ~dir ~(spec : P.spec) =
  let store = Store.open_ dir in
  Fun.protect
    ~finally:(fun () ->
      Rn_harness.Harness.clear_coordinator ();
      Rn_harness.Harness.clear_store ();
      Store.close store)
    (fun () ->
      (* Per-job counters: [write_last_run] below must describe this job
         alone, not the worker's lifetime — a warm re-submit served by a
         long-lived worker still reports misses=0. *)
      Rn_harness.Harness.reset_store_counters ();
      Rn_harness.Harness.reset_cell_times ();
      Rn_harness.Harness.set_store ~retry:spec.P.retry store;
      Rn_harness.Harness.set_jobs spec.P.jobs;
      Rn_harness.Harness.set_coordinator
        {
          Rn_harness.Harness.claim =
            (fun key ->
              match Client.rpc io (P.Claim { worker = wid; job; key }) with
              | P.Claim_r P.Mine -> Rn_harness.Harness.Claim_mine
              | P.Claim_r P.Theirs -> Rn_harness.Harness.Claim_theirs
              | P.Claim_r (P.Key_failed m) -> Rn_harness.Harness.Claim_failed m
              | P.Claim_r P.Job_cancelled -> Rn_harness.Harness.Claim_cancelled
              | _ -> failwith "serve: unexpected claim reply");
          complete =
            (fun key ~ok ~err ~us ->
              match Client.rpc io (P.Cell_done { worker = wid; job; key; ok; err; us }) with
              | P.Ok_unit -> ()
              | _ -> failwith "serve: unexpected celldone reply");
          hit =
            (fun key ->
              match Client.rpc io (P.Cell_hit { worker = wid; job; key }) with
              | P.Ok_unit -> ()
              | _ -> failwith "serve: unexpected cellhit reply");
          poll_interval = 0.02;
        };
      let cancelled = ref false in
      List.iter
        (fun id ->
          if not !cancelled then begin
            let h0, m0, _ = Rn_harness.Harness.store_counters () in
            match run_exp ~id ~scale:(scale_of spec.P.scale) with
            | Ok output ->
              let h1, m1, _ = Rn_harness.Harness.store_counters () in
              ignore
                (Client.rpc io
                   (P.Exp_done
                      {
                        worker = wid;
                        job;
                        exp = id;
                        output;
                        hits = h1 - h0;
                        misses = m1 - m0;
                        failed = false;
                      }))
            | Error msg ->
              log "job %d exp %s failed: %s" job id msg;
              let h1, m1, _ = Rn_harness.Harness.store_counters () in
              ignore
                (Client.rpc io
                   (P.Exp_done
                      {
                        worker = wid;
                        job;
                        exp = id;
                        output = "";
                        hits = h1 - h0;
                        misses = m1 - m0;
                        failed = true;
                      }))
            | exception Rn_harness.Harness.Sweep_cancelled ->
              log "job %d cancelled" job;
              cancelled := true
          end)
        spec.P.exps;
      let hits, misses, failures = Rn_harness.Harness.store_counters () in
      Store.write_last_run ~dir ~hits ~misses ~failures;
      (* The cross-worker slowest-cells ranking is written by the daemon
         from Cell_done timings — a per-worker file here would race. *)
      ignore (Client.rpc io (P.Job_done { worker = wid; job })))

(* Re-run one finished cell warm against the shared store with an
   ambient Events sink and ship the Chrome-trace JSON back.  [jobs] is
   forced to 1 so the sink captures exactly the target cell; the harness
   bypasses the cache for the target (recompute, no write-back), and
   determinism makes the re-run byte-faithful to the original compute. *)
let run_trace io ~wid ~tid ~dir ~exp ~scale ~coord =
  let store = Store.open_ dir in
  let data, err =
    Fun.protect
      ~finally:(fun () ->
        Rn_harness.Harness.clear_trace_target ();
        Rn_harness.Harness.clear_store ();
        Store.close store)
      (fun () ->
        Rn_harness.Harness.set_store store;
        Rn_harness.Harness.set_jobs 1;
        Rn_harness.Harness.set_trace_target ~exp ~coord ();
        (match run_exp ~id:exp ~scale:(scale_of scale) with
        | Ok _ | Error _ -> ());
        match Rn_harness.Harness.take_trace_events () with
        | Some evs -> (Rn_sim.Events.to_chrome evs, "")
        | None ->
          ("", Printf.sprintf "trace: no cell %s in %s @%s" coord exp (P.scale_name scale)))
  in
  log "trace %d: %s %s -> %d bytes%s" tid exp coord (String.length data)
    (if err = "" then "" else " (" ^ err ^ ")");
  ignore (Client.rpc io (P.Trace_done { worker = wid; tid; data; err }))

let run ?(idle_sleep = 0.2) ?(push_interval = 2.0) ~socket () =
  (* Workers keep the registry live so [Metrics_push] snapshots carry
     engine counters, not just the unconditional store counters.  This
     cannot change table bytes: metrics feed snapshots, never results. *)
  Metrics.set_enabled true;
  let io = Client.connect socket in
  let stop = Atomic.make false in
  let pusher = ref None in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (match !pusher with Some d -> ( try Domain.join d with _ -> ()) | None -> ());
      Client.close io)
    (fun () ->
      let wid =
        match Client.rpc io (P.Hello { pid = Unix.getpid () }) with
        | P.Worker_id w -> w
        | _ -> failwith "serve: unexpected hello reply"
      in
      log "connected as worker %d" wid;
      (* Periodic registry push into the daemon (also a heartbeat).
         [Client.rpc] holds the connection mutex, so sharing the socket
         with the main loop is safe; any error (daemon gone, connection
         closed) just skips the push — the main loop owns death. *)
      if push_interval > 0.0 then
        pusher :=
          Some
            (Domain.spawn (fun () ->
                 let rec nap left =
                   if left > 0.0 && not (Atomic.get stop) then begin
                     Unix.sleepf (min 0.05 left);
                     nap (left -. 0.05)
                   end
                 in
                 while not (Atomic.get stop) do
                   nap push_interval;
                   if not (Atomic.get stop) then
                     try
                       let snap =
                         Rn_util.Sexp.to_string
                           (Metrics.sexp_of_snapshot (Metrics.snapshot ()))
                       in
                       ignore (Client.rpc io (P.Metrics_push { worker = wid; snap }))
                     with _ -> ()
                 done));
      let rec loop () =
        match Client.rpc io (P.Next { worker = wid }) with
        | P.Quit_r -> log "daemon said quit"
        | P.Wait_r ->
          Unix.sleepf idle_sleep;
          loop ()
        | P.Assign { job; store; spec } ->
          log "assigned job %d (%s @%s)" job (String.concat "," spec.P.exps)
            (P.scale_name spec.P.scale);
          run_job io ~wid ~job ~dir:store ~spec;
          loop ()
        | P.Trace_task { tid; exp; scale; coord; store } ->
          run_trace io ~wid ~tid ~dir:store ~exp ~scale ~coord;
          loop ()
        | P.Err m -> failwith (Printf.sprintf "serve: daemon error: %s" m)
        | _ -> failwith "serve: unexpected next reply"
      in
      try loop () with Client.Disconnected -> log "daemon gone, exiting")
