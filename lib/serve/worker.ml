(* Worker process main loop (`rn_cli work`).

   A worker connects to the daemon, introduces itself ([Hello]), then
   loops asking for work ([Next]).  For each assigned job it opens the
   shared store journal, installs a {!Harness.coordinator} whose claim
   and completion calls are RPCs back to the daemon, and runs the job's
   experiments end to end — exactly the `rn_cli experiment` code path,
   which is what makes daemon tables byte-identical to direct runs.
   Store hits replay locally; store misses are claimed through the
   daemon so exactly one live worker computes each cell while the others
   poll the journal for its append.

   The daemon going away (socket EOF on any RPC) is a normal way to die:
   the worker logs it and exits, leaving the journal intact — every cell
   it finished is already appended, so the next run resumes from them. *)

module P = Protocol
module Store = Rn_util.Store

let log fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "[work %d] %s\n%!" (Unix.getpid ()) s)
    fmt

let scale_of = function P.Quick -> Rn_harness.Harness.Quick | P.Full -> Rn_harness.Harness.Full

(* Run one experiment under the installed store+coordinator; returns the
   rendered table and whether the sweep failed. *)
let run_exp ~id ~scale =
  match Rn_harness.All.find id with
  | None -> Error (Printf.sprintf "unknown experiment %s" id)
  | Some f -> (
    match f scale with
    | r -> Ok (Rn_harness.Harness.render r)
    | exception Rn_harness.Harness.Cell_failed { failed; total; _ } ->
      Error (Printf.sprintf "%d/%d cells failed" failed total))

let run_job io ~wid ~job ~dir ~(spec : P.spec) =
  let store = Store.open_ dir in
  Fun.protect
    ~finally:(fun () ->
      Rn_harness.Harness.clear_coordinator ();
      Rn_harness.Harness.clear_store ();
      Store.close store)
    (fun () ->
      (* Per-job counters: [write_last_run] below must describe this job
         alone, not the worker's lifetime — a warm re-submit served by a
         long-lived worker still reports misses=0. *)
      Rn_harness.Harness.reset_store_counters ();
      Rn_harness.Harness.reset_cell_times ();
      Rn_harness.Harness.set_store ~retry:spec.P.retry store;
      Rn_harness.Harness.set_jobs spec.P.jobs;
      Rn_harness.Harness.set_coordinator
        {
          Rn_harness.Harness.claim =
            (fun key ->
              match Client.rpc io (P.Claim { worker = wid; job; key }) with
              | P.Claim_r P.Mine -> Rn_harness.Harness.Claim_mine
              | P.Claim_r P.Theirs -> Rn_harness.Harness.Claim_theirs
              | P.Claim_r (P.Key_failed m) -> Rn_harness.Harness.Claim_failed m
              | P.Claim_r P.Job_cancelled -> Rn_harness.Harness.Claim_cancelled
              | _ -> failwith "serve: unexpected claim reply");
          complete =
            (fun key ~ok ~err ->
              match Client.rpc io (P.Cell_done { worker = wid; job; key; ok; err }) with
              | P.Ok_unit -> ()
              | _ -> failwith "serve: unexpected celldone reply");
          poll_interval = 0.02;
        };
      let cancelled = ref false in
      List.iter
        (fun id ->
          if not !cancelled then begin
            let h0, m0, _ = Rn_harness.Harness.store_counters () in
            match run_exp ~id ~scale:(scale_of spec.P.scale) with
            | Ok output ->
              let h1, m1, _ = Rn_harness.Harness.store_counters () in
              ignore
                (Client.rpc io
                   (P.Exp_done
                      {
                        worker = wid;
                        job;
                        exp = id;
                        output;
                        hits = h1 - h0;
                        misses = m1 - m0;
                        failed = false;
                      }))
            | Error msg ->
              log "job %d exp %s failed: %s" job id msg;
              let h1, m1, _ = Rn_harness.Harness.store_counters () in
              ignore
                (Client.rpc io
                   (P.Exp_done
                      {
                        worker = wid;
                        job;
                        exp = id;
                        output = "";
                        hits = h1 - h0;
                        misses = m1 - m0;
                        failed = true;
                      }))
            | exception Rn_harness.Harness.Sweep_cancelled ->
              log "job %d cancelled" job;
              cancelled := true
          end)
        spec.P.exps;
      let hits, misses, failures = Rn_harness.Harness.store_counters () in
      Store.write_last_run ~dir ~hits ~misses ~failures;
      (match Rn_harness.Harness.slowest_cells ~k:10 () with
      | [] -> ()
      | slow ->
        let path = Filename.concat dir "slowest.txt" in
        let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
        let oc = open_out tmp in
        List.iter (fun (label, t) -> Printf.fprintf oc "%.3f %s\n" t label) slow;
        close_out oc;
        Sys.rename tmp path);
      ignore (Client.rpc io (P.Job_done { worker = wid; job })))

let run ?(idle_sleep = 0.2) ~socket () =
  let io = Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Client.close io)
    (fun () ->
      let wid =
        match Client.rpc io (P.Hello { pid = Unix.getpid () }) with
        | P.Worker_id w -> w
        | _ -> failwith "serve: unexpected hello reply"
      in
      log "connected as worker %d" wid;
      let rec loop () =
        match Client.rpc io (P.Next { worker = wid }) with
        | P.Quit_r -> log "daemon said quit"
        | P.Wait_r ->
          Unix.sleepf idle_sleep;
          loop ()
        | P.Assign { job; store; spec } ->
          log "assigned job %d (%s @%s)" job (String.concat "," spec.P.exps)
            (P.scale_name spec.P.scale);
          run_job io ~wid ~job ~dir:store ~spec;
          loop ()
        | P.Err m -> failwith (Printf.sprintf "serve: daemon error: %s" m)
        | _ -> failwith "serve: unexpected next reply"
      in
      try loop () with Client.Disconnected -> log "daemon gone, exiting")
