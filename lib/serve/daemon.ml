(* The sweep daemon (`rn_cli serve`).

   A single-threaded [Unix.select] loop over a Unix-domain listening
   socket: clients and workers speak the same line-delimited sexp
   protocol on the same socket, and every request is answered in
   arrival order (except [wait], whose reply is deferred until the
   awaited job reaches a terminal state, and [trace], deferred until a
   worker ships the re-run's events back).

   The daemon owns no sweep state beyond the in-memory {!Scheduler}: the
   durable state is the store journal the workers share, so a daemon
   restart loses only the queue — re-submitting after a restart resumes
   from the journal's completed cells (that is the crash-recovery story
   scripts/serve_smoke.sh exercises end to end).

   Worker management: the daemon spawns [workers] copies of its own
   executable running `rn_cli work` whenever work exists (open jobs or
   pending trace tasks) and fewer than [workers] spawned children are
   alive, and reaps exited children each tick — so a SIGKILLed worker is
   replaced within a tick, and its orphaned cell claims are released the
   moment its socket reports EOF (with the scheduler's heartbeat reap as
   the backstop for hung-but-connected workers).

   Telemetry: a [wait … progress] waiter is streamed every progress
   event of its job (one [Progress_r] frame per line) before the final
   [Ok_unit]; [metricsreg] merges the daemon's own registry, the
   scheduler counters and the latest per-worker pushed snapshots with
   the commutative [Metrics.merge]; [health] reports heartbeat ages,
   queue depths and journal growth.  A small stats sidecar
   (daemon-stats.sexp in the store dir) mirrors the fault-recovery
   counters for `rn_cli store stats --json`. *)

module P = Protocol
module S = Scheduler
module Metrics = Rn_util.Metrics
module Timing = Rn_util.Timing

(* Monotonic log timestamps: seconds since daemon start, immune to
   wall-clock jumps (satellite of ISSUE 9).  [Timing.now] is
   CLOCK_MONOTONIC via the C stub. *)
let log_t0 = ref 0.0

let log fmt =
  Printf.ksprintf
    (fun s -> Printf.eprintf "[serve +%010.3f] %s\n%!" (Timing.now () -. !log_t0) s)
    fmt

(* Point stderr (ours and every spawned worker's, which inherit it) at
   [path], rotating any previous log to [path].1 first — a restarted
   daemon starts a fresh log instead of appending unboundedly. *)
let setup_log path =
  (try if (Unix.stat path).Unix.st_size > 0 then Sys.rename path (path ^ ".1")
   with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* bytes received, not yet a complete line *)
  mutable worker : int option;  (* set by Hello *)
}

(* A deferred [wait] reply; with [wprogress] the connection is streamed
   the job's progress events ([wsent] = highest pseq already sent) and
   the final [Ok_unit] closes the stream. *)
type waiter = { wjob : P.job_id; wconn : conn; wprogress : bool; mutable wsent : int }

type t = {
  sched : S.t;
  listen_fd : Unix.file_descr;
  socket : string;
  store_dir : string;
  workers_target : int;
  heartbeat : float;
  spawn : bool;  (* false in in-process tests: no child processes *)
  started : float;  (* Timing.now at startup, for uptime *)
  mutable journal_bytes0 : int;  (* journal size at startup *)
  mutable conns : conn list;
  mutable waiters : waiter list;
  mutable trace_waiters : (int * conn) list;  (* tid -> blocked client *)
  worker_snaps : (int, Metrics.snapshot) Hashtbl.t;  (* latest push per worker *)
  slowest_written : (P.job_id, unit) Hashtbl.t;
  mutable last_stats_write : float;
  mutable children : int list;  (* live spawned worker pids *)
  mutable stopping : bool;
}

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_size t =
  match Unix.stat (Rn_util.Store.journal_path t.store_dir) with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

(* --- connection plumbing --- *)

let drop_conn t c =
  if List.memq c t.conns then begin
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    t.waiters <- List.filter (fun w -> w.wconn != c) t.waiters;
    t.trace_waiters <- List.filter (fun (_, c') -> c' != c) t.trace_waiters;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    match c.worker with
    | Some w ->
      log "worker %d disconnected, releasing its claims" w;
      S.worker_dead t.sched ~worker:w
    | None -> ()
  end

let send t c resp =
  match Client.write_all c.fd (P.encode_response resp) with
  | () -> ()
  | exception (Client.Disconnected | Unix.Unix_error _) -> drop_conn t c

(* --- worker process management --- *)

let spawn_worker t =
  let exe = Sys.executable_name in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "work"; "--socket"; t.socket |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  t.children <- pid :: t.children;
  log "spawned worker pid %d (%d/%d)" pid (List.length t.children) t.workers_target

let reap_children t =
  let rec loop () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status ->
      if List.mem pid t.children then begin
        t.children <- List.filter (fun p -> p <> pid) t.children;
        let how =
          match status with
          | Unix.WEXITED c -> Printf.sprintf "exited %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
        in
        log "worker pid %d %s" pid how
      end;
      loop ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let ensure_workers t =
  if t.spawn && (not t.stopping) && S.has_work t.sched then
    for _ = List.length t.children + 1 to t.workers_target do
      spawn_worker t
    done

(* --- telemetry assembly --- *)

(* Daemon registry (+) scheduler counters (+) latest worker pushes —
   [Metrics.merge] is commutative and associative, so the fold order is
   irrelevant (test_serve checks this under qcheck). *)
let merged_metrics t =
  let base =
    Metrics.merge (Metrics.snapshot ()) (Metrics.of_counters (S.counters t.sched))
  in
  Hashtbl.fold (fun _ snap acc -> Metrics.merge acc snap) t.worker_snaps base

let health t ~now =
  let jbytes = journal_size t in
  {
    P.uptime_ms = int_of_float ((Timing.now () -. t.started) *. 1000.0);
    jobs_open = S.jobs_open t.sched;
    jobs_total = S.jobs_total t.sched;
    waiters = List.length t.waiters + List.length t.trace_waiters;
    inflight = S.inflight_count t.sched;
    requeued = S.counter_value t.sched "cells.requeued";
    claim_waits = S.counter_value t.sched "cells.claim_theirs";
    done_cells = S.counter_value t.sched "cells.done";
    hit_cells = S.counter_value t.sched "cells.hit";
    failed_cells = S.counter_value t.sched "cells.failed";
    mean_cell_us = S.mean_cell_us t.sched;
    journal_bytes = jbytes;
    journal_grown = max 0 (jbytes - t.journal_bytes0);
    hworkers = S.workers_health t.sched ~now;
    slow_claims = S.inflight_claims t.sched ~now;
  }

(* "exp|scale|vN|env|coord" -> "exp/scale/coord", the label format of
   the direct runner's slowest.txt. *)
let label_of_key kid =
  match String.split_on_char '|' kid with
  | [ exp; scale; _; _; coord ] -> Printf.sprintf "%s/%s/%s" exp scale coord
  | _ -> kid

(* On job completion, write the cross-worker slowest-cells ranking the
   direct runner would have produced (satellite: nightly daemon sweeps
   get slowest.txt too).  Idempotent per job; cold cells only — a fully
   warm job has no computed cells and leaves the previous file alone. *)
let write_slowest t jid =
  if not (Hashtbl.mem t.slowest_written jid) then begin
    Hashtbl.replace t.slowest_written jid ();
    match S.slowest t.sched jid with
    | [] -> ()
    | slow ->
      let path = Filename.concat t.store_dir "slowest.txt" in
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      (try
         let oc = open_out tmp in
         List.iter
           (fun (kid, us) ->
             Printf.fprintf oc "%.3f %s\n" (float_of_int us /. 1e6) (label_of_key kid))
           slow;
         close_out oc;
         Sys.rename tmp path;
         log "job %d slowest cells -> %s" jid path
       with Sys_error _ -> ())
  end

(* Fault-recovery stats sidecar for `rn_cli store stats --json`
   (satellite: requeue/claim-wait/heartbeat-age without daemon.log
   parsing).  Throttled; rewritten atomically. *)
let write_stats_sidecar t ~now =
  if now -. t.last_stats_write >= 1.0 then begin
    t.last_stats_write <- now;
    let heartbeat_age_ms =
      List.fold_left
        (fun acc (h : P.worker_health) -> if h.P.halive then max acc h.P.hage_ms else acc)
        0
        (S.workers_health t.sched ~now)
    in
    let alive =
      List.length (List.filter (fun (h : P.worker_health) -> h.P.halive) (S.workers_health t.sched ~now))
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "(daemon-stats (counters";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " (%s %d)" k v))
      (S.counters t.sched);
    Buffer.add_string buf
      (Printf.sprintf ") (heartbeat-age-ms %d) (workers-alive %d) (inflight %d))\n"
         heartbeat_age_ms alive (S.inflight_count t.sched));
    let path = Filename.concat t.store_dir "daemon-stats.sexp" in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    try
      let oc = open_out tmp in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Sys.rename tmp path
    with Sys_error _ -> ()
  end

(* --- request handling --- *)

let validate_spec (spec : P.spec) =
  if spec.P.exps = [] then Error "submit: no experiments"
  else if spec.P.jobs < 1 then Error "submit: jobs must be >= 1"
  else if spec.P.retry < 0 then Error "submit: retry must be >= 0"
  else
    match List.find_opt (fun e -> Rn_harness.All.find e = None) spec.P.exps with
    | Some e -> Error (Printf.sprintf "submit: unknown experiment %s" e)
    | None -> Ok ()

let handle_request t conn req ~now =
  match req with
  | P.Submit spec -> (
    match validate_spec spec with
    | Error m -> `Reply (P.Err m)
    | Ok () ->
      let id = S.submit t.sched spec ~now in
      log "job %d submitted: %s @%s (jobs=%d retry=%d)" id
        (String.concat "," spec.P.exps)
        (P.scale_name spec.P.scale) spec.P.jobs spec.P.retry;
      `Reply (P.Job_id id))
  | P.Status jid ->
    let jobs, workers = S.status t.sched jid in
    `Reply (P.Status_r { jobs; workers })
  | P.Wait { job = j; progress } ->
    if S.job t.sched j = None then `Reply (P.Err (Printf.sprintf "no such job %d" j))
    else begin
      (* Even an already-finished job gets its full progress history
         streamed before the Ok_unit — flush_waiters handles both. *)
      t.waiters <- { wjob = j; wconn = conn; wprogress = progress; wsent = 0 } :: t.waiters;
      `Defer
    end
  | P.Results j -> (
    match S.results t.sched j with
    | Ok out -> `Reply (P.Results_r out)
    | Error m -> `Reply (P.Err m))
  | P.Cancel j ->
    if S.cancel t.sched ~job:j then begin
      log "job %d cancelled" j;
      `Reply P.Ok_unit
    end
    else `Reply (P.Err (Printf.sprintf "no such job %d" j))
  | P.Metrics -> `Reply (P.Metrics_r (S.counters t.sched))
  | P.Metrics_reg ->
    `Reply
      (P.Metrics_reg_r (Rn_util.Sexp.to_string (Metrics.sexp_of_snapshot (merged_metrics t))))
  | P.Health -> `Reply (P.Health_r (health t ~now))
  | P.Trace { exp; scale; coord } ->
    if Rn_harness.All.find exp = None then
      `Reply (P.Err (Printf.sprintf "trace: unknown experiment %s" exp))
    else begin
      let tid = S.add_trace t.sched ~exp ~scale ~coord in
      log "trace %d requested: %s @%s %s" tid exp (P.scale_name scale) coord;
      t.trace_waiters <- (tid, conn) :: t.trace_waiters;
      `Defer
    end
  | P.Shutdown ->
    log "shutdown requested";
    `Stop P.Ok_unit
  | P.Hello { pid } ->
    let wid = S.add_worker t.sched ~pid ~now in
    conn.worker <- Some wid;
    log "worker %d connected (pid %d)" wid pid;
    `Reply (P.Worker_id wid)
  | P.Next { worker } -> (
    match S.next_assignment t.sched ~worker ~now with
    | `Assign (job, spec) -> `Reply (P.Assign { job; store = t.store_dir; spec })
    | `Trace (tid, exp, scale, coord) ->
      `Reply (P.Trace_task { tid; exp; scale; coord; store = t.store_dir })
    | `Wait -> `Reply (if t.stopping then P.Quit_r else P.Wait_r)
    | `Quit -> `Reply P.Quit_r)
  | P.Claim { worker; job; key } -> `Reply (P.Claim_r (S.claim t.sched ~worker ~job ~key ~now))
  | P.Cell_done { worker; job; key; ok; err; us } ->
    S.cell_done t.sched ~worker ~job ~key ~ok ~err ~us ~now;
    `Reply P.Ok_unit
  | P.Cell_hit { worker; job; key } ->
    S.cell_hit t.sched ~worker ~job ~key ~now;
    `Reply P.Ok_unit
  | P.Exp_done { worker; job; exp; output; hits; misses; failed } ->
    S.exp_done t.sched ~job ~exp ~output ~hits ~misses ~failed;
    ignore worker;
    log "job %d exp %s %s (hits %d, misses %d)" job exp
      (if failed then "FAILED" else "done")
      hits misses;
    `Reply P.Ok_unit
  | P.Job_done { worker; job } ->
    S.job_done t.sched ~worker ~job ~now;
    (match S.job t.sched job with
    | Some j when S.finished t.sched job ->
      log "job %d finished: %s" job (P.state_name j.S.state);
      write_slowest t job
    | _ -> ());
    `Reply P.Ok_unit
  | P.Heartbeat { worker } ->
    S.touch t.sched worker ~now;
    `Reply P.Ok_unit
  | P.Metrics_push { worker; snap } ->
    (match Metrics.snapshot_of_sexp (Rn_util.Sexp.parse_string snap) with
    | s ->
      Hashtbl.replace t.worker_snaps worker s;
      S.touch t.sched worker ~now
    | exception _ -> log "worker %d pushed a malformed metrics snapshot" worker);
    `Reply P.Ok_unit
  | P.Trace_done { worker; tid; data; err } ->
    S.trace_done t.sched ~worker ~tid ~data ~err ~now;
    log "trace %d delivered by worker %d (%d bytes%s)" tid worker (String.length data)
      (if err = "" then "" else ", error");
    `Reply P.Ok_unit

(* Stream new progress events to progress-waiters, then complete any
   waiter whose job reached a terminal state.  [send] may drop a
   connection (mutating [t.waiters]), so the surviving list is
   re-filtered against live connections at the end. *)
let flush_waiters t =
  let keep =
    List.filter
      (fun w ->
        if not (List.memq w.wconn t.conns) then false
        else begin
          if w.wprogress then begin
            let evs = S.progress_events t.sched w.wjob ~from:w.wsent in
            List.iter
              (fun p ->
                w.wsent <- max w.wsent p.P.pseq;
                send t w.wconn (P.Progress_r p))
              evs
          end;
          if S.finished t.sched w.wjob && List.memq w.wconn t.conns then begin
            send t w.wconn P.Ok_unit;
            false
          end
          else true
        end)
      t.waiters
  in
  t.waiters <- List.filter (fun w -> List.memq w.wconn t.conns) keep

let flush_trace_waiters t =
  let ready, pending =
    List.partition (fun (tid, _) -> S.trace_result t.sched ~tid <> None) t.trace_waiters
  in
  t.trace_waiters <- pending;
  List.iter
    (fun (tid, c) ->
      (match S.trace_result t.sched ~tid with
      | Some (Ok data) -> send t c (P.Trace_r data)
      | Some (Error msg) -> send t c (P.Err msg)
      | None -> ());
      S.remove_trace t.sched ~tid)
    ready

let feed_conn t conn data ~now =
  conn.inbuf <- conn.inbuf ^ data;
  let rec lines () =
    match String.index_opt conn.inbuf '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub conn.inbuf 0 (i + 1) in
      conn.inbuf <- String.sub conn.inbuf (i + 1) (String.length conn.inbuf - i - 1);
      (match P.decode_request line with
      | Error e -> send t conn (P.Err e)
      | Ok req -> (
        match handle_request t conn req ~now with
        | `Reply resp -> send t conn resp
        | `Defer -> ()
        | `Stop resp ->
          send t conn resp;
          t.stopping <- true));
      if List.memq conn t.conns then lines ()
  in
  lines ()

let tick t =
  let now = Unix.gettimeofday () in
  if t.spawn then reap_children t;
  List.iter (fun w -> log "worker %d silent for %.0fs, reaped" w t.heartbeat)
    (S.reap t.sched ~now ~timeout:t.heartbeat);
  ensure_workers t;
  flush_waiters t;
  flush_trace_waiters t;
  write_stats_sidecar t ~now;
  let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  match Unix.select fds [] [] 0.25 with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
    let now = Unix.gettimeofday () in
    List.iter
      (fun fd ->
        if fd = t.listen_fd then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | cfd, _ -> t.conns <- { fd = cfd; inbuf = ""; worker = None } :: t.conns
          | exception Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | None -> ()
          | Some conn -> (
            let b = Bytes.create 65536 in
            match Unix.read fd b 0 (Bytes.length b) with
            | 0 -> drop_conn t conn
            | n -> feed_conn t conn (Bytes.sub_string b 0 n) ~now
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ -> drop_conn t conn))
      readable;
    flush_waiters t;
    flush_trace_waiters t

(* Refuse to start over a live daemon; silently replace a stale socket
   file left by a crashed or SIGKILLed one. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then failwith (Printf.sprintf "serve: a daemon is already listening on %s" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end

let run ?(workers = 1) ?(heartbeat = 60.0) ?(spawn = true) ?log_file ~socket ~store_dir () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  mkdirs (Filename.dirname socket);
  mkdirs store_dir;
  claim_socket socket;
  (match log_file with Some path when path <> "-" -> setup_log path | _ -> ());
  log_t0 := Timing.now ();
  (* The daemon runs no cells itself, but enabling the registry means a
     [metricsreg] exposition of an idle daemon is still well-formed. *)
  Metrics.set_enabled true;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let t =
    {
      sched = S.create ();
      listen_fd;
      socket;
      store_dir;
      workers_target = max 0 workers;
      heartbeat;
      spawn;
      started = Timing.now ();
      journal_bytes0 = 0;
      conns = [];
      waiters = [];
      trace_waiters = [];
      worker_snaps = Hashtbl.create 8;
      slowest_written = Hashtbl.create 8;
      last_stats_write = 0.0;
      children = [];
      stopping = false;
    }
  in
  t.journal_bytes0 <- journal_size t;
  let term = ref false in
  let old_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  log "listening on %s (store %s, workers %d, heartbeat %.0fs)" socket store_dir
    t.workers_target heartbeat;
  Fun.protect
    ~finally:(fun () ->
      (match old_term with Some h -> Sys.set_signal Sys.sigterm h | None -> ());
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
      t.conns <- [];
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      t.last_stats_write <- 0.0;
      write_stats_sidecar t ~now:(Unix.gettimeofday ());
      log "stopped")
    (fun () ->
      while not (t.stopping || !term) do
        tick t
      done)
