(* The sweep daemon (`rn_cli serve`).

   A single-threaded [Unix.select] loop over a Unix-domain listening
   socket: clients and workers speak the same line-delimited sexp
   protocol on the same socket, and every request is answered in
   arrival order (except [wait], whose reply is deferred until the
   awaited job reaches a terminal state).

   The daemon owns no sweep state beyond the in-memory {!Scheduler}: the
   durable state is the store journal the workers share, so a daemon
   restart loses only the queue — re-submitting after a restart resumes
   from the journal's completed cells (that is the crash-recovery story
   scripts/serve_smoke.sh exercises end to end).

   Worker management: the daemon spawns [workers] copies of its own
   executable running `rn_cli work` whenever open jobs exist and fewer
   than [workers] spawned children are alive, and reaps exited children
   each tick — so a SIGKILLed worker is replaced within a tick, and its
   orphaned cell claims are released the moment its socket reports EOF
   (with the scheduler's heartbeat reap as the backstop for hung-but-
   connected workers). *)

module P = Protocol
module S = Scheduler

let log fmt =
  Printf.ksprintf
    (fun s ->
      let t = Unix.localtime (Unix.gettimeofday ()) in
      Printf.eprintf "[serve %02d:%02d:%02d] %s\n%!" t.Unix.tm_hour t.Unix.tm_min
        t.Unix.tm_sec s)
    fmt

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* bytes received, not yet a complete line *)
  mutable worker : int option;  (* set by Hello *)
}

type t = {
  sched : S.t;
  listen_fd : Unix.file_descr;
  socket : string;
  store_dir : string;
  workers_target : int;
  heartbeat : float;
  spawn : bool;  (* false in in-process tests: no child processes *)
  mutable conns : conn list;
  mutable waiters : (P.job_id * conn) list;
  mutable children : int list;  (* live spawned worker pids *)
  mutable stopping : bool;
}

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- connection plumbing --- *)

let drop_conn t c =
  if List.memq c t.conns then begin
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    t.waiters <- List.filter (fun (_, c') -> c' != c) t.waiters;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    match c.worker with
    | Some w ->
      log "worker %d disconnected, releasing its claims" w;
      S.worker_dead t.sched ~worker:w
    | None -> ()
  end

let send t c resp =
  match Client.write_all c.fd (P.encode_response resp) with
  | () -> ()
  | exception (Client.Disconnected | Unix.Unix_error _) -> drop_conn t c

(* --- worker process management --- *)

let spawn_worker t =
  let exe = Sys.executable_name in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "work"; "--socket"; t.socket |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  t.children <- pid :: t.children;
  log "spawned worker pid %d (%d/%d)" pid (List.length t.children) t.workers_target

let reap_children t =
  let rec loop () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status ->
      if List.mem pid t.children then begin
        t.children <- List.filter (fun p -> p <> pid) t.children;
        let how =
          match status with
          | Unix.WEXITED c -> Printf.sprintf "exited %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
        in
        log "worker pid %d %s" pid how
      end;
      loop ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let ensure_workers t =
  if t.spawn && (not t.stopping) && S.has_open_jobs t.sched then
    for _ = List.length t.children + 1 to t.workers_target do
      spawn_worker t
    done

(* --- request handling --- *)

let validate_spec (spec : P.spec) =
  if spec.P.exps = [] then Error "submit: no experiments"
  else if spec.P.jobs < 1 then Error "submit: jobs must be >= 1"
  else if spec.P.retry < 0 then Error "submit: retry must be >= 0"
  else
    match List.find_opt (fun e -> Rn_harness.All.find e = None) spec.P.exps with
    | Some e -> Error (Printf.sprintf "submit: unknown experiment %s" e)
    | None -> Ok ()

let handle_request t conn req ~now =
  match req with
  | P.Submit spec -> (
    match validate_spec spec with
    | Error m -> `Reply (P.Err m)
    | Ok () ->
      let id = S.submit t.sched spec ~now in
      log "job %d submitted: %s @%s (jobs=%d retry=%d)" id
        (String.concat "," spec.P.exps)
        (P.scale_name spec.P.scale) spec.P.jobs spec.P.retry;
      `Reply (P.Job_id id))
  | P.Status jid ->
    let jobs, workers = S.status t.sched jid in
    `Reply (P.Status_r { jobs; workers })
  | P.Wait j ->
    if S.job t.sched j = None then `Reply (P.Err (Printf.sprintf "no such job %d" j))
    else if S.finished t.sched j then `Reply P.Ok_unit
    else begin
      t.waiters <- (j, conn) :: t.waiters;
      `Defer
    end
  | P.Results j -> (
    match S.results t.sched j with
    | Ok out -> `Reply (P.Results_r out)
    | Error m -> `Reply (P.Err m))
  | P.Cancel j ->
    if S.cancel t.sched ~job:j then begin
      log "job %d cancelled" j;
      `Reply P.Ok_unit
    end
    else `Reply (P.Err (Printf.sprintf "no such job %d" j))
  | P.Metrics -> `Reply (P.Metrics_r (S.counters t.sched))
  | P.Shutdown ->
    log "shutdown requested";
    `Stop P.Ok_unit
  | P.Hello { pid } ->
    let wid = S.add_worker t.sched ~pid ~now in
    conn.worker <- Some wid;
    log "worker %d connected (pid %d)" wid pid;
    `Reply (P.Worker_id wid)
  | P.Next { worker } -> (
    match S.next_assignment t.sched ~worker ~now with
    | `Assign (job, spec) -> `Reply (P.Assign { job; store = t.store_dir; spec })
    | `Wait -> `Reply (if t.stopping then P.Quit_r else P.Wait_r)
    | `Quit -> `Reply P.Quit_r)
  | P.Claim { worker; job; key } -> `Reply (P.Claim_r (S.claim t.sched ~worker ~job ~key ~now))
  | P.Cell_done { worker; job; key; ok; err } ->
    S.cell_done t.sched ~worker ~job ~key ~ok ~err ~now;
    `Reply P.Ok_unit
  | P.Exp_done { worker; job; exp; output; hits; misses; failed } ->
    S.exp_done t.sched ~job ~exp ~output ~hits ~misses ~failed;
    ignore worker;
    log "job %d exp %s %s (hits %d, misses %d)" job exp
      (if failed then "FAILED" else "done")
      hits misses;
    `Reply P.Ok_unit
  | P.Job_done { worker; job } ->
    S.job_done t.sched ~worker ~job ~now;
    (match S.job t.sched job with
    | Some j when S.finished t.sched job ->
      log "job %d finished: %s" job (P.state_name j.S.state)
    | _ -> ());
    `Reply P.Ok_unit
  | P.Heartbeat { worker } ->
    S.touch t.sched worker ~now;
    `Reply P.Ok_unit

let flush_waiters t =
  let ready, pending = List.partition (fun (j, _) -> S.finished t.sched j) t.waiters in
  t.waiters <- pending;
  List.iter (fun (_, c) -> send t c P.Ok_unit) ready

let feed_conn t conn data ~now =
  conn.inbuf <- conn.inbuf ^ data;
  let rec lines () =
    match String.index_opt conn.inbuf '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub conn.inbuf 0 (i + 1) in
      conn.inbuf <- String.sub conn.inbuf (i + 1) (String.length conn.inbuf - i - 1);
      (match P.decode_request line with
      | Error e -> send t conn (P.Err e)
      | Ok req -> (
        match handle_request t conn req ~now with
        | `Reply resp -> send t conn resp
        | `Defer -> ()
        | `Stop resp ->
          send t conn resp;
          t.stopping <- true));
      if List.memq conn t.conns then lines ()
  in
  lines ()

let tick t =
  let now = Unix.gettimeofday () in
  if t.spawn then reap_children t;
  List.iter (fun w -> log "worker %d silent for %.0fs, reaped" w t.heartbeat)
    (S.reap t.sched ~now ~timeout:t.heartbeat);
  ensure_workers t;
  flush_waiters t;
  let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  match Unix.select fds [] [] 0.25 with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
    let now = Unix.gettimeofday () in
    List.iter
      (fun fd ->
        if fd = t.listen_fd then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | cfd, _ -> t.conns <- { fd = cfd; inbuf = ""; worker = None } :: t.conns
          | exception Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | None -> ()
          | Some conn -> (
            let b = Bytes.create 65536 in
            match Unix.read fd b 0 (Bytes.length b) with
            | 0 -> drop_conn t conn
            | n -> feed_conn t conn (Bytes.sub_string b 0 n) ~now
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ -> drop_conn t conn))
      readable;
    flush_waiters t

(* Refuse to start over a live daemon; silently replace a stale socket
   file left by a crashed or SIGKILLed one. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then failwith (Printf.sprintf "serve: a daemon is already listening on %s" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end

let run ?(workers = 1) ?(heartbeat = 60.0) ?(spawn = true) ~socket ~store_dir () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  mkdirs (Filename.dirname socket);
  mkdirs store_dir;
  claim_socket socket;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let t =
    {
      sched = S.create ();
      listen_fd;
      socket;
      store_dir;
      workers_target = max 0 workers;
      heartbeat;
      spawn;
      conns = [];
      waiters = [];
      children = [];
      stopping = false;
    }
  in
  let term = ref false in
  let old_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  log "listening on %s (store %s, workers %d, heartbeat %.0fs)" socket store_dir
    t.workers_target heartbeat;
  Fun.protect
    ~finally:(fun () ->
      (match old_term with Some h -> Sys.set_signal Sys.sigterm h | None -> ());
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
      t.conns <- [];
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      log "stopped")
    (fun () ->
      while not (t.stopping || !term) do
        tick t
      done)
