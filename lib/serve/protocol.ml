(* Line-delimited sexp protocol between the sweep daemon, its workers,
   and thin clients.  One message per line; every free-form string
   (table output, error text, store paths) travels hex-encoded so a
   frame can never contain a newline or break the sexp reader, and a
   truncated or garbage frame decodes to [Error _], never an exception.
   The codec is total in both directions: [decode_* (encode_* m) = Ok m]
   (test_serve.ml round-trips it under qcheck). *)

module Sexp = Rn_util.Sexp

type job_id = int

type scale = Quick | Full

(* What a client asks the daemon to sweep; the daemon hands the same
   spec to every worker it fans the job out to. *)
type spec = {
  exps : string list;  (* experiment ids, registry order preserved *)
  scale : scale;
  jobs : int;  (* cell domains per worker *)
  retry : int;  (* per-cell retry budget, as rn_cli experiment --retry *)
}

(* One live-progress event on a streamed [wait].  [pseq] is per-job and
   strictly increasing from 1, so a client can assert monotonicity and a
   reconnecting watcher knows where it left off.  [pus] is the cell's
   compute wall time in microseconds (0 for phases with no compute). *)
type progress_phase = P_claimed | P_done | P_hit | P_failed | P_requeued

type progress = {
  pseq : int;
  pjob : job_id;
  pworker : int;
  pkey : string;  (* the cell's Store.key_id *)
  phase : progress_phase;
  pus : int;
}

type request =
  (* client -> daemon *)
  | Submit of spec
  | Status of job_id option
  | Wait of { job : job_id; progress : bool }
  | Results of job_id
  | Cancel of job_id
  | Metrics
  | Metrics_reg  (* full registry exposition: daemon (+) all worker pushes *)
  | Health
  | Trace of { exp : string; scale : scale; coord : string }
  | Shutdown
  (* worker -> daemon *)
  | Hello of { pid : int }
  | Next of { worker : int }
  | Claim of { worker : int; job : job_id; key : string }
  | Cell_done of {
      worker : int;
      job : job_id;
      key : string;
      ok : bool;
      err : string;
      us : int;  (* compute wall time, microseconds *)
    }
  | Cell_hit of { worker : int; job : job_id; key : string }
  | Exp_done of {
      worker : int;
      job : job_id;
      exp : string;
      output : string;
      hits : int;
      misses : int;
      failed : bool;
    }
  | Job_done of { worker : int; job : job_id }
  | Heartbeat of { worker : int }
  | Metrics_push of { worker : int; snap : string }  (* sexp-encoded Metrics.snapshot *)
  | Trace_done of { worker : int; tid : int; data : string; err : string }

type job_state = Queued | Running | Done | Failed | Cancelled

type job_summary = {
  job : job_id;
  state : job_state;
  spec : spec;
  exps_done : int;
  cells_done : int;
  cells_failed : int;
  claims : int;  (* cells currently claimed by live workers *)
  hits : int;
  misses : int;
}

type worker_info = { wid : int; pid : int; alive : bool; wjob : job_id option }

(* Daemon health report: fault-recovery counters, journal growth and
   per-worker heartbeat ages.  Everything is an int (ages in ms, times
   in us) so the codec never touches floats. *)
type worker_health = {
  hwid : int;
  hpid : int;
  halive : bool;
  hage_ms : int;  (* since last heartbeat/request *)
  hcells : int;  (* terminal cells first reported by this worker *)
  hjob : job_id option;
}

type health = {
  uptime_ms : int;
  jobs_open : int;
  jobs_total : int;
  waiters : int;
  inflight : int;  (* cells currently claimed by live workers *)
  requeued : int;
  claim_waits : int;  (* Theirs replies served (cross-worker waits) *)
  done_cells : int;
  hit_cells : int;
  failed_cells : int;
  mean_cell_us : int;  (* mean compute time of finished cells *)
  journal_bytes : int;
  journal_grown : int;  (* bytes appended since the daemon started *)
  hworkers : worker_health list;
  slow_claims : (string * int * int) list;  (* key, wid, age_ms; oldest first *)
}

type claim_reply =
  | Mine  (* compute it, then send Cell_done *)
  | Theirs  (* a live worker owns it: poll the store, re-ask *)
  | Key_failed of string  (* its owner computed it and it failed *)
  | Job_cancelled

type response =
  | Ok_unit
  | Job_id of job_id
  | Status_r of { jobs : job_summary list; workers : worker_info list }
  | Results_r of string  (* concatenated rendered tables, request order *)
  | Metrics_r of (string * int) list
  | Metrics_reg_r of string  (* sexp-encoded merged Metrics.snapshot *)
  | Health_r of health
  | Progress_r of progress  (* streamed before Ok_unit on a progress wait *)
  | Trace_r of string  (* Chrome-trace JSON *)
  | Worker_id of int
  | Assign of { job : job_id; store : string; spec : spec }
  | Trace_task of { tid : int; exp : string; scale : scale; coord : string; store : string }
  | Wait_r  (* no job available yet: sleep and ask again *)
  | Quit_r
  | Claim_r of claim_reply
  | Err of string

(* --- hex framing for free-form strings (same shape as the store's
   payload encoding: 'x' prefix keeps the atom non-empty) --- *)

let to_hex s =
  let b = Buffer.create ((2 * String.length s) + 1) in
  Buffer.add_char b 'x';
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n = 0 || s.[0] <> 'x' || (n - 1) mod 2 <> 0 then None
  else begin
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let m = (n - 1) / 2 in
    let b = Bytes.create m in
    let ok = ref true in
    for i = 0 to m - 1 do
      match (digit s.[(2 * i) + 1], digit s.[(2 * i) + 2]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
  end

(* Identifiers (experiment ids, store keys) travel as bare atoms; any
   character that would break the sexp framing is mapped to '_' —
   matching the store's own key sanitisation, so a [Store.key_id] always
   round-trips unchanged. *)
let atomize s =
  if s = "" then "_"
  else
    String.map
      (fun c ->
        match c with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> '_'
        | c -> c)
      s

(* --- encoding --- *)

let scale_name = function Quick -> "quick" | Full -> "full"
let bool_name = function true -> "true" | false -> "false"

let spec_fields { exps; scale; jobs; retry } =
  Printf.sprintf "(exps%s) (scale %s) (jobs %d) (retry %d)"
    (String.concat "" (List.map (fun e -> " " ^ atomize e) exps))
    (scale_name scale) jobs retry

let encode_request r =
  (match r with
  | Submit spec -> Printf.sprintf "(submit %s)" (spec_fields spec)
  | Status None -> "(status)"
  | Status (Some j) -> Printf.sprintf "(status %d)" j
  | Wait { job; progress } ->
    if progress then Printf.sprintf "(wait %d progress)" job else Printf.sprintf "(wait %d)" job
  | Results j -> Printf.sprintf "(results %d)" j
  | Cancel j -> Printf.sprintf "(cancel %d)" j
  | Metrics -> "(metrics)"
  | Metrics_reg -> "(metricsreg)"
  | Health -> "(health)"
  | Trace { exp; scale; coord } ->
    Printf.sprintf "(trace (exp %s) (scale %s) (coord %s))" (atomize exp) (scale_name scale)
      (atomize coord)
  | Shutdown -> "(shutdown)"
  | Hello { pid } -> Printf.sprintf "(hello (pid %d))" pid
  | Next { worker } -> Printf.sprintf "(next (worker %d))" worker
  | Claim { worker; job; key } ->
    Printf.sprintf "(claim (worker %d) (job %d) (key %s))" worker job (atomize key)
  | Cell_done { worker; job; key; ok; err; us } ->
    Printf.sprintf "(celldone (worker %d) (job %d) (key %s) (ok %s) (err %s) (us %d))" worker
      job (atomize key) (bool_name ok) (to_hex err) us
  | Cell_hit { worker; job; key } ->
    Printf.sprintf "(cellhit (worker %d) (job %d) (key %s))" worker job (atomize key)
  | Exp_done { worker; job; exp; output; hits; misses; failed } ->
    Printf.sprintf "(expdone (worker %d) (job %d) (exp %s) (output %s) (hits %d) (misses %d) (failed %s))"
      worker job (atomize exp) (to_hex output) hits misses (bool_name failed)
  | Job_done { worker; job } -> Printf.sprintf "(jobdone (worker %d) (job %d))" worker job
  | Heartbeat { worker } -> Printf.sprintf "(heartbeat (worker %d))" worker
  | Metrics_push { worker; snap } ->
    Printf.sprintf "(metricspush (worker %d) (snap %s))" worker (to_hex snap)
  | Trace_done { worker; tid; data; err } ->
    Printf.sprintf "(tracedone (worker %d) (tid %d) (data %s) (err %s))" worker tid
      (to_hex data) (to_hex err))
  ^ "\n"

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let summary_sexp s =
  Printf.sprintf
    "(job (id %d) (state %s) %s (exps-done %d) (cells %d) (cells-failed %d) (claims %d) (hits %d) (misses %d))"
    s.job (state_name s.state) (spec_fields s.spec) s.exps_done s.cells_done s.cells_failed
    s.claims s.hits s.misses

let worker_sexp w =
  Printf.sprintf "(worker (wid %d) (pid %d) (alive %s)%s)" w.wid w.pid (bool_name w.alive)
    (match w.wjob with None -> "" | Some j -> Printf.sprintf " (job %d)" j)

let phase_name = function
  | P_claimed -> "claimed"
  | P_done -> "done"
  | P_hit -> "hit"
  | P_failed -> "failed"
  | P_requeued -> "requeued"

let worker_health_sexp h =
  Printf.sprintf "(w (wid %d) (pid %d) (alive %s) (age-ms %d) (cells %d)%s)" h.hwid h.hpid
    (bool_name h.halive) h.hage_ms h.hcells
    (match h.hjob with None -> "" | Some j -> Printf.sprintf " (job %d)" j)

let health_sexp h =
  Printf.sprintf
    "(health (uptime-ms %d) (jobs-open %d) (jobs-total %d) (waiters %d) (inflight %d) (requeued %d) (claim-waits %d) (done-cells %d) (hit-cells %d) (failed-cells %d) (mean-cell-us %d) (journal-bytes %d) (journal-grown %d) (hworkers%s) (slow%s))"
    h.uptime_ms h.jobs_open h.jobs_total h.waiters h.inflight h.requeued h.claim_waits
    h.done_cells h.hit_cells h.failed_cells h.mean_cell_us h.journal_bytes h.journal_grown
    (String.concat "" (List.map (fun w -> " " ^ worker_health_sexp w) h.hworkers))
    (String.concat ""
       (List.map
          (fun (key, wid, age) ->
            Printf.sprintf " (s (key %s) (wid %d) (age-ms %d))" (atomize key) wid age)
          h.slow_claims))

let encode_response r =
  (match r with
  | Ok_unit -> "(ok)"
  | Job_id j -> Printf.sprintf "(ok (job %d))" j
  | Status_r { jobs; workers } ->
    Printf.sprintf "(ok (status (jobs%s) (workers%s)))"
      (String.concat "" (List.map (fun j -> " " ^ summary_sexp j) jobs))
      (String.concat "" (List.map (fun w -> " " ^ worker_sexp w) workers))
  | Results_r out -> Printf.sprintf "(ok (results %s))" (to_hex out)
  | Metrics_r kvs ->
    Printf.sprintf "(ok (metrics%s))"
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf " (m %s %d)" (atomize k) v) kvs))
  | Metrics_reg_r snap -> Printf.sprintf "(ok (metricsreg %s))" (to_hex snap)
  | Health_r h -> Printf.sprintf "(ok %s)" (health_sexp h)
  | Progress_r p ->
    Printf.sprintf "(ok (progress (seq %d) (job %d) (worker %d) (key %s) (phase %s) (us %d)))"
      p.pseq p.pjob p.pworker (atomize p.pkey) (phase_name p.phase) p.pus
  | Trace_r data -> Printf.sprintf "(ok (trace %s))" (to_hex data)
  | Worker_id w -> Printf.sprintf "(ok (worker %d))" w
  | Assign { job; store; spec } ->
    Printf.sprintf "(ok (assign (job %d) (store %s) %s))" job (to_hex store)
      (spec_fields spec)
  | Trace_task { tid; exp; scale; coord; store } ->
    Printf.sprintf "(ok (tracetask (tid %d) (exp %s) (scale %s) (coord %s) (store %s)))" tid
      (atomize exp) (scale_name scale) (atomize coord) (to_hex store)
  | Wait_r -> "(ok wait)"
  | Quit_r -> "(ok quit)"
  | Claim_r Mine -> "(ok mine)"
  | Claim_r Theirs -> "(ok theirs)"
  | Claim_r (Key_failed msg) -> Printf.sprintf "(ok (keyfailed %s))" (to_hex msg)
  | Claim_r Job_cancelled -> "(ok cancelled)"
  | Err msg -> Printf.sprintf "(err %s)" (to_hex msg))
  ^ "\n"

(* --- decoding --- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_line line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
  in
  match Sexp.parse_string line with
  | sx -> Ok sx
  | exception Sexp.Parse_error { pos; message } ->
    Error (Printf.sprintf "bad frame at %d: %s" pos message)
  | exception _ -> Error "bad frame"

let field name sx =
  match Sexp.assoc name sx with
  | Some [ Sexp.Atom a ] -> Ok a
  | _ -> Error (Printf.sprintf "missing field %s" name)

let int_field name sx =
  let* a = field name sx in
  match int_of_string_opt a with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field %s: not an int" name)

let bool_field name sx =
  let* a = field name sx in
  match a with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "field %s: not a bool" name)

let hex_field name sx =
  let* a = field name sx in
  match of_hex a with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %s: bad hex" name)

let scale_of_name = function
  | "quick" -> Ok Quick
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "bad scale %s" s)

let scale_field sx =
  let* a = field "scale" sx in
  scale_of_name a

let spec_of_sexp sx =
  let* exps =
    match Sexp.assoc "exps" sx with
    | Some items ->
      let rec atoms = function
        | [] -> Ok []
        | Sexp.Atom a :: rest ->
          let* tl = atoms rest in
          Ok (a :: tl)
        | Sexp.List _ :: _ -> Error "exps: expected atoms"
      in
      atoms items
    | None -> Error "missing field exps"
  in
  let* scale = scale_field sx in
  let* jobs = int_field "jobs" sx in
  let* retry = int_field "retry" sx in
  Ok { exps; scale; jobs; retry }

let decode_request line =
  let* sx = parse_line line in
  match sx with
  | Sexp.List (Sexp.Atom head :: args) -> (
    match (head, args) with
    | "submit", _ ->
      let* spec = spec_of_sexp sx in
      Ok (Submit spec)
    | "status", [] -> Ok (Status None)
    | "status", [ Sexp.Atom a ] -> (
      match int_of_string_opt a with
      | Some j -> Ok (Status (Some j))
      | None -> Error "status: bad job id")
    | "wait", [ Sexp.Atom a ] | "wait", [ Sexp.Atom a; Sexp.Atom "progress" ] -> (
      match int_of_string_opt a with
      | Some job -> Ok (Wait { job; progress = List.length args = 2 })
      | None -> Error "wait: bad job id")
    | "results", [ Sexp.Atom a ] | "cancel", [ Sexp.Atom a ] -> (
      match int_of_string_opt a with
      | Some j -> Ok (if head = "results" then Results j else Cancel j)
      | None -> Error (head ^ ": bad job id"))
    | "metrics", [] -> Ok Metrics
    | "metricsreg", [] -> Ok Metrics_reg
    | "health", [] -> Ok Health
    | "trace", _ ->
      let* exp = field "exp" sx in
      let* scale = scale_field sx in
      let* coord = field "coord" sx in
      Ok (Trace { exp; scale; coord })
    | "shutdown", [] -> Ok Shutdown
    | "hello", _ ->
      let* pid = int_field "pid" sx in
      Ok (Hello { pid })
    | "next", _ ->
      let* worker = int_field "worker" sx in
      Ok (Next { worker })
    | "claim", _ ->
      let* worker = int_field "worker" sx in
      let* job = int_field "job" sx in
      let* key = field "key" sx in
      Ok (Claim { worker; job; key })
    | "celldone", _ ->
      let* worker = int_field "worker" sx in
      let* job = int_field "job" sx in
      let* key = field "key" sx in
      let* ok = bool_field "ok" sx in
      let* err = hex_field "err" sx in
      let* us = int_field "us" sx in
      Ok (Cell_done { worker; job; key; ok; err; us })
    | "cellhit", _ ->
      let* worker = int_field "worker" sx in
      let* job = int_field "job" sx in
      let* key = field "key" sx in
      Ok (Cell_hit { worker; job; key })
    | "expdone", _ ->
      let* worker = int_field "worker" sx in
      let* job = int_field "job" sx in
      let* exp = field "exp" sx in
      let* output = hex_field "output" sx in
      let* hits = int_field "hits" sx in
      let* misses = int_field "misses" sx in
      let* failed = bool_field "failed" sx in
      Ok (Exp_done { worker; job; exp; output; hits; misses; failed })
    | "jobdone", _ ->
      let* worker = int_field "worker" sx in
      let* job = int_field "job" sx in
      Ok (Job_done { worker; job })
    | "heartbeat", _ ->
      let* worker = int_field "worker" sx in
      Ok (Heartbeat { worker })
    | "metricspush", _ ->
      let* worker = int_field "worker" sx in
      let* snap = hex_field "snap" sx in
      Ok (Metrics_push { worker; snap })
    | "tracedone", _ ->
      let* worker = int_field "worker" sx in
      let* tid = int_field "tid" sx in
      let* data = hex_field "data" sx in
      let* err = hex_field "err" sx in
      Ok (Trace_done { worker; tid; data; err })
    | _ -> Error (Printf.sprintf "unknown request %s" head))
  | _ -> Error "expected a request list"

let state_of_name = function
  | "queued" -> Ok Queued
  | "running" -> Ok Running
  | "done" -> Ok Done
  | "failed" -> Ok Failed
  | "cancelled" -> Ok Cancelled
  | s -> Error (Printf.sprintf "bad job state %s" s)

let summary_of_sexp sx =
  let* job = int_field "id" sx in
  let* state_a = field "state" sx in
  let* state = state_of_name state_a in
  let* spec = spec_of_sexp sx in
  let* exps_done = int_field "exps-done" sx in
  let* cells_done = int_field "cells" sx in
  let* cells_failed = int_field "cells-failed" sx in
  let* claims = int_field "claims" sx in
  let* hits = int_field "hits" sx in
  let* misses = int_field "misses" sx in
  Ok { job; state; spec; exps_done; cells_done; cells_failed; claims; hits; misses }

let worker_of_sexp sx =
  let* wid = int_field "wid" sx in
  let* pid = int_field "pid" sx in
  let* alive = bool_field "alive" sx in
  let wjob = match Sexp.assoc "job" sx with Some [ v ] -> Sexp.as_int v | _ -> None in
  Ok { wid; pid; alive; wjob }

let phase_of_name = function
  | "claimed" -> Ok P_claimed
  | "done" -> Ok P_done
  | "hit" -> Ok P_hit
  | "failed" -> Ok P_failed
  | "requeued" -> Ok P_requeued
  | s -> Error (Printf.sprintf "bad progress phase %s" s)

let worker_health_of_sexp sx =
  let* hwid = int_field "wid" sx in
  let* hpid = int_field "pid" sx in
  let* halive = bool_field "alive" sx in
  let* hage_ms = int_field "age-ms" sx in
  let* hcells = int_field "cells" sx in
  let hjob = match Sexp.assoc "job" sx with Some [ v ] -> Sexp.as_int v | _ -> None in
  Ok { hwid; hpid; halive; hage_ms; hcells; hjob }

let slow_claim_of_sexp sx =
  let* key = field "key" sx in
  let* wid = int_field "wid" sx in
  let* age = int_field "age-ms" sx in
  Ok (key, wid, age)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* tl = map_result f rest in
    Ok (v :: tl)

let decode_response line =
  let* sx = parse_line line in
  match sx with
  | Sexp.List [ Sexp.Atom "ok" ] -> Ok Ok_unit
  | Sexp.List [ Sexp.Atom "ok"; Sexp.Atom "wait" ] -> Ok Wait_r
  | Sexp.List [ Sexp.Atom "ok"; Sexp.Atom "quit" ] -> Ok Quit_r
  | Sexp.List [ Sexp.Atom "ok"; Sexp.Atom "mine" ] -> Ok (Claim_r Mine)
  | Sexp.List [ Sexp.Atom "ok"; Sexp.Atom "theirs" ] -> Ok (Claim_r Theirs)
  | Sexp.List [ Sexp.Atom "ok"; Sexp.Atom "cancelled" ] -> Ok (Claim_r Job_cancelled)
  | Sexp.List [ Sexp.Atom "ok"; (Sexp.List (Sexp.Atom head :: args) as body) ] -> (
    match (head, args) with
    | "job", [ Sexp.Atom a ] -> (
      match int_of_string_opt a with Some j -> Ok (Job_id j) | None -> Error "bad job id")
    | "worker", [ Sexp.Atom a ] -> (
      match int_of_string_opt a with
      | Some w -> Ok (Worker_id w)
      | None -> Error "bad worker id")
    | "results", [ Sexp.Atom a ] -> (
      match of_hex a with Some s -> Ok (Results_r s) | None -> Error "results: bad hex")
    | "keyfailed", [ Sexp.Atom a ] -> (
      match of_hex a with
      | Some s -> Ok (Claim_r (Key_failed s))
      | None -> Error "keyfailed: bad hex")
    | "assign", _ ->
      let* job = int_field "job" body in
      let* store = hex_field "store" body in
      let* spec = spec_of_sexp body in
      Ok (Assign { job; store; spec })
    | "metricsreg", [ Sexp.Atom a ] -> (
      match of_hex a with
      | Some s -> Ok (Metrics_reg_r s)
      | None -> Error "metricsreg: bad hex")
    | "trace", [ Sexp.Atom a ] -> (
      match of_hex a with Some s -> Ok (Trace_r s) | None -> Error "trace: bad hex")
    | "progress", _ ->
      let* pseq = int_field "seq" body in
      let* pjob = int_field "job" body in
      let* pworker = int_field "worker" body in
      let* pkey = field "key" body in
      let* phase_a = field "phase" body in
      let* phase = phase_of_name phase_a in
      let* pus = int_field "us" body in
      Ok (Progress_r { pseq; pjob; pworker; pkey; phase; pus })
    | "tracetask", _ ->
      let* tid = int_field "tid" body in
      let* exp = field "exp" body in
      let* scale = scale_field body in
      let* coord = field "coord" body in
      let* store = hex_field "store" body in
      Ok (Trace_task { tid; exp; scale; coord; store })
    | "health", _ ->
      let* uptime_ms = int_field "uptime-ms" body in
      let* jobs_open = int_field "jobs-open" body in
      let* jobs_total = int_field "jobs-total" body in
      let* waiters = int_field "waiters" body in
      let* inflight = int_field "inflight" body in
      let* requeued = int_field "requeued" body in
      let* claim_waits = int_field "claim-waits" body in
      let* done_cells = int_field "done-cells" body in
      let* hit_cells = int_field "hit-cells" body in
      let* failed_cells = int_field "failed-cells" body in
      let* mean_cell_us = int_field "mean-cell-us" body in
      let* journal_bytes = int_field "journal-bytes" body in
      let* journal_grown = int_field "journal-grown" body in
      let* hworkers =
        match Sexp.assoc "hworkers" body with
        | Some items -> map_result worker_health_of_sexp items
        | None -> Error "health: missing hworkers"
      in
      let* slow_claims =
        match Sexp.assoc "slow" body with
        | Some items -> map_result slow_claim_of_sexp items
        | None -> Error "health: missing slow"
      in
      Ok
        (Health_r
           {
             uptime_ms;
             jobs_open;
             jobs_total;
             waiters;
             inflight;
             requeued;
             claim_waits;
             done_cells;
             hit_cells;
             failed_cells;
             mean_cell_us;
             journal_bytes;
             journal_grown;
             hworkers;
             slow_claims;
           })
    | "metrics", items ->
      let* kvs =
        map_result
          (function
            | Sexp.List [ Sexp.Atom "m"; Sexp.Atom k; Sexp.Atom v ] -> (
              match int_of_string_opt v with
              | Some v -> Ok (k, v)
              | None -> Error "metrics: bad value")
            | _ -> Error "metrics: bad entry")
          items
      in
      Ok (Metrics_r kvs)
    | "status", _ ->
      let* jobs =
        match Sexp.assoc "jobs" body with
        | Some items -> map_result summary_of_sexp items
        | None -> Error "status: missing jobs"
      in
      let* workers =
        match Sexp.assoc "workers" body with
        | Some items -> map_result worker_of_sexp items
        | None -> Error "status: missing workers"
      in
      Ok (Status_r { jobs; workers })
    | _ -> Error (Printf.sprintf "unknown ok body %s" head))
  | Sexp.List [ Sexp.Atom "err"; Sexp.Atom a ] -> (
    match of_hex a with Some m -> Ok (Err m) | None -> Error "err: bad hex")
  | _ -> Error "expected a response"
