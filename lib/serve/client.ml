(* Buffered line IO over a Unix-domain socket, shared by workers and
   thin clients.  One in-flight request per connection: [rpc] holds the
   connection mutex across write-request/read-reply, so Pool worker
   domains inside one worker process can share a single daemon
   connection safely. *)

module P = Protocol

exception Disconnected

type io = {
  fd : Unix.file_descr;
  mu : Mutex.t;
  mutable pending : string;  (* bytes read off the socket, not yet consumed *)
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; mu = Mutex.create (); pending = "" }

let close io = try Unix.close io.fd with Unix.Unix_error _ -> ()

let rec restart_on_eintr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    match restart_on_eintr (fun () -> Unix.write_substring fd s !sent (n - !sent)) with
    | 0 -> raise Disconnected
    | k -> sent := !sent + k
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Disconnected
  done

let rec read_line_locked io =
  match String.index_opt io.pending '\n' with
  | Some i ->
    let line = String.sub io.pending 0 (i + 1) in
    io.pending <- String.sub io.pending (i + 1) (String.length io.pending - i - 1);
    line
  | None -> (
    let b = Bytes.create 65536 in
    match restart_on_eintr (fun () -> Unix.read io.fd b 0 (Bytes.length b)) with
    | 0 -> raise Disconnected
    | n ->
      io.pending <- io.pending ^ Bytes.sub_string b 0 n;
      read_line_locked io
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Disconnected)

(* Send one request, block for its reply.  The daemon answers every
   frame in order (a deferred [wait] still consumes the connection until
   its reply arrives, which is exactly the blocking the caller wants). *)
let rpc io req =
  Mutex.protect io.mu (fun () ->
      write_all io.fd (P.encode_request req);
      let line = read_line_locked io in
      match P.decode_response line with
      | Ok r -> r
      | Error e -> failwith (Printf.sprintf "serve: bad response frame: %s" e))

(* One-shot request on a fresh connection — the thin-client pattern
   (`rn_cli submit`, `status`, ...). *)
let request ~socket req =
  let io = connect socket in
  Fun.protect ~finally:(fun () -> close io) (fun () -> rpc io req)

(* Streamed wait: send [wait J progress] and consume [Progress_r] frames
   (calling [on_progress] on each) until the daemon closes the stream
   with its final reply ([Ok_unit] on success).  Holds the connection
   mutex for the whole stream — a progress wait owns its connection. *)
let wait_progress io job ~on_progress =
  Mutex.protect io.mu (fun () ->
      write_all io.fd (P.encode_request (P.Wait { job; progress = true }));
      let rec drain () =
        let line = read_line_locked io in
        match P.decode_response line with
        | Ok (P.Progress_r p) ->
          on_progress p;
          drain ()
        | Ok r -> r
        | Error e -> failwith (Printf.sprintf "serve: bad response frame: %s" e)
      in
      drain ())

(* Human-readable rendering used by `rn_cli status`. *)
let format_status jobs workers =
  let b = Buffer.create 256 in
  let state_name = P.state_name in
  if jobs = [] then Buffer.add_string b "no jobs\n";
  List.iter
    (fun (s : P.job_summary) ->
      Buffer.add_string b
        (Printf.sprintf "job %-3d %-9s exps %d/%d  cells %d (failed %d, claimed %d)  hits %d  misses %d  [%s @%s retry=%d]\n"
           s.P.job (state_name s.P.state) s.P.exps_done
           (List.length s.P.spec.P.exps)
           s.P.cells_done s.P.cells_failed s.P.claims s.P.hits s.P.misses
           (String.concat "," s.P.spec.P.exps)
           (P.scale_name s.P.spec.P.scale)
           s.P.spec.P.retry))
    jobs;
  List.iter
    (fun (w : P.worker_info) ->
      Buffer.add_string b
        (Printf.sprintf "worker %-2d pid %-7d %s%s\n" w.P.wid w.P.pid
           (if w.P.alive then "alive" else "lost")
           (match w.P.wjob with None -> "" | Some j -> Printf.sprintf "  job %d" j)))
    workers;
  Buffer.contents b

(* Human-readable rendering used by `rn_cli serve health`. *)
let format_health (h : P.health) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "uptime %.1fs  jobs %d open / %d total  waiters %d\n"
    (float_of_int h.P.uptime_ms /. 1000.0)
    h.P.jobs_open h.P.jobs_total h.P.waiters;
  add "cells: done %d  hit %d  failed %d  requeued %d  claim-waits %d  in-flight %d\n"
    h.P.done_cells h.P.hit_cells h.P.failed_cells h.P.requeued h.P.claim_waits h.P.inflight;
  add "mean cell %.1f ms  journal %d bytes (+%d this daemon)\n"
    (float_of_int h.P.mean_cell_us /. 1000.0)
    h.P.journal_bytes h.P.journal_grown;
  List.iter
    (fun (w : P.worker_health) ->
      add "worker %-2d pid %-7d %-5s heartbeat %.1fs ago  cells %d%s\n" w.P.hwid w.P.hpid
        (if w.P.halive then "alive" else "lost")
        (float_of_int w.P.hage_ms /. 1000.0)
        w.P.hcells
        (match w.P.hjob with None -> "" | Some j -> Printf.sprintf "  job %d" j))
    h.P.hworkers;
  (match h.P.slow_claims with
  | [] -> ()
  | slow ->
    add "in-flight cells (oldest first):\n";
    List.iter
      (fun (key, wid, age_ms) ->
        add "  %8.1fs  w%d  %s\n" (float_of_int age_ms /. 1000.0) wid key)
      slow);
  Buffer.contents b
