(* Uniform hash-grid over a point set, for neighbor queries bounded by a
   fixed radius.

   Bucketing n points into square cells of side [cell] makes "all pairs
   within distance <= cell" an O(n)-expected enumeration for the bounded
   densities the geometric generators produce: each point is compared
   only against the points of its own cell and the eight surrounding
   ones, instead of against all n - 1 others.  This is what turns world
   construction (Gen.of_positions, Dual.make's embedding validation)
   from O(n^2) into O(n) expected. *)

type t = {
  cell : float; (* cell side; also the largest radius fully covered *)
  cols : int;
  rows : int;
  min_x : float;
  min_y : float;
  start : int array; (* cell id -> first index into [ids] (CSR layout) *)
  ids : int array; (* point indices grouped by cell, ascending in a cell *)
}

let cell_size t = t.cell

let build ~cell (pos : Point.t array) =
  if not (Float.is_finite cell) || cell <= 0.0 then invalid_arg "Grid.build: cell <= 0";
  let n = Array.length pos in
  let min_x = ref infinity and min_y = ref infinity in
  let max_x = ref neg_infinity and max_y = ref neg_infinity in
  Array.iter
    (fun (p : Point.t) ->
      if p.Point.x < !min_x then min_x := p.Point.x;
      if p.Point.y < !min_y then min_y := p.Point.y;
      if p.Point.x > !max_x then max_x := p.Point.x;
      if p.Point.y > !max_y then max_y := p.Point.y)
    pos;
  let min_x = if n = 0 then 0.0 else !min_x and min_y = if n = 0 then 0.0 else !min_y in
  let span v lo = int_of_float ((v -. lo) /. cell) in
  let cols = if n = 0 then 1 else 1 + span !max_x min_x in
  let rows = if n = 0 then 1 else 1 + span !max_y min_y in
  let ncells = cols * rows in
  (* counting sort into CSR: one pass to count, one to place *)
  let count = Array.make (ncells + 1) 0 in
  let cell_of p =
    let cx = span p.Point.x min_x and cy = span p.Point.y min_y in
    (cy * cols) + cx
  in
  Array.iter (fun p -> count.(cell_of p + 1) <- count.(cell_of p + 1) + 1) pos;
  for c = 1 to ncells do
    count.(c) <- count.(c) + count.(c - 1)
  done;
  let start = Array.copy count in
  let ids = Array.make n 0 in
  (* placing in index order keeps each cell's ids ascending *)
  Array.iteri
    (fun i p ->
      let c = cell_of p in
      ids.(count.(c)) <- i;
      count.(c) <- count.(c) + 1)
    pos;
  { cell; cols; rows; min_x; min_y; start; ids }

(* [iter_pairs f grid pos] calls [f u v dist] once per unordered pair
   with [u < v] and [dist <= cell] (plus some pairs slightly beyond,
   up to cell * sqrt 8 — callers re-check the distance, which is passed
   so they need not recompute it).  Each in-range pair is visited
   exactly once: within a cell ids are ascending so i < j suffices, and
   across cells only the four forward neighbors (E, SW, S, SE) are
   scanned. *)
let iter_pairs f t (pos : Point.t array) =
  let cell_members c = (t.start.(c), t.start.(c + 1)) in
  let emit i j =
    let u = t.ids.(i) and v = t.ids.(j) in
    let u, v = if u < v then (u, v) else (v, u) in
    f u v (Point.dist pos.(u) pos.(v))
  in
  for cy = 0 to t.rows - 1 do
    for cx = 0 to t.cols - 1 do
      let c = (cy * t.cols) + cx in
      let lo, hi = cell_members c in
      (* within-cell pairs *)
      for i = lo to hi - 1 do
        for j = i + 1 to hi - 1 do
          emit i j
        done
      done;
      (* forward neighbor cells *)
      List.iter
        (fun (dx, dy) ->
          let nx = cx + dx and ny = cy + dy in
          if nx >= 0 && nx < t.cols && ny < t.rows then begin
            let lo', hi' = cell_members ((ny * t.cols) + nx) in
            for i = lo to hi - 1 do
              for j = lo' to hi' - 1 do
                emit i j
              done
            done
          end)
        [ (1, 0); (-1, 1); (0, 1); (1, 1) ]
    done
  done

(* [iter_within f grid pos i r]: every j <> i with dist(i, j) <= r,
   requiring r <= cell.  Scans the 3x3 cell neighborhood of i. *)
let iter_within f t (pos : Point.t array) i r =
  if r > t.cell +. 1e-12 then invalid_arg "Grid.iter_within: radius exceeds cell size";
  let p = pos.(i) in
  let cx = int_of_float ((p.Point.x -. t.min_x) /. t.cell) in
  let cy = int_of_float ((p.Point.y -. t.min_y) /. t.cell) in
  for ny = max 0 (cy - 1) to min (t.rows - 1) (cy + 1) do
    for nx = max 0 (cx - 1) to min (t.cols - 1) (cx + 1) do
      let c = (ny * t.cols) + nx in
      for k = t.start.(c) to t.start.(c + 1) - 1 do
        let j = t.ids.(k) in
        if j <> i && Point.dist p pos.(j) <= r then f j
      done
    done
  done
