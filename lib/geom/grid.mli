(** Uniform hash-grid over a point set: O(n)-expected enumeration of all
    pairs within a fixed radius, replacing O(n²) pairwise scans in world
    construction. *)

type t

(** [build ~cell pos] buckets the points into square cells of side
    [cell].  Raises [Invalid_argument] unless [cell > 0] and finite. *)
val build : cell:float -> Point.t array -> t

val cell_size : t -> float

(** [iter_pairs f grid pos] calls [f u v dist] exactly once per
    unordered pair [u < v] lying in the same or adjacent cells — a
    superset of all pairs with [dist <= cell_size].  [dist] is the exact
    Euclidean distance; callers filter on it. *)
val iter_pairs : (int -> int -> float -> unit) -> t -> Point.t array -> unit

(** [iter_within f grid pos i r] calls [f j] for every [j <> i] with
    [dist(i, j) <= r].  Requires [r <= cell_size]. *)
val iter_within : (int -> unit) -> t -> Point.t array -> int -> float -> unit
