(* The disk overlay of Section 4.

   The correctness proofs cover the plane with disks of radius 1/2 whose
   centres sit on a hexagonal (triangular) lattice chosen to minimise
   overlap: the Voronoi cells of a triangular lattice with nearest-neighbour
   spacing sqrt(3)*R are regular hexagons of circumradius R, so disks of
   radius R centred on the lattice cover the plane.

   This module makes the overlay executable: it assigns every point its
   covering disk (the nearest lattice centre) and computes the paper's
   I_r — the maximum number of overlay disks that can intersect a disk of
   radius r — by direct enumeration over one fundamental domain.  Fact 4.1
   (I_c = O(1) for constant c) is then checkable, and Corollary 4.7 (at most
   I_r MIS nodes within distance r) is verified against the real overlay. *)

let radius = 0.5

(* Lattice basis: v1 = (a, 0), v2 = (a/2, a*sqrt(3)/2), a = sqrt(3) * R. *)
let pitch = sqrt 3.0 *. radius

let v2x = pitch /. 2.0
let v2y = pitch *. sqrt 3.0 /. 2.0

(* Centre of the lattice disk with integer coordinates (i, j). *)
let center i j = Point.make ((float_of_int i *. pitch) +. (float_of_int j *. v2x)) (float_of_int j *. v2y)

(* Fractional lattice coordinates of a point (inverse of [center]). *)
let frac_coords (p : Point.t) =
  let j = p.y /. v2y in
  let i = (p.x -. (j *. v2x)) /. pitch in
  (i, j)

(* The covering disk of [p]: the lattice centre nearest to [p].  Rounding
   each fractional coordinate up and down gives four candidates; the Voronoi
   cell structure of the triangular lattice guarantees the nearest centre is
   among them. *)
let disk_of_point p =
  let fi, fj = frac_coords p in
  let cands =
    [
      (int_of_float (floor fi), int_of_float (floor fj));
      (int_of_float (floor fi) + 1, int_of_float (floor fj));
      (int_of_float (floor fi), int_of_float (floor fj) + 1);
      (int_of_float (floor fi) + 1, int_of_float (floor fj) + 1);
    ]
  in
  let best =
    List.fold_left
      (fun (bij, bd) (i, j) ->
        let d = Point.dist2 (center i j) p in
        if d < bd then ((i, j), d) else (bij, bd))
      (((0, 0), infinity))
      cands
  in
  fst best

(* Every point is within the circumradius of its covering disk. *)
let covered p =
  let i, j = disk_of_point p in
  Point.dist (center i j) p <= radius +. 1e-9

(* Lattice centres within distance [range] of [p]. *)
let centers_within p range =
  let fi, fj = frac_coords p in
  let slack = int_of_float (ceil (range /. v2y)) + 2 in
  let ci = int_of_float (floor fi) and cj = int_of_float (floor fj) in
  let acc = ref [] in
  for j = cj - slack to cj + slack do
    for i = ci - (2 * slack) to ci + (2 * slack) do
      if Point.dist (center i j) p <= range then acc := (i, j) :: !acc
    done
  done;
  !acc

(* I_r: the maximum, over placements of a disk of radius r, of the number of
   overlay disks it intersects.  An overlay disk (radius 1/2, centre c)
   intersects the disk (radius r, centre p) iff dist(c,p) <= r + 1/2, so we
   maximise the count of lattice centres within r + 1/2 of p over p sampled
   on a fine grid covering one lattice fundamental domain. *)
let i_r ?(samples = 24) r =
  if r < 0.0 then invalid_arg "Overlay.i_r: negative radius";
  let reach = r +. radius in
  let best = ref 0 in
  for sy = 0 to samples - 1 do
    for sx = 0 to samples - 1 do
      let p =
        Point.make
          ((float_of_int sx /. float_of_int samples) *. pitch)
          ((float_of_int sy /. float_of_int samples) *. v2y)
      in
      let c = List.length (centers_within p reach) in
      if c > !best then best := c
    done
  done;
  !best

(* Memoised I_r for the handful of constants the algorithms use.  The
   cache is shared across the harness's worker domains, so reads and
   writes are serialised; a duplicated computation between the lookup and
   the insert is harmless (I_r is a pure function of r). *)
let i_r_cache : (float, int) Hashtbl.t = Hashtbl.create 16
let i_r_cache_lock = Mutex.create ()

let i_r_cached r =
  let cached = Mutex.protect i_r_cache_lock (fun () -> Hashtbl.find_opt i_r_cache r) in
  match cached with
  | Some v -> v
  | None ->
    let v = i_r r in
    Mutex.protect i_r_cache_lock (fun () ->
        if not (Hashtbl.mem i_r_cache r) then Hashtbl.add i_r_cache r v);
    v
