(* Deterministic splittable PRNG based on splitmix64.

   Every stochastic component of the simulator draws from an [Rng.t] derived
   from a single experiment seed, so executions are reproducible bit-for-bit
   across runs and machines.  [split] derives an independent stream, which is
   how each simulated process receives its own generator. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

(* Derive a stream for a labelled sub-component: deterministic in both the
   parent state *value* (not identity) and the label. *)
let derive t label =
  let s = mix64 (Int64.logxor t.state (Int64.of_int (0x61C88647 * (label + 1)))) in
  { state = s }

(* Same derivation as [derive], but re-seeds an existing generator instead of
   allocating one.  The engine re-derives the adversary stream every round, so
   this keeps the hot loop allocation-free. *)
let derive_into dst ~parent label =
  dst.state <- mix64 (Int64.logxor parent.state (Int64.of_int (0x61C88647 * (label + 1))))

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0

let bool t p = float t < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  let rec loop k = if bool t p then k else loop (k + 1) in
  loop 1
