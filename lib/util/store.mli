(** Crash-safe, content-addressed, append-only result store for
    experiment cells.

    Every experiment cell is a deterministic pure function of its
    coordinates (the PR 1 invariant that makes [--jobs] byte-identical),
    so its result can be cached on disk and replayed verbatim.  The
    store keeps one record per cell in a single append-only journal:

    {v
    DIR/journal.rnj     header line + one sexp record per line
    DIR/last-run.sexp   hit/miss summary of the last sweep (sidecar)
    v}

    Each record carries the cell's canonical key, the 64-bit FNV-1a hash
    of that key (the content address), a status ([ok] or [fail]), the
    hex-encoded payload, and a checksum over the whole record.  Appends
    are a single [write] of a complete line followed by an optional
    [fsync], so a crash can only ever damage the journal's tail; {!open_}
    detects a truncated or corrupt tail, drops it, and repairs the file
    by truncating to the last intact record.  All mutating operations
    are serialised by a mutex, so {!Pool} worker domains may share one
    handle.

    Handles in different processes may also share one journal: every
    mutating operation additionally holds an exclusive fcntl lock on a
    sidecar [DIR/journal.lock] file, appends go through [O_APPEND] so
    they land at the true end of file, and {!refresh} replays records
    appended by peer processes since the handle was opened.  A {!gc}
    rewrite by a peer (rename) is detected by inode change and answered
    by reopening the journal.  See DESIGN.md, "Multi-process locking
    rules". *)

(** Bumped whenever the journal format changes; stale-format journals
    are discarded on open.  CI cache keys must include this. *)
val format_version : int

(** The coordinates a cell result is keyed by.  [env] carries
    environment facts that silently change semantics (the engine's
    {!Rn_sim.Engine.semantics_digest}); [code_version] is the
    experiment's own declared version, bumped whenever the cell function
    or its result type changes. *)
type key = {
  exp : string;  (** experiment id, e.g. ["E5"] *)
  scale : string;  (** ["quick"] or ["full"] *)
  coord : string;  (** position in the sweep, e.g. ["b0.c12"] *)
  code_version : int;
  env : string;
}

(** Canonical string form of a key ([exp|scale|vN|env|coord], components
    sanitised so the result is a single sexp atom). *)
val key_id : key -> string

(** 64-bit FNV-1a, as 16 hex digits: the content address of a key and
    the checksum primitive of the journal. *)
val hash_hex : string -> string

type status = Done | Failed

type record_ = { key : key; status : status; payload : string }

(** One journal line (newline-terminated). *)
val encode_record : record_ -> string

(** Parse and integrity-check one journal line (trailing newline
    optional).  [None] on any structural, hash, or checksum mismatch. *)
val decode_record : string -> record_ option

type t

val journal_path : string -> string

(** [open_ ~fsync dir] creates [dir] if needed, replays the journal into
    an in-memory index (last record per key wins), and repairs any
    corrupt tail by truncation.  [fsync] (default [true]) controls
    whether every {!put} is flushed to stable storage. *)
val open_ : ?fsync:bool -> string -> t

val dir : t -> string

(** Bytes of corrupt/truncated tail dropped by {!open_} (0 for a clean
    journal). *)
val recovered_bytes : t -> int

(** Payload of the [Done] record for this key, if any.  [Failed] records
    are deliberately not returned: a failed cell is resumable and will
    be recomputed by the next run. *)
val find : t -> key -> string option

(** The recorded error message of a [Failed] record, if any. *)
val find_failed : t -> key -> string option

(** Append a record (replacing any previous record for the key in the
    index).  Domain-safe, and safe against concurrent appends from
    other processes sharing the journal. *)
val put : t -> key -> status -> string -> unit

(** Replay records appended to the journal by other processes since
    {!open_} (or the last refresh) into this handle's index; returns how
    many records were picked up.  Cheap when nothing changed (one stat +
    one short read).  Domain-safe. *)
val refresh : t -> int

(** Records currently in the index. *)
val count : t -> int

(** Index snapshot, sorted by {!key_id} for deterministic output. *)
val records : t -> record_ list

(** [gc t ~keep] rewrites the journal (write-to-temp + fsync + rename)
    with only the records satisfying [keep], and returns how many were
    dropped. *)
val gc : t -> keep:(record_ -> bool) -> int

val close : t -> unit

(** Read-only integrity scan of a journal file; never modifies it. *)
type scan = {
  good : record_ list;  (** longest intact record prefix, journal order *)
  good_bytes : int;  (** bytes covered by header + intact records *)
  total_bytes : int;
  problems : string list;  (** why the scan stopped, if it did *)
}

val scan_file : string -> scan

(** Sidecar with the last sweep's cache statistics (atomic
    write-to-temp + rename). *)
val write_last_run : dir:string -> hits:int -> misses:int -> failures:int -> unit

val read_last_run : dir:string -> (int * int * int) option
