(* Crash-safe content-addressed result store.  See store.mli for the
   journal layout; the key properties defended here:

   - appends are one [write] of a whole line, so the only damage a crash
     (or a concurrent reader) can observe is a truncated/corrupt tail;
   - every record carries the FNV-1a hash of its key and a checksum over
     key+status+payload, so [scan_file] can prove which prefix is intact
     and [open_] can repair by truncating to it;
   - a mutex serialises index and journal mutation, so one handle can be
     shared by [Pool] worker domains;
   - a sidecar lock file (journal.lock, fcntl-locked around every
     mutating operation) plus O_APPEND writes serialise handles in
     *different processes*, so sweep workers spawned by the serve daemon
     can append to and replay one journal concurrently; [refresh] picks
     up records appended by peers since open (or the last refresh), and
     a [gc] rewrite by a peer is detected by inode change and answered
     by reopening the journal at its new identity. *)

let format_version = 1
let header_line = Printf.sprintf "(rn-store (format %d))" format_version

type key = {
  exp : string;
  scale : string;
  coord : string;
  code_version : int;
  env : string;
}

type status = Done | Failed

type record_ = { key : key; status : status; payload : string }

(* --- hashing (64-bit FNV-1a) --- *)

let hash64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (hash64 s)

(* --- key canonicalisation --- *)

(* Key components become fields of a '|'-separated sexp atom, so any
   character that would break either framing is mapped to '_'. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '|' | '"' -> '_'
      | c -> c)
    s

let key_id k =
  Printf.sprintf "%s|%s|v%d|%s|%s" (sanitize k.exp) (sanitize k.scale) k.code_version
    (sanitize k.env) (sanitize k.coord)

let key_of_id id =
  match String.split_on_char '|' id with
  | [ exp; scale; v; env; coord ]
    when String.length v >= 2 && v.[0] = 'v' ->
    Option.map
      (fun code_version -> { exp; scale; coord; code_version; env })
      (int_of_string_opt (String.sub v 1 (String.length v - 1)))
  | _ -> None

(* --- record codec --- *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
  end

let status_name = function Done -> "ok" | Failed -> "fail"
let status_of_name = function "ok" -> Some Done | "fail" -> Some Failed | _ -> None

(* The checksum covers everything the record asserts. *)
let crc ~kid ~status ~data = hash_hex (kid ^ "\x00" ^ status ^ "\x00" ^ data)

let encode_record r =
  let kid = key_id r.key in
  let s = status_name r.status in
  (* 'x' prefix keeps the atom non-empty for a zero-length payload. *)
  let d = "x" ^ to_hex r.payload in
  Printf.sprintf "(cell (k %s) (h %s) (s %s) (d %s) (c %s))\n" kid (hash_hex kid) s d
    (crc ~kid ~status:s ~data:d)

let decode_record line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
  in
  match Sexp.parse_string line with
  | exception Sexp.Parse_error _ -> None
  | sx -> (
    let field name =
      match Sexp.assoc name sx with Some [ Sexp.Atom a ] -> Some a | _ -> None
    in
    match (sx, field "k", field "h", field "s", field "d", field "c") with
    | Sexp.List (Sexp.Atom "cell" :: _), Some kid, Some h, Some s, Some d, Some c
      when hash_hex kid = h
           && crc ~kid ~status:s ~data:d = c
           && String.length d >= 1
           && d.[0] = 'x' -> (
      match (key_of_id kid, status_of_name s, of_hex (String.sub d 1 (String.length d - 1)))
      with
      | Some key, Some status, Some payload -> Some { key; status; payload }
      | _ -> None)
    | _ -> None)

(* --- journal scanning --- *)

type scan = {
  good : record_ list;
  good_bytes : int;
  total_bytes : int;
  problems : string list;
}

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let scan_string content =
  let total = String.length content in
  let line_end pos = String.index_from_opt content pos '\n' in
  match line_end 0 with
  | None ->
    let problems = if total = 0 then [] else [ "missing or truncated header" ] in
    { good = []; good_bytes = 0; total_bytes = total; problems }
  | Some h when String.sub content 0 h <> header_line ->
    { good = []; good_bytes = 0; total_bytes = total; problems = [ "bad header" ] }
  | Some h ->
    let rec loop pos acc =
      if pos >= total then { good = List.rev acc; good_bytes = pos; total_bytes = total; problems = [] }
      else
        match line_end pos with
        | None ->
          {
            good = List.rev acc;
            good_bytes = pos;
            total_bytes = total;
            problems = [ Printf.sprintf "truncated final record at byte %d" pos ];
          }
        | Some i -> (
          match decode_record (String.sub content pos (i - pos)) with
          | Some r -> loop (i + 1) (r :: acc)
          | None ->
            {
              good = List.rev acc;
              good_bytes = pos;
              total_bytes = total;
              problems = [ Printf.sprintf "corrupt record at byte %d" pos ];
            })
    in
    loop (h + 1) []

let scan_file path =
  if Sys.file_exists path then scan_string (read_file path)
  else { good = []; good_bytes = 0; total_bytes = 0; problems = [ "no journal" ] }

(* --- the store handle --- *)

type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  lock_fd : Unix.file_descr;  (* journal.lock: cross-process serialisation *)
  fsync : bool;
  mutex : Mutex.t;
  index : (string, record_) Hashtbl.t;  (* key_id -> last record *)
  recovered : int;
  mutable ino : int;  (* journal inode: a peer gc rewrote it if this changes *)
  mutable scanned : int;  (* journal bytes already replayed into the index *)
  mutable closed : bool;
}

let journal_path dir = Filename.concat dir "journal.rnj"
let lock_path dir = Filename.concat dir "journal.lock"
let last_run_path dir = Filename.concat dir "last-run.sexp"

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Exclusive cross-process lock on the sidecar lock file.  fcntl locks
   are per-process, so in-process exclusion stays the mutex's job: every
   caller already holds [t.mutex].  Locking a separate file (never the
   journal itself) keeps the read-only scanners lock-free and sidesteps
   fcntl's close-releases-locks footgun for the journal reopens below. *)
let file_locked_fd lock_fd f =
  ignore (Unix.lseek lock_fd 0 Unix.SEEK_SET);
  Unix.lockf lock_fd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.lseek lock_fd 0 Unix.SEEK_SET);
      try Unix.lockf lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

let file_locked t f = file_locked_fd t.lock_fd f

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let fd_ino fd = (Unix.fstat fd).Unix.st_ino

let open_ ?(fsync = true) dir =
  mkdir_p dir;
  let path = journal_path dir in
  let lock_fd = Unix.openfile (lock_path dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  file_locked_fd lock_fd (fun () ->
      (* Scan and repair under the lock: peers are excluded, so the tail
         we truncate cannot be a record a live writer is appending. *)
      let scan = scan_file path in
      let header_ok = scan.good_bytes > 0 in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
      let start = if header_ok then scan.good_bytes else 0 in
      Unix.ftruncate fd start;
      if not header_ok then begin
        write_all fd (header_line ^ "\n");
        if fsync then Unix.fsync fd
      end;
      let index = Hashtbl.create 256 in
      List.iter (fun r -> Hashtbl.replace index (key_id r.key) r) scan.good;
      let recovered =
        if header_ok then scan.total_bytes - scan.good_bytes else scan.total_bytes
      in
      let scanned = if header_ok then start else String.length header_line + 1 in
      {
        dir;
        fd;
        lock_fd;
        fsync;
        mutex = Mutex.create ();
        index;
        recovered;
        ino = fd_ino fd;
        scanned;
        closed = false;
      })

let dir t = t.dir
let recovered_bytes t = t.recovered

(* A peer's [gc] replaces the journal by rename; our fd then points at
   the dead inode.  Called with mutex + file lock held. *)
let reopen_if_rotated t =
  let path = journal_path t.dir in
  let rotated =
    match Unix.stat path with
    | st -> st.Unix.st_ino <> t.ino
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true
  in
  if rotated then begin
    Unix.close t.fd;
    t.fd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
    if (Unix.fstat t.fd).Unix.st_size = 0 then begin
      write_all t.fd (header_line ^ "\n");
      if t.fsync then Unix.fsync t.fd
    end;
    t.ino <- fd_ino t.fd;
    (* force [refresh_locked] to rebuild the index from the new file *)
    t.scanned <- 0
  end;
  rotated

(* Replay journal bytes appended since the last scan into the index.
   Called with mutex + file lock held (so writers are quiesced and every
   record line is complete).  Undecodable complete lines are skipped —
   under the locking discipline they can only be the fossil of a torn
   write by a crashed peer, and the records after them are still good. *)
let refresh_locked t =
  ignore (reopen_if_rotated t);
  if t.scanned = 0 then begin
    (* fresh or rotated file: rebuild the whole index from disk *)
    let scan = scan_file (journal_path t.dir) in
    Hashtbl.reset t.index;
    List.iter (fun r -> Hashtbl.replace t.index (key_id r.key) r) scan.good;
    t.scanned <- max scan.good_bytes (String.length header_line + 1);
    List.length scan.good
  end
  else begin
    let path = journal_path t.dir in
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let fresh =
      if len <= t.scanned then ""
      else begin
        seek_in ic t.scanned;
        really_input_string ic (len - t.scanned)
      end
    in
    close_in ic;
    let count = ref 0 in
    let pos = ref 0 in
    (* consume complete lines only; a trailing partial line (in-flight
       crash debris) is left for the next refresh *)
    let continue = ref true in
    while !continue do
      match String.index_from_opt fresh !pos '\n' with
      | None -> continue := false
      | Some i ->
        (match decode_record (String.sub fresh !pos (i - !pos)) with
        | Some r ->
          Hashtbl.replace t.index (key_id r.key) r;
          incr count
        | None -> ());
        pos := i + 1
    done;
    t.scanned <- t.scanned + !pos;
    !count
  end

let refresh t =
  locked t (fun () ->
      if t.closed then invalid_arg "Store.refresh: store is closed";
      file_locked t (fun () -> refresh_locked t))

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.index (key_id k) with
      | Some { status = Done; payload; _ } -> Some payload
      | _ -> None)

let find_failed t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.index (key_id k) with
      | Some { status = Failed; payload; _ } -> Some payload
      | _ -> None)

let put t k status payload =
  let r = { key = k; status; payload } in
  let line = encode_record r in
  locked t (fun () ->
      if t.closed then invalid_arg "Store.put: store is closed";
      file_locked t (fun () ->
          ignore (reopen_if_rotated t);
          write_all t.fd line;
          if t.fsync then Unix.fsync t.fd);
      Hashtbl.replace t.index (key_id k) r)

let count t = locked t (fun () -> Hashtbl.length t.index)

let records t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) t.index []
      |> List.sort (fun a b -> compare (key_id a.key) (key_id b.key)))

let gc t ~keep =
  locked t (fun () ->
      if t.closed then invalid_arg "Store.gc: store is closed";
      file_locked t (fun () ->
          (* replay peer appends first so the rewrite cannot drop them *)
          ignore (refresh_locked t);
          let all =
            Hashtbl.fold (fun _ r acc -> r :: acc) t.index []
            |> List.sort (fun a b -> compare (key_id a.key) (key_id b.key))
          in
          let kept = List.filter keep all in
          let dropped = List.length all - List.length kept in
          let path = journal_path t.dir in
          let tmp = path ^ ".tmp" in
          let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
          let b = Buffer.create 4096 in
          Buffer.add_string b (header_line ^ "\n");
          List.iter (fun r -> Buffer.add_string b (encode_record r)) kept;
          write_all fd (Buffer.contents b);
          Unix.fsync fd;
          Unix.close fd;
          Unix.close t.fd;
          Sys.rename tmp path;
          let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
          t.fd <- fd;
          t.ino <- fd_ino fd;
          t.scanned <- (Unix.fstat fd).Unix.st_size;
          Hashtbl.reset t.index;
          List.iter (fun r -> Hashtbl.replace t.index (key_id r.key) r) kept;
          dropped))

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try if t.fsync then Unix.fsync t.fd with Unix.Unix_error _ -> ());
        Unix.close t.fd;
        (try Unix.close t.lock_fd with Unix.Unix_error _ -> ())
      end)

(* --- last-run sidecar --- *)

let write_last_run ~dir ~hits ~misses ~failures =
  mkdir_p dir;
  let path = last_run_path dir in
  (* pid-suffixed temp: concurrent worker processes sharing the store
     must not rename each other's temp files away *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd
    (Printf.sprintf "(last-run (hits %d) (misses %d) (failed %d))\n" hits misses failures);
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path

let read_last_run ~dir =
  let path = last_run_path dir in
  if not (Sys.file_exists path) then None
  else
    match Sexp.parse_string (read_file path) with
    | exception Sexp.Parse_error _ -> None
    | sx -> (
      let num name =
        match Sexp.assoc name sx with Some [ v ] -> Sexp.as_int v | _ -> None
      in
      match (num "hits", num "misses", num "failed") with
      | Some h, Some m, Some f -> Some (h, m, f)
      | _ -> None)
