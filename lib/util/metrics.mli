(** Domain-safe metrics registry: named counters, gauges and histograms.

    Recording is lock-free on the hot path (plain [Atomic] operations on
    preallocated cells); a registry mutex is taken only at registration.
    The registry is always live — instrumentation sites are expected to
    sample {!enabled} once per run, like {!Timing}, so disabled
    instrumentation costs one atomic read per simulation.

    Snapshots are plain sorted data: they [Marshal] cleanly, round-trip
    through sexp, and {!merge} is associative and commutative (counters
    add, gauges take the max, histograms add bucket-wise), so per-cell
    snapshots can be aggregated in any order — the property that lets
    the harness build identical per-experiment metrics tables at any
    [--jobs] setting. *)

type kind = Counter | Gauge | Histogram

(** A registered metric handle.  Registration is idempotent per name;
    re-registering a name under a different kind raises
    [Invalid_argument]. *)
type metric

type counter = metric
type gauge = metric
type histogram = metric

val name : metric -> string

(** Hot-path gate for instrumentation sites (the engine samples it once
    per [run]).  The registry itself records whenever its operations are
    called, regardless of this flag. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** Zero a counter's global cell (active scopes are unaffected); for
    process-lifetime counters that are re-based between sweeps, e.g. the
    store hit/miss counters. *)
val reset_counter : counter -> unit

val set : gauge -> int -> unit

(** [None] until the gauge is first {!set}. *)
val gauge_value : gauge -> int option

(** Record one value into a histogram's power-of-two value buckets. *)
val observe : histogram -> int -> unit

(** Histogram summary: [(bucket upper bound, count)] pairs (ascending,
    zero-count buckets omitted), with exact [sum]/[count]/[vmin]/[vmax].
    [vmin]/[vmax] are [max_int]/[min_int] when empty. *)
type hist_snapshot = {
  buckets : (int * int) list;
  sum : int;
  count : int;
  vmin : int;
  vmax : int;
}

(** A frozen view: name-sorted assoc lists, zero counters and empty
    histograms dropped, gauges present only once set. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist_snapshot) list;
}

val empty : snapshot
val is_empty : snapshot -> bool

(** Freeze the whole global registry. *)
val snapshot : unit -> snapshot

(** Build a normalized counters-only snapshot (duplicates summed, zeros
    dropped, names sorted); how {!Timing.metrics_snapshot} folds the
    profiler sections into this format. *)
val of_counters : (string * int) list -> snapshot

(** Build a histogram summary from raw values (test/aggregation
    helper); [hist_of_values (a @ b) = merge_hist (hist_of_values a)
    (hist_of_values b)] up to bucket granularity — exactly, in fact. *)
val hist_of_values : int list -> hist_snapshot

(** [scoped f] runs [f] while additionally accumulating every record
    made by the calling domain into a private collector, and returns
    [f ()]'s result with that collector's snapshot.  Scopes nest; a cell
    running on a {!Pool} worker domain sees only its own records. *)
val scoped : (unit -> 'a) -> 'a * snapshot

(** Zero every registered metric (registrations persist). *)
val reset : unit -> unit

(** Commutative, associative combine: counters add, gauges max,
    histograms add bucket-wise ([vmin]/[vmax] combine exactly). *)
val merge : snapshot -> snapshot -> snapshot

(** [diff after before]: counter and histogram-count increments between
    two registry snapshots; gauges and histogram [vmin]/[vmax] are taken
    from [after]. *)
val diff : snapshot -> snapshot -> snapshot

val merge_hist : hist_snapshot -> hist_snapshot -> hist_snapshot

(** [percentile h q] for [q] in [0,1]: the upper bound of the bucket
    containing the [q]-quantile, clamped into [[vmin, vmax]] (so p100 is
    exact, and the result is always within a 2x bucket of the true
    quantile). *)
val percentile : hist_snapshot -> float -> int

val hist_mean : hist_snapshot -> float

(** Bucket geometry, exposed for tests: [bucket_of v] is the bucket
    index, [bucket_lower]/[bucket_upper] its value range. *)
val bucket_of : int -> int

val bucket_lower : int -> int
val bucket_upper : int -> int

(** Sexp codec for snapshots ({!snapshot_of_sexp} raises [Failure] on
    malformed input). *)
val sexp_of_snapshot : snapshot -> Sexp.t

val snapshot_of_sexp : Sexp.t -> snapshot

(** Compact JSON object
    [{"counters":{..},"gauges":{..},"hists":{..}}]; histogram values
    carry [count]/[sum]/[min]/[max] plus [(upper bound, count)] bucket
    pairs.  Deterministic (snapshots are name-sorted). *)
val to_json : snapshot -> string

(** Prometheus text exposition.  Metric names are prefixed (default
    ["rn_"]) and mangled to the [[a-zA-Z0-9_:]] charset; histogram
    buckets are emitted cumulatively with a trailing [+Inf] bucket per
    the format's convention. *)
val to_prometheus : ?prefix:string -> snapshot -> string

val pp_hist : Format.formatter -> hist_snapshot -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
