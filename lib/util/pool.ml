(* A fixed-size worker pool over OCaml 5 domains.

   Work items are closures in a queue guarded by a mutex; workers block on
   a condition variable when the queue is empty and exit once the pool is
   closed and drained.  Batches ([run]) track their own completion with a
   second mutex/condition pair, so several batches could share one pool.

   The design constraint that matters here is determinism: the harness
   promises that parallel and sequential sweeps produce identical tables,
   so the pool must not introduce any ordering dependence.  [map]/[run]
   write each cell's result into its input slot and only the *scheduling*
   is racy; and [~jobs:1] short-circuits to [List.map] before any domain
   machinery is touched. *)

let recommended_jobs ?(cap = 16) () =
  max 1 (min cap (Domain.recommended_domain_count () - 1))

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed and drained *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* batch tasks catch their own exceptions; a raise here would mean a
       bug in the pool itself, and taking the domain down is the loudest
       available failure. *)
    task ();
    worker t
  end

let create ~jobs =
  let t =
    {
      size = max 1 jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init t.size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Per-batch completion state. *)
type batch = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable b_pending : int;
  mutable b_error : (exn * Printexc.raw_backtrace) option;
}

let run t f xs =
  match xs with
  | [] -> []
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n None in
    let b =
      { b_mutex = Mutex.create (); b_done = Condition.create (); b_pending = n; b_error = None }
    in
    let task i () =
      let abandoned = Mutex.protect b.b_mutex (fun () -> b.b_error <> None) in
      (if not abandoned then
         match f input.(i) with
         | v -> results.(i) <- Some v
         | exception e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.protect b.b_mutex (fun () ->
               if b.b_error = None then b.b_error <- Some (e, bt)));
      Mutex.protect b.b_mutex (fun () ->
          b.b_pending <- b.b_pending - 1;
          if b.b_pending = 0 then Condition.broadcast b.b_done)
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock b.b_mutex;
    while b.b_pending > 0 do
      Condition.wait b.b_done b.b_mutex
    done;
    Mutex.unlock b.b_mutex;
    (match b.b_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)

(* [run_n t f n]: [run] specialised to the engine's pinned contiguous
   slices — apply [f] to each index 0..n-1 on the workers and block to
   completion, without building an id list or collecting results.  Same
   first-exception contract as [run]. *)
let run_n t f n =
  if n = 1 then f 0
  else if n > 1 then begin
    let b =
      { b_mutex = Mutex.create (); b_done = Condition.create (); b_pending = n; b_error = None }
    in
    let task i () =
      let abandoned = Mutex.protect b.b_mutex (fun () -> b.b_error <> None) in
      (if not abandoned then
         match f i with
         | () -> ()
         | exception e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.protect b.b_mutex (fun () ->
               if b.b_error = None then b.b_error <- Some (e, bt)));
      Mutex.protect b.b_mutex (fun () ->
          b.b_pending <- b.b_pending - 1;
          if b.b_pending = 0 then Condition.broadcast b.b_done)
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run_n: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock b.b_mutex;
    while b.b_pending > 0 do
      Condition.wait b.b_done b.b_mutex
    done;
    Mutex.unlock b.b_mutex;
    match b.b_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map ~jobs f xs =
  if jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
      let t = create ~jobs:(min jobs (List.length xs)) in
      Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run t f xs)
