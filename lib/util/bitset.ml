(* Dense fixed-capacity bitsets over [0, capacity).

   Node sets in the simulator (banned lists, detector sets, reach sets) are
   dense integer sets bounded by the network size, for which an unboxed
   word-array bitset is both faster and smaller than tree sets.

   The words live in an off-heap [Bigarray] rather than an OCaml [int
   array]: at million-node scale the engine holds thousands of row masks
   and per-shard accumulators, and keeping them out of the scanned heap
   means the GC never walks them and [Gc.compact] never copies them.  The
   [int] Bigarray kind stores native OCaml ints, so every word still
   carries [Sys.int_size] (= 63 on 64-bit) usable bits and all the SWAR
   arithmetic below is unchanged from the int-array days. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { words : words; capacity : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let alloc_words n : words =
  let w = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill w 0;
  w

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = alloc_words (Ilog.cdiv (max capacity 1) bits_per_word); capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.{w} <- t.words.{w} lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.{w} <- t.words.{w} land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.{w} land (1 lsl b) <> 0

let clear t = Bigarray.Array1.fill t.words 0

let copy t =
  let words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Bigarray.Array1.dim t.words) in
  Bigarray.Array1.blit t.words words;
  { words; capacity = t.capacity }

(* SWAR popcount over two 32-bit halves: OCaml ints are 63-bit, so the
   usual 64-bit mask constants do not fit as literals. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints are wider than 32 bits, so the byte-sum multiply keeps
     carries a 32-bit truncation would drop — mask to the low byte. *)
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount_word w = popcount32 (w land 0xFFFFFFFF) + popcount32 ((w lsr 32) land 0x7FFFFFFF)

let cardinal t =
  let acc = ref 0 in
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    acc := !acc + popcount_word (Bigarray.Array1.unsafe_get t.words w)
  done;
  !acc

(* Index of the lowest set bit of [w] ([w] must be nonzero): isolate it
   with [w land -w] and count the ones below it.  Wraparound at the sign
   bit is fine — two's complement makes [min_int - 1 = max_int], whose 62
   set bits are exactly the index of bit 62. *)
let lowest_bit w = popcount_word ((w land -w) - 1)

let iter f t =
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    let word = ref t.words.{w} in
    let base = w * bits_per_word in
    while !word <> 0 do
      f (base + lowest_bit !word);
      word := !word land (!word - 1)
    done
  done

(* Members of [a ∧ b] in increasing order, without materialising the
   intersection.  Capacities must match. *)
let iter_inter f a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.iter_inter";
  for w = 0 to Bigarray.Array1.dim a.words - 1 do
    let word =
      ref (Bigarray.Array1.unsafe_get a.words w land Bigarray.Array1.unsafe_get b.words w)
    in
    let base = w * bits_per_word in
    while !word <> 0 do
      f (base + lowest_bit !word);
      word := !word land (!word - 1)
    done
  done

(* First member of [a ∧ b], or [-1] when the intersection is empty. *)
let find_inter a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.find_inter";
  let res = ref (-1) in
  let w = ref 0 in
  let nw = Bigarray.Array1.dim a.words in
  while !res < 0 && !w < nw do
    let word = a.words.{!w} land b.words.{!w} in
    if word <> 0 then res := (!w * bits_per_word) + lowest_bit word;
    incr w
  done;
  !res

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

let union_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.union_into";
  for w = 0 to Bigarray.Array1.dim into.words - 1 do
    into.words.{w} <- into.words.{w} lor src.words.{w}
  done

let inter_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.inter_into";
  for w = 0 to Bigarray.Array1.dim into.words - 1 do
    into.words.{w} <- into.words.{w} land src.words.{w}
  done

let diff_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.diff_into";
  for w = 0 to Bigarray.Array1.dim into.words - 1 do
    into.words.{w} <- into.words.{w} land lnot src.words.{w}
  done

(* Two-accumulator saturating add: after feeding sender reach sets
   through [acc2_or_into]/[acc2_add], [once] holds the nodes reached by
   at least one sender and [twice] those reached by at least two.  The
   update is per word [twice |= once land src; once |= src] — a
   commutative fold, so sender order is irrelevant. *)
let acc2_or_into ~once ~twice src =
  if once.capacity <> src.capacity || twice.capacity <> src.capacity then
    invalid_arg "Bitset.acc2_or_into";
  (* unsafe accesses: equal capacities imply equal word counts, and this
     is the delivery kernel's innermost loop *)
  for w = 0 to Bigarray.Array1.dim once.words - 1 do
    let s = Bigarray.Array1.unsafe_get src.words w in
    if s <> 0 then begin
      let o = Bigarray.Array1.unsafe_get once.words w in
      Bigarray.Array1.unsafe_set twice.words w
        (Bigarray.Array1.unsafe_get twice.words w lor (o land s));
      Bigarray.Array1.unsafe_set once.words w (o lor s)
    end
  done

let acc2_add ~once ~twice i =
  check once i;
  if twice.capacity <> once.capacity then invalid_arg "Bitset.acc2_add";
  let w = i / bits_per_word and b = 1 lsl (i mod bits_per_word) in
  twice.words.{w} <- twice.words.{w} lor (once.words.{w} land b);
  once.words.{w} <- once.words.{w} lor b

(* Merge one (once, twice) accumulator pair into another.  Because the
   pair is a pure function of the *multiset* of contributions fed to it,
   splitting the contributions across several private pairs and merging
   them — in any order — yields exactly the single-pair result:
   an element is in the merged [twice] iff it was reached twice within
   one shard, or at least once in each of two shards. *)
let acc2_merge_into ~once ~twice ~src_once ~src_twice =
  if
    once.capacity <> src_once.capacity
    || twice.capacity <> src_twice.capacity
    || once.capacity <> twice.capacity
  then invalid_arg "Bitset.acc2_merge_into";
  for w = 0 to Bigarray.Array1.dim once.words - 1 do
    let o = Bigarray.Array1.unsafe_get once.words w in
    let so = Bigarray.Array1.unsafe_get src_once.words w in
    let st = Bigarray.Array1.unsafe_get src_twice.words w in
    Bigarray.Array1.unsafe_set twice.words w
      (Bigarray.Array1.unsafe_get twice.words w lor st lor (o land so));
    Bigarray.Array1.unsafe_set once.words w (o lor so)
  done

(* Word-level view for kernels: [word_count] words of [bits_per_word]
   bits each; [get_word]/[set_word] read and write them directly.  Bits
   at index [>= capacity] in the top word must stay zero — [set_word]
   masks them off. *)
let word_count t = Bigarray.Array1.dim t.words
let get_word t i = t.words.{i}

let set_word t i w =
  let lo = i * bits_per_word in
  let valid = t.capacity - lo in
  if valid <= 0 then invalid_arg "Bitset.set_word";
  t.words.{i} <- (if valid >= bits_per_word then w else w land ((1 lsl valid) - 1))

(* Word-parallel fill of the index range [lo, hi): partial masks on the
   boundary words, -1 (all 63 bits) on the interior ones.  The adversary
   kernel uses this to switch on a broadcaster's whole contiguous
   lower-endpoint gray range in O(range/word). *)
let fill_range t lo hi =
  if lo < 0 || hi > t.capacity || lo > hi then invalid_arg "Bitset.fill_range";
  if lo < hi then begin
    let w0 = lo / bits_per_word and w1 = (hi - 1) / bits_per_word in
    let b0 = lo mod bits_per_word and b1 = (hi - 1) mod bits_per_word in
    (* mask of bits [a, b] within one word; b - a = 62 (the full word)
       must not shift by 63, which OCaml leaves unspecified *)
    let mask a b = if b - a >= bits_per_word - 1 then -1 else ((1 lsl (b - a + 1)) - 1) lsl a in
    if w0 = w1 then t.words.{w0} <- t.words.{w0} lor mask b0 b1
    else begin
      t.words.{w0} <- t.words.{w0} lor mask b0 (bits_per_word - 1);
      for w = w0 + 1 to w1 - 1 do
        Bigarray.Array1.unsafe_set t.words w (-1)
      done;
      t.words.{w1} <- t.words.{w1} lor mask 0 b1
    end
  end

let diff a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.diff";
  let r = copy a in
  for w = 0 to Bigarray.Array1.dim r.words - 1 do
    r.words.{w} <- r.words.{w} land lnot b.words.{w}
  done;
  r

(* Bigarrays carry custom compare, so polymorphic [=] on the words is a
   contentwise comparison, same as it was for int arrays. *)
let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.subset";
  let ok = ref true in
  for w = 0 to Bigarray.Array1.dim a.words - 1 do
    if a.words.{w} land lnot b.words.{w} <> 0 then ok := false
  done;
  !ok

let is_empty t =
  let ok = ref true in
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    if t.words.{w} <> 0 then ok := false
  done;
  !ok

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
