(* Dense fixed-capacity bitsets over [0, capacity).

   Node sets in the simulator (banned lists, detector sets, reach sets) are
   dense integer sets bounded by the network size, for which an unboxed
   int-array bitset is both faster and smaller than tree sets. *)

type t = { words : int array; capacity : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Array.make (Ilog.cdiv (max capacity 1) bits_per_word) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; capacity = t.capacity }

(* SWAR popcount over two 32-bit halves: OCaml ints are 63-bit, so the
   usual 64-bit mask constants do not fit as literals. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints are wider than 32 bits, so the byte-sum multiply keeps
     carries a 32-bit truncation would drop — mask to the low byte. *)
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount_word w = popcount32 (w land 0xFFFFFFFF) + popcount32 ((w lsr 32) land 0x7FFFFFFF)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

(* Index of the lowest set bit of [w] ([w] must be nonzero): isolate it
   with [w land -w] and count the ones below it.  Wraparound at the sign
   bit is fine — two's complement makes [min_int - 1 = max_int], whose 62
   set bits are exactly the index of bit 62. *)
let lowest_bit w = popcount_word ((w land -w) - 1)

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      f (base + lowest_bit !word);
      word := !word land (!word - 1)
    done
  done

(* Members of [a ∧ b] in increasing order, without materialising the
   intersection.  Capacities must match. *)
let iter_inter f a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.iter_inter";
  for w = 0 to Array.length a.words - 1 do
    let word = ref (Array.unsafe_get a.words w land Array.unsafe_get b.words w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      f (base + lowest_bit !word);
      word := !word land (!word - 1)
    done
  done

(* First member of [a ∧ b], or [-1] when the intersection is empty. *)
let find_inter a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.find_inter";
  let res = ref (-1) in
  let w = ref 0 in
  let nw = Array.length a.words in
  while !res < 0 && !w < nw do
    let word = a.words.(!w) land b.words.(!w) in
    if word <> 0 then res := (!w * bits_per_word) + lowest_bit word;
    incr w
  done;
  !res

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

let union_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.union_into";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) lor src.words.(w)
  done

let inter_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.inter_into";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) land src.words.(w)
  done

let diff_into ~into src =
  if into.capacity <> src.capacity then invalid_arg "Bitset.diff_into";
  for w = 0 to Array.length into.words - 1 do
    into.words.(w) <- into.words.(w) land lnot src.words.(w)
  done

(* Two-accumulator saturating add: after feeding sender reach sets
   through [acc2_or_into]/[acc2_add], [once] holds the nodes reached by
   at least one sender and [twice] those reached by at least two.  The
   update is per word [twice |= once land src; once |= src] — a
   commutative fold, so sender order is irrelevant. *)
let acc2_or_into ~once ~twice src =
  if once.capacity <> src.capacity || twice.capacity <> src.capacity then
    invalid_arg "Bitset.acc2_or_into";
  (* unsafe accesses: equal capacities imply equal word counts, and this
     is the delivery kernel's innermost loop *)
  for w = 0 to Array.length once.words - 1 do
    let s = Array.unsafe_get src.words w in
    if s <> 0 then begin
      let o = Array.unsafe_get once.words w in
      Array.unsafe_set twice.words w (Array.unsafe_get twice.words w lor (o land s));
      Array.unsafe_set once.words w (o lor s)
    end
  done

let acc2_add ~once ~twice i =
  check once i;
  if twice.capacity <> once.capacity then invalid_arg "Bitset.acc2_add";
  let w = i / bits_per_word and b = 1 lsl (i mod bits_per_word) in
  twice.words.(w) <- twice.words.(w) lor (once.words.(w) land b);
  once.words.(w) <- once.words.(w) lor b

(* Word-level view for kernels: [word_count] words of [bits_per_word]
   bits each; [get_word]/[set_word] read and write them directly.  Bits
   at index [>= capacity] in the top word must stay zero — [set_word]
   masks them off. *)
let word_count t = Array.length t.words
let get_word t i = t.words.(i)

let set_word t i w =
  let lo = i * bits_per_word in
  let valid = t.capacity - lo in
  if valid <= 0 then invalid_arg "Bitset.set_word";
  t.words.(i) <- (if valid >= bits_per_word then w else w land ((1 lsl valid) - 1))

let diff a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.diff";
  let r = copy a in
  for w = 0 to Array.length r.words - 1 do
    r.words.(w) <- r.words.(w) land lnot b.words.(w)
  done;
  r

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.subset";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
